// bench/set_vs_bag_semantics — the paper's results never separate set from
// bag semantics (unlike CQs, Section 8). This harness checks on random
// instances that (i) RES_set equals RES_bag under unit multiplicities, and
// (ii) all solver pairs agree with each other in both semantics.

#include <iostream>

#include "graphdb/generators.h"
#include "lang/language.h"
#include "resilience/exact.h"
#include "resilience/resilience.h"
#include "util/rng.h"
#include "util/table.h"

using namespace rpqres;

namespace {

// Random generation may draw the same fact twice, accumulating its
// multiplicity; force every multiplicity back to 1 so that set and bag
// semantics provably coincide (Section 2 of the paper).
GraphDb WithUnitMultiplicities(const GraphDb& db) {
  GraphDb out;
  for (NodeId v = 0; v < db.num_nodes(); ++v) out.AddNode(db.node_name(v));
  for (FactId f = 0; f < db.num_facts(); ++f) {
    out.AddFact(db.fact(f).source, db.fact(f).label, db.fact(f).target, 1);
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Set vs bag semantics across solvers ===\n\n";
  struct Case {
    const char* regex;
    std::vector<char> labels;
    ResilienceMethod method;
  };
  std::vector<Case> cases = {
      {"ab|ad|cd", {'a', 'b', 'c', 'd'}, ResilienceMethod::kLocalFlow},
      {"ax*b", {'a', 'x', 'b'}, ResilienceMethod::kLocalFlow},
      {"ab|bc", {'a', 'b', 'c'}, ResilienceMethod::kBclFlow},
      {"axb|byc", {'a', 'b', 'c', 'x', 'y'}, ResilienceMethod::kBclFlow},
      {"abc|be", {'a', 'b', 'c', 'e'},
       ResilienceMethod::kOneDanglingFlow},
  };
  TextTable table;
  table.SetHeader({"language", "trials", "set==exact", "bag==exact",
                   "unit-bag==set"});
  Rng rng(555);
  int failures = 0;
  for (const Case& c : cases) {
    Language lang = Language::MustFromRegexString(c.regex);
    int set_ok = 0, bag_ok = 0, unit_ok = 0;
    const int kTrials = 12;
    for (int t = 0; t < kTrials; ++t) {
      GraphDb unit =
          WithUnitMultiplicities(RandomGraphDb(&rng, 6, 14, c.labels, 1));
      GraphDb weighted = RandomGraphDb(&rng, 6, 14, c.labels, 8);

      auto flow_set = ComputeResilience(lang, unit, Semantics::kSet,
                                        {.method = c.method});
      auto exact_set = SolveExactResilience(lang, unit, Semantics::kSet);
      auto flow_bag = ComputeResilience(lang, weighted, Semantics::kBag,
                                        {.method = c.method});
      auto exact_bag = SolveExactResilience(lang, weighted, Semantics::kBag);
      auto unit_bag = ComputeResilience(lang, unit, Semantics::kBag,
                                        {.method = c.method});
      if (flow_set.ok() && exact_set.ok() &&
          flow_set->value == exact_set->value) {
        ++set_ok;
      }
      if (flow_bag.ok() && exact_bag.ok() &&
          flow_bag->value == exact_bag->value) {
        ++bag_ok;
      }
      if (flow_set.ok() && unit_bag.ok() &&
          flow_set->value == unit_bag->value) {
        ++unit_ok;
      }
    }
    if (set_ok != kTrials || bag_ok != kTrials || unit_ok != kTrials) {
      ++failures;
    }
    table.AddRow({c.regex, std::to_string(kTrials),
                  std::to_string(set_ok) + "/" + std::to_string(kTrials),
                  std::to_string(bag_ok) + "/" + std::to_string(kTrials),
                  std::to_string(unit_ok) + "/" + std::to_string(kTrials)});
  }
  table.Print(std::cout);
  std::cout << "\nFailing language rows: " << failures << "\n";
  return failures == 0 ? 0 : 1;
}
