// bench/bench_engine — the unified engine benchmark: replays generated
// workloads for each side of the paper's classification through
// ResilienceEngine and writes BENCH_engine.json (steady-state p50/p95
// latency and throughput per scenario; the harness runs one untimed
// warm-up batch first). Usage: bench_engine [output.json]
//
// Scenarios cover every dispatch path:
//   local_ax_star_b    — Thm 3.13 local flow (layered MinCut networks)
//   bcl_a_or_bc        — Prp 7.6 bipartite chain flow (word soups)
//   one_dangling       — Prp 7.9 one-dangling flow (dangling-pair dbs)
//   exact_ab_bc_ca     — NP-hard side, exact branch & bound (small dbs)
//   mixed_cache_churn  — all four queries interleaved over one batch,
//                        exercising the plan cache under a mixed workload
//   handle_vs_raw_v2_handle — ax*b over noisy databases via registered
//                        DbHandles; the name predates the removal of the
//                        v1 raw-pointer twin scenario and is kept so the
//                        BENCH trajectory stays comparable across PRs
//   flow_core_csr_*    — the zero-copy flow core showcases: a deep
//                        product (CSR + scratch reuse dominate) and a
//                        sparse one (the reach/co-reach sweep prunes
//                        most relevant-labeled facts)
//   delta_commit_small — registry v3 delta commits: per-commit latency of
//                        a 2-op delta across base sizes (stdout shows the
//                        per-size medians — the commit cost tracks the
//                        delta, not the database)
//   delta_commit_vs_rebuild — the same op streams priced the v2 way
//                        (full Register: GraphDb copy + from-scratch
//                        LabelIndex); the per-scenario p50 ratio is the
//                        delta-commit win
//   result_cache_hot   — repeat queries against one registered version
//                        with the version-keyed ResultCache enabled;
//                        compare p50 against handle_vs_raw_v2_handle
//                        (same database family, cache off)
//   obs_off_deep_product / obs_on_deep_product — the observability
//                        overhead pair: identical deep-product workloads
//                        on engines with tracing off vs on; CI's
//                        check_metrics_export.py asserts the obs_on p50
//                        stays within ~5% and the checksums match
//
// Besides BENCH_engine.json the run dumps the engine's Prometheus
// exposition (ExportMetrics) next to it as <output>.prom for the CI
// metrics validator.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "graphdb/generators.h"
#include "util/rng.h"

using namespace rpqres;
using namespace rpqres::bench;

namespace {

std::vector<GraphDb> LocalDbs() {
  Rng rng(1234);
  std::vector<GraphDb> dbs;
  for (int layers : {2, 4, 8, 16}) {
    dbs.push_back(LayeredFlowDb(&rng, /*sources=*/4, layers, /*width=*/6,
                                /*sinks=*/4, /*density=*/0.4,
                                /*max_multiplicity=*/50));
  }
  return dbs;
}

std::vector<GraphDb> BclDbs() {
  Rng rng(99);
  std::vector<GraphDb> dbs;
  for (int count : {8, 16, 32}) {
    dbs.push_back(WordSoupDb(&rng, {"ab", "bc"}, count,
                             /*extra_labels=*/{'a', 'b', 'c'},
                             /*cross_links=*/2 * count,
                             /*max_multiplicity=*/10));
  }
  return dbs;
}

std::vector<GraphDb> OneDanglingDbs() {
  Rng rng(7);
  std::vector<GraphDb> dbs;
  for (int pairs : {8, 16, 32}) {
    dbs.push_back(DanglingPairsDb(&rng, /*num_nodes=*/30,
                                  /*base_facts=*/60,
                                  /*base_labels=*/{'a', 'b', 'c'},
                                  /*x=*/'b', /*y=*/'e', pairs,
                                  /*max_multiplicity=*/5));
  }
  return dbs;
}

std::vector<GraphDb> ExactDbs() {
  Rng rng(42);
  std::vector<GraphDb> dbs;
  for (int facts : {12, 18, 24}) {
    dbs.push_back(RandomGraphDb(&rng, /*num_nodes=*/8, facts,
                                {'a', 'b', 'c'}, /*max_multiplicity=*/3));
  }
  return dbs;
}

// Layered ax*b flow networks drowned in inert noise facts (labels the
// query never reads). The label index skips the noise without touching
// it; same databases and seed as the PR-3 handle_vs_raw pair, so the
// BENCH trajectory for this scenario stays comparable.
std::vector<GraphDb> NoisyLocalDbs() {
  Rng rng(2718);
  std::vector<GraphDb> dbs;
  for (int layers : {4, 8, 16}) {
    GraphDb db = LayeredFlowDb(&rng, /*sources=*/4, layers, /*width=*/6,
                               /*sinks=*/4, /*density=*/0.4,
                               /*max_multiplicity=*/50);
    int nodes = db.num_nodes();
    int noise_facts = 20 * db.num_facts();  // noise dominates the fact array
    for (int i = 0; i < noise_facts; ++i) {
      char label = static_cast<char>('m' + rng.NextBelow(4));
      db.AddFact(static_cast<NodeId>(rng.NextBelow(nodes)), label,
                 static_cast<NodeId>(rng.NextBelow(nodes)),
                 /*multiplicity=*/1 + rng.NextBelow(5));
    }
    dbs.push_back(std::move(db));
  }
  return dbs;
}

// Deep layered products: the CSR build + scratch reuse dominate (nearly
// every product vertex is live, so this isolates the zero-copy pipeline
// rather than the pruning).
std::vector<GraphDb> DeepProductDbs() {
  Rng rng(31337);
  std::vector<GraphDb> dbs;
  for (int layers : {24, 32}) {
    dbs.push_back(LayeredFlowDb(&rng, /*sources=*/4, layers, /*width=*/8,
                                /*sinks=*/4, /*density=*/0.35,
                                /*max_multiplicity=*/40));
  }
  return dbs;
}

// Sparse products: a small layered ax*b region embedded in a sea of
// *relevant-labeled* x-facts among nodes no a-path ever reaches. Every
// x-fact used to become a network edge; the reach/co-reach sweep now
// skips all of them, so this isolates the product-pruning win.
std::vector<GraphDb> SparseProductDbs() {
  Rng rng(5150);
  std::vector<GraphDb> dbs;
  for (int layers : {4, 8}) {
    GraphDb db = LayeredFlowDb(&rng, /*sources=*/3, layers, /*width=*/5,
                               /*sinks=*/3, /*density=*/0.5,
                               /*max_multiplicity=*/20);
    int base_nodes = db.num_nodes();
    int extra_nodes = 6 * base_nodes;
    for (int i = 0; i < extra_nodes; ++i) db.AddNode();
    int stray_x = 10 * db.num_facts();
    for (int i = 0; i < stray_x; ++i) {
      // x-facts strictly among the extra nodes: relevant label, dead
      // product region.
      NodeId u = base_nodes + static_cast<NodeId>(rng.NextBelow(extra_nodes));
      NodeId v = base_nodes + static_cast<NodeId>(rng.NextBelow(extra_nodes));
      db.AddFact(u, 'x', v, /*multiplicity=*/1 + rng.NextBelow(8));
    }
    dbs.push_back(std::move(db));
  }
  return dbs;
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Registry v3 delta commits vs v2-style full re-registration: identical
// deterministic op streams (add one x-fact, remove one existing fact, per
// commit) over bases of increasing size. The delta side prices
// DeltaBatch + Commit (copy-on-write overlay + incremental LabelIndex);
// the rebuild side prices what v2 forced (full GraphDb copy + full index
// build). Checksums replay ax*b on the final version of every size.
std::pair<ScenarioReport, ScenarioReport> RunDeltaCommitScenarios(
    ResilienceEngine& engine) {
  ScenarioReport delta;
  delta.name = "delta_commit_small";
  delta.description =
      "2-op delta commits across base sizes (overlay + incremental index)";
  delta.regex = "ax*b";
  delta.semantics = "bag";
  ScenarioReport rebuild = delta;
  rebuild.name = "delta_commit_vs_rebuild";
  rebuild.description =
      "same op streams, priced as v2 full re-registration per change";

  std::vector<double> delta_micros, rebuild_micros;
  const int kCommits = 40;
  for (int num_facts : {4000, 16000, 64000}) {
    Rng rng(777 + num_facts);
    GraphDb base = RandomGraphDb(&rng, /*num_nodes=*/num_facts / 10, num_facts,
                                 {'a', 'x', 'b', 'm', 'n', 'o', 'p', 'q'},
                                 /*max_multiplicity=*/4);
    DbRegistry registry;
    GraphDb twin = base;
    DbHandle latest = registry.Register(std::move(base), "delta_bench");
    DbHandle rebuilt;
    std::vector<double> size_micros;
    for (int commit = 0; commit < kCommits; ++commit) {
      const int nodes = twin.num_nodes();
      NodeId u = static_cast<NodeId>(rng.NextBelow(nodes));
      NodeId v = static_cast<NodeId>(rng.NextBelow(nodes));
      FactId victim =
          static_cast<FactId>(rng.NextBelow(twin.num_facts()));
      const Fact removed = twin.fact(victim);

      auto start = std::chrono::steady_clock::now();
      DeltaBatch batch = registry.BeginDelta(latest);
      if (!batch.AddFact(u, 'x', v).ok() ||
          !batch.RemoveFact(removed.source, removed.label, removed.target)
               .ok()) {
        ++delta.errors;
        continue;
      }
      Result<DbHandle> committed = batch.Commit();
      double commit_micros = MicrosSince(start);
      if (!committed.ok()) {
        ++delta.errors;
        continue;
      }
      latest = *std::move(committed);
      ++delta.instances;
      delta_micros.push_back(commit_micros);
      size_micros.push_back(commit_micros);

      // The v2 price of the same change: rebuild the flat twin and
      // re-register it wholesale (copy + full label index).
      twin.AddFact(u, 'x', v);
      twin = twin.RemoveFacts({twin.FindFact(removed.source, removed.label,
                                             removed.target)});
      start = std::chrono::steady_clock::now();
      rebuilt = registry.Register(twin, "rebuild_bench");
      rebuild_micros.push_back(MicrosSince(start));
      ++rebuild.instances;
      registry.Unregister(rebuilt.id());
    }
    std::printf(
        "delta_commit_small: base=%6d facts  commit p50 %8.1fus (vs "
        "rebuild %8.1fus)\n",
        num_facts, Percentile(size_micros, 50),
        Percentile(std::vector<double>(rebuild_micros.end() - size_micros.size(),
                                       rebuild_micros.end()),
                   50));

    // Determinism checksum: the query answer on the final version must
    // match the flat twin's — and stay fixed across machines.
    for (ScenarioReport* report : {&delta, &rebuild}) {
      ResilienceRequest request;
      request.regex = "ax*b";
      request.semantics = Semantics::kBag;
      request.db = report == &delta ? latest : registry.Register(twin);
      ResilienceResponse response = engine.Evaluate(request);
      if (response.status.ok() && !response.result.infinite) {
        report->resilience_checksum += response.result.value;
      } else if (!response.status.ok()) {
        ++report->errors;
      }
      if (report->algorithm.empty()) {
        report->algorithm = response.stats.algorithm;
        report->complexity = response.stats.complexity;
        report->rule = response.stats.rule;
      }
    }
  }

  for (auto [report, samples] :
       {std::make_pair(&delta, &delta_micros),
        std::make_pair(&rebuild, &rebuild_micros)}) {
    report->solve_p50_micros = Percentile(*samples, 50);
    report->solve_p95_micros = Percentile(*samples, 95);
    report->solve_p99_micros = Percentile(*samples, 99);
    report->solve_max_micros = Percentile(*samples, 100);
    obs::LatencyHistogram histogram;
    for (double micros : *samples) histogram.Record(micros);
    report->solve_histogram = histogram.TakeSnapshot();
    double sum = 0;
    for (double micros : *samples) {
      sum += micros;
      report->total_wall_micros += micros;
    }
    if (!samples->empty()) {
      report->solve_mean_micros = sum / static_cast<double>(samples->size());
    }
    if (report->total_wall_micros > 0) {
      report->throughput_qps = static_cast<double>(report->instances) /
                               (report->total_wall_micros / 1e6);
    }
  }
  return {std::move(delta), std::move(rebuild)};
}

// Observability overhead pair: identical deep-product workloads on two
// fresh engines, per-request tracing off vs on. The engines alternate
// round by round — a paired design, so clock-speed drift and scheduler
// noise over the run hit both sides equally and the p50 delta isolates
// the tracing cost. CI (scripts/check_metrics_export.py) asserts the
// obs_on p50 stays within the overhead budget and the checksums match.
std::pair<ScenarioReport, ScenarioReport> RunObservabilityPair() {
  ScenarioReport off;
  off.name = "obs_off_deep_product";
  off.description =
      "ax*b over deep products, per-request tracing disabled "
      "(overhead control; interleaved with obs_on)";
  off.regex = "ax*b";
  off.semantics = "bag";
  ScenarioReport on = off;
  on.name = "obs_on_deep_product";
  on.description =
      "same workload with trace spans recorded on every request";

  DbRegistry registry;
  std::vector<DbHandle> handles;
  for (GraphDb& db : DeepProductDbs()) {
    handles.push_back(registry.Register(std::move(db), "obs_pair"));
  }
  std::vector<ResilienceRequest> requests;
  for (const DbHandle& handle : handles) {
    ResilienceRequest request;
    request.regex = "ax*b";
    request.db = handle;
    request.semantics = Semantics::kBag;
    requests.push_back(std::move(request));
  }

  // Single-threaded engines: the pair measures per-request cost, and a
  // pool would add scheduling jitter to exactly the delta under test.
  EngineOptions off_options;
  off_options.num_threads = 1;
  off_options.enable_tracing = false;
  EngineOptions on_options = off_options;
  on_options.enable_tracing = true;
  ResilienceEngine engine_off(off_options);
  ResilienceEngine engine_on(on_options);

  const int kWarmupRounds = 3;
  const int kRounds = 60;
  std::vector<double> off_micros, on_micros;
  for (int round = 0; round < kWarmupRounds + kRounds; ++round) {
    const bool timed = round >= kWarmupRounds;
    for (auto [engine, report, samples] :
         {std::make_tuple(&engine_off, &off, &off_micros),
          std::make_tuple(&engine_on, &on, &on_micros)}) {
      auto start = std::chrono::steady_clock::now();
      std::vector<ResilienceResponse> outcomes =
          engine->EvaluateBatch(requests);
      if (!timed) continue;
      report->total_wall_micros += MicrosSince(start);
      for (const ResilienceResponse& outcome : outcomes) {
        ++report->instances;
        if (!outcome.status.ok()) {
          ++report->errors;
          continue;
        }
        samples->push_back(outcome.stats.solve_micros);
        if (!outcome.result.infinite) {
          report->resilience_checksum += outcome.result.value;
        }
        if (report->algorithm.empty()) {
          report->algorithm = outcome.stats.algorithm;
          report->complexity = outcome.stats.complexity;
          report->rule = outcome.stats.rule;
        }
      }
    }
  }

  for (auto [report, samples] : {std::make_pair(&off, &off_micros),
                                 std::make_pair(&on, &on_micros)}) {
    report->solve_p50_micros = Percentile(*samples, 50);
    report->solve_p95_micros = Percentile(*samples, 95);
    report->solve_p99_micros = Percentile(*samples, 99);
    report->solve_max_micros = Percentile(*samples, 100);
    obs::LatencyHistogram histogram;
    double sum = 0;
    for (double micros : *samples) {
      histogram.Record(micros);
      sum += micros;
    }
    report->solve_histogram = histogram.TakeSnapshot();
    if (!samples->empty()) {
      report->solve_mean_micros = sum / static_cast<double>(samples->size());
    }
    if (report->total_wall_micros > 0) {
      report->throughput_qps = static_cast<double>(report->instances) /
                               (report->total_wall_micros / 1e6);
    }
  }
  return {std::move(off), std::move(on)};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string output = argc > 1 ? argv[1] : "BENCH_engine.json";

  Harness harness;

  harness.AddScenario({.name = "local_ax_star_b",
                       .description = "local-tractable ax*b over layered "
                                      "flow networks (Thm 3.13)",
                       .regex = "ax*b",
                       .semantics = Semantics::kBag,
                       .databases = LocalDbs(),
                       .repetitions = 5});
  harness.AddScenario({.name = "bcl_ab_or_bc",
                       .description = "bipartite chain ab|bc over word "
                                      "soups (Prp 7.6)",
                       .regex = "ab|bc",
                       .semantics = Semantics::kBag,
                       .databases = BclDbs(),
                       .repetitions = 5});
  harness.AddScenario({.name = "one_dangling_abc_be",
                       .description = "one-dangling abc|be over "
                                      "dangling-pair instances (Prp 7.9)",
                       .regex = "abc|be",
                       .semantics = Semantics::kBag,
                       .databases = OneDanglingDbs(),
                       .repetitions = 5});
  harness.AddScenario({.name = "exact_ab_bc_ca",
                       .description = "NP-hard ab|bc|ca, exact branch & "
                                      "bound fallback on small dbs",
                       .regex = "ab|bc|ca",
                       .semantics = Semantics::kSet,
                       .databases = ExactDbs(),
                       .repetitions = 3});

  // Mixed workload: every query above against the small exact dbs plus
  // the BCL soups — all plans already cached from the scenarios above,
  // so this measures steady-state dispatch.
  {
    Scenario mixed;
    mixed.name = "mixed_cache_churn";
    mixed.description =
        "all four queries interleaved (plan cache steady state)";
    mixed.regex = "ax*b";  // representative; per-instance regexes vary
    mixed.semantics = Semantics::kBag;
    mixed.databases = BclDbs();
    mixed.repetitions = 2;
    harness.AddScenario(mixed);
  }

  harness.AddScenario({.name = "handle_vs_raw_v2_handle",
                       .description = "ax*b over noisy flow dbs via "
                                      "registered DbHandle + label index",
                       .regex = "ax*b",
                       .semantics = Semantics::kBag,
                       .databases = NoisyLocalDbs(),
                       .repetitions = 20});
  harness.AddScenario({.name = "flow_core_csr_deep_product",
                       .description = "ax*b over deep layered products "
                                      "(zero-copy CSR + scratch reuse)",
                       .regex = "ax*b",
                       .semantics = Semantics::kBag,
                       .databases = DeepProductDbs(),
                       .repetitions = 10});
  harness.AddScenario({.name = "flow_core_csr_sparse_product",
                       .description = "ax*b with stray x-facts in dead "
                                      "product regions (pruning win)",
                       .regex = "ax*b",
                       .semantics = Semantics::kBag,
                       .databases = SparseProductDbs(),
                       .repetitions = 15});

  std::vector<ScenarioReport> reports = harness.RunAll();

  // Registry v3 scenarios. The hot result cache runs on its own engine:
  // enabling it on the shared harness engine would collapse every other
  // scenario into cache hits and break the BENCH trajectory.
  {
    EngineOptions cached_options;
    cached_options.result_cache_capacity = 4096;
    Harness cached_harness(cached_options);
    cached_harness.AddScenario(
        {.name = "result_cache_hot",
         .description = "ax*b repeats over one registered version, "
                        "version-keyed ResultCache on (hits after warm-up)",
         .regex = "ax*b",
         .semantics = Semantics::kBag,
         .databases = NoisyLocalDbs(),
         .repetitions = 20});
    for (ScenarioReport& report : cached_harness.RunAll()) {
      reports.push_back(std::move(report));
    }
  }
  {
    auto [delta, rebuild] = RunDeltaCommitScenarios(harness.engine());
    reports.push_back(std::move(delta));
    reports.push_back(std::move(rebuild));
  }

  {
    auto [obs_off, obs_on] = RunObservabilityPair();
    reports.push_back(std::move(obs_off));
    reports.push_back(std::move(obs_on));
  }

  Status write_status = harness.WriteJson(output, reports);
  if (!write_status.ok()) {
    std::fprintf(stderr, "error: %s\n", write_status.ToString().c_str());
    return 1;
  }

  // Prometheus exposition from the main harness engine, for the CI
  // metrics validator (BENCH_engine.json -> BENCH_engine.prom).
  std::string prom_path = output;
  const std::string json_suffix = ".json";
  if (prom_path.size() > json_suffix.size() &&
      prom_path.compare(prom_path.size() - json_suffix.size(),
                        json_suffix.size(), json_suffix) == 0) {
    prom_path.resize(prom_path.size() - json_suffix.size());
  }
  prom_path += ".prom";
  {
    std::ofstream prom(prom_path);
    prom << harness.engine().ExportMetrics(MetricsFormat::kPrometheus,
                                           &harness.registry());
    if (!prom) {
      std::fprintf(stderr, "error: failed writing %s\n", prom_path.c_str());
      return 1;
    }
  }
  std::printf("wrote %s\n", prom_path.c_str());

  for (const ScenarioReport& r : reports) {
    std::printf(
        "%-28s %-10s %4d inst  p50 %9.1fus  p95 %9.1fus  %8.0f qps  "
        "pruned %lld/%lld  via %s\n",
        r.name.c_str(), r.complexity.c_str(), r.instances,
        r.solve_p50_micros, r.solve_p95_micros, r.throughput_qps,
        static_cast<long long>(r.pruned_vertices_max),
        static_cast<long long>(r.pruned_edges_max), r.algorithm.c_str());
  }
  std::printf("wrote %s\n", output.c_str());
  return 0;
}
