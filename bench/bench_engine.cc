// bench/bench_engine — the unified engine benchmark: replays generated
// workloads for each side of the paper's classification through
// ResilienceEngine and writes BENCH_engine.json (steady-state p50/p95
// latency and throughput per scenario; the harness runs one untimed
// warm-up batch first). Usage: bench_engine [output.json]
//
// Scenarios cover every dispatch path:
//   local_ax_star_b    — Thm 3.13 local flow (layered MinCut networks)
//   bcl_a_or_bc        — Prp 7.6 bipartite chain flow (word soups)
//   one_dangling       — Prp 7.9 one-dangling flow (dangling-pair dbs)
//   exact_ab_bc_ca     — NP-hard side, exact branch & bound (small dbs)
//   mixed_cache_churn  — all four queries interleaved over one batch,
//                        exercising the plan cache under a mixed workload
//   handle_vs_raw_v2_handle — ax*b over noisy databases via registered
//                        DbHandles; the name predates the removal of the
//                        v1 raw-pointer twin scenario and is kept so the
//                        BENCH trajectory stays comparable across PRs
//   flow_core_csr_*    — the zero-copy flow core showcases: a deep
//                        product (CSR + scratch reuse dominate) and a
//                        sparse one (the reach/co-reach sweep prunes
//                        most relevant-labeled facts)
//   delta_commit_small — registry v3 delta commits: per-commit latency of
//                        a 2-op delta across base sizes (stdout shows the
//                        per-size medians — the commit cost tracks the
//                        delta, not the database)
//   delta_commit_vs_rebuild — the same op streams priced the v2 way
//                        (full Register: GraphDb copy + from-scratch
//                        LabelIndex); the per-scenario p50 ratio is the
//                        delta-commit win
//   result_cache_hot   — repeat queries against one registered version
//                        with the version-keyed ResultCache enabled;
//                        compare p50 against handle_vs_raw_v2_handle
//                        (same database family, cache off)
//   obs_off_deep_product / obs_on_deep_product — the observability
//                        overhead pair: identical deep-product workloads
//                        on engines with tracing off vs on; CI's
//                        check_metrics_export.py asserts the obs_on p50
//                        stays within ~5% and the checksums match
//
// Besides BENCH_engine.json the run dumps the engine's Prometheus
// exposition (ExportMetrics) next to it as <output>.prom for the CI
// metrics validator.
//
// Persist mode — `bench_engine --persist [output.json]` — benchmarks the
// storage layer (storage/segment.h + journal.h): mmap-backed
// segment_cold_load vs text_reparse (parse + full Register) at 4k and
// 64k facts with equal resilience checksums, plus
// journal_replay_100_commits (restore = segment map + 100-group journal
// replay). Output: BENCH_persist.json; CI's check_metrics_export.py
// --persist asserts the 64k cold-load speedup floor and checksum
// equality.
//
// Faults mode — `bench_engine --faults [output.json]` — prices the
// failpoint instrumentation (src/fault/failpoints.h) on the persistent
// commit path. Two interleaved commit storms over identical op streams:
// one with the registry fully disabled (the production configuration —
// every storage syscall pays one relaxed atomic load) and one with every
// site armed at probability 0 (the full per-site evaluation runs on
// every syscall, but no fault ever fires). The paired design cancels
// clock drift; the mode self-gates: both storms and both reopened
// directories must agree on the resilience checksum, zero fires may be
// recorded, the disabled fast path's measured cost (ns per check times
// checks per commit) must stay under 1% of the disabled commit p50, and
// the armed-p0 p50 — the chaos-harness configuration, which pays a full
// per-site spec evaluation on every storage syscall — gets a loose
// 1.25x sanity bound against pathological regressions. Output:
// BENCH_faults.json.
//
// Serve mode — `bench_engine --serve [--shards N] [output.json]` —
// benchmarks the sharded front end instead: one seeded TrafficTrace
// replayed through a Router at 1/4/16 shards (or {1, N} with --shards),
// closed-loop mixed read/commit traffic, per-shard p50/p99 from the
// admission controller's observed latency, shed rate, and a
// tight-deadline shed storm. Per-shard engines get a fixed thread count
// and a ResultCache smaller than the trace's read key space, so shard
// counts where the per-shard working set fits the cache sustain a
// multiple of the single-shard read throughput — at equal resilience
// checksums (commits touch only noise labels). Output: BENCH_serve.json
// plus the merged multi-shard Prometheus exposition as <output>.prom.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "fault/failpoints.h"
#include "graphdb/generators.h"
#include "graphdb/serialization.h"
#include "serve/router.h"
#include "serve/sharded_registry.h"
#include "util/rng.h"
#include "workload/traffic.h"

using namespace rpqres;
using namespace rpqres::bench;

namespace {

std::vector<GraphDb> LocalDbs() {
  Rng rng(1234);
  std::vector<GraphDb> dbs;
  for (int layers : {2, 4, 8, 16}) {
    dbs.push_back(LayeredFlowDb(&rng, /*sources=*/4, layers, /*width=*/6,
                                /*sinks=*/4, /*density=*/0.4,
                                /*max_multiplicity=*/50));
  }
  return dbs;
}

std::vector<GraphDb> BclDbs() {
  Rng rng(99);
  std::vector<GraphDb> dbs;
  for (int count : {8, 16, 32}) {
    dbs.push_back(WordSoupDb(&rng, {"ab", "bc"}, count,
                             /*extra_labels=*/{'a', 'b', 'c'},
                             /*cross_links=*/2 * count,
                             /*max_multiplicity=*/10));
  }
  return dbs;
}

std::vector<GraphDb> OneDanglingDbs() {
  Rng rng(7);
  std::vector<GraphDb> dbs;
  for (int pairs : {8, 16, 32}) {
    dbs.push_back(DanglingPairsDb(&rng, /*num_nodes=*/30,
                                  /*base_facts=*/60,
                                  /*base_labels=*/{'a', 'b', 'c'},
                                  /*x=*/'b', /*y=*/'e', pairs,
                                  /*max_multiplicity=*/5));
  }
  return dbs;
}

std::vector<GraphDb> ExactDbs() {
  Rng rng(42);
  std::vector<GraphDb> dbs;
  for (int facts : {12, 18, 24}) {
    dbs.push_back(RandomGraphDb(&rng, /*num_nodes=*/8, facts,
                                {'a', 'b', 'c'}, /*max_multiplicity=*/3));
  }
  return dbs;
}

// Layered ax*b flow networks drowned in inert noise facts (labels the
// query never reads). The label index skips the noise without touching
// it; same databases and seed as the PR-3 handle_vs_raw pair, so the
// BENCH trajectory for this scenario stays comparable.
std::vector<GraphDb> NoisyLocalDbs() {
  Rng rng(2718);
  std::vector<GraphDb> dbs;
  for (int layers : {4, 8, 16}) {
    GraphDb db = LayeredFlowDb(&rng, /*sources=*/4, layers, /*width=*/6,
                               /*sinks=*/4, /*density=*/0.4,
                               /*max_multiplicity=*/50);
    int nodes = db.num_nodes();
    int noise_facts = 20 * db.num_facts();  // noise dominates the fact array
    for (int i = 0; i < noise_facts; ++i) {
      char label = static_cast<char>('m' + rng.NextBelow(4));
      db.AddFact(static_cast<NodeId>(rng.NextBelow(nodes)), label,
                 static_cast<NodeId>(rng.NextBelow(nodes)),
                 /*multiplicity=*/1 + rng.NextBelow(5));
    }
    dbs.push_back(std::move(db));
  }
  return dbs;
}

// Deep layered products: the CSR build + scratch reuse dominate (nearly
// every product vertex is live, so this isolates the zero-copy pipeline
// rather than the pruning).
std::vector<GraphDb> DeepProductDbs() {
  Rng rng(31337);
  std::vector<GraphDb> dbs;
  for (int layers : {24, 32}) {
    dbs.push_back(LayeredFlowDb(&rng, /*sources=*/4, layers, /*width=*/8,
                                /*sinks=*/4, /*density=*/0.35,
                                /*max_multiplicity=*/40));
  }
  return dbs;
}

// Sparse products: a small layered ax*b region embedded in a sea of
// *relevant-labeled* x-facts among nodes no a-path ever reaches. Every
// x-fact used to become a network edge; the reach/co-reach sweep now
// skips all of them, so this isolates the product-pruning win.
std::vector<GraphDb> SparseProductDbs() {
  Rng rng(5150);
  std::vector<GraphDb> dbs;
  for (int layers : {4, 8}) {
    GraphDb db = LayeredFlowDb(&rng, /*sources=*/3, layers, /*width=*/5,
                               /*sinks=*/3, /*density=*/0.5,
                               /*max_multiplicity=*/20);
    int base_nodes = db.num_nodes();
    int extra_nodes = 6 * base_nodes;
    for (int i = 0; i < extra_nodes; ++i) db.AddNode();
    int stray_x = 10 * db.num_facts();
    for (int i = 0; i < stray_x; ++i) {
      // x-facts strictly among the extra nodes: relevant label, dead
      // product region.
      NodeId u = base_nodes + static_cast<NodeId>(rng.NextBelow(extra_nodes));
      NodeId v = base_nodes + static_cast<NodeId>(rng.NextBelow(extra_nodes));
      db.AddFact(u, 'x', v, /*multiplicity=*/1 + rng.NextBelow(8));
    }
    dbs.push_back(std::move(db));
  }
  return dbs;
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Registry v3 delta commits vs v2-style full re-registration: identical
// deterministic op streams (add one x-fact, remove one existing fact, per
// commit) over bases of increasing size. The delta side prices
// DeltaBatch + Commit (copy-on-write overlay + incremental LabelIndex);
// the rebuild side prices what v2 forced (full GraphDb copy + full index
// build). Checksums replay ax*b on the final version of every size.
std::pair<ScenarioReport, ScenarioReport> RunDeltaCommitScenarios(
    ResilienceEngine& engine) {
  ScenarioReport delta;
  delta.name = "delta_commit_small";
  delta.description =
      "2-op delta commits across base sizes (overlay + incremental index)";
  delta.regex = "ax*b";
  delta.semantics = "bag";
  ScenarioReport rebuild = delta;
  rebuild.name = "delta_commit_vs_rebuild";
  rebuild.description =
      "same op streams, priced as v2 full re-registration per change";

  std::vector<double> delta_micros, rebuild_micros;
  const int kCommits = 40;
  for (int num_facts : {4000, 16000, 64000}) {
    Rng rng(777 + num_facts);
    GraphDb base = RandomGraphDb(&rng, /*num_nodes=*/num_facts / 10, num_facts,
                                 {'a', 'x', 'b', 'm', 'n', 'o', 'p', 'q'},
                                 /*max_multiplicity=*/4);
    DbRegistry registry;
    GraphDb twin = base;
    DbHandle latest = registry.Register(std::move(base), "delta_bench");
    DbHandle rebuilt;
    std::vector<double> size_micros;
    for (int commit = 0; commit < kCommits; ++commit) {
      const int nodes = twin.num_nodes();
      NodeId u = static_cast<NodeId>(rng.NextBelow(nodes));
      NodeId v = static_cast<NodeId>(rng.NextBelow(nodes));
      FactId victim =
          static_cast<FactId>(rng.NextBelow(twin.num_facts()));
      const Fact removed = twin.fact(victim);

      auto start = std::chrono::steady_clock::now();
      DeltaBatch batch = registry.BeginDelta(latest);
      if (!batch.AddFact(u, 'x', v).ok() ||
          !batch.RemoveFact(removed.source, removed.label, removed.target)
               .ok()) {
        ++delta.errors;
        continue;
      }
      Result<DbHandle> committed = batch.Commit();
      double commit_micros = MicrosSince(start);
      if (!committed.ok()) {
        ++delta.errors;
        continue;
      }
      latest = *std::move(committed);
      ++delta.instances;
      delta_micros.push_back(commit_micros);
      size_micros.push_back(commit_micros);

      // The v2 price of the same change: rebuild the flat twin and
      // re-register it wholesale (copy + full label index).
      twin.AddFact(u, 'x', v);
      twin = twin.RemoveFacts({twin.FindFact(removed.source, removed.label,
                                             removed.target)});
      start = std::chrono::steady_clock::now();
      rebuilt = registry.Register(twin, "rebuild_bench");
      rebuild_micros.push_back(MicrosSince(start));
      ++rebuild.instances;
      registry.Unregister(rebuilt.id());
    }
    std::printf(
        "delta_commit_small: base=%6d facts  commit p50 %8.1fus (vs "
        "rebuild %8.1fus)\n",
        num_facts, Percentile(size_micros, 50),
        Percentile(std::vector<double>(rebuild_micros.end() - size_micros.size(),
                                       rebuild_micros.end()),
                   50));

    // Determinism checksum: the query answer on the final version must
    // match the flat twin's — and stay fixed across machines.
    for (ScenarioReport* report : {&delta, &rebuild}) {
      ResilienceRequest request;
      request.regex = "ax*b";
      request.semantics = Semantics::kBag;
      request.db = report == &delta ? latest : registry.Register(twin);
      ResilienceResponse response = engine.Evaluate(request);
      if (response.status.ok() && !response.result.infinite) {
        report->resilience_checksum += response.result.value;
      } else if (!response.status.ok()) {
        ++report->errors;
      }
      if (report->algorithm.empty()) {
        report->algorithm = response.stats.algorithm;
        report->complexity = response.stats.complexity;
        report->rule = response.stats.rule;
      }
    }
  }

  for (auto [report, samples] :
       {std::make_pair(&delta, &delta_micros),
        std::make_pair(&rebuild, &rebuild_micros)}) {
    report->solve_p50_micros = Percentile(*samples, 50);
    report->solve_p95_micros = Percentile(*samples, 95);
    report->solve_p99_micros = Percentile(*samples, 99);
    report->solve_max_micros = Percentile(*samples, 100);
    obs::LatencyHistogram histogram;
    for (double micros : *samples) histogram.Record(micros);
    report->solve_histogram = histogram.TakeSnapshot();
    double sum = 0;
    for (double micros : *samples) {
      sum += micros;
      report->total_wall_micros += micros;
    }
    if (!samples->empty()) {
      report->solve_mean_micros = sum / static_cast<double>(samples->size());
    }
    if (report->total_wall_micros > 0) {
      report->throughput_qps = static_cast<double>(report->instances) /
                               (report->total_wall_micros / 1e6);
    }
  }
  return {std::move(delta), std::move(rebuild)};
}

// Observability overhead pair: identical deep-product workloads on two
// fresh engines, per-request tracing off vs on. The engines alternate
// round by round — a paired design, so clock-speed drift and scheduler
// noise over the run hit both sides equally and the p50 delta isolates
// the tracing cost. CI (scripts/check_metrics_export.py) asserts the
// obs_on p50 stays within the overhead budget and the checksums match.
std::pair<ScenarioReport, ScenarioReport> RunObservabilityPair() {
  ScenarioReport off;
  off.name = "obs_off_deep_product";
  off.description =
      "ax*b over deep products, per-request tracing disabled "
      "(overhead control; interleaved with obs_on)";
  off.regex = "ax*b";
  off.semantics = "bag";
  ScenarioReport on = off;
  on.name = "obs_on_deep_product";
  on.description =
      "same workload with trace spans recorded on every request";

  DbRegistry registry;
  std::vector<DbHandle> handles;
  for (GraphDb& db : DeepProductDbs()) {
    handles.push_back(registry.Register(std::move(db), "obs_pair"));
  }
  std::vector<ResilienceRequest> requests;
  for (const DbHandle& handle : handles) {
    ResilienceRequest request;
    request.regex = "ax*b";
    request.db = handle;
    request.semantics = Semantics::kBag;
    requests.push_back(std::move(request));
  }

  // Single-threaded engines: the pair measures per-request cost, and a
  // pool would add scheduling jitter to exactly the delta under test.
  EngineOptions off_options;
  off_options.num_threads = 1;
  off_options.enable_tracing = false;
  EngineOptions on_options = off_options;
  on_options.enable_tracing = true;
  ResilienceEngine engine_off(off_options);
  ResilienceEngine engine_on(on_options);

  const int kWarmupRounds = 3;
  const int kRounds = 60;
  std::vector<double> off_micros, on_micros;
  for (int round = 0; round < kWarmupRounds + kRounds; ++round) {
    const bool timed = round >= kWarmupRounds;
    for (auto [engine, report, samples] :
         {std::make_tuple(&engine_off, &off, &off_micros),
          std::make_tuple(&engine_on, &on, &on_micros)}) {
      auto start = std::chrono::steady_clock::now();
      std::vector<ResilienceResponse> outcomes =
          engine->EvaluateBatch(requests);
      if (!timed) continue;
      report->total_wall_micros += MicrosSince(start);
      for (const ResilienceResponse& outcome : outcomes) {
        ++report->instances;
        if (!outcome.status.ok()) {
          ++report->errors;
          continue;
        }
        samples->push_back(outcome.stats.solve_micros);
        if (!outcome.result.infinite) {
          report->resilience_checksum += outcome.result.value;
        }
        if (report->algorithm.empty()) {
          report->algorithm = outcome.stats.algorithm;
          report->complexity = outcome.stats.complexity;
          report->rule = outcome.stats.rule;
        }
      }
    }
  }

  for (auto [report, samples] : {std::make_pair(&off, &off_micros),
                                 std::make_pair(&on, &on_micros)}) {
    report->solve_p50_micros = Percentile(*samples, 50);
    report->solve_p95_micros = Percentile(*samples, 95);
    report->solve_p99_micros = Percentile(*samples, 99);
    report->solve_max_micros = Percentile(*samples, 100);
    obs::LatencyHistogram histogram;
    double sum = 0;
    for (double micros : *samples) {
      histogram.Record(micros);
      sum += micros;
    }
    report->solve_histogram = histogram.TakeSnapshot();
    if (!samples->empty()) {
      report->solve_mean_micros = sum / static_cast<double>(samples->size());
    }
    if (report->total_wall_micros > 0) {
      report->throughput_qps = static_cast<double>(report->instances) /
                               (report->total_wall_micros / 1e6);
    }
  }
  return {std::move(off), std::move(on)};
}

// ---------------------------------------------------------------------------
// Persist mode: storage-layer cold loads vs text reparse, journal replay.

struct PersistRun {
  std::string name;
  int num_facts = 0;
  int reps = 0;
  double p50_micros = 0;
  double p95_micros = 0;
  int64_t resilience_checksum = 0;
};

GraphDb PersistBenchDb(int num_facts) {
  Rng rng(4242 + num_facts);
  return RandomGraphDb(&rng, /*num_nodes=*/num_facts / 10, num_facts,
                       {'a', 'x', 'b', 'm', 'n', 'o', 'p', 'q'},
                       /*max_multiplicity=*/4);
}

int64_t PersistChecksum(ResilienceEngine& engine, const DbHandle& handle) {
  ResilienceRequest request;
  request.regex = "ax*b";
  request.semantics = Semantics::kBag;
  request.db = handle;
  ResilienceResponse response = engine.Evaluate(request);
  if (!response.status.ok()) return -1;
  return response.result.infinite ? -2 : response.result.value;
}

int RunPersistBench(const std::string& output) {
  namespace fs = std::filesystem;
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  ResilienceEngine engine(engine_options);
  std::vector<PersistRun> runs;

  for (int num_facts : {4000, 64000}) {
    GraphDb db = PersistBenchDb(num_facts);
    const std::string text = SerializeGraphDb(db);
    const std::string dir =
        (fs::temp_directory_path() /
         ("rpqres_bench_persist_" + std::to_string(num_facts) + "_" +
          std::to_string(::getpid())))
            .string();
    std::error_code ec;
    fs::remove_all(dir, ec);
    {
      DbRegistry::Options options;
      options.storage_dir = dir;
      DbRegistry writer(options);
      writer.Register(std::move(db), "bench");
      Status storage = writer.storage_status();
      if (!storage.ok()) {
        std::fprintf(stderr, "error: segment write failed: %s\n",
                     storage.ToString().c_str());
        return 1;
      }
    }

    // Cold load: mmap the segment and materialize GraphDb + LabelIndex.
    // Each rep opens a fresh registry; the page cache stays warm across
    // reps (that is the deployment story too — the cold part is the
    // parse/index work the mmap path skips, not the disk).
    PersistRun cold;
    cold.name = "segment_cold_load";
    cold.num_facts = num_facts;
    cold.reps = 15;
    std::vector<double> cold_micros;
    for (int rep = 0; rep < cold.reps; ++rep) {
      auto start = std::chrono::steady_clock::now();
      Result<std::unique_ptr<DbRegistry>> opened =
          DbRegistry::OpenStorage(dir);
      double micros = MicrosSince(start);
      if (!opened.ok()) {
        std::fprintf(stderr, "error: OpenStorage failed: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      cold_micros.push_back(micros);
      if (rep == 0) {
        Result<DbHandle> handle = (*opened)->Resolve("bench@latest");
        if (handle.ok()) {
          cold.resilience_checksum = PersistChecksum(engine, *handle);
        }
      }
    }
    cold.p50_micros = Percentile(cold_micros, 50);
    cold.p95_micros = Percentile(cold_micros, 95);

    // The pre-storage restart path: reparse the text dump and Register
    // (full copy + from-scratch LabelIndex build).
    PersistRun reparse;
    reparse.name = "text_reparse";
    reparse.num_facts = num_facts;
    reparse.reps = 7;
    std::vector<double> reparse_micros;
    for (int rep = 0; rep < reparse.reps; ++rep) {
      auto start = std::chrono::steady_clock::now();
      DbRegistry registry;
      Result<GraphDb> parsed = ParseGraphDb(text);
      if (!parsed.ok()) {
        std::fprintf(stderr, "error: ParseGraphDb failed: %s\n",
                     parsed.status().ToString().c_str());
        return 1;
      }
      DbHandle handle = registry.Register(*std::move(parsed), "bench");
      reparse_micros.push_back(MicrosSince(start));
      if (rep == 0) {
        reparse.resilience_checksum = PersistChecksum(engine, handle);
      }
    }
    reparse.p50_micros = Percentile(reparse_micros, 50);
    reparse.p95_micros = Percentile(reparse_micros, 95);

    std::printf(
        "persist %6d facts  cold load p50 %9.1fus  reparse p50 %9.1fus  "
        "(%.1fx)  checksum %lld%s\n",
        num_facts, cold.p50_micros, reparse.p50_micros,
        cold.p50_micros > 0 ? reparse.p50_micros / cold.p50_micros : 0.0,
        static_cast<long long>(cold.resilience_checksum),
        cold.resilience_checksum == reparse.resilience_checksum
            ? ""
            : "  CHECKSUM MISMATCH");
    runs.push_back(std::move(cold));
    runs.push_back(std::move(reparse));
    fs::remove_all(dir, ec);
  }

  // Journal replay: restore = segment mmap + replaying 100 journaled
  // delta groups (compaction disabled so every group survives).
  PersistRun replay;
  replay.name = "journal_replay_100_commits";
  replay.num_facts = 2000;
  replay.reps = 10;
  const int kReplayCommits = 100;
  int64_t replay_records = 0;
  {
    const std::string dir =
        (fs::temp_directory_path() /
         ("rpqres_bench_persist_journal_" + std::to_string(::getpid())))
            .string();
    std::error_code ec;
    fs::remove_all(dir, ec);
    {
      DbRegistry::Options options;
      options.storage_dir = dir;
      options.compaction_min_overlay = 1 << 30;
      DbRegistry registry(options);
      Rng rng(271828);
      DbHandle latest =
          registry.Register(PersistBenchDb(replay.num_facts), "bench");
      for (int commit = 0; commit < kReplayCommits; ++commit) {
        DeltaBatch batch = registry.BeginDelta(latest);
        NodeId u = static_cast<NodeId>(
            rng.NextBelow(latest.db().num_nodes()));
        NodeId v = static_cast<NodeId>(
            rng.NextBelow(latest.db().num_nodes()));
        (void)batch.AddFact(u, 'x', v);
        NodeId n = batch.AddNode();
        (void)batch.AddFact(n, 'a', u);
        Result<DbHandle> committed = batch.Commit();
        if (!committed.ok()) {
          std::fprintf(stderr, "error: bench commit failed: %s\n",
                       committed.status().ToString().c_str());
          return 1;
        }
        latest = *std::move(committed);
      }
      if (!registry.storage_status().ok()) {
        std::fprintf(stderr, "error: journal writes failed\n");
        return 1;
      }
    }
    std::vector<double> replay_micros;
    for (int rep = 0; rep < replay.reps; ++rep) {
      auto start = std::chrono::steady_clock::now();
      Result<std::unique_ptr<DbRegistry>> opened =
          DbRegistry::OpenStorage(dir);
      double micros = MicrosSince(start);
      if (!opened.ok()) {
        std::fprintf(stderr, "error: replay OpenStorage failed: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      replay_micros.push_back(micros);
      if (rep == 0) {
        replay_records = (*opened)->gauges().storage_journal_records;
        Result<DbHandle> handle = (*opened)->Resolve("bench@latest");
        if (handle.ok()) {
          replay.resilience_checksum = PersistChecksum(engine, *handle);
        }
      }
    }
    replay.p50_micros = Percentile(replay_micros, 50);
    replay.p95_micros = Percentile(replay_micros, 95);
    fs::remove_all(dir, ec);
  }
  std::printf("persist journal replay  %d commits (%lld records)  p50 %9.1fus\n",
              kReplayCommits, static_cast<long long>(replay_records),
              replay.p50_micros);
  runs.push_back(replay);

  std::ostringstream out;
  out << "{\n  \"bench\": \"persist\",\n  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const PersistRun& run = runs[i];
    out << "    {\"name\": \"" << run.name
        << "\", \"num_facts\": " << run.num_facts
        << ", \"reps\": " << run.reps
        << ", \"p50_micros\": " << run.p50_micros
        << ", \"p95_micros\": " << run.p95_micros
        << ", \"resilience_checksum\": " << run.resilience_checksum << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"speedup\": [\n";
  bool first = true;
  for (int num_facts : {4000, 64000}) {
    const PersistRun* cold = nullptr;
    const PersistRun* reparse = nullptr;
    for (const PersistRun& run : runs) {
      if (run.num_facts != num_facts) continue;
      if (run.name == "segment_cold_load") cold = &run;
      if (run.name == "text_reparse") reparse = &run;
    }
    if (cold == nullptr || reparse == nullptr || cold->p50_micros <= 0) {
      continue;
    }
    if (!first) out << ",\n";
    first = false;
    out << "    {\"num_facts\": " << num_facts
        << ", \"cold_load_x_reparse\": "
        << reparse->p50_micros / cold->p50_micros << "}";
  }
  out << "\n  ],\n  \"journal_replay\": {\"commits\": " << kReplayCommits
      << ", \"records\": " << replay_records
      << ", \"p50_micros\": " << replay.p50_micros << "}\n}\n";

  std::ofstream json(output);
  json << out.str();
  if (!json) {
    std::fprintf(stderr, "error: failed writing %s\n", output.c_str());
    return 1;
  }
  std::printf("wrote %s\n", output.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Faults mode: the price of compiled-in failpoints on the commit path.

struct FaultsRun {
  std::string name;
  int commits = 0;
  double p50_micros = 0;   ///< per-commit (batch time / batch size)
  double p95_micros = 0;
  int64_t resilience_checksum = 0;  ///< ax*b on the final in-memory version
  int64_t restored_checksum = 0;    ///< same query after OpenStorage
};

// One side of the paired storm: a persistent registry that receives the
// same deterministic op stream as its twin, timed in batches.
struct FaultsSide {
  std::string dir;
  std::unique_ptr<DbRegistry> registry;
  DbHandle latest;
  Rng ops_rng{0};
  std::vector<double> commit_micros;
};

void ArmAllSitesAtZero() {
  for (std::string_view site : fault::KnownSites()) {
    fault::FailpointRegistry::Instance().Arm(
        site, fault::FaultSpec::WithProbability(fault::FaultKind::kEIO,
                                                /*probability=*/0.0,
                                                /*seed=*/1));
  }
}

int RunFaultsBench(const std::string& output) {
  namespace fs = std::filesystem;
  constexpr int kBatch = 16;
  constexpr int kWarmupRounds = 3;
  constexpr int kRounds = 40;
  constexpr int kBaseFacts = 2000;
  constexpr double kDisabledBudget = 0.01;  // fraction of the commit p50
  constexpr double kArmedSanityBudget = 1.25;  // armed p50 vs disabled p50
  constexpr double kArmedSlackMicros = 25.0;

  fault::FailpointRegistry::Instance().ResetAll();
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  ResilienceEngine engine(engine_options);

  FaultsSide sides[2];
  const char* names[2] = {"failpoints_disabled", "failpoints_armed_p0"};
  std::error_code ec;
  for (int s = 0; s < 2; ++s) {
    sides[s].dir = (fs::temp_directory_path() /
                    ("rpqres_bench_faults_" + std::to_string(s) + "_" +
                     std::to_string(::getpid())))
                       .string();
    fs::remove_all(sides[s].dir, ec);
    DbRegistry::Options options;
    options.storage_dir = sides[s].dir;
    sides[s].registry = std::make_unique<DbRegistry>(options);
    sides[s].latest =
        sides[s].registry->Register(PersistBenchDb(kBaseFacts), "bench");
    sides[s].ops_rng = Rng(987654321);  // identical streams on both sides
  }

  // Alternate sides round by round (paired design: drift hits both).
  // Arming happens OUTSIDE the timed region; the armed side evaluates
  // every site's spec on every storage syscall yet never fires.
  for (int round = 0; round < kWarmupRounds + kRounds; ++round) {
    const bool timed = round >= kWarmupRounds;
    for (int s = 0; s < 2; ++s) {
      FaultsSide& side = sides[s];
      if (s == 1) {
        ArmAllSitesAtZero();
      } else {
        fault::FailpointRegistry::Instance().ResetAll();
      }
      auto start = std::chrono::steady_clock::now();
      for (int commit = 0; commit < kBatch; ++commit) {
        const int nodes = side.latest.db().num_nodes();
        NodeId u = static_cast<NodeId>(side.ops_rng.NextBelow(nodes));
        NodeId v = static_cast<NodeId>(side.ops_rng.NextBelow(nodes));
        DeltaBatch batch = side.registry->BeginDelta(side.latest);
        (void)batch.AddFact(u, 'x', v);
        Result<DbHandle> committed = batch.Commit();
        if (!committed.ok()) {
          std::fprintf(stderr, "error: faults bench commit failed: %s\n",
                       committed.status().ToString().c_str());
          return 1;
        }
        side.latest = *std::move(committed);
      }
      double batch_micros = MicrosSince(start);
      if (timed) {
        side.commit_micros.push_back(batch_micros / kBatch);
      }
    }
  }
  // The loop above ends on an armed batch whose per-site counters are
  // still live: they price how many failpoint evaluations one commit
  // performs on this configuration's storage path.
  const int64_t armed_fires = fault::FailpointRegistry::Instance().TotalFires();
  int64_t evals_last_batch = 0;
  for (const fault::SiteStats& site :
       fault::FailpointRegistry::Instance().Stats()) {
    evals_last_batch += site.evaluations;
  }
  const double evals_per_commit =
      static_cast<double>(evals_last_batch) / kBatch;
  fault::FailpointRegistry::Instance().ResetAll();

  // The disabled fast path, priced alone: one evaluation per storage
  // syscall reduces to this relaxed load + branch.
  double check_nanos = 0;
  {
    constexpr int kChecks = 1 << 20;
    auto start = std::chrono::steady_clock::now();
    int fired = 0;
    for (int i = 0; i < kChecks; ++i) {
      fired += fault::Check(fault::sites::kJournalWrite).fired() ? 1 : 0;
    }
    check_nanos = MicrosSince(start) * 1e3 / kChecks;
    if (fired != 0) {
      std::fprintf(stderr, "error: disabled failpoint fired\n");
      return 1;
    }
  }

  FaultsRun runs[2];
  for (int s = 0; s < 2; ++s) {
    runs[s].name = names[s];
    runs[s].commits = static_cast<int>(sides[s].commit_micros.size()) * kBatch;
    runs[s].p50_micros = Percentile(sides[s].commit_micros, 50);
    runs[s].p95_micros = Percentile(sides[s].commit_micros, 95);
    runs[s].resilience_checksum = PersistChecksum(engine, sides[s].latest);
    if (!sides[s].registry->storage_status().ok()) {
      std::fprintf(stderr, "error: %s storm degraded storage: %s\n",
                   names[s],
                   sides[s].registry->storage_status().ToString().c_str());
      return 1;
    }
    sides[s].registry.reset();
    Result<std::unique_ptr<DbRegistry>> reopened =
        DbRegistry::OpenStorage(sides[s].dir);
    if (!reopened.ok()) {
      std::fprintf(stderr, "error: %s reopen failed: %s\n", names[s],
                   reopened.status().ToString().c_str());
      return 1;
    }
    Result<DbHandle> restored = (*reopened)->Resolve("bench@latest");
    runs[s].restored_checksum =
        restored.ok() ? PersistChecksum(engine, *restored) : -1;
    fs::remove_all(sides[s].dir, ec);
  }

  const double ratio = runs[0].p50_micros > 0
                           ? runs[1].p50_micros / runs[0].p50_micros
                           : 0.0;
  // The ISSUE gate: failpoints compiled in but DISABLED cost under 1% of
  // a commit. Priced directly — measured ns per disabled check times the
  // checks one commit actually performs, against the disabled p50.
  const double disabled_overhead_fraction =
      runs[0].p50_micros > 0
          ? (check_nanos * evals_per_commit) / (runs[0].p50_micros * 1e3)
          : 1.0;
  const bool disabled_ok = disabled_overhead_fraction <= kDisabledBudget;
  const bool armed_ok =
      runs[1].p50_micros <=
      runs[0].p50_micros * kArmedSanityBudget + kArmedSlackMicros;
  const bool checksums_ok =
      runs[0].resilience_checksum == runs[1].resilience_checksum &&
      runs[0].resilience_checksum == runs[0].restored_checksum &&
      runs[1].resilience_checksum == runs[1].restored_checksum;

  for (const FaultsRun& run : runs) {
    std::printf("faults %-22s %4d commits  p50 %8.2fus  p95 %8.2fus  "
                "checksum %lld (restored %lld)\n",
                run.name.c_str(), run.commits, run.p50_micros, run.p95_micros,
                static_cast<long long>(run.resilience_checksum),
                static_cast<long long>(run.restored_checksum));
  }
  std::printf(
      "faults disabled check: %.2fns/op x %.1f/commit = %.4f%% of p50 "
      "(budget %.0f%%)%s\n",
      check_nanos, evals_per_commit, disabled_overhead_fraction * 100,
      kDisabledBudget * 100, disabled_ok ? "" : "  DISABLED GATE FAILED");
  std::printf("faults armed-p0 fires: %lld  p50 ratio: %.4fx "
              "(sanity %.2fx + %.0fus)%s%s\n",
              static_cast<long long>(armed_fires), ratio, kArmedSanityBudget,
              kArmedSlackMicros, armed_ok ? "" : "  ARMED SANITY FAILED",
              checksums_ok ? "" : "  CHECKSUM MISMATCH");

  std::ostringstream out;
  out << "{\n  \"bench\": \"faults\",\n  \"sites\": "
      << fault::KnownSites().size()
      << ",\n  \"disabled_check_ns\": " << check_nanos
      << ",\n  \"armed_p0_fires\": " << armed_fires << ",\n  \"runs\": [\n";
  for (int s = 0; s < 2; ++s) {
    out << "    {\"name\": \"" << runs[s].name
        << "\", \"commits\": " << runs[s].commits
        << ", \"p50_micros\": " << runs[s].p50_micros
        << ", \"p95_micros\": " << runs[s].p95_micros
        << ", \"resilience_checksum\": " << runs[s].resilience_checksum
        << ", \"restored_checksum\": " << runs[s].restored_checksum << "}"
        << (s == 0 ? "," : "") << "\n";
  }
  out << "  ],\n  \"overhead\": {\"disabled_check_ns\": " << check_nanos
      << ", \"checks_per_commit\": " << evals_per_commit
      << ", \"disabled_fraction_of_p50\": " << disabled_overhead_fraction
      << ", \"disabled_budget\": " << kDisabledBudget
      << ", \"disabled_pass\": " << (disabled_ok ? "true" : "false")
      << ", \"armed_p0_p50_x_disabled\": " << ratio
      << ", \"armed_sanity_budget\": " << kArmedSanityBudget
      << ", \"armed_pass\": " << (armed_ok ? "true" : "false")
      << "},\n  \"checksums_equal\": " << (checksums_ok ? "true" : "false")
      << "\n}\n";
  std::ofstream json(output);
  json << out.str();
  if (!json) {
    std::fprintf(stderr, "error: failed writing %s\n", output.c_str());
    return 1;
  }
  std::printf("wrote %s\n", output.c_str());
  return (disabled_ok && armed_ok && checksums_ok && armed_fires == 0) ? 0
                                                                       : 1;
}

// ---------------------------------------------------------------------------
// Serve mode: sharded front-end throughput under seeded mixed traffic.

// Per-shard engine configuration is FIXED across shard counts — the
// bench measures scale-out, so more shards mean more total threads and
// more total ResultCache, never bigger per-shard resources.
constexpr int kServeThreadsPerShard = 2;
constexpr int kServeResultCacheCapacity = 96;
constexpr uint64_t kServeTrafficSeed = 31415926;
constexpr int kServeTimedOps = 5000;
constexpr int kServeWave = 250;  // in-flight bound: below every admission cap
constexpr int kServeStormRequests = 600;

EngineOptions ServeEngineOptions() {
  EngineOptions options;
  options.num_threads = kServeThreadsPerShard;
  options.max_word_length = 8;
  options.result_cache_capacity = kServeResultCacheCapacity;
  return options;
}

// 32 lineages x 4 queries x {set,bag} = 256 distinct read keys: far past
// one shard's 96-entry cache (a single shard thrashes), comfortably
// inside it once hashed over 4+ shards (each shard's slice stays
// resident).
workload::TrafficOptions ServeTrafficOptions() {
  workload::TrafficOptions options;
  options.num_lineages = 32;
  // Larger lineage databases than the test-suite default: a cache miss
  // prices a real solve, so the resident-vs-thrashing contrast between
  // shard counts dwarfs router/runner overhead and run-to-run noise.
  options.db_num_nodes = 80;
  options.db_num_facts = 320;
  return options;
}

struct ServeShardRun {
  int shards = 0;
  int64_t reads = 0;
  int64_t commits = 0;
  int64_t errors = 0;
  int64_t submitted = 0;  ///< timed-phase router submissions
  int64_t sheds = 0;
  double wall_micros = 0;
  double read_qps = 0;
  double shed_rate = 0;
  int64_t resilience_checksum = 0;
  int64_t result_cache_hits = 0;
  int64_t result_cache_misses = 0;
  struct PerShard {
    int64_t instances = 0;  ///< engine instances this shard ran
    uint64_t latency_count = 0;
    double p50_micros = 0;
    double p99_micros = 0;
  };
  std::vector<PerShard> per_shard;
};

struct ServeStorm {
  int shards = 0;
  int64_t submitted = 0;
  int64_t shed_deadline = 0;
  int64_t shed_exhausted = 0;
  double shed_rate = 0;
};

// One closed-loop traffic run at `num_shards`. When `storm` is non-null
// this is the reporting configuration: after the timed phase it also
// runs the tight-deadline shed storm and dumps the router's merged
// multi-shard Prometheus exposition into `*prom`.
ServeShardRun RunServeTraffic(int num_shards, ServeStorm* storm,
                              std::string* prom) {
  using workload::TrafficOp;

  serve::ShardedRegistry shards(num_shards, ServeEngineOptions());
  serve::Router router(&shards);
  workload::TrafficTrace trace(kServeTrafficSeed, ServeTrafficOptions());
  for (int i = 0; i < trace.num_lineages(); ++i) {
    shards.Register(trace.MakeDb(i), trace.lineage_name(i));
  }

  // Warm-up (untimed): enumerate the full read key space once, so shard
  // counts whose per-shard slice fits the ResultCache enter the timed
  // phase resident, and every plan is compiled everywhere.
  const std::vector<std::string>& pool = workload::TrafficReadPool();
  const int queries_per_lineage = trace.options().queries_per_lineage;
  std::vector<std::future<ResilienceResponse>> warm;
  for (int lineage = 0; lineage < trace.num_lineages(); ++lineage) {
    for (int j = 0; j < queries_per_lineage; ++j) {
      for (Semantics semantics : {Semantics::kBag, Semantics::kSet}) {
        ResilienceRequest request;
        request.regex =
            pool[(lineage * queries_per_lineage + j) % pool.size()];
        request.db_ref = trace.lineage_name(lineage) + "@latest";
        request.semantics = semantics;
        warm.push_back(router.Submit({"warmup", std::move(request)}));
      }
    }
  }
  for (auto& future : warm) future.get();
  router.Drain();

  const serve::RouterStats router_before = router.stats();
  const EngineStats engines_before = router.engine_stats();

  ServeShardRun run;
  run.shards = num_shards;

  std::vector<TrafficOp> ops = trace.NextOps(kServeTimedOps);
  std::vector<std::future<ResilienceResponse>> inflight;
  inflight.reserve(kServeWave);
  auto drain_wave = [&] {
    for (auto& future : inflight) {
      ResilienceResponse response = future.get();
      if (!response.status.ok()) {
        ++run.errors;
      } else if (!response.result.infinite) {
        run.resilience_checksum += response.result.value;
      }
    }
    inflight.clear();
  };

  const auto start = std::chrono::steady_clock::now();
  for (TrafficOp& op : ops) {
    if (op.kind == TrafficOp::Kind::kCommit) {
      DbRegistry& registry = shards.registry(shards.ShardForRef(op.db_ref));
      if (!workload::TrafficTrace::ApplyCommit(op, &registry).ok()) {
        ++run.errors;
      }
      ++run.commits;
      continue;
    }
    ResilienceRequest request;
    request.regex = op.regex;
    request.db_ref = op.db_ref;
    request.semantics = op.semantics;
    inflight.push_back(router.Submit(
        {"tenant" + std::to_string(op.tenant), std::move(request)}));
    ++run.reads;
    if (inflight.size() >= kServeWave) drain_wave();
  }
  drain_wave();
  router.Drain();
  run.wall_micros = MicrosSince(start);

  const serve::RouterStats router_after = router.stats();
  const EngineStats engines_after = router.engine_stats();
  run.submitted = router_after.submitted - router_before.submitted;
  run.sheds = router_after.sheds() - router_before.sheds();
  run.shed_rate = run.submitted > 0
                      ? static_cast<double>(run.sheds) /
                            static_cast<double>(run.submitted)
                      : 0.0;
  run.result_cache_hits =
      engines_after.result_cache_hits - engines_before.result_cache_hits;
  run.result_cache_misses =
      engines_after.result_cache_misses - engines_before.result_cache_misses;
  if (run.wall_micros > 0) {
    run.read_qps =
        static_cast<double>(run.reads) / (run.wall_micros / 1e6);
  }
  for (int i = 0; i < num_shards; ++i) {
    obs::LatencyHistogram::Snapshot latency =
        router.admission().ShardLatency(i);
    ServeShardRun::PerShard per_shard;
    per_shard.instances = shards.engine(i).stats().instances_run;
    per_shard.latency_count = latency.total_count;
    per_shard.p50_micros = latency.Quantile(0.5);
    per_shard.p99_micros = latency.Quantile(0.99);
    run.per_shard.push_back(per_shard);
  }

  if (storm != nullptr) {
    // Shed storm: a single tenant bursts against the hot lineage with
    // every other request already past its deadline — admission must
    // refuse those before any solver, and the per-tenant cap prices the
    // rest of the burst.
    storm->shards = num_shards;
    std::vector<std::future<ResilienceResponse>> futures;
    futures.reserve(kServeStormRequests);
    for (int i = 0; i < kServeStormRequests; ++i) {
      ResilienceRequest request;
      request.regex = pool[0];
      request.db_ref = trace.lineage_name(0) + "@latest";
      request.semantics = Semantics::kBag;
      if (i % 2 == 0) {
        request.options.deadline = std::chrono::steady_clock::now() -
                                   std::chrono::milliseconds(1);
      }
      futures.push_back(router.Submit({"storm", std::move(request)}));
    }
    for (auto& future : futures) {
      ++storm->submitted;
      const StatusCode code = future.get().status.code();
      if (code == StatusCode::kDeadlineExceeded) ++storm->shed_deadline;
      if (code == StatusCode::kResourceExhausted) ++storm->shed_exhausted;
    }
    router.Drain();
    storm->shed_rate =
        static_cast<double>(storm->shed_deadline + storm->shed_exhausted) /
        static_cast<double>(storm->submitted);
  }
  if (prom != nullptr) {
    *prom = router.ExportMetrics(MetricsFormat::kPrometheus);
  }
  return run;
}

std::string ServeJson(const std::vector<ServeShardRun>& runs,
                      const ServeStorm& storm) {
  const workload::TrafficTrace trace(kServeTrafficSeed,
                                     ServeTrafficOptions());
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"serve\",\n";
  out << "  \"traffic_seed\": " << kServeTrafficSeed << ",\n";
  out << "  \"engine\": {\"num_threads_per_shard\": " << kServeThreadsPerShard
      << ", \"result_cache_capacity\": " << kServeResultCacheCapacity
      << ", \"max_word_length\": 8},\n";
  out << "  \"traffic\": {\"num_lineages\": " << trace.num_lineages()
      << ", \"distinct_read_keys\": " << 2 * trace.distinct_read_keys()
      << ", \"timed_ops\": " << kServeTimedOps << "},\n";
  out << "  \"runs\": [\n";
  for (size_t r = 0; r < runs.size(); ++r) {
    const ServeShardRun& run = runs[r];
    out << "    {\"shards\": " << run.shards << ", \"reads\": " << run.reads
        << ", \"commits\": " << run.commits
        << ", \"errors\": " << run.errors
        << ", \"submitted\": " << run.submitted
        << ", \"sheds\": " << run.sheds
        << ", \"shed_rate\": " << run.shed_rate
        << ", \"wall_micros\": " << run.wall_micros
        << ", \"read_throughput_qps\": " << run.read_qps
        << ", \"resilience_checksum\": " << run.resilience_checksum
        << ", \"result_cache_hits\": " << run.result_cache_hits
        << ", \"result_cache_misses\": " << run.result_cache_misses
        << ",\n     \"per_shard\": [";
    for (size_t i = 0; i < run.per_shard.size(); ++i) {
      const ServeShardRun::PerShard& shard = run.per_shard[i];
      if (i > 0) out << ", ";
      out << "{\"shard\": " << i << ", \"instances\": " << shard.instances
          << ", \"latency_count\": " << shard.latency_count
          << ", \"p50_micros\": " << shard.p50_micros
          << ", \"p99_micros\": " << shard.p99_micros << "}";
    }
    out << "]}" << (r + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"speedup\": [\n";
  const ServeShardRun* single = nullptr;
  for (const ServeShardRun& run : runs) {
    if (run.shards == 1) single = &run;
  }
  bool first = true;
  for (const ServeShardRun& run : runs) {
    if (run.shards == 1 || single == nullptr || single->read_qps <= 0) {
      continue;
    }
    if (!first) out << ",\n";
    first = false;
    out << "    {\"shards\": " << run.shards
        << ", \"read_throughput_x_single\": "
        << run.read_qps / single->read_qps << "}";
  }
  out << "\n  ],\n";
  out << "  \"shed_storm\": {\"shards\": " << storm.shards
      << ", \"submitted\": " << storm.submitted
      << ", \"shed_deadline_exceeded\": " << storm.shed_deadline
      << ", \"shed_resource_exhausted\": " << storm.shed_exhausted
      << ", \"shed_rate\": " << storm.shed_rate << "}\n";
  out << "}\n";
  return out.str();
}

int RunServeBench(int requested_shards, const std::string& output) {
  std::vector<int> shard_counts;
  if (requested_shards > 0) {
    if (requested_shards != 1) shard_counts.push_back(1);
    shard_counts.push_back(requested_shards);
  } else {
    shard_counts = {1, 4, 16};
  }

  std::vector<ServeShardRun> runs;
  ServeStorm storm;
  std::string prom;
  for (size_t i = 0; i < shard_counts.size(); ++i) {
    const bool reporting = i + 1 == shard_counts.size();
    runs.push_back(RunServeTraffic(shard_counts[i],
                                   reporting ? &storm : nullptr,
                                   reporting ? &prom : nullptr));
    const ServeShardRun& run = runs.back();
    std::printf(
        "serve %2d shard%s  %5lld reads  %8.0f qps  shed %.3f  "
        "cache hit %lld/%lld  err %lld\n",
        run.shards, run.shards == 1 ? " " : "s",
        static_cast<long long>(run.reads), run.read_qps, run.shed_rate,
        static_cast<long long>(run.result_cache_hits),
        static_cast<long long>(run.result_cache_hits +
                               run.result_cache_misses),
        static_cast<long long>(run.errors));
    for (size_t s = 0; s < run.per_shard.size(); ++s) {
      std::printf("    shard %2zu  %5lld inst  p50 %9.1fus  p99 %9.1fus\n",
                  s, static_cast<long long>(run.per_shard[s].instances),
                  run.per_shard[s].p50_micros, run.per_shard[s].p99_micros);
    }
  }
  for (const ServeShardRun& run : runs) {
    if (run.shards != 1 && runs.front().shards == 1 &&
        runs.front().read_qps > 0) {
      std::printf("serve speedup %d shards vs 1: %.2fx\n", run.shards,
                  run.read_qps / runs.front().read_qps);
    }
  }
  std::printf("shed storm: %lld/%lld shed (rate %.3f)\n",
              static_cast<long long>(storm.shed_deadline +
                                     storm.shed_exhausted),
              static_cast<long long>(storm.submitted), storm.shed_rate);

  std::ofstream json(output);
  json << ServeJson(runs, storm);
  if (!json) {
    std::fprintf(stderr, "error: failed writing %s\n", output.c_str());
    return 1;
  }
  std::printf("wrote %s\n", output.c_str());

  std::string prom_path = output;
  const std::string json_suffix = ".json";
  if (prom_path.size() > json_suffix.size() &&
      prom_path.compare(prom_path.size() - json_suffix.size(),
                        json_suffix.size(), json_suffix) == 0) {
    prom_path.resize(prom_path.size() - json_suffix.size());
  }
  prom_path += ".prom";
  std::ofstream prom_file(prom_path);
  prom_file << prom;
  if (!prom_file) {
    std::fprintf(stderr, "error: failed writing %s\n", prom_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", prom_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool serve_mode = false;
  bool persist_mode = false;
  bool faults_mode = false;
  int serve_shards = 0;
  std::string output;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--serve") {
      serve_mode = true;
    } else if (arg == "--persist") {
      persist_mode = true;
    } else if (arg == "--faults") {
      faults_mode = true;
    } else if (arg == "--shards" && i + 1 < argc) {
      serve_shards = std::atoi(argv[++i]);
    } else {
      output = arg;
    }
  }
  if (faults_mode) {
    return RunFaultsBench(output.empty() ? "BENCH_faults.json" : output);
  }
  if (persist_mode) {
    return RunPersistBench(output.empty() ? "BENCH_persist.json" : output);
  }
  if (serve_mode) {
    return RunServeBench(serve_shards,
                         output.empty() ? "BENCH_serve.json" : output);
  }
  if (output.empty()) output = "BENCH_engine.json";

  Harness harness;

  harness.AddScenario({.name = "local_ax_star_b",
                       .description = "local-tractable ax*b over layered "
                                      "flow networks (Thm 3.13)",
                       .regex = "ax*b",
                       .semantics = Semantics::kBag,
                       .databases = LocalDbs(),
                       .repetitions = 5});
  harness.AddScenario({.name = "bcl_ab_or_bc",
                       .description = "bipartite chain ab|bc over word "
                                      "soups (Prp 7.6)",
                       .regex = "ab|bc",
                       .semantics = Semantics::kBag,
                       .databases = BclDbs(),
                       .repetitions = 5});
  harness.AddScenario({.name = "one_dangling_abc_be",
                       .description = "one-dangling abc|be over "
                                      "dangling-pair instances (Prp 7.9)",
                       .regex = "abc|be",
                       .semantics = Semantics::kBag,
                       .databases = OneDanglingDbs(),
                       .repetitions = 5});
  harness.AddScenario({.name = "exact_ab_bc_ca",
                       .description = "NP-hard ab|bc|ca, exact branch & "
                                      "bound fallback on small dbs",
                       .regex = "ab|bc|ca",
                       .semantics = Semantics::kSet,
                       .databases = ExactDbs(),
                       .repetitions = 3});

  // Mixed workload: every query above against the small exact dbs plus
  // the BCL soups — all plans already cached from the scenarios above,
  // so this measures steady-state dispatch.
  {
    Scenario mixed;
    mixed.name = "mixed_cache_churn";
    mixed.description =
        "all four queries interleaved (plan cache steady state)";
    mixed.regex = "ax*b";  // representative; per-instance regexes vary
    mixed.semantics = Semantics::kBag;
    mixed.databases = BclDbs();
    mixed.repetitions = 2;
    harness.AddScenario(mixed);
  }

  harness.AddScenario({.name = "handle_vs_raw_v2_handle",
                       .description = "ax*b over noisy flow dbs via "
                                      "registered DbHandle + label index",
                       .regex = "ax*b",
                       .semantics = Semantics::kBag,
                       .databases = NoisyLocalDbs(),
                       .repetitions = 20});
  harness.AddScenario({.name = "flow_core_csr_deep_product",
                       .description = "ax*b over deep layered products "
                                      "(zero-copy CSR + scratch reuse)",
                       .regex = "ax*b",
                       .semantics = Semantics::kBag,
                       .databases = DeepProductDbs(),
                       .repetitions = 10});
  harness.AddScenario({.name = "flow_core_csr_sparse_product",
                       .description = "ax*b with stray x-facts in dead "
                                      "product regions (pruning win)",
                       .regex = "ax*b",
                       .semantics = Semantics::kBag,
                       .databases = SparseProductDbs(),
                       .repetitions = 15});

  std::vector<ScenarioReport> reports = harness.RunAll();

  // Registry v3 scenarios. The hot result cache runs on its own engine:
  // enabling it on the shared harness engine would collapse every other
  // scenario into cache hits and break the BENCH trajectory.
  {
    EngineOptions cached_options;
    cached_options.result_cache_capacity = 4096;
    Harness cached_harness(cached_options);
    cached_harness.AddScenario(
        {.name = "result_cache_hot",
         .description = "ax*b repeats over one registered version, "
                        "version-keyed ResultCache on (hits after warm-up)",
         .regex = "ax*b",
         .semantics = Semantics::kBag,
         .databases = NoisyLocalDbs(),
         .repetitions = 20});
    for (ScenarioReport& report : cached_harness.RunAll()) {
      reports.push_back(std::move(report));
    }
  }
  {
    auto [delta, rebuild] = RunDeltaCommitScenarios(harness.engine());
    reports.push_back(std::move(delta));
    reports.push_back(std::move(rebuild));
  }

  {
    auto [obs_off, obs_on] = RunObservabilityPair();
    reports.push_back(std::move(obs_off));
    reports.push_back(std::move(obs_on));
  }

  Status write_status = harness.WriteJson(output, reports);
  if (!write_status.ok()) {
    std::fprintf(stderr, "error: %s\n", write_status.ToString().c_str());
    return 1;
  }

  // Prometheus exposition from the main harness engine, for the CI
  // metrics validator (BENCH_engine.json -> BENCH_engine.prom).
  std::string prom_path = output;
  const std::string json_suffix = ".json";
  if (prom_path.size() > json_suffix.size() &&
      prom_path.compare(prom_path.size() - json_suffix.size(),
                        json_suffix.size(), json_suffix) == 0) {
    prom_path.resize(prom_path.size() - json_suffix.size());
  }
  prom_path += ".prom";
  {
    std::ofstream prom(prom_path);
    prom << harness.engine().ExportMetrics(MetricsFormat::kPrometheus,
                                           &harness.registry());
    if (!prom) {
      std::fprintf(stderr, "error: failed writing %s\n", prom_path.c_str());
      return 1;
    }
  }
  std::printf("wrote %s\n", prom_path.c_str());

  for (const ScenarioReport& r : reports) {
    std::printf(
        "%-28s %-10s %4d inst  p50 %9.1fus  p95 %9.1fus  %8.0f qps  "
        "pruned %lld/%lld  via %s\n",
        r.name.c_str(), r.complexity.c_str(), r.instances,
        r.solve_p50_micros, r.solve_p95_micros, r.throughput_qps,
        static_cast<long long>(r.pruned_vertices_max),
        static_cast<long long>(r.pruned_edges_max), r.algorithm.c_str());
  }
  std::printf("wrote %s\n", output.c_str());
  return 0;
}
