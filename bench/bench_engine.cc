// bench/bench_engine — the unified engine benchmark: replays generated
// workloads for each side of the paper's classification through
// ResilienceEngine and writes BENCH_engine.json (p50/p95 latency and
// throughput per scenario). Usage: bench_engine [output.json]
//
// Scenarios cover every dispatch path:
//   local_ax_star_b    — Thm 3.13 local flow (layered MinCut networks)
//   bcl_a_or_bc        — Prp 7.6 bipartite chain flow (word soups)
//   one_dangling       — Prp 7.9 one-dangling flow (dangling-pair dbs)
//   exact_ab_bc_ca     — NP-hard side, exact branch & bound (small dbs)
//   mixed_cache_churn  — all four queries interleaved over one batch,
//                        exercising the plan cache under a mixed workload
//   handle_vs_raw_*    — the serving API v2 comparison: the same noisy
//                        databases once through registered DbHandles (the
//                        precomputed per-label index) and once through
//                        the deprecated v1 raw-pointer shim (full fact
//                        scan per solve); the delta is the index win

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "graphdb/generators.h"
#include "util/rng.h"

using namespace rpqres;
using namespace rpqres::bench;

namespace {

std::vector<GraphDb> LocalDbs() {
  Rng rng(1234);
  std::vector<GraphDb> dbs;
  for (int layers : {2, 4, 8, 16}) {
    dbs.push_back(LayeredFlowDb(&rng, /*sources=*/4, layers, /*width=*/6,
                                /*sinks=*/4, /*density=*/0.4,
                                /*max_multiplicity=*/50));
  }
  return dbs;
}

std::vector<GraphDb> BclDbs() {
  Rng rng(99);
  std::vector<GraphDb> dbs;
  for (int count : {8, 16, 32}) {
    dbs.push_back(WordSoupDb(&rng, {"ab", "bc"}, count,
                             /*extra_labels=*/{'a', 'b', 'c'},
                             /*cross_links=*/2 * count,
                             /*max_multiplicity=*/10));
  }
  return dbs;
}

std::vector<GraphDb> OneDanglingDbs() {
  Rng rng(7);
  std::vector<GraphDb> dbs;
  for (int pairs : {8, 16, 32}) {
    dbs.push_back(DanglingPairsDb(&rng, /*num_nodes=*/30,
                                  /*base_facts=*/60,
                                  /*base_labels=*/{'a', 'b', 'c'},
                                  /*x=*/'b', /*y=*/'e', pairs,
                                  /*max_multiplicity=*/5));
  }
  return dbs;
}

std::vector<GraphDb> ExactDbs() {
  Rng rng(42);
  std::vector<GraphDb> dbs;
  for (int facts : {12, 18, 24}) {
    dbs.push_back(RandomGraphDb(&rng, /*num_nodes=*/8, facts,
                                {'a', 'b', 'c'}, /*max_multiplicity=*/3));
  }
  return dbs;
}

// Layered ax*b flow networks drowned in inert noise facts (labels the
// query never reads). The indexed handle path skips the noise without
// touching it; the raw-pointer path scans and filters every fact on
// every solve — the gap between the two scenarios is the label-index
// win that DbRegistry registration buys.
std::vector<GraphDb> NoisyLocalDbs() {
  Rng rng(2718);
  std::vector<GraphDb> dbs;
  for (int layers : {4, 8, 16}) {
    GraphDb db = LayeredFlowDb(&rng, /*sources=*/4, layers, /*width=*/6,
                               /*sinks=*/4, /*density=*/0.4,
                               /*max_multiplicity=*/50);
    int nodes = db.num_nodes();
    int noise_facts = 20 * db.num_facts();  // noise dominates the fact array
    for (int i = 0; i < noise_facts; ++i) {
      char label = static_cast<char>('m' + rng.NextBelow(4));
      db.AddFact(static_cast<NodeId>(rng.NextBelow(nodes)), label,
                 static_cast<NodeId>(rng.NextBelow(nodes)),
                 /*multiplicity=*/1 + rng.NextBelow(5));
    }
    dbs.push_back(std::move(db));
  }
  return dbs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string output = argc > 1 ? argv[1] : "BENCH_engine.json";

  Harness harness;

  harness.AddScenario({.name = "local_ax_star_b",
                       .description = "local-tractable ax*b over layered "
                                      "flow networks (Thm 3.13)",
                       .regex = "ax*b",
                       .semantics = Semantics::kBag,
                       .databases = LocalDbs(),
                       .repetitions = 5});
  harness.AddScenario({.name = "bcl_ab_or_bc",
                       .description = "bipartite chain ab|bc over word "
                                      "soups (Prp 7.6)",
                       .regex = "ab|bc",
                       .semantics = Semantics::kBag,
                       .databases = BclDbs(),
                       .repetitions = 5});
  harness.AddScenario({.name = "one_dangling_abc_be",
                       .description = "one-dangling abc|be over "
                                      "dangling-pair instances (Prp 7.9)",
                       .regex = "abc|be",
                       .semantics = Semantics::kBag,
                       .databases = OneDanglingDbs(),
                       .repetitions = 5});
  harness.AddScenario({.name = "exact_ab_bc_ca",
                       .description = "NP-hard ab|bc|ca, exact branch & "
                                      "bound fallback on small dbs",
                       .regex = "ab|bc|ca",
                       .semantics = Semantics::kSet,
                       .databases = ExactDbs(),
                       .repetitions = 3});

  // Mixed workload: every query above against the small exact dbs plus
  // the BCL soups — all plans already cached from the scenarios above,
  // so this measures steady-state dispatch.
  {
    Scenario mixed;
    mixed.name = "mixed_cache_churn";
    mixed.description =
        "all four queries interleaved (plan cache steady state)";
    mixed.regex = "ax*b";  // representative; per-instance regexes vary
    mixed.semantics = Semantics::kBag;
    mixed.databases = BclDbs();
    mixed.repetitions = 2;
    harness.AddScenario(mixed);
  }

  // v1 vs v2: identical noisy databases, identical query — only the
  // database plumbing differs. Compare solve_p50/throughput of the two
  // rows (the resilience_checksum must match).
  {
    std::vector<GraphDb> noisy = NoisyLocalDbs();
    harness.AddScenario({.name = "handle_vs_raw_v2_handle",
                         .description = "ax*b over noisy flow dbs via "
                                        "registered DbHandle + label index",
                         .regex = "ax*b",
                         .semantics = Semantics::kBag,
                         .databases = noisy,
                         .repetitions = 20,
                         .use_raw_pointer_api = false});
    harness.AddScenario({.name = "handle_vs_raw_v1_raw",
                         .description = "ax*b over the same dbs via the "
                                        "deprecated raw-pointer shim",
                         .regex = "ax*b",
                         .semantics = Semantics::kBag,
                         .databases = noisy,
                         .repetitions = 20,
                         .use_raw_pointer_api = true});
  }

  std::vector<ScenarioReport> reports = harness.RunAll();

  Status write_status = harness.WriteJson(output, reports);
  if (!write_status.ok()) {
    std::fprintf(stderr, "error: %s\n", write_status.ToString().c_str());
    return 1;
  }

  for (const ScenarioReport& r : reports) {
    std::printf(
        "%-24s %-9s %-10s %4d inst  p50 %9.1fus  p95 %9.1fus  %8.0f qps  "
        "via %s\n",
        r.name.c_str(), r.api.c_str(), r.complexity.c_str(), r.instances,
        r.solve_p50_micros, r.solve_p95_micros, r.throughput_qps,
        r.algorithm.c_str());
  }
  std::printf("wrote %s\n", output.c_str());
  return 0;
}
