// rpqres — bench/bench_workload: the differential-oracle fuzz CLI.
//
// Default mode runs the class-stratified workload sweep (plan vs exact
// solver on every instance, brute-force cross-check on tiny ones), prints
// a per-class summary, writes BENCH_workload.json, and exits nonzero if
// any mismatch survived — each mismatch prints a one-line replay command.
//
//   bench_workload [--seed N] [--per-class N] [--threads N]
//                  [--size-class 0|1|2] [--exact-budget NODES]
//                  [--no-minimize] [--out PATH]
//   bench_workload --replay SEED   # rebuild + re-judge one instance
//
// --exact-budget caps the exact reference solver's branch & bound (search
// nodes per solve); pairs exceeding it count inconclusive, which is how
// the nightly size_class 1/2 large-instance sweep stays bounded.
//
// The JSON report follows the BENCH_engine.json conventions (flat schema,
// no external dependencies).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "fault/failpoints.h"
#include "workload/chaos.h"
#include "workload/churn.h"
#include "workload/differential_oracle.h"

namespace rpqres {
namespace {

using workload::DifferentialOracle;
using workload::OracleClassReport;
using workload::OracleMismatch;
using workload::OracleOptions;
using workload::OracleReport;
using workload::QueryClassName;
using workload::WorkloadInstance;

std::string SemanticsName(Semantics semantics) {
  return semantics == Semantics::kSet ? "set" : "bag";
}

std::string ReportToJson(const DifferentialOracle& oracle,
                         const OracleReport& report) {
  using bench::JsonEscape;
  std::string json = "{\n";
  json += "  \"schema\": \"rpqres_workload_fuzz_v1\",\n";
  json += "  \"base_seed\": " + std::to_string(oracle.options().base_seed) +
          ",\n";
  json += "  \"instances_per_class\": " +
          std::to_string(oracle.options().instances_per_class) + ",\n";
  json += "  \"size_class\": " +
          std::to_string(oracle.options().workload.db.size_class) + ",\n";
  json += "  \"exact_budget\": " +
          std::to_string(oracle.options().max_exact_search_nodes) + ",\n";
  json += "  \"instances\": " + std::to_string(report.instances) + ",\n";
  json += "  \"generation_failures\": " +
          std::to_string(report.generation_failures) + ",\n";
  json += "  \"inconclusive\": " + std::to_string(report.inconclusive) +
          ",\n";
  json += "  \"mismatches\": " + std::to_string(report.mismatches.size()) +
          ",\n";
  json += "  \"wall_ms\": " + std::to_string(report.wall_micros / 1000.0) +
          ",\n";
  json += "  \"classes\": [\n";
  for (size_t i = 0; i < report.per_class.size(); ++i) {
    const OracleClassReport& c = report.per_class[i];
    json += "    {\"class\": \"" + std::string(QueryClassName(c.query_class)) +
            "\", \"instances\": " + std::to_string(c.instances) +
            ", \"mismatches\": " + std::to_string(c.mismatches) +
            ", \"generation_failures\": " +
            std::to_string(c.generation_failures) +
            ", \"brute_force_checked\": " +
            std::to_string(c.brute_force_checked) +
            ", \"inconclusive\": " + std::to_string(c.inconclusive) +
            ", \"wall_ms\": " + std::to_string(c.wall_micros / 1000.0) +
            ", \"by_algorithm\": {";
    bool first = true;
    for (const auto& [algorithm, count] : c.by_algorithm) {
      if (!first) json += ", ";
      first = false;
      json += "\"" + JsonEscape(algorithm) + "\": " + std::to_string(count);
    }
    json += "}}";
    json += i + 1 < report.per_class.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"mismatch_details\": [\n";
  for (size_t i = 0; i < report.mismatches.size(); ++i) {
    const OracleMismatch& m = report.mismatches[i];
    json += "    {\"seed\": " + std::to_string(m.seed) + ", \"class\": \"" +
            QueryClassName(m.query_class) + "\", \"regex\": \"" +
            JsonEscape(m.regex) + "\", \"semantics\": \"" +
            SemanticsName(m.semantics) + "\", \"detail\": \"" +
            JsonEscape(m.detail) + "\", \"replay\": \"" +
            JsonEscape(m.replay) + "\", \"minimized_facts\": " +
            std::to_string(m.minimized_facts) + ", \"minimized_db\": \"" +
            JsonEscape(m.minimized_db) + "\"}";
    json += i + 1 < report.mismatches.size() ? ",\n" : "\n";
  }
  json += "  ]\n";
  json += "}\n";
  return json;
}

void PrintReport(const OracleReport& report) {
  std::printf("%-14s %10s %10s %10s %10s %10s %10s\n", "class", "instances",
              "mismatch", "gen-fail", "brute-ck", "inconcl", "wall-ms");
  for (const OracleClassReport& c : report.per_class) {
    std::printf("%-14s %10d %10d %10d %10d %10d %10.1f\n",
                QueryClassName(c.query_class), c.instances, c.mismatches,
                c.generation_failures, c.brute_force_checked, c.inconclusive,
                c.wall_micros / 1000.0);
  }
  std::printf("total: %lld instances, %zu mismatches, %lld inconclusive, "
              "%.1f ms\n",
              static_cast<long long>(report.instances),
              report.mismatches.size(),
              static_cast<long long>(report.inconclusive),
              report.wall_micros / 1000.0);
  for (const OracleMismatch& m : report.mismatches) {
    std::printf("MISMATCH seed=%llu class=%s regex=%s semantics=%s: %s\n",
                static_cast<unsigned long long>(m.seed),
                QueryClassName(m.query_class), m.regex.c_str(),
                SemanticsName(m.semantics).c_str(), m.detail.c_str());
    std::printf("  replay: %s\n", m.replay.c_str());
    std::printf("  minimized counterexample (%d facts):\n%s\n",
                m.minimized_facts, m.minimized_db.c_str());
  }
}

/// --churn N: sweep N seeded delta-commit churn sequences (the versioned
/// registry's delta-vs-rebuild equivalence check; see workload/churn.h).
int RunChurn(uint64_t base_seed, int sequences, int threads) {
  workload::ChurnOptions options;
  options.engine.num_threads = threads;
  workload::ChurnHarness harness(options);
  int64_t commits = 0, ops = 0, inconclusive = 0, generation_failures = 0;
  std::vector<std::string> mismatches;
  for (int i = 0; i < sequences; ++i) {
    workload::ChurnReport report = harness.Run(base_seed + i);
    commits += report.commits;
    ops += report.ops;
    inconclusive += report.inconclusive;
    if (report.generation_failed) ++generation_failures;
    for (const std::string& mismatch : report.mismatches) {
      mismatches.push_back(mismatch);
    }
  }
  std::printf(
      "churn: %d sequences, %lld commits, %lld ops, %lld inconclusive, "
      "%lld gen-fail, %zu mismatches\n",
      sequences, static_cast<long long>(commits), static_cast<long long>(ops),
      static_cast<long long>(inconclusive),
      static_cast<long long>(generation_failures), mismatches.size());
  for (const std::string& mismatch : mismatches) {
    std::printf("CHURN MISMATCH %s\n", mismatch.c_str());
  }
  return mismatches.empty() ? 0 : 1;
}

/// --chaos N: the crash-chaos sweep — N seeds per failpoint site, each
/// seed forked, crashed at the site, reopened, and verified against an
/// in-memory twin (see workload/chaos.h).
int RunChaos(uint64_t base_seed, int seeds_per_site, int threads,
             const std::string& only_site) {
  workload::ChaosOptions options;
  options.engine.num_threads = threads;
  workload::ChaosHarness harness(options);
  std::vector<std::string> sites;
  if (only_site.empty()) {
    for (std::string_view site : fault::KnownSites()) {
      sites.emplace_back(site);
    }
  } else {
    sites.push_back(only_site);
  }
  int64_t runs = 0, crashed = 0, clean = 0, generation_failures = 0,
          inconclusive = 0;
  std::vector<std::string> mismatches;
  std::printf("%-28s %8s %8s %8s %10s\n", "site", "runs", "crashed", "clean",
              "mismatch");
  for (const std::string& site : sites) {
    int64_t site_runs = 0, site_crashed = 0, site_clean = 0;
    size_t site_mismatches = mismatches.size();
    for (int i = 0; i < seeds_per_site; ++i) {
      workload::ChaosReport report = harness.Run(site, base_seed + i);
      if (report.generation_failed) {
        ++generation_failures;
        continue;
      }
      ++site_runs;
      if (report.crashed) {
        ++site_crashed;
      } else if (report.exit_status == 0) {
        ++site_clean;
      }
      inconclusive += report.inconclusive;
      for (const std::string& mismatch : report.mismatches) {
        mismatches.push_back(mismatch);
      }
    }
    std::printf("%-28s %8lld %8lld %8lld %10zu\n", site.c_str(),
                static_cast<long long>(site_runs),
                static_cast<long long>(site_crashed),
                static_cast<long long>(site_clean),
                mismatches.size() - site_mismatches);
    runs += site_runs;
    crashed += site_crashed;
    clean += site_clean;
  }
  std::printf(
      "chaos: %lld runs, %lld crashed-as-injected, %lld clean, "
      "%lld inconclusive, %lld gen-fail, %zu mismatches\n",
      static_cast<long long>(runs), static_cast<long long>(crashed),
      static_cast<long long>(clean), static_cast<long long>(inconclusive),
      static_cast<long long>(generation_failures), mismatches.size());
  for (const std::string& mismatch : mismatches) {
    std::printf("CHAOS MISMATCH %s\n", mismatch.c_str());
  }
  return mismatches.empty() ? 0 : 1;
}

int Replay(DifferentialOracle& oracle, uint64_t seed) {
  Result<WorkloadInstance> instance = oracle.BuildInstance(seed);
  if (!instance.ok()) {
    std::printf("seed %llu does not derive an instance: %s\n",
                static_cast<unsigned long long>(seed),
                instance.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", DescribeInstance(*instance).c_str());
  std::printf("classification: %s\n",
              instance->query.classification.rule.c_str());
  std::printf("database:\n%s\n", instance->db.ToString().c_str());
  OracleReport report = oracle.RunSeeds({seed});
  PrintReport(report);
  return report.clean() ? 0 : 1;
}

int Main(int argc, char** argv) {
  OracleOptions options;
  std::string out_path = "BENCH_workload.json";
  bool replay = false;
  uint64_t replay_seed = 0;
  int churn_sequences = 0;
  int chaos_seeds = 0;
  std::string chaos_site;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      options.base_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--per-class") {
      options.instances_per_class = std::atoi(next());
    } else if (arg == "--threads") {
      options.engine.num_threads = std::atoi(next());
    } else if (arg == "--size-class") {
      options.workload.db.size_class = std::atoi(next());
    } else if (arg == "--exact-budget") {
      options.max_exact_search_nodes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--no-minimize") {
      options.minimize_counterexamples = false;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--replay") {
      replay = true;
      replay_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--churn") {
      churn_sequences = std::atoi(next());
    } else if (arg == "--chaos") {
      chaos_seeds = std::atoi(next());
    } else if (arg == "--chaos-site") {
      chaos_site = next();
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_workload [--seed N] [--per-class N] [--threads N]\n"
          "                      [--size-class 0|1|2] [--exact-budget N]\n"
          "                      [--no-minimize] [--out PATH]\n"
          "                      | --replay SEED | --churn SEQUENCES\n"
          "                      | --chaos SEEDS_PER_SITE [--chaos-site S]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  if (options.instances_per_class < 1) {
    std::fprintf(stderr, "--per-class must be >= 1\n");
    return 2;
  }
  if (options.engine.num_threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 2;
  }
  if (options.workload.db.size_class < 0 ||
      options.workload.db.size_class > 2) {
    std::fprintf(stderr, "--size-class must be 0, 1, or 2\n");
    return 2;
  }
  if (options.max_exact_search_nodes < 1) {
    std::fprintf(stderr, "--exact-budget must be >= 1\n");
    return 2;
  }

  if (churn_sequences > 0) {
    return RunChurn(options.base_seed, churn_sequences,
                    options.engine.num_threads);
  }
  if (chaos_seeds > 0) {
    return RunChaos(options.base_seed, chaos_seeds, options.engine.num_threads,
                    chaos_site);
  }

  DifferentialOracle oracle(options);
  if (replay) return Replay(oracle, replay_seed);

  OracleReport report = oracle.RunAll();
  PrintReport(report);
  std::string json = ReportToJson(oracle, report);
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  return report.clean() ? 0 : 1;
}

}  // namespace
}  // namespace rpqres

int main(int argc, char** argv) { return rpqres::Main(argc, argv); }
