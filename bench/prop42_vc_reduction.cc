// bench/prop42_vc_reduction — validates Proposition 4.2 + Claim 4.12 end
// to end: for verified gadgets and random graphs G, the encoding Ξ of G
// satisfies RES_set(Q_L, Ξ) = vc(G) + m(ℓ−1)/2, computed with the exact
// solver on one side and the exact vertex-cover solver on the other.

#include <iostream>

#include "gadgets/encoding.h"
#include "gadgets/paper_gadgets.h"
#include "lang/language.h"
#include "resilience/exact.h"
#include "util/rng.h"
#include "util/table.h"

using namespace rpqres;

int main() {
  std::cout << "=== Prp 4.2 / Claim 4.12: vertex-cover reduction checks "
               "===\n\n";
  struct Case {
    const char* regex;
    PreGadget gadget;
  };
  std::vector<Case> cases;
  cases.push_back({"aa", AaGadget()});
  cases.push_back({"aaa", AaaGadget()});
  cases.push_back({"aab", AabGadget()});
  cases.push_back({"ab|bc|ca", AbBcCaGadget()});
  cases.push_back({"abcd|bef", AbcdGadget()});

  TextTable table;
  table.SetHeader({"language", "graph", "vc(G)", "ℓ", "predicted",
                   "RES_set(Ξ)", "match"});
  Rng rng(42);
  int failures = 0;
  for (Case& c : cases) {
    Language lang = Language::MustFromRegexString(c.regex);
    Result<GadgetVerification> v = VerifyGadget(lang, c.gadget);
    if (!v.ok() || !v->valid) {
      table.AddRow({c.regex, "-", "-", "-", "-", "-", "gadget invalid"});
      ++failures;
      continue;
    }
    int ell = v->odd_path.path_edges;
    for (int trial = 0; trial < 3; ++trial) {
      UndirectedGraph g =
          RandomUndirectedGraph(&rng, 4 + trial, 4 + 2 * trial);
      if (g.edges.empty()) continue;
      GraphDb encoding = EncodeGraph(OrientArbitrarily(g), c.gadget);
      Capacity predicted = PredictedEncodingResilience(g, ell);
      Result<ResilienceResult> res =
          SolveExactResilience(lang, encoding, Semantics::kSet);
      if (!res.ok()) {
        table.AddRow({c.regex, "-", "-", "-", "-", "-",
                      res.status().ToString()});
        ++failures;
        continue;
      }
      bool match = res->value == predicted;
      if (!match) ++failures;
      table.AddRow({c.regex,
                    "n=" + std::to_string(g.num_vertices) +
                        ",m=" + std::to_string(g.edges.size()),
                    std::to_string(VertexCoverNumber(g)),
                    std::to_string(ell), std::to_string(predicted),
                    std::to_string(res->value), match ? "✓" : "✗"});
    }
  }
  table.Print(std::cout);
  std::cout << "\nFailures: " << failures << "\n";
  return failures == 0 ? 0 : 1;
}
