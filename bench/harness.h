// rpqres — bench/harness: the unified engine benchmark runner.
//
// A scenario = one query replayed over a family of generated databases
// through the ResilienceEngine batch API. The harness runs every scenario,
// aggregates per-instance wall times into p50/p95/throughput, and emits a
// machine-readable JSON report (BENCH_engine.json) — the trajectory format
// all later scaling PRs append to, replacing per-bench ad-hoc printing.
//
// No external dependencies: JSON is written by a minimal serializer here
// (the report is flat: objects, arrays, strings, numbers).

#ifndef RPQRES_BENCH_HARNESS_H_
#define RPQRES_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "engine/db_registry.h"
#include "engine/engine.h"
#include "engine/request.h"
#include "graphdb/graph_db.h"
#include "obs/metrics.h"

namespace rpqres {
namespace bench {

/// One benchmark scenario: `regex` under `semantics` against every
/// database in `databases`, `repetitions` times over. Databases are
/// registered once in the harness's DbRegistry and every instance reuses
/// the handle + per-label index; one untimed warm-up batch precedes the
/// timed batch, so the numbers describe steady-state serving.
struct Scenario {
  std::string name;         ///< stable id, e.g. "local_ax_star_b"
  std::string description;  ///< one line for the report
  std::string regex;
  Semantics semantics = Semantics::kBag;
  std::vector<GraphDb> databases;
  int repetitions = 3;
};

/// Aggregated measurements for one scenario.
struct ScenarioReport {
  std::string name;
  std::string description;
  std::string regex;
  std::string semantics;   ///< "set" | "bag"
  std::string complexity;  ///< classification column for IF(L)
  std::string rule;        ///< classification rule
  std::string algorithm;   ///< solver observed on the instances
  int instances = 0;
  int errors = 0;
  double compile_cold_micros = 0;  ///< first compilation of the regex
  double solve_p50_micros = 0;
  double solve_p95_micros = 0;
  double solve_p99_micros = 0;
  double solve_max_micros = 0;
  double solve_mean_micros = 0;
  /// Per-scenario solve-latency distribution in the obs fixed log-scale
  /// buckets — the BENCH trajectory carries the full shape, not just the
  /// percentile samples above.
  obs::LatencyHistogram::Snapshot solve_histogram;
  double total_wall_micros = 0;  ///< batch wall time (all instances)
  double throughput_qps = 0;     ///< instances / total wall
  int64_t network_vertices_max = 0;
  int64_t network_edges_max = 0;
  /// Product-pruning effect (local flow): max dead vertices/edges one
  /// instance skipped versus the full |V|·|S| construction.
  int64_t pruned_vertices_max = 0;
  int64_t pruned_edges_max = 0;
  uint64_t search_nodes_max = 0;
  /// Version-keyed ResultCache traffic during the timed batch (0 unless
  /// the harness engine enables the cache).
  int64_t result_cache_hits = 0;
  int64_t result_cache_misses = 0;
  /// Sum of finite resilience values — a determinism checksum comparable
  /// across runs and machines.
  int64_t resilience_checksum = 0;
};

/// Linear-interpolation percentile (p in [0, 100]) of unsorted values;
/// 0 when empty.
double Percentile(std::vector<double> values, double p);

/// Minimal JSON string escaping (quotes, backslash, control chars).
std::string JsonEscape(const std::string& s);

/// Runs scenarios through one engine (shared plan cache, shared pool).
class Harness {
 public:
  explicit Harness(EngineOptions options = {});

  void AddScenario(Scenario scenario);

  /// Runs all scenarios in order; each scenario's instances go through
  /// ResilienceEngine::EvaluateBatch.
  std::vector<ScenarioReport> RunAll();

  /// The full JSON document for a set of reports (includes engine
  /// configuration, aggregate engine stats, and the engine's own metrics
  /// export — counters, latency histograms, gauges — under "metrics").
  std::string ToJson(const std::vector<ScenarioReport>& reports) const;

  /// Writes ToJson(reports) to `path`.
  Status WriteJson(const std::string& path,
                   const std::vector<ScenarioReport>& reports) const;

  ResilienceEngine& engine() { return engine_; }
  DbRegistry& registry() { return registry_; }

 private:
  ScenarioReport RunScenario(const Scenario& scenario);

  /// Engine counters accumulated over the *timed* batches only — the
  /// untimed warm-up batches would otherwise double every per-instance
  /// total in the report and break BENCH trajectory comparability.
  struct SteadyStateStats {
    int64_t instances_run = 0;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    int64_t errors = 0;
    int64_t flow_vertices_pruned = 0;
    int64_t flow_edges_pruned = 0;
  };

  ResilienceEngine engine_;
  DbRegistry registry_;
  std::vector<Scenario> scenarios_;
  SteadyStateStats steady_;
};

}  // namespace bench
}  // namespace rpqres

#endif  // RPQRES_BENCH_HARNESS_H_
