// bench/dichotomy_exact_vs_flow — exhibits the *shape* of the dichotomy:
// on the PTIME side (local ab|ad|cd, BCL ab|bc) the flow solvers scale
// polynomially; on the NP-hard side (aa, ab|bc|ca) the exact solver's
// search tree grows exponentially with instance size. We report search
// nodes and wall time per size.

#include <chrono>
#include <iostream>

#include "graphdb/generators.h"
#include "lang/language.h"
#include "resilience/exact.h"
#include "resilience/resilience.h"
#include "util/rng.h"
#include "util/table.h"

using namespace rpqres;

namespace {

double MillisSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  std::cout << "=== Dichotomy shape: flow (PTIME side) vs exact "
               "branch & bound (NP-hard side) ===\n\n";
  TextTable table;
  table.SetHeader({"language", "side", "facts", "value", "algorithm",
                   "search nodes", "ms"});
  struct Row {
    const char* regex;
    const char* side;
    std::vector<char> labels;
    ResilienceMethod method;
  };
  std::vector<Row> rows = {
      {"ab|ad|cd", "PTIME (local)", {'a', 'b', 'c', 'd'},
       ResilienceMethod::kLocalFlow},
      {"ab|bc", "PTIME (BCL)", {'a', 'b', 'c'},
       ResilienceMethod::kBclFlow},
      {"aa", "NP-hard (Thm 6.1)", {'a'}, ResilienceMethod::kExact},
      {"ab|bc|ca", "NP-hard (Prp 7.4)", {'a', 'b', 'c'},
       ResilienceMethod::kExact},
  };
  for (const Row& row : rows) {
    Language lang = Language::MustFromRegexString(row.regex);
    for (int size : {20, 40, 80}) {
      Rng rng(1000 + size);
      GraphDb db = RandomGraphDb(&rng, size / 2, size, row.labels);
      auto start = std::chrono::steady_clock::now();
      Result<ResilienceResult> r = Status::Internal("unset");
      if (row.method == ResilienceMethod::kExact) {
        // Cap the search so the harness stays fast; hitting the cap *is*
        // the exponential-growth data point.
        ExactOptions options;
        options.max_search_nodes = 2'000'000;
        r = SolveExactResilience(lang, db, Semantics::kSet, options);
      } else {
        r = ComputeResilience(lang, db, Semantics::kSet,
                              {.method = row.method});
      }
      double ms = MillisSince(start);
      if (!r.ok()) {
        table.AddRow({row.regex, row.side, std::to_string(size), "-",
                      r.status().ToString(), "-", "-"});
        continue;
      }
      table.AddRow({row.regex, row.side, std::to_string(db.num_facts()),
                    std::to_string(r->value), r->algorithm,
                    std::to_string(r->search_nodes),
                    std::to_string(ms)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nNote: absolute times are machine-specific; the paper's "
               "claim is the PTIME/NP-hard split, visible in the growth of "
               "the exact solver's search tree.\n";
  return 0;
}
