// bench/prp79_onedangling_scaling — measures Proposition 7.9: RES_bag for
// one-dangling languages in Õ(|A|·|D|·|Σ|) via the x→xz rewrite plus one
// local-language MinCut (near-linear in |D|, unlike the |D|² of BCLs).

#include <benchmark/benchmark.h>

#include "graphdb/generators.h"
#include "lang/language.h"
#include "resilience/one_dangling_resilience.h"
#include "util/rng.h"

using namespace rpqres;

namespace {

void RunOneDangling(benchmark::State& state, const char* regex,
                    const std::vector<char>& base_labels, char x, char y) {
  int n = static_cast<int>(state.range(0));
  Rng rng(11 + n);
  GraphDb db = DanglingPairsDb(&rng, /*num_nodes=*/n,
                               /*base_facts=*/3 * n, base_labels, x, y,
                               /*pair_count=*/n, /*max_multiplicity=*/25);
  Language query = Language::MustFromRegexString(regex);
  for (auto _ : state) {
    Result<ResilienceResult> r =
        SolveOneDanglingResilience(query, db, Semantics::kBag);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r->value);
  }
  state.counters["facts"] = db.num_facts();
  state.SetComplexityN(db.num_facts());
}

void BM_OneDangling_AbcBe(benchmark::State& state) {
  RunOneDangling(state, "abc|be", {'a', 'b', 'c'}, 'b', 'e');
}
BENCHMARK(BM_OneDangling_AbcBe)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity();

void BM_OneDangling_AxStarBXd(benchmark::State& state) {
  RunOneDangling(state, "ax*b|xd", {'a', 'x', 'b'}, 'x', 'd');
}
BENCHMARK(BM_OneDangling_AxStarBXd)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
