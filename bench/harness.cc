#include "bench/harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

namespace rpqres {
namespace bench {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes (ε etc.) pass through verbatim
        }
    }
  }
  return out;
}

namespace {

// JSON numbers must be finite; clamp NaN/inf to 0 defensively.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os << v;
  return os.str();
}

// Sparse non-cumulative bucket list mirroring obs::ToJson's histogram
// series shape: [{"le": bound-or-"+Inf", "count": n}, ...].
std::string HistogramJson(const obs::LatencyHistogram::Snapshot& h,
                          const std::string& indent) {
  const auto& bounds = obs::LatencyHistogram::BucketBoundsMicros();
  std::ostringstream os;
  os << "{\n";
  os << indent << "  \"count\": " << h.total_count << ",\n";
  os << indent << "  \"sum_micros\": " << JsonNumber(h.sum_micros) << ",\n";
  os << indent << "  \"p50_micros\": " << JsonNumber(h.Quantile(0.50))
     << ",\n";
  os << indent << "  \"p95_micros\": " << JsonNumber(h.Quantile(0.95))
     << ",\n";
  os << indent << "  \"p99_micros\": " << JsonNumber(h.Quantile(0.99))
     << ",\n";
  os << indent << "  \"buckets\": [";
  bool first = true;
  for (int i = 0; i < obs::LatencyHistogram::kTotalBuckets; ++i) {
    if (h.counts[i] == 0) continue;
    os << (first ? "" : ", ");
    first = false;
    os << "{\"le\": ";
    if (i < obs::LatencyHistogram::kFiniteBuckets) {
      os << JsonNumber(bounds[i]);
    } else {
      os << "\"+Inf\"";
    }
    os << ", \"count\": " << h.counts[i] << "}";
  }
  os << "]\n" << indent << "}";
  return os.str();
}

}  // namespace

Harness::Harness(EngineOptions options) : engine_(options) {}

void Harness::AddScenario(Scenario scenario) {
  scenarios_.push_back(std::move(scenario));
}

std::vector<ScenarioReport> Harness::RunAll() {
  std::vector<ScenarioReport> reports;
  reports.reserve(scenarios_.size());
  for (const Scenario& scenario : scenarios_) {
    reports.push_back(RunScenario(scenario));
  }
  return reports;
}

ScenarioReport Harness::RunScenario(const Scenario& scenario) {
  ScenarioReport report;
  report.name = scenario.name;
  report.description = scenario.description;
  report.regex = scenario.regex;
  report.semantics = scenario.semantics == Semantics::kSet ? "set" : "bag";

  const int repetitions = std::max(scenario.repetitions, 1);
  // Register each database once; every repetition reuses the handle and
  // its precomputed per-label index.
  std::vector<DbHandle> handles;
  handles.reserve(scenario.databases.size());
  for (const GraphDb& db : scenario.databases) {
    handles.push_back(registry_.Register(db, scenario.name));
  }
  std::vector<ResilienceRequest> requests;
  requests.reserve(handles.size() * static_cast<size_t>(repetitions));
  for (int rep = 0; rep < repetitions; ++rep) {
    for (const DbHandle& handle : handles) {
      ResilienceRequest request;
      request.regex = scenario.regex;
      request.db = handle;
      request.semantics = scenario.semantics;
      requests.push_back(std::move(request));
    }
  }
  // One untimed warm-up batch: the scenarios measure steady-state
  // serving (plan cached, per-thread solver scratch grown), not
  // first-request page faults and buffer growth. The warm-up is also
  // where a cold compile (if any) lands, so cold-compile attribution is
  // read from it.
  for (const ResilienceResponse& outcome : engine_.EvaluateBatch(requests)) {
    if (outcome.status.ok() && !outcome.stats.cache_hit) {
      report.compile_cold_micros = outcome.stats.compile_micros;
    }
  }
  EngineStats before = engine_.stats();
  auto start = std::chrono::steady_clock::now();
  std::vector<ResilienceResponse> outcomes = engine_.EvaluateBatch(requests);
  report.total_wall_micros = std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
  EngineStats after = engine_.stats();
  steady_.instances_run += after.instances_run - before.instances_run;
  steady_.cache_hits += after.cache_hits - before.cache_hits;
  steady_.cache_misses += after.cache_misses - before.cache_misses;
  steady_.errors += after.errors - before.errors;
  steady_.flow_vertices_pruned +=
      after.flow_vertices_pruned - before.flow_vertices_pruned;
  steady_.flow_edges_pruned +=
      after.flow_edges_pruned - before.flow_edges_pruned;
  report.result_cache_hits =
      after.result_cache_hits - before.result_cache_hits;
  report.result_cache_misses =
      after.result_cache_misses - before.result_cache_misses;
  for (const DbHandle& handle : handles) registry_.Unregister(handle.id());

  std::vector<double> solve_micros;
  solve_micros.reserve(outcomes.size());
  for (const ResilienceResponse& outcome : outcomes) {
    ++report.instances;
    if (!outcome.status.ok()) {
      ++report.errors;
      continue;
    }
    solve_micros.push_back(outcome.stats.solve_micros);
    if (report.algorithm.empty()) report.algorithm = outcome.stats.algorithm;
    report.network_vertices_max = std::max(report.network_vertices_max,
                                           outcome.stats.network_vertices);
    report.network_edges_max =
        std::max(report.network_edges_max, outcome.stats.network_edges);
    report.pruned_vertices_max = std::max(
        report.pruned_vertices_max, outcome.stats.product_vertices_pruned);
    report.pruned_edges_max =
        std::max(report.pruned_edges_max, outcome.stats.product_edges_pruned);
    report.search_nodes_max =
        std::max(report.search_nodes_max, outcome.stats.search_nodes);
    if (!outcome.result.infinite) {
      report.resilience_checksum += outcome.result.value;
    }
  }
  // Classification from any successful outcome (the timed batch is all
  // cache hits after the warm-up, so every instance carries it).
  for (const ResilienceResponse& outcome : outcomes) {
    if (outcome.status.ok()) {
      report.complexity = outcome.stats.complexity;
      report.rule = outcome.stats.rule;
      break;
    }
  }

  report.solve_p50_micros = Percentile(solve_micros, 50);
  report.solve_p95_micros = Percentile(solve_micros, 95);
  report.solve_p99_micros = Percentile(solve_micros, 99);
  report.solve_max_micros = Percentile(solve_micros, 100);
  obs::LatencyHistogram histogram;
  for (double micros : solve_micros) histogram.Record(micros);
  report.solve_histogram = histogram.TakeSnapshot();
  if (!solve_micros.empty()) {
    double sum = 0;
    for (double v : solve_micros) sum += v;
    report.solve_mean_micros = sum / static_cast<double>(solve_micros.size());
  }
  if (report.total_wall_micros > 0) {
    report.throughput_qps = static_cast<double>(report.instances) /
                            (report.total_wall_micros / 1e6);
  }
  return report;
}

std::string Harness::ToJson(
    const std::vector<ScenarioReport>& reports) const {
  EngineStats stats = engine_.stats();
  PlanCacheView cache = engine_.plan_cache_view();
  std::ostringstream os;
  os << "{\n";
  os << "  \"benchmark\": \"engine\",\n";
  // Per-instance engine counters (instances_run, cache hits/misses,
  // pruning, errors) cover the timed batches only; warm-up batches are
  // excluded so totals stay comparable across BENCH trajectory points.
  // "compilations" stays engine-wide: a compile is a one-time cost that
  // lands in the warm-up by design.
  os << "  \"engine\": {\n";
  os << "    \"plan_cache_capacity\": " << engine_.options().plan_cache_capacity
     << ",\n";
  os << "    \"plan_cache_size\": " << cache.size << ",\n";
  os << "    \"num_threads\": "
     << (engine_.options().num_threads > 0 ? engine_.options().num_threads
                                           : ThreadPool::DefaultNumThreads())
     << ",\n";
  os << "    \"instances_run\": " << steady_.instances_run << ",\n";
  os << "    \"compilations\": " << stats.compilations << ",\n";
  os << "    \"cache_hits\": " << steady_.cache_hits << ",\n";
  os << "    \"cache_misses\": " << steady_.cache_misses << ",\n";
  os << "    \"flow_vertices_pruned\": " << steady_.flow_vertices_pruned
     << ",\n";
  os << "    \"flow_edges_pruned\": " << steady_.flow_edges_pruned << ",\n";
  os << "    \"result_cache_capacity\": "
     << engine_.options().result_cache_capacity << ",\n";
  os << "    \"result_cache_hits\": " << stats.result_cache_hits << ",\n";
  os << "    \"result_cache_misses\": " << stats.result_cache_misses << ",\n";
  os << "    \"errors\": " << steady_.errors << "\n";
  os << "  },\n";
  // The engine's own metrics export (counters, latency histograms with
  // p50/p95/p99, cache/registry gauges) — the same document
  // ExportMetrics(kJson) serves; spliced verbatim, it is a JSON object.
  std::string metrics =
      engine_.ExportMetrics(MetricsFormat::kJson, &registry_);
  while (!metrics.empty() &&
         (metrics.back() == '\n' || metrics.back() == ' ')) {
    metrics.pop_back();
  }
  os << "  \"metrics\": " << metrics << ",\n";
  os << "  \"scenarios\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const ScenarioReport& r = reports[i];
    os << "    {\n";
    os << "      \"name\": \"" << JsonEscape(r.name) << "\",\n";
    os << "      \"description\": \"" << JsonEscape(r.description) << "\",\n";
    os << "      \"regex\": \"" << JsonEscape(r.regex) << "\",\n";
    os << "      \"semantics\": \"" << r.semantics << "\",\n";
    os << "      \"complexity\": \"" << JsonEscape(r.complexity) << "\",\n";
    os << "      \"rule\": \"" << JsonEscape(r.rule) << "\",\n";
    os << "      \"algorithm\": \"" << JsonEscape(r.algorithm) << "\",\n";
    os << "      \"instances\": " << r.instances << ",\n";
    os << "      \"errors\": " << r.errors << ",\n";
    os << "      \"compile_cold_micros\": "
       << JsonNumber(r.compile_cold_micros) << ",\n";
    os << "      \"solve_p50_micros\": " << JsonNumber(r.solve_p50_micros)
       << ",\n";
    os << "      \"solve_p95_micros\": " << JsonNumber(r.solve_p95_micros)
       << ",\n";
    os << "      \"solve_p99_micros\": " << JsonNumber(r.solve_p99_micros)
       << ",\n";
    os << "      \"solve_max_micros\": " << JsonNumber(r.solve_max_micros)
       << ",\n";
    os << "      \"latency_histogram\": "
       << HistogramJson(r.solve_histogram, "      ") << ",\n";
    os << "      \"solve_mean_micros\": " << JsonNumber(r.solve_mean_micros)
       << ",\n";
    os << "      \"total_wall_micros\": " << JsonNumber(r.total_wall_micros)
       << ",\n";
    os << "      \"throughput_qps\": " << JsonNumber(r.throughput_qps)
       << ",\n";
    os << "      \"network_vertices_max\": " << r.network_vertices_max
       << ",\n";
    os << "      \"network_edges_max\": " << r.network_edges_max << ",\n";
    os << "      \"pruned_vertices_max\": " << r.pruned_vertices_max << ",\n";
    os << "      \"pruned_edges_max\": " << r.pruned_edges_max << ",\n";
    os << "      \"search_nodes_max\": " << r.search_nodes_max << ",\n";
    os << "      \"result_cache_hits\": " << r.result_cache_hits << ",\n";
    os << "      \"result_cache_misses\": " << r.result_cache_misses << ",\n";
    os << "      \"resilience_checksum\": " << r.resilience_checksum << "\n";
    os << "    }" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

Status Harness::WriteJson(const std::string& path,
                          const std::vector<ScenarioReport>& reports) const {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  out << ToJson(reports);
  out.close();
  if (!out) {
    return Status::Internal("failed writing " + path);
  }
  return Status::OK();
}

}  // namespace bench
}  // namespace rpqres
