// bench/fig2_automata — regenerates Figure 2: the local DFA for ax*b
// (Fig 2a), the local DFA for ab|ad|cd (Fig 2b), and the RO-εNFA for
// ab|ad|cd (Fig 2c), all produced by the paper's constructions
// (Def 3.8 local overapproximation, Lem 3.17 RO-εNFA).

#include <iostream>

#include "lang/language.h"
#include "lang/local.h"
#include "lang/ro_enfa.h"
#include "automata/ops.h"

using namespace rpqres;

namespace {

int failures = 0;

void ShowLanguage(const std::string& regex) {
  Language lang = Language::MustFromRegexString(regex);
  std::cout << "--- L = " << regex << " ---\n";
  LocalProfile profile = ComputeLocalProfile(lang);
  std::cout << "Σ_start = {";
  for (char c : profile.start_letters) std::cout << c;
  std::cout << "}, Σ_end = {";
  for (char c : profile.end_letters) std::cout << c;
  std::cout << "}, Π = {";
  for (auto [a, b] : profile.pairs) std::cout << " " << a << b;
  std::cout << " }\n";

  bool local = IsLocal(lang);
  std::cout << "local? " << (local ? "yes" : "no") << "\n";
  if (!local) ++failures;

  Dfa local_dfa = LocalOverapproximationDfa(profile);
  std::cout << "Local DFA (Def 3.8), " << local_dfa.num_states()
            << " states:\n"
            << local_dfa.ToDot("local_dfa");
  std::cout << "is a local DFA (Def 3.1)? "
            << (IsLocalDfa(local_dfa) ? "yes" : "no") << "\n";
  if (!IsLocalDfa(local_dfa)) ++failures;

  Result<Enfa> ro = BuildRoEnfa(lang);
  if (!ro.ok()) {
    std::cout << "RO-εNFA: " << ro.status() << "\n";
    ++failures;
    return;
  }
  std::cout << "RO-εNFA (Lem 3.17), " << ro->num_states() << " states, "
            << ro->transitions().size() << " transitions:\n"
            << ro->ToDot("ro_enfa");
  std::cout << "recognizes L? "
            << (AreEquivalent(MinimalDfa(*ro), lang.min_dfa()) ? "yes"
                                                               : "no")
            << "\n\n";
}

}  // namespace

int main() {
  std::cout << "=== Figure 2: automata for the running examples ===\n\n";
  ShowLanguage("ax*b");      // Fig 2a
  ShowLanguage("ab|ad|cd");  // Figs 2b and 2c

  // Example 3.4's non-local witness, for contrast.
  Language aa = Language::MustFromRegexString("aa");
  std::cout << "--- L = aa (Example 3.4) ---\nlocal? "
            << (IsLocal(aa) ? "yes (bug!)" : "no — as the paper shows")
            << "\n";
  if (IsLocal(aa)) ++failures;
  return failures == 0 ? 0 : 1;
}
