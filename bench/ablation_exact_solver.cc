// bench/ablation_exact_solver — ablations for the design choices called
// out in DESIGN.md:
//  (1) the exact branch & bound's greedy disjoint-match root lower bound
//      (on/off: search-node counts on NP-hard instances);
//  (2) the Section 4.3 condensation before hitting-set search
//      (hypergraph size and minimum-hitting-set effort with/without).

#include <chrono>
#include <iostream>

#include "gadgets/condensation.h"
#include "gadgets/hypergraph.h"
#include "graphdb/generators.h"
#include "lang/infix_free.h"
#include "lang/language.h"
#include "resilience/exact.h"
#include "util/rng.h"
#include "util/table.h"

using namespace rpqres;

namespace {

double MillisSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  std::cout << "=== Ablation 1: exact B&B with / without the "
               "disjoint-match lower bound ===\n\n";
  {
    TextTable table;
    table.SetHeader({"language", "facts", "value", "nodes (with LB)",
                     "nodes (without)", "ratio"});
    struct Case {
      const char* regex;
      std::vector<std::string> words;  // seeds matches via WordSoupDb
      std::vector<char> labels;
    };
    for (const Case& c : std::vector<Case>{
             {"aa", {"aaa"}, {'a'}},
             {"ab|bc|ca", {"ab", "bc", "ca"}, {'a', 'b', 'c'}},
             {"axb|cxd", {"axb", "cxd"}, {'a', 'b', 'c', 'd', 'x'}}}) {
      Language lang = Language::MustFromRegexString(c.regex);
      for (int size : {3, 5, 7}) {
        Rng rng(71 + size);
        GraphDb db = WordSoupDb(&rng, c.words, size, c.labels,
                                /*cross_links=*/size);
        ExactOptions with_lb;
        with_lb.max_search_nodes = 3'000'000;
        ExactOptions without_lb;
        without_lb.use_disjoint_match_bound = false;
        without_lb.max_search_nodes = 3'000'000;
        auto a = SolveExactResilience(lang, db, Semantics::kSet, with_lb);
        auto b =
            SolveExactResilience(lang, db, Semantics::kSet, without_lb);
        if (!a.ok() || !b.ok()) {
          table.AddRow({c.regex, std::to_string(db.num_facts()), "-",
                        a.ok() ? std::to_string(a->search_nodes) : "cap",
                        b.ok() ? std::to_string(b->search_nodes) : "cap",
                        "-"});
          continue;
        }
        double ratio = a->search_nodes == 0
                           ? 1.0
                           : static_cast<double>(b->search_nodes) /
                                 static_cast<double>(a->search_nodes);
        table.AddRow({c.regex, std::to_string(db.num_facts()),
                      std::to_string(a->value),
                      std::to_string(a->search_nodes),
                      std::to_string(b->search_nodes),
                      std::to_string(ratio)});
      }
    }
    table.Print(std::cout);
  }

  std::cout << "\n=== Ablation 2: hitting set with / without condensation "
               "(Claim 4.8) ===\n\n";
  {
    TextTable table;
    table.SetHeader({"language", "facts", "matches", "condensed",
                     "ms (raw)", "ms (condensed)"});
    struct Case {
      const char* regex;
      std::vector<char> labels;
    };
    for (const Case& c : std::vector<Case>{{"aa", {'a'}},
                                           {"abc|bcd",
                                            {'a', 'b', 'c', 'd'}}}) {
      Language lang = Language::MustFromRegexString(c.regex);
      Language ifl = InfixFreeSublanguage(lang);
      for (int size : {14, 20, 26}) {
        Rng rng(13 + size);
        GraphDb db = RandomGraphDb(&rng, size / 2, size, c.labels);
        Result<Hypergraph> matches = HypergraphOfMatches(ifl, db);
        if (!matches.ok()) continue;
        std::vector<Capacity> weights(db.num_facts(), 1);

        auto t0 = std::chrono::steady_clock::now();
        HittingSetSolution raw = MinimumWeightHittingSet(*matches, weights);
        double raw_ms = MillisSince(t0);

        t0 = std::chrono::steady_clock::now();
        CondensationResult condensed = Condense(*matches, {});
        HittingSetSolution via_condensed = MinimumWeightHittingSet(
            condensed.condensed,
            std::vector<Capacity>(condensed.condensed.num_vertices, 1));
        double condensed_ms = MillisSince(t0);

        if (raw.cost != via_condensed.cost) {
          std::cerr << "CLAIM 4.8 VIOLATION on " << c.regex << "\n";
          return 1;
        }
        table.AddRow({c.regex, std::to_string(db.num_facts()),
                      std::to_string(matches->edges.size()),
                      std::to_string(condensed.condensed.edges.size()),
                      std::to_string(raw_ms),
                      std::to_string(condensed_ms)});
      }
    }
    table.Print(std::cout);
    std::cout << "\n(condensation shrinks the hypergraph and preserves the "
                 "minimum hitting set; its own cost is included in the "
                 "condensed column)\n";
  }
  return 0;
}
