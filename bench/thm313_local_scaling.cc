// bench/thm313_local_scaling — measures the combined-complexity claim of
// Theorem 3.13: RES_bag for local languages in Õ(|A| · |D| · |Σ|).
// Series 1 scales |D| (layered flow networks, fixed query ax*b);
// series 2 scales |A| and |Σ| together (disjoint unions a_i x_i* b_i).

#include <benchmark/benchmark.h>

#include "graphdb/generators.h"
#include "lang/language.h"
#include "lang/ro_enfa.h"
#include "resilience/local_resilience.h"
#include "util/rng.h"

using namespace rpqres;

namespace {

void BM_LocalResilience_DatabaseSize(benchmark::State& state) {
  int layers = static_cast<int>(state.range(0));
  Rng rng(1234);
  GraphDb db = LayeredFlowDb(&rng, /*sources=*/4, layers, /*width=*/6,
                             /*sinks=*/4, /*density=*/0.4,
                             /*max_multiplicity=*/50);
  Language query = Language::MustFromRegexString("ax*b");
  Enfa ro = BuildRoEnfa(query).ValueOrDie();
  Capacity value = 0;
  for (auto _ : state) {
    ResilienceResult r =
        SolveLocalResilienceWithRoEnfa(ro, db, Semantics::kBag);
    value = r.value;
    benchmark::DoNotOptimize(value);
  }
  state.counters["facts"] = db.num_facts();
  state.counters["resilience"] = static_cast<double>(value);
  state.SetComplexityN(db.num_facts());
}
BENCHMARK(BM_LocalResilience_DatabaseSize)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Complexity();

// Disjoint local language union: a0 x0* b0 | a1 x1* b1 | ... stays local
// because no letters are shared; |Σ| = 3k, |A| grows linearly with k.
void BM_LocalResilience_QuerySize(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  std::string regex;
  std::vector<char> letters;
  // Letters: groups of three distinct letters per branch.
  const std::string pool =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  for (int i = 0; i < k; ++i) {
    char a = pool[(3 * i) % pool.size()];
    char x = pool[(3 * i + 1) % pool.size()];
    char b = pool[(3 * i + 2) % pool.size()];
    if (i > 0) regex += "|";
    regex += std::string(1, a) + std::string(1, x) + "*" +
             std::string(1, b);
    letters.insert(letters.end(), {a, x, b});
  }
  Language query = Language::MustFromRegexString(regex);
  Enfa ro = BuildRoEnfa(query).ValueOrDie();
  Rng rng(99);
  GraphDb db = RandomGraphDb(&rng, /*num_nodes=*/40, /*num_facts=*/400,
                             letters, /*max_multiplicity=*/10);
  for (auto _ : state) {
    ResilienceResult r =
        SolveLocalResilienceWithRoEnfa(ro, db, Semantics::kBag);
    benchmark::DoNotOptimize(r.value);
  }
  state.counters["automaton_size"] = ro.Size();
  state.counters["alphabet"] = 3.0 * k;
  state.SetComplexityN(ro.Size());
}
BENCHMARK(BM_LocalResilience_QuerySize)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
