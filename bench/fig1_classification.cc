// bench/fig1_classification — regenerates Figure 1: the complexity
// classification of the paper's 21 example languages, with the expected
// column from the figure, plus the endpoint graphs of Example 7.3/Fig 14.

#include <iostream>
#include <string>
#include <vector>

#include "classify/classifier.h"
#include "lang/chain.h"
#include "lang/infix_free.h"
#include "lang/language.h"
#include "util/table.h"

using namespace rpqres;

namespace {

struct Fig1Row {
  const char* regex;
  const char* expected;  // column in Figure 1
  const char* region;    // which labeled region of the figure
};

const std::vector<Fig1Row>& Fig1Languages() {
  static const std::vector<Fig1Row> kRows = {
      {"abc|abd", "PTIME", "local (Thm 3.13)"},
      {"ab|ad|cd", "PTIME", "local (Thm 3.13)"},
      {"ax*b", "PTIME", "local (Thm 3.13)"},
      {"ab|bc", "PTIME", "bipartite chain (Prp 7.6)"},
      {"axb|byc", "PTIME", "bipartite chain (Prp 7.6)"},
      {"abc|be", "PTIME", "one-dangling (Prp 7.9)"},
      {"abcd|ce", "PTIME", "one-dangling (Prp 7.9)"},
      {"abcd|be", "PTIME", "one-dangling (Prp 7.9)"},
      {"ax*b|xd", "PTIME", "one-dangling (Prp 7.9)"},
      {"axb|cxd", "NP-hard", "four-legged (Thm 5.3)"},
      {"ax*b|cxd", "NP-hard", "four-legged (Thm 5.3)"},
      {"b(aa)*d", "NP-hard", "non-star-free (Lem 5.6)"},
      {"aa", "NP-hard", "finite, repeated letter (Thm 6.1)"},
      {"aaaa", "NP-hard", "finite, repeated letter (Thm 6.1)"},
      {"abca|cab", "NP-hard", "finite, repeated letter (Thm 6.1)"},
      {"ab|bc|ca", "NP-hard", "non-bipartite chain (Prp 7.4)"},
      {"abcd|be|ef", "NP-hard", "explicit gadget (Prp 7.11)"},
      {"abcd|bef", "NP-hard", "explicit gadget (Prp 7.11)"},
      {"abc|bcd", "UNCLASSIFIED", "open (finite)"},
      {"abc|bef", "UNCLASSIFIED", "open (finite)"},
      {"ab*c|ba", "UNCLASSIFIED", "open (infinite)"},
      {"ab*d|ac*d|bc", "UNCLASSIFIED", "open (infinite)"},
  };
  return kRows;
}

}  // namespace

int main() {
  std::cout << "=== Figure 1: classification of the paper's example "
               "languages ===\n\n";
  TextTable table;
  table.SetHeader({"language", "computed", "rule", "expected (Fig 1)",
                   "match"});
  int mismatches = 0;
  for (const Fig1Row& row : Fig1Languages()) {
    Language lang = Language::MustFromRegexString(row.regex);
    Result<Classification> c = ClassifyResilience(lang);
    if (!c.ok()) {
      table.AddRow({row.regex, "ERROR", c.status().ToString(),
                    row.expected, "✗"});
      ++mismatches;
      continue;
    }
    bool match =
        std::string(ComplexityClassName(c->complexity)) == row.expected;
    if (!match) ++mismatches;
    table.AddRow({row.regex, ComplexityClassName(c->complexity), c->rule,
                  std::string(row.expected) + " / " + row.region,
                  match ? "✓" : "✗"});
  }
  table.Print(std::cout);
  std::cout << "\nMismatches vs Figure 1: " << mismatches << "\n";

  std::cout << "\n=== Figure 14: endpoint graphs of Example 7.3 ===\n";
  for (const char* regex : {"ab|bc", "axyb|bztc|cd|dea", "ab|bc|ca"}) {
    Language lang = Language::MustFromRegexString(regex);
    Language ifl = InfixFreeSublanguage(lang);
    ChainAnalysis chain = AnalyzeChain(ifl);
    std::cout << "\n" << regex << ": chain language? "
              << (chain.is_chain ? "yes" : "no");
    if (!chain.is_chain) {
      std::cout << " (" << chain.violation << ")";
      std::cout << "\n";
      continue;
    }
    EndpointGraph graph = BuildEndpointGraph(chain.words);
    std::cout << "\n  endpoint edges:";
    for (auto [a, b] : graph.edges) {
      std::cout << " {" << a << "," << b << "}";
    }
    auto coloring = BipartitionEndpointGraph(graph);
    std::cout << "\n  bipartite? " << (coloring ? "yes" : "no");
    if (coloring) {
      std::cout << "  (";
      for (auto [letter, color] : *coloring) {
        std::cout << letter << ":" << (color == 0 ? "S" : "T") << " ";
      }
      std::cout << ")";
    }
    std::cout << "\n";
  }
  return mismatches == 0 ? 0 : 1;
}
