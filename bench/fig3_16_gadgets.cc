// bench/fig3_16_gadgets — regenerates the gadget figures: verifies every
// hardness gadget of the paper against its language (pre-gadget conditions
// of Def 4.3, hypergraph of matches of Def 4.7, condensation to an odd
// path per Def 4.9), mirroring the authors' sanity-check tool [3].
//
// Figures 6 and 12 are *candidate reconstructions* (their exact wiring is
// not recoverable from the paper text); their rows report the verifier's
// honest verdict.

#include <iostream>
#include <vector>

#include "gadgets/chain_cycle.h"
#include "gadgets/gadget.h"
#include "gadgets/paper_gadgets.h"
#include "lang/four_legged.h"
#include "lang/infix_free.h"
#include "lang/language.h"
#include "lang/repeated_letter.h"
#include "util/table.h"

using namespace rpqres;

namespace {

int failures = 0;

void Report(TextTable* table, const std::string& figure,
            const std::string& regex, const PreGadget& gadget,
            bool reconstruction = false) {
  Language lang = Language::MustFromRegexString(regex);
  Result<GadgetVerification> v = VerifyGadget(lang, gadget);
  std::string facts = std::to_string(gadget.db.num_facts() + 2);
  if (!v.ok()) {
    table->AddRow({figure, regex, facts, "-", "-",
                   "ERROR: " + v.status().ToString()});
    if (!reconstruction) ++failures;
    return;
  }
  table->AddRow(
      {figure, regex, facts, std::to_string(v->matches.edges.size()),
       v->valid ? std::to_string(v->odd_path.path_edges) : "-",
       v->valid ? "valid gadget"
                : (reconstruction ? "candidate rejected: " + v->reason
                                  : "INVALID: " + v->reason)});
  if (!v->valid && !reconstruction) ++failures;
}

}  // namespace

int main() {
  std::cout << "=== Figures 3-16: hardness gadget verification ===\n"
            << "(columns: completed facts | matches | condensed odd-path "
               "length)\n\n";
  TextTable table;
  table.SetHeader({"figure", "language", "facts", "matches", "ℓ",
                   "verdict"});

  Report(&table, "Fig 3b", "aa", AaGadget());
  Report(&table, "Fig 4a", "axb|cxd", AxbCxdGadget());

  {  // Fig 5: Case 1, instantiated for axb|cxd via its stable legs.
    Language lang = Language::MustFromRegexString("axb|cxd");
    auto witness = FindFourLeggedWitness(lang);
    if (witness && witness->stable) {
      Report(&table, "Fig 5", "axb|cxd",
             FourLeggedCase1Gadget(*witness));
      // And for a wordier four-legged language.
      Language wide = Language::MustFromRegexString("abxcd|efxgh");
      auto wide_witness = FindFourLeggedWitness(wide);
      if (wide_witness && wide_witness->stable) {
        Report(&table, "Fig 5", "abxcd|efxgh",
               FourLeggedCase1Gadget(*wide_witness));
      }
    } else {
      table.AddRow({"Fig 5", "axb|cxd", "-", "-", "-",
                    "no stable witness found"});
      ++failures;
    }
  }
  {  // Fig 6: Case 2 candidates for axb|cxd|cxb.
    Language lang = Language::MustFromRegexString("axb|cxd|cxb");
    auto witness = FindFourLeggedWitness(lang);
    if (witness) {
      for (const PreGadget& candidate :
           FourLeggedCase2Candidates(*witness)) {
        Report(&table, "Fig 6*", "axb|cxd|cxb", candidate,
               /*reconstruction=*/true);
      }
    }
  }

  Report(&table, "Fig 7", "aya", RepeatedLetterGadget('a', "y", ""));
  Report(&table, "Fig 7", "aa", RepeatedLetterGadget('a', "", ""));
  Report(&table, "Fig 8", "ayazz", RepeatedLetterGadget('a', "y", "zz"));
  Report(&table, "Fig 8", "aab",
         RepeatedLetterGadget('a', "", "b"));
  Report(&table, "Fig 9", "aba|bab", AbaBabGadget());
  Report(&table, "Fig 10", "aaa", AaaGadget());
  Report(&table, "Fig 11", "aab", AabGadget());
  {  // Fig 12 candidates for axya|yax.
    for (const PreGadget& candidate : AxEtaYaCandidates('a', 'x', "", 'y')) {
      Report(&table, "Fig 12*", "axya|yax", candidate,
             /*reconstruction=*/true);
    }
  }
  Report(&table, "Fig 13", "ab|bc|ca", AbBcCaGadget());
  Report(&table, "Fig 15", "abcd|be|ef", AbcdGadget());
  Report(&table, "Fig 16", "abcd|bef", AbcdGadget());

  // Fig 13 generalized to other odd-cycle chain languages (extension:
  // each verified gadget certifies NP-hardness via Prp 4.11, supporting
  // the paper's conjecture for non-bipartite chain languages).
  for (const char* regex :
       {"axb|byc|cza", "ab|bc|cd|de|ea", "axyb|bc|ca"}) {
    Language lang = Language::MustFromRegexString(regex);
    Result<PreGadget> gadget =
        BuildNonBipartiteChainGadget(InfixFreeSublanguage(lang));
    if (gadget.ok()) {
      Report(&table, "Fig 13+", regex, *gadget);
    } else {
      table.AddRow({"Fig 13+", regex, "-", "-", "-",
                    gadget.status().ToString()});
      ++failures;
    }
  }

  table.Print(std::cout);
  std::cout << "\n(*) reconstruction candidates — see EXPERIMENTS.md\n"
            << "(Fig 13+) extension rows: odd-cycle chain languages "
               "beyond the paper's Prp 7.4\n";
  std::cout << "Failures on paper-transcribed gadgets: " << failures
            << "\n";
  return failures == 0 ? 0 : 1;
}
