// bench/intro_mincut_equivalence — validates the Section 1 observation
// that MinCut (multi-source/multi-sink) is exactly RES_bag(ax*b): we build
// random flow networks, solve them once as a plain min-cut and once as an
// RPQ resilience instance, and check the values coincide.

#include <iostream>

#include "flow/residual_graph.h"
#include "graphdb/generators.h"
#include "lang/language.h"
#include "resilience/local_resilience.h"
#include "util/rng.h"
#include "util/table.h"

using namespace rpqres;

namespace {

// Direct min-cut encoding of the labeled database: a-facts become ∞ edges
// from the super-source, b-facts ∞ edges to the super-target, x-facts
// capacity edges (by multiplicity). This is the inverse of the paper's
// correspondence.
Capacity DirectMinCut(const GraphDb& db) {
  ResidualGraph network;
  int source = network.AddVertex();
  int target = network.AddVertex();
  network.SetSource(source);
  network.SetTarget(target);
  std::vector<int> vertex_of(db.num_nodes());
  for (NodeId v = 0; v < db.num_nodes(); ++v) {
    vertex_of[v] = network.AddVertex();
  }
  for (FactId f = 0; f < db.num_facts(); ++f) {
    const Fact& fact = db.fact(f);
    switch (fact.label) {
      case 'a':
        // Source edge: cutting it costs its multiplicity too! The paper's
        // correspondence makes a-facts cuttable, so model them as capacity
        // edges source -> head.
        network.AddEdge(source, vertex_of[fact.target],
                        db.multiplicity(f));
        break;
      case 'b':
        network.AddEdge(vertex_of[fact.source], target,
                        db.multiplicity(f));
        break;
      default:
        network.AddEdge(vertex_of[fact.source], vertex_of[fact.target],
                        db.multiplicity(f));
    }
  }
  const MinCutView& cut = network.Solve();
  return cut.infinite ? kInfiniteCapacity : cut.value;
}

}  // namespace

int main() {
  std::cout << "=== Section 1: RES_bag(ax*b) ≡ MinCut ===\n\n";
  Language query = Language::MustFromRegexString("ax*b");
  TextTable table;
  table.SetHeader({"instance", "facts", "MinCut", "RES_bag(ax*b)",
                   "match"});
  Rng rng(2024);
  int failures = 0;
  for (int trial = 0; trial < 10; ++trial) {
    GraphDb db = LayeredFlowDb(&rng, 2 + trial % 4, 2 + trial % 5,
                               3 + trial % 3, 2 + trial % 3,
                               0.3 + 0.05 * (trial % 5),
                               /*max_multiplicity=*/12);
    Capacity direct = DirectMinCut(db);
    Result<ResilienceResult> res =
        SolveLocalResilience(query, db, Semantics::kBag);
    if (!res.ok()) {
      table.AddRow({"#" + std::to_string(trial), "-", "-", "-",
                    res.status().ToString()});
      ++failures;
      continue;
    }
    bool match = direct == res->value;
    if (!match) ++failures;
    table.AddRow({"#" + std::to_string(trial),
                  std::to_string(db.num_facts()), std::to_string(direct),
                  std::to_string(res->value), match ? "✓" : "✗"});
  }
  table.Print(std::cout);
  std::cout << "\nFailures: " << failures << "\n";
  return failures == 0 ? 0 : 1;
}
