// bench/prp76_bcl_scaling — measures Proposition 7.6: RES_bag for
// bipartite chain languages in Õ(|A|·|D|²·|Σ|²). The |D|² term comes from
// the per-fact-pair wiring, visible in the measured network_edges counter.

#include <benchmark/benchmark.h>

#include "graphdb/generators.h"
#include "lang/language.h"
#include "resilience/bcl_resilience.h"
#include "util/rng.h"

using namespace rpqres;

namespace {

void RunBcl(benchmark::State& state, const char* regex,
            const std::vector<std::string>& words,
            const std::vector<char>& letters) {
  int count = static_cast<int>(state.range(0));
  Rng rng(7 + count);
  GraphDb db = WordSoupDb(&rng, words, count, letters,
                          /*cross_links=*/count * 2,
                          /*max_multiplicity=*/20);
  Language query = Language::MustFromRegexString(regex);
  int64_t network_edges = 0;
  for (auto _ : state) {
    Result<ResilienceResult> r =
        SolveBclResilience(query, db, Semantics::kBag);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    network_edges = r->network_edges;
    benchmark::DoNotOptimize(r->value);
  }
  state.counters["facts"] = db.num_facts();
  state.counters["network_edges"] = static_cast<double>(network_edges);
  state.SetComplexityN(db.num_facts());
}

void BM_Bcl_AbBc(benchmark::State& state) {
  RunBcl(state, "ab|bc", {"ab", "bc"}, {'a', 'b', 'c'});
}
BENCHMARK(BM_Bcl_AbBc)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_Bcl_AxbByc(benchmark::State& state) {
  RunBcl(state, "axb|byc", {"axb", "byc"}, {'a', 'b', 'c', 'x', 'y'});
}
BENCHMARK(BM_Bcl_AxbByc)->RangeMultiplier(2)->Range(8, 128)->Complexity();

}  // namespace

BENCHMARK_MAIN();
