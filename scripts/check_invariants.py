#!/usr/bin/env python3
"""Project-invariant lints for rpqres (PR-10).

Mechanical contracts that neither the compiler nor clang-tidy knows
about, enforced over the source tree:

  storage-raw-syscall
      In src/storage/, the syscalls that the failpoint layer wraps
      (open/write/fsync/rename/ftruncate/close/mmap) must be called
      through their fault:: wrappers so every durability-relevant I/O
      is crash-testable. Raw `::open(` etc. is a violation. The fault
      layer itself (src/fault/) is the one place raw syscalls belong.

  workload-nondeterminism
      src/workload/ is the deterministic replay layer: every draw comes
      from a seeded SplitMix64 stream. `rand(`/`srand(`,
      `std::random_device`, `time(` and wall-clock (`system_clock`)
      seeding are banned. Monotonic clocks (steady_clock) are fine —
      they time work, they don't influence it.

  tsa-suppression-justified
      Every use of RPQRES_NO_THREAD_SAFETY_ANALYSIS (outside its
      definition) must carry an inline justification comment on the
      same or the preceding line. Blanket analysis opt-outs rot.

Suppressions: a violating line is waived by `invariant-ok: <reason>`
(optionally `invariant-ok(<rule>): <reason>`) in a comment on the same
line or the line directly above. The reason is mandatory — an empty
one is itself a violation. The script counts suppressions and prints
the tally so reviews can see waivers grow.

Exit status: 0 clean, 1 violations found, 2 usage/self-test failure.

`--self-test` runs the scanner against built-in bad snippets and
asserts that exactly the seeded violations are reported.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SUPPRESS_RE = re.compile(r"invariant-ok(?:\((?P<rule>[a-z-]+)\))?:\s*(?P<reason>\S.*)?")

# Syscalls that fault/failpoints.h wraps; src/storage must use the wrappers.
RAW_SYSCALL_RE = re.compile(r"::(open|write|fsync|rename|ftruncate|close|mmap)\s*\(")

NONDETERMINISM_RES = [
    (re.compile(r"\bs?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\btime\s*\(\s*(NULL|nullptr|0)?\s*\)"), "time()"),
    (re.compile(r"\bsystem_clock\b"), "wall clock (std::chrono::system_clock)"),
]

TSA_OPTOUT = "RPQRES_NO_THREAD_SAFETY_ANALYSIS"


class Finding:
    def __init__(self, rule: str, path: str, line_no: int, message: str):
        self.rule = rule
        self.path = path
        self.line_no = line_no
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def _suppression(lines: list[str], idx: int, rule: str):
    """Returns ("ok" | "empty-reason" | None) for line `idx` (0-based).

    A suppression applies if the marker sits on the violating line itself
    or anywhere in the contiguous `//` comment block directly above it.
    """
    probes = [idx]
    probe = idx - 1
    while probe >= 0 and lines[probe].lstrip().startswith("//"):
        probes.append(probe)
        probe -= 1
    for probe in probes:
        m = SUPPRESS_RE.search(lines[probe])
        if not m:
            continue
        if m.group("rule") and m.group("rule") != rule:
            continue
        return "ok" if m.group("reason") else "empty-reason"
    return None


def scan_file(rel_path: str, text: str):
    """Scans one file; returns (findings, suppression_count)."""
    findings: list[Finding] = []
    suppressions = 0
    lines = text.splitlines()
    in_storage = rel_path.startswith("src/storage/")
    in_workload = rel_path.startswith("src/workload/")
    is_annotation_header = rel_path.endswith("util/thread_annotations.h")

    def check(idx: int, rule: str, message: str):
        nonlocal suppressions
        state = _suppression(lines, idx, rule)
        if state == "ok":
            suppressions += 1
        elif state == "empty-reason":
            findings.append(
                Finding(rule, rel_path, idx + 1,
                        "suppression without a reason: " + message))
        else:
            findings.append(Finding(rule, rel_path, idx + 1, message))

    for idx, line in enumerate(lines):
        if in_storage:
            m = RAW_SYSCALL_RE.search(line)
            if m:
                check(idx, "storage-raw-syscall",
                      f"raw ::{m.group(1)}( — use fault::{m.group(1).capitalize()} "
                      "or add an invariant-ok comment explaining why this "
                      "call is outside the crash-injection surface")
        if in_workload:
            for pattern, what in NONDETERMINISM_RES:
                if pattern.search(line):
                    check(idx, "workload-nondeterminism",
                          f"{what} in the deterministic workload layer — "
                          "draw from the seeded rng instead")
        if TSA_OPTOUT in line and not is_annotation_header:
            # The opt-out demands a justification comment on its line or
            # the one above; reuse the suppression mechanism for that.
            check(idx, "tsa-suppression-justified",
                  f"{TSA_OPTOUT} without an invariant-ok justification")
    return findings, suppressions


def scan_tree(root: Path):
    findings: list[Finding] = []
    suppressions = 0
    for path in sorted(root.glob("src/**/*")):
        if path.suffix not in {".cc", ".h"}:
            continue
        rel = path.relative_to(root).as_posix()
        f, s = scan_file(rel, path.read_text(encoding="utf-8"))
        findings.extend(f)
        suppressions += s
    return findings, suppressions


# ---------------------------------------------------------------------------
# Self-test: seeded bad snippets and the exact findings they must produce.

SELF_TEST_CASES = [
    # (virtual path, source, expected list of (rule, line_no))
    (
        "src/storage/bad_segment.cc",
        "int fd = ::open(path, O_RDONLY);\n"
        "::close(fd);\n",
        [("storage-raw-syscall", 1), ("storage-raw-syscall", 2)],
    ),
    (
        "src/storage/suppressed_segment.cc",
        "// invariant-ok(storage-raw-syscall): read path, not crash-swept\n"
        "int fd = ::open(path, O_RDONLY);\n"
        "::close(fd);  // invariant-ok: error-path cleanup\n",
        [],
    ),
    (
        "src/storage/empty_reason.cc",
        "::fsync(fd);  // invariant-ok:\n",
        [("storage-raw-syscall", 1)],
    ),
    (
        "src/storage/wrong_rule_suppression.cc",
        "// invariant-ok(workload-nondeterminism): mismatched rule name\n"
        "::rename(a, b);\n",
        [("storage-raw-syscall", 2)],
    ),
    (
        "src/workload/bad_traffic.cc",
        "#include <ctime>\n"
        "uint64_t seed = time(nullptr);\n"
        "int r = rand();\n"
        "std::random_device rd;\n"
        "auto now = std::chrono::system_clock::now();\n",
        [
            ("workload-nondeterminism", 2),
            ("workload-nondeterminism", 3),
            ("workload-nondeterminism", 4),
            ("workload-nondeterminism", 5),
        ],
    ),
    (
        "src/workload/good_traffic.cc",
        "auto t0 = std::chrono::steady_clock::now();\n"
        "uint64_t draw = SplitMix64(state);\n",
        [],
    ),
    (
        "src/util/bad_optout.cc",
        "void Peek() RPQRES_NO_THREAD_SAFETY_ANALYSIS {\n"
        "}\n",
        [("tsa-suppression-justified", 1)],
    ),
    (
        "src/util/good_optout.cc",
        "// invariant-ok(tsa-suppression-justified): racy-read stats probe,\n"
        "void Peek() RPQRES_NO_THREAD_SAFETY_ANALYSIS {\n"
        "}\n",
        [],
    ),
    (
        # Raw syscalls outside src/storage are out of scope for the rule.
        "src/fault/wrappers.cc",
        "return ::write(fd, buf, count);\n",
        [],
    ),
]


def self_test() -> int:
    failures = 0
    for rel_path, source, expected in SELF_TEST_CASES:
        findings, _ = scan_file(rel_path, source)
        got = [(f.rule, f.line_no) for f in findings]
        if got != expected:
            failures += 1
            print(f"self-test FAIL: {rel_path}")
            print(f"  expected: {expected}")
            print(f"  got:      {got}")
    if failures:
        print(f"self-test: {failures}/{len(SELF_TEST_CASES)} cases failed")
        return 2
    print(f"self-test: {len(SELF_TEST_CASES)} cases passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="repo root to scan (default: the checkout)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the scanner against seeded bad snippets")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings, suppressions = scan_tree(args.root)
    for finding in findings:
        print(finding)
    print(f"check_invariants: {len(findings)} violation(s), "
          f"{suppressions} justified suppression(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
