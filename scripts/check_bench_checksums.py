#!/usr/bin/env python3
"""Guard bench_engine's determinism checksums against drift.

The per-scenario `resilience_checksum` (sum of finite resilience values)
is a pure function of the committed generators and solvers — identical on
every machine. A drift therefore means a solver started returning
different answers, which is a correctness bug, not a perf regression.

Usage:
  check_bench_checksums.py BENCH_engine.json [baseline.json]
  check_bench_checksums.py --update BENCH_engine.json [baseline.json]

Default baseline: bench/BENCH_engine_baseline.json next to this repo.
Exit status: 0 clean, 1 drift (or scenario set mismatch), 2 usage error.
"""

import json
import os
import sys

# Scenarios every bench run (and baseline) must carry. The symmetric diff
# below already fails on run-vs-baseline mismatches; this set additionally
# refuses a baseline regenerated without the registry-v3 scenarios.
REQUIRED_SCENARIOS = {
    "local_ax_star_b",
    "handle_vs_raw_v2_handle",
    "delta_commit_small",
    "delta_commit_vs_rebuild",
    "result_cache_hot",
    "obs_off_deep_product",
    "obs_on_deep_product",
}


def load_scenarios(path):
    with open(path) as f:
        doc = json.load(f)
    return {s["name"]: s for s in doc["scenarios"]}


def main(argv):
    args = [a for a in argv[1:] if a != "--update"]
    update = "--update" in argv[1:]
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    run_path = args[0]
    baseline_path = (
        args[1]
        if len(args) > 1
        else os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "bench",
            "BENCH_engine_baseline.json",
        )
    )

    run = load_scenarios(run_path)
    missing = REQUIRED_SCENARIOS - set(run)
    if missing:
        print(
            "bench run is missing required scenarios: "
            + ", ".join(sorted(missing)),
            file=sys.stderr,
        )
        return 1
    if update:
        baseline = {
            "comment": (
                "Per-scenario determinism checksums for bench_engine (sum of "
                "finite resilience values). CI's bench-smoke job fails on any "
                "drift; regenerate with scripts/check_bench_checksums.py "
                "--update after an intentional scenario change."
            ),
            "scenarios": {
                name: {
                    "resilience_checksum": s["resilience_checksum"],
                    "instances": s["instances"],
                }
                for name, s in run.items()
            },
        }
        with open(baseline_path, "w") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline rewritten: {baseline_path}")
        return 0

    with open(baseline_path) as f:
        baseline = json.load(f)["scenarios"]

    failures = []
    for name in sorted(set(baseline) | set(run)):
        if name not in run:
            failures.append(f"scenario '{name}' missing from the run")
            continue
        if name not in baseline:
            failures.append(
                f"scenario '{name}' not in the baseline — add it via --update"
            )
            continue
        for key in ("resilience_checksum", "instances"):
            got, want = run[name][key], baseline[name][key]
            if got != want:
                failures.append(
                    f"scenario '{name}': {key} drifted ({got} != baseline {want})"
                )
    if failures:
        print("bench checksum drift detected:", file=sys.stderr)
        for failure in failures:
            print(f"  * {failure}", file=sys.stderr)
        return 1
    print(f"{len(run)} scenarios match the committed checksums")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
