#!/usr/bin/env python3
"""Validate the engine's metrics export in a bench_engine run.

Checks three things CI's bench-smoke job relies on:

1. The Prometheus exposition (<run>.prom, written by bench_engine next to
   the JSON report) is structurally sound: every sample is preceded by
   HELP/TYPE lines, histogram `le` bucket series are cumulative and
   monotone, the "+Inf" bucket equals `_count`, and `_sum` is present.
2. BENCH_engine.json embeds the same export under a top-level "metrics"
   object (counters / histograms / gauges), and every scenario carries a
   "latency_histogram" whose bucket counts add up to its `count` and
   whose p50 <= p95 <= p99.
3. The observability overhead pair: `obs_on_deep_product` must answer
   identically to `obs_off_deep_product` (same resilience_checksum) and
   its p50 must stay within 5% + a 5us absolute floor for jitter on
   sub-100us solves.

Serve mode (`--serve`) validates a `bench_engine --serve` run instead:
the merged multi-shard Prometheus exposition must carry shard="i" labels
for every shard of the reporting run plus shard="all" roll-ups that
equal the sum of the per-shard series, and BENCH_serve.json must show
equal resilience checksums across shard counts, zero errors, per-shard
p50 <= p99, a shedding shed-storm, and a multi-shard read-throughput
speedup over single-shard.

Persist mode (`--persist`) validates a `bench_engine --persist` run
(no .prom file — the persist bench measures storage, not the metrics
exporter): BENCH_persist.json must carry segment_cold_load and
text_reparse runs at both 4k and 64k facts with EQUAL resilience
checksums per size (the mmap-restored database answers identically to
a text re-registration), a journal_replay_100_commits run, and the 64k
cold-load speedup must clear the floor — segments exist to make
restart cheaper than reparsing, and a regression to ~1x means the
mmap path quietly fell back to copying.

Faults mode (`--faults`) validates a `bench_engine --faults` run (no
.prom file): BENCH_faults.json must carry the paired commit storms
(failpoints disabled vs every site armed at probability 0) with EQUAL
resilience checksums across both storms and both post-reopen restores,
zero recorded fires on the armed side, a passing disabled-path overhead
gate (measured check cost under 1% of the commit p50), and the armed-p0
sanity ratio within its budget.

Usage:
  check_metrics_export.py BENCH_engine.json [BENCH_engine.prom]
  check_metrics_export.py --serve BENCH_serve.json [BENCH_serve.prom]
  check_metrics_export.py --persist BENCH_persist.json
  check_metrics_export.py --faults BENCH_faults.json
Exit status: 0 clean, 1 validation failure, 2 usage error.
"""

import json
import math
import re
import sys

OBS_PAIR = ("obs_off_deep_product", "obs_on_deep_product")
# obs_on p50 <= obs_off p50 * (1 + REL_SLACK) + ABS_SLACK_MICROS.
REL_SLACK = 0.05
ABS_SLACK_MICROS = 5.0
# CI floor for the multi-shard read-throughput speedup. The cache
# residency contrast the serve bench is built on is machine-independent
# and lands well above 3x locally; the floor leaves room for noisy,
# core-starved CI runners without letting a regression to ~1x pass.
SERVE_SPEEDUP_FLOOR = 1.5
# CI floor for the 64k-fact segment cold-load vs text-reparse speedup.
# The contrast is structural (mmap + pointer fixup vs a full text parse
# and index rebuild) and lands >100x locally; 5x leaves enormous head-
# room for slow CI disks without letting a copy-instead-of-map
# regression pass.
PERSIST_SPEEDUP_FLOOR = 5.0

SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r"\s+(?P<value>[^ ]+)$"
)


def parse_labels(text):
    if not text:
        return {}
    labels = {}
    # Label values are quoted and may contain escaped quotes/backslashes.
    for match in re.finditer(r'(\w+)="((?:[^"\\]|\\.)*)"', text):
        labels[match.group(1)] = match.group(2)
    return labels


def check_prometheus(text, failures):
    helped, typed = set(), {}
    series = {}  # (name, frozen labels minus le) -> [(le, value), ...]
    scalars = {}  # full sample line key -> value
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            failures.append(f"prom line {lineno}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        labels = parse_labels(match.group("labels"))
        try:
            value = float(match.group("value"))
        except ValueError:
            failures.append(f"prom line {lineno}: non-numeric value: {line!r}")
            continue
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
        if base not in typed or base not in helped:
            failures.append(
                f"prom line {lineno}: sample '{name}' lacks HELP/TYPE "
                f"for '{base}'"
            )
        if name.endswith("_bucket") and "le" in labels:
            le = labels.pop("le")
            key = (base, tuple(sorted(labels.items())))
            bound = math.inf if le == "+Inf" else float(le)
            series.setdefault(key, []).append((bound, value))
        else:
            scalars[(name, tuple(sorted(labels.items())))] = value

    if not series:
        failures.append("prom: no histogram bucket series found at all")
    for (base, labels), buckets in series.items():
        where = f"prom histogram {base}{dict(labels)}"
        bounds = [b for b, _ in buckets]
        values = [v for _, v in buckets]
        if bounds != sorted(bounds):
            failures.append(f"{where}: le bounds out of order")
        if values != sorted(values):
            failures.append(f"{where}: cumulative counts not monotone")
        if not buckets or buckets[-1][0] != math.inf:
            failures.append(f"{where}: missing +Inf bucket")
            continue
        count = scalars.get((base + "_count", labels))
        if count is None:
            failures.append(f"{where}: missing _count sample")
        elif count != buckets[-1][1]:
            failures.append(
                f"{where}: +Inf bucket {buckets[-1][1]} != _count {count}"
            )
        if (base + "_sum", labels) not in scalars:
            failures.append(f"{where}: missing _sum sample")
    return scalars


def check_embedded_metrics(doc, failures):
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        failures.append("BENCH json: no top-level 'metrics' object")
        return
    for key in ("counters", "histograms", "gauges"):
        if not isinstance(metrics.get(key), list):
            failures.append(f"BENCH json: metrics.{key} missing or not a list")
    for family in metrics.get("counters", []):
        for sample in family.get("samples", []):
            if sample["value"] < 0:
                failures.append(
                    f"metrics counter {family['name']}: negative sample"
                )
    for family in metrics.get("histograms", []):
        for entry in family.get("series", []):
            bucket_total = sum(b["count"] for b in entry.get("buckets", []))
            if bucket_total != entry["count"]:
                failures.append(
                    f"metrics histogram {family['name']}"
                    f"{{{entry.get('label')}}}: bucket counts {bucket_total}"
                    f" != count {entry['count']}"
                )


def check_scenario_histograms(doc, failures):
    for scenario in doc.get("scenarios", []):
        name = scenario.get("name", "?")
        hist = scenario.get("latency_histogram")
        if not isinstance(hist, dict):
            failures.append(f"scenario '{name}': no latency_histogram")
            continue
        bucket_total = sum(b["count"] for b in hist.get("buckets", []))
        if bucket_total != hist.get("count"):
            failures.append(
                f"scenario '{name}': histogram buckets sum to {bucket_total}"
                f" but count is {hist.get('count')}"
            )
        quantiles = [hist.get(k, 0) for k in
                     ("p50_micros", "p95_micros", "p99_micros")]
        if quantiles != sorted(quantiles):
            failures.append(
                f"scenario '{name}': quantiles not monotone: {quantiles}"
            )
        finite = [b for b in hist.get("buckets", []) if b["le"] != "+Inf"]
        bounds = [b["le"] for b in finite]
        if bounds != sorted(bounds):
            failures.append(f"scenario '{name}': bucket bounds out of order")


def check_obs_pair(doc, failures):
    scenarios = {s["name"]: s for s in doc.get("scenarios", [])}
    off_name, on_name = OBS_PAIR
    off, on = scenarios.get(off_name), scenarios.get(on_name)
    if off is None or on is None:
        failures.append(
            f"missing observability pair: need '{off_name}' and '{on_name}'"
        )
        return
    if off["resilience_checksum"] != on["resilience_checksum"]:
        failures.append(
            "obs pair answers diverged: checksum "
            f"{on['resilience_checksum']} (on) != "
            f"{off['resilience_checksum']} (off)"
        )
    budget = off["solve_p50_micros"] * (1 + REL_SLACK) + ABS_SLACK_MICROS
    if on["solve_p50_micros"] > budget:
        failures.append(
            f"observability overhead too high: obs_on p50 "
            f"{on['solve_p50_micros']:.1f}us exceeds budget {budget:.1f}us "
            f"(obs_off p50 {off['solve_p50_micros']:.1f}us)"
        )


def check_serve_json(doc, failures):
    """Structure and cross-run invariants of BENCH_serve.json."""
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        failures.append("serve json: no 'runs' list")
        return 0
    checksums = {run.get("resilience_checksum") for run in runs}
    if len(checksums) != 1:
        failures.append(
            f"serve json: resilience checksums differ across shard counts: "
            f"{sorted(checksums)}"
        )
    for run in runs:
        shards = run.get("shards", 0)
        where = f"serve run shards={shards}"
        if run.get("errors", 1) != 0:
            failures.append(f"{where}: errors = {run.get('errors')}")
        if not 0.0 <= run.get("shed_rate", -1) <= 1.0:
            failures.append(f"{where}: shed_rate out of [0,1]")
        per_shard = run.get("per_shard", [])
        if len(per_shard) != shards:
            failures.append(
                f"{where}: per_shard has {len(per_shard)} entries"
            )
        for entry in per_shard:
            if entry.get("p50_micros", 0) > entry.get("p99_micros", 0):
                failures.append(
                    f"{where} shard {entry.get('shard')}: p50 > p99"
                )
    speedups = doc.get("speedup", [])
    if not speedups:
        failures.append("serve json: no multi-shard speedup entries")
    for entry in speedups:
        ratio = entry.get("read_throughput_x_single", 0)
        if ratio < SERVE_SPEEDUP_FLOOR:
            failures.append(
                f"serve json: {entry.get('shards')}-shard read throughput "
                f"only {ratio:.2f}x single-shard "
                f"(floor {SERVE_SPEEDUP_FLOOR}x)"
            )
    storm = doc.get("shed_storm", {})
    if storm.get("submitted", 0) <= 0:
        failures.append("serve json: shed_storm ran nothing")
    elif storm.get("shed_deadline_exceeded", 0) <= 0:
        failures.append("serve json: shed_storm shed no expired deadlines")
    return max((run.get("shards", 0) for run in runs), default=0)


def check_serve_prometheus(scalars, num_shards, failures):
    """Per-shard labels and shard="all" roll-up consistency in the merged
    exposition. Gauges carry shard labels but no roll-up; every counter
    and histogram _count/_sum with an "all" sample must equal the sum of
    its numeric-shard siblings ( _sum within float tolerance)."""
    groups = {}
    for (name, labels), value in scalars.items():
        rest = dict(labels)
        shard = rest.pop("shard", None)
        if shard is None:
            continue
        key = (name, tuple(sorted(rest.items())))
        groups.setdefault(key, {})[shard] = value
    if not groups:
        failures.append("serve prom: no shard-labelled samples at all")
        return
    shards_seen = set()
    rollups_checked = 0
    for (name, labels), by_shard in groups.items():
        shards_seen.update(s for s in by_shard if s != "all")
        if "all" not in by_shard:
            continue  # per-shard gauge: no roll-up by design
        total = sum(v for s, v in by_shard.items() if s != "all")
        rollup = by_shard["all"]
        tolerance = (
            1e-6 * max(1.0, abs(rollup)) if name.endswith("_sum") else 0
        )
        if abs(total - rollup) > tolerance:
            failures.append(
                f"serve prom {name}{dict(labels)}: per-shard sum {total} "
                f"!= shard=\"all\" {rollup}"
            )
        else:
            rollups_checked += 1
    expected = {str(i) for i in range(num_shards)}
    missing = expected - shards_seen
    if missing:
        failures.append(
            f"serve prom: no samples for shard(s) {sorted(missing)}"
        )
    request_shards = set()
    for (name, _), by_shard in groups.items():
        if name == "rpqres_requests_total":
            request_shards.update(s for s in by_shard if s != "all")
    if not expected <= request_shards:
        failures.append(
            "serve prom: rpqres_requests_total missing per-shard series: "
            f"have {sorted(request_shards)}, want {sorted(expected)}"
        )
    if rollups_checked == 0:
        failures.append("serve prom: no shard=\"all\" roll-ups found")


def check_persist_json(doc, failures):
    """Structure and invariants of BENCH_persist.json."""
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        failures.append("persist json: no 'runs' list")
        return
    by_key = {}
    for run in runs:
        by_key[(run.get("name"), run.get("num_facts"))] = run
        if run.get("reps", 0) <= 0:
            failures.append(
                f"persist run {run.get('name')}@{run.get('num_facts')}: "
                "no timed reps"
            )
        p50, p95 = run.get("p50_micros", 0), run.get("p95_micros", 0)
        if not 0 < p50 <= p95:
            failures.append(
                f"persist run {run.get('name')}@{run.get('num_facts')}: "
                f"implausible quantiles p50={p50} p95={p95}"
            )
    for num_facts in (4000, 64000):
        cold = by_key.get(("segment_cold_load", num_facts))
        reparse = by_key.get(("text_reparse", num_facts))
        if cold is None or reparse is None:
            failures.append(
                f"persist json: missing segment_cold_load/text_reparse "
                f"pair at {num_facts} facts"
            )
            continue
        if cold.get("resilience_checksum") < 0:
            failures.append(
                f"persist run segment_cold_load@{num_facts}: solve failed "
                f"(checksum {cold.get('resilience_checksum')})"
            )
        if cold.get("resilience_checksum") != reparse.get(
                "resilience_checksum"):
            failures.append(
                f"persist json: answers diverged at {num_facts} facts: "
                f"checksum {cold.get('resilience_checksum')} (cold load) "
                f"!= {reparse.get('resilience_checksum')} (reparse)"
            )
    speedups = {
        entry.get("num_facts"): entry.get("cold_load_x_reparse", 0)
        for entry in doc.get("speedup", [])
    }
    if 64000 not in speedups:
        failures.append("persist json: no 64k-fact speedup entry")
    elif speedups[64000] < PERSIST_SPEEDUP_FLOOR:
        failures.append(
            f"persist json: 64k cold load only {speedups[64000]:.2f}x "
            f"text reparse (floor {PERSIST_SPEEDUP_FLOOR}x)"
        )
    replay = doc.get("journal_replay", {})
    if replay.get("commits", 0) < 100 or replay.get("records", 0) <= 0:
        failures.append(
            "persist json: journal_replay missing or replayed nothing"
        )
    elif replay.get("p50_micros", 0) <= 0:
        failures.append("persist json: journal_replay has no timing")


def check_faults_json(doc, failures):
    """Structure and gates of BENCH_faults.json."""
    runs = {run.get("name"): run for run in doc.get("runs", [])}
    for name in ("failpoints_disabled", "failpoints_armed_p0"):
        if name not in runs:
            failures.append(f"faults json: missing run '{name}'")
    if len(failures) > 0 or len(runs) < 2:
        return
    disabled = runs["failpoints_disabled"]
    armed = runs["failpoints_armed_p0"]
    for name, run in runs.items():
        if run.get("commits", 0) <= 0:
            failures.append(f"faults run {name}: no timed commits")
        p50, p95 = run.get("p50_micros", 0), run.get("p95_micros", 0)
        if not 0 < p50 <= p95:
            failures.append(
                f"faults run {name}: implausible quantiles "
                f"p50={p50} p95={p95}"
            )
        if run.get("resilience_checksum") != run.get("restored_checksum"):
            failures.append(
                f"faults run {name}: reopened directory answers differently "
                f"(checksum {run.get('resilience_checksum')} vs restored "
                f"{run.get('restored_checksum')})"
            )
    if disabled.get("resilience_checksum") != armed.get(
            "resilience_checksum"):
        failures.append(
            "faults json: armed-p0 storm diverged from the disabled storm: "
            f"checksum {armed.get('resilience_checksum')} != "
            f"{disabled.get('resilience_checksum')}"
        )
    if doc.get("armed_p0_fires", -1) != 0:
        failures.append(
            f"faults json: armed-p0 recorded "
            f"{doc.get('armed_p0_fires')} fires (want 0)"
        )
    if doc.get("sites", 0) <= 0:
        failures.append("faults json: no failpoint sites registered")
    overhead = doc.get("overhead", {})
    if not overhead.get("disabled_pass", False):
        failures.append(
            "faults json: disabled-path overhead gate failed: "
            f"{overhead.get('disabled_fraction_of_p50', 'missing')} of the "
            f"commit p50 (budget {overhead.get('disabled_budget')})"
        )
    if not overhead.get("armed_pass", False):
        failures.append(
            "faults json: armed-p0 sanity ratio failed: "
            f"{overhead.get('armed_p0_p50_x_disabled', 'missing')}x "
            f"(budget {overhead.get('armed_sanity_budget')}x)"
        )
    if not doc.get("checksums_equal", False):
        failures.append("faults json: bench reported checksums_equal=false")


def main(argv):
    argv = list(argv)
    serve_mode = "--serve" in argv
    if serve_mode:
        argv.remove("--serve")
    persist_mode = "--persist" in argv
    if persist_mode:
        argv.remove("--persist")
    faults_mode = "--faults" in argv
    if faults_mode:
        argv.remove("--faults")
    if len(argv) < 2 or serve_mode + persist_mode + faults_mode > 1:
        print(__doc__, file=sys.stderr)
        return 2
    json_path = argv[1]

    with open(json_path) as f:
        doc = json.load(f)

    failures = []
    if faults_mode:
        check_faults_json(doc, failures)
        if failures:
            print("metrics export validation failed:", file=sys.stderr)
            for failure in failures:
                print(f"  * {failure}", file=sys.stderr)
            return 1
        overhead = doc.get("overhead", {})
        print(
            f"faults bench ok: {doc.get('sites')} sites, disabled check "
            f"{overhead.get('disabled_check_ns', 0):.1f}ns "
            f"({100 * overhead.get('disabled_fraction_of_p50', 0):.4f}% of "
            "the commit p50), armed-p0 "
            f"{overhead.get('armed_p0_p50_x_disabled', 0):.3f}x, "
            "checksums equal"
        )
        return 0
    if persist_mode:
        check_persist_json(doc, failures)
        if failures:
            print("metrics export validation failed:", file=sys.stderr)
            for failure in failures:
                print(f"  * {failure}", file=sys.stderr)
            return 1
        speedup = {
            e["num_facts"]: e["cold_load_x_reparse"]
            for e in doc.get("speedup", [])
        }
        print(
            f"persist bench ok: {len(doc['runs'])} runs, cold load "
            f"{speedup.get(64000, 0):.1f}x reparse at 64k facts, "
            "checksums equal, journal replay validated"
        )
        return 0

    prom_path = (
        argv[2]
        if len(argv) > 2
        else (json_path[: -len(".json")] if json_path.endswith(".json")
              else json_path) + ".prom"
    )
    with open(prom_path) as f:
        prom_text = f.read()

    scalars = check_prometheus(prom_text, failures)
    if serve_mode:
        num_shards = check_serve_json(doc, failures)
        check_serve_prometheus(scalars, num_shards, failures)
    else:
        check_embedded_metrics(doc, failures)
        check_scenario_histograms(doc, failures)
        check_obs_pair(doc, failures)

    if failures:
        print("metrics export validation failed:", file=sys.stderr)
        for failure in failures:
            print(f"  * {failure}", file=sys.stderr)
        return 1
    if serve_mode:
        print(
            f"serve metrics export ok: {len(doc['runs'])} shard-count runs, "
            "merged multi-shard exposition and BENCH_serve.json validated"
        )
    else:
        print(
            f"metrics export ok: {len(doc['scenarios'])} scenario "
            "histograms, Prometheus exposition and embedded JSON metrics "
            "validated"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
