#!/usr/bin/env python3
"""Validate the engine's metrics export in a bench_engine run.

Checks three things CI's bench-smoke job relies on:

1. The Prometheus exposition (<run>.prom, written by bench_engine next to
   the JSON report) is structurally sound: every sample is preceded by
   HELP/TYPE lines, histogram `le` bucket series are cumulative and
   monotone, the "+Inf" bucket equals `_count`, and `_sum` is present.
2. BENCH_engine.json embeds the same export under a top-level "metrics"
   object (counters / histograms / gauges), and every scenario carries a
   "latency_histogram" whose bucket counts add up to its `count` and
   whose p50 <= p95 <= p99.
3. The observability overhead pair: `obs_on_deep_product` must answer
   identically to `obs_off_deep_product` (same resilience_checksum) and
   its p50 must stay within 5% + a 5us absolute floor for jitter on
   sub-100us solves.

Usage:
  check_metrics_export.py BENCH_engine.json [BENCH_engine.prom]
Exit status: 0 clean, 1 validation failure, 2 usage error.
"""

import json
import math
import re
import sys

OBS_PAIR = ("obs_off_deep_product", "obs_on_deep_product")
# obs_on p50 <= obs_off p50 * (1 + REL_SLACK) + ABS_SLACK_MICROS.
REL_SLACK = 0.05
ABS_SLACK_MICROS = 5.0

SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r"\s+(?P<value>[^ ]+)$"
)


def parse_labels(text):
    if not text:
        return {}
    labels = {}
    # Label values are quoted and may contain escaped quotes/backslashes.
    for match in re.finditer(r'(\w+)="((?:[^"\\]|\\.)*)"', text):
        labels[match.group(1)] = match.group(2)
    return labels


def check_prometheus(text, failures):
    helped, typed = set(), {}
    series = {}  # (name, frozen labels minus le) -> [(le, value), ...]
    scalars = {}  # full sample line key -> value
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            failures.append(f"prom line {lineno}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        labels = parse_labels(match.group("labels"))
        try:
            value = float(match.group("value"))
        except ValueError:
            failures.append(f"prom line {lineno}: non-numeric value: {line!r}")
            continue
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
        if base not in typed or base not in helped:
            failures.append(
                f"prom line {lineno}: sample '{name}' lacks HELP/TYPE "
                f"for '{base}'"
            )
        if name.endswith("_bucket") and "le" in labels:
            le = labels.pop("le")
            key = (base, tuple(sorted(labels.items())))
            bound = math.inf if le == "+Inf" else float(le)
            series.setdefault(key, []).append((bound, value))
        else:
            scalars[(name, tuple(sorted(labels.items())))] = value

    if not series:
        failures.append("prom: no histogram bucket series found at all")
    for (base, labels), buckets in series.items():
        where = f"prom histogram {base}{dict(labels)}"
        bounds = [b for b, _ in buckets]
        values = [v for _, v in buckets]
        if bounds != sorted(bounds):
            failures.append(f"{where}: le bounds out of order")
        if values != sorted(values):
            failures.append(f"{where}: cumulative counts not monotone")
        if not buckets or buckets[-1][0] != math.inf:
            failures.append(f"{where}: missing +Inf bucket")
            continue
        count = scalars.get((base + "_count", labels))
        if count is None:
            failures.append(f"{where}: missing _count sample")
        elif count != buckets[-1][1]:
            failures.append(
                f"{where}: +Inf bucket {buckets[-1][1]} != _count {count}"
            )
        if (base + "_sum", labels) not in scalars:
            failures.append(f"{where}: missing _sum sample")


def check_embedded_metrics(doc, failures):
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        failures.append("BENCH json: no top-level 'metrics' object")
        return
    for key in ("counters", "histograms", "gauges"):
        if not isinstance(metrics.get(key), list):
            failures.append(f"BENCH json: metrics.{key} missing or not a list")
    for family in metrics.get("counters", []):
        for sample in family.get("samples", []):
            if sample["value"] < 0:
                failures.append(
                    f"metrics counter {family['name']}: negative sample"
                )
    for family in metrics.get("histograms", []):
        for entry in family.get("series", []):
            bucket_total = sum(b["count"] for b in entry.get("buckets", []))
            if bucket_total != entry["count"]:
                failures.append(
                    f"metrics histogram {family['name']}"
                    f"{{{entry.get('label')}}}: bucket counts {bucket_total}"
                    f" != count {entry['count']}"
                )


def check_scenario_histograms(doc, failures):
    for scenario in doc.get("scenarios", []):
        name = scenario.get("name", "?")
        hist = scenario.get("latency_histogram")
        if not isinstance(hist, dict):
            failures.append(f"scenario '{name}': no latency_histogram")
            continue
        bucket_total = sum(b["count"] for b in hist.get("buckets", []))
        if bucket_total != hist.get("count"):
            failures.append(
                f"scenario '{name}': histogram buckets sum to {bucket_total}"
                f" but count is {hist.get('count')}"
            )
        quantiles = [hist.get(k, 0) for k in
                     ("p50_micros", "p95_micros", "p99_micros")]
        if quantiles != sorted(quantiles):
            failures.append(
                f"scenario '{name}': quantiles not monotone: {quantiles}"
            )
        finite = [b for b in hist.get("buckets", []) if b["le"] != "+Inf"]
        bounds = [b["le"] for b in finite]
        if bounds != sorted(bounds):
            failures.append(f"scenario '{name}': bucket bounds out of order")


def check_obs_pair(doc, failures):
    scenarios = {s["name"]: s for s in doc.get("scenarios", [])}
    off_name, on_name = OBS_PAIR
    off, on = scenarios.get(off_name), scenarios.get(on_name)
    if off is None or on is None:
        failures.append(
            f"missing observability pair: need '{off_name}' and '{on_name}'"
        )
        return
    if off["resilience_checksum"] != on["resilience_checksum"]:
        failures.append(
            "obs pair answers diverged: checksum "
            f"{on['resilience_checksum']} (on) != "
            f"{off['resilience_checksum']} (off)"
        )
    budget = off["solve_p50_micros"] * (1 + REL_SLACK) + ABS_SLACK_MICROS
    if on["solve_p50_micros"] > budget:
        failures.append(
            f"observability overhead too high: obs_on p50 "
            f"{on['solve_p50_micros']:.1f}us exceeds budget {budget:.1f}us "
            f"(obs_off p50 {off['solve_p50_micros']:.1f}us)"
        )


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    json_path = argv[1]
    prom_path = (
        argv[2]
        if len(argv) > 2
        else (json_path[: -len(".json")] if json_path.endswith(".json")
              else json_path) + ".prom"
    )

    with open(json_path) as f:
        doc = json.load(f)
    with open(prom_path) as f:
        prom_text = f.read()

    failures = []
    check_prometheus(prom_text, failures)
    check_embedded_metrics(doc, failures)
    check_scenario_histograms(doc, failures)
    check_obs_pair(doc, failures)

    if failures:
        print("metrics export validation failed:", file=sys.stderr)
        for failure in failures:
            print(f"  * {failure}", file=sys.stderr)
        return 1
    print(
        f"metrics export ok: {len(doc['scenarios'])} scenario histograms, "
        "Prometheus exposition and embedded JSON metrics validated"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
