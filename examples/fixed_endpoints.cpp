// rpqres example: fixed-endpoint resilience (extension beyond the paper).
//
// Section 8 of the paper leaves the non-Boolean setting (endpoints fixed)
// as future work. For *local* languages, Theorem 3.13's product network is
// endpoint-agnostic, so the same MinCut reduction answers: "what is the
// cheapest set of edges whose removal disconnects s from t along
// L-labeled walks?" — a labeled generalization of classic s-t MinCut.
//
// Scenario: a data-center fabric where packets must traverse an ingress
// (a), any number of switch hops (x), and an egress (b). Both queries go
// through the serving engine against one registered handle: the Boolean
// one ("no ax*b route anywhere") as a plain request, the targeted one
// ("no ax*b route from rack R1 to rack R9") by setting the request's
// fixed (source, target) endpoints — API v2 covers both.

#include <iostream>

#include "engine/db_registry.h"
#include "engine/engine.h"
#include "engine/request.h"
#include "graphdb/generators.h"
#include "graphdb/graph_db.h"
#include "graphdb/rpq_eval.h"
#include "graphdb/serialization.h"
#include "lang/language.h"
#include "util/rng.h"

using namespace rpqres;

int main() {
  Rng rng(4242);
  GraphDb graph = LayeredFlowDb(&rng, /*sources=*/3, /*layers=*/4,
                                /*width=*/4, /*sinks=*/3, /*density=*/0.5,
                                /*max_multiplicity=*/8);
  Language query = Language::MustFromRegexString("ax*b");

  // Pick the endpoints of one concrete existing route (the endpoints of a
  // shortest witness walk).
  std::optional<WitnessWalk> walk = ShortestWitnessWalk(graph, query);
  if (!walk || walk->empty()) {
    std::cerr << "generator produced a routeless fabric\n";
    return 1;
  }
  NodeId s = graph.fact(walk->front()).source;
  NodeId t = graph.fact(walk->back()).target;
  std::cout << "Fabric (" << graph.num_facts() << " links):\n"
            << SerializeGraphDb(graph) << "\n";

  DbRegistry registry;
  DbHandle db = registry.Register(graph, "fabric");  // copy: the final
                                                     // verification below
                                                     // reads `graph`
  ResilienceEngine engine;
  ResilienceResponse boolean = engine.Evaluate(
      {.regex = "ax*b", .db = db, .semantics = Semantics::kBag});
  ResilienceResponse targeted = engine.Evaluate({.regex = "ax*b",
                                                 .db = db,
                                                 .semantics = Semantics::kBag,
                                                 .source = s,
                                                 .target = t});
  if (!boolean.status.ok() || !targeted.status.ok()) {
    std::cerr << (boolean.status.ok() ? targeted.status : boolean.status)
              << "\n";
    return 1;
  }
  std::cout << "Boolean RES (kill every a·x*·b route):    "
            << boolean.result.value << " via " << boolean.result.algorithm
            << "\n";
  std::cout << "Fixed-endpoint RES (" << graph.node_name(s) << " → "
            << graph.node_name(t) << " only): " << targeted.result.value
            << " via " << targeted.result.algorithm << "\n";
  if (targeted.result.value > boolean.result.value) {
    std::cerr << "bug: targeted interdiction cannot cost more\n";
    return 1;
  }
  std::vector<bool> removed(graph.num_facts(), false);
  for (FactId f : targeted.result.contingency) removed[f] = true;
  bool still_routed =
      EvaluatesToTrueBetween(graph, query.enfa(), s, t, &removed);
  std::cout << "Route survives the targeted cut? "
            << (still_routed ? "YES (bug!)" : "no") << "\n";
  return still_routed ? 1 : 0;
}
