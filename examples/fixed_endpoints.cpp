// rpqres example: fixed-endpoint resilience (extension beyond the paper).
//
// Section 8 of the paper leaves the non-Boolean setting (endpoints fixed)
// as future work. For *local* languages, Theorem 3.13's product network is
// endpoint-agnostic, so the same MinCut reduction answers: "what is the
// cheapest set of edges whose removal disconnects s from t along
// L-labeled walks?" — a labeled generalization of classic s-t MinCut.
//
// Scenario: a data-center fabric where packets must traverse an ingress
// (a), any number of switch hops (x), and an egress (b). We compare the
// Boolean query ("no ax*b route anywhere") with the targeted one ("no
// ax*b route from rack R1 to rack R9").

#include <iostream>

#include "graphdb/generators.h"
#include "graphdb/graph_db.h"
#include "graphdb/rpq_eval.h"
#include "graphdb/serialization.h"
#include "lang/language.h"
#include "resilience/local_resilience.h"
#include "util/rng.h"

using namespace rpqres;

int main() {
  Rng rng(4242);
  GraphDb db = LayeredFlowDb(&rng, /*sources=*/3, /*layers=*/4,
                             /*width=*/4, /*sinks=*/3, /*density=*/0.5,
                             /*max_multiplicity=*/8);
  Language query = Language::MustFromRegexString("ax*b");

  // Pick the endpoints of one concrete existing route (the endpoints of a
  // shortest witness walk).
  std::optional<WitnessWalk> walk = ShortestWitnessWalk(db, query);
  if (!walk || walk->empty()) {
    std::cerr << "generator produced a routeless fabric\n";
    return 1;
  }
  NodeId s = db.fact(walk->front()).source;
  NodeId t = db.fact(walk->back()).target;
  std::cout << "Fabric (" << db.num_facts() << " links):\n"
            << SerializeGraphDb(db) << "\n";

  Result<ResilienceResult> boolean =
      SolveLocalResilience(query, db, Semantics::kBag);
  Result<ResilienceResult> targeted = SolveLocalResilienceFixedEndpoints(
      query, db, s, t, Semantics::kBag);
  if (!boolean.ok() || !targeted.ok()) {
    std::cerr << (boolean.ok() ? targeted.status() : boolean.status())
              << "\n";
    return 1;
  }
  std::cout << "Boolean RES (kill every a·x*·b route):    "
            << boolean->value << "\n";
  std::cout << "Fixed-endpoint RES (" << db.node_name(s) << " → "
            << db.node_name(t) << " only): " << targeted->value << "\n";
  if (targeted->value > boolean->value) {
    std::cerr << "bug: targeted interdiction cannot cost more\n";
    return 1;
  }
  std::vector<bool> removed(db.num_facts(), false);
  for (FactId f : targeted->contingency) removed[f] = true;
  bool still_routed =
      EvaluatesToTrueBetween(db, query.enfa(), s, t, &removed);
  std::cout << "Route survives the targeted cut? "
            << (still_routed ? "YES (bug!)" : "no") << "\n";
  return still_routed ? 1 : 0;
}
