// rpqres example: fixed-endpoint resilience (extension beyond the paper).
//
// Section 8 of the paper leaves the non-Boolean setting (endpoints fixed)
// as future work. For *local* languages, Theorem 3.13's product network is
// endpoint-agnostic, so the same MinCut reduction answers: "what is the
// cheapest set of edges whose removal disconnects s from t along
// L-labeled walks?" — a labeled generalization of classic s-t MinCut.
//
// Scenario: a data-center fabric where packets must traverse an ingress
// (a), any number of switch hops (x), and an egress (b). The Boolean
// query ("no ax*b route anywhere") goes through the serving engine
// against a registered handle; the targeted one ("no ax*b route from
// rack R1 to rack R9") uses the direct fixed-endpoint solver — the one
// entry point the request API does not cover yet (no Boolean plan
// subsumes it).

#include <iostream>

#include "engine/db_registry.h"
#include "engine/engine.h"
#include "engine/request.h"
#include "graphdb/generators.h"
#include "graphdb/graph_db.h"
#include "graphdb/rpq_eval.h"
#include "graphdb/serialization.h"
#include "lang/language.h"
#include "resilience/local_resilience.h"
#include "util/rng.h"

using namespace rpqres;

int main() {
  Rng rng(4242);
  GraphDb graph = LayeredFlowDb(&rng, /*sources=*/3, /*layers=*/4,
                                /*width=*/4, /*sinks=*/3, /*density=*/0.5,
                                /*max_multiplicity=*/8);
  Language query = Language::MustFromRegexString("ax*b");

  // Pick the endpoints of one concrete existing route (the endpoints of a
  // shortest witness walk).
  std::optional<WitnessWalk> walk = ShortestWitnessWalk(graph, query);
  if (!walk || walk->empty()) {
    std::cerr << "generator produced a routeless fabric\n";
    return 1;
  }
  NodeId s = graph.fact(walk->front()).source;
  NodeId t = graph.fact(walk->back()).target;
  std::cout << "Fabric (" << graph.num_facts() << " links):\n"
            << SerializeGraphDb(graph) << "\n";

  DbRegistry registry;
  DbHandle db = registry.Register(graph, "fabric");  // copy: the targeted
                                                     // solver reads `graph`
  ResilienceEngine engine;
  ResilienceResponse boolean = engine.Evaluate(
      {.regex = "ax*b", .db = db, .semantics = Semantics::kBag});
  Result<ResilienceResult> targeted = SolveLocalResilienceFixedEndpoints(
      query, graph, s, t, Semantics::kBag);
  if (!boolean.status.ok() || !targeted.ok()) {
    std::cerr << (boolean.status.ok() ? targeted.status() : boolean.status)
              << "\n";
    return 1;
  }
  std::cout << "Boolean RES (kill every a·x*·b route):    "
            << boolean.result.value << "\n";
  std::cout << "Fixed-endpoint RES (" << graph.node_name(s) << " → "
            << graph.node_name(t) << " only): " << targeted->value << "\n";
  if (targeted->value > boolean.result.value) {
    std::cerr << "bug: targeted interdiction cannot cost more\n";
    return 1;
  }
  std::vector<bool> removed(graph.num_facts(), false);
  for (FactId f : targeted->contingency) removed[f] = true;
  bool still_routed =
      EvaluatesToTrueBetween(graph, query.enfa(), s, t, &removed);
  std::cout << "Route survives the targeted cut? "
            << (still_routed ? "YES (bug!)" : "no") << "\n";
  return still_routed ? 1 : 0;
}
