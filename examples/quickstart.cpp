// rpqres quickstart: compute the resilience of an RPQ on a small graph
// database through the ResilienceEngine — the compiled-query serving path
// used for real workloads (few queries, many databases).
//
// The query is the paper's flagship tractable RPQ ax*b (Section 1): "is
// there a walk from an a-edge through x-edges to a b-edge?" — resilience
// asks for the cheapest set of edges whose deletion breaks all such walks.
// The engine compiles the regex once (parse, minimal DFA, Figure 1
// classification, solver plan) and caches the plan; both semantics then
// reuse solver-ready artifacts.

#include <iostream>

#include "engine/engine.h"
#include "graphdb/graph_db.h"
#include "lang/language.h"
#include "resilience/resilience.h"

using namespace rpqres;

int main() {
  // A small supply network: two sources (a-edges), internal links
  // (x-edges, with bag multiplicities as deletion costs), two sinks
  // (b-edges).
  GraphDb db;
  NodeId s1 = db.AddNode("s1"), s2 = db.AddNode("s2");
  NodeId u = db.AddNode("u"), v = db.AddNode("v"), w = db.AddNode("w");
  NodeId t1 = db.AddNode("t1"), t2 = db.AddNode("t2");

  db.AddFact(s1, 'a', u);
  db.AddFact(s2, 'a', v);
  db.AddFact(u, 'x', w, /*multiplicity=*/3);
  db.AddFact(v, 'x', w, /*multiplicity=*/1);
  db.AddFact(v, 'x', u, /*multiplicity=*/2);
  db.AddFact(w, 'b', t1);
  db.AddFact(w, 'b', t2);

  std::cout << "Database:\n" << db.ToString() << "\n";
  std::cout << "Query: Q_L for L = ax*b\n\n";

  ResilienceEngine engine;
  for (Semantics semantics : {Semantics::kSet, Semantics::kBag}) {
    InstanceOutcome outcome =
        engine.Run(QueryInstance{"ax*b", &db, semantics});
    if (!outcome.status.ok()) {
      std::cerr << "error: " << outcome.status << "\n";
      return 1;
    }
    std::cout << (semantics == Semantics::kSet ? "Set" : "Bag")
              << " semantics: resilience = " << outcome.result.value
              << " via " << outcome.result.algorithm << "\n";
    std::cout << "  classified " << outcome.stats.complexity << " — "
              << outcome.stats.rule << " ("
              << (outcome.stats.cache_hit ? "plan cache hit"
                                          : "compiled fresh")
              << ", solve " << outcome.stats.solve_micros << "us)\n";
    std::cout << "  witness contingency set:\n";
    for (FactId f : outcome.result.contingency) {
      const Fact& fact = db.fact(f);
      std::cout << "    " << db.node_name(fact.source) << " -" << fact.label
                << "-> " << db.node_name(fact.target)
                << " (cost " << db.Cost(f, semantics) << ")\n";
    }
    Status check =
        VerifyResilienceResult(Language::MustFromRegexString("ax*b"), db,
                               semantics, outcome.result);
    std::cout << "  verification: " << check.ToString() << "\n\n";
  }

  EngineStats stats = engine.stats();
  std::cout << "Engine: " << stats.instances_run << " instances, "
            << stats.compilations << " compilations, " << stats.cache_hits
            << " plan-cache hits\n";
  return 0;
}
