// rpqres quickstart: compute the resilience of an RPQ on a small graph
// database through the serving API v2 — register the database once
// (DbRegistry hands back an immutable snapshot handle with a precomputed
// per-label index), then evaluate requests against the handle.
//
// The query is the paper's flagship tractable RPQ ax*b (Section 1): "is
// there a walk from an a-edge through x-edges to a b-edge?" — resilience
// asks for the cheapest set of edges whose deletion breaks all such
// walks. The engine compiles the regex once per semantics (parse, minimal
// DFA, Figure 1 classification, solver plan) behind its plan cache; the
// example finishes with an async Submit carrying a wall-clock deadline.

#include <chrono>
#include <future>
#include <iostream>

#include "engine/db_registry.h"
#include "engine/engine.h"
#include "engine/request.h"
#include "graphdb/graph_db.h"
#include "lang/language.h"
#include "resilience/resilience.h"

using namespace rpqres;

int main() {
  // A small supply network: two sources (a-edges), internal links
  // (x-edges, with bag multiplicities as deletion costs), two sinks
  // (b-edges).
  GraphDb graph;
  NodeId s1 = graph.AddNode("s1"), s2 = graph.AddNode("s2");
  NodeId u = graph.AddNode("u"), v = graph.AddNode("v"),
         w = graph.AddNode("w");
  NodeId t1 = graph.AddNode("t1"), t2 = graph.AddNode("t2");

  graph.AddFact(s1, 'a', u);
  graph.AddFact(s2, 'a', v);
  graph.AddFact(u, 'x', w, /*multiplicity=*/3);
  graph.AddFact(v, 'x', w, /*multiplicity=*/1);
  graph.AddFact(v, 'x', u, /*multiplicity=*/2);
  graph.AddFact(w, 'b', t1);
  graph.AddFact(w, 'b', t2);

  std::cout << "Database:\n" << graph.ToString() << "\n";
  std::cout << "Query: Q_L for L = ax*b\n\n";

  // Register once; every request against the handle shares the snapshot
  // and its per-label adjacency index.
  DbRegistry registry;
  DbHandle db = registry.Register(std::move(graph), "supply-network");

  ResilienceEngine engine;
  for (Semantics semantics : {Semantics::kSet, Semantics::kBag}) {
    ResilienceResponse response = engine.Evaluate(
        {.regex = "ax*b", .db = db, .semantics = semantics});
    if (!response.status.ok()) {
      std::cerr << "error: " << response.status << "\n";
      return 1;
    }
    std::cout << (semantics == Semantics::kSet ? "Set" : "Bag")
              << " semantics: resilience = " << response.result.value
              << " via " << response.result.algorithm << "\n";
    std::cout << "  classified " << response.stats.complexity << " — "
              << response.stats.rule << " ("
              << (response.stats.cache_hit ? "plan cache hit"
                                           : "compiled fresh")
              << ", solve " << response.stats.solve_micros << "us)\n";
    std::cout << "  witness contingency set:\n";
    for (FactId f : response.result.contingency) {
      const Fact& fact = db.db().fact(f);
      std::cout << "    " << db.db().node_name(fact.source) << " -"
                << fact.label << "-> " << db.db().node_name(fact.target)
                << " (cost " << db.db().Cost(f, semantics) << ")\n";
    }
    Status check =
        VerifyResilienceResult(Language::MustFromRegexString("ax*b"),
                               db.db(), semantics, response.result);
    std::cout << "  verification: " << check.ToString() << "\n\n";
  }

  // Async submission with a deadline: the future resolves on the
  // engine's thread pool; this instance is tiny, so it finishes well
  // inside the 100ms budget.
  std::future<ResilienceResponse> future = engine.Submit(
      {.regex = "ax*b", .db = db, .semantics = Semantics::kBag,
       .options = {.deadline = std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(100)}});
  ResilienceResponse async = future.get();
  std::cout << "Async Submit (100ms deadline): "
            << (async.status.ok()
                    ? "resilience = " + std::to_string(async.result.value)
                    : async.status.ToString())
            << "\n";

  EngineStats stats = engine.stats();
  PlanCacheView cache = engine.plan_cache_view();
  std::cout << "Engine: " << stats.instances_run << " instances, "
            << stats.compilations << " compilations, " << stats.cache_hits
            << " plan-cache hits, " << cache.size << "/" << cache.capacity
            << " plans resident, " << stats.submits << " async submits\n";
  return async.status.ok() ? 0 : 1;
}
