// rpqres example: explore a hardness gadget (Section 4) — print the
// completed gadget, its hypergraph of matches, the condensation trace, and
// the odd-path verdict; then run the end-to-end vertex-cover reduction on
// a triangle and compare against the Prp 4.2 prediction. The final solve
// goes through the serving engine with the solver pinned to the exact
// branch & bound (RequestOptions::method) — the NP-hard side of the
// dichotomy, exercised through the same API the tractable side serves on.

#include <iostream>

#include "engine/db_registry.h"
#include "engine/engine.h"
#include "engine/request.h"
#include "gadgets/encoding.h"
#include "gadgets/gadget.h"
#include "gadgets/paper_gadgets.h"
#include "lang/language.h"
#include "resilience/resilience.h"

using namespace rpqres;

int main() {
  Language aa = Language::MustFromRegexString("aa");
  PreGadget gadget = AaGadget();

  std::cout << "=== Gadget " << gadget.name << " for L = aa ===\n";
  CompletedGadget completed = Complete(gadget);
  std::cout << "Completed gadget:\n" << completed.db.ToString() << "\n";

  Result<GadgetVerification> verification = VerifyGadget(aa, gadget);
  if (!verification.ok()) {
    std::cerr << "verification error: " << verification.status() << "\n";
    return 1;
  }
  std::cout << "Hypergraph of matches (Def 4.7):\n"
            << verification->matches.ToString() << "\n";
  std::cout << "Condensation steps (Claim 4.8):\n";
  for (const CondensationStep& step : verification->condensation.steps) {
    std::cout << "  - " << step.description << "\n";
  }
  std::cout << "\nCondensed hypergraph:\n"
            << verification->condensation.condensed.ToString();
  std::cout << "\nOdd path (Def 4.9): "
            << (verification->valid ? "YES" : "NO") << ", length "
            << verification->odd_path.path_edges << "\n\n";

  // Vertex-cover reduction on a triangle (vc = 2, m = 3, ℓ = 5):
  // predicted resilience 2 + 3*2 = 8 (Prp 4.2).
  UndirectedGraph triangle;
  triangle.num_vertices = 3;
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(0, 2);
  GraphDb encoding = EncodeGraph(OrientArbitrarily(triangle), gadget);
  std::cout << "=== Encoding Ξ of a triangle (Def 4.5): "
            << encoding.num_facts() << " facts ===\n";

  DbRegistry registry;
  DbHandle db = registry.Register(std::move(encoding), "triangle-encoding");
  ResilienceEngine engine;
  ResilienceResponse resilience = engine.Evaluate(
      {.regex = "aa", .db = db,
       .options = {.method = ResilienceMethod::kExact}});
  if (!resilience.status.ok()) {
    std::cerr << "exact solver error: " << resilience.status << "\n";
    return 1;
  }
  Capacity predicted = PredictedEncodingResilience(
      triangle, verification->odd_path.path_edges);
  std::cout << "RES_set(aa, Ξ) = " << resilience.result.value
            << "  (Prp 4.2 predicts vc(G) + m(ℓ-1)/2 = " << predicted
            << ", " << resilience.result.search_nodes << " search nodes)\n";
  return resilience.result.value == predicted ? 0 : 1;
}
