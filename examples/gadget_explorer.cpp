// rpqres example: explore a hardness gadget (Section 4) — print the
// completed gadget, its hypergraph of matches, the condensation trace, and
// the odd-path verdict; then run the end-to-end vertex-cover reduction on a
// triangle and compare against the Prp 4.2 prediction.

#include <iostream>

#include "gadgets/encoding.h"
#include "gadgets/gadget.h"
#include "gadgets/paper_gadgets.h"
#include "lang/language.h"
#include "resilience/exact.h"

using namespace rpqres;

int main() {
  Language aa = Language::MustFromRegexString("aa");
  PreGadget gadget = AaGadget();

  std::cout << "=== Gadget " << gadget.name << " for L = aa ===\n";
  CompletedGadget completed = Complete(gadget);
  std::cout << "Completed gadget:\n" << completed.db.ToString() << "\n";

  Result<GadgetVerification> verification = VerifyGadget(aa, gadget);
  if (!verification.ok()) {
    std::cerr << "verification error: " << verification.status() << "\n";
    return 1;
  }
  std::cout << "Hypergraph of matches (Def 4.7):\n"
            << verification->matches.ToString() << "\n";
  std::cout << "Condensation steps (Claim 4.8):\n";
  for (const CondensationStep& step : verification->condensation.steps) {
    std::cout << "  - " << step.description << "\n";
  }
  std::cout << "\nCondensed hypergraph:\n"
            << verification->condensation.condensed.ToString();
  std::cout << "\nOdd path (Def 4.9): "
            << (verification->valid ? "YES" : "NO") << ", length "
            << verification->odd_path.path_edges << "\n\n";

  // Vertex-cover reduction on a triangle (vc = 2, m = 3, ℓ = 5):
  // predicted resilience 2 + 3*2 = 8 (Prp 4.2).
  UndirectedGraph triangle;
  triangle.num_vertices = 3;
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(0, 2);
  GraphDb encoding = EncodeGraph(OrientArbitrarily(triangle), gadget);
  std::cout << "=== Encoding Ξ of a triangle (Def 4.5): "
            << encoding.num_facts() << " facts ===\n";
  Result<ResilienceResult> resilience =
      SolveExactResilience(aa, encoding, Semantics::kSet);
  if (!resilience.ok()) {
    std::cerr << "exact solver error: " << resilience.status() << "\n";
    return 1;
  }
  Capacity predicted = PredictedEncodingResilience(
      triangle, verification->odd_path.path_edges);
  std::cout << "RES_set(aa, Ξ) = " << resilience->value
            << "  (Prp 4.2 predicts vc(G) + m(ℓ-1)/2 = " << predicted
            << ")\n";
  return resilience->value == predicted ? 0 : 1;
}
