// rpqres example: classify the resilience complexity of RPQ languages
// (the Figure 1 pipeline), going through the engine's Compile entry
// point — the same artifact the serving path caches (parse, minimal DFA,
// classification, solver plan), so what prints here is exactly what a
// ResilienceRequest for the regex would execute. Pass regexes as
// arguments, or run without arguments to classify the paper's Figure 1
// examples.

#include <iostream>
#include <memory>
#include <vector>

#include "classify/classifier.h"
#include "engine/engine.h"
#include "lang/language.h"

using namespace rpqres;

int main(int argc, char** argv) {
  std::vector<std::string> regexes;
  for (int i = 1; i < argc; ++i) regexes.push_back(argv[i]);
  if (regexes.empty()) {
    regexes = {"abc|abd", "ab|ad|cd", "ax*b",  "ab|bc",  "axb|byc",
               "abc|be",  "abcd|be",  "ax*b|xd", "axb|cxd", "ax*b|cxd",
               "b(aa)*d", "aa",       "aaaa",   "abca|cab", "ab|bc|ca",
               "abcd|be|ef", "abcd|bef", "abc|bcd", "abc|bef", "ab*c|ba",
               "ab*d|ac*d|bc"};
  }
  ResilienceEngine engine;
  for (const std::string& regex : regexes) {
    Result<std::shared_ptr<const CompiledQuery>> compiled =
        engine.Compile(regex, Semantics::kSet);
    if (!compiled.ok()) {
      std::cerr << regex << ": " << compiled.status() << "\n";
      continue;
    }
    const CompiledQuery& query = **compiled;
    std::cout << ClassificationReport(query.language, query.classification)
              << "\n";
  }
  PlanCacheView cache = engine.plan_cache_view();
  std::cout << "(" << cache.stats.misses << " compiled, " << cache.stats.hits
            << " plan-cache hits)\n";
  return 0;
}
