// rpqres example: classify the resilience complexity of RPQ languages
// (the Figure 1 pipeline). Pass regexes as arguments, or run without
// arguments to classify the paper's Figure 1 examples.

#include <iostream>
#include <vector>

#include "classify/classifier.h"
#include "lang/language.h"

using namespace rpqres;

int main(int argc, char** argv) {
  std::vector<std::string> regexes;
  for (int i = 1; i < argc; ++i) regexes.push_back(argv[i]);
  if (regexes.empty()) {
    regexes = {"abc|abd", "ab|ad|cd", "ax*b",  "ab|bc",  "axb|byc",
               "abc|be",  "abcd|be",  "ax*b|xd", "axb|cxd", "ax*b|cxd",
               "b(aa)*d", "aa",       "aaaa",   "abca|cab", "ab|bc|ca",
               "abcd|be|ef", "abcd|bef", "abc|bcd", "abc|bef", "ab*c|ba",
               "ab*d|ac*d|bc"};
  }
  for (const std::string& regex : regexes) {
    Result<Language> lang = Language::FromRegexString(regex);
    if (!lang.ok()) {
      std::cerr << regex << ": " << lang.status() << "\n";
      continue;
    }
    Result<Classification> classification = ClassifyResilience(*lang);
    if (!classification.ok()) {
      std::cerr << regex << ": " << classification.status() << "\n";
      continue;
    }
    std::cout << ClassificationReport(*lang, *classification) << "\n";
  }
  return 0;
}
