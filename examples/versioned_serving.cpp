// examples/versioned_serving — DbRegistry v3 end to end: a named lineage,
// delta commits producing copy-on-write versions, name-based resolution
// ("orders@latest" / "orders@1"), and the version-keyed ResultCache
// absorbing repeat queries.
//
// Scenario: a small "orders" knowledge graph serving the query ax*b
// ("an approval followed by any number of transfers, then a booking").
// Ops keep editing facts; dashboards keep asking the same question.

#include <cstdio>
#include <string>

#include "engine/db_registry.h"
#include "engine/engine.h"
#include "engine/request.h"

using namespace rpqres;

namespace {

void Show(const char* what, const ResilienceResponse& response) {
  if (!response.status.ok()) {
    std::printf("%-28s -> %s\n", what, response.status.ToString().c_str());
    return;
  }
  std::string value = response.result.infinite
                          ? "inf"
                          : std::to_string(response.result.value);
  std::printf("%-28s -> RES = %s%s\n", what, value.c_str(),
              response.stats.result_cache_hit ? "   [result cache]" : "");
}

}  // namespace

int main() {
  // An engine with the version-keyed answer cache enabled (serving
  // configuration; the default is off so benchmarks measure solvers).
  EngineOptions options;
  options.result_cache_capacity = 1024;
  ResilienceEngine engine(options);
  DbRegistry registry;

  // Version 1 of the "orders" lineage.
  GraphDb db;
  NodeId intake = db.AddNode("intake");
  NodeId review = db.AddNode("review");
  NodeId ledger = db.AddNode("ledger");
  NodeId archive = db.AddNode("archive");
  db.AddFact(intake, 'a', review);
  db.AddFact(review, 'x', ledger, 3);
  db.AddFact(ledger, 'b', archive);
  DbHandle v1 = registry.Register(std::move(db), "orders");
  std::printf("registered lineage '%s': version %u (id %llu)\n",
              v1.name().c_str(), v1.version(),
              static_cast<unsigned long long>(v1.id()));

  // Serve by name: "orders@latest" resolves at execution time.
  ResilienceRequest by_name;
  by_name.regex = "ax*b";
  by_name.semantics = Semantics::kBag;
  by_name.db_ref = "orders@latest";
  by_name.registry = &registry;
  Show("orders@latest (cold)", engine.Evaluate(by_name));
  Show("orders@latest (repeat)", engine.Evaluate(by_name));

  // A delta commit: one new transfer edge, one retired approval. The new
  // version shares v1's facts (copy-on-write overlay) and patches only
  // the touched labels' index spans.
  DeltaBatch delta = registry.BeginDelta(v1);
  NodeId fast_lane = delta.AddNode("fast_lane");
  delta.AddFact(review, 'x', fast_lane).ValueOrDie();
  delta.AddFact(fast_lane, 'b', archive).ValueOrDie();
  DbHandle v2 = delta.Commit().ValueOrDie();
  std::printf("committed version %u (overlay of %lld facts over %d)\n",
              v2.version(), static_cast<long long>(v2.db().overlay_size()),
              v2.db().base_fact_watermark());

  // @latest now serves v2 — a fresh cache key, so one cold solve — while
  // @1 still answers from the pinned (and still cached) version 1.
  Show("orders@latest (v2 cold)", engine.Evaluate(by_name));
  Show("orders@latest (v2 repeat)", engine.Evaluate(by_name));
  by_name.db_ref = "orders@1";
  Show("orders@1 (pinned)", engine.Evaluate(by_name));

  EngineStats stats = engine.stats();
  std::printf(
      "result cache: %lld hits / %lld misses (%zu entries)\n",
      static_cast<long long>(stats.result_cache_hits),
      static_cast<long long>(stats.result_cache_misses),
      engine.result_cache_view().size);
  return 0;
}
