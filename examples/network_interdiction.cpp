// rpqres example: network interdiction as RPQ resilience.
//
// Section 1 of the paper observes that MinCut is exactly RES_bag(ax*b): a
// labeled flow network where a-facts are sources, x-facts are internal
// links (with interdiction costs as multiplicities), and b-facts are sinks.
// This example models a contraband-routing network and asks for the
// cheapest interdiction plan; it then tightens the query to the local
// language a(x|r)*b to show multi-modal routes (road x / rail r) are
// handled by the same machinery.

#include <iostream>

#include "graphdb/generators.h"
#include "graphdb/graph_db.h"
#include "graphdb/rpq_eval.h"
#include "lang/language.h"
#include "resilience/resilience.h"
#include "util/rng.h"

using namespace rpqres;

int main() {
  Rng rng(2026);
  GraphDb db = LayeredFlowDb(&rng, /*sources=*/3, /*layers=*/4,
                             /*width=*/4, /*sinks=*/3, /*density=*/0.45,
                             /*max_multiplicity=*/9);
  // Add rail links (label r) in parallel to some road links.
  int added = 0;
  int original_facts = db.num_facts();
  for (FactId f = 0; f < original_facts && added < 5; ++f) {
    if (db.fact(f).label == 'x' && rng.NextChance(1, 2)) {
      db.AddFact(db.fact(f).source, 'r', db.fact(f).target,
                 1 + static_cast<Capacity>(rng.NextBelow(5)));
      ++added;
    }
  }

  std::cout << "Interdiction network: " << db.num_nodes() << " nodes, "
            << db.num_facts() << " links\n\n";

  for (const char* regex : {"ax*b", "a(x|r)*b"}) {
    Language query = Language::MustFromRegexString(regex);
    Result<ResilienceResult> plan =
        ComputeResilience(query, db, Semantics::kBag);
    if (!plan.ok()) {
      std::cerr << "error: " << plan.status() << "\n";
      return 1;
    }
    std::cout << "Routes " << regex << ": cheapest interdiction costs "
              << plan->value << " (" << plan->algorithm << ", network "
              << plan->network_vertices << " vertices / "
              << plan->network_edges << " edges)\n";
    std::cout << "  cut " << plan->contingency.size() << " links:";
    for (FactId f : plan->contingency) {
      const Fact& fact = db.fact(f);
      std::cout << " " << db.node_name(fact.source) << "-" << fact.label
                << "->" << db.node_name(fact.target);
    }
    std::cout << "\n";
    GraphDb after = db.RemoveFacts(plan->contingency);
    std::cout << "  routes remain after interdiction? "
              << (EvaluatesToTrue(after, query) ? "YES (bug!)" : "no")
              << "\n\n";
  }
  return 0;
}
