// rpqres example: network interdiction as RPQ resilience, served through
// the v2 request API.
//
// Section 1 of the paper observes that MinCut is exactly RES_bag(ax*b): a
// labeled flow network where a-facts are sources, x-facts are internal
// links (with interdiction costs as multiplicities), and b-facts are
// sinks. This example models a contraband-routing network, registers it
// once (the DbHandle carries the per-label index every query reuses), and
// asks for the cheapest interdiction plan; it then tightens the query to
// the local language a(x|r)*b to show multi-modal routes (road x /
// rail r) are handled by the same machinery.

#include <iostream>

#include "engine/db_registry.h"
#include "engine/engine.h"
#include "engine/request.h"
#include "graphdb/generators.h"
#include "graphdb/graph_db.h"
#include "graphdb/rpq_eval.h"
#include "lang/language.h"
#include "util/rng.h"

using namespace rpqres;

int main() {
  Rng rng(2026);
  GraphDb graph = LayeredFlowDb(&rng, /*sources=*/3, /*layers=*/4,
                                /*width=*/4, /*sinks=*/3, /*density=*/0.45,
                                /*max_multiplicity=*/9);
  // Add rail links (label r) in parallel to some road links.
  int added = 0;
  int original_facts = graph.num_facts();
  for (FactId f = 0; f < original_facts && added < 5; ++f) {
    if (graph.fact(f).label == 'x' && rng.NextChance(1, 2)) {
      graph.AddFact(graph.fact(f).source, 'r', graph.fact(f).target,
                    1 + static_cast<Capacity>(rng.NextBelow(5)));
      ++added;
    }
  }

  std::cout << "Interdiction network: " << graph.num_nodes() << " nodes, "
            << graph.num_facts() << " links\n\n";

  // Register after the mutations: the snapshot is immutable from here on.
  DbRegistry registry;
  DbHandle db = registry.Register(std::move(graph), "contraband-routes");
  ResilienceEngine engine;

  for (const char* regex : {"ax*b", "a(x|r)*b"}) {
    ResilienceResponse plan = engine.Evaluate(
        {.regex = regex, .db = db, .semantics = Semantics::kBag});
    if (!plan.status.ok()) {
      std::cerr << "error: " << plan.status << "\n";
      return 1;
    }
    std::cout << "Routes " << regex << ": cheapest interdiction costs "
              << plan.result.value << " (" << plan.result.algorithm
              << ", network " << plan.result.network_vertices
              << " vertices / " << plan.result.network_edges << " edges)\n";
    std::cout << "  cut " << plan.result.contingency.size() << " links:";
    for (FactId f : plan.result.contingency) {
      const Fact& fact = db.db().fact(f);
      std::cout << " " << db.db().node_name(fact.source) << "-" << fact.label
                << "->" << db.db().node_name(fact.target);
    }
    std::cout << "\n";
    GraphDb after = db.db().RemoveFacts(plan.result.contingency);
    std::cout << "  routes remain after interdiction? "
              << (EvaluatesToTrue(after, Language::MustFromRegexString(regex))
                      ? "YES (bug!)"
                      : "no")
              << "\n\n";
  }
  return 0;
}
