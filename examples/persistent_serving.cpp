// examples/persistent_serving — the storage layer end to end: a registry
// with a storage_dir persists every lineage as an mmap-able segment plus
// a delta journal, survives process death, and comes back byte-identical
// with DbRegistry::OpenStorage.
//
// Scenario: the same "orders" graph as versioned_serving, but this time
// the process "crashes" (the registry is destroyed) after two commits,
// and a fresh registry restores every version from disk — the base from
// the segment, the commits by journal replay — and answers the same
// query over the memory-mapped facts without re-parsing anything.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "engine/db_registry.h"
#include "engine/engine.h"
#include "engine/request.h"
#include "graphdb/serialization.h"

using namespace rpqres;

namespace {

void Show(const char* what, const ResilienceResponse& response) {
  if (!response.status.ok()) {
    std::printf("%-26s -> %s\n", what, response.status.ToString().c_str());
    return;
  }
  std::string value = response.result.infinite
                          ? "inf"
                          : std::to_string(response.result.value);
  std::printf("%-26s -> RES = %s\n", what, value.c_str());
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "rpqres_persist_example";
  fs::remove_all(dir);

  ResilienceEngine engine;
  std::string serialized_v3;

  // --- Session one: register, commit twice, "crash". -------------------
  {
    DbRegistry::Options options;
    options.storage_dir = dir.string();
    DbRegistry registry(options);

    GraphDb db;
    NodeId intake = db.AddNode("intake");
    NodeId review = db.AddNode("review");
    NodeId ledger = db.AddNode("ledger");
    NodeId archive = db.AddNode("archive");
    db.AddFact(intake, 'a', review);
    db.AddFact(review, 'x', ledger, 3);
    db.AddFact(ledger, 'b', archive);
    DbHandle v1 = registry.Register(std::move(db), "orders");
    std::printf("registered '%s' v%u -> %s/lineage_%llu.seg\n",
                v1.name().c_str(), v1.version(), dir.c_str(),
                static_cast<unsigned long long>(v1.lineage()));

    DeltaBatch d1 = registry.BeginDelta(v1);
    NodeId fast_lane = d1.AddNode("fast_lane");
    d1.AddFact(review, 'x', fast_lane).ValueOrDie();
    d1.AddFact(fast_lane, 'b', archive).ValueOrDie();
    DbHandle v2 = d1.Commit().ValueOrDie();

    DeltaBatch d2 = registry.BeginDelta(v2);
    if (!d2.RemoveFact(intake, 'a', review).ok()) {
      std::printf("remove failed\n");
      return 1;
    }
    d2.AddFact(intake, 'a', review, 2).ValueOrDie();
    DbHandle v3 = d2.Commit().ValueOrDie();
    serialized_v3 = SerializeGraphDb(v3.db());

    DbRegistry::Gauges gauges = registry.gauges();
    std::printf("on disk: segment %lld bytes, journal %lld records\n",
                static_cast<long long>(gauges.storage_segment_bytes),
                static_cast<long long>(gauges.storage_journal_records));
    if (!registry.storage_status().ok()) {
      std::printf("storage error: %s\n",
                  registry.storage_status().ToString().c_str());
      return 1;
    }
    // The registry is destroyed here with v2/v3 only in the journal —
    // exactly what an unplanned process death would leave behind.
  }

  // --- Session two: restore from disk. ---------------------------------
  auto reopened = DbRegistry::OpenStorage(dir.string());
  if (!reopened.ok()) {
    std::printf("restore failed: %s\n",
                reopened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<DbRegistry> registry = std::move(*reopened);
  std::printf("restored in %lld us (segment mmap + journal replay)\n",
              static_cast<long long>(registry->gauges().storage_replay_micros));

  // Every version is back: the base (v1) straight off the mapped
  // segment, v2 and v3 replayed from the journal on top of it.
  for (const char* ref : {"orders@1", "orders@2", "orders@3"}) {
    auto handle = registry->Resolve(ref);
    if (!handle.ok()) {
      std::printf("%s: %s\n", ref, handle.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s restored (%s)\n", ref,
                handle->db().is_mapped() ? "mapped flat"
                                         : "overlay over mapped base");
  }
  DbHandle latest = registry->Resolve("orders").ValueOrDie();
  std::printf("latest is v%u, byte-identical to pre-crash: %s\n",
              latest.version(),
              SerializeGraphDb(latest.db()) == serialized_v3 ? "yes" : "NO");

  // And it serves: the engine solves over the memory-mapped facts.
  ResilienceRequest request;
  request.regex = "ax*b";
  request.semantics = Semantics::kBag;
  request.db_ref = "orders@latest";
  request.registry = registry.get();
  Show("orders@latest (restored)", engine.Evaluate(request));

  // Unknown references now name what *is* available.
  request.db_ref = "orders@9";
  Show("orders@9 (bad version)", engine.Evaluate(request));

  fs::remove_all(dir);
  return 0;
}
