// rpqres example: minimal repair of a knowledge graph policy violation.
//
// A compliance policy forbids walks matching abc|be — e.g. a(uthored) then
// b(enefits) then c(ontrols), or b(enefits) then e(ndorses). The language
// abc|be is *one-dangling* (Def 7.8: abc is local, be dangles on b), so the
// Prp 7.9 flow algorithm finds a minimum set of edges (claims) to retract,
// which we compare against the exponential exact solver.

#include <iostream>

#include "graphdb/generators.h"
#include "graphdb/graph_db.h"
#include "lang/language.h"
#include "resilience/resilience.h"
#include "util/rng.h"

using namespace rpqres;

int main() {
  Language policy = Language::MustFromRegexString("abc|be");

  Rng rng(7);
  GraphDb db = DanglingPairsDb(&rng, /*num_nodes=*/14, /*base_facts=*/22,
                               /*base_labels=*/{'a', 'b', 'c'}, /*x=*/'b',
                               /*y=*/'e', /*pair_count=*/6);
  std::cout << "Knowledge graph: " << db.num_nodes() << " entities, "
            << db.num_facts() << " claims\n";
  std::cout << "Policy: no walk may match " << policy.description()
            << "\n\n";

  Result<ResilienceResult> flow = ComputeResilience(
      policy, db, Semantics::kSet,
      {.method = ResilienceMethod::kOneDanglingFlow});
  Result<ResilienceResult> exact = ComputeResilience(
      policy, db, Semantics::kSet, {.method = ResilienceMethod::kExact});
  if (!flow.ok() || !exact.ok()) {
    std::cerr << "error: "
              << (flow.ok() ? exact.status() : flow.status()) << "\n";
    return 1;
  }
  std::cout << "Prp 7.9 flow algorithm: retract " << flow->value
            << " claims (" << flow->algorithm << ")\n";
  for (FactId f : flow->contingency) {
    const Fact& fact = db.fact(f);
    std::cout << "  retract " << db.node_name(fact.source) << " -"
              << fact.label << "-> " << db.node_name(fact.target) << "\n";
  }
  std::cout << "Exact solver agrees? "
            << (exact->value == flow->value ? "yes" : "NO (bug!)") << " ("
            << exact->value << ", " << exact->search_nodes
            << " search nodes)\n";
  Status check = VerifyResilienceResult(policy, db, Semantics::kSet, *flow);
  std::cout << "Witness verification: " << check.ToString() << "\n";
  return exact->value == flow->value && check.ok() ? 0 : 1;
}
