// rpqres example: minimal repair of a knowledge graph policy violation,
// through the serving API v2 with per-request solver overrides.
//
// A compliance policy forbids walks matching abc|be — e.g. a(uthored) then
// b(enefits) then c(ontrols), or b(enefits) then e(ndorses). The language
// abc|be is *one-dangling* (Def 7.8: abc is local, be dangles on b), so
// kAuto would route to the Prp 7.9 flow algorithm; here we pin each side
// explicitly (RequestOptions::method — the same instance routed to
// algorithms of different complexity) and compare the polynomial flow
// answer against the exponential exact solver on the same DbHandle.

#include <iostream>

#include "engine/db_registry.h"
#include "engine/engine.h"
#include "engine/request.h"
#include "graphdb/generators.h"
#include "graphdb/graph_db.h"
#include "lang/language.h"
#include "resilience/resilience.h"
#include "util/rng.h"

using namespace rpqres;

int main() {
  Language policy = Language::MustFromRegexString("abc|be");

  Rng rng(7);
  GraphDb graph = DanglingPairsDb(&rng, /*num_nodes=*/14, /*base_facts=*/22,
                                  /*base_labels=*/{'a', 'b', 'c'}, /*x=*/'b',
                                  /*y=*/'e', /*pair_count=*/6);
  std::cout << "Knowledge graph: " << graph.num_nodes() << " entities, "
            << graph.num_facts() << " claims\n";
  std::cout << "Policy: no walk may match " << policy.description()
            << "\n\n";

  DbRegistry registry;
  DbHandle db = registry.Register(std::move(graph), "knowledge-graph");
  ResilienceEngine engine;

  ResilienceResponse flow = engine.Evaluate(
      {.regex = "abc|be", .db = db,
       .options = {.method = ResilienceMethod::kOneDanglingFlow}});
  ResilienceResponse exact = engine.Evaluate(
      {.regex = "abc|be", .db = db,
       .options = {.method = ResilienceMethod::kExact}});
  if (!flow.status.ok() || !exact.status.ok()) {
    std::cerr << "error: "
              << (flow.status.ok() ? exact.status : flow.status) << "\n";
    return 1;
  }
  std::cout << "Prp 7.9 flow algorithm: retract " << flow.result.value
            << " claims (" << flow.result.algorithm << ")\n";
  for (FactId f : flow.result.contingency) {
    const Fact& fact = db.db().fact(f);
    std::cout << "  retract " << db.db().node_name(fact.source) << " -"
              << fact.label << "-> " << db.db().node_name(fact.target)
              << "\n";
  }
  std::cout << "Exact solver agrees? "
            << (exact.result.value == flow.result.value ? "yes" : "NO (bug!)")
            << " (" << exact.result.value << ", "
            << exact.result.search_nodes << " search nodes)\n";
  Status check = VerifyResilienceResult(policy, db.db(), Semantics::kSet,
                                        flow.result);
  std::cout << "Witness verification: " << check.ToString() << "\n";
  return exact.result.value == flow.result.value && check.ok() ? 0 : 1;
}
