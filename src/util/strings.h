// rpqres — util/strings: small string helpers shared across modules.

#ifndef RPQRES_UTIL_STRINGS_H_
#define RPQRES_UTIL_STRINGS_H_

#include <string>
#include <vector>

namespace rpqres {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` on the single character `sep`; keeps empty pieces.
std::vector<std::string> Split(const std::string& s, char sep);

/// True iff `infix` occurs contiguously inside `word`.
bool ContainsInfix(const std::string& word, const std::string& infix);

/// True iff `infix` occurs inside `word` as a *strict* infix, i.e. the
/// occurrence does not cover all of `word` (Section 2 of the paper).
bool ContainsStrictInfix(const std::string& word, const std::string& infix);

/// Reverses a word (the mirror operation of Prp 6.3).
std::string Mirror(const std::string& word);

/// Renders a word for display: "ε" for the empty word, the word otherwise.
std::string DisplayWord(const std::string& word);

}  // namespace rpqres

#endif  // RPQRES_UTIL_STRINGS_H_
