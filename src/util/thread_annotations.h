#ifndef RPQRES_UTIL_THREAD_ANNOTATIONS_H_
#define RPQRES_UTIL_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis attribute macros.
//
// These expand to the clang `capability` attribute family when compiling
// with a clang that supports them (every clang since 3.5), and to nothing
// otherwise — GCC builds see plain C++ and stay warning-free. The repo's
// lint CI job compiles all of src/ with
//   -Wthread-safety -Werror=thread-safety
// so a guarded member touched outside its mutex, or a `*Locked()` helper
// called without the lock, is a build break, not a code-review hope.
//
// Conventions used throughout the tree:
//   * lock-guarded members:            T member_ RPQRES_GUARDED_BY(mu_);
//   * pointee guarded, pointer stable: T* p_ RPQRES_PT_GUARDED_BY(mu_);
//   * private helpers named *Locked(): RPQRES_REQUIRES(mu_)
//   * public entry points that lock:   RPQRES_EXCLUDES(mu_) (optional but
//     catches self-deadlock at call sites the analysis can see)
//   * documented lock order:           RPQRES_ACQUIRED_BEFORE/_AFTER
//
// The analysis only understands annotated lock types, so the tree locks
// through rpqres::Mutex / rpqres::MutexLock (util/sync.h), never raw
// std::mutex / std::lock_guard.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RPQRES_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RPQRES_THREAD_ANNOTATION
#define RPQRES_THREAD_ANNOTATION(x)  // no-op on GCC and old clang
#endif

// -- Type annotations --------------------------------------------------------

// Marks a class as a lockable capability ("mutex", "shared_mutex", ...).
#define RPQRES_CAPABILITY(x) RPQRES_THREAD_ANNOTATION(capability(x))

// Marks an RAII class whose construction acquires and destruction releases.
#define RPQRES_SCOPED_CAPABILITY RPQRES_THREAD_ANNOTATION(scoped_lockable)

// -- Member annotations ------------------------------------------------------

// Member may only be read/written while `x` is held.
#define RPQRES_GUARDED_BY(x) RPQRES_THREAD_ANNOTATION(guarded_by(x))

// Pointer member itself is stable; the pointee may only be dereferenced
// while `x` is held.
#define RPQRES_PT_GUARDED_BY(x) RPQRES_THREAD_ANNOTATION(pt_guarded_by(x))

// Documented (and, under -Wthread-safety-beta, enforced) lock ordering.
#define RPQRES_ACQUIRED_BEFORE(...) \
  RPQRES_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define RPQRES_ACQUIRED_AFTER(...) \
  RPQRES_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// -- Function annotations ----------------------------------------------------

// Caller must hold the capability (exclusively / shared) on entry; the
// function does not change the lock state.
#define RPQRES_REQUIRES(...) \
  RPQRES_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RPQRES_REQUIRES_SHARED(...) \
  RPQRES_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function acquires the capability and holds it on return.
#define RPQRES_ACQUIRE(...) \
  RPQRES_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RPQRES_ACQUIRE_SHARED(...) \
  RPQRES_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

// Function releases the capability held on entry.
#define RPQRES_RELEASE(...) \
  RPQRES_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RPQRES_RELEASE_SHARED(...) \
  RPQRES_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RPQRES_RELEASE_GENERIC(...) \
  RPQRES_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

// Function acquires the capability iff it returns `b`.
#define RPQRES_TRY_ACQUIRE(b, ...) \
  RPQRES_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))
#define RPQRES_TRY_ACQUIRE_SHARED(b, ...) \
  RPQRES_THREAD_ANNOTATION(try_acquire_shared_capability(b, __VA_ARGS__))

// Caller must NOT hold the capability (self-deadlock guard).
#define RPQRES_EXCLUDES(...) \
  RPQRES_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Dynamic assertion that the capability is held (no static proof needed).
#define RPQRES_ASSERT_CAPABILITY(x) \
  RPQRES_THREAD_ANNOTATION(assert_capability(x))

// Function returns a reference to the capability guarding its result.
#define RPQRES_RETURN_CAPABILITY(x) RPQRES_THREAD_ANNOTATION(lock_returned(x))

// Opt a function out of the analysis entirely. Every use in this tree
// MUST carry an inline justification comment on the preceding line;
// scripts/check_invariants.py counts and enforces this.
#define RPQRES_NO_THREAD_SAFETY_ANALYSIS \
  RPQRES_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // RPQRES_UTIL_THREAD_ANNOTATIONS_H_
