// rpqres — util/thread_pool: a small fixed-size worker pool.
//
// Built for the engine's batch API: many independent (query, database)
// resilience instances dispatched across a handful of threads. Tasks are
// plain std::function<void()>; result hand-off is the caller's business
// (the engine writes into pre-sized slots, so no futures are needed).
// Exceptions must not escape tasks — library code reports errors through
// Status, never throws across boundaries (see util/status.h).

#ifndef RPQRES_UTIL_THREAD_POOL_H_
#define RPQRES_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace rpqres {

/// A fixed pool of worker threads consuming a FIFO task queue.
///
/// Thread-safe: Submit/ParallelFor/Wait may be called from any thread
/// (including from inside a task, except Wait/ParallelFor which would
/// deadlock there). The destructor drains the queue, then joins.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (unbounded queue).
  void Submit(std::function<void()> task) RPQRES_EXCLUDES(mu_);

  /// Blocks until every task submitted so far has finished.
  void Wait() RPQRES_EXCLUDES(mu_);

  /// Runs fn(0) ... fn(n - 1) across the pool and blocks until all are
  /// done. Indices are handed out dynamically, so uneven per-index costs
  /// balance. Waits only for its own indices (unlike Wait), so concurrent
  /// ParallelFor calls don't block on each other's work. With
  /// num_threads() == 1 this degenerates to a serial loop on the single
  /// worker — results must therefore never depend on execution order.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Default worker count: hardware concurrency clamped to [1, 8] — the
  /// engine's instances are memory-bound flow solves, more threads than
  /// cores just thrash.
  static int DefaultNumThreads();

 private:
  void WorkerLoop() RPQRES_EXCLUDES(mu_);

  Mutex mu_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ RPQRES_GUARDED_BY(mu_);
  // Queued + currently executing tasks.
  int64_t in_flight_ RPQRES_GUARDED_BY(mu_) = 0;
  bool shutting_down_ RPQRES_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // set in ctor, joined in dtor
};

}  // namespace rpqres

#endif  // RPQRES_UTIL_THREAD_POOL_H_
