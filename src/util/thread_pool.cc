#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace rpqres {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  // Dynamic index hand-out: one shared counter, one task per worker.
  // Completion is tracked per call (not via the pool-global counter), so
  // concurrent ParallelFor calls don't block on each other's work.
  struct CallState {
    std::atomic<int64_t> next{0};
    Mutex mu;
    CondVar done;
    int64_t remaining RPQRES_GUARDED_BY(mu) = 0;  // indices not yet completed
  };
  auto state = std::make_shared<CallState>();
  {
    MutexLock lock(state->mu);
    state->remaining = n;
  }
  int tasks = static_cast<int>(
      std::min<int64_t>(n, static_cast<int64_t>(num_threads())));
  for (int t = 0; t < tasks; ++t) {
    Submit([state, n, &fn] {
      int64_t completed = 0;
      for (int64_t i = state->next.fetch_add(1); i < n;
           i = state->next.fetch_add(1)) {
        fn(i);
        ++completed;
      }
      MutexLock lock(state->mu);
      state->remaining -= completed;
      if (state->remaining == 0) state->done.NotifyAll();
    });
  }
  MutexLock lock(state->mu);
  while (state->remaining != 0) state->done.Wait(state->mu);
}

int ThreadPool::DefaultNumThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 8u));
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(mu_);
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace rpqres
