#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace rpqres {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(num_threads, 1);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  // Dynamic index hand-out: one shared counter, one task per worker.
  // Completion is tracked per call (not via the pool-global counter), so
  // concurrent ParallelFor calls don't block on each other's work.
  struct CallState {
    std::atomic<int64_t> next{0};
    std::mutex mu;
    std::condition_variable done;
    int64_t remaining = 0;  // indices not yet completed; guarded by mu
  };
  auto state = std::make_shared<CallState>();
  state->remaining = n;
  int tasks = static_cast<int>(
      std::min<int64_t>(n, static_cast<int64_t>(num_threads())));
  for (int t = 0; t < tasks; ++t) {
    Submit([state, n, &fn] {
      int64_t completed = 0;
      for (int64_t i = state->next.fetch_add(1); i < n;
           i = state->next.fetch_add(1)) {
        fn(i);
        ++completed;
      }
      std::lock_guard<std::mutex> lock(state->mu);
      state->remaining -= completed;
      if (state->remaining == 0) state->done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&state] { return state->remaining == 0; });
}

int ThreadPool::DefaultNumThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hw, 1u, 8u));
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace rpqres
