// rpqres — util/rng: deterministic pseudo-random generator for tests,
// generators, and benchmarks. SplitMix64-based; identical sequences across
// platforms for a given seed (unlike std::mt19937 + distributions, whose
// distribution output is implementation-defined).

#ifndef RPQRES_UTIL_RNG_H_
#define RPQRES_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace rpqres {

/// Deterministic 64-bit PRNG (SplitMix64).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBelow(uint64_t bound) {
    RPQRES_DCHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    RPQRES_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with probability numer/denom.
  bool NextChance(uint64_t numer, uint64_t denom) {
    RPQRES_DCHECK(denom > 0);
    return NextBelow(denom) < numer;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t state_;
};

}  // namespace rpqres

#endif  // RPQRES_UTIL_RNG_H_
