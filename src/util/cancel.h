// rpqres — util/cancel: cooperative cancellation with wall-clock deadlines.
//
// A CancelToken is shared between a request submitter and the worker
// executing it: the submitter flips the flag (RequestCancel) or the token
// carries a deadline, and long-running solver loops poll ShouldStop() at
// natural checkpoints (the exact branch & bound polls next to its
// node-budget check). Tokens can chain to a parent so a per-request
// deadline composes with a caller-held cancellation handle without
// merging state.
//
// Polling is cheap — an atomic load, plus one steady_clock read when a
// deadline is set — but not free; callers amortize it (e.g. every 256
// search nodes).

#ifndef RPQRES_UTIL_CANCEL_H_
#define RPQRES_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <optional>

#include "util/status.h"

namespace rpqres {

/// Cooperative stop signal: an explicit cancel flag, an optional
/// wall-clock deadline, and an optional parent token checked recursively.
/// Thread-safe; non-copyable (share via pointer / shared_ptr).
class CancelToken {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// A token that never stops on its own (only via RequestCancel).
  CancelToken() = default;
  /// A token that stops once `deadline` passes; `parent` (borrowed, may
  /// be nullptr) is consulted too, so request-level deadlines compose
  /// with caller-held tokens.
  explicit CancelToken(TimePoint deadline,
                       const CancelToken* parent = nullptr)
      : deadline_(deadline), parent_(parent) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Signals cancellation; every subsequent ShouldStop() returns true.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancelled, past the deadline, or the parent says stop.
  /// Lock-free: relaxed atomic load plus immutable fields — no capability
  /// to annotate, safe to poll from any thread.
  [[nodiscard]] bool ShouldStop() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (deadline_ && std::chrono::steady_clock::now() >= *deadline_) {
      return true;
    }
    return parent_ != nullptr && parent_->ShouldStop();
  }

  /// OK while running; Cancelled after RequestCancel; DeadlineExceeded
  /// once the deadline passed (explicit cancellation wins when both).
  [[nodiscard]] Status ToStatus() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("request cancelled");
    }
    if (deadline_ && std::chrono::steady_clock::now() >= *deadline_) {
      return Status::DeadlineExceeded("request deadline exceeded");
    }
    if (parent_ != nullptr) return parent_->ToStatus();
    return Status::OK();
  }

  bool has_deadline() const { return deadline_.has_value(); }

 private:
  std::atomic<bool> cancelled_{false};
  std::optional<TimePoint> deadline_;
  const CancelToken* parent_ = nullptr;
};

}  // namespace rpqres

#endif  // RPQRES_UTIL_CANCEL_H_
