// rpqres — util/status: Status and Result<T> error handling.
//
// Public library entry points that can fail return Status (or Result<T>),
// RocksDB/Arrow style; exceptions are never thrown across library
// boundaries. Internal invariants use the RPQRES_CHECK macros instead.

#ifndef RPQRES_UTIL_STATUS_H_
#define RPQRES_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

namespace rpqres {

/// Error category attached to a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
  kAborted,
  kResourceExhausted,
  kDataLoss,
  kUnavailable,
};

/// Returns a human-readable name for a StatusCode ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: either OK or an error code + message.
///
/// Class-level [[nodiscard]]: ignoring a returned Status silently drops an
/// error — PR-9's durability contract ("never acked-but-not-durable") is
/// only as strong as the call sites that check. Intentional best-effort
/// discards must be explicit: `(void)DoThing();` with a comment saying
/// why dropping the error is sound.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result aborts with a diagnostic (programming error).
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      std::cerr << "Result constructed from OK status without a value\n";
      std::abort();
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    EnsureOk();
    return *value_;
  }
  T& ValueOrDie() & {
    EnsureOk();
    return *value_;
  }
  T&& ValueOrDie() && {
    EnsureOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void EnsureOk() const {
    if (!ok()) {
      std::cerr << "Accessed value of errored Result: " << status_.ToString()
                << "\n";
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagates an error Status from a sub-call.
#define RPQRES_RETURN_IF_ERROR(expr)                   \
  do {                                                 \
    ::rpqres::Status _rpqres_status = (expr);          \
    if (!_rpqres_status.ok()) return _rpqres_status;   \
  } while (false)

#define RPQRES_CONCAT_IMPL_(x, y) x##y
#define RPQRES_CONCAT_(x, y) RPQRES_CONCAT_IMPL_(x, y)

/// Evaluates a Result-returning expression; on success binds the value to
/// `lhs`, on failure returns the error from the enclosing function.
#define RPQRES_ASSIGN_OR_RETURN(lhs, expr)                          \
  RPQRES_ASSIGN_OR_RETURN_IMPL_(                                    \
      RPQRES_CONCAT_(_rpqres_result_, __LINE__), lhs, expr)

#define RPQRES_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).ValueOrDie()

}  // namespace rpqres

#endif  // RPQRES_UTIL_STATUS_H_
