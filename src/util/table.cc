#include "util/table.h"

#include <algorithm>
#include <sstream>

namespace rpqres {
namespace {

// Display width of a UTF-8 string, counting multi-byte sequences as one
// column (good enough for the Greek letters and arrows used in output).
size_t DisplayWidth(const std::string& s) {
  size_t width = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++width;  // count non-continuation bytes
  }
  return width;
}

void PrintPadded(std::ostream& os, const std::string& s, size_t width) {
  os << s;
  size_t w = DisplayWidth(s);
  for (size_t i = w; i < width; ++i) os << ' ';
}

}  // namespace

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(Row{false, std::move(row)});
}

void TextTable::AddSeparator() { rows_.push_back(Row{true, {}}); }

void TextTable::Print(std::ostream& os) const {
  size_t columns = header_.size();
  for (const Row& row : rows_) columns = std::max(columns, row.cells.size());
  std::vector<size_t> widths(columns, 0);
  auto account = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], DisplayWidth(cells[i]));
    }
  };
  account(header_);
  for (const Row& row : rows_) {
    if (!row.separator) account(row.cells);
  }

  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < columns; ++i) {
      if (i > 0) os << "  ";
      PrintPadded(os, i < cells.size() ? cells[i] : "", widths[i]);
    }
    os << "\n";
  };
  size_t total = 0;
  for (size_t i = 0; i < columns; ++i) total += widths[i] + (i > 0 ? 2 : 0);

  if (!header_.empty()) {
    print_cells(header_);
    os << std::string(total, '-') << "\n";
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      os << std::string(total, '-') << "\n";
    } else {
      print_cells(row.cells);
    }
  }
}

std::string TextTable::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace rpqres
