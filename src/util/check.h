// rpqres — util/check: internal invariant checking macros.
//
// RPQRES_CHECK fires in all build types and is reserved for invariants whose
// violation indicates a bug inside the library (never for user input, which
// is reported through Status).

#ifndef RPQRES_UTIL_CHECK_H_
#define RPQRES_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>

#define RPQRES_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::cerr << "RPQRES_CHECK failed at " << __FILE__ << ":"         \
                << __LINE__ << ": " #cond << std::endl;                 \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

#define RPQRES_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::cerr << "RPQRES_CHECK failed at " << __FILE__ << ":"         \
                << __LINE__ << ": " #cond << " — " << (msg)             \
                << std::endl;                                           \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

#ifdef NDEBUG
#define RPQRES_DCHECK(cond) \
  do {                      \
  } while (false)
#else
#define RPQRES_DCHECK(cond) RPQRES_CHECK(cond)
#endif

#endif  // RPQRES_UTIL_CHECK_H_
