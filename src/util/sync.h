#ifndef RPQRES_UTIL_SYNC_H_
#define RPQRES_UTIL_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

// Annotated synchronization primitives.
//
// Clang Thread Safety Analysis only tracks lock types that carry the
// `capability` attribute; libstdc++'s std::mutex / std::lock_guard are
// invisible to it. These thin wrappers (same layout, fully inline, zero
// overhead) give every lock in the tree a name the analysis understands.
// All concurrent classes in src/ hold an rpqres::Mutex or
// rpqres::SharedMutex and lock it through MutexLock / SharedMutexLock /
// SharedReaderLock — never a bare std::mutex.

namespace rpqres {

class CondVar;

// Exclusive mutex. Wraps std::mutex; adds the capability annotation.
class RPQRES_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RPQRES_ACQUIRE() { mu_.lock(); }
  void Unlock() RPQRES_RELEASE() { mu_.unlock(); }
  bool TryLock() RPQRES_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Escape hatch for interop (e.g. std::unique_lock inside CondVar).
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

// Reader/writer mutex. Wraps std::shared_mutex.
class RPQRES_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() RPQRES_ACQUIRE() { mu_.lock(); }
  void Unlock() RPQRES_RELEASE() { mu_.unlock(); }
  void LockShared() RPQRES_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RPQRES_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// RAII exclusive lock (std::lock_guard equivalent).
class RPQRES_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RPQRES_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RPQRES_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// RAII exclusive lock over a SharedMutex (writer lock).
class RPQRES_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) RPQRES_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~SharedMutexLock() RPQRES_RELEASE() { mu_.Unlock(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared lock over a SharedMutex (reader lock).
class RPQRES_SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex& mu) RPQRES_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~SharedReaderLock() RPQRES_RELEASE() { mu_.UnlockShared(); }

  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to rpqres::Mutex. Waits are written as explicit
//   while (!condition) cv.Wait(mu);
// loops so the analysis sees every guarded read inside the locked region
// (predicate lambdas are analyzed as separate, lock-free functions and
// would be flagged).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, sleeps, and re-acquires `mu` before
  // returning. The lock is held across the call from the analysis's point
  // of view, matching the caller's locked scope.
  void Wait(Mutex& mu) RPQRES_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native_handle(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rpqres

#endif  // RPQRES_UTIL_SYNC_H_
