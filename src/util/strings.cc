#include "util/strings.h"

namespace rpqres {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

bool ContainsInfix(const std::string& word, const std::string& infix) {
  return word.find(infix) != std::string::npos;
}

bool ContainsStrictInfix(const std::string& word, const std::string& infix) {
  if (infix.size() >= word.size()) return false;
  return ContainsInfix(word, infix);
}

std::string Mirror(const std::string& word) {
  return std::string(word.rbegin(), word.rend());
}

std::string DisplayWord(const std::string& word) {
  if (word.empty()) return "ε";
  return word;
}

}  // namespace rpqres
