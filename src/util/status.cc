#include "util/status.h"

namespace rpqres {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace rpqres
