// rpqres — util/table: fixed-width ASCII table printer used by the
// benchmark harness and examples to regenerate the paper's figures as text.

#ifndef RPQRES_UTIL_TABLE_H_
#define RPQRES_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace rpqres {

/// Accumulates rows of strings and prints them with aligned columns.
class TextTable {
 public:
  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);
  /// Appends a data row; rows may have fewer cells than the header.
  void AddRow(std::vector<std::string> row);
  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the table to `os`.
  void Print(std::ostream& os) const;
  /// Renders the table to a string.
  std::string ToString() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace rpqres

#endif  // RPQRES_UTIL_TABLE_H_
