#include "fault/failpoints.h"

#include <errno.h>
#include <unistd.h>

#include <algorithm>

namespace rpqres::fault {

namespace {

// SplitMix64 step — same generator as util/rng.h, duplicated here so the
// fault layer has no dependency on the rest of the library.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double ToUnitDouble(uint64_t r) {
  return static_cast<double>(r >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kEIO:
      return "eio";
    case FaultKind::kENOSPC:
      return "enospc";
    case FaultKind::kShortWrite:
      return "short_write";
    case FaultKind::kTornWrite:
      return "torn_write";
    case FaultKind::kCrash:
      return "crash";
  }
  return "unknown";
}

const std::vector<std::string_view>& KnownSites() {
  static const std::vector<std::string_view> kAll = {
      sites::kSegmentOpen,   sites::kSegmentWrite,  sites::kSegmentFsync,
      sites::kSegmentClose,  sites::kSegmentRename, sites::kSegmentDirFsync,
      sites::kSegmentMmap,   sites::kJournalOpen,   sites::kJournalWrite,
      sites::kJournalFsync,  sites::kJournalTruncate, sites::kJournalClose,
  };
  return kAll;
}

FailpointRegistry& FailpointRegistry::Instance() {
  // Heap-allocated and never freed: the registry must outlive every
  // static-destruction-ordered caller (see the note in the header).
  static FailpointRegistry* kInstance = new FailpointRegistry();
  return *kInstance;
}

void FailpointRegistry::Arm(std::string_view site, const FaultSpec& spec) {
  MutexLock lock(mu_);
  SiteState& state = sites_[std::string(site)];
  if (!state.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  state.spec = spec;
  state.armed = true;
  state.rng_state = spec.seed;
  state.evaluations = 0;
  state.fires = 0;
}

void FailpointRegistry::Disarm(std::string_view site) {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FailpointRegistry::ResetAll() {
  MutexLock lock(mu_);
  int armed = 0;
  for (const auto& [name, state] : sites_) {
    if (state.armed) ++armed;
  }
  sites_.clear();
  armed_count_.fetch_sub(armed, std::memory_order_relaxed);
}

FaultVerdict FailpointRegistry::Evaluate(std::string_view site) {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return FaultVerdict{};
  SiteState& state = it->second;
  ++state.evaluations;
  if (!state.armed) return FaultVerdict{};

  bool fire = false;
  bool disarm_after = false;
  switch (state.spec.trigger) {
    case Trigger::kAlways:
      fire = true;
      break;
    case Trigger::kOnNth:
      fire = state.evaluations == static_cast<int64_t>(state.spec.nth);
      disarm_after = fire;
      break;
    case Trigger::kOnce:
      fire = true;
      disarm_after = true;
      break;
    case Trigger::kWithProbability:
      fire = ToUnitDouble(SplitMix64(state.rng_state)) < state.spec.probability;
      break;
  }
  if (!fire) return FaultVerdict{};

  ++state.fires;
  if (disarm_after) {
    state.armed = false;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }

  FaultVerdict verdict;
  verdict.kind = state.spec.kind;
  verdict.fraction = state.spec.fraction;
  verdict.err = state.spec.kind == FaultKind::kENOSPC ? ENOSPC : EIO;
  return verdict;
}

std::vector<SiteStats> FailpointRegistry::Stats() const {
  MutexLock lock(mu_);
  std::vector<SiteStats> out;
  out.reserve(sites_.size());
  for (const auto& [name, state] : sites_) {
    SiteStats s;
    s.site = name;
    s.evaluations = state.evaluations;
    s.fires = state.fires;
    out.push_back(std::move(s));
  }
  return out;
}

int64_t FailpointRegistry::TotalFires() const {
  MutexLock lock(mu_);
  int64_t total = 0;
  for (const auto& [name, state] : sites_) total += state.fires;
  return total;
}

namespace {

// Writes as much of the buffer as the verdict allows. Returns the byte
// count actually handed to ::write (clamped to [0, count]).
size_t WriteFraction(int fd, const void* buf, size_t count, double fraction) {
  size_t partial = static_cast<size_t>(static_cast<double>(count) * fraction);
  partial = std::min(partial, count);
  size_t done = 0;
  const char* p = static_cast<const char*>(buf);
  while (done < partial) {
    ssize_t n = ::write(fd, p + done, partial - done);
    if (n <= 0) break;  // best effort: the injected error wins anyway
    done += static_cast<size_t>(n);
  }
  return done;
}

[[noreturn]] void CrashHere() { ::_exit(kCrashExitStatus); }

}  // namespace

ssize_t Write(const char* site, int fd, const void* buf, size_t count) {
  FaultVerdict v = Check(site);
  switch (v.kind) {
    case FaultKind::kNone:
      return ::write(fd, buf, count);
    case FaultKind::kEIO:
    case FaultKind::kENOSPC:
      errno = v.err;
      return -1;
    case FaultKind::kShortWrite: {
      size_t done = WriteFraction(fd, buf, count, v.fraction);
      if (done == 0 && count > 0) {
        // A zero-byte "short write" would spin callers' loops; degrade to
        // a one-byte write so progress stays visible.
        done = WriteFraction(fd, buf, 1, 1.0);
      }
      return static_cast<ssize_t>(done);
    }
    case FaultKind::kTornWrite:
      WriteFraction(fd, buf, count, v.fraction);
      errno = v.err;
      return -1;
    case FaultKind::kCrash:
      WriteFraction(fd, buf, count, v.fraction);
      CrashHere();
  }
  errno = EIO;
  return -1;
}

int Fsync(const char* site, int fd) {
  FaultVerdict v = Check(site);
  switch (v.kind) {
    case FaultKind::kNone:
      return ::fsync(fd);
    case FaultKind::kCrash:
      CrashHere();
    default:
      errno = v.err;
      return -1;
  }
}

int Rename(const char* site, const char* from, const char* to) {
  FaultVerdict v = Check(site);
  switch (v.kind) {
    case FaultKind::kNone:
      return ::rename(from, to);
    case FaultKind::kCrash:
      CrashHere();
    default:
      errno = v.err;
      return -1;
  }
}

int Open(const char* site, const char* path, int flags, mode_t mode) {
  FaultVerdict v = Check(site);
  switch (v.kind) {
    case FaultKind::kNone:
      return ::open(path, flags, mode);
    case FaultKind::kCrash:
      CrashHere();
    default:
      errno = v.err;
      return -1;
  }
}

int Close(const char* site, int fd) {
  FaultVerdict v = Check(site);
  switch (v.kind) {
    case FaultKind::kNone:
      return ::close(fd);
    case FaultKind::kCrash:
      CrashHere();
    default:
      // The descriptor is still closed for real — an injected close error
      // models the kernel reporting a deferred write-back failure, not a
      // leaked fd.
      ::close(fd);
      errno = v.err;
      return -1;
  }
}

int Ftruncate(const char* site, int fd, off_t length) {
  FaultVerdict v = Check(site);
  switch (v.kind) {
    case FaultKind::kNone:
      return ::ftruncate(fd, length);
    case FaultKind::kCrash:
      CrashHere();
    default:
      errno = v.err;
      return -1;
  }
}

void* Mmap(const char* site, void* addr, size_t length, int prot, int flags,
           int fd, off_t offset) {
  FaultVerdict v = Check(site);
  switch (v.kind) {
    case FaultKind::kNone:
      return ::mmap(addr, length, prot, flags, fd, offset);
    case FaultKind::kCrash:
      CrashHere();
    default:
      errno = v.err;
      return MAP_FAILED;
  }
}

}  // namespace rpqres::fault
