// rpqres — fault/failpoints: deterministic failpoint registry for the
// storage stack.
//
// Every storage syscall in segment.cc / journal.cc goes through a named
// failpoint *site* (fault::Write, fault::Fsync, ...). When no site is armed
// the wrappers cost one relaxed atomic load before the real syscall —
// failpoints stay compiled into production builds (the `bench_engine
// --faults` gate pins the disabled overhead at <= 1%).
//
// A site is armed with a FaultSpec: a *kind* (what goes wrong) plus a
// *trigger* (when it goes wrong). Triggers are fully deterministic: a seeded
// SplitMix64 stream drives fire-with-probability, and fire-on-Nth counts
// evaluations at the site. The same (site, spec) always fires at the same
// evaluation indices, which is what makes the crash-chaos sweep replayable
// from a single uint64 seed.
//
// Verdict semantics at a site:
//   kEIO / kENOSPC  the wrapped syscall is NOT performed; the wrapper
//                   returns -1 (MAP_FAILED for mmap) with errno set.
//   kShortWrite     (write sites) only `fraction` of the buffer is written
//                   and the short count is returned — exercises callers'
//                   write loops. Non-write sites treat it as kEIO.
//   kTornWrite      (write sites) `fraction` of the buffer is written, then
//                   the call fails with errno — a torn write: bytes hit the
//                   file but the caller sees an error. Non-write sites
//                   treat it as kEIO.
//   kCrash          the process _exit()s with kCrashExitStatus before the
//                   syscall (write sites first write `fraction` of the
//                   buffer, so a crash can also tear). Only meaningful
//                   under fork(), which is how the chaos harness uses it.

#ifndef RPQRES_FAULT_FAILPOINTS_H_
#define RPQRES_FAULT_FAILPOINTS_H_

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"
#include "util/thread_annotations.h"

namespace rpqres::fault {

/// Exit status used by kCrash verdicts. The chaos harness forks a child,
/// lets it crash at an armed site, and treats this status as "crashed as
/// injected" (any other non-zero status is a real failure).
inline constexpr int kCrashExitStatus = 42;

/// What goes wrong when a failpoint fires.
enum class FaultKind : uint8_t {
  kNone = 0,
  kEIO,         // syscall fails, errno = EIO
  kENOSPC,      // syscall fails, errno = ENOSPC
  kShortWrite,  // write sites: partial write, short count returned
  kTornWrite,   // write sites: partial write, then the call errors
  kCrash,       // _exit(kCrashExitStatus) at the site
};

const char* FaultKindName(FaultKind kind);

/// When a failpoint fires. All triggers are evaluated deterministically.
enum class Trigger : uint8_t {
  kAlways,           // every evaluation
  kOnNth,            // exactly the nth evaluation (1-based), once
  kOnce,             // the first evaluation, once (== kOnNth with n = 1)
  kWithProbability,  // each evaluation, with probability p (seeded stream)
};

/// A fully-specified armed fault: kind + trigger + knobs.
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  Trigger trigger = Trigger::kAlways;
  uint64_t nth = 1;          // kOnNth: which evaluation fires (1-based)
  double probability = 0.0;  // kWithProbability: chance per evaluation
  uint64_t seed = 0;         // kWithProbability: SplitMix64 stream seed
  double fraction = 0.5;     // short/torn/crash writes: bytes written share

  static FaultSpec Always(FaultKind kind) {
    FaultSpec s;
    s.kind = kind;
    s.trigger = Trigger::kAlways;
    return s;
  }
  static FaultSpec OnNth(FaultKind kind, uint64_t nth) {
    FaultSpec s;
    s.kind = kind;
    s.trigger = Trigger::kOnNth;
    s.nth = nth;
    return s;
  }
  static FaultSpec Once(FaultKind kind) {
    FaultSpec s;
    s.kind = kind;
    s.trigger = Trigger::kOnce;
    return s;
  }
  static FaultSpec WithProbability(FaultKind kind, double p, uint64_t seed) {
    FaultSpec s;
    s.kind = kind;
    s.trigger = Trigger::kWithProbability;
    s.probability = p;
    s.seed = seed;
    return s;
  }
};

/// Outcome of evaluating a site: either nothing (kind == kNone) or the
/// armed fault, resolved for this evaluation.
struct FaultVerdict {
  FaultKind kind = FaultKind::kNone;
  int err = 0;            // errno to inject (EIO / ENOSPC)
  double fraction = 0.5;  // write sites: share of the buffer to write

  bool fired() const { return kind != FaultKind::kNone; }
};

/// Per-site evaluation/fire counters, for tests and the chaos report.
struct SiteStats {
  std::string site;
  int64_t evaluations = 0;
  int64_t fires = 0;
};

/// Names of every failpoint site compiled into the storage stack. The
/// chaos sweep iterates this list so a newly added site is crash-tested
/// without further registration.
namespace sites {
inline constexpr const char* kSegmentOpen = "storage/segment.open";
inline constexpr const char* kSegmentWrite = "storage/segment.write";
inline constexpr const char* kSegmentFsync = "storage/segment.fsync";
inline constexpr const char* kSegmentClose = "storage/segment.close";
inline constexpr const char* kSegmentRename = "storage/segment.rename";
inline constexpr const char* kSegmentDirFsync = "storage/segment.dir_fsync";
inline constexpr const char* kSegmentMmap = "storage/segment.mmap";
inline constexpr const char* kJournalOpen = "storage/journal.open";
inline constexpr const char* kJournalWrite = "storage/journal.write";
inline constexpr const char* kJournalFsync = "storage/journal.fsync";
inline constexpr const char* kJournalTruncate = "storage/journal.truncate";
inline constexpr const char* kJournalClose = "storage/journal.close";
}  // namespace sites

/// All known site names, in a stable order.
const std::vector<std::string_view>& KnownSites();

/// Process-global registry of armed failpoints. Arm/disarm are test-only
/// operations guarded by a mutex; the hot path (Enabled()) is a single
/// relaxed atomic load.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  /// Arms `site` with `spec`, replacing any previous arming (counters for
  /// the site reset).
  void Arm(std::string_view site, const FaultSpec& spec) RPQRES_EXCLUDES(mu_);
  /// Disarms `site`; evaluation counters for it are kept until ResetAll.
  void Disarm(std::string_view site) RPQRES_EXCLUDES(mu_);
  /// Disarms every site and clears all counters.
  void ResetAll() RPQRES_EXCLUDES(mu_);

  /// True iff at least one site is armed (relaxed load, hot path).
  bool Enabled() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Slow path: resolves the verdict for one evaluation of `site`.
  FaultVerdict Evaluate(std::string_view site) RPQRES_EXCLUDES(mu_);

  /// Counters for every site that has been armed or evaluated.
  std::vector<SiteStats> Stats() const RPQRES_EXCLUDES(mu_);
  /// Total fires across all sites since the last ResetAll.
  int64_t TotalFires() const RPQRES_EXCLUDES(mu_);

  /// The registry's internal mutex, exposed ONLY as a name for lock-order
  /// annotations (DbRegistry::mu_ is RPQRES_ACQUIRED_BEFORE this one:
  /// commits hold the registry mutex across storage syscalls, whose
  /// failpoint checks take this mutex). Never lock it directly.
  Mutex& AnnotationMu() RPQRES_RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  /// One site's armed spec + deterministic trigger state + counters.
  struct SiteState {
    FaultSpec spec;
    bool armed = false;
    uint64_t rng_state = 0;  // kWithProbability stream
    int64_t evaluations = 0;
    int64_t fires = 0;
  };

  FailpointRegistry() = default;

  /// Hot-path gate, updated under mu_ but read with a relaxed load.
  std::atomic<int> armed_count_{0};
  mutable Mutex mu_;
  std::map<std::string, SiteState, std::less<>> sites_ RPQRES_GUARDED_BY(mu_);
  // The Instance() singleton is heap-allocated and never freed, so this
  // state has process lifetime — a crash-handler or atexit-ordered reader
  // can still evaluate sites.
};

/// Evaluates `site` against the global registry. Returns a non-fired
/// verdict in one relaxed atomic load when nothing is armed.
inline FaultVerdict Check(std::string_view site) {
  FailpointRegistry& reg = FailpointRegistry::Instance();
  if (!reg.Enabled()) return FaultVerdict{};
  return reg.Evaluate(site);
}

// ---------------------------------------------------------------------------
// Syscall wrappers. Each consults its site, then performs (or sabotages)
// the real syscall. Signatures mirror the wrapped call.

ssize_t Write(const char* site, int fd, const void* buf, size_t count);
int Fsync(const char* site, int fd);
int Rename(const char* site, const char* from, const char* to);
int Open(const char* site, const char* path, int flags, mode_t mode = 0);
int Close(const char* site, int fd);
int Ftruncate(const char* site, int fd, off_t length);
void* Mmap(const char* site, void* addr, size_t length, int prot, int flags,
           int fd, off_t offset);

}  // namespace rpqres::fault

#endif  // RPQRES_FAULT_FAILPOINTS_H_
