// rpqres — lang/neutral_letter: neutral letters (Section 5.2).
//
// e is neutral for L if for all α, β: αβ ∈ L ⟺ αeβ ∈ L. Under this
// assumption the paper proves a full dichotomy (Prp 5.7): IF(L) local ⇒
// PTIME, otherwise NP-hard.

#ifndef RPQRES_LANG_NEUTRAL_LETTER_H_
#define RPQRES_LANG_NEUTRAL_LETTER_H_

#include <vector>

#include "lang/language.h"

namespace rpqres {

/// True iff `e` is a neutral letter of L: L is closed under inserting `e`
/// at any position and under deleting any occurrence of `e`. Decided with
/// two automaton inclusion checks.
bool IsNeutralLetter(const Language& lang, char e);

/// All neutral letters among the used letters of L.
std::vector<char> NeutralLetters(const Language& lang);

}  // namespace rpqres

#endif  // RPQRES_LANG_NEUTRAL_LETTER_H_
