#include "lang/local.h"

#include <algorithm>
#include <queue>

#include "automata/ops.h"
#include "util/check.h"

namespace rpqres {
namespace {

// Accessible / co-accessible state masks of a (possibly partial) DFA.
void ComputeReachability(const Dfa& a, std::vector<bool>* accessible,
                         std::vector<bool>* coaccessible) {
  int n = a.num_states();
  accessible->assign(n, false);
  coaccessible->assign(n, false);
  if (n == 0) return;
  std::queue<int> queue;
  (*accessible)[a.initial()] = true;
  queue.push(a.initial());
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop();
    for (size_t i = 0; i < a.alphabet().size(); ++i) {
      int to = a.NextByIndex(s, static_cast<int>(i));
      if (to != kNoState && !(*accessible)[to]) {
        (*accessible)[to] = true;
        queue.push(to);
      }
    }
  }
  std::vector<std::vector<int>> rev(n);
  for (int s = 0; s < n; ++s) {
    for (size_t i = 0; i < a.alphabet().size(); ++i) {
      int to = a.NextByIndex(s, static_cast<int>(i));
      if (to != kNoState) rev[to].push_back(s);
    }
  }
  for (int s = 0; s < n; ++s) {
    if (a.IsFinal(s)) {
      if (!(*coaccessible)[s]) {
        (*coaccessible)[s] = true;
        queue.push(s);
      }
    }
  }
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop();
    for (int from : rev[s]) {
      if (!(*coaccessible)[from]) {
        (*coaccessible)[from] = true;
        queue.push(from);
      }
    }
  }
}

}  // namespace

LocalProfile ComputeLocalProfile(const Language& lang) {
  const Dfa& a = lang.min_dfa();
  LocalProfile profile;
  profile.letters = lang.used_letters();
  profile.contains_epsilon = lang.ContainsEpsilon();

  std::vector<bool> accessible, coaccessible;
  ComputeReachability(a, &accessible, &coaccessible);
  if (a.num_states() == 0) return profile;

  // Σ_start: letters a with δ(q0, a) co-accessible.
  for (char c : profile.letters) {
    int to = a.Next(a.initial(), c);
    if (to != kNoState && coaccessible[to]) {
      profile.start_letters.push_back(c);
    }
  }
  // Σ_end: letters a with some accessible p and δ(p, a) final.
  for (char c : profile.letters) {
    for (int p = 0; p < a.num_states(); ++p) {
      if (!accessible[p]) continue;
      int to = a.Next(p, c);
      if (to != kNoState && a.IsFinal(to)) {
        profile.end_letters.push_back(c);
        break;
      }
    }
  }
  // Π: pairs (a, b) realized as consecutive letters of a word of L:
  // accessible p, q = δ(p,a), r = δ(q,b) co-accessible.
  for (char c1 : profile.letters) {
    for (char c2 : profile.letters) {
      bool found = false;
      for (int p = 0; p < a.num_states() && !found; ++p) {
        if (!accessible[p]) continue;
        int q = a.Next(p, c1);
        if (q == kNoState) continue;
        int r = a.Next(q, c2);
        if (r != kNoState && coaccessible[r]) found = true;
      }
      if (found) profile.pairs.push_back({c1, c2});
    }
  }
  return profile;
}

Dfa LocalOverapproximationDfa(const LocalProfile& profile) {
  // State 0 = q_0; state 1+i = q_{letters[i]}.
  int n = 1 + static_cast<int>(profile.letters.size());
  Dfa a(profile.letters, n);
  a.set_initial(0);
  auto state_of = [&profile](char c) {
    auto it = std::lower_bound(profile.letters.begin(),
                               profile.letters.end(), c);
    RPQRES_DCHECK(it != profile.letters.end() && *it == c);
    return 1 + static_cast<int>(it - profile.letters.begin());
  };
  if (profile.contains_epsilon) a.SetFinal(0);
  for (char c : profile.end_letters) a.SetFinal(state_of(c));
  for (char c : profile.start_letters) a.SetTransition(0, c, state_of(c));
  for (auto [c1, c2] : profile.pairs) {
    a.SetTransition(state_of(c1), c2, state_of(c2));
  }
  return a;
}

bool IsLocal(const Language& lang) {
  LocalProfile profile = ComputeLocalProfile(lang);
  Dfa overapprox = LocalOverapproximationDfa(profile);
  return AreEquivalent(Minimize(overapprox), lang.min_dfa());
}

bool IsLocalDfa(const Dfa& dfa) {
  // For each letter, all transitions must share their target. The check
  // ignores transitions into non-co-accessible states only if the DFA is
  // complete via a sink; to stay faithful to Def 3.1 we check the raw
  // transition table restricted to useful states.
  std::vector<bool> accessible, coaccessible;
  ComputeReachability(dfa, &accessible, &coaccessible);
  for (size_t i = 0; i < dfa.alphabet().size(); ++i) {
    int target = kNoState;
    for (int s = 0; s < dfa.num_states(); ++s) {
      if (!accessible[s] || !coaccessible[s]) continue;
      int to = dfa.NextByIndex(s, static_cast<int>(i));
      if (to == kNoState || !coaccessible[to]) continue;
      if (target == kNoState) {
        target = to;
      } else if (target != to) {
        return false;
      }
    }
  }
  return true;
}

bool IsLetterCartesian(const std::vector<std::string>& words) {
  auto contains = [&words](const std::string& w) {
    return std::find(words.begin(), words.end(), w) != words.end();
  };
  for (const std::string& w1 : words) {
    for (size_t i = 0; i < w1.size(); ++i) {
      for (const std::string& w2 : words) {
        for (size_t j = 0; j < w2.size(); ++j) {
          if (w1[i] != w2[j]) continue;
          // α = w1[0..i), x = w1[i], δ = w2[j+1..): need αxδ ∈ L.
          std::string cross = w1.substr(0, i + 1) + w2.substr(j + 1);
          if (!contains(cross)) return false;
        }
      }
    }
  }
  return true;
}

}  // namespace rpqres
