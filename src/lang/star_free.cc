#include "lang/star_free.h"

#include <map>
#include <queue>
#include <vector>

#include "automata/ops.h"

namespace rpqres {
namespace {

using Element = std::vector<int>;  // total function states -> states

Element Compose(const Element& f, const Element& g) {
  // (f ∘ g)(q) = g(f(q)): first apply f, then g — matches reading a word
  // labeled f then a word labeled g.
  Element out(f.size());
  for (size_t q = 0; q < f.size(); ++q) out[q] = g[f[q]];
  return out;
}

// Generates the transition monoid of a complete DFA; empty result (error)
// if it exceeds the cap.
Result<std::vector<Element>> GenerateMonoid(const Dfa& dfa,
                                            size_t max_monoid_size) {
  int n = dfa.num_states();
  Element identity(n);
  for (int q = 0; q < n; ++q) identity[q] = q;

  std::vector<Element> generators;
  for (size_t i = 0; i < dfa.alphabet().size(); ++i) {
    Element gen(n);
    for (int q = 0; q < n; ++q) gen[q] = dfa.NextByIndex(q, static_cast<int>(i));
    generators.push_back(std::move(gen));
  }

  std::map<Element, int> seen;
  std::vector<Element> elements;
  std::queue<Element> queue;
  auto add = [&](Element e) {
    if (seen.insert({e, static_cast<int>(elements.size())}).second) {
      elements.push_back(e);
      queue.push(std::move(e));
    }
  };
  add(identity);
  while (!queue.empty()) {
    Element e = queue.front();
    queue.pop();
    for (const Element& gen : generators) {
      if (elements.size() > max_monoid_size) {
        return Status::OutOfRange(
            "transition monoid exceeds cap of " +
            std::to_string(max_monoid_size) + " elements");
      }
      add(Compose(e, gen));
    }
  }
  return elements;
}

// True iff f^k = f^{k+1} for some k (the aperiodicity condition per
// element). The powers of f eventually cycle; aperiodic iff the cycle has
// length 1.
bool ElementIsAperiodic(const Element& f) {
  std::map<Element, int> position;
  Element current = f;
  int step = 1;
  for (;;) {
    auto [it, inserted] = position.insert({current, step});
    if (!inserted) {
      int cycle_length = step - it->second;
      return cycle_length == 1;
    }
    current = Compose(current, f);
    ++step;
  }
}

}  // namespace

Result<bool> IsStarFree(const Language& lang, size_t max_monoid_size) {
  const Dfa& dfa = lang.min_dfa();  // minimal complete DFA
  RPQRES_ASSIGN_OR_RETURN(std::vector<Element> monoid,
                          GenerateMonoid(dfa, max_monoid_size));
  for (const Element& e : monoid) {
    if (!ElementIsAperiodic(e)) return false;
  }
  return true;
}

Result<size_t> TransitionMonoidSize(const Language& lang,
                                    size_t max_monoid_size) {
  RPQRES_ASSIGN_OR_RETURN(
      std::vector<Element> monoid,
      GenerateMonoid(lang.min_dfa(), max_monoid_size));
  return monoid.size();
}

}  // namespace rpqres
