// rpqres — lang/star_free: star-freeness (Section 5.2).
//
// A regular language is star-free iff its syntactic monoid is aperiodic
// (Schützenberger; the paper cites the equivalent counter-freeness of
// [McNaughton & Papert 33]). We compute the transition monoid of the
// minimal DFA and check that every element m satisfies m^k = m^{k+1} for
// some k. Non-star-free infix-free languages are four-legged (Lemma 5.6),
// hence NP-hard.

#ifndef RPQRES_LANG_STAR_FREE_H_
#define RPQRES_LANG_STAR_FREE_H_

#include "lang/language.h"
#include "util/status.h"

namespace rpqres {

/// Tests star-freeness by monoid aperiodicity. Fails with OutOfRange if the
/// transition monoid exceeds `max_monoid_size` elements (worst case n^n).
Result<bool> IsStarFree(const Language& lang,
                        size_t max_monoid_size = 1 << 18);

/// Size of the transition monoid of the minimal DFA (for tests/diagnostics).
Result<size_t> TransitionMonoidSize(const Language& lang,
                                    size_t max_monoid_size = 1 << 18);

}  // namespace rpqres

#endif  // RPQRES_LANG_STAR_FREE_H_
