#include "lang/four_legged.h"

#include <vector>

#include "util/check.h"
#include "util/strings.h"

namespace rpqres {

bool SomeInfixInLanguage(const Language& lang, const std::string& word) {
  for (size_t start = 0; start <= word.size(); ++start) {
    for (size_t len = 0; start + len <= word.size(); ++len) {
      if (lang.Contains(word.substr(start, len))) return true;
    }
  }
  return false;
}

std::optional<FourLeggedWitness> FindFourLeggedWitness(const Language& lang,
                                                       int max_word_length) {
  // Candidate words: all of L if finite, else all words up to the bound.
  std::vector<std::string> words;
  if (lang.IsFinite()) {
    Result<std::vector<std::string>> r = lang.Words();
    if (!r.ok()) return std::nullopt;  // astronomically many words
    words = std::move(r).ValueOrDie();
  } else {
    Result<std::vector<std::string>> r = lang.WordsUpTo(max_word_length);
    if (!r.ok()) return std::nullopt;
    words = std::move(r).ValueOrDie();
  }

  std::optional<FourLeggedWitness> unstable;
  for (const std::string& w1 : words) {
    for (size_t i = 0; i < w1.size(); ++i) {
      // Legs α, β non-empty: 1 <= i <= |w1|-2.
      if (i == 0 || i + 1 >= w1.size()) continue;
      char x = w1[i];
      for (const std::string& w2 : words) {
        for (size_t j = 0; j < w2.size(); ++j) {
          if (w2[j] != x || j == 0 || j + 1 >= w2.size()) continue;
          FourLeggedWitness witness;
          witness.body = x;
          witness.alpha = w1.substr(0, i);
          witness.beta = w1.substr(i + 1);
          witness.gamma = w2.substr(0, j);
          witness.delta = w2.substr(j + 1);
          std::string cross = witness.CrossWord();
          if (lang.Contains(cross)) continue;
          if (!SomeInfixInLanguage(lang, cross)) {
            witness.stable = true;
            return witness;  // prefer stable witnesses
          }
          if (!unstable) unstable = witness;
        }
      }
    }
  }
  return unstable;
}

FourLeggedWitness MakeStableLegs(const Language& lang,
                                 const FourLeggedWitness& witness) {
  // Proof of Lemma 5.5, verbatim. Invariant: `current` is a valid witness
  // with body x; each iteration either certifies stability or strictly
  // shrinks |αxδ|, so the loop terminates.
  FourLeggedWitness current = witness;
  const char x = witness.body;
  for (;;) {
    std::string eta_prime = current.CrossWord();  // α'xδ'
    RPQRES_CHECK(!lang.Contains(eta_prime));
    // Find a strict infix η of η' that is in L, if any.
    bool found = false;
    size_t found_start = 0, found_len = 0;
    for (size_t start = 0; start <= eta_prime.size() && !found; ++start) {
      for (size_t len = 0; start + len <= eta_prime.size(); ++len) {
        if (len == eta_prime.size() && start == 0) continue;  // not strict
        if (lang.Contains(eta_prime.substr(start, len))) {
          found = true;
          found_start = start;
          found_len = len;
          break;
        }
      }
    }
    if (!found) {
      current.stable = true;
      return current;
    }
    // η must straddle the body position |α'| (else it would be a strict
    // infix of a word of the infix-free language L). Write α' = α2 α1,
    // δ' = δ1 δ2 with η = α1 x δ1.
    size_t body_pos = current.alpha.size();
    RPQRES_CHECK_MSG(found_start <= body_pos &&
                         found_start + found_len > body_pos,
                     "infix does not straddle the body; L not infix-free?");
    std::string alpha1 = current.alpha.substr(found_start);
    std::string delta1 =
        eta_prime.substr(body_pos + 1,
                         found_start + found_len - body_pos - 1);
    bool alpha2_nonempty = found_start > 0;
    bool delta2_nonempty =
        found_start + found_len < eta_prime.size();
    RPQRES_CHECK(alpha2_nonempty || delta2_nonempty);
    RPQRES_CHECK(!alpha1.empty() && !delta1.empty());

    FourLeggedWitness next;
    next.body = x;
    if (delta2_nonempty) {
      // Case δ2 ≠ ε: α := γ', β := δ', γ := α1, δ := δ1.
      next.alpha = current.gamma;
      next.beta = current.delta;
      next.gamma = alpha1;
      next.delta = delta1;
    } else {
      // Case α2 ≠ ε: α := α1, β := δ1, γ := α', δ := β'.
      next.alpha = alpha1;
      next.beta = delta1;
      next.gamma = current.alpha;
      next.delta = current.beta;
    }
    RPQRES_CHECK(lang.Contains(next.FirstWord()));
    RPQRES_CHECK(lang.Contains(next.SecondWord()));
    RPQRES_CHECK(!lang.Contains(next.CrossWord()));
    current = next;
  }
}

}  // namespace rpqres
