#include "lang/neutral_letter.h"

#include "automata/ops.h"

namespace rpqres {
namespace {

// NFA for { αeβ : αβ ∈ L }: two phases of the DFA for L with a bridging
// e-transition (q,0) -e-> (q,1).
Enfa InsertOne(const Dfa& dfa, char e) {
  Enfa out;
  int n = dfa.num_states();
  out.AddStates(2 * n);
  for (int s = 0; s < n; ++s) {
    for (size_t i = 0; i < dfa.alphabet().size(); ++i) {
      int to = dfa.NextByIndex(s, static_cast<int>(i));
      if (to == kNoState) continue;
      out.AddTransition(s, dfa.alphabet()[i], to);          // phase 0
      out.AddTransition(n + s, dfa.alphabet()[i], n + to);  // phase 1
    }
    out.AddTransition(s, e, n + s);  // the inserted occurrence of e
    if (dfa.IsFinal(s)) out.AddFinal(n + s);
  }
  if (n > 0) out.AddInitial(dfa.initial());
  return out;
}

// NFA for { αβ : αeβ ∈ L }: two phases with an ε-jump that simulates
// reading e in the DFA: (q,0) -ε-> (δ(q,e),1).
Enfa DeleteOne(const Dfa& dfa, char e) {
  Enfa out;
  int n = dfa.num_states();
  out.AddStates(2 * n);
  for (int s = 0; s < n; ++s) {
    for (size_t i = 0; i < dfa.alphabet().size(); ++i) {
      int to = dfa.NextByIndex(s, static_cast<int>(i));
      if (to == kNoState) continue;
      out.AddTransition(s, dfa.alphabet()[i], to);
      out.AddTransition(n + s, dfa.alphabet()[i], n + to);
    }
    int via_e = dfa.Next(s, e);
    if (via_e != kNoState) out.AddTransition(s, kEpsilonSymbol, n + via_e);
    if (dfa.IsFinal(s)) out.AddFinal(n + s);
  }
  if (n > 0) out.AddInitial(dfa.initial());
  return out;
}

}  // namespace

bool IsNeutralLetter(const Language& lang, char e) {
  const Dfa& dfa = lang.min_dfa();
  // Insertion direction: αβ ∈ L ⇒ αeβ ∈ L, i.e. Ins_e(L) ⊆ L.
  Dfa inserted = MinimalDfa(InsertOne(dfa, e));
  if (!IsSubsetOf(inserted, dfa)) return false;
  // Deletion direction: αeβ ∈ L ⇒ αβ ∈ L, i.e. Del_e(L) ⊆ L.
  Dfa deleted = MinimalDfa(DeleteOne(dfa, e));
  return IsSubsetOf(deleted, dfa);
}

std::vector<char> NeutralLetters(const Language& lang) {
  std::vector<char> out;
  for (char e : lang.used_letters()) {
    if (IsNeutralLetter(lang, e)) out.push_back(e);
  }
  return out;
}

}  // namespace rpqres
