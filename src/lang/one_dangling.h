// rpqres — lang/one_dangling: one-dangling languages (Def 7.8).
//
// A one-dangling language is L₀ ∪ {xy} where L₀ is local over an alphabet
// Σ and x ≠ y with at least one of x, y outside Σ. Prp 7.9 gives a PTIME
// resilience algorithm by rewriting to a local-language instance.

#ifndef RPQRES_LANG_ONE_DANGLING_H_
#define RPQRES_LANG_ONE_DANGLING_H_

#include <optional>
#include <string>

#include "lang/language.h"

namespace rpqres {

/// A decomposition L = base ∪ {xy} witnessing that L is one-dangling.
struct OneDanglingDecomposition {
  char x = '\0';
  char y = '\0';
  Language base;        ///< L₀ = L \ {xy}, a local language
  bool x_in_base = false;  ///< whether x occurs in words of L₀
  bool y_in_base = false;  ///< whether y occurs in words of L₀ (not both)
};

/// Searches for a one-dangling decomposition of L (Def 7.8): a two-letter
/// word xy ∈ L, x ≠ y, such that L \ {xy} is local and x or y does not
/// occur in L \ {xy}. Returns nullopt if none exists.
///
/// Note this analyzes L as given; Prp 6.3 lets callers also try Mirror(L)
/// (the resilience solver does so internally for the y ∈ Σ case).
std::optional<OneDanglingDecomposition> FindOneDanglingDecomposition(
    const Language& lang);

/// True iff L or its mirror admits a one-dangling decomposition; both
/// directions are PTIME for resilience via Prp 7.9 + Prp 6.3.
bool IsOneDanglingOrMirror(const Language& lang);

}  // namespace rpqres

#endif  // RPQRES_LANG_ONE_DANGLING_H_
