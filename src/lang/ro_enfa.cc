#include "lang/ro_enfa.h"

#include <algorithm>

#include "automata/ops.h"
#include "lang/local.h"
#include "util/check.h"

namespace rpqres {

bool IsRoEnfa(const Enfa& a) {
  std::vector<char> seen;
  for (const EnfaTransition& t : a.transitions()) {
    if (t.symbol == kEpsilonSymbol) continue;
    if (std::find(seen.begin(), seen.end(), t.symbol) != seen.end()) {
      return false;
    }
    seen.push_back(t.symbol);
  }
  return true;
}

Result<Enfa> BuildRoEnfa(const Language& lang) {
  LocalProfile profile = ComputeLocalProfile(lang);
  const std::vector<char>& letters = profile.letters;

  // State layout: 0 = q0; 1 + 2i = in_a (tail of the unique a-transition);
  // 2 + 2i = out_a (its head), for a = letters[i].
  Enfa ro;
  ro.AddStates(1 + 2 * static_cast<int>(letters.size()));
  ro.AddInitial(0);
  if (profile.contains_epsilon) ro.AddFinal(0);
  auto index_of = [&letters](char c) {
    auto it = std::lower_bound(letters.begin(), letters.end(), c);
    RPQRES_DCHECK(it != letters.end() && *it == c);
    return static_cast<int>(it - letters.begin());
  };
  auto in_state = [&index_of](char c) { return 1 + 2 * index_of(c); };
  auto out_state = [&index_of](char c) { return 2 + 2 * index_of(c); };

  for (char c : letters) {
    ro.AddTransition(in_state(c), c, out_state(c));  // the unique c-edge
  }
  for (char c : profile.start_letters) {
    ro.AddTransition(0, kEpsilonSymbol, in_state(c));
  }
  for (auto [c1, c2] : profile.pairs) {
    ro.AddTransition(out_state(c1), kEpsilonSymbol, in_state(c2));
  }
  for (char c : profile.end_letters) ro.AddFinal(out_state(c));

  RPQRES_DCHECK(IsRoEnfa(ro));
  // The construction recognizes the local overapproximation of L
  // (Claim 3.9/3.10); it equals L exactly when L is local.
  if (!AreEquivalent(MinimalDfa(ro), lang.min_dfa())) {
    return Status::FailedPrecondition(
        "BuildRoEnfa: language " + lang.description() +
        " is not local (RO-εNFAs recognize exactly the local languages, "
        "Lemma 3.17)");
  }
  return ro;
}

}  // namespace rpqres
