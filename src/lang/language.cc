#include "lang/language.h"

#include <algorithm>

#include "automata/ops.h"
#include "automata/thompson.h"
#include "regex/parser.h"
#include "util/check.h"
#include "util/strings.h"

namespace rpqres {

Language::Language(Enfa enfa, Dfa min_dfa, std::string description)
    : enfa_(std::move(enfa)),
      min_dfa_(std::move(min_dfa)),
      description_(std::move(description)) {
  // Letters occurring in words of L = labels on useful transitions of the
  // trimmed automaton.
  used_letters_ = EnfaTrim(DfaToEnfa(min_dfa_)).Alphabet();
}

Result<Language> Language::FromRegexString(const std::string& regex) {
  RPQRES_ASSIGN_OR_RETURN(Regex ast, ParseRegex(regex));
  Language lang = FromRegex(ast);
  lang.set_description(regex);
  return lang;
}

Language Language::MustFromRegexString(const std::string& regex) {
  Result<Language> result = FromRegexString(regex);
  RPQRES_CHECK_MSG(result.ok(), "MustFromRegexString(\"" + regex +
                                    "\"): " + result.status().ToString());
  return std::move(result).ValueOrDie();
}

Language Language::FromRegex(const Regex& regex) {
  Enfa enfa = ThompsonEnfa(regex);
  Dfa min_dfa = MinimalDfa(enfa);
  return Language(std::move(enfa), std::move(min_dfa), regex.ToString());
}

Language Language::FromEnfa(const Enfa& enfa) {
  Dfa min_dfa = MinimalDfa(enfa);
  return Language(enfa, std::move(min_dfa),
                  "<εNFA with " + std::to_string(enfa.num_states()) +
                      " states>");
}

Language Language::FromDfa(const Dfa& dfa) {
  Dfa min_dfa = Minimize(dfa);
  // The trimmed εNFA keeps only useful states; when ε ∈ L the initial state
  // is final, hence useful, so no accepting behaviour is lost.
  Enfa enfa = EnfaTrim(DfaToEnfa(min_dfa));
  return Language(std::move(enfa), std::move(min_dfa),
                  "<DFA with " + std::to_string(dfa.num_states()) +
                      " states>");
}

Language Language::FromWords(const std::vector<std::string>& words) {
  Language lang = FromEnfa(EnfaFromWords(words));
  std::vector<std::string> shown;
  for (const std::string& w : words) shown.push_back(DisplayWord(w));
  lang.set_description(shown.empty() ? "∅" : Join(shown, "|"));
  return lang;
}

bool Language::IsEmpty() const { return DfaIsEmptyLanguage(min_dfa_); }

bool Language::ContainsEpsilon() const { return min_dfa_.Accepts(""); }

bool Language::IsFinite() const { return DfaIsFinite(min_dfa_); }

Result<std::vector<std::string>> Language::Words(size_t max_words) const {
  return EnumerateFiniteLanguage(min_dfa_, max_words);
}

Result<std::vector<std::string>> Language::WordsUpTo(int max_length,
                                                     size_t max_words) const {
  return WordsUpToLength(min_dfa_, max_length, max_words);
}

std::optional<std::string> Language::ShortestWord() const {
  return rpqres::ShortestWord(min_dfa_);
}

Language Language::Mirror() const {
  Language mirrored = FromEnfa(EnfaMirror(enfa_));
  mirrored.set_description("mirror(" + description_ + ")");
  return mirrored;
}

bool Language::EquivalentTo(const Language& other) const {
  return AreEquivalent(min_dfa_, other.min_dfa_);
}

}  // namespace rpqres
