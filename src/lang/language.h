// rpqres — lang/language: a regular language bundled with its canonical
// automata representations and cached basic facts. This is the main value
// type passed to all analyses and resilience solvers.

#ifndef RPQRES_LANG_LANGUAGE_H_
#define RPQRES_LANG_LANGUAGE_H_

#include <string>
#include <vector>

#include "automata/dfa.h"
#include "automata/enfa.h"
#include "regex/ast.h"
#include "util/status.h"

namespace rpqres {

/// A regular language L over single-character letters.
///
/// Holds the defining εNFA and the minimal complete DFA; both are computed
/// eagerly at construction (languages in this problem domain are small —
/// queries, not data).
class Language {
 public:
  /// Parses the paper's regex syntax, e.g. "ax*b|cxd".
  static Result<Language> FromRegexString(const std::string& regex);
  /// Like FromRegexString but aborts on parse failure (for literals).
  static Language MustFromRegexString(const std::string& regex);
  static Language FromRegex(const Regex& regex);
  static Language FromEnfa(const Enfa& enfa);
  static Language FromDfa(const Dfa& dfa);
  /// Finite language given by an explicit word list.
  static Language FromWords(const std::vector<std::string>& words);

  /// The defining εNFA (as supplied, or derived from the DFA).
  const Enfa& enfa() const { return enfa_; }
  /// Minimal complete DFA for L.
  const Dfa& min_dfa() const { return min_dfa_; }

  /// Letters that occur in at least one word of L, sorted. This is the
  /// paper's working alphabet Σ (unused letters are irrelevant to all
  /// properties studied).
  const std::vector<char>& used_letters() const { return used_letters_; }

  bool Contains(const std::string& word) const {
    return min_dfa_.Accepts(word);
  }
  bool IsEmpty() const;
  bool ContainsEpsilon() const;
  bool IsFinite() const;

  /// Words of a finite language, sorted by (length, lex).
  /// FailedPrecondition if infinite.
  Result<std::vector<std::string>> Words(size_t max_words = 1 << 20) const;

  /// Accepted words of length <= max_length, sorted by (length, lex).
  Result<std::vector<std::string>> WordsUpTo(int max_length,
                                             size_t max_words = 1
                                                                << 20) const;

  /// Shortest word, or nullopt if empty.
  std::optional<std::string> ShortestWord() const;

  /// The mirror language L^R (Prp 6.3).
  Language Mirror() const;

  /// True iff this and other denote the same language.
  bool EquivalentTo(const Language& other) const;

  /// Display string: the regex this language was built from, or a word list
  /// for small finite languages, or a state-count placeholder.
  const std::string& description() const { return description_; }
  void set_description(std::string description) {
    description_ = std::move(description);
  }

 private:
  Language(Enfa enfa, Dfa min_dfa, std::string description);

  Enfa enfa_;
  Dfa min_dfa_;
  std::vector<char> used_letters_;
  std::string description_;
};

}  // namespace rpqres

#endif  // RPQRES_LANG_LANGUAGE_H_
