// rpqres — lang/local: local languages (Section 3.1).
//
// A language is local iff it is recognized by a local DFA (all a-transitions
// share their target, Def 3.1), iff it is letter-Cartesian (Def 3.3,
// Prp 3.5). Locality of L(A) is tested by building the local
// overapproximation (Def 3.8) and checking equivalence (Prp 3.12,
// Claim 3.11).

#ifndef RPQRES_LANG_LOCAL_H_
#define RPQRES_LANG_LOCAL_H_

#include <string>
#include <utility>
#include <vector>

#include "automata/dfa.h"
#include "lang/language.h"

namespace rpqres {

/// The (Σ_start, Σ_end, Π) profile of Definition 3.8.
struct LocalProfile {
  std::vector<char> start_letters;  ///< letters that can start a word of L
  std::vector<char> end_letters;    ///< letters that can end a word of L
  std::vector<std::pair<char, char>> pairs;  ///< consecutive letter pairs Π
  bool contains_epsilon = false;
  std::vector<char> letters;  ///< letters occurring in L (sorted)
};

/// Extracts the local profile of L from its minimal DFA.
LocalProfile ComputeLocalProfile(const Language& lang);

/// Builds the local overapproximation DFA of Definition 3.8: one state q_0
/// plus one state q_a per letter. The result is a (partial) local DFA with
/// L(A) ⊇ L (Claim 3.9).
Dfa LocalOverapproximationDfa(const LocalProfile& profile);

/// Locality test (Prp 3.12 / Claim 3.11): L is local iff its local
/// overapproximation recognizes exactly L.
bool IsLocal(const Language& lang);

/// Checks whether a specific DFA is a *local DFA* (Def 3.1): for each
/// letter, all transitions on that letter share the same target.
bool IsLocalDfa(const Dfa& dfa);

/// Direct letter-Cartesian check (Def 3.3) for an explicit finite language;
/// used in tests to validate Prp 3.5 (local ⇔ letter-Cartesian).
bool IsLetterCartesian(const std::vector<std::string>& words);

}  // namespace rpqres

#endif  // RPQRES_LANG_LOCAL_H_
