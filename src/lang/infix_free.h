// rpqres — lang/infix_free: the infix-free sublanguage IF(L) (Section 2).
//
// IF(L) = { α ∈ L | no strict infix of α is in L }. The paper's key
// observation is that Q_L = Q_IF(L), so all classification happens on IF(L).

#ifndef RPQRES_LANG_INFIX_FREE_H_
#define RPQRES_LANG_INFIX_FREE_H_

#include "lang/language.h"

namespace rpqres {

/// Computes IF(L) via the identity IF(L) = L \ (Σ⁺LΣ* ∪ Σ*LΣ⁺)
/// (Appendix B of the paper). May incur the exponential blowup of
/// [Barceló et al., Prp 6]; fine at query scale.
Language InfixFreeSublanguage(const Language& lang);

/// True iff L = IF(L) (L is an infix code, Section 2).
bool IsInfixFree(const Language& lang);

/// Direct word-level computation for explicit finite languages: keeps the
/// words with no strict infix among the others (used to cross-check the
/// automaton construction).
std::vector<std::string> InfixFreeWords(
    const std::vector<std::string>& words);

}  // namespace rpqres

#endif  // RPQRES_LANG_INFIX_FREE_H_
