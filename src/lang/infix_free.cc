#include "lang/infix_free.h"

#include "automata/ops.h"
#include "util/strings.h"

namespace rpqres {

Language InfixFreeSublanguage(const Language& lang) {
  const std::vector<char>& sigma = lang.used_letters();
  const Enfa& e = lang.enfa();
  // Σ⁺ L Σ*  ∪  Σ* L Σ⁺ — words having a strict infix in L.
  Enfa left = EnfaConcat(EnfaConcat(EnfaSigmaPlus(sigma), e),
                         EnfaSigmaStar(sigma));
  Enfa right = EnfaConcat(EnfaConcat(EnfaSigmaStar(sigma), e),
                          EnfaSigmaPlus(sigma));
  Dfa with_strict_infix = MinimalDfa(EnfaUnion(left, right));
  Dfa result = Minimize(DifferenceDfa(lang.min_dfa(), with_strict_infix));
  Language out = Language::FromDfa(result);
  out.set_description("IF(" + lang.description() + ")");
  return out;
}

bool IsInfixFree(const Language& lang) {
  return lang.EquivalentTo(InfixFreeSublanguage(lang));
}

std::vector<std::string> InfixFreeWords(
    const std::vector<std::string>& words) {
  std::vector<std::string> out;
  for (const std::string& w : words) {
    bool has_strict_infix_in_language = false;
    for (const std::string& other : words) {
      if (ContainsStrictInfix(w, other)) {
        has_strict_infix_in_language = true;
        break;
      }
    }
    if (!has_strict_infix_in_language) out.push_back(w);
  }
  return out;
}

}  // namespace rpqres
