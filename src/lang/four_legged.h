// rpqres — lang/four_legged: four-legged languages (Section 5.1).
//
// An infix-free language L is four-legged if there are a body letter x and
// non-empty legs α, β, γ, δ with αxβ ∈ L, γxδ ∈ L, αxδ ∉ L (Def 5.1).
// Theorem 5.3 shows RES_set(L) is NP-hard for such L; Lemma 5.5 shows legs
// can be chosen *stable* (no infix of αxδ in L), which is what the gadget
// constructions of Figures 5–6 consume.

#ifndef RPQRES_LANG_FOUR_LEGGED_H_
#define RPQRES_LANG_FOUR_LEGGED_H_

#include <optional>
#include <string>

#include "lang/language.h"

namespace rpqres {

/// A witness that L is four-legged: αxβ ∈ L, γxδ ∈ L, αxδ ∉ L, all legs
/// non-empty. If `stable`, additionally no infix of αxδ is in L (Def 5.4).
struct FourLeggedWitness {
  char body = '\0';
  std::string alpha;
  std::string beta;
  std::string gamma;
  std::string delta;
  bool stable = false;

  /// αxβ.
  std::string FirstWord() const { return alpha + body + beta; }
  /// γxδ.
  std::string SecondWord() const { return gamma + body + delta; }
  /// αxδ (the missing cross-product word).
  std::string CrossWord() const { return alpha + body + delta; }
};

/// Searches for a four-legged witness of the *infix-free* language `lang`.
/// Exhaustive (hence exact) for finite languages; for infinite languages
/// the search scans words up to `max_word_length` (sound but incomplete —
/// a nullopt answer is then only "not found").
std::optional<FourLeggedWitness> FindFourLeggedWitness(
    const Language& lang, int max_word_length = 12);

/// Upgrades any witness to one with stable legs (Lemma 5.5). The input
/// language must be infix-free.
FourLeggedWitness MakeStableLegs(const Language& lang,
                                 const FourLeggedWitness& witness);

/// True iff some infix of `word` (including `word` itself) is in L.
bool SomeInfixInLanguage(const Language& lang, const std::string& word);

}  // namespace rpqres

#endif  // RPQRES_LANG_FOUR_LEGGED_H_
