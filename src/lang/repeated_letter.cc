#include "lang/repeated_letter.h"

#include "automata/ops.h"
#include "automata/thompson.h"
#include "util/check.h"

namespace rpqres {
namespace {

// εNFA for Σ* a Σ* a Σ* over the used alphabet of `lang`.
Enfa TwoOccurrences(char a, const std::vector<char>& sigma) {
  Enfa sigma_star = EnfaSigmaStar(sigma);
  Enfa letter = EnfaFromWord(std::string(1, a));
  return EnfaConcat(
      EnfaConcat(EnfaConcat(EnfaConcat(sigma_star, letter), sigma_star),
                 letter),
      sigma_star);
}

}  // namespace

bool HasRepeatedLetterWord(const Language& lang) {
  for (char a : lang.used_letters()) {
    Dfa pattern = MinimalDfa(TwoOccurrences(a, lang.used_letters()));
    if (!DfaIsEmptyLanguage(IntersectDfa(lang.min_dfa(), pattern))) {
      return true;
    }
  }
  return false;
}

std::optional<std::string> ShortestRepeatedLetterWord(const Language& lang) {
  std::optional<std::string> best;
  for (char a : lang.used_letters()) {
    Dfa pattern = MinimalDfa(TwoOccurrences(a, lang.used_letters()));
    std::optional<std::string> word =
        ShortestWord(IntersectDfa(lang.min_dfa(), pattern));
    if (word && (!best || word->size() < best->size() ||
                 (word->size() == best->size() && *word < *best))) {
      best = word;
    }
  }
  return best;
}

std::optional<RepeatedLetterWord> BestRepeatInWord(const std::string& word) {
  std::optional<RepeatedLetterWord> best;
  for (size_t i = 0; i < word.size(); ++i) {
    for (size_t j = i + 1; j < word.size(); ++j) {
      if (word[i] != word[j]) continue;
      if (!best || j - i - 1 > best->gap()) {
        best = RepeatedLetterWord{word, word[i], i, j};
      }
    }
  }
  return best;
}

std::optional<RepeatedLetterWord> FindMaximalGapWord(
    const std::vector<std::string>& words) {
  std::optional<RepeatedLetterWord> best;
  for (const std::string& word : words) {
    std::optional<RepeatedLetterWord> candidate = BestRepeatInWord(word);
    if (!candidate) continue;
    if (!best || candidate->gap() > best->gap() ||
        (candidate->gap() == best->gap() &&
         candidate->word.size() > best->word.size())) {
      best = candidate;
    }
  }
  return best;
}

std::optional<RepeatedLetterWord> FindMaximalGapWord(const Language& lang) {
  Result<std::vector<std::string>> words = lang.Words();
  RPQRES_CHECK_MSG(words.ok(),
                   "FindMaximalGapWord requires a finite language: " +
                       words.status().ToString());
  return FindMaximalGapWord(*words);
}

}  // namespace rpqres
