// rpqres — lang/ro_enfa: Read-Once εNFAs (Def 3.15, Lemma 3.17).
//
// An RO-εNFA has at most one transition per letter; RO-εNFAs recognize
// exactly the local languages, and their read-once property is what makes
// the product network of Theorem 3.13 have one finite-capacity edge per
// database fact.

#ifndef RPQRES_LANG_RO_ENFA_H_
#define RPQRES_LANG_RO_ENFA_H_

#include "automata/enfa.h"
#include "lang/language.h"
#include "util/status.h"

namespace rpqres {

/// True iff `a` has at most one transition per (non-ε) letter (Def 3.15).
bool IsRoEnfa(const Enfa& a);

/// Builds an RO-εNFA recognizing L (Lemma 3.17): ≤ 2|Σ|+1 states, built
/// from the local profile of Definition 3.8. Fails with FailedPrecondition
/// if L is not local (verified by an equivalence check, so this also serves
/// as the "promise" check of Theorem 3.13's combined-complexity statement).
Result<Enfa> BuildRoEnfa(const Language& lang);

}  // namespace rpqres

#endif  // RPQRES_LANG_RO_ENFA_H_
