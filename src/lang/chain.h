// rpqres — lang/chain: chain languages and bipartite chain languages
// (Section 7.1, Defs 7.1–7.2).
//
// A chain language has no repeated letter inside a word, and the middle
// letters of each word are private to that word. Chain languages are always
// finite. A chain language is a BCL when its endpoint graph (letters as
// vertices, word endpoints as edges) is bipartite; Prp 7.6 shows BCLs have
// PTIME resilience.

#ifndef RPQRES_LANG_CHAIN_H_
#define RPQRES_LANG_CHAIN_H_

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "lang/language.h"
#include "util/status.h"

namespace rpqres {

/// Outcome of the chain-language analysis of a language.
struct ChainAnalysis {
  bool is_chain = false;
  std::vector<std::string> words;  ///< explicit word list (valid iff finite)
  std::string violation;           ///< human-readable reason if !is_chain
};

/// Checks Definition 7.1 on a language (extracting the explicit word list à
/// la Lemma 7.7; infinite languages are never chain languages).
ChainAnalysis AnalyzeChain(const Language& lang);

/// Word-list variant (used by tests and by the BCL solver front-end).
ChainAnalysis AnalyzeChainWords(const std::vector<std::string>& words);

/// The endpoint graph of Definition 7.2 over the words of a language:
/// vertices = letters, edges = {first, last} of each word of length >= 2.
struct EndpointGraph {
  std::vector<char> letters;                   ///< all used letters
  std::vector<std::pair<char, char>> edges;    ///< deduplicated, a < b
};

EndpointGraph BuildEndpointGraph(const std::vector<std::string>& words);

/// 2-colors the endpoint graph; nullopt if it is not bipartite. Colors are
/// 0 (source partition) / 1 (target partition); letters without incident
/// edges get color 0.
std::optional<std::map<char, int>> BipartitionEndpointGraph(
    const EndpointGraph& graph);

/// True iff L is a bipartite chain language (Def 7.2).
bool IsBipartiteChainLanguage(const Language& lang);

}  // namespace rpqres

#endif  // RPQRES_LANG_CHAIN_H_
