#include "lang/chain.h"

#include <algorithm>
#include <queue>

#include "util/strings.h"

namespace rpqres {

ChainAnalysis AnalyzeChainWords(const std::vector<std::string>& words) {
  ChainAnalysis out;
  out.words = words;
  // Condition 1: no word contains a repeated letter.
  for (const std::string& w : words) {
    std::vector<char> sorted(w.begin(), w.end());
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      out.violation = "word " + DisplayWord(w) + " repeats a letter";
      return out;
    }
  }
  // Condition 2: middle letters are private to their word.
  for (const std::string& w : words) {
    if (w.size() < 2) continue;
    for (size_t i = 1; i + 1 < w.size(); ++i) {
      char middle = w[i];
      for (const std::string& other : words) {
        if (&other == &w) continue;
        if (other.find(middle) != std::string::npos) {
          out.violation = std::string("middle letter '") + middle +
                          "' of word " + DisplayWord(w) +
                          " occurs in word " + DisplayWord(other);
          return out;
        }
      }
    }
  }
  out.is_chain = true;
  return out;
}

ChainAnalysis AnalyzeChain(const Language& lang) {
  if (!lang.IsFinite()) {
    ChainAnalysis out;
    out.violation = "language is infinite (chain languages are finite)";
    return out;
  }
  Result<std::vector<std::string>> words = lang.Words();
  if (!words.ok()) {
    ChainAnalysis out;
    out.violation = words.status().ToString();
    return out;
  }
  return AnalyzeChainWords(*words);
}

EndpointGraph BuildEndpointGraph(const std::vector<std::string>& words) {
  EndpointGraph graph;
  for (const std::string& w : words) {
    for (char c : w) graph.letters.push_back(c);
  }
  std::sort(graph.letters.begin(), graph.letters.end());
  graph.letters.erase(
      std::unique(graph.letters.begin(), graph.letters.end()),
      graph.letters.end());
  for (const std::string& w : words) {
    if (w.size() < 2) continue;
    char a = w.front(), b = w.back();
    if (a == b) continue;  // Def 7.2 requires a ≠ b
    if (a > b) std::swap(a, b);
    graph.edges.push_back({a, b});
  }
  std::sort(graph.edges.begin(), graph.edges.end());
  graph.edges.erase(std::unique(graph.edges.begin(), graph.edges.end()),
                    graph.edges.end());
  return graph;
}

std::optional<std::map<char, int>> BipartitionEndpointGraph(
    const EndpointGraph& graph) {
  std::map<char, std::vector<char>> adjacency;
  for (auto [a, b] : graph.edges) {
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }
  std::map<char, int> color;
  for (char root : graph.letters) {
    if (color.count(root)) continue;
    color[root] = 0;
    std::queue<char> queue;
    queue.push(root);
    while (!queue.empty()) {
      char u = queue.front();
      queue.pop();
      for (char v : adjacency[u]) {
        auto it = color.find(v);
        if (it == color.end()) {
          color[v] = 1 - color[u];
          queue.push(v);
        } else if (it->second == color[u]) {
          return std::nullopt;  // odd cycle
        }
      }
    }
  }
  return color;
}

bool IsBipartiteChainLanguage(const Language& lang) {
  ChainAnalysis analysis = AnalyzeChain(lang);
  if (!analysis.is_chain) return false;
  EndpointGraph graph = BuildEndpointGraph(analysis.words);
  return BipartitionEndpointGraph(graph).has_value();
}

}  // namespace rpqres
