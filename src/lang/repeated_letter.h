// rpqres — lang/repeated_letter: words with repeated letters (Section 6).
//
// Theorem 6.1: a finite infix-free language containing a word with a
// repeated letter has NP-complete resilience. The proof machinery picks a
// *maximal-gap* word (Def 6.4), which we also expose for the gadget
// constructions.

#ifndef RPQRES_LANG_REPEATED_LETTER_H_
#define RPQRES_LANG_REPEATED_LETTER_H_

#include <optional>
#include <string>
#include <vector>

#include "lang/language.h"

namespace rpqres {

/// Decomposition of a word β a γ a δ around a repeated letter.
struct RepeatedLetterWord {
  std::string word;   ///< the full word βaγaδ
  char letter = '\0'; ///< the repeated letter a
  size_t first_pos = 0;   ///< index of the first a
  size_t second_pos = 0;  ///< index of the second a (gap = second-first-1)

  std::string beta() const { return word.substr(0, first_pos); }
  std::string gamma() const {
    return word.substr(first_pos + 1, second_pos - first_pos - 1);
  }
  std::string delta() const { return word.substr(second_pos + 1); }
  size_t gap() const { return second_pos - first_pos - 1; }
};

/// True iff some word of L (finite or infinite) repeats some letter,
/// decided via the automaton: L ∩ Σ*aΣ*aΣ* ≠ ∅ for some letter a.
bool HasRepeatedLetterWord(const Language& lang);

/// Shortest word of L with a repeated letter, or nullopt.
std::optional<std::string> ShortestRepeatedLetterWord(const Language& lang);

/// Finds the positions of a repeated letter in `word` maximizing the gap;
/// nullopt if all letters are distinct.
std::optional<RepeatedLetterWord> BestRepeatInWord(const std::string& word);

/// A maximal-gap word of a finite language (Def 6.4): maximize the gap γ
/// between the repeated letters, then the total word length. Requires L
/// finite; nullopt if no word has a repeated letter.
std::optional<RepeatedLetterWord> FindMaximalGapWord(const Language& lang);

/// Word-list variant of FindMaximalGapWord (for tests).
std::optional<RepeatedLetterWord> FindMaximalGapWord(
    const std::vector<std::string>& words);

}  // namespace rpqres

#endif  // RPQRES_LANG_REPEATED_LETTER_H_
