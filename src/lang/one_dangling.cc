#include "lang/one_dangling.h"

#include <algorithm>

#include "automata/ops.h"
#include "lang/local.h"

namespace rpqres {

std::optional<OneDanglingDecomposition> FindOneDanglingDecomposition(
    const Language& lang) {
  // Candidate dangling words: the two-letter words of L.
  Result<std::vector<std::string>> short_words = lang.WordsUpTo(2);
  if (!short_words.ok()) return std::nullopt;
  for (const std::string& w : *short_words) {
    if (w.size() != 2 || w[0] == w[1]) continue;
    char x = w[0], y = w[1];
    // base = L \ {xy}.
    Dfa base_dfa = Minimize(
        DifferenceDfa(lang.min_dfa(), MinimalDfa(EnfaFromWord(w))));
    Language base = Language::FromDfa(base_dfa);
    base.set_description(lang.description() + " \\ {" + w + "}");
    const std::vector<char>& sigma = base.used_letters();
    bool x_in_base =
        std::binary_search(sigma.begin(), sigma.end(), x);
    bool y_in_base =
        std::binary_search(sigma.begin(), sigma.end(), y);
    if (x_in_base && y_in_base) continue;  // neither endpoint is fresh
    if (!IsLocal(base)) continue;
    OneDanglingDecomposition decomposition{x, y, std::move(base), x_in_base,
                                           y_in_base};
    return decomposition;
  }
  return std::nullopt;
}

bool IsOneDanglingOrMirror(const Language& lang) {
  if (FindOneDanglingDecomposition(lang)) return true;
  return FindOneDanglingDecomposition(lang.Mirror()).has_value();
}

}  // namespace rpqres
