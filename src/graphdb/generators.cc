#include "graphdb/generators.h"

#include "util/check.h"

namespace rpqres {
namespace {

Capacity DrawMultiplicity(Rng* rng, Capacity max_multiplicity) {
  if (max_multiplicity <= 1) return 1;
  return rng->NextInRange(1, max_multiplicity);
}

}  // namespace

GraphDb RandomGraphDb(Rng* rng, int num_nodes, int num_facts,
                      const std::vector<char>& labels,
                      Capacity max_multiplicity) {
  RPQRES_CHECK(num_nodes > 0);
  RPQRES_CHECK(!labels.empty());
  GraphDb db;
  for (int i = 0; i < num_nodes; ++i) db.AddNode();
  for (int i = 0; i < num_facts; ++i) {
    NodeId u = static_cast<NodeId>(rng->NextBelow(num_nodes));
    NodeId v = static_cast<NodeId>(rng->NextBelow(num_nodes));
    char label = labels[rng->NextBelow(labels.size())];
    db.AddFact(u, label, v, DrawMultiplicity(rng, max_multiplicity));
  }
  return db;
}

GraphDb LayeredFlowDb(Rng* rng, int sources, int layers, int width,
                      int sinks, double density, Capacity max_multiplicity) {
  RPQRES_CHECK(layers >= 1 && width >= 1 && sources >= 1 && sinks >= 1);
  GraphDb db;
  // Internal grid of `layers` columns of `width` nodes.
  std::vector<std::vector<NodeId>> grid(layers);
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      grid[l].push_back(
          db.AddNode("L" + std::to_string(l) + "_" + std::to_string(w)));
    }
  }
  // a-edges from fresh source stubs into the first layer.
  for (int i = 0; i < sources; ++i) {
    NodeId stub = db.AddNode("src" + std::to_string(i));
    NodeId entry = grid[0][rng->NextBelow(width)];
    db.AddFact(stub, 'a', entry, DrawMultiplicity(rng, max_multiplicity));
  }
  // x-edges between consecutive layers; guarantee at least one per column.
  for (int l = 0; l + 1 < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      NodeId from = grid[l][w];
      bool added = false;
      for (int w2 = 0; w2 < width; ++w2) {
        if (rng->NextDouble() < density) {
          db.AddFact(from, 'x', grid[l + 1][w2],
                     DrawMultiplicity(rng, max_multiplicity));
          added = true;
        }
      }
      if (!added) {
        db.AddFact(from, 'x', grid[l + 1][rng->NextBelow(width)],
                   DrawMultiplicity(rng, max_multiplicity));
      }
    }
  }
  // b-edges from the last layer to fresh sink stubs.
  for (int i = 0; i < sinks; ++i) {
    NodeId exit = grid[layers - 1][rng->NextBelow(width)];
    NodeId stub = db.AddNode("snk" + std::to_string(i));
    db.AddFact(exit, 'b', stub, DrawMultiplicity(rng, max_multiplicity));
  }
  return db;
}

GraphDb PathDb(const std::string& word) {
  GraphDb db;
  NodeId prev = db.AddNode();
  for (char c : word) {
    NodeId next = db.AddNode();
    db.AddFact(prev, c, next);
    prev = next;
  }
  return db;
}

GraphDb WordSoupDb(Rng* rng, const std::vector<std::string>& words,
                   int count, const std::vector<char>& extra_labels,
                   int cross_links, Capacity max_multiplicity) {
  RPQRES_CHECK(!words.empty());
  GraphDb db;
  for (int i = 0; i < count; ++i) {
    const std::string& word = words[rng->NextBelow(words.size())];
    NodeId prev = db.AddNode();
    for (char c : word) {
      NodeId next = db.AddNode();
      db.AddFact(prev, c, next, DrawMultiplicity(rng, max_multiplicity));
      prev = next;
    }
  }
  if (db.num_nodes() > 0 && !extra_labels.empty()) {
    for (int i = 0; i < cross_links; ++i) {
      NodeId u = static_cast<NodeId>(rng->NextBelow(db.num_nodes()));
      NodeId v = static_cast<NodeId>(rng->NextBelow(db.num_nodes()));
      char label = extra_labels[rng->NextBelow(extra_labels.size())];
      db.AddFact(u, label, v, DrawMultiplicity(rng, max_multiplicity));
    }
  }
  return db;
}

GraphDb DanglingPairsDb(Rng* rng, int num_nodes, int base_facts,
                        const std::vector<char>& base_labels, char x, char y,
                        int pair_count, Capacity max_multiplicity) {
  RPQRES_CHECK(num_nodes > 0);
  GraphDb db;
  for (int i = 0; i < num_nodes; ++i) db.AddNode();
  for (int i = 0; i < base_facts; ++i) {
    NodeId u = static_cast<NodeId>(rng->NextBelow(num_nodes));
    NodeId v = static_cast<NodeId>(rng->NextBelow(num_nodes));
    char label = base_labels[rng->NextBelow(base_labels.size())];
    db.AddFact(u, label, v, DrawMultiplicity(rng, max_multiplicity));
  }
  for (int i = 0; i < pair_count; ++i) {
    // x into a shared middle node, y out of it; endpoints may be shared
    // with the base part, creating interaction between {xy} and the base
    // language matches.
    NodeId u = static_cast<NodeId>(rng->NextBelow(num_nodes));
    NodeId mid = static_cast<NodeId>(rng->NextBelow(num_nodes));
    NodeId w = static_cast<NodeId>(rng->NextBelow(num_nodes));
    db.AddFact(u, x, mid, DrawMultiplicity(rng, max_multiplicity));
    db.AddFact(mid, y, w, DrawMultiplicity(rng, max_multiplicity));
  }
  return db;
}

}  // namespace rpqres
