#include "graphdb/generators.h"

#include "util/check.h"

namespace rpqres {
namespace {

Capacity DrawMultiplicity(Rng* rng, Capacity max_multiplicity) {
  if (max_multiplicity <= 1) return 1;
  return rng->NextInRange(1, max_multiplicity);
}

}  // namespace

GraphDb RandomGraphDb(Rng* rng, int num_nodes, int num_facts,
                      const std::vector<char>& labels,
                      Capacity max_multiplicity) {
  RPQRES_CHECK(num_nodes > 0);
  RPQRES_CHECK(!labels.empty());
  GraphDb db;
  for (int i = 0; i < num_nodes; ++i) db.AddNode();
  for (int i = 0; i < num_facts; ++i) {
    NodeId u = static_cast<NodeId>(rng->NextBelow(num_nodes));
    NodeId v = static_cast<NodeId>(rng->NextBelow(num_nodes));
    char label = labels[rng->NextBelow(labels.size())];
    db.AddFact(u, label, v, DrawMultiplicity(rng, max_multiplicity));
  }
  return db;
}

GraphDb LayeredFlowDb(Rng* rng, int sources, int layers, int width,
                      int sinks, double density, Capacity max_multiplicity) {
  RPQRES_CHECK(layers >= 1 && width >= 1 && sources >= 1 && sinks >= 1);
  GraphDb db;
  // Internal grid of `layers` columns of `width` nodes.
  std::vector<std::vector<NodeId>> grid(layers);
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      grid[l].push_back(
          db.AddNode("L" + std::to_string(l) + "_" + std::to_string(w)));
    }
  }
  // a-edges from fresh source stubs into the first layer.
  for (int i = 0; i < sources; ++i) {
    NodeId stub = db.AddNode("src" + std::to_string(i));
    NodeId entry = grid[0][rng->NextBelow(width)];
    db.AddFact(stub, 'a', entry, DrawMultiplicity(rng, max_multiplicity));
  }
  // x-edges between consecutive layers; guarantee at least one per column.
  for (int l = 0; l + 1 < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      NodeId from = grid[l][w];
      bool added = false;
      for (int w2 = 0; w2 < width; ++w2) {
        if (rng->NextDouble() < density) {
          db.AddFact(from, 'x', grid[l + 1][w2],
                     DrawMultiplicity(rng, max_multiplicity));
          added = true;
        }
      }
      if (!added) {
        db.AddFact(from, 'x', grid[l + 1][rng->NextBelow(width)],
                   DrawMultiplicity(rng, max_multiplicity));
      }
    }
  }
  // b-edges from the last layer to fresh sink stubs.
  for (int i = 0; i < sinks; ++i) {
    NodeId exit = grid[layers - 1][rng->NextBelow(width)];
    NodeId stub = db.AddNode("snk" + std::to_string(i));
    db.AddFact(exit, 'b', stub, DrawMultiplicity(rng, max_multiplicity));
  }
  return db;
}

GraphDb PathDb(const std::string& word) {
  GraphDb db;
  NodeId prev = db.AddNode();
  for (char c : word) {
    NodeId next = db.AddNode();
    db.AddFact(prev, c, next);
    prev = next;
  }
  return db;
}

GraphDb WordSoupDb(Rng* rng, const std::vector<std::string>& words,
                   int count, const std::vector<char>& extra_labels,
                   int cross_links, Capacity max_multiplicity) {
  RPQRES_CHECK(!words.empty());
  GraphDb db;
  for (int i = 0; i < count; ++i) {
    const std::string& word = words[rng->NextBelow(words.size())];
    NodeId prev = db.AddNode();
    for (char c : word) {
      NodeId next = db.AddNode();
      db.AddFact(prev, c, next, DrawMultiplicity(rng, max_multiplicity));
      prev = next;
    }
  }
  if (db.num_nodes() > 0 && !extra_labels.empty()) {
    for (int i = 0; i < cross_links; ++i) {
      NodeId u = static_cast<NodeId>(rng->NextBelow(db.num_nodes()));
      NodeId v = static_cast<NodeId>(rng->NextBelow(db.num_nodes()));
      char label = extra_labels[rng->NextBelow(extra_labels.size())];
      db.AddFact(u, label, v, DrawMultiplicity(rng, max_multiplicity));
    }
  }
  return db;
}

GraphDb DanglingPairsDb(Rng* rng, int num_nodes, int base_facts,
                        const std::vector<char>& base_labels, char x, char y,
                        int pair_count, Capacity max_multiplicity) {
  RPQRES_CHECK(num_nodes > 0);
  GraphDb db;
  for (int i = 0; i < num_nodes; ++i) db.AddNode();
  for (int i = 0; i < base_facts; ++i) {
    NodeId u = static_cast<NodeId>(rng->NextBelow(num_nodes));
    NodeId v = static_cast<NodeId>(rng->NextBelow(num_nodes));
    char label = base_labels[rng->NextBelow(base_labels.size())];
    db.AddFact(u, label, v, DrawMultiplicity(rng, max_multiplicity));
  }
  for (int i = 0; i < pair_count; ++i) {
    // x into a shared middle node, y out of it; endpoints may be shared
    // with the base part, creating interaction between {xy} and the base
    // language matches.
    NodeId u = static_cast<NodeId>(rng->NextBelow(num_nodes));
    NodeId mid = static_cast<NodeId>(rng->NextBelow(num_nodes));
    NodeId w = static_cast<NodeId>(rng->NextBelow(num_nodes));
    db.AddFact(u, x, mid, DrawMultiplicity(rng, max_multiplicity));
    db.AddFact(mid, y, w, DrawMultiplicity(rng, max_multiplicity));
  }
  return db;
}

GraphDb RandomChainDb(Rng* rng, int length, const std::vector<char>& labels,
                      Capacity max_multiplicity) {
  RPQRES_CHECK(length >= 0);
  RPQRES_CHECK(!labels.empty());
  GraphDb db;
  NodeId prev = db.AddNode();
  for (int i = 0; i < length; ++i) {
    NodeId next = db.AddNode();
    db.AddFact(prev, labels[rng->NextBelow(labels.size())], next,
               DrawMultiplicity(rng, max_multiplicity));
    prev = next;
  }
  return db;
}

GraphDb CycleDb(Rng* rng, int length, const std::vector<char>& labels,
                Capacity max_multiplicity) {
  RPQRES_CHECK(length >= 1);
  RPQRES_CHECK(!labels.empty());
  GraphDb db;
  NodeId first = db.AddNode();
  NodeId prev = first;
  for (int i = 1; i < length; ++i) {
    NodeId next = db.AddNode();
    db.AddFact(prev, labels[rng->NextBelow(labels.size())], next,
               DrawMultiplicity(rng, max_multiplicity));
    prev = next;
  }
  db.AddFact(prev, labels[rng->NextBelow(labels.size())], first,
             DrawMultiplicity(rng, max_multiplicity));
  return db;
}

GraphDb GridDb(Rng* rng, int rows, int cols, const std::vector<char>& labels,
               Capacity max_multiplicity) {
  RPQRES_CHECK(rows >= 1 && cols >= 1);
  RPQRES_CHECK(!labels.empty());
  GraphDb db;
  std::vector<NodeId> nodes(static_cast<size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      nodes[r * cols + c] =
          db.AddNode("g" + std::to_string(r) + "_" + std::to_string(c));
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        db.AddFact(nodes[r * cols + c], labels[rng->NextBelow(labels.size())],
                   nodes[r * cols + c + 1],
                   DrawMultiplicity(rng, max_multiplicity));
      }
      if (r + 1 < rows) {
        db.AddFact(nodes[r * cols + c], labels[rng->NextBelow(labels.size())],
                   nodes[(r + 1) * cols + c],
                   DrawMultiplicity(rng, max_multiplicity));
      }
    }
  }
  return db;
}

GraphDb DagLayersDb(Rng* rng, int layers, int width, double density,
                    const std::vector<char>& labels,
                    Capacity max_multiplicity) {
  RPQRES_CHECK(layers >= 1 && width >= 1);
  RPQRES_CHECK(!labels.empty());
  GraphDb db;
  std::vector<std::vector<NodeId>> grid(layers);
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      grid[l].push_back(
          db.AddNode("d" + std::to_string(l) + "_" + std::to_string(w)));
    }
  }
  for (int l = 0; l + 1 < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      bool added = false;
      for (int w2 = 0; w2 < width; ++w2) {
        if (rng->NextDouble() < density) {
          db.AddFact(grid[l][w], labels[rng->NextBelow(labels.size())],
                     grid[l + 1][w2], DrawMultiplicity(rng, max_multiplicity));
          added = true;
        }
      }
      if (!added) {
        db.AddFact(grid[l][w], labels[rng->NextBelow(labels.size())],
                   grid[l + 1][rng->NextBelow(width)],
                   DrawMultiplicity(rng, max_multiplicity));
      }
    }
  }
  return db;
}

GraphDb ScaleFreeDb(Rng* rng, int num_nodes, int edges_per_node,
                    const std::vector<char>& labels,
                    Capacity max_multiplicity) {
  RPQRES_CHECK(num_nodes >= 1 && edges_per_node >= 1);
  RPQRES_CHECK(!labels.empty());
  GraphDb db;
  // Target pool: each node appears once per incoming edge plus once
  // unconditionally, so draws are proportional to in-degree + 1.
  std::vector<NodeId> pool;
  for (int i = 0; i < num_nodes; ++i) {
    NodeId node = db.AddNode();
    if (i > 0) {
      for (int e = 0; e < edges_per_node; ++e) {
        NodeId target = pool[rng->NextBelow(pool.size())];
        db.AddFact(node, labels[rng->NextBelow(labels.size())], target,
                   DrawMultiplicity(rng, max_multiplicity));
        pool.push_back(target);
      }
    }
    pool.push_back(node);
  }
  return db;
}

GraphDb KroneckerDb(Rng* rng, int iterations, int num_facts,
                    const std::vector<char>& labels,
                    Capacity max_multiplicity) {
  RPQRES_CHECK(iterations >= 1 && iterations < 31);
  RPQRES_CHECK(!labels.empty());
  GraphDb db;
  int num_nodes = 1 << iterations;
  for (int i = 0; i < num_nodes; ++i) db.AddNode();
  for (int i = 0; i < num_facts; ++i) {
    NodeId u = 0;
    NodeId v = 0;
    for (int level = 0; level < iterations; ++level) {
      double p = rng->NextDouble();
      // R-MAT quadrant probabilities (a, b, c, d) = (.57, .19, .19, .05).
      int quadrant = p < 0.57 ? 0 : p < 0.76 ? 1 : p < 0.95 ? 2 : 3;
      u = (u << 1) | (quadrant >> 1);
      v = (v << 1) | (quadrant & 1);
    }
    db.AddFact(u, labels[rng->NextBelow(labels.size())], v,
               DrawMultiplicity(rng, max_multiplicity));
  }
  return db;
}

}  // namespace rpqres
