// rpqres — graphdb/generators: synthetic workload generators.
//
// The paper has no datasets (it is a theory paper); these generators build
// the database families its algorithms exercise: random labeled graphs,
// layered source/sink networks for the ax*b ≡ MinCut connection, chain
// instances for BCLs, and dangling-pair instances for Prp 7.9
// (substitution documented in DESIGN.md §4).

#ifndef RPQRES_GRAPHDB_GENERATORS_H_
#define RPQRES_GRAPHDB_GENERATORS_H_

#include <string>
#include <vector>

#include "graphdb/graph_db.h"
#include "util/rng.h"

namespace rpqres {

/// Uniform random graph database: `num_facts` facts drawn uniformly over
/// node pairs and `labels`, with multiplicities in [1, max_multiplicity].
GraphDb RandomGraphDb(Rng* rng, int num_nodes, int num_facts,
                      const std::vector<char>& labels,
                      Capacity max_multiplicity = 1);

/// A layered flow-style network for the intro's MinCut ≡ RES(ax*b)
/// correspondence: `sources` a-labeled source edges, `layers` of `width`
/// internal nodes joined by x-labeled edges (density in [0,1]), and
/// `sinks` b-labeled sink edges. Randomized wiring, always solvable.
GraphDb LayeredFlowDb(Rng* rng, int sources, int layers, int width,
                      int sinks, double density,
                      Capacity max_multiplicity = 1);

/// A single directed path labeled by `word` starting at a fresh node.
GraphDb PathDb(const std::string& word);

/// Disjoint union of `count` paths, each labeled by a word drawn from
/// `words`, with random cross-links between path nodes labeled by random
/// letters from `extra_labels` (may create more matches).
GraphDb WordSoupDb(Rng* rng, const std::vector<std::string>& words,
                   int count, const std::vector<char>& extra_labels,
                   int cross_links, Capacity max_multiplicity = 1);

/// Instance family for one-dangling languages: a random base-language part
/// over `base_labels` plus `pair_count` x/y dangling pairs sharing middle
/// nodes with the base part.
GraphDb DanglingPairsDb(Rng* rng, int num_nodes, int base_facts,
                        const std::vector<char>& base_labels, char x, char y,
                        int pair_count, Capacity max_multiplicity = 1);

/// A single directed chain of `length` facts with labels drawn uniformly
/// from `labels` (the random-label generalization of PathDb).
GraphDb RandomChainDb(Rng* rng, int length, const std::vector<char>& labels,
                      Capacity max_multiplicity = 1);

/// A directed cycle of `length` facts with labels drawn uniformly from
/// `labels`. Cycles are where set and bag semantics, and walk- vs
/// match-based solvers, diverge most readily (walks may wind).
GraphDb CycleDb(Rng* rng, int length, const std::vector<char>& labels,
                Capacity max_multiplicity = 1);

/// A `rows` x `cols` grid with right- and down-edges, labels drawn
/// uniformly from `labels`.
GraphDb GridDb(Rng* rng, int rows, int cols, const std::vector<char>& labels,
               Capacity max_multiplicity = 1);

/// A layered DAG: `layers` columns of `width` nodes, edges only between
/// consecutive columns with probability `density` (at least one out-edge
/// per non-final node), labels drawn uniformly from `labels`. Unlike
/// LayeredFlowDb there are no a/b source/sink stubs — all labels random.
GraphDb DagLayersDb(Rng* rng, int layers, int width, double density,
                    const std::vector<char>& labels,
                    Capacity max_multiplicity = 1);

/// A scale-free graph by preferential attachment: nodes join one at a
/// time, each adding `edges_per_node` out-edges whose targets are drawn
/// proportional to in-degree + 1. Labels drawn uniformly from `labels`.
GraphDb ScaleFreeDb(Rng* rng, int num_nodes, int edges_per_node,
                    const std::vector<char>& labels,
                    Capacity max_multiplicity = 1);

/// A stochastic-Kronecker (R-MAT) graph over 2^`iterations` nodes:
/// `num_facts` edges sampled by recursive quadrant descent with the
/// classic (0.57, 0.19, 0.19, 0.05) initiator, labels drawn uniformly
/// from `labels`. Skewed degrees, a natural heavy-hub stress family.
GraphDb KroneckerDb(Rng* rng, int iterations, int num_facts,
                    const std::vector<char>& labels,
                    Capacity max_multiplicity = 1);

}  // namespace rpqres

#endif  // RPQRES_GRAPHDB_GENERATORS_H_
