// rpqres — graphdb/serialization: a line-oriented text format for graph
// databases, for saving instances from examples/benches and loading them
// back (or editing them by hand).
//
// Format (one fact per line, '#' comments, blank lines ignored):
//   <source> <label> <target> [multiplicity] [exo]
//   node <name>
// Node names are arbitrary whitespace-free tokens; labels are single
// characters; the optional trailing "exo" marks the fact exogenous. A
// "node <name>" line declares a node with no incident facts, so the full
// node set round-trips byte-identically (generator outputs can contain
// isolated nodes).

#ifndef RPQRES_GRAPHDB_SERIALIZATION_H_
#define RPQRES_GRAPHDB_SERIALIZATION_H_

#include <string>

#include "graphdb/graph_db.h"
#include "util/status.h"

namespace rpqres {

/// Renders `db` in the text format (round-trips through ParseGraphDb).
std::string SerializeGraphDb(const GraphDb& db);

/// Parses the text format; InvalidArgument with a line number on errors.
Result<GraphDb> ParseGraphDb(const std::string& text);

}  // namespace rpqres

#endif  // RPQRES_GRAPHDB_SERIALIZATION_H_
