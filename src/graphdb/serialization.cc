#include "graphdb/serialization.h"

#include <sstream>

#include "util/strings.h"

namespace rpqres {

std::string SerializeGraphDb(const GraphDb& db) {
  std::ostringstream os;
  os << "# rpqres graph database: " << db.num_nodes() << " nodes, "
     << db.num_live_facts() << " facts\n";
  // Isolated nodes carry no fact line; declare them explicitly so the
  // node set (and the header count) round-trips. Live views make this
  // (and the fact listing below) identical for a versioned overlay and
  // its compacted flat twin — the byte-equality the delta-equivalence
  // suite pins down.
  for (NodeId v = 0; v < db.num_nodes(); ++v) {
    if (db.OutFactsLive(v).empty() && db.InFactsLive(v).empty()) {
      os << "node " << db.node_name(v) << "\n";
    }
  }
  for (FactId f = 0; f < db.num_facts(); ++f) {
    if (!db.IsLive(f)) continue;
    const Fact& fact = db.fact(f);
    os << db.node_name(fact.source) << " " << fact.label << " "
       << db.node_name(fact.target);
    if (db.multiplicity(f) != 1 || db.IsExogenous(f)) {
      os << " " << db.multiplicity(f);
    }
    if (db.IsExogenous(f)) os << " exo";
    os << "\n";
  }
  return os.str();
}

Result<GraphDb> ParseGraphDb(const std::string& text) {
  GraphDb db;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  auto error = [&line_number](const std::string& message) {
    return Status::InvalidArgument("graph db parse error at line " +
                                   std::to_string(line_number) + ": " +
                                   message);
  };
  while (std::getline(stream, line)) {
    ++line_number;
    // Strip comments.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream fields(line);
    std::string source, label, target;
    if (!(fields >> source)) continue;  // blank line
    // Isolated-node declaration: exactly "node <name>" (a fact line has
    // >= 3 tokens, so a node *named* "node" stays unambiguous).
    if (source == "node") {
      std::string name, extra;
      if ((fields >> name) && !(fields >> extra)) {
        db.GetOrAddNode(name);
        continue;
      }
      fields = std::istringstream(line);
      fields >> source;
    }
    if (!(fields >> label >> target)) {
      return error("expected '<source> <label> <target>'");
    }
    if (label.size() != 1) {
      return error("label must be a single character, got '" + label +
                   "'");
    }
    Capacity multiplicity = 1;
    bool exogenous = false;
    std::string token;
    if (fields >> token) {
      if (token == "exo") {
        exogenous = true;
      } else {
        try {
          multiplicity = std::stoll(token);
        } catch (...) {
          return error("bad multiplicity '" + token + "'");
        }
        if (multiplicity < 1) return error("multiplicity must be >= 1");
        if (fields >> token) {
          if (token != "exo") return error("unexpected token '" + token +
                                           "'");
          exogenous = true;
        }
      }
    }
    if (fields >> token) return error("unexpected token '" + token + "'");
    FactId id = db.AddFact(db.GetOrAddNode(source), label[0],
                           db.GetOrAddNode(target), multiplicity);
    if (exogenous) db.SetExogenous(id);
  }
  return db;
}

}  // namespace rpqres
