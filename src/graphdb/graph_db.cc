#include "graphdb/graph_db.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace rpqres {

NodeId GraphDb::AddNode() {
  return AddNode("n" + std::to_string(node_names_.size()));
}

NodeId GraphDb::AddNode(const std::string& name) {
  NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name);
  out_facts_.emplace_back();
  in_facts_.emplace_back();
  return id;
}

NodeId GraphDb::GetOrAddNode(const std::string& name) {
  auto it = nodes_by_name_.find(name);
  if (it != nodes_by_name_.end()) return it->second;
  NodeId id = AddNode(name);
  nodes_by_name_[name] = id;
  return id;
}

FactId GraphDb::AddFact(NodeId source, char label, NodeId target,
                        Capacity multiplicity) {
  RPQRES_DCHECK(source >= 0 && source < num_nodes());
  RPQRES_DCHECK(target >= 0 && target < num_nodes());
  RPQRES_CHECK_MSG(multiplicity >= 1, "fact multiplicity must be >= 1");
  auto key = std::make_tuple(source, label, target);
  auto it = fact_index_.find(key);
  if (it != fact_index_.end()) {
    multiplicities_[it->second] += multiplicity;
    return it->second;
  }
  FactId id = static_cast<FactId>(facts_.size());
  facts_.push_back(Fact{source, label, target});
  multiplicities_.push_back(multiplicity);
  exogenous_.push_back(false);
  out_facts_[source].push_back(id);
  in_facts_[target].push_back(id);
  fact_index_[key] = id;
  return id;
}

void GraphDb::SetExogenous(FactId id, bool exogenous) {
  RPQRES_DCHECK(id >= 0 && id < num_facts());
  exogenous_[id] = exogenous;
}

int GraphDb::NumExogenous() const {
  return static_cast<int>(
      std::count(exogenous_.begin(), exogenous_.end(), true));
}

FactId GraphDb::FindFact(NodeId source, char label, NodeId target) const {
  auto it = fact_index_.find(std::make_tuple(source, label, target));
  return it == fact_index_.end() ? -1 : it->second;
}

Capacity GraphDb::TotalCost(Semantics semantics) const {
  Capacity total = 0;
  for (FactId id = 0; id < num_facts(); ++id) {
    if (!exogenous_[id]) total += Cost(id, semantics);
  }
  return total;
}

std::vector<char> GraphDb::Labels() const {
  std::vector<char> labels;
  for (const Fact& f : facts_) labels.push_back(f.label);
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

GraphDb GraphDb::RemoveFacts(const std::vector<FactId>& fact_ids) const {
  std::vector<bool> removed(facts_.size(), false);
  for (FactId id : fact_ids) {
    RPQRES_DCHECK(id >= 0 && id < num_facts());
    removed[id] = true;
  }
  GraphDb out;
  for (const std::string& name : node_names_) out.AddNode(name);
  out.nodes_by_name_ = nodes_by_name_;
  for (FactId id = 0; id < num_facts(); ++id) {
    if (!removed[id]) {
      FactId copy = out.AddFact(facts_[id].source, facts_[id].label,
                                facts_[id].target, multiplicities_[id]);
      if (exogenous_[id]) out.SetExogenous(copy);
    }
  }
  return out;
}

GraphDb GraphDb::MirrorDb() const {
  GraphDb out;
  for (const std::string& name : node_names_) out.AddNode(name);
  out.nodes_by_name_ = nodes_by_name_;
  for (FactId id = 0; id < num_facts(); ++id) {
    FactId copy = out.AddFact(facts_[id].target, facts_[id].label,
                              facts_[id].source, multiplicities_[id]);
    if (exogenous_[id]) out.SetExogenous(copy);
  }
  return out;
}

std::string GraphDb::ToString() const {
  std::ostringstream os;
  for (FactId id = 0; id < num_facts(); ++id) {
    const Fact& f = facts_[id];
    os << node_names_[f.source] << " -" << f.label << "-> "
       << node_names_[f.target];
    if (multiplicities_[id] != 1) os << " [x" << multiplicities_[id] << "]";
    os << "\n";
  }
  return os.str();
}

}  // namespace rpqres
