#include "graphdb/graph_db.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace rpqres {

NodeId GraphDb::AddNode() {
  return AddNode("n" + std::to_string(num_nodes()));
}

NodeId GraphDb::AddNode(const std::string& name) {
  RPQRES_CHECK_MSG(mapped_ == nullptr,
                   "AddNode: mapped databases are immutable");
  NodeId id = static_cast<NodeId>(num_nodes());
  node_names_.push_back(name);
  if (base_ == nullptr) {
    out_facts_.emplace_back();
    in_facts_.emplace_back();
  }
  return id;
}

NodeId GraphDb::GetOrAddNode(const std::string& name) {
  if (base_ != nullptr) {
    auto base_it = base_->nodes_by_name_.find(name);
    if (base_it != base_->nodes_by_name_.end()) return base_it->second;
  }
  auto it = nodes_by_name_.find(name);
  if (it != nodes_by_name_.end()) return it->second;
  NodeId id = AddNode(name);
  nodes_by_name_[name] = id;
  return id;
}

bool GraphDb::LookupMultOverride(FactId id, Capacity* value) const {
  auto it = std::lower_bound(
      mult_override_.begin(), mult_override_.end(), id,
      [](const std::pair<FactId, Capacity>& entry, FactId key) {
        return entry.first < key;
      });
  if (it == mult_override_.end() || it->first != id) return false;
  *value = it->second;
  return true;
}

FactId GraphDb::AddFact(NodeId source, char label, NodeId target,
                        Capacity multiplicity) {
  RPQRES_DCHECK(source >= 0 && source < num_nodes());
  RPQRES_DCHECK(target >= 0 && target < num_nodes());
  RPQRES_CHECK_MSG(multiplicity >= 1, "fact multiplicity must be >= 1");
  RPQRES_CHECK_MSG(mapped_ == nullptr,
                   "AddFact: mapped databases are immutable");
  auto key = std::make_tuple(source, label, target);
  // Live-duplicate detection: overlay additions first, then the base
  // (a tombstoned base fact does NOT merge — a re-add is a new fact at
  // the end of the id space, matching what a from-scratch rebuild does).
  auto it = fact_index_.find(key);
  if (it != fact_index_.end()) {
    // fact_index_ only holds locally-stored facts (all facts of a flat
    // database, overlay additions of a versioned one), so the id is
    // always at or above the watermark.
    FactId id = it->second;
    multiplicities_[id - base_facts_] += multiplicity;
    return id;
  }
  if (base_ != nullptr) {
    FactId base_id = base_->FindFact(source, label, target);
    if (base_id >= 0 && IsLive(base_id)) {
      auto pos = std::lower_bound(
          mult_override_.begin(), mult_override_.end(), base_id,
          [](const std::pair<FactId, Capacity>& entry, FactId k) {
            return entry.first < k;
          });
      if (pos != mult_override_.end() && pos->first == base_id) {
        pos->second += multiplicity;
      } else {
        mult_override_.insert(
            pos, {base_id, base_->multiplicity(base_id) + multiplicity});
      }
      return base_id;
    }
  }
  FactId id = static_cast<FactId>(num_facts());
  facts_.push_back(Fact{source, label, target});
  multiplicities_.push_back(multiplicity);
  exogenous_.push_back(false);
  if (base_ == nullptr) {
    out_facts_[source].push_back(id);
    in_facts_[target].push_back(id);
  } else {
    overlay_out_[source].push_back(id);
    overlay_in_[target].push_back(id);
  }
  if (!dead_.empty()) dead_.push_back(0);
  fact_index_[key] = id;
  return id;
}

void GraphDb::SetExogenous(FactId id, bool exogenous) {
  RPQRES_DCHECK(id >= 0 && id < num_facts());
  RPQRES_CHECK_MSG(id >= base_facts_,
                   "SetExogenous: base facts of an overlay are immutable");
  RPQRES_CHECK_MSG(mapped_ == nullptr,
                   "SetExogenous: mapped databases are immutable");
  exogenous_[id - base_facts_] = exogenous;
}

int GraphDb::NumExogenous() const {
  int count = 0;
  for (FactId f = 0; f < num_facts(); ++f) {
    if (IsLive(f) && IsExogenous(f)) ++count;
  }
  return count;
}

FactId GraphDb::FindFact(NodeId source, char label, NodeId target) const {
  if (mapped_ != nullptr) {
    // No heap fact_index_ on a mapped database: binary search the
    // segment's (source, label, target)-sorted permutation instead.
    const FactId* first = mapped_->sorted_by_key;
    const FactId* last = first + mapped_->num_facts;
    const auto key = std::make_tuple(source, label, target);
    auto pos = std::lower_bound(
        first, last, key,
        [this](FactId id, const std::tuple<NodeId, char, NodeId>& k) {
          const Fact& f = mapped_->facts[id];
          return std::make_tuple(f.source, f.label, f.target) < k;
        });
    if (pos != last) {
      const Fact& f = mapped_->facts[*pos];
      if (f.source == source && f.label == label && f.target == target) {
        return *pos;
      }
    }
    return -1;
  }
  auto it = fact_index_.find(std::make_tuple(source, label, target));
  if (it != fact_index_.end()) {
    return IsLive(it->second) ? it->second : -1;
  }
  if (base_ != nullptr) {
    FactId base_id = base_->FindFact(source, label, target);
    if (base_id >= 0 && IsLive(base_id)) return base_id;
  }
  return -1;
}

Capacity GraphDb::TotalCost(Semantics semantics) const {
  Capacity total = 0;
  for (FactId id = 0; id < num_facts(); ++id) {
    if (IsLive(id) && !IsExogenous(id)) total += Cost(id, semantics);
  }
  return total;
}

std::vector<char> GraphDb::Labels() const {
  std::vector<char> labels;
  for (FactId f = 0; f < num_facts(); ++f) {
    if (IsLive(f)) labels.push_back(fact(f).label);
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return labels;
}

GraphDb GraphDb::MakeOverlay(std::shared_ptr<const GraphDb> parent) {
  RPQRES_CHECK_MSG(parent != nullptr, "MakeOverlay: null parent");
  GraphDb out;
  if (parent->base_ == nullptr) {
    out.base_ = std::move(parent);
  } else {
    // Same flat base; the parent's overlay is the starting point.
    const GraphDb& p = *parent;
    out.base_ = p.base_;
    out.node_names_ = p.node_names_;
    out.facts_ = p.facts_;
    out.multiplicities_ = p.multiplicities_;
    out.exogenous_ = p.exogenous_;
    out.nodes_by_name_ = p.nodes_by_name_;
    out.fact_index_ = p.fact_index_;
    out.num_dead_ = p.num_dead_;
    out.dead_ = p.dead_;
    out.mult_override_ = p.mult_override_;
    out.overlay_out_ = p.overlay_out_;
    out.overlay_in_ = p.overlay_in_;
  }
  out.base_nodes_ = out.base_->num_nodes();
  out.base_facts_ = out.base_->num_facts();
  return out;
}

Status GraphDb::RemoveFact(NodeId source, char label, NodeId target) {
  if (base_ == nullptr) {
    return Status::FailedPrecondition(
        "RemoveFact: only overlay databases support in-place removal "
        "(use RemoveFacts on a flat database)");
  }
  FactId id = FindFact(source, label, target);
  if (id < 0) {
    return Status::NotFound("RemoveFact: no live fact " +
                            std::to_string(source) + " -" + label + "-> " +
                            std::to_string(target));
  }
  if (dead_.empty()) dead_.assign(num_facts(), 0);
  dead_[id] = 1;
  ++num_dead_;
  if (id >= base_facts_) {
    fact_index_.erase(std::make_tuple(source, label, target));
  } else {
    // A dead base fact needs no override; drop it so a later re-add
    // starts from a clean slate.
    auto it = std::lower_bound(
        mult_override_.begin(), mult_override_.end(), id,
        [](const std::pair<FactId, Capacity>& entry, FactId key) {
          return entry.first < key;
        });
    if (it != mult_override_.end() && it->first == id) {
      mult_override_.erase(it);
    }
  }
  return Status::OK();
}

GraphDb GraphDb::Compact(std::vector<FactId>* old_id_of) const {
  GraphDb out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    out.AddNode(node_name(v));
  }
  out.nodes_by_name_ =
      base_ != nullptr ? base_->nodes_by_name_ : nodes_by_name_;
  if (base_ != nullptr) {
    for (const auto& [name, id] : nodes_by_name_) {
      out.nodes_by_name_.emplace(name, id);
    }
  }
  if (old_id_of != nullptr) {
    old_id_of->clear();
    old_id_of->reserve(num_live_facts());
  }
  for (FactId f = 0; f < num_facts(); ++f) {
    if (!IsLive(f)) continue;
    const Fact& fct = fact(f);
    FactId id =
        out.AddFact(fct.source, fct.label, fct.target, multiplicity(f));
    if (IsExogenous(f)) out.SetExogenous(id);
    if (old_id_of != nullptr) old_id_of->push_back(f);
  }
  return out;
}

std::pair<const FactId*, const FactId*> GraphDb::FlatIncidentRange(
    NodeId node, bool out) const {
  RPQRES_DCHECK(base_ == nullptr);
  if (mapped_ != nullptr) {
    const int32_t* offset = out ? mapped_->out_offset : mapped_->in_offset;
    const FactId* adj = out ? mapped_->out_adj : mapped_->in_adj;
    return {adj + offset[node], adj + offset[node + 1]};
  }
  const std::vector<FactId>& list = out ? out_facts_[node] : in_facts_[node];
  return {list.data(), list.data() + list.size()};
}

GraphDb GraphDb::FromMappedFlat(
    std::vector<std::string> node_names,
    std::shared_ptr<const MappedFlatStorage> storage) {
  RPQRES_CHECK_MSG(storage != nullptr, "FromMappedFlat: null storage");
  GraphDb out;
  out.node_names_ = std::move(node_names);
  out.mapped_ = std::move(storage);
  return out;
}

GraphDb::IncidentFacts GraphDb::IncidentView(NodeId node, bool out) const {
  const uint8_t* dead = dead_.empty() ? nullptr : dead_.data();
  const FactId* first = nullptr;
  const FactId* first_end = nullptr;
  if (base_ == nullptr) {
    std::tie(first, first_end) = FlatIncidentRange(node, out);
  } else if (node < base_nodes_) {
    std::tie(first, first_end) = base_->FlatIncidentRange(node, out);
  }
  if (first == first_end) {
    first = nullptr;
    first_end = nullptr;
  }
  const FactId* second = first_end;
  const FactId* second_end = first_end;
  if (base_ != nullptr) {
    const auto& overlay = out ? overlay_out_ : overlay_in_;
    auto it = overlay.find(node);
    if (it != overlay.end() && !it->second.empty()) {
      second = it->second.data();
      second_end = second + it->second.size();
    }
  }
  return IncidentFacts(dead, first, first_end, second, second_end);
}

GraphDb GraphDb::RemoveFacts(const std::vector<FactId>& fact_ids) const {
  RPQRES_CHECK_MSG(base_ == nullptr,
                   "RemoveFacts: Compact() an overlay database first");
  std::vector<bool> removed(num_facts(), false);
  for (FactId id : fact_ids) {
    RPQRES_DCHECK(id >= 0 && id < num_facts());
    removed[id] = true;
  }
  GraphDb out;
  for (NodeId v = 0; v < num_nodes(); ++v) out.AddNode(node_name(v));
  out.nodes_by_name_ = nodes_by_name_;
  for (FactId id = 0; id < num_facts(); ++id) {
    if (!removed[id]) {
      const Fact& f = fact(id);
      FactId copy = out.AddFact(f.source, f.label, f.target, multiplicity(id));
      if (IsExogenous(id)) out.SetExogenous(copy);
    }
  }
  return out;
}

GraphDb GraphDb::MirrorDb() const {
  RPQRES_CHECK_MSG(base_ == nullptr,
                   "MirrorDb: Compact() an overlay database first");
  GraphDb out;
  for (NodeId v = 0; v < num_nodes(); ++v) out.AddNode(node_name(v));
  out.nodes_by_name_ = nodes_by_name_;
  for (FactId id = 0; id < num_facts(); ++id) {
    const Fact& f = fact(id);
    FactId copy = out.AddFact(f.target, f.label, f.source, multiplicity(id));
    if (IsExogenous(id)) out.SetExogenous(copy);
  }
  return out;
}

std::string GraphDb::ToString() const {
  std::ostringstream os;
  for (FactId id = 0; id < num_facts(); ++id) {
    if (!IsLive(id)) continue;
    const Fact& f = fact(id);
    os << node_name(f.source) << " -" << f.label << "-> "
       << node_name(f.target);
    if (multiplicity(id) != 1) os << " [x" << multiplicity(id) << "]";
    os << "\n";
  }
  return os.str();
}

}  // namespace rpqres
