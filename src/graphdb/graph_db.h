// rpqres — graphdb/graph_db: graph databases (Section 2).
//
// A graph database D ⊆ V × Σ × V with single-character edge labels. Bag
// semantics attaches a positive int64 multiplicity to each fact (the
// deletion cost); set semantics is the special case where solvers treat
// every fact as cost 1 (paper, Section 2: RES_set reduces to RES_bag with
// unit multiplicities).
//
// Three physical layouts share this one type:
//
//  * Flat databases — the historical layout: dense node/fact arrays built
//    by AddNode/AddFact. Every mutator works, every fact id is live.
//  * Mapped flat databases (FromMappedFlat) — the same dense arrays, but
//    living in an externally owned mmap'ed segment (src/storage). Flat,
//    all-live, immutable; usable as an overlay base.
//  * Versioned overlays (DbRegistry v3 delta commits) — an immutable
//    shared *base* (a flat GraphDb held by shared_ptr) plus a private
//    overlay: appended nodes/facts, a tombstone bitmap over the combined
//    id space, and multiplicity overrides for base facts. Building an
//    overlay copies O(|overlay|) state, never the base, which is what
//    makes a delta commit scale with the delta.
//
// Fact ids stay dense over [0, num_facts()) in both layouts; in an
// overlay, tombstoned ids are *dead* — IsLive(id) is false and the id
// never appears in OutFactsLive/InFactsLive, a LabelIndex, a solver
// network, or a serialization. Code that indexes storage by fact id
// (cost arrays, removal masks) keeps working unchanged; code that
// *enumerates* facts must either use the live views or guard with
// IsLive. The legacy OutFacts/InFacts spans remain for flat databases
// only.

#ifndef RPQRES_GRAPHDB_GRAPH_DB_H_
#define RPQRES_GRAPHDB_GRAPH_DB_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "flow/capacity.h"
#include "util/status.h"

namespace rpqres {

using NodeId = int32_t;
using FactId = int32_t;

/// Whether fact multiplicities count as deletion costs (bag) or every fact
/// costs 1 (set).
enum class Semantics { kSet, kBag };

/// A fact v --label--> v'.
struct Fact {
  NodeId source = 0;
  char label = '\0';
  NodeId target = 0;

  bool operator==(const Fact& other) const = default;
};

/// Dense arrays of a flat database living in an externally owned buffer
/// (an mmap'ed segment). GraphDb::FromMappedFlat wraps one of these
/// without copying the arrays; `mapping` keeps the buffer alive for as
/// long as any GraphDb (or overlay over it) references them.
struct MappedFlatStorage {
  const Fact* facts = nullptr;                 // [num_facts]
  const Capacity* multiplicities = nullptr;    // [num_facts]
  const uint8_t* exogenous = nullptr;          // [num_facts], 0/1
  const int32_t* out_offset = nullptr;         // [num_nodes + 1] CSR
  const FactId* out_adj = nullptr;             // [num_facts]
  const int32_t* in_offset = nullptr;          // [num_nodes + 1] CSR
  const FactId* in_adj = nullptr;              // [num_facts]
  const FactId* sorted_by_key = nullptr;       // perm sorted by (s, l, t)
  int32_t num_facts = 0;
  std::shared_ptr<const void> mapping;
};

/// A graph database under set or bag semantics.
///
/// Nodes are dense integers with optional display names. Facts are a set:
/// adding an existing (source, label, target) triple accumulates its
/// multiplicity instead of duplicating the fact.
class GraphDb {
 public:
  GraphDb() = default;

  /// Adds an anonymous node.
  NodeId AddNode();
  /// Adds a named node (names are display-only and need not be unique,
  /// but GetOrAddNode gives name-keyed access).
  NodeId AddNode(const std::string& name);
  /// Returns the node with this name, creating it if absent.
  NodeId GetOrAddNode(const std::string& name);

  /// Adds a fact with the given multiplicity (>= 1); if the fact already
  /// exists (and is live) its multiplicity is increased. Returns the fact
  /// id. On an overlay, bumping a base fact records a multiplicity
  /// override; the fact keeps its id and position.
  FactId AddFact(NodeId source, char label, NodeId target,
                 Capacity multiplicity = 1);
  /// Fact id of the *live* (source, label, target), or -1.
  FactId FindFact(NodeId source, char label, NodeId target) const;

  /// Marks a fact as *exogenous*: it can never belong to a contingency set
  /// (the paper's Theorem 2.2 remark — equivalently, deletion cost +∞).
  /// On an overlay only facts added by the overlay may be toggled.
  void SetExogenous(FactId id, bool exogenous = true);
  bool IsExogenous(FactId id) const {
    if (id < base_facts_) return base_->IsExogenous(id);
    if (mapped_ != nullptr) return mapped_->exogenous[id] != 0;
    return exogenous_[id - base_facts_];
  }
  /// Number of live exogenous facts.
  int NumExogenous() const;

  int num_nodes() const {
    return base_nodes_ + static_cast<int>(node_names_.size());
  }
  /// Size of the fact id space, dead ids included. Use num_live_facts()
  /// for the logical fact count.
  int num_facts() const {
    if (mapped_ != nullptr) return mapped_->num_facts;
    return base_facts_ + static_cast<int>(facts_.size());
  }
  int num_live_facts() const { return num_facts() - num_dead_; }
  const Fact& fact(FactId id) const {
    if (id < base_facts_) return base_->fact(id);
    if (mapped_ != nullptr) return mapped_->facts[id];
    return facts_[id - base_facts_];
  }
  Capacity multiplicity(FactId id) const {
    if (id >= base_facts_) {
      return mapped_ != nullptr ? mapped_->multiplicities[id]
                                : multiplicities_[id - base_facts_];
    }
    if (!mult_override_.empty()) {
      Capacity override_value;
      if (LookupMultOverride(id, &override_value)) return override_value;
    }
    return base_->multiplicity(id);
  }
  /// Deletion cost of a fact under the given semantics
  /// (kInfiniteCapacity for exogenous facts).
  Capacity Cost(FactId id, Semantics semantics) const {
    if (IsExogenous(id)) return kInfiniteCapacity;
    return semantics == Semantics::kSet ? 1 : multiplicity(id);
  }
  /// Sum of costs of all live *endogenous* facts (the cost of deleting
  /// everything deletable).
  Capacity TotalCost(Semantics semantics) const;

  const std::string& node_name(NodeId id) const {
    return id < base_nodes_ ? base_->node_names_[id]
                            : node_names_[id - base_nodes_];
  }

  /// Fact ids whose source is `node`. Flat databases only (an overlay has
  /// no single contiguous per-node list) — use OutFactsLive there. On a
  /// mapped database the span points into the mmap'ed CSR arrays.
  std::span<const FactId> OutFacts(NodeId node) const {
    auto [first, last] = FlatIncidentRange(node, /*out=*/true);
    return {first, static_cast<size_t>(last - first)};
  }
  /// Fact ids whose target is `node`. Flat databases only.
  std::span<const FactId> InFacts(NodeId node) const {
    auto [first, last] = FlatIncidentRange(node, /*out=*/false);
    return {first, static_cast<size_t>(last - first)};
  }

  // --- versioned overlays ---------------------------------------------------

  /// True when this database is a copy-on-write overlay over a shared
  /// immutable base.
  bool is_versioned() const { return base_ != nullptr; }
  /// True when the dense fact arrays live in an external (mmap'ed)
  /// buffer. A mapped database is flat, all-live, and immutable: every
  /// mutator CHECK-fails. It can serve as an overlay base like any other
  /// flat database.
  bool is_mapped() const { return mapped_ != nullptr; }

  /// Wraps externally owned flat arrays (an mmap'ed segment) as a
  /// read-only flat database. Node names are the only materialized state;
  /// the fact arrays are used in place. `storage.mapping` must keep the
  /// bytes alive.
  static GraphDb FromMappedFlat(std::vector<std::string> node_names,
                                std::shared_ptr<const MappedFlatStorage> storage);
  /// False iff `id` is tombstoned. Flat databases are all-live.
  bool IsLive(FactId id) const { return dead_.empty() || !dead_[id]; }
  /// Facts the overlay added or tombstoned on top of its base — the size
  /// the registry's compaction threshold watches. 0 for flat databases.
  int64_t overlay_size() const {
    if (base_ == nullptr) return 0;
    return static_cast<int64_t>(facts_.size()) + num_dead_;
  }
  /// The base fact-id watermark: ids below it resolve into the shared
  /// base, ids at or above it into the overlay. 0 for flat databases.
  FactId base_fact_watermark() const { return base_facts_; }

  /// Starts a copy-on-write overlay on top of `parent`. When `parent` is
  /// itself an overlay the new database shares the same flat base and
  /// copies the parent's overlay (O(|overlay|)); the base is never
  /// copied. `parent` must outlive nothing — the overlay keeps it alive.
  static GraphDb MakeOverlay(std::shared_ptr<const GraphDb> parent);

  /// Tombstones the live fact (source, label, target). Overlay databases
  /// only; NotFound when no such live fact exists. The id space is
  /// unchanged — the id simply goes dead.
  Status RemoveFact(NodeId source, char label, NodeId target);

  /// A flat materialization: live facts renumbered densely (order
  /// preserved), every node kept. When `old_id_of` is non-null it is
  /// filled so old_id_of[new_id] maps back into this database's id space
  /// (for translating witness contingency sets).
  GraphDb Compact(std::vector<FactId>* old_id_of = nullptr) const;

  /// Iterable view over the *live* facts incident to one node: the base
  /// facts (tombstones filtered) chained with the overlay's additions.
  /// On a flat database this degenerates to the plain per-node list.
  class IncidentFacts {
   public:
    class iterator {
     public:
      FactId operator*() const { return *pos_; }
      iterator& operator++() {
        ++pos_;
        Settle();
        return *this;
      }
      bool operator!=(const iterator& other) const {
        return pos_ != other.pos_;
      }
      bool operator==(const iterator& other) const {
        return pos_ == other.pos_;
      }

     private:
      friend class IncidentFacts;
      iterator(const uint8_t* dead, const FactId* pos, const FactId* seg_end,
               const FactId* next, const FactId* next_end)
          : dead_(dead), pos_(pos), seg_end_(seg_end), next_(next),
            next_end_(next_end) {
        Settle();
      }
      void Settle() {
        for (;;) {
          if (pos_ == seg_end_) {
            if (next_ == nullptr || pos_ == next_end_) return;
            pos_ = next_;
            seg_end_ = next_end_;
            next_ = nullptr;
            continue;
          }
          if (dead_ == nullptr || !dead_[*pos_]) return;
          ++pos_;
        }
      }
      const uint8_t* dead_;
      const FactId* pos_;
      const FactId* seg_end_;
      const FactId* next_;
      const FactId* next_end_;
    };

    iterator begin() const {
      return iterator(dead_, first_, first_end_, second_, second_end_);
    }
    iterator end() const {
      return iterator(nullptr, second_end_, second_end_, nullptr,
                      second_end_);
    }
    bool empty() const { return !(begin() != end()); }

   private:
    friend class GraphDb;
    IncidentFacts(const uint8_t* dead, const FactId* first,
                  const FactId* first_end, const FactId* second,
                  const FactId* second_end)
        : dead_(dead), first_(first), first_end_(first_end), second_(second),
          second_end_(second_end) {}
    const uint8_t* dead_;
    const FactId* first_;
    const FactId* first_end_;
    const FactId* second_;
    const FactId* second_end_;
  };

  /// Live facts out of / into `node`, in ascending id order. Works for
  /// both layouts; on flat databases this is as cheap as OutFacts.
  IncidentFacts OutFactsLive(NodeId node) const {
    return IncidentView(node, /*out=*/true);
  }
  IncidentFacts InFactsLive(NodeId node) const {
    return IncidentView(node, /*out=*/false);
  }

  // --------------------------------------------------------------------------

  /// Edge labels present among live facts, sorted, deduplicated.
  std::vector<char> Labels() const;

  /// Copy of this database without the given facts (node set unchanged).
  /// Flat databases only; an overlay should Compact() first.
  GraphDb RemoveFacts(const std::vector<FactId>& fact_ids) const;

  /// Copy with every edge reversed (the database mirror of Prp 6.3). Fact
  /// ids are preserved: fact i of the mirror is fact i reversed. Flat
  /// databases only.
  GraphDb MirrorDb() const;

  /// Human-readable listing ("u -a-> v [x3]").
  std::string ToString() const;

 private:
  IncidentFacts IncidentView(NodeId node, bool out) const;
  bool LookupMultOverride(FactId id, Capacity* value) const;
  /// [first, last) of the per-node fact list of a *flat* database (heap
  /// vectors or mapped CSR). Not valid on overlays.
  std::pair<const FactId*, const FactId*> FlatIncidentRange(NodeId node,
                                                            bool out) const;

  // Flat storage — for an overlay these hold the overlay's own nodes and
  // facts only; ids are offset by base_nodes_ / base_facts_.
  std::vector<std::string> node_names_;
  std::vector<Fact> facts_;
  std::vector<Capacity> multiplicities_;
  std::vector<bool> exogenous_;
  std::vector<std::vector<FactId>> out_facts_;  // flat layout only
  std::vector<std::vector<FactId>> in_facts_;   // flat layout only
  std::map<std::string, NodeId> nodes_by_name_;
  std::map<std::tuple<NodeId, char, NodeId>, FactId> fact_index_;

  // Mapped storage (null unless built by FromMappedFlat). When set the
  // database is flat and facts_/multiplicities_/exogenous_/out_facts_/
  // in_facts_/fact_index_ stay empty; node_names_ holds the dictionary.
  std::shared_ptr<const MappedFlatStorage> mapped_;

  // Overlay state (empty for flat databases).
  std::shared_ptr<const GraphDb> base_;  // flat; shared between versions
  int32_t base_nodes_ = 0;
  int32_t base_facts_ = 0;
  int32_t num_dead_ = 0;
  /// Tombstone bitmap over [0, num_facts()); allocated on first removal.
  std::vector<uint8_t> dead_;
  /// Multiplicity overrides for base facts (AddFact bumps), sorted by id.
  std::vector<std::pair<FactId, Capacity>> mult_override_;
  /// Overlay adjacency: facts added on top of the base, keyed by incident
  /// node (base or overlay). Flat databases use out_facts_/in_facts_.
  std::map<NodeId, std::vector<FactId>> overlay_out_;
  std::map<NodeId, std::vector<FactId>> overlay_in_;
};

}  // namespace rpqres

#endif  // RPQRES_GRAPHDB_GRAPH_DB_H_
