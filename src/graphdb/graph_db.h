// rpqres — graphdb/graph_db: graph databases (Section 2).
//
// A graph database D ⊆ V × Σ × V with single-character edge labels. Bag
// semantics attaches a positive int64 multiplicity to each fact (the
// deletion cost); set semantics is the special case where solvers treat
// every fact as cost 1 (paper, Section 2: RES_set reduces to RES_bag with
// unit multiplicities).

#ifndef RPQRES_GRAPHDB_GRAPH_DB_H_
#define RPQRES_GRAPHDB_GRAPH_DB_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "flow/capacity.h"
#include "util/status.h"

namespace rpqres {

using NodeId = int32_t;
using FactId = int32_t;

/// Whether fact multiplicities count as deletion costs (bag) or every fact
/// costs 1 (set).
enum class Semantics { kSet, kBag };

/// A fact v --label--> v'.
struct Fact {
  NodeId source = 0;
  char label = '\0';
  NodeId target = 0;

  bool operator==(const Fact& other) const = default;
};

/// A graph database under set or bag semantics.
///
/// Nodes are dense integers with optional display names. Facts are a set:
/// adding an existing (source, label, target) triple accumulates its
/// multiplicity instead of duplicating the fact.
class GraphDb {
 public:
  GraphDb() = default;

  /// Adds an anonymous node.
  NodeId AddNode();
  /// Adds a named node (names are display-only and need not be unique,
  /// but GetOrAddNode gives name-keyed access).
  NodeId AddNode(const std::string& name);
  /// Returns the node with this name, creating it if absent.
  NodeId GetOrAddNode(const std::string& name);

  /// Adds a fact with the given multiplicity (>= 1); if the fact already
  /// exists its multiplicity is increased. Returns the fact id.
  FactId AddFact(NodeId source, char label, NodeId target,
                 Capacity multiplicity = 1);
  /// Fact id of (source, label, target), or -1.
  FactId FindFact(NodeId source, char label, NodeId target) const;

  /// Marks a fact as *exogenous*: it can never belong to a contingency set
  /// (the paper's Theorem 2.2 remark — equivalently, deletion cost +∞).
  void SetExogenous(FactId id, bool exogenous = true);
  bool IsExogenous(FactId id) const { return exogenous_[id]; }
  /// Number of exogenous facts.
  int NumExogenous() const;

  int num_nodes() const { return static_cast<int>(node_names_.size()); }
  int num_facts() const { return static_cast<int>(facts_.size()); }
  const std::vector<Fact>& facts() const { return facts_; }
  const Fact& fact(FactId id) const { return facts_[id]; }
  Capacity multiplicity(FactId id) const { return multiplicities_[id]; }
  /// Deletion cost of a fact under the given semantics
  /// (kInfiniteCapacity for exogenous facts).
  Capacity Cost(FactId id, Semantics semantics) const {
    if (exogenous_[id]) return kInfiniteCapacity;
    return semantics == Semantics::kSet ? 1 : multiplicities_[id];
  }
  /// Sum of costs of all *endogenous* facts (the cost of deleting
  /// everything deletable).
  Capacity TotalCost(Semantics semantics) const;

  const std::string& node_name(NodeId id) const { return node_names_[id]; }

  /// Fact ids whose source is `node`.
  const std::vector<FactId>& OutFacts(NodeId node) const {
    return out_facts_[node];
  }
  /// Fact ids whose target is `node`.
  const std::vector<FactId>& InFacts(NodeId node) const {
    return in_facts_[node];
  }

  /// Edge labels present in the database, sorted, deduplicated.
  std::vector<char> Labels() const;

  /// Copy of this database without the given facts (node set unchanged).
  GraphDb RemoveFacts(const std::vector<FactId>& fact_ids) const;

  /// Copy with every edge reversed (the database mirror of Prp 6.3). Fact
  /// ids are preserved: fact i of the mirror is fact i reversed.
  GraphDb MirrorDb() const;

  /// Human-readable listing ("u -a-> v [x3]").
  std::string ToString() const;

 private:
  std::vector<std::string> node_names_;
  std::vector<Fact> facts_;
  std::vector<Capacity> multiplicities_;
  std::vector<bool> exogenous_;
  std::vector<std::vector<FactId>> out_facts_;
  std::vector<std::vector<FactId>> in_facts_;
  std::map<std::string, NodeId> nodes_by_name_;
  std::map<std::tuple<NodeId, char, NodeId>, FactId> fact_index_;
};

}  // namespace rpqres

#endif  // RPQRES_GRAPHDB_GRAPH_DB_H_
