// rpqres — graphdb/rpq_eval: Boolean RPQ evaluation Q_L(D) and witness-walk
// extraction, via the standard product construction (database × automaton)
// plus reachability (paper cites [Mendelzon & Wood, Lemma 3.1]).

#ifndef RPQRES_GRAPHDB_RPQ_EVAL_H_
#define RPQRES_GRAPHDB_RPQ_EVAL_H_

#include <optional>
#include <vector>

#include "automata/enfa.h"
#include "graphdb/graph_db.h"
#include "lang/language.h"

namespace rpqres {

/// A witness walk: the fact ids of an L-walk, in walk order (a fact may
/// repeat). Empty when ε ∈ L (the query holds vacuously).
using WitnessWalk = std::vector<FactId>;

/// True iff D contains an L(A)-walk (i.e. Q_L(D) = 1). O(|A|·|D|).
/// If `removed_facts` is given, facts with removed_facts[id] == true are
/// treated as deleted (used by the exact branch-and-bound solver to avoid
/// copying the database at every node).
bool EvaluatesToTrue(const GraphDb& db, const Enfa& query,
                     const std::vector<bool>* removed_facts = nullptr);
bool EvaluatesToTrue(const GraphDb& db, const Language& lang);

/// A shortest witness walk (fewest facts, counting repetitions), or nullopt
/// when Q does not hold. The empty walk is returned iff ε ∈ L.
std::optional<WitnessWalk> ShortestWitnessWalk(
    const GraphDb& db, const Enfa& query,
    const std::vector<bool>* removed_facts = nullptr);
std::optional<WitnessWalk> ShortestWitnessWalk(const GraphDb& db,
                                               const Language& lang);

/// Fixed-endpoint variant (the non-Boolean RPQ setting of Section 8):
/// true iff D contains an L(A)-walk from `source` to `target`. The empty
/// walk counts iff ε ∈ L and source == target.
bool EvaluatesToTrueBetween(const GraphDb& db, const Enfa& query,
                            NodeId source, NodeId target,
                            const std::vector<bool>* removed_facts = nullptr);

/// The word labeling a witness walk.
std::string WalkLabel(const GraphDb& db, const WitnessWalk& walk);

/// Distinct facts of a walk, sorted (the *match* of Def 4.7 defined by it).
std::vector<FactId> WalkMatch(const WitnessWalk& walk);

}  // namespace rpqres

#endif  // RPQRES_GRAPHDB_RPQ_EVAL_H_
