// rpqres — graphdb/label_index: precomputed per-label fact adjacency.
//
// Flow-network construction (Thm 3.13 and friends) visits exactly the
// facts whose label occurs in the query language; a GraphDb only offers
// the full fact array, so every solve re-scans all facts and filters by
// label. A LabelIndex is built once per immutable database snapshot (the
// DbRegistry does this at Register time) and shared by every query
// against that snapshot: solvers iterate the per-label fact lists
// directly, skipping inert facts without touching them.

#ifndef RPQRES_GRAPHDB_LABEL_INDEX_H_
#define RPQRES_GRAPHDB_LABEL_INDEX_H_

#include <array>
#include <cstdint>
#include <vector>

#include "graphdb/graph_db.h"

namespace rpqres {

/// Immutable per-label fact lists for one database. Fact ids within a
/// label are ascending. The index holds fact *ids*, not copies; it is
/// only meaningful alongside the GraphDb it was built from (the
/// DbRegistry snapshot keeps the two paired).
class LabelIndex {
 public:
  LabelIndex() = default;
  explicit LabelIndex(const GraphDb& db);

  /// Fact ids carrying `label`, ascending; empty when absent.
  const std::vector<FactId>& Facts(char label) const {
    return by_label_[static_cast<unsigned char>(label)];
  }

  /// Labels present, sorted.
  const std::vector<char>& labels() const { return labels_; }

  int64_t num_facts() const { return num_facts_; }

 private:
  std::array<std::vector<FactId>, 256> by_label_;
  std::vector<char> labels_;
  int64_t num_facts_ = 0;
};

}  // namespace rpqres

#endif  // RPQRES_GRAPHDB_LABEL_INDEX_H_
