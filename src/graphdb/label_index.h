// rpqres — graphdb/label_index: precomputed per-label fact adjacency.
//
// Flow-network construction (Thm 3.13 and friends) visits exactly the
// facts whose label occurs in the query language; a GraphDb only offers
// the full fact array, so every solve would re-scan all facts and filter
// by label. A LabelIndex is built once per immutable database snapshot
// (the DbRegistry does this at Register time) and shared by every query
// against that snapshot: solvers iterate the per-label fact lists
// directly, skipping inert facts without touching them.
//
// Beyond the flat per-label lists, the index stores a per-label CSR over
// source and target nodes (FactsFrom / FactsInto): the product-pruning
// reachability sweep expands a (node, state) frontier by exactly the
// facts with a given label at a given node, again without touching any
// inert fact.
//
// Per-label entries are copy-on-write (shared_ptr-to-const): a delta
// commit builds the next version's index *incrementally* — labels the
// delta never touched share the parent's entry, only the touched labels'
// CSR spans are rebuilt — so commit-time indexing scales with the facts
// of the touched labels, not with the database. Dead (tombstoned) facts
// of a versioned GraphDb never enter an index.

#ifndef RPQRES_GRAPHDB_LABEL_INDEX_H_
#define RPQRES_GRAPHDB_LABEL_INDEX_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graphdb/graph_db.h"

namespace rpqres {

/// Immutable per-label fact lists for one database. Fact ids within a
/// label are ascending. The index holds fact *ids*, not copies; it is
/// only meaningful alongside the GraphDb it was built from (the
/// DbRegistry snapshot keeps the two paired).
class LabelIndex {
 public:
  /// An empty index: every lookup returns no facts.
  LabelIndex() { slot_.fill(-1); }
  /// Full build over the live facts of `db`.
  explicit LabelIndex(const GraphDb& db);
  /// Incremental build for a delta commit: `db` is the new version,
  /// `parent` the index of the version the delta was applied to, and
  /// `touched_labels` the labels whose fact set changed (facts added or
  /// removed; multiplicity changes do not touch an index). Facts with ids
  /// >= `first_new_fact` are the delta's additions. Untouched labels
  /// share the parent's entry by pointer.
  LabelIndex(const GraphDb& db, const LabelIndex& parent,
             const std::vector<char>& touched_labels, FactId first_new_fact);

  /// Fact ids carrying `label`, ascending; empty when absent. On a
  /// mapped index (FromMapped) the span points into the mmap'ed segment.
  std::span<const FactId> Facts(char label) const {
    int16_t slot = slot_[static_cast<unsigned char>(label)];
    return slot < 0 ? std::span<const FactId>() : per_label_[slot]->facts;
  }

  /// Fact ids carrying `label` whose source is `node`, ascending; empty
  /// when absent. Nodes past the entry's build horizon (added by a later
  /// delta that never touched this label) have no facts by construction.
  std::span<const FactId> FactsFrom(char label, NodeId node) const {
    int16_t slot = slot_[static_cast<unsigned char>(label)];
    if (slot < 0) return {};
    const PerLabel& entry = *per_label_[slot];
    if (node + 1 >= static_cast<NodeId>(entry.source_offset.size())) {
      return {};
    }
    return std::span<const FactId>(entry.by_source)
        .subspan(entry.source_offset[node],
                 entry.source_offset[node + 1] - entry.source_offset[node]);
  }

  /// Fact ids carrying `label` whose target is `node`, ascending; empty
  /// when absent.
  std::span<const FactId> FactsInto(char label, NodeId node) const {
    int16_t slot = slot_[static_cast<unsigned char>(label)];
    if (slot < 0) return {};
    const PerLabel& entry = *per_label_[slot];
    if (node + 1 >= static_cast<NodeId>(entry.target_offset.size())) {
      return {};
    }
    return std::span<const FactId>(entry.by_target)
        .subspan(entry.target_offset[node],
                 entry.target_offset[node + 1] - entry.target_offset[node]);
  }

  /// Labels present, sorted.
  const std::vector<char>& labels() const { return labels_; }

  /// Live facts indexed.
  int64_t num_facts() const { return num_facts_; }

  /// How many labels of this index share their entry with the parent it
  /// was incrementally built from (0 for full builds) — telemetry for the
  /// delta-commit path.
  int shared_labels() const { return shared_labels_; }

  /// One label's pre-built CSR arrays inside an mmap'ed segment, for
  /// FromMapped. Layouts match PerLabel exactly; offsets have
  /// num_nodes + 1 entries.
  struct MappedLabelEntry {
    char label = '\0';
    std::span<const FactId> facts;
    std::span<const FactId> by_source;
    std::span<const int32_t> source_offset;
    std::span<const FactId> by_target;
    std::span<const int32_t> target_offset;
  };

  /// Wraps pre-built per-label CSR arrays living in an external buffer
  /// (an mmap'ed segment) without copying them. `entries` must be sorted
  /// by label (as unsigned char); `mapping` keeps the buffer alive and is
  /// pinned per entry, so incremental child indexes that share an entry
  /// keep the mapping alive too.
  static LabelIndex FromMapped(const std::vector<MappedLabelEntry>& entries,
                               std::shared_ptr<const void> mapping);

 private:
  struct PerLabel {
    std::span<const FactId> facts;  ///< ascending live fact ids, this label
    /// CSR over source nodes: facts of node v are
    /// by_source[source_offset[v] .. source_offset[v+1]).
    std::span<const FactId> by_source;
    std::span<const int32_t> source_offset;  ///< size num_nodes + 1 at build
    /// CSR over target nodes, same layout.
    std::span<const FactId> by_target;
    std::span<const int32_t> target_offset;

    // Owned storage behind the spans for heap-built entries. Mapped
    // entries leave these empty and pin the segment via `mapping`
    // instead. The keepalive lives on the entry (not the index) because
    // incremental builds share entries across index generations.
    std::vector<FactId> facts_store;
    std::vector<FactId> by_source_store;
    std::vector<int32_t> source_offset_store;
    std::vector<FactId> by_target_store;
    std::vector<int32_t> target_offset_store;
    std::shared_ptr<const void> mapping;
  };

  /// Builds one label's entry from its ascending live fact ids.
  static std::shared_ptr<const PerLabel> BuildEntry(const GraphDb& db,
                                                    std::vector<FactId> facts);
  void InsertEntry(char label, std::shared_ptr<const PerLabel> entry);

  std::array<int16_t, 256> slot_;  ///< label -> per_label_ index, -1 absent
  std::vector<std::shared_ptr<const PerLabel>> per_label_;
  std::vector<char> labels_;
  int64_t num_facts_ = 0;
  int shared_labels_ = 0;
};

}  // namespace rpqres

#endif  // RPQRES_GRAPHDB_LABEL_INDEX_H_
