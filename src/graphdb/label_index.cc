#include "graphdb/label_index.h"

#include <algorithm>
#include <utility>

namespace rpqres {

std::shared_ptr<const LabelIndex::PerLabel> LabelIndex::BuildEntry(
    const GraphDb& db, std::vector<FactId> facts) {
  auto entry = std::make_shared<PerLabel>();
  const int num_nodes = db.num_nodes();
  entry->facts_store = std::move(facts);
  // Per-label CSR over source / target nodes, by counting sort (facts are
  // visited in ascending id order, so each per-node slice is ascending).
  entry->source_offset_store.assign(num_nodes + 1, 0);
  entry->target_offset_store.assign(num_nodes + 1, 0);
  for (FactId f : entry->facts_store) {
    ++entry->source_offset_store[db.fact(f).source + 1];
    ++entry->target_offset_store[db.fact(f).target + 1];
  }
  for (int v = 0; v < num_nodes; ++v) {
    entry->source_offset_store[v + 1] += entry->source_offset_store[v];
    entry->target_offset_store[v + 1] += entry->target_offset_store[v];
  }
  entry->by_source_store.resize(entry->facts_store.size());
  entry->by_target_store.resize(entry->facts_store.size());
  std::vector<int32_t> src_cursor(entry->source_offset_store.begin(),
                                  entry->source_offset_store.end() - 1);
  std::vector<int32_t> tgt_cursor(entry->target_offset_store.begin(),
                                  entry->target_offset_store.end() - 1);
  for (FactId f : entry->facts_store) {
    entry->by_source_store[src_cursor[db.fact(f).source]++] = f;
    entry->by_target_store[tgt_cursor[db.fact(f).target]++] = f;
  }
  // The stores are final now; publish the span views. The entry is heap
  // allocated and immutable from here on, so the spans stay valid.
  entry->facts = entry->facts_store;
  entry->by_source = entry->by_source_store;
  entry->source_offset = entry->source_offset_store;
  entry->by_target = entry->by_target_store;
  entry->target_offset = entry->target_offset_store;
  return entry;
}

LabelIndex LabelIndex::FromMapped(
    const std::vector<MappedLabelEntry>& entries,
    std::shared_ptr<const void> mapping) {
  LabelIndex out;
  for (const MappedLabelEntry& e : entries) {
    auto entry = std::make_shared<PerLabel>();
    entry->facts = e.facts;
    entry->by_source = e.by_source;
    entry->source_offset = e.source_offset;
    entry->by_target = e.by_target;
    entry->target_offset = e.target_offset;
    entry->mapping = mapping;
    out.InsertEntry(e.label, std::move(entry));
  }
  return out;
}

void LabelIndex::InsertEntry(char label,
                             std::shared_ptr<const PerLabel> entry) {
  num_facts_ += static_cast<int64_t>(entry->facts.size());
  slot_[static_cast<unsigned char>(label)] =
      static_cast<int16_t>(per_label_.size());
  per_label_.push_back(std::move(entry));
  labels_.push_back(label);
}

LabelIndex::LabelIndex(const GraphDb& db) {
  slot_.fill(-1);
  // Ascending live fact ids per label.
  std::array<std::vector<FactId>, 256> facts_by_label;
  for (FactId f = 0; f < db.num_facts(); ++f) {
    if (!db.IsLive(f)) continue;
    facts_by_label[static_cast<unsigned char>(db.fact(f).label)].push_back(f);
  }
  for (int l = 0; l < 256; ++l) {
    if (facts_by_label[l].empty()) continue;
    InsertEntry(static_cast<char>(l),
                BuildEntry(db, std::move(facts_by_label[l])));
  }
  // InsertEntry visits labels in byte order, so labels_ is already sorted.
}

LabelIndex::LabelIndex(const GraphDb& db, const LabelIndex& parent,
                       const std::vector<char>& touched_labels,
                       FactId first_new_fact) {
  slot_.fill(-1);
  std::array<bool, 256> touched{};
  for (char label : touched_labels) {
    touched[static_cast<unsigned char>(label)] = true;
  }
  // The delta's additions, ascending, per touched label. (Untouched
  // labels cannot gain or lose facts by definition of `touched_labels`.)
  std::array<std::vector<FactId>, 256> added;
  for (FactId f = first_new_fact; f < db.num_facts(); ++f) {
    if (!db.IsLive(f)) continue;
    added[static_cast<unsigned char>(db.fact(f).label)].push_back(f);
  }
  for (int l = 0; l < 256; ++l) {
    char label = static_cast<char>(l);
    int16_t parent_slot = parent.slot_[l];
    if (!touched[l]) {
      if (parent_slot >= 0) {
        ++shared_labels_;
        InsertEntry(label, parent.per_label_[parent_slot]);
      }
      continue;
    }
    // Rebuild: the parent's facts that survived the delta, then the
    // delta's additions (ids strictly larger — ascending overall).
    std::vector<FactId> facts;
    if (parent_slot >= 0) {
      for (FactId f : parent.per_label_[parent_slot]->facts) {
        if (db.IsLive(f)) facts.push_back(f);
      }
    }
    facts.insert(facts.end(), added[l].begin(), added[l].end());
    if (facts.empty()) continue;  // every fact of this label was removed
    InsertEntry(label, BuildEntry(db, std::move(facts)));
  }
}

}  // namespace rpqres
