#include "graphdb/label_index.h"

#include <algorithm>

namespace rpqres {

const std::vector<FactId> LabelIndex::kNoFacts;

LabelIndex::LabelIndex(const GraphDb& db) : num_facts_(db.num_facts()) {
  slot_.fill(-1);
  const int num_nodes = db.num_nodes();
  for (FactId f = 0; f < db.num_facts(); ++f) {
    unsigned char label = static_cast<unsigned char>(db.fact(f).label);
    if (slot_[label] < 0) {
      slot_[label] = static_cast<int16_t>(per_label_.size());
      per_label_.emplace_back();
      labels_.push_back(static_cast<char>(label));
    }
    per_label_[slot_[label]].facts.push_back(f);
  }
  std::sort(labels_.begin(), labels_.end());
  // Per-label CSR over source / target nodes, by counting sort (facts are
  // visited in ascending id order, so each per-node slice is ascending).
  for (PerLabel& entry : per_label_) {
    entry.source_offset.assign(num_nodes + 1, 0);
    entry.target_offset.assign(num_nodes + 1, 0);
    for (FactId f : entry.facts) {
      ++entry.source_offset[db.fact(f).source + 1];
      ++entry.target_offset[db.fact(f).target + 1];
    }
    for (int v = 0; v < num_nodes; ++v) {
      entry.source_offset[v + 1] += entry.source_offset[v];
      entry.target_offset[v + 1] += entry.target_offset[v];
    }
    entry.by_source.resize(entry.facts.size());
    entry.by_target.resize(entry.facts.size());
    std::vector<int32_t> src_cursor(entry.source_offset.begin(),
                                    entry.source_offset.end() - 1);
    std::vector<int32_t> tgt_cursor(entry.target_offset.begin(),
                                    entry.target_offset.end() - 1);
    for (FactId f : entry.facts) {
      entry.by_source[src_cursor[db.fact(f).source]++] = f;
      entry.by_target[tgt_cursor[db.fact(f).target]++] = f;
    }
  }
}

}  // namespace rpqres
