#include "graphdb/label_index.h"

#include <algorithm>

namespace rpqres {

LabelIndex::LabelIndex(const GraphDb& db) : num_facts_(db.num_facts()) {
  for (FactId f = 0; f < db.num_facts(); ++f) {
    unsigned char label = static_cast<unsigned char>(db.fact(f).label);
    if (by_label_[label].empty()) {
      labels_.push_back(static_cast<char>(label));
    }
    by_label_[label].push_back(f);
  }
  std::sort(labels_.begin(), labels_.end());
}

}  // namespace rpqres
