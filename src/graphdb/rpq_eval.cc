#include "graphdb/rpq_eval.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace rpqres {
namespace {

// Product-graph BFS over configurations (node, automaton state). Fact moves
// cost 1 step; ε-moves cost 0 (handled by closure-style expansion inside the
// BFS so that shortest means fewest facts).
//
// Returns parent pointers for walk reconstruction when `reconstruct`.
struct ProductSearch {
  const GraphDb& db;
  const Enfa& query;
  const std::vector<bool>* removed_facts = nullptr;
  // Fixed endpoints (the non-Boolean setting): when >= 0, walks must start
  // at fixed_source and end at fixed_target.
  NodeId fixed_source = -1;
  NodeId fixed_target = -1;

  bool IsRemoved(FactId id) const {
    return removed_facts != nullptr && (*removed_facts)[id];
  }

  // Dense product-state id.
  int Id(NodeId v, int s) const { return v * query.num_states() + s; }

  std::optional<WitnessWalk> Run(bool reconstruct) const {
    // ε ∈ L(query)?  Then the empty walk is a witness (for fixed
    // endpoints, only when they coincide).
    std::vector<int> start = query.EpsilonClosure(query.initial_states());
    for (int s : start) {
      if (query.IsFinal(s) &&
          (fixed_source < 0 || fixed_source == fixed_target)) {
        return WitnessWalk{};
      }
    }
    if (db.num_nodes() == 0) return std::nullopt;

    int total = db.num_nodes() * query.num_states();
    std::vector<bool> seen(total, false);
    // parent_fact[p] = fact used to enter p (-1 for ε / start);
    // parent_state[p] = previous product id (-1 for start).
    std::vector<FactId> parent_fact;
    std::vector<int> parent_state;
    if (reconstruct) {
      parent_fact.assign(total, -1);
      parent_state.assign(total, -1);
    }

    // Precompute ε-adjacency of the automaton.
    std::vector<std::vector<int>> eps_out(query.num_states());
    std::vector<std::vector<std::pair<char, int>>> letter_out(
        query.num_states());
    for (const EnfaTransition& t : query.transitions()) {
      if (t.symbol == kEpsilonSymbol) {
        eps_out[t.from].push_back(t.to);
      } else {
        letter_out[t.from].push_back({t.symbol, t.to});
      }
    }

    std::queue<int> queue;
    // ε-expansion helper: marks (v, s) seen and immediately expands its
    // whole ε-closure at the same BFS level (ε-moves cost 0 facts; product
    // ε-edges stay within the same database node, so plain BFS plus eager
    // closure expansion yields fewest-facts shortest walks).
    auto push_with_closure = [&](NodeId v, int s, FactId via_fact,
                                 int via_state) {
      int p0 = Id(v, s);
      if (seen[p0]) return;
      seen[p0] = true;
      if (reconstruct) {
        parent_fact[p0] = via_fact;
        parent_state[p0] = via_state;
      }
      queue.push(p0);
      std::vector<int> stack{s};
      while (!stack.empty()) {
        int state = stack.back();
        stack.pop_back();
        int p = Id(v, state);
        for (int to : eps_out[state]) {
          int q = Id(v, to);
          if (!seen[q]) {
            seen[q] = true;
            if (reconstruct) {
              // ε-step within the same node: parent is p, no fact consumed.
              parent_fact[q] = -1;
              parent_state[q] = p;
            }
            queue.push(q);
            stack.push_back(to);
          }
        }
      }
    };

    for (NodeId v = 0; v < db.num_nodes(); ++v) {
      if (fixed_source >= 0 && v != fixed_source) continue;
      for (int s : query.initial_states()) {
        push_with_closure(v, s, -1, -1);
      }
    }

    while (!queue.empty()) {
      int p = queue.front();
      queue.pop();
      NodeId v = p / query.num_states();
      int s = p % query.num_states();
      if (query.IsFinal(s) && (fixed_target < 0 || v == fixed_target)) {
        if (!reconstruct) return WitnessWalk{};
        // Walk reconstruction: follow parents back to a start config.
        WitnessWalk walk;
        int current = p;
        while (current != -1) {
          FactId f = parent_fact[current];
          if (f != -1) walk.push_back(f);
          current = parent_state[current];
        }
        std::reverse(walk.begin(), walk.end());
        return walk;
      }
      for (FactId fid : db.OutFactsLive(v)) {
        if (IsRemoved(fid)) continue;
        const Fact& fact = db.fact(fid);
        for (auto [symbol, to] : letter_out[s]) {
          if (symbol == fact.label) {
            if (!seen[Id(fact.target, to)]) {
              push_with_closure(fact.target, to, fid, p);
            }
          }
        }
      }
    }
    return std::nullopt;
  }
};

}  // namespace

bool EvaluatesToTrue(const GraphDb& db, const Enfa& query,
                     const std::vector<bool>* removed_facts) {
  return ProductSearch{db, query, removed_facts}
      .Run(/*reconstruct=*/false)
      .has_value();
}

bool EvaluatesToTrue(const GraphDb& db, const Language& lang) {
  return EvaluatesToTrue(db, lang.enfa());
}

std::optional<WitnessWalk> ShortestWitnessWalk(
    const GraphDb& db, const Enfa& query,
    const std::vector<bool>* removed_facts) {
  return ProductSearch{db, query, removed_facts}.Run(/*reconstruct=*/true);
}

std::optional<WitnessWalk> ShortestWitnessWalk(const GraphDb& db,
                                               const Language& lang) {
  return ShortestWitnessWalk(db, lang.enfa());
}

bool EvaluatesToTrueBetween(const GraphDb& db, const Enfa& query,
                            NodeId source, NodeId target,
                            const std::vector<bool>* removed_facts) {
  ProductSearch search{db, query, removed_facts, source, target};
  return search.Run(/*reconstruct=*/false).has_value();
}

std::string WalkLabel(const GraphDb& db, const WitnessWalk& walk) {
  std::string label;
  for (FactId id : walk) label.push_back(db.fact(id).label);
  return label;
}

std::vector<FactId> WalkMatch(const WitnessWalk& walk) {
  std::vector<FactId> match = walk;
  std::sort(match.begin(), match.end());
  match.erase(std::unique(match.begin(), match.end()), match.end());
  return match;
}

}  // namespace rpqres
