#include "classify/classifier.h"

#include <algorithm>
#include <map>

#include "gadgets/chain_cycle.h"
#include "lang/chain.h"
#include "lang/four_legged.h"
#include "lang/infix_free.h"
#include "lang/local.h"
#include "lang/neutral_letter.h"
#include "lang/one_dangling.h"
#include "lang/repeated_letter.h"
#include "lang/star_free.h"
#include "util/strings.h"

namespace rpqres {

const char* ComplexityClassName(ComplexityClass c) {
  switch (c) {
    case ComplexityClass::kPtime:
      return "PTIME";
    case ComplexityClass::kNpHard:
      return "NP-hard";
    case ComplexityClass::kUnclassified:
      return "UNCLASSIFIED";
    case ComplexityClass::kTrivial:
      return "trivial";
  }
  return "?";
}

namespace {

// The finite languages proven NP-hard by dedicated gadgets (Prp 7.4,
// Prp 7.11), to be matched up to letter renaming.
const std::vector<std::vector<std::string>>& KnownHardWordSets() {
  static const std::vector<std::vector<std::string>> kSets = {
      {"ab", "bc", "ca"},        // Prp 7.4
      {"abcd", "be", "ef"},      // Prp 7.11
      {"abcd", "bef"},           // Prp 7.11
  };
  return kSets;
}

// Does some letter bijection map `words` onto `pattern` (as word sets)?
bool MatchesUpToRenaming(std::vector<std::string> words,
                         std::vector<std::string> pattern) {
  if (words.size() != pattern.size()) return false;
  std::sort(words.begin(), words.end());
  std::sort(pattern.begin(), pattern.end());
  // Backtracking over letter bindings. Small languages only.
  std::map<char, char> binding;  // word letter -> pattern letter
  std::map<char, char> reverse;

  // Words must be matched as a set: try permutations of same-length words.
  std::sort(words.begin(), words.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  std::sort(pattern.begin(), pattern.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });

  std::vector<int> perm(pattern.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);
  // Only permute within same-length groups.
  do {
    bool length_ok = true;
    for (size_t i = 0; i < words.size(); ++i) {
      if (words[i].size() != pattern[perm[i]].size()) {
        length_ok = false;
        break;
      }
    }
    if (!length_ok) continue;
    binding.clear();
    reverse.clear();
    bool ok = true;
    for (size_t i = 0; i < words.size() && ok; ++i) {
      const std::string& w = words[i];
      const std::string& p = pattern[perm[i]];
      for (size_t j = 0; j < w.size(); ++j) {
        auto it = binding.find(w[j]);
        if (it != binding.end()) {
          if (it->second != p[j]) {
            ok = false;
            break;
          }
        } else {
          auto rit = reverse.find(p[j]);
          if (rit != reverse.end()) {
            ok = false;
            break;
          }
          binding[w[j]] = p[j];
          reverse[p[j]] = w[j];
        }
      }
    }
    if (ok) return true;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

}  // namespace

Result<Classification> ClassifyResilience(const Language& lang,
                                          int max_word_length) {
  return ClassifyResilienceWithIF(lang, InfixFreeSublanguage(lang),
                                  max_word_length);
}

Result<Classification> ClassifyResilienceWithIF(const Language& lang,
                                                const Language& ifl,
                                                int max_word_length) {
  Classification out;
  out.finite = ifl.IsFinite();
  if (out.finite) {
    RPQRES_ASSIGN_OR_RETURN(std::vector<std::string> words, ifl.Words());
    std::vector<std::string> shown;
    for (const std::string& w : words) shown.push_back(DisplayWord(w));
    out.if_language = shown.empty() ? "∅" : Join(shown, "|");
  } else {
    out.if_language = "IF(" + lang.description() + ") [infinite]";
  }

  // Trivial cases.
  if (ifl.ContainsEpsilon()) {
    out.complexity = ComplexityClass::kTrivial;
    out.rule = "ε ∈ L";
    out.detail = "Q_L holds on every database; resilience is +∞";
    return out;
  }
  if (ifl.IsEmpty()) {
    out.complexity = ComplexityClass::kTrivial;
    out.rule = "L = ∅";
    out.detail = "Q_L never holds; resilience is 0";
    return out;
  }

  // --- PTIME side -----------------------------------------------------------
  if (IsLocal(ifl)) {
    out.complexity = ComplexityClass::kPtime;
    out.rule = "local language (Thm 3.13)";
    out.detail = "RO-εNFA product with D, then MinCut";
    return out;
  }
  if (IsBipartiteChainLanguage(ifl)) {
    out.complexity = ComplexityClass::kPtime;
    out.rule = "bipartite chain language (Prp 7.6)";
    out.detail = "per-fact flow network with forward/reversed word wiring";
    return out;
  }
  if (IsOneDanglingOrMirror(ifl)) {
    std::optional<OneDanglingDecomposition> decomposition =
        FindOneDanglingDecomposition(ifl);
    bool mirrored = !decomposition.has_value();
    if (mirrored) decomposition = FindOneDanglingDecomposition(ifl.Mirror());
    out.complexity = ComplexityClass::kPtime;
    out.rule = "one-dangling language (Prp 7.9)";
    out.detail = std::string(mirrored ? "mirror of L = " : "L = ") +
                 decomposition->base.description() + " ∪ {" +
                 std::string(1, decomposition->x) +
                 std::string(1, decomposition->y) + "}";
    return out;
  }

  // --- NP-hard side ---------------------------------------------------------
  if (out.finite && HasRepeatedLetterWord(ifl)) {
    std::optional<RepeatedLetterWord> word = FindMaximalGapWord(ifl);
    out.complexity = ComplexityClass::kNpHard;
    out.rule = "finite with repeated-letter word (Thm 6.1)";
    out.detail = "maximal-gap word " + (word ? word->word : "?");
    return out;
  }
  std::optional<FourLeggedWitness> witness =
      FindFourLeggedWitness(ifl, max_word_length);
  if (witness) {
    out.complexity = ComplexityClass::kNpHard;
    out.rule = "four-legged language (Thm 5.3)";
    out.detail = std::string(1, witness->body) + "-body, " +
                 witness->FirstWord() + " ∈ L, " + witness->SecondWord() +
                 " ∈ L, " + witness->CrossWord() + " ∉ L";
    return out;
  }
  if (!out.finite) {
    RPQRES_ASSIGN_OR_RETURN(bool star_free, IsStarFree(ifl));
    if (!star_free) {
      out.complexity = ComplexityClass::kNpHard;
      out.rule = "non-star-free (Lem 5.6 + Thm 5.3)";
      out.detail = "not counter-free: syntactic monoid is not aperiodic";
      return out;
    }
    // Neutral-letter dichotomy (Prp 5.7): the neutral letter is a property
    // of L itself (IF(L) typically loses it); IF(L) is not local here, so
    // a neutral letter implies hardness.
    std::vector<char> neutral = NeutralLetters(lang);
    if (!neutral.empty()) {
      out.complexity = ComplexityClass::kNpHard;
      out.rule = "neutral letter + non-local (Prp 5.7)";
      out.detail = std::string("neutral letter '") + neutral.front() + "'";
      return out;
    }
  }
  if (out.finite) {
    Result<std::vector<std::string>> words = ifl.Words();
    if (words.ok()) {
      for (const std::vector<std::string>& pattern : KnownHardWordSets()) {
        if (MatchesUpToRenaming(*words, pattern)) {
          out.complexity = ComplexityClass::kNpHard;
          out.rule = pattern.size() == 3 && pattern[0] == "ab"
                         ? "non-bipartite chain ab|bc|ca (Prp 7.4)"
                         : "explicit gadget (Prp 7.11)";
          out.detail = "matches " + Join(pattern, "|") + " up to renaming";
          return out;
        }
      }
    }
    // Non-bipartite chain languages beyond ab|bc|ca: the paper conjectures
    // hardness; a mechanically *verified* gadget is a proof via Prp 4.11,
    // so the NP-hard region extends wherever the Fig 13 generalization
    // verifies (gadgets/chain_cycle.h).
    Result<PreGadget> chain_gadget = BuildNonBipartiteChainGadget(ifl);
    if (chain_gadget.ok()) {
      out.complexity = ComplexityClass::kNpHard;
      out.rule = "non-bipartite chain, verified gadget (Prp 4.11)";
      out.detail = "odd-cycle gadget " + chain_gadget->name +
                   " verified; extends the paper's Prp 7.4 conjecture";
      return out;
    }
  }

  out.complexity = ComplexityClass::kUnclassified;
  out.rule = "no paper result applies";
  out.detail =
      "not local/BCL/one-dangling; no repeated letter, not four-legged, "
      "star-free, no neutral letter";
  return out;
}

std::string ClassificationReport(const Language& lang,
                                 const Classification& classification) {
  std::string out = lang.description() + ": ";
  out += ComplexityClassName(classification.complexity);
  out += " — " + classification.rule;
  if (!classification.detail.empty()) {
    out += " (" + classification.detail + ")";
  }
  return out;
}

}  // namespace rpqres
