// rpqres — classify/classifier: the Figure 1 pipeline.
//
// Given a regular language, classifies the complexity of its resilience
// problem using the paper's results, always on the infix-free sublanguage:
//   PTIME:   local (Thm 3.13), bipartite chain (Prp 7.6),
//            one-dangling / mirrored one-dangling (Prp 7.9 + Prp 6.3)
//   NP-hard: four-legged (Thm 5.3), non-star-free (Lem 5.6),
//            finite with a repeated-letter word (Thm 6.1),
//            specific proven-hard languages up to letter renaming
//            (Prp 7.4: ab|bc|ca; Prp 7.11: abcd|be|ef, abcd|bef)
//   UNCLASSIFIED otherwise (the open middle column of Fig 1).

#ifndef RPQRES_CLASSIFY_CLASSIFIER_H_
#define RPQRES_CLASSIFY_CLASSIFIER_H_

#include <string>

#include "lang/language.h"
#include "util/status.h"

namespace rpqres {

/// The three columns of Figure 1.
enum class ComplexityClass {
  kPtime,
  kNpHard,
  kUnclassified,
  kTrivial,  ///< IF(L) empty or {ε}: resilience constant (0 / +∞)
};

const char* ComplexityClassName(ComplexityClass c);

/// A classification verdict with the paper result that justifies it.
struct Classification {
  ComplexityClass complexity = ComplexityClass::kUnclassified;
  std::string rule;         ///< e.g. "local (Thm 3.13)"
  std::string detail;       ///< witness words, legs, decomposition, ...
  std::string if_language;  ///< display form of IF(L) when finite
  bool finite = false;      ///< IF(L) finite?
};

/// Classifies the resilience complexity of Q_L per the paper's results.
/// `max_word_length` bounds the four-legged witness search for infinite
/// languages (the search is exact for finite ones).
Result<Classification> ClassifyResilience(const Language& lang,
                                          int max_word_length = 12);

/// Like ClassifyResilience, but takes the precomputed infix-free
/// sublanguage IF(L) instead of rederiving it — the reusable entry point
/// for compiled query plans (src/engine/). `lang` is still needed: the
/// neutral-letter test (Prp 5.7) is a property of L itself.
Result<Classification> ClassifyResilienceWithIF(const Language& lang,
                                                const Language& ifl,
                                                int max_word_length = 12);

/// One-line report: "<regex>: <class> — <rule> (<detail>)".
std::string ClassificationReport(const Language& lang,
                                 const Classification& classification);

}  // namespace rpqres

#endif  // RPQRES_CLASSIFY_CLASSIFIER_H_
