// rpqres — gadgets/condensation: the condensation rules of Section 4.3.
//
// Edge-domination: e ⊆ e' (e ≠ e') removes the superset edge e'.
// Node-domination: E(v) ⊆ E(v') (v ≠ v') removes v from the hypergraph.
// Both preserve the minimum hitting set size (Claim 4.8). Protected
// vertices (the endpoint facts F_in/F_out of a completed gadget) are never
// removed by node-domination, matching the gadget definition (Def 4.9)
// where the odd path must run from F_in to F_out.

#ifndef RPQRES_GADGETS_CONDENSATION_H_
#define RPQRES_GADGETS_CONDENSATION_H_

#include <string>
#include <vector>

#include "gadgets/hypergraph.h"

namespace rpqres {

/// A record of one condensation step (for traces/demos).
struct CondensationStep {
  enum class Kind { kEdgeDomination, kNodeDomination };
  Kind kind;
  std::string description;
};

/// Result of condensing to a fixpoint.
struct CondensationResult {
  Hypergraph condensed;          ///< vertices renumbered away; names kept
  std::vector<int> kept_vertices;  ///< original ids of surviving vertices
  std::vector<CondensationStep> steps;
};

/// Applies the condensation rules to a fixpoint, never node-dominating a
/// protected vertex. The rules are confluent [5], so the greedy order used
/// here is canonical up to isomorphism.
CondensationResult Condense(const Hypergraph& h,
                            const std::vector<int>& protected_vertices);

/// Verdict of the odd-path shape check of Definition 4.9.
struct OddPathCheck {
  bool is_odd_path = false;
  int path_edges = 0;  ///< the (odd) number of hyperedges = the ℓ of Prp 4.2
  std::string reason;  ///< why not, when is_odd_path == false
  std::vector<int> path_vertices;  ///< vertex ids from `from` to `to`
};

/// Checks that `h` (typically a condensation output, with original vertex
/// ids from kept_vertices applied) is an odd path from `from` to `to`: all
/// edges have size 2, every vertex lies on the path, endpoints are `from`
/// and `to`, and the edge count is odd.
OddPathCheck CheckOddPath(const Hypergraph& h, int from, int to);

}  // namespace rpqres

#endif  // RPQRES_GADGETS_CONDENSATION_H_
