#include "gadgets/condensation.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/check.h"

namespace rpqres {
namespace {

std::string VertexName(const Hypergraph& h, int v) {
  if (v < static_cast<int>(h.vertex_names.size()) &&
      !h.vertex_names[v].empty()) {
    return h.vertex_names[v];
  }
  return "v" + std::to_string(v);
}

}  // namespace

CondensationResult Condense(const Hypergraph& h,
                            const std::vector<int>& protected_vertices) {
  std::vector<bool> is_protected(h.num_vertices, false);
  for (int v : protected_vertices) is_protected[v] = true;

  std::vector<bool> vertex_alive(h.num_vertices, true);
  std::vector<std::vector<int>> edges = h.edges;
  std::vector<bool> edge_alive(edges.size(), true);
  CondensationResult result;

  auto edge_subset = [](const std::vector<int>& a,
                        const std::vector<int>& b) {
    return std::includes(b.begin(), b.end(), a.begin(), a.end());
  };

  bool changed = true;
  while (changed) {
    changed = false;

    // Edge-domination: remove strict supersets (and duplicate edges).
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!edge_alive[i]) continue;
      for (size_t j = 0; j < edges.size(); ++j) {
        if (i == j || !edge_alive[j]) continue;
        if (edge_subset(edges[i], edges[j]) &&
            (edges[i] != edges[j] || i < j)) {
          edge_alive[j] = false;
          changed = true;
          result.steps.push_back(
              {CondensationStep::Kind::kEdgeDomination,
               "edge-domination removes a superset of {" +
                   [&] {
                     std::string s;
                     for (int v : edges[i]) {
                       if (!s.empty()) s += ",";
                       s += VertexName(h, v);
                     }
                     return s;
                   }() +
                   "}"});
        }
      }
    }

    // Node-domination: E(v) ⊆ E(v'), remove v (v not protected).
    std::vector<std::vector<int>> incident(h.num_vertices);
    for (size_t e = 0; e < edges.size(); ++e) {
      if (!edge_alive[e]) continue;
      for (int v : edges[e]) {
        if (vertex_alive[v]) incident[v].push_back(static_cast<int>(e));
      }
    }
    for (int v = 0; v < h.num_vertices && !changed; ++v) {
      if (!vertex_alive[v] || is_protected[v]) continue;
      for (int w = 0; w < h.num_vertices; ++w) {
        if (w == v || !vertex_alive[w]) continue;
        bool subset = std::includes(incident[w].begin(), incident[w].end(),
                                    incident[v].begin(), incident[v].end());
        if (!subset) continue;
        // Tie-break for equal incidence: keep the protected / lower-id one
        // (deterministic, and never removes both of an equal pair).
        if (incident[v] == incident[w] && !is_protected[w] && w > v) {
          continue;
        }
        vertex_alive[v] = false;
        for (std::vector<int>& edge : edges) {
          edge.erase(std::remove(edge.begin(), edge.end(), v), edge.end());
        }
        result.steps.push_back({CondensationStep::Kind::kNodeDomination,
                                "node-domination removes " +
                                    VertexName(h, v) + " (dominated by " +
                                    VertexName(h, w) + ")"});
        changed = true;
        break;
      }
    }
  }

  // Build the output hypergraph over surviving vertices, renumbered.
  std::vector<int> remap(h.num_vertices, -1);
  for (int v = 0; v < h.num_vertices; ++v) {
    if (vertex_alive[v]) {
      remap[v] = static_cast<int>(result.kept_vertices.size());
      result.kept_vertices.push_back(v);
    }
  }
  result.condensed.num_vertices =
      static_cast<int>(result.kept_vertices.size());
  for (int v : result.kept_vertices) {
    result.condensed.vertex_names.push_back(VertexName(h, v));
  }
  std::set<std::vector<int>> edge_set;
  for (size_t e = 0; e < edges.size(); ++e) {
    if (!edge_alive[e]) continue;
    std::vector<int> edge;
    for (int v : edges[e]) edge.push_back(remap[v]);
    std::sort(edge.begin(), edge.end());
    edge_set.insert(std::move(edge));
  }
  result.condensed.edges.assign(edge_set.begin(), edge_set.end());
  return result;
}

OddPathCheck CheckOddPath(const Hypergraph& h, int from, int to) {
  OddPathCheck check;
  if (from == to) {
    check.reason = "endpoints coincide";
    return check;
  }
  std::map<int, std::vector<int>> adjacency;
  for (const std::vector<int>& edge : h.edges) {
    if (edge.size() != 2) {
      check.reason = "a hyperedge has size " + std::to_string(edge.size()) +
                     " (expected 2)";
      return check;
    }
    adjacency[edge[0]].push_back(edge[1]);
    adjacency[edge[1]].push_back(edge[0]);
  }
  if (!adjacency.count(from) || !adjacency.count(to)) {
    check.reason = "an endpoint fact lies on no hyperedge";
    return check;
  }
  if (adjacency[from].size() != 1 || adjacency[to].size() != 1) {
    check.reason = "an endpoint fact does not have degree 1";
    return check;
  }
  // Walk from `from`; all vertices must have degree <= 2 and we must end at
  // `to` having used every edge.
  int prev = -1, current = from;
  check.path_vertices.push_back(from);
  size_t used_edges = 0;
  while (current != to) {
    const std::vector<int>& nbrs = adjacency[current];
    if (nbrs.size() > 2) {
      check.reason = "vertex " + std::to_string(current) + " has degree " +
                     std::to_string(nbrs.size());
      return check;
    }
    int next = -1;
    for (int n : nbrs) {
      if (n != prev) next = n;
    }
    if (next == -1) {
      check.reason = "dead end before reaching the out-endpoint";
      return check;
    }
    prev = current;
    current = next;
    ++used_edges;
    check.path_vertices.push_back(current);
    if (used_edges > h.edges.size()) {
      check.reason = "walk revisits vertices (cycle)";
      return check;
    }
  }
  if (used_edges != h.edges.size()) {
    check.reason = "graph is not connected (extra components/edges)";
    return check;
  }
  // All vertices covered?
  if (check.path_vertices.size() !=
      static_cast<size_t>(h.num_vertices)) {
    check.reason = "isolated vertices remain";
    return check;
  }
  if (used_edges % 2 == 0) {
    check.reason = "path length " + std::to_string(used_edges) +
                   " is even (must be odd)";
    return check;
  }
  check.is_odd_path = true;
  check.path_edges = static_cast<int>(used_edges);
  return check;
}

}  // namespace rpqres
