// rpqres — gadgets/encoding: encoding a directed graph with a pre-gadget
// (Def 4.5) — the heart of the vertex-cover reduction of Prp 4.11.
//
// Given a gadget with odd-path length ℓ, the encoding Ξ of G satisfies
//   RES_set(Q_L, Ξ) = vc(G) + m(ℓ−1)/2            (Prp 4.2 + Claim 4.12)
// which the tests and the prop42 bench validate with the exact solver.

#ifndef RPQRES_GADGETS_ENCODING_H_
#define RPQRES_GADGETS_ENCODING_H_

#include "flow/capacity.h"
#include "gadgets/gadget.h"
#include "gadgets/vertex_cover.h"
#include "graphdb/graph_db.h"

namespace rpqres {

/// Builds the encoding Ξ of `graph` with `gadget` (Def 4.5): one fact
/// s_u -a-> t_u per node u, one fresh copy of the pre-gadget per edge with
/// t_in, t_out identified with t_u, t_v.
GraphDb EncodeGraph(const DirectedGraph& graph, const PreGadget& gadget);

/// The resilience value predicted by Prp 4.2 for the encoding of `graph`
/// with a gadget whose condensed odd path has `path_edges` hyperedges:
/// vc(G) + m(ℓ−1)/2.
Capacity PredictedEncodingResilience(const UndirectedGraph& graph,
                                     int path_edges);

}  // namespace rpqres

#endif  // RPQRES_GADGETS_ENCODING_H_
