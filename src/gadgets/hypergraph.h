// rpqres — gadgets/hypergraph: the hypergraph of matches (Def 4.7).
//
// Vertices are the facts of a database; hyperedges are the matches of L
// (fact sets of L-walks). RES_set(Q_L, D) equals the minimum hitting set of
// this hypergraph, which is what the condensation rules (condensation.h)
// and the gadget framework exploit.

#ifndef RPQRES_GADGETS_HYPERGRAPH_H_
#define RPQRES_GADGETS_HYPERGRAPH_H_

#include <string>
#include <vector>

#include "graphdb/graph_db.h"
#include "lang/language.h"
#include "util/status.h"

namespace rpqres {

/// A hypergraph over integer vertices with optional display names.
struct Hypergraph {
  int num_vertices = 0;
  /// Sorted, deduplicated vertex lists; the edge *set* is deduplicated too.
  std::vector<std::vector<int>> edges;
  /// Display names (facts render as "a(u,v)"), may be empty.
  std::vector<std::string> vertex_names;

  /// Sorts vertices within edges, removes duplicate edges.
  void Normalize();
  /// Human-readable listing.
  std::string ToString() const;
};

/// Computes the hypergraph of matches H_{L,D}. Matches are enumerated from
/// walks: all walks of length <= longest word for finite L, or all walks of
/// the (then required) acyclic database for infinite L. Two safeguards:
/// `max_walks` bounds enumeration, and infinite L + cyclic D is rejected
/// (matches could not be enumerated as walks).
Result<Hypergraph> HypergraphOfMatches(const Language& lang,
                                       const GraphDb& db,
                                       size_t max_walks = 1 << 22);

/// Minimum-cardinality hitting set size of a hypergraph (exact, branch &
/// bound; for validation on small gadget hypergraphs). An empty hyperedge
/// makes the problem infeasible; this returns -1 then.
int MinimumHittingSetSize(const Hypergraph& h);

/// A minimum-weight hitting set (exact branch & bound).
struct HittingSetSolution {
  bool feasible = true;   ///< false iff some edge has no usable vertex
  Capacity cost = 0;
  std::vector<int> vertices;  ///< sorted vertex ids of the hitting set
};

/// Computes a minimum-weight hitting set; vertices with weight
/// kInfiniteCapacity are unusable (exogenous). `weights` must have one
/// entry per vertex.
HittingSetSolution MinimumWeightHittingSet(
    const Hypergraph& h, const std::vector<Capacity>& weights);

}  // namespace rpqres

#endif  // RPQRES_GADGETS_HYPERGRAPH_H_
