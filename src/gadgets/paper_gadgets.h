// rpqres — gadgets/paper_gadgets: the hardness gadgets of the paper.
//
//   Fig 3b : aa                     (Prp 4.1)
//   Fig 4a : axb|cxd                (Prp 4.13)
//   Fig 5  : four-legged, Case 1    (Thm 5.3) — parameterized by stable legs
//   Fig 6  : four-legged, Case 2    (Thm 5.3) — candidate reconstructions
//   Fig 7/8: aγa / aγaδ             (Lem 6.6)
//   Fig 9  : aba + bab              (Claim 6.10)
//   Fig 10 : aaa                    (Claim 6.11)
//   Fig 11 : aab, a ≠ b             (Claim 6.14)
//   Fig 12 : axηya + yax            (Claim 6.13) — candidate reconstructions
//   Fig 13 : ab|bc|ca               (Prp 7.4)
//   Fig 15 : abcd|be|ef             (Prp 7.11)
//   Fig 16 : abcd|bef               (Prp 7.11; same database as Fig 15)
//
// Figures 6 and 12 cannot be transcribed verbatim from the paper text, so
// this module exposes *families* of candidate pre-gadgets for them; the
// companion verifier (VerifyGadget) selects a valid one at runtime, which
// is exactly the methodology of the authors' sanity-check tool [3].

#ifndef RPQRES_GADGETS_PAPER_GADGETS_H_
#define RPQRES_GADGETS_PAPER_GADGETS_H_

#include <string>
#include <vector>

#include "gadgets/gadget.h"
#include "lang/four_legged.h"
#include "lang/language.h"
#include "util/status.h"

namespace rpqres {

/// Fig 3b: the gadget for aa.
PreGadget AaGadget();

/// Fig 10: the gadget for any infix-free language containing aaa
/// (structurally identical to Fig 3b, as the paper remarks).
PreGadget AaaGadget(char a = 'a');

/// Fig 4a: the gadget for axb|cxd (19 facts when completed).
PreGadget AxbCxdGadget();

/// Fig 5 (generalized Fig 4a): Case 1 of Thm 5.3, for a four-legged
/// language with *stable* legs such that no infix of γxβ is in L.
/// The witness legs are the full words α', β', γ', δ' of the proof.
PreGadget FourLeggedCase1Gadget(const FourLeggedWitness& witness);

/// Fig 6 candidates: Case 2 of Thm 5.3 (some infix of γxβ is in L).
std::vector<PreGadget> FourLeggedCase2Candidates(
    const FourLeggedWitness& witness);

/// Figs 7/8 (Lem 6.6): gadget for a language containing aγaδ where no
/// infix of γaγ is in the language. δ may be empty (Fig 7) or not (Fig 8).
PreGadget RepeatedLetterGadget(char a, const std::string& gamma,
                               const std::string& delta);

/// Fig 9: gadget for any infix-free language containing aba and bab.
PreGadget AbaBabGadget(char a = 'a', char b = 'b');

/// Fig 11: gadget for any infix-free language containing aab (a ≠ b).
PreGadget AabGadget(char a = 'a', char b = 'b');

/// Fig 12 candidates: gadget for an infix-free language containing
/// a·x·η·y·a and y·a·x with x, y distinct from a (Claim 6.13).
std::vector<PreGadget> AxEtaYaCandidates(char a, char x,
                                         const std::string& eta, char y);

/// Fig 13: gadget for ab|bc|ca (Prp 7.4).
PreGadget AbBcCaGadget();

/// Figs 15/16: the shared gadget database for abcd|be|ef and abcd|bef.
PreGadget AbcdGadget();

/// Convenience: verifies a list of candidates and returns the first valid
/// gadget for `lang`, or NotFound.
Result<PreGadget> FirstValidGadget(const Language& lang,
                                   std::vector<PreGadget> candidates);

}  // namespace rpqres

#endif  // RPQRES_GADGETS_PAPER_GADGETS_H_
