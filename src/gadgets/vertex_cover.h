// rpqres — gadgets/vertex_cover: undirected graphs, exact vertex cover, and
// the subdivision identity of Prp 4.2:
//   vc(ℓ-subdivision of G) = vc(G) + m(ℓ−1)/2   for odd ℓ, m = |E(G)|.

#ifndef RPQRES_GADGETS_VERTEX_COVER_H_
#define RPQRES_GADGETS_VERTEX_COVER_H_

#include <utility>
#include <vector>

#include "util/rng.h"

namespace rpqres {

/// A simple undirected graph (no self-loops; parallel edges deduplicated).
struct UndirectedGraph {
  int num_vertices = 0;
  std::vector<std::pair<int, int>> edges;  ///< normalized u < v, unique

  /// Adds an edge (idempotent; u != v required).
  void AddEdge(int u, int v);
};

/// A simple directed graph.
struct DirectedGraph {
  int num_vertices = 0;
  std::vector<std::pair<int, int>> edges;
};

/// Orients every edge arbitrarily (u < v direction), as in Prp 4.11's
/// reduction ("pick an arbitrary orientation").
DirectedGraph OrientArbitrarily(const UndirectedGraph& graph);

/// The ℓ-subdivision of G: each edge replaced by a path with ℓ-1 fresh
/// internal vertices (Prp 4.2).
UndirectedGraph Subdivide(const UndirectedGraph& graph, int ell);

/// Exact vertex cover number (branch & bound on an uncovered edge).
/// Intended for the small graphs of gadget validation tests.
int VertexCoverNumber(const UndirectedGraph& graph);

/// Uniform random graph G(n, edge_count) (simple).
UndirectedGraph RandomUndirectedGraph(Rng* rng, int num_vertices,
                                      int num_edges);

}  // namespace rpqres

#endif  // RPQRES_GADGETS_VERTEX_COVER_H_
