#include "gadgets/paper_gadgets.h"

#include "util/check.h"

namespace rpqres {
namespace {

// Shorthand: node by name (creates on first use).
NodeId N(GraphDb* db, const std::string& name) {
  return db->GetOrAddNode(name);
}

}  // namespace

PreGadget AaGadget() {
  // Fig 3b. Pre-gadget facts: tu -a-> 1 -a-> 2 -a-> 3 and tv -a-> 2.
  PreGadget g;
  g.name = "Fig3b(aa)";
  g.label = 'a';
  g.t_in = N(&g.db, "tu");
  g.t_out = N(&g.db, "tv");
  g.db.AddFact(g.t_in, 'a', N(&g.db, "1"));
  g.db.AddFact(N(&g.db, "1"), 'a', N(&g.db, "2"));
  g.db.AddFact(N(&g.db, "2"), 'a', N(&g.db, "3"));
  g.db.AddFact(g.t_out, 'a', N(&g.db, "2"));
  return g;
}

PreGadget AaaGadget(char a) {
  // Fig 10 — the paper notes it is the same database as Fig 3b.
  PreGadget g = AaGadget();
  g.name = std::string("Fig10(") + a + a + a + ")";
  if (a != 'a') {
    // Relabel for languages whose tripled letter differs.
    GraphDb relabeled;
    for (NodeId v = 0; v < g.db.num_nodes(); ++v) {
      relabeled.AddNode(g.db.node_name(v));
    }
    for (FactId f = 0; f < g.db.num_facts(); ++f) {
      relabeled.AddFact(g.db.fact(f).source, a, g.db.fact(f).target);
    }
    g.db = relabeled;
    g.label = a;
  }
  return g;
}

PreGadget AxbCxdGadget() {
  // Fig 4a, transcribed fact by fact from the paper's figure.
  PreGadget g;
  g.name = "Fig4a(axb|cxd)";
  g.label = 'a';
  GraphDb* db = &g.db;
  g.t_in = N(db, "tin");
  g.t_out = N(db, "tout");
  db->AddFact(g.t_in, 'x', N(db, "1"));
  db->AddFact(N(db, "1"), 'b', N(db, "2"));
  db->AddFact(N(db, "1"), 'd', N(db, "3"));
  db->AddFact(N(db, "5"), 'a', N(db, "4"));
  db->AddFact(N(db, "4"), 'x', N(db, "1"));
  db->AddFact(N(db, "6"), 'c', N(db, "4"));
  db->AddFact(N(db, "8"), 'c', N(db, "7"));
  db->AddFact(N(db, "7"), 'x', N(db, "1"));
  db->AddFact(N(db, "7"), 'x', N(db, "9"));
  db->AddFact(N(db, "9"), 'd', N(db, "10"));
  db->AddFact(N(db, "9"), 'b', N(db, "11"));
  db->AddFact(N(db, "13"), 'a', N(db, "12"));
  db->AddFact(N(db, "14"), 'c', N(db, "12"));
  db->AddFact(N(db, "12"), 'x', N(db, "9"));
  db->AddFact(N(db, "12"), 'x', N(db, "15"));
  db->AddFact(N(db, "15"), 'b', N(db, "16"));
  db->AddFact(g.t_out, 'x', N(db, "15"));
  return g;
}

PreGadget FourLeggedCase1Gadget(const FourLeggedWitness& witness) {
  // Fig 5: the generalization of Fig 4a. Decompose the stable legs as in
  // the proof of Thm 5.3 Case 1: α' = aα, β' = βb, γ' = cγ, δ' = δd.
  RPQRES_CHECK(!witness.alpha.empty() && !witness.beta.empty() &&
               !witness.gamma.empty() && !witness.delta.empty());
  const char a = witness.alpha.front();
  const std::string alpha = witness.alpha.substr(1);
  const char b = witness.beta.back();
  const std::string beta =
      witness.beta.substr(0, witness.beta.size() - 1);
  const char c = witness.gamma.front();
  const std::string gamma = witness.gamma.substr(1);
  const char d = witness.delta.back();
  const std::string delta =
      witness.delta.substr(0, witness.delta.size() - 1);
  const char x = witness.body;

  PreGadget g;
  g.name = "Fig5(case1)";
  g.label = a;
  GraphDb* db = &g.db;
  g.t_in = db->AddNode("tin");
  g.t_out = db->AddNode("tout");

  // Junction n1 fed by the completion chain (t_in · α · x), an aα-chain,
  // a cγ-chain, and a cγ-chain with a second x; n1 carries βb and δd.
  NodeId n1 = db->AddNode("n1");
  NodeId entry_end = AddPathFrom(db, g.t_in, alpha);
  db->AddFact(entry_end, x, n1);
  AddPathFrom(db, n1, beta + b);
  AddPathFrom(db, n1, delta + d);

  // u-block: aα and cγ chains converging on u3, x into n1.
  NodeId u3 = db->AddNode("u3");
  AddPathInto(db, db->AddNode("u1"), a + alpha, u3);
  AddPathInto(db, db->AddNode("v1"), c + gamma, u3);
  db->AddFact(u3, x, n1);

  // w-block: one cγ chain with x into both n1 and n2.
  NodeId w3 = db->AddNode("w3");
  AddPathInto(db, db->AddNode("w1"), c + gamma, w3);
  db->AddFact(w3, x, n1);
  NodeId n2 = db->AddNode("n2");
  db->AddFact(w3, x, n2);
  AddPathFrom(db, n2, beta + b);
  AddPathFrom(db, n2, delta + d);

  // p-block: aα and cγ chains on p3, x into n2 and n3.
  NodeId p3 = db->AddNode("p3");
  AddPathInto(db, db->AddNode("p1"), a + alpha, p3);
  AddPathInto(db, db->AddNode("q1"), c + gamma, p3);
  db->AddFact(p3, x, n2);
  NodeId n3 = db->AddNode("n3");
  db->AddFact(p3, x, n3);
  AddPathFrom(db, n3, beta + b);

  // Exit: t_out · α · x into n3.
  NodeId exit_end = AddPathFrom(db, g.t_out, alpha);
  db->AddFact(exit_end, x, n3);
  return g;
}

std::vector<PreGadget> FourLeggedCase2Candidates(
    const FourLeggedWitness& witness) {
  // Fig 6 reconstruction. The key structural element (visible in the
  // paper's figure as the cycle 4 → 5 → … → 13 → 4) is a γ'xβ' *cycle*:
  // the wrap-around walk reuses the cycle's facts, so its match-set is
  // strictly contained in the parasite matches of Case 2 (the infixes of
  // γ'xβ' that are in L) and edge-domination eliminates them, leaving the
  // 9-hyperedge odd path with vertex types c·d·c·b·a·b·x·c·d·c exactly as
  // in the figure's condensed hypergraph.
  std::vector<PreGadget> candidates;
  {
    const char c1 = witness.gamma.front();
    const std::string gamma1 = witness.gamma.substr(1);
    const char x = witness.body;

    PreGadget g;
    g.name = "Fig6(case2, γ'xβ' cycle)";
    g.label = c1;
    GraphDb* db = &g.db;
    g.t_in = db->AddNode("tin");
    g.t_out = db->AddNode("tout");

    // M1: completion γ'-walk into a δ'-only junction n0.
    NodeId n0 = db->AddNode("n0");
    NodeId g0 = AddPathFrom(db, g.t_in, gamma1);
    db->AddFact(g0, x, n0);
    AddPathFrom(db, n0, witness.delta);
    // M2/M3: a γ'-chain whose end reaches both n0 and a β'-junction n1.
    NodeId g1 = db->AddNode("g1");
    AddPathInto(db, db->AddNode("e1"), witness.gamma, g1);
    db->AddFact(g1, x, n0);
    NodeId n1 = db->AddNode("n1");
    db->AddFact(g1, x, n1);
    AddPathFrom(db, n1, witness.beta);
    // M4/M5: an α'-chain into n1 and into the cycle entry node s.
    NodeId h1 = db->AddNode("h1");
    AddPathInto(db, db->AddNode("f1"), witness.alpha, h1);
    db->AddFact(h1, x, n1);
    NodeId s = db->AddNode("s");
    db->AddFact(h1, x, s);
    // The cycle: s ─β'→ q ─γ'→ r ─x→ s, with a δ'-arm at s and an
    // α'-entry into r.
    NodeId q = AddPathFrom(db, s, witness.beta);
    NodeId r = AddPathFrom(db, q, witness.gamma);
    db->AddFact(r, x, s);
    AddPathFrom(db, s, witness.delta);
    AddPathInto(db, db->AddNode("e2"), witness.alpha, r);
    // M8/M9: a second x out of r into a δ'-only junction s3, shared with
    // the completion γ'-walk from t_out.
    NodeId s3 = db->AddNode("s3");
    db->AddFact(r, x, s3);
    AddPathFrom(db, s3, witness.delta);
    NodeId g9 = AddPathFrom(db, g.t_out, gamma1);
    db->AddFact(g9, x, s3);
    candidates.push_back(std::move(g));
  }
  {
    PreGadget g = FourLeggedCase1Gadget(witness);
    g.name = "Fig6-candidateB(case2, Fig4a topology)";
    candidates.push_back(std::move(g));
  }
  return candidates;
}

PreGadget RepeatedLetterGadget(char a, const std::string& gamma,
                               const std::string& delta) {
  // Figs 7 (δ = ε) and 8 (δ ≠ ε), for a maximal-gap word aγaδ where no
  // infix of γaγ is in the language.
  //
  // Special case γ = ε, δ ≠ ε (word a·a·δ): the spine construction would
  // make the F_out arm's δ-tail collide with a spine δ-tail, so we use the
  // generalization of Fig 11's shape instead (its odd path has length 3).
  // Maximal-gap words with γ = ε have a-free δ, as Claim 6.14 requires.
  if (gamma.empty() && !delta.empty()) {
    PreGadget g;
    g.name = "Fig11-general(a·a·δ)";
    g.label = a;
    GraphDb* db = &g.db;
    g.t_in = db->AddNode("tin");
    g.t_out = db->AddNode("tout");
    NodeId n1 = db->AddNode("1");
    db->AddFact(g.t_in, a, n1);
    AddPathFrom(db, n1, delta);
    NodeId n3 = db->AddNode("3");
    db->AddFact(g.t_out, a, n3);
    db->AddFact(n3, a, n1);
    AddPathFrom(db, n3, delta);
    return g;
  }

  PreGadget g;
  g.name = delta.empty() ? "Fig7(a·γ·a)" : "Fig8(a·γ·a·δ)";
  g.label = a;
  GraphDb* db = &g.db;
  g.t_in = db->AddNode("tin");
  g.t_out = db->AddNode("tout");

  // Spine: t_in ·γ· [A1] ·γ· [A2] ·γ· [A3], with δ-tails after every A.
  NodeId g1 = AddPathFrom(db, g.t_in, gamma);
  NodeId h1 = db->AddNode("h1");
  db->AddFact(g1, a, h1);
  NodeId g2 = AddPathFrom(db, h1, gamma);
  NodeId h2 = db->AddNode("h2");
  db->AddFact(g2, a, h2);
  NodeId g3 = AddPathFrom(db, h2, gamma);
  NodeId h3 = db->AddNode("h3");
  db->AddFact(g3, a, h3);
  // Side: t_out ·γ· [A4] ·γ· into g3 (A3's tail).
  NodeId g4 = AddPathFrom(db, g.t_out, gamma);
  NodeId h4;
  if (gamma.empty()) {
    h4 = g3;
    db->AddFact(g4, a, g3);
  } else {
    h4 = db->AddNode("h4");
    db->AddFact(g4, a, h4);
    AddPathInto(db, h4, gamma, g3);
  }
  if (!delta.empty()) {
    // One δ-tail per distinct a-head (h4 may coincide with g3 = the tail
    // of A3 when γ = ε, but never with another head).
    std::vector<NodeId> heads = {h1, h2, h3};
    if (h4 != h1 && h4 != h2 && h4 != h3) heads.push_back(h4);
    for (NodeId h : heads) AddPathFrom(db, h, delta);
  }
  return g;
}

PreGadget AbaBabGadget(char a, char b) {
  // Fig 9, transcribed from the proof of Claim 6.10.
  PreGadget g;
  g.name = "Fig9(aba,bab)";
  g.label = a;
  GraphDb* db = &g.db;
  g.t_in = N(db, "tin");
  g.t_out = N(db, "tout");
  db->AddFact(g.t_in, b, N(db, "1"));
  db->AddFact(N(db, "5"), b, N(db, "1"));
  db->AddFact(N(db, "1"), a, N(db, "2"));
  db->AddFact(N(db, "2"), b, N(db, "3"));
  db->AddFact(N(db, "3"), a, N(db, "4"));
  db->AddFact(N(db, "7"), a, N(db, "4"));
  db->AddFact(N(db, "4"), b, N(db, "6"));
  db->AddFact(N(db, "8"), b, N(db, "7"));
  db->AddFact(g.t_out, b, N(db, "7"));
  return g;
}

PreGadget AabGadget(char a, char b) {
  // Fig 11, transcribed from the proof of Claim 6.14.
  RPQRES_CHECK(a != b);
  PreGadget g;
  g.name = "Fig11(aab)";
  g.label = a;
  GraphDb* db = &g.db;
  g.t_in = N(db, "tin");
  g.t_out = N(db, "tout");
  db->AddFact(g.t_in, a, N(db, "1"));
  db->AddFact(N(db, "1"), b, N(db, "2"));
  db->AddFact(g.t_out, a, N(db, "3"));
  db->AddFact(N(db, "3"), a, N(db, "1"));
  db->AddFact(N(db, "3"), b, N(db, "4"));
  return g;
}

std::vector<PreGadget> AxEtaYaCandidates(char a, char x,
                                         const std::string& eta, char y) {
  // Fig 12 reconstruction candidates for L ⊇ {a·x·η·y·a, y·a·x}. The
  // figure's exact wiring is not recoverable from the paper text; the
  // candidates below follow its visible structure (a cycle
  // x·η·y·a closing on itself, entered and exited through a-edges).
  std::vector<PreGadget> candidates;
  {
    // Candidate A: one cycle, entry/exit arms.
    PreGadget g;
    g.name = "Fig12-candidateA(one cycle)";
    g.label = a;
    GraphDb* db = &g.db;
    g.t_in = db->AddNode("tin");
    g.t_out = db->AddNode("tout");
    // Entry W: t_in · x · η · y · a -> hub.
    NodeId hub = db->AddNode("hub");
    NodeId e1 = db->AddNode("e1");
    db->AddFact(g.t_in, x, e1);
    NodeId e2 = AddPathFrom(db, e1, eta);
    NodeId e3 = db->AddNode("e3");
    db->AddFact(e2, y, e3);
    db->AddFact(e3, a, hub);
    // Cycle: hub · x · η · y · back -> a -> hub, with an exit a-edge.
    NodeId c1 = db->AddNode("c1");
    db->AddFact(hub, x, c1);
    NodeId c2 = AddPathFrom(db, c1, eta);
    NodeId back = db->AddNode("back");
    db->AddFact(c2, y, back);
    db->AddFact(back, a, hub);
    NodeId exit = db->AddNode("exit");
    db->AddFact(back, a, exit);
    // Exit V-chain: exit · x into a dead node (y·a·x matches only).
    NodeId dead = db->AddNode("dead");
    db->AddFact(exit, x, dead);
    // Second (y, a) pair into `exit`'s x-tail, fed by the t_out arm:
    // t_out · x · η · y · a -> exit2 -> x(dead).
    NodeId f1 = db->AddNode("f1");
    db->AddFact(g.t_out, x, f1);
    NodeId f2 = AddPathFrom(db, f1, eta);
    NodeId f3 = db->AddNode("f3");
    db->AddFact(f2, y, f3);
    NodeId exit2 = db->AddNode("exit2");
    db->AddFact(f3, a, exit2);
    db->AddFact(exit2, x, dead);
    candidates.push_back(std::move(g));
  }
  {
    // Candidate B: two mirrored cycles joined by the dead x-node.
    PreGadget g;
    g.name = "Fig12-candidateB(two cycles)";
    g.label = a;
    GraphDb* db = &g.db;
    g.t_in = db->AddNode("tin");
    g.t_out = db->AddNode("tout");
    NodeId dead = db->AddNode("dead");
    auto build_side = [&](NodeId t, const std::string& tag) {
      NodeId hub = db->AddNode("hub" + tag);
      NodeId e1 = db->AddNode("e1" + tag);
      db->AddFact(t, x, e1);
      NodeId e2 = AddPathFrom(db, e1, eta);
      NodeId e3 = db->AddNode("e3" + tag);
      db->AddFact(e2, y, e3);
      db->AddFact(e3, a, hub);
      NodeId c1 = db->AddNode("c1" + tag);
      db->AddFact(hub, x, c1);
      NodeId c2 = AddPathFrom(db, c1, eta);
      NodeId back = db->AddNode("back" + tag);
      db->AddFact(c2, y, back);
      db->AddFact(back, a, hub);
      NodeId exit = db->AddNode("exit" + tag);
      db->AddFact(back, a, exit);
      db->AddFact(exit, x, dead);
    };
    build_side(g.t_in, "L");
    build_side(g.t_out, "R");
    candidates.push_back(std::move(g));
  }
  return candidates;
}

PreGadget AbBcCaGadget() {
  // Fig 13 (Prp 7.4).
  PreGadget g;
  g.name = "Fig13(ab|bc|ca)";
  g.label = 'a';
  GraphDb* db = &g.db;
  g.t_in = N(db, "tin");
  g.t_out = N(db, "tout");
  db->AddFact(g.t_in, 'b', N(db, "1"));
  db->AddFact(N(db, "1"), 'c', N(db, "2"));
  db->AddFact(N(db, "2"), 'a', N(db, "3"));
  db->AddFact(N(db, "3"), 'b', N(db, "4"));
  db->AddFact(N(db, "4"), 'c', N(db, "5"));
  db->AddFact(g.t_out, 'b', N(db, "4"));
  return g;
}

PreGadget AbcdGadget() {
  // Figs 15/16 (Prp 7.11) — the shared database for abcd|be|ef and
  // abcd|bef.
  PreGadget g;
  g.name = "Fig15/16(abcd…)";
  g.label = 'a';
  GraphDb* db = &g.db;
  g.t_in = N(db, "tin");
  g.t_out = N(db, "tout");
  db->AddFact(g.t_in, 'b', N(db, "1"));
  db->AddFact(N(db, "1"), 'c', N(db, "2"));
  db->AddFact(N(db, "2"), 'd', N(db, "3"));
  db->AddFact(N(db, "1"), 'e', N(db, "4"));
  db->AddFact(N(db, "4"), 'f', N(db, "5"));
  db->AddFact(N(db, "6"), 'a', N(db, "7"));
  db->AddFact(N(db, "7"), 'b', N(db, "8"));
  db->AddFact(N(db, "8"), 'e', N(db, "4"));
  db->AddFact(N(db, "8"), 'c', N(db, "9"));
  db->AddFact(N(db, "9"), 'd', N(db, "10"));
  db->AddFact(g.t_out, 'b', N(db, "11"));
  db->AddFact(N(db, "11"), 'c', N(db, "9"));
  return g;
}

Result<PreGadget> FirstValidGadget(const Language& lang,
                                   std::vector<PreGadget> candidates) {
  std::string reasons;
  for (PreGadget& candidate : candidates) {
    Result<GadgetVerification> verification =
        VerifyGadget(lang, candidate);
    if (verification.ok() && verification->valid) {
      return std::move(candidate);
    }
    reasons += "\n  " + candidate.name + ": " +
               (verification.ok() ? verification->reason
                                  : verification.status().ToString());
  }
  return Status::NotFound("no candidate gadget verified for " +
                          lang.description() + ":" + reasons);
}

}  // namespace rpqres
