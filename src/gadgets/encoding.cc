#include "gadgets/encoding.h"

#include "util/check.h"

namespace rpqres {

GraphDb EncodeGraph(const DirectedGraph& graph, const PreGadget& gadget) {
  Status status = ValidatePreGadget(gadget);
  RPQRES_CHECK_MSG(status.ok(), status.ToString());

  GraphDb out;
  // Per node u of G: fresh s_u, t_u and the fact s_u -a-> t_u.
  std::vector<NodeId> t_of(graph.num_vertices);
  for (int u = 0; u < graph.num_vertices; ++u) {
    NodeId s = out.AddNode("s" + std::to_string(u));
    t_of[u] = out.AddNode("t" + std::to_string(u));
    out.AddFact(s, gadget.label, t_of[u]);
  }
  // Per edge (u, v): a copy of the pre-gadget with t_in -> t_u,
  // t_out -> t_v, all other nodes fresh.
  for (size_t e = 0; e < graph.edges.size(); ++e) {
    auto [u, v] = graph.edges[e];
    std::vector<NodeId> remap(gadget.db.num_nodes(), -1);
    remap[gadget.t_in] = t_of[u];
    remap[gadget.t_out] = t_of[v];
    for (NodeId w = 0; w < gadget.db.num_nodes(); ++w) {
      if (remap[w] < 0) {
        remap[w] = out.AddNode("e" + std::to_string(e) + "_" +
                               gadget.db.node_name(w));
      }
    }
    for (FactId f = 0; f < gadget.db.num_facts(); ++f) {
      const Fact& fact = gadget.db.fact(f);
      out.AddFact(remap[fact.source], fact.label, remap[fact.target],
                  gadget.db.multiplicity(f));
    }
  }
  return out;
}

Capacity PredictedEncodingResilience(const UndirectedGraph& graph,
                                     int path_edges) {
  RPQRES_CHECK_MSG(path_edges % 2 == 1, "gadget path length must be odd");
  Capacity vc = VertexCoverNumber(graph);
  Capacity m = static_cast<Capacity>(graph.edges.size());
  return vc + m * (path_edges - 1) / 2;
}

}  // namespace rpqres
