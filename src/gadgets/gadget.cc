#include "gadgets/gadget.h"

#include "util/check.h"

namespace rpqres {

Status ValidatePreGadget(const PreGadget& gadget) {
  if (gadget.t_in == gadget.t_out) {
    return Status::FailedPrecondition("pre-gadget: t_in == t_out");
  }
  if (gadget.t_in < 0 || gadget.t_in >= gadget.db.num_nodes() ||
      gadget.t_out < 0 || gadget.t_out >= gadget.db.num_nodes()) {
    return Status::InvalidArgument("pre-gadget: endpoint not a node");
  }
  for (FactId f = 0; f < gadget.db.num_facts(); ++f) {
    NodeId head = gadget.db.fact(f).target;
    if (head == gadget.t_in || head == gadget.t_out) {
      return Status::FailedPrecondition(
          "pre-gadget: " + std::string(1, gadget.db.fact(f).label) +
          "-fact has t_in/t_out as head (violates Def 4.3)");
    }
  }
  return Status::OK();
}

CompletedGadget Complete(const PreGadget& gadget) {
  Status status = ValidatePreGadget(gadget);
  RPQRES_CHECK_MSG(status.ok(), status.ToString());
  CompletedGadget out;
  out.db = gadget.db;
  out.s_in = out.db.AddNode("s_in");
  out.s_out = out.db.AddNode("s_out");
  out.f_in = out.db.AddFact(out.s_in, gadget.label, gadget.t_in);
  out.f_out = out.db.AddFact(out.s_out, gadget.label, gadget.t_out);
  return out;
}

Result<GadgetVerification> VerifyGadget(const Language& lang,
                                        const PreGadget& gadget) {
  GadgetVerification verification;
  Status valid = ValidatePreGadget(gadget);
  if (!valid.ok()) {
    verification.reason = valid.ToString();
    return verification;
  }
  CompletedGadget completed = Complete(gadget);
  RPQRES_ASSIGN_OR_RETURN(verification.matches,
                          HypergraphOfMatches(lang, completed.db));
  verification.condensation =
      Condense(verification.matches, {completed.f_in, completed.f_out});

  // Locate the endpoint facts among the surviving vertices.
  int from = -1, to = -1;
  const std::vector<int>& kept = verification.condensation.kept_vertices;
  for (size_t i = 0; i < kept.size(); ++i) {
    if (kept[i] == completed.f_in) from = static_cast<int>(i);
    if (kept[i] == completed.f_out) to = static_cast<int>(i);
  }
  if (from < 0 || to < 0) {
    verification.reason =
        "an endpoint fact was condensed away (no match contains it)";
    return verification;
  }
  verification.odd_path =
      CheckOddPath(verification.condensation.condensed, from, to);
  verification.valid = verification.odd_path.is_odd_path;
  if (!verification.valid) verification.reason = verification.odd_path.reason;
  return verification;
}

NodeId AddPathFrom(GraphDb* db, NodeId from, const std::string& word) {
  NodeId current = from;
  for (char c : word) {
    NodeId next = db->AddNode();
    db->AddFact(current, c, next);
    current = next;
  }
  return current;
}

void AddPathInto(GraphDb* db, NodeId from, const std::string& word,
                 NodeId to) {
  RPQRES_CHECK_MSG(!word.empty(), "AddPathInto requires a non-empty word");
  NodeId current = from;
  for (size_t i = 0; i + 1 < word.size(); ++i) {
    NodeId next = db->AddNode();
    db->AddFact(current, word[i], next);
    current = next;
  }
  db->AddFact(current, word.back(), to);
}

}  // namespace rpqres
