#include "gadgets/hypergraph.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "automata/ops.h"
#include "util/check.h"

namespace rpqres {

void Hypergraph::Normalize() {
  for (std::vector<int>& edge : edges) {
    std::sort(edge.begin(), edge.end());
    edge.erase(std::unique(edge.begin(), edge.end()), edge.end());
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

std::string Hypergraph::ToString() const {
  std::ostringstream os;
  for (const std::vector<int>& edge : edges) {
    os << "{";
    for (size_t i = 0; i < edge.size(); ++i) {
      if (i > 0) os << ", ";
      if (edge[i] < static_cast<int>(vertex_names.size()) &&
          !vertex_names[edge[i]].empty()) {
        os << vertex_names[edge[i]];
      } else {
        os << edge[i];
      }
    }
    os << "}\n";
  }
  return os.str();
}

namespace {

// True iff the fact graph of `db` has a directed cycle (nodes as vertices).
bool HasDirectedCycle(const GraphDb& db) {
  int n = db.num_nodes();
  std::vector<int> color(n, 0);
  for (int root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    std::vector<std::pair<int, size_t>> stack{{root, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      if (i >= db.OutFacts(v).size()) {
        color[v] = 2;
        stack.pop_back();
        continue;
      }
      NodeId to = db.fact(db.OutFacts(v)[i]).target;
      ++i;
      if (color[to] == 1) return true;
      if (color[to] == 0) {
        color[to] = 1;
        stack.push_back({to, 0});
      }
    }
  }
  return false;
}

}  // namespace

Result<Hypergraph> HypergraphOfMatches(const Language& lang,
                                       const GraphDb& db, size_t max_walks) {
  // Determine a walk-length bound.
  int max_length;
  if (lang.IsFinite()) {
    RPQRES_ASSIGN_OR_RETURN(std::vector<std::string> words, lang.Words());
    max_length = 0;
    for (const std::string& w : words) {
      max_length = std::max(max_length, static_cast<int>(w.size()));
    }
  } else {
    if (HasDirectedCycle(db)) {
      return Status::FailedPrecondition(
          "HypergraphOfMatches: infinite language over a cyclic database "
          "(matches cannot be enumerated as bounded walks)");
    }
    max_length = db.num_nodes();  // acyclic: walks repeat no node
  }

  Hypergraph h;
  h.num_vertices = db.num_facts();
  for (FactId f = 0; f < db.num_facts(); ++f) {
    const Fact& fact = db.fact(f);
    h.vertex_names.push_back(std::string(1, fact.label) + "(" +
                             db.node_name(fact.source) + "," +
                             db.node_name(fact.target) + ")");
  }

  // DFS over all walks up to max_length from every node; every walk whose
  // label is in L contributes its fact set as a hyperedge. Walks may repeat
  // facts; the match is the set.
  std::set<std::vector<int>> matches;
  size_t walks = 0;
  std::vector<FactId> walk;
  std::string label;

  // Recursive lambda via explicit stack of (node, next fact index).
  for (NodeId start = 0; start < db.num_nodes(); ++start) {
    struct Frame {
      NodeId node;
      size_t index = 0;
    };
    std::vector<Frame> stack{{start}};
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.index >= db.OutFacts(frame.node).size() ||
          static_cast<int>(walk.size()) >= max_length) {
        stack.pop_back();
        if (!walk.empty()) {
          walk.pop_back();
          label.pop_back();
        }
        continue;
      }
      FactId f = db.OutFacts(frame.node)[frame.index++];
      if (++walks > max_walks) {
        return Status::OutOfRange("HypergraphOfMatches: more than " +
                                  std::to_string(max_walks) + " walks");
      }
      walk.push_back(f);
      label.push_back(db.fact(f).label);
      if (lang.Contains(label)) {
        std::vector<int> match(walk.begin(), walk.end());
        std::sort(match.begin(), match.end());
        match.erase(std::unique(match.begin(), match.end()), match.end());
        matches.insert(std::move(match));
      }
      stack.push_back(Frame{db.fact(f).target});
    }
    RPQRES_DCHECK(walk.empty());
  }
  h.edges.assign(matches.begin(), matches.end());
  h.Normalize();
  return h;
}

namespace {

void HittingSetBranch(const std::vector<std::vector<int>>& edges,
                      std::vector<bool>* chosen, int cost, int* best) {
  if (cost >= *best) return;
  // Find the first unhit edge.
  const std::vector<int>* unhit = nullptr;
  for (const std::vector<int>& edge : edges) {
    bool hit = false;
    for (int v : edge) {
      if ((*chosen)[v]) {
        hit = true;
        break;
      }
    }
    if (!hit) {
      unhit = &edge;
      break;
    }
  }
  if (unhit == nullptr) {
    *best = cost;
    return;
  }
  for (int v : *unhit) {
    (*chosen)[v] = true;
    HittingSetBranch(edges, chosen, cost + 1, best);
    (*chosen)[v] = false;
  }
}

}  // namespace

namespace {

void WeightedHittingSetBranch(const std::vector<std::vector<int>>& edges,
                              const std::vector<Capacity>& weights,
                              std::vector<bool>* chosen, Capacity cost,
                              Capacity* best_cost,
                              std::vector<bool>* best_set) {
  if (cost >= *best_cost) return;
  const std::vector<int>* unhit = nullptr;
  for (const std::vector<int>& edge : edges) {
    bool hit = false;
    for (int v : edge) {
      if ((*chosen)[v]) {
        hit = true;
        break;
      }
    }
    if (!hit) {
      unhit = &edge;
      break;
    }
  }
  if (unhit == nullptr) {
    *best_cost = cost;
    *best_set = *chosen;
    return;
  }
  for (int v : *unhit) {
    if (weights[v] == kInfiniteCapacity) continue;  // exogenous
    (*chosen)[v] = true;
    WeightedHittingSetBranch(edges, weights, chosen, cost + weights[v],
                             best_cost, best_set);
    (*chosen)[v] = false;
  }
}

}  // namespace

HittingSetSolution MinimumWeightHittingSet(
    const Hypergraph& h, const std::vector<Capacity>& weights) {
  RPQRES_CHECK(static_cast<int>(weights.size()) == h.num_vertices);
  HittingSetSolution solution;
  // Feasibility: every edge needs at least one finite-weight vertex.
  for (const std::vector<int>& edge : h.edges) {
    bool usable = false;
    for (int v : edge) usable |= weights[v] != kInfiniteCapacity;
    if (!usable) {
      solution.feasible = false;
      return solution;
    }
  }
  // Upper bound: choose every finite-weight vertex that is on some edge.
  Capacity best_cost = 0;
  std::vector<bool> best_set(h.num_vertices, false);
  for (const std::vector<int>& edge : h.edges) {
    for (int v : edge) {
      if (!best_set[v] && weights[v] != kInfiniteCapacity) {
        best_set[v] = true;
        best_cost += weights[v];
      }
    }
  }
  std::vector<bool> chosen(h.num_vertices, false);
  Capacity cost_bound = best_cost + 1;
  WeightedHittingSetBranch(h.edges, weights, &chosen, 0, &cost_bound,
                           &best_set);
  solution.cost = std::min(cost_bound, best_cost);
  for (int v = 0; v < h.num_vertices; ++v) {
    if (best_set[v]) solution.vertices.push_back(v);
  }
  return solution;
}

int MinimumHittingSetSize(const Hypergraph& h) {
  for (const std::vector<int>& edge : h.edges) {
    if (edge.empty()) return -1;
  }
  int best = 0;
  // Upper bound: one vertex per edge.
  best = static_cast<int>(h.edges.size());
  std::vector<bool> chosen(h.num_vertices, false);
  int result = best + 1;
  HittingSetBranch(h.edges, &chosen, 0, &result);
  return std::min(result, best);
}

}  // namespace rpqres
