// rpqres — gadgets/thm61: the proof of Theorem 6.1 as an executable
// pipeline.
//
// Given a finite language whose infix-free sublanguage contains a word
// with a repeated letter, this walks the proof's case analysis and builds
// the corresponding hardness gadget:
//   * four-legged (Claims 6.5/6.8/6.9/6.12 exits) → Thm 5.3 Case 1/2;
//   * maximal-gap word aγaδ with no infix of γaγ in L → Lem 6.6
//     (Figs 7/8, or the generalized Fig 11 shape when γ = ε ≠ δ);
//   * overlapping case → aaa (Claim 6.11) or aba/bab (Claim 6.10);
//   * non-overlapping case → aab (Claim 6.14) or the Fig 12 construction
//     (Claim 6.13) — the latter is a known reconstruction gap and returns
//     NotFound (see EXPERIMENTS.md row 3b).
// The pipeline may switch to the mirror language (Prp 6.3); the result
// records which. The returned gadget is verified by construction in the
// tests via VerifyGadget.

#ifndef RPQRES_GADGETS_THM61_H_
#define RPQRES_GADGETS_THM61_H_

#include <string>

#include "gadgets/gadget.h"
#include "lang/language.h"
#include "util/status.h"

namespace rpqres {

/// Outcome of the Theorem 6.1 construction.
struct Thm61Gadget {
  PreGadget gadget;
  /// The gadget is for the *mirror* language; hardness transfers by
  /// Prp 6.3 (and verification must run against Mirror(IF(L))).
  bool mirrored = false;
  /// Which proof case produced the gadget (for reports).
  std::string proof_case;
};

/// Builds a hardness gadget for `lang` following Theorem 6.1's proof.
/// Requirements: IF(lang) finite, non-empty, ε-free, with a repeated
/// letter word. Errors: FailedPrecondition if the requirements fail,
/// NotFound for the Fig 12 reconstruction gap.
Result<Thm61Gadget> BuildThm61Gadget(const Language& lang);

}  // namespace rpqres

#endif  // RPQRES_GADGETS_THM61_H_
