// rpqres — gadgets/gadget: pre-gadgets, completions, and gadget
// verification (Defs 4.3 and 4.9).
//
// This module is the analogue of the authors' companion sanity-check
// implementation [3]: given a pre-gadget and a language, it completes the
// gadget, enumerates the hypergraph of matches, condenses it (protecting
// the endpoint facts), and checks the odd-path condition. A verified
// gadget yields NP-hardness via Prp 4.11.

#ifndef RPQRES_GADGETS_GADGET_H_
#define RPQRES_GADGETS_GADGET_H_

#include <string>

#include "gadgets/condensation.h"
#include "gadgets/hypergraph.h"
#include "graphdb/graph_db.h"
#include "lang/language.h"
#include "util/status.h"

namespace rpqres {

/// A pre-gadget Γ = (D, t_in, t_out, a) (Def 4.3).
struct PreGadget {
  GraphDb db;
  NodeId t_in = 0;
  NodeId t_out = 0;
  char label = 'a';
  std::string name;
};

/// A completed gadget D' = D + {s_in -a-> t_in, s_out -a-> t_out}.
struct CompletedGadget {
  GraphDb db;
  NodeId s_in = 0;
  NodeId s_out = 0;
  FactId f_in = 0;   ///< the endpoint fact F_in = s_in -a-> t_in
  FactId f_out = 0;  ///< the endpoint fact F_out = s_out -a-> t_out
};

/// Checks the structural conditions of Def 4.3: t_in ≠ t_out, and neither
/// occurs as the head (target) of a fact of D.
Status ValidatePreGadget(const PreGadget& gadget);

/// Builds the completion (Def 4.3). Aborts if the pre-gadget is invalid.
CompletedGadget Complete(const PreGadget& gadget);

/// Outcome of the full gadget check (Def 4.9).
struct GadgetVerification {
  bool valid = false;
  std::string reason;         ///< failure explanation if !valid
  Hypergraph matches;         ///< H_{L,D'} on the completion
  CondensationResult condensation;
  OddPathCheck odd_path;      ///< path_edges is the subdivision length ℓ
};

/// Verifies that `gadget` is a gadget for `lang` (Def 4.9): the hypergraph
/// of matches of the completion condenses to an odd path from F_in to
/// F_out. Errors (not `valid=false`) indicate the check could not be run
/// (e.g. unboundedly many matches).
Result<GadgetVerification> VerifyGadget(const Language& lang,
                                        const PreGadget& gadget);

// --- Construction helpers (used by paper_gadgets.cc and tests) ------------

/// Adds a fresh path labeled `word` starting at `from`; returns its last
/// node (== from when word is empty).
NodeId AddPathFrom(GraphDb* db, NodeId from, const std::string& word);

/// Adds a path labeled `word` from `from` whose final edge enters `to`
/// (intermediate nodes fresh). Requires word non-empty.
void AddPathInto(GraphDb* db, NodeId from, const std::string& word,
                 NodeId to);

}  // namespace rpqres

#endif  // RPQRES_GADGETS_GADGET_H_
