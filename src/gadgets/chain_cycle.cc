#include "gadgets/chain_cycle.h"

#include <algorithm>
#include <map>
#include <queue>

#include "lang/chain.h"
#include "lang/infix_free.h"
#include "util/check.h"

namespace rpqres {

PreGadget OddChainCycleGadget(const std::vector<std::string>& cycle_words) {
  const size_t m = cycle_words.size();
  RPQRES_CHECK_MSG(m >= 3 && m % 2 == 1,
                   "need an odd cycle of at least 3 words");
  for (size_t i = 0; i < m; ++i) {
    RPQRES_CHECK_MSG(cycle_words[i].size() >= 2, "words must have length 2+");
    RPQRES_CHECK_MSG(cycle_words[i].back() == cycle_words[(i + 1) % m][0],
                     "words must chain around the cycle");
  }

  PreGadget g;
  g.name = "Fig13-general(odd chain cycle)";
  g.label = cycle_words[0][0];  // x_1
  GraphDb* db = &g.db;
  g.t_in = db->AddNode("tin");
  g.t_out = db->AddNode("tout");

  // Spine: m+2 segments, segment i spelling w_{(i−1) mod m}[1:] — once
  // around the cycle plus two more segments (w1, w2 again). Segment m+1
  // parallels w1, and m+2 is the last, so the side arm (re-spelling w1
  // from t_out into segment m+1's end) closes the Fig 13 shape: its two
  // matches are {F_out, side} and {side, segment m+2}. m odd makes the
  // total match count (m+2) + 2 odd. For m = 3 this is exactly Fig 13.
  NodeId current = g.t_in;
  NodeId side_anchor = -1;  // end node of segment m+1
  for (size_t i = 1; i <= m + 2; ++i) {
    const std::string& word = cycle_words[(i - 1) % m];
    current = AddPathFrom(db, current, word.substr(1));
    if (i == m + 1) side_anchor = current;
  }
  RPQRES_CHECK(side_anchor >= 0);
  // Side arm: t_out re-spells w_1[1:] into the spine at the side anchor.
  AddPathInto(db, g.t_out, cycle_words[0].substr(1), side_anchor);
  return g;
}

Result<PreGadget> BuildNonBipartiteChainGadget(const Language& lang) {
  Language ifl = InfixFreeSublanguage(lang);
  ChainAnalysis chain = AnalyzeChain(ifl);
  if (!chain.is_chain) {
    return Status::FailedPrecondition(
        "not a chain language: " + chain.violation);
  }
  EndpointGraph endpoint_graph = BuildEndpointGraph(chain.words);
  if (BipartitionEndpointGraph(endpoint_graph)) {
    return Status::FailedPrecondition(
        "endpoint graph is bipartite (PTIME by Prp 7.6)");
  }

  // Word digraph on endpoint letters: arc x→y per word xμy (|word| >= 2).
  std::map<char, std::vector<const std::string*>> arcs;
  for (const std::string& w : chain.words) {
    if (w.size() >= 2 && w.front() != w.back()) {
      arcs[w.front()].push_back(&w);
    }
  }

  // Shortest odd closed walk via BFS on (letter, parity). A closed odd
  // walk yields a word sequence that chains around consistently.
  std::string reasons;
  for (const auto& [start, unused] : arcs) {
    (void)unused;
    std::map<std::pair<char, int>, std::pair<char, const std::string*>>
        parent;
    std::queue<std::pair<char, int>> queue;
    queue.push({start, 0});
    parent[{start, 0}] = {'\0', nullptr};
    bool found = false;
    while (!queue.empty() && !found) {
      auto [letter, parity] = queue.front();
      queue.pop();
      for (const std::string* word : arcs[letter]) {
        std::pair<char, int> next = {word->back(), 1 - parity};
        if (parent.count(next)) continue;
        parent[next] = {letter, word};
        if (next == std::make_pair(start, 1)) {
          found = true;
          break;
        }
        queue.push(next);
      }
    }
    if (!found) continue;
    // Reconstruct the word sequence (walk of odd length ending at start).
    std::vector<std::string> cycle;
    std::pair<char, int> state = {start, 1};
    while (parent[state].second != nullptr) {
      cycle.push_back(*parent[state].second);
      state = {parent[state].first, 1 - state.second};
    }
    std::reverse(cycle.begin(), cycle.end());
    if (cycle.size() < 3) continue;  // 1-cycles impossible for chains

    PreGadget candidate = OddChainCycleGadget(cycle);
    Result<GadgetVerification> v = VerifyGadget(ifl, candidate);
    if (v.ok() && v->valid) return candidate;
    reasons += std::string("\n  cycle at '") + start + "': " +
               (v.ok() ? v->reason : v.status().ToString());
  }
  return Status::NotFound(
      "no odd word cycle yielded a verified gadget for " +
      lang.description() + reasons);
}

}  // namespace rpqres
