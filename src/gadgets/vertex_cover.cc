#include "gadgets/vertex_cover.h"

#include <algorithm>

#include "util/check.h"

namespace rpqres {

void UndirectedGraph::AddEdge(int u, int v) {
  RPQRES_CHECK_MSG(u != v, "self-loops not supported");
  RPQRES_DCHECK(u >= 0 && u < num_vertices && v >= 0 && v < num_vertices);
  if (u > v) std::swap(u, v);
  auto edge = std::make_pair(u, v);
  if (std::find(edges.begin(), edges.end(), edge) == edges.end()) {
    edges.push_back(edge);
  }
}

DirectedGraph OrientArbitrarily(const UndirectedGraph& graph) {
  DirectedGraph out;
  out.num_vertices = graph.num_vertices;
  out.edges = graph.edges;  // already stored as (u < v)
  return out;
}

UndirectedGraph Subdivide(const UndirectedGraph& graph, int ell) {
  RPQRES_CHECK_MSG(ell >= 1, "subdivision length must be >= 1");
  UndirectedGraph out;
  out.num_vertices = graph.num_vertices;
  for (auto [u, v] : graph.edges) {
    int prev = u;
    for (int i = 0; i + 1 < ell; ++i) {
      int mid = out.num_vertices++;
      out.AddEdge(prev, mid);
      prev = mid;
    }
    out.AddEdge(prev, v);
  }
  return out;
}

namespace {

void VcBranch(const std::vector<std::pair<int, int>>& edges,
              std::vector<bool>* chosen, int cost, int* best) {
  if (cost >= *best) return;
  const std::pair<int, int>* uncovered = nullptr;
  for (const auto& edge : edges) {
    if (!(*chosen)[edge.first] && !(*chosen)[edge.second]) {
      uncovered = &edge;
      break;
    }
  }
  if (uncovered == nullptr) {
    *best = cost;
    return;
  }
  for (int v : {uncovered->first, uncovered->second}) {
    (*chosen)[v] = true;
    VcBranch(edges, chosen, cost + 1, best);
    (*chosen)[v] = false;
  }
}

}  // namespace

int VertexCoverNumber(const UndirectedGraph& graph) {
  std::vector<bool> chosen(graph.num_vertices, false);
  int best = static_cast<int>(graph.edges.size()) + 1;
  VcBranch(graph.edges, &chosen, 0, &best);
  return std::min<int>(best, static_cast<int>(graph.edges.size()));
}

UndirectedGraph RandomUndirectedGraph(Rng* rng, int num_vertices,
                                      int num_edges) {
  RPQRES_CHECK(num_vertices >= 2);
  UndirectedGraph graph;
  graph.num_vertices = num_vertices;
  for (int i = 0; i < num_edges; ++i) {
    int u = static_cast<int>(rng->NextBelow(num_vertices));
    int v = static_cast<int>(rng->NextBelow(num_vertices));
    if (u == v) continue;
    graph.AddEdge(u, v);
  }
  return graph;
}

}  // namespace rpqres
