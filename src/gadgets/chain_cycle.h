// rpqres — gadgets/chain_cycle: hardness gadgets for non-bipartite chain
// languages, generalizing Fig 13.
//
// The paper proves NP-hardness for the non-bipartite chain language
// ab|bc|ca (Prp 7.4) and *conjectures* it for all non-bipartite chain
// languages. This module mechanically extends the proven territory: for a
// chain language whose words form an odd directed cycle on endpoint
// letters, it threads the cycle words twice into a Fig 13-shaped spine
// plus side arm. When the resulting pre-gadget verifies (Def 4.9), NP-
// hardness follows from the *proven* Prp 4.11 — so every success is a
// certified theorem, not a heuristic.

#ifndef RPQRES_GADGETS_CHAIN_CYCLE_H_
#define RPQRES_GADGETS_CHAIN_CYCLE_H_

#include <string>
#include <vector>

#include "gadgets/gadget.h"
#include "lang/language.h"
#include "util/status.h"

namespace rpqres {

/// Builds the Fig 13-generalized pre-gadget for an odd sequence of chain
/// words w_1 … w_m (m odd) forming a directed cycle on endpoint letters:
/// w_i starts with x_i and ends with x_{i+1 mod m}. The completion letter
/// is x_1; the spine spells w_1[1:] w_2[1:] … around the cycle twice
/// (2m−1 segments), and the side arm re-spells w_1[1:] into the end of
/// segment m+1. Requires every |w_i| >= 2.
PreGadget OddChainCycleGadget(const std::vector<std::string>& cycle_words);

/// Finds an odd directed cycle of words in the endpoint structure of a
/// non-bipartite chain language, builds the gadget, and verifies it.
/// NotFound if no consistently-oriented odd cycle exists or the candidate
/// fails verification; FailedPrecondition if IF(lang) is not a chain
/// language or is bipartite.
Result<PreGadget> BuildNonBipartiteChainGadget(const Language& lang);

}  // namespace rpqres

#endif  // RPQRES_GADGETS_CHAIN_CYCLE_H_
