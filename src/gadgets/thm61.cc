#include "gadgets/thm61.h"

#include "gadgets/paper_gadgets.h"
#include "lang/four_legged.h"
#include "lang/infix_free.h"
#include "lang/repeated_letter.h"
#include "util/check.h"

namespace rpqres {
namespace {

// Verifies `gadget` against `target` (already mirrored if needed); on
// success fills `out` and returns true, else appends to `log`.
bool TryCandidate(const Language& target, PreGadget gadget, bool mirrored,
                  const std::string& proof_case, Thm61Gadget* out,
                  std::string* log) {
  Result<GadgetVerification> v = VerifyGadget(target, gadget);
  if (v.ok() && v->valid) {
    out->gadget = std::move(gadget);
    out->mirrored = mirrored;
    out->proof_case = proof_case;
    return true;
  }
  *log += "\n  [" + proof_case + "] " +
          (v.ok() ? v->reason : v.status().ToString());
  return false;
}

// The maximal-gap analysis for one orientation (ifl is L or its mirror).
// Follows the proof of Thm 6.1 after the reduction to β = ε, but treats
// the proof's case-excluding claims as *routing conditions* (verified
// candidates) rather than assertions — the four-legged exits are tried by
// the caller, so this function may legitimately fall through.
bool TryMaximalGapRoutes(const Language& ifl, bool mirrored,
                         Thm61Gadget* out, std::string* log) {
  std::optional<RepeatedLetterWord> word = FindMaximalGapWord(ifl);
  if (!word || !word->beta().empty()) return false;  // wrong orientation
  const char a = word->letter;
  const std::string gamma = word->gamma();
  const std::string delta = word->delta();

  // Lemma 6.6: no infix of γaγ in L → Figs 7/8 (or generalized Fig 11).
  if (!SomeInfixInLanguage(ifl, gamma + a + gamma)) {
    std::string proof_case =
        delta.empty() ? "Lem 6.6, δ = ε (Fig 7)"
        : gamma.empty() ? "Lem 6.6, γ = ε (generalized Fig 11)"
                        : "Lem 6.6, δ ≠ ε (Fig 8)";
    return TryCandidate(ifl, RepeatedLetterGadget(a, gamma, delta),
                        mirrored, proof_case, out, log);
  }
  if (!delta.empty()) return false;  // Claim 6.8 territory: four-legged

  // Claim 6.7: find a straddling infix γ1·a·γ2 ∈ L of γaγ.
  std::string gag = gamma + a + gamma;
  size_t middle = gamma.size();
  for (size_t start = 0; start <= middle; ++start) {
    for (size_t end = middle + 1; end <= gag.size(); ++end) {
      std::string candidate = gag.substr(start, end - start);
      if (!ifl.Contains(candidate)) continue;
      std::string gamma1 = gag.substr(start, middle - start);
      std::string gamma2 = gag.substr(middle + 1, end - middle - 1);
      if (gamma1.empty() || gamma2.empty()) continue;

      if (gamma1.size() + gamma2.size() > gamma.size()) {
        // Overlapping case; Claims 6.9 + maximal-gap confine the clean
        // situation to γ1 = γ2 = γ of length 1 (otherwise four-legged).
        if (gamma1 != gamma || gamma2 != gamma || gamma.size() != 1) {
          continue;
        }
        char b = gamma[0];
        if (b == a) {
          if (TryCandidate(ifl, AaaGadget(a), mirrored,
                           "overlapping, aaa (Claim 6.11 / Fig 10)", out,
                           log)) {
            return true;
          }
        } else if (TryCandidate(ifl, AbaBabGadget(a, b), mirrored,
                                "overlapping, aba+bab (Claim 6.10 / Fig 9)",
                                out, log)) {
          return true;
        }
        continue;
      }

      // Non-overlapping case; Claim 6.12 confines the clean situation to
      // |γ1| = |γ2| = 1 (otherwise four-legged).
      if (gamma1.size() != 1 || gamma2.size() != 1) continue;
      char x = gamma2[0];  // first letter of γ
      char y = gamma1[0];  // last letter of γ
      std::string eta = gamma.substr(1, gamma.size() - 2);
      if (y == a) {
        // y·a·x = a·a·x ∈ L: Claim 6.14 (x ≠ a) / Claim 6.11 (x = a).
        PreGadget gadget = x == a ? AaaGadget(a) : AabGadget(a, x);
        if (TryCandidate(ifl, std::move(gadget), mirrored,
                         x == a ? "non-overlap, aaa (Claim 6.11)"
                                : "non-overlap, aab (Claim 6.14 / Fig 11)",
                         out, log)) {
          return true;
        }
        continue;
      }
      if (x == a) {
        // Mirror once more: L^R contains a·a·y with y ≠ a (Claim 6.14).
        if (TryCandidate(ifl.Mirror(), AabGadget(a, y), !mirrored,
                         "non-overlap, mirrored aab (Claim 6.14 / Fig 11)",
                         out, log)) {
          return true;
        }
        continue;
      }
      // x, y ≠ a: Claim 6.13 / Fig 12 — reconstruction candidates.
      for (PreGadget& candidate : AxEtaYaCandidates(a, x, eta, y)) {
        if (TryCandidate(ifl, std::move(candidate), mirrored,
                         "non-overlap, a·x·η·y·a (Claim 6.13 / Fig 12)",
                         out, log)) {
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace

Result<Thm61Gadget> BuildThm61Gadget(const Language& lang) {
  Language ifl = InfixFreeSublanguage(lang);
  if (!ifl.IsFinite()) {
    return Status::FailedPrecondition(
        "Thm 6.1 requires a finite language");
  }
  if (ifl.IsEmpty() || ifl.ContainsEpsilon()) {
    return Status::FailedPrecondition(
        "Thm 6.1 requires a non-trivial language");
  }
  if (!HasRepeatedLetterWord(ifl)) {
    return Status::FailedPrecondition(
        "Thm 6.1 requires a word with a repeated letter");
  }

  Thm61Gadget out;
  std::string log;
  Language mirror = ifl.Mirror();

  // Route 1: the maximal-gap analysis (Lem 6.6 and the overlap /
  // non-overlap subcases), in whichever orientation has β = ε.
  if (TryMaximalGapRoutes(ifl, /*mirrored=*/false, &out, &log)) return out;
  if (TryMaximalGapRoutes(mirror, /*mirrored=*/true, &out, &log)) {
    return out;
  }

  // Route 2: four-legged exits (Thm 5.3) — the proof's Claims 6.5, 6.8,
  // 6.9 and 6.12 all land here. Stabilize the legs (Lem 5.5) and pick
  // Case 1 / Case 2; try the mirror as well (Prp 6.3).
  for (bool mirrored : {false, true}) {
    const Language& target = mirrored ? mirror : ifl;
    std::optional<FourLeggedWitness> witness =
        FindFourLeggedWitness(target);
    if (!witness) continue;
    FourLeggedWitness stable = MakeStableLegs(target, *witness);
    std::string gxb = stable.gamma + stable.body + stable.beta;
    if (!SomeInfixInLanguage(target, gxb)) {
      if (TryCandidate(target, FourLeggedCase1Gadget(stable), mirrored,
                       "four-legged, Case 1 (Fig 5)", &out, &log)) {
        return out;
      }
    } else {
      for (PreGadget& candidate : FourLeggedCase2Candidates(stable)) {
        if (TryCandidate(target, std::move(candidate), mirrored,
                         "four-legged, Case 2 (Fig 6)", &out, &log)) {
          return out;
        }
      }
    }
  }

  return Status::NotFound(
      "Thm 6.1 pipeline: no candidate gadget verified for IF(" +
      lang.description() + ") (the Fig 12 reconstruction gap, see "
      "EXPERIMENTS.md):" + log);
}

}  // namespace rpqres
