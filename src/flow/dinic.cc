#include "flow/dinic.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace rpqres {
namespace {

/// Residual-graph representation for Dinic: each input edge becomes a
/// forward arc and a zero-capacity reverse arc, paired by xor-ing the id.
class Dinic {
 public:
  explicit Dinic(const FlowNetwork& network)
      : network_(network), head_(network.num_vertices(), -1) {
    // Effective infinity: strictly more than any finite cut can cost.
    Capacity total_finite = network.TotalFiniteCapacity();
    RPQRES_CHECK_MSG(total_finite < kInfiniteCapacity / 4,
                     "total finite capacity too large");
    effective_infinity_ = total_finite + 1;
    arcs_.reserve(2 * network.edges().size());
    for (const FlowNetwork::Edge& e : network.edges()) {
      Capacity cap = e.capacity == kInfiniteCapacity ? effective_infinity_
                                                     : e.capacity;
      AddArc(e.from, e.to, cap);
      AddArc(e.to, e.from, 0);
    }
  }

  // Runs the max-flow computation; stops early once the flow provably
  // exceeds every finite cut.
  void Run() {
    int s = network_.source();
    int t = network_.target();
    RPQRES_CHECK_MSG(s >= 0 && t >= 0, "source/target not set");
    if (s == t) {
      flow_ = effective_infinity_;
      return;
    }
    while (Bfs(s, t)) {
      iter_.assign(network_.num_vertices(), -1);
      for (int v = 0; v < network_.num_vertices(); ++v) iter_[v] = head_[v];
      for (;;) {
        Capacity pushed = Dfs(s, t, kInfiniteCapacity);
        if (pushed == 0) break;
        flow_ += pushed;
        if (flow_ >= effective_infinity_) return;  // unbounded w.r.t. cuts
      }
    }
  }

  Capacity flow() const { return flow_; }
  Capacity effective_infinity() const { return effective_infinity_; }

  // Vertices reachable from the source in the residual graph.
  std::vector<bool> ResidualSourceSide() const {
    std::vector<bool> seen(network_.num_vertices(), false);
    std::queue<int> queue;
    seen[network_.source()] = true;
    queue.push(network_.source());
    while (!queue.empty()) {
      int v = queue.front();
      queue.pop();
      for (int a = head_[v]; a != -1; a = arcs_[a].next) {
        if (arcs_[a].capacity > 0 && !seen[arcs_[a].to]) {
          seen[arcs_[a].to] = true;
          queue.push(arcs_[a].to);
        }
      }
    }
    return seen;
  }

 private:
  struct Arc {
    int to;
    int next;  // next arc id out of the same vertex, -1 at end
    Capacity capacity;
  };

  void AddArc(int from, int to, Capacity capacity) {
    arcs_.push_back(Arc{to, head_[from], capacity});
    head_[from] = static_cast<int>(arcs_.size()) - 1;
  }

  bool Bfs(int s, int t) {
    level_.assign(network_.num_vertices(), -1);
    std::queue<int> queue;
    level_[s] = 0;
    queue.push(s);
    while (!queue.empty()) {
      int v = queue.front();
      queue.pop();
      for (int a = head_[v]; a != -1; a = arcs_[a].next) {
        if (arcs_[a].capacity > 0 && level_[arcs_[a].to] < 0) {
          level_[arcs_[a].to] = level_[v] + 1;
          queue.push(arcs_[a].to);
        }
      }
    }
    return level_[t] >= 0;
  }

  Capacity Dfs(int v, int t, Capacity limit) {
    if (v == t) return limit;
    for (int& a = iter_[v]; a != -1; a = arcs_[a].next) {
      Arc& arc = arcs_[a];
      if (arc.capacity <= 0 || level_[arc.to] != level_[v] + 1) continue;
      Capacity pushed =
          Dfs(arc.to, t, std::min(limit, arc.capacity));
      if (pushed > 0) {
        arc.capacity -= pushed;
        arcs_[a ^ 1].capacity += pushed;
        return pushed;
      }
    }
    level_[v] = -1;  // dead end
    return 0;
  }

  const FlowNetwork& network_;
  std::vector<int> head_;
  std::vector<Arc> arcs_;
  std::vector<int> level_;
  std::vector<int> iter_;
  Capacity flow_ = 0;
  Capacity effective_infinity_ = 0;
};

}  // namespace

MinCutResult ComputeMinCut(const FlowNetwork& network) {
  Dinic dinic(network);
  dinic.Run();
  MinCutResult result;
  if (dinic.flow() >= dinic.effective_infinity()) {
    result.infinite = true;
    result.value = 0;
    return result;
  }
  result.value = dinic.flow();
  result.source_side = dinic.ResidualSourceSide();
  const std::vector<FlowNetwork::Edge>& edges = network.edges();
  for (size_t i = 0; i < edges.size(); ++i) {
    if (result.source_side[edges[i].from] &&
        !result.source_side[edges[i].to]) {
      RPQRES_CHECK_MSG(edges[i].capacity != kInfiniteCapacity,
                       "infinite edge crosses a finite cut");
      if (edges[i].capacity > 0) {
        result.cut_edges.push_back(static_cast<int>(i));
      }
    }
  }
#ifndef NDEBUG
  // Max-flow min-cut self check: the crossing capacities sum to the flow.
  Capacity crossing = 0;
  for (int id : result.cut_edges) crossing += edges[id].capacity;
  RPQRES_CHECK(crossing == result.value);
#endif
  return result;
}

Capacity MaxFlowValue(const FlowNetwork& network) {
  MinCutResult result = ComputeMinCut(network);
  return result.infinite ? kInfiniteCapacity : result.value;
}

}  // namespace rpqres
