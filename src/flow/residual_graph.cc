#include "flow/residual_graph.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/check.h"

namespace rpqres {

void ResidualGraph::Reset(int num_vertices) {
  RPQRES_DCHECK(num_vertices >= 0);
  num_vertices_ = num_vertices;
  source_ = -1;
  target_ = -1;
  solved_ = false;
  total_finite_ = 0;
  flow_ = 0;
  edge_from_.clear();
  edge_to_.clear();
  edge_cap_.clear();
  view_ = MinCutView{};
}

int ResidualGraph::AddVertices(int count) {
  RPQRES_DCHECK(count >= 0);
  int first = num_vertices_;
  num_vertices_ += count;
  return first;
}

int32_t ResidualGraph::AddEdge(int from, int to, Capacity capacity) {
  RPQRES_DCHECK(from >= 0 && from < num_vertices_);
  RPQRES_DCHECK(to >= 0 && to < num_vertices_);
  RPQRES_CHECK_MSG(capacity >= 0, "negative edge capacity");
  if (capacity != kInfiniteCapacity) {
    RPQRES_CHECK_MSG(
        total_finite_ <= std::numeric_limits<Capacity>::max() - capacity,
        "finite capacities overflow int64");
    total_finite_ += capacity;
  }
  edge_from_.push_back(from);
  edge_to_.push_back(to);
  edge_cap_.push_back(capacity);
  return static_cast<int32_t>(edge_to_.size()) - 1;
}

void ResidualGraph::SetSource(int vertex) {
  RPQRES_DCHECK(vertex >= 0 && vertex < num_vertices_);
  source_ = vertex;
}

void ResidualGraph::SetTarget(int vertex) {
  RPQRES_DCHECK(vertex >= 0 && vertex < num_vertices_);
  target_ = vertex;
}

void ResidualGraph::BuildCsr() {
  const int v_count = num_vertices_;
  const size_t e_count = edge_to_.size();
  RPQRES_CHECK_MSG(e_count < (size_t{1} << 30),
                   "too many edges for 32-bit arc ids");
  // Counting sort: each edge contributes one arc at `from` (forward) and
  // one at `to` (reverse), so per-vertex arc counts come from one pass.
  arc_offset_.assign(static_cast<size_t>(v_count) + 1, 0);
  for (size_t e = 0; e < e_count; ++e) {
    ++arc_offset_[static_cast<size_t>(edge_from_[e]) + 1];
    ++arc_offset_[static_cast<size_t>(edge_to_[e]) + 1];
  }
  for (int v = 0; v < v_count; ++v) {
    arc_offset_[static_cast<size_t>(v) + 1] += arc_offset_[v];
  }
  arc_to_.resize(2 * e_count);
  arc_cap_.resize(2 * e_count);
  arc_pair_.resize(2 * e_count);
  cursor_.assign(arc_offset_.begin(), arc_offset_.end() - 1);
  for (size_t e = 0; e < e_count; ++e) {
    int from = edge_from_[e];
    int to = edge_to_[e];
    int32_t fwd = cursor_[from]++;
    int32_t rev = cursor_[to]++;
    Capacity cap = edge_cap_[e] == kInfiniteCapacity ? effective_infinity_
                                                     : edge_cap_[e];
    arc_to_[fwd] = to;
    arc_cap_[fwd] = cap;
    arc_to_[rev] = from;
    arc_cap_[rev] = 0;
    arc_pair_[fwd] = rev;
    arc_pair_[rev] = fwd;
  }
}

bool ResidualGraph::Bfs() {
  level_.assign(num_vertices_, -1);
  queue_.clear();
  level_[source_] = 0;
  queue_.push_back(source_);
  for (size_t head = 0; head < queue_.size(); ++head) {
    int v = queue_[head];
    for (int32_t a = arc_offset_[v]; a < arc_offset_[v + 1]; ++a) {
      int to = arc_to_[a];
      if (arc_cap_[a] > 0 && level_[to] < 0) {
        level_[to] = level_[v] + 1;
        queue_.push_back(to);
      }
    }
  }
  return level_[target_] >= 0;
}

bool ResidualGraph::BlockingFlow() {
  // The whole blocking flow of one level phase in a single iterative DFS
  // over the per-vertex arc cursors (iter_): advance along admissible
  // arcs, retreat (and kill the level) at dead ends, push the bottleneck
  // whenever the target is reached — then resume from the first
  // saturated arc instead of restarting at the source. Returns true iff
  // the flow provably exceeds every finite cut.
  path_.clear();
  int v = source_;
  for (;;) {
    if (v == target_) {
      Capacity push = kInfiniteCapacity;
      size_t first_min = 0;
      for (size_t i = 0; i < path_.size(); ++i) {
        if (arc_cap_[path_[i]] < push) {
          push = arc_cap_[path_[i]];
          first_min = i;
        }
      }
      for (int32_t a : path_) {
        arc_cap_[a] -= push;
        arc_cap_[arc_pair_[a]] += push;
      }
      flow_ += push;
      if (flow_ >= effective_infinity_) return true;  // unbounded w.r.t. cuts
      v = arc_to_[arc_pair_[path_[first_min]]];  // origin of the saturated arc
      path_.resize(first_min);
      continue;
    }
    bool advanced = false;
    for (int32_t& a = iter_[v]; a < arc_offset_[v + 1]; ++a) {
      int to = arc_to_[a];
      if (arc_cap_[a] > 0 && level_[to] == level_[v] + 1) {
        path_.push_back(a);
        v = to;
        advanced = true;
        break;
      }
    }
    if (!advanced) {
      level_[v] = -1;  // dead end
      if (path_.empty()) return false;
      int32_t back = path_.back();
      path_.pop_back();
      v = arc_to_[arc_pair_[back]];  // the arc's origin
      ++iter_[v];                    // skip the arc that led to the dead end
    }
  }
}

const MinCutView& ResidualGraph::Solve(obs::TraceContext* trace) {
  RPQRES_CHECK_MSG(source_ >= 0 && target_ >= 0, "source/target not set");
  RPQRES_CHECK_MSG(!solved_, "Solve() may run at most once per Reset()");
  solved_ = true;
  // Effective infinity: strictly more than any finite cut can cost.
  RPQRES_CHECK_MSG(total_finite_ < kInfiniteCapacity / 4,
                   "total finite capacity too large");
  effective_infinity_ = total_finite_ + 1;
  view_ = MinCutView{};
  if (source_ == target_) {
    view_.infinite = true;
    return view_;
  }
  {
    obs::ScopedSpan span(trace, obs::SpanKind::kFlowBuild);
    BuildCsr();
  }
  {
    obs::ScopedSpan span(trace, obs::SpanKind::kDinic);
    while (Bfs()) {
      iter_.assign(arc_offset_.begin(), arc_offset_.end() - 1);
      if (BlockingFlow()) {
        view_.infinite = true;
        return view_;
      }
    }
  }
  obs::ScopedSpan cut_span(trace, obs::SpanKind::kCutExtract);
  view_.value = flow_;

  // Residual reachability split: the final (failed) BFS already computed
  // it — a vertex is reachable from the source iff it got a level. No
  // blocking flow ran after that BFS, so the levels are pristine.
  side_.resize(num_vertices_);
  for (int v = 0; v < num_vertices_; ++v) side_[v] = level_[v] >= 0 ? 1 : 0;
  cut_edges_.clear();
  for (size_t e = 0; e < edge_to_.size(); ++e) {
    if (side_[edge_from_[e]] && !side_[edge_to_[e]]) {
      RPQRES_CHECK_MSG(edge_cap_[e] != kInfiniteCapacity,
                       "infinite edge crosses a finite cut");
      if (edge_cap_[e] > 0) {
        cut_edges_.push_back(static_cast<int32_t>(e));
      }
    }
  }
#ifndef NDEBUG
  // Max-flow min-cut self check: the crossing capacities sum to the flow.
  Capacity crossing = 0;
  for (int32_t e : cut_edges_) crossing += edge_cap_[e];
  RPQRES_CHECK(crossing == view_.value);
#endif
  view_.cut_edges = std::span<const int32_t>(cut_edges_);
  view_.source_side = side_.data();
  return view_;
}

namespace {

template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace

size_t ResidualGraph::total_capacity_bytes() const {
  return VectorBytes(edge_from_) + VectorBytes(edge_to_) +
         VectorBytes(edge_cap_) + VectorBytes(arc_offset_) +
         VectorBytes(arc_to_) + VectorBytes(arc_pair_) + VectorBytes(arc_cap_) +
         VectorBytes(cursor_) + VectorBytes(level_) + VectorBytes(iter_) +
         VectorBytes(queue_) + VectorBytes(path_) + VectorBytes(side_) +
         VectorBytes(cut_edges_);
}

}  // namespace rpqres
