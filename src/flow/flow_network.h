// rpqres — flow/flow_network: flow networks N = (V, t_source, t_target, E, c)
// (Section 2, "Networks and cuts").
//
// Capacities are int64 with a dedicated +∞ sentinel; edges with infinite
// capacity can never belong to a (finite) minimum cut, which is how the
// resilience reductions mark non-fact edges.

#ifndef RPQRES_FLOW_FLOW_NETWORK_H_
#define RPQRES_FLOW_FLOW_NETWORK_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace rpqres {

using Capacity = int64_t;

/// Sentinel for infinite capacity.
inline constexpr Capacity kInfiniteCapacity =
    std::numeric_limits<Capacity>::max();

/// A directed flow network with one source and one target.
class FlowNetwork {
 public:
  /// An edge with its capacity (kInfiniteCapacity allowed).
  struct Edge {
    int from = 0;
    int to = 0;
    Capacity capacity = 0;
  };

  FlowNetwork() = default;

  /// Adds a fresh vertex and returns its id.
  int AddVertex();
  /// Adds `count` vertices; returns the id of the first.
  int AddVertices(int count);
  /// Adds a directed edge; returns its edge id. Capacity must be >= 0 or
  /// kInfiniteCapacity.
  int AddEdge(int from, int to, Capacity capacity);

  void SetSource(int vertex);
  void SetTarget(int vertex);

  int num_vertices() const { return num_vertices_; }
  int source() const { return source_; }
  int target() const { return target_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Sum of all finite edge capacities (used as the effective infinity).
  Capacity TotalFiniteCapacity() const;

 private:
  int num_vertices_ = 0;
  int source_ = -1;
  int target_ = -1;
  std::vector<Edge> edges_;
};

}  // namespace rpqres

#endif  // RPQRES_FLOW_FLOW_NETWORK_H_
