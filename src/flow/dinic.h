// rpqres — flow/dinic: Dinic max-flow and minimum-cut extraction.
//
// The paper relies on MinCut being in PTIME (max-flow min-cut theorem /
// Menger) and cites near-linear algorithms [21]; we use Dinic, whose
// O(V²E) worst case is near-linear on the sparse product networks built by
// the resilience reductions (documented substitution, DESIGN.md §4).

#ifndef RPQRES_FLOW_DINIC_H_
#define RPQRES_FLOW_DINIC_H_

#include <vector>

#include "flow/flow_network.h"

namespace rpqres {

/// Result of a min-cut computation.
struct MinCutResult {
  /// True iff every source-target cut uses an infinite-capacity edge.
  bool infinite = false;
  /// Cut cost; meaningful iff !infinite.
  Capacity value = 0;
  /// Ids (into FlowNetwork::edges()) of the cut edges: edges from the
  /// source side to the target side of the residual reachability split.
  /// All have finite capacity when !infinite.
  std::vector<int> cut_edges;
  /// source_side[v] == true iff v is reachable from the source in the
  /// final residual graph.
  std::vector<bool> source_side;
};

/// Computes a minimum cut (and max flow value) of `network` with Dinic's
/// algorithm. Infinite capacities are handled exactly: a cut is reported
/// infinite iff its value must exceed the total finite capacity.
MinCutResult ComputeMinCut(const FlowNetwork& network);

/// Max-flow value only; kInfiniteCapacity if unbounded.
Capacity MaxFlowValue(const FlowNetwork& network);

}  // namespace rpqres

#endif  // RPQRES_FLOW_DINIC_H_
