#include "flow/solver_scratch.h"

namespace rpqres {

SolverScratch& SolverScratch::ThreadLocal() {
  static thread_local SolverScratch scratch;
  return scratch;
}

namespace {

template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace

size_t SolverScratch::total_capacity_bytes() const {
  return graph.total_capacity_bytes() + VectorBytes(fact_of_edge) +
         reach_fwd.capacity_bytes() + reach_bwd.capacity_bytes() +
         product_id.capacity_bytes() + VectorBytes(fwd_visited) +
         VectorBytes(bwd_queue) + VectorBytes(live_list) +
         VectorBytes(candidate_facts) + VectorBytes(start_of) +
         VectorBytes(end_of) + VectorBytes(label_bucket_offset) +
         VectorBytes(label_bucket);
}

}  // namespace rpqres
