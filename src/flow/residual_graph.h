// rpqres — flow/residual_graph: the zero-copy flow core.
//
// A ResidualGraph is a flow network N = (V, t_source, t_target, E, c)
// (Section 2, "Networks and cuts") stored the way Dinic wants to consume
// it: solvers stage directed edges with AddEdge, and Solve() lowers them
// into a CSR residual representation (forward + reverse arc per edge,
// paired by index) with one counting-sort pass, runs Dinic, and extracts
// the minimum cut — all inside grow-only buffers owned by this object.
//
// This replaces the previous FlowNetwork (edge list) → Dinic (per-arc
// linked list) pipeline, which copied every edge once and allocated a
// dozen fresh vectors per solve. A ResidualGraph reused across solves
// (via Reset) reaches a steady state where no call allocates at all; the
// engine keeps one per worker thread inside a SolverScratch
// (flow/solver_scratch.h).
//
// The paper relies on MinCut being in PTIME (max-flow min-cut / Menger)
// and cites near-linear algorithms [21]; we use Dinic, whose O(V²E) worst
// case is near-linear on the sparse product networks built by the
// resilience reductions (documented substitution, DESIGN.md §4).

#ifndef RPQRES_FLOW_RESIDUAL_GRAPH_H_
#define RPQRES_FLOW_RESIDUAL_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "flow/capacity.h"

namespace rpqres {

namespace obs {
class TraceContext;
}  // namespace obs

/// Result of a min-cut computation. Spans and pointers reference buffers
/// owned by the ResidualGraph that produced the view; they stay valid
/// until its next Reset().
struct MinCutView {
  /// True iff every source-target cut uses an infinite-capacity edge.
  bool infinite = false;
  /// Cut cost; meaningful iff !infinite.
  Capacity value = 0;
  /// Ids (in AddEdge order, ascending) of the cut edges: finite-capacity
  /// edges from the source side to the target side of the residual
  /// reachability split.
  std::span<const int32_t> cut_edges;
  /// source_side[v] != 0 iff v is reachable from the source in the final
  /// residual graph (size num_vertices()); null iff `infinite`.
  const uint8_t* source_side = nullptr;
};

/// A single-source single-target flow network plus the Dinic solver state,
/// sharing one set of grow-only buffers. Usage per solve:
///
///   graph.Reset(n);                 // or Reset(0) + AddVertex calls
///   graph.SetSource(s); graph.SetTarget(t);
///   graph.AddEdge(u, v, cap);       // capacity >= 0 or kInfiniteCapacity
///   const MinCutView& cut = graph.Solve();   // at most once per Reset
class ResidualGraph {
 public:
  ResidualGraph() = default;

  /// Drops all vertices and staged edges (buffer capacity is kept).
  void Reset(int num_vertices);
  /// Adds a fresh vertex and returns its id.
  int AddVertex() { return num_vertices_++; }
  /// Adds `count` vertices; returns the id of the first.
  int AddVertices(int count);
  /// Stages a directed edge; returns its edge id. Capacity must be >= 0
  /// or kInfiniteCapacity.
  int32_t AddEdge(int from, int to, Capacity capacity);

  void SetSource(int vertex);
  void SetTarget(int vertex);

  int num_vertices() const { return num_vertices_; }
  int64_t num_edges() const { return static_cast<int64_t>(edge_to_.size()); }
  int source() const { return source_; }
  int target() const { return target_; }
  int edge_from(int32_t e) const { return edge_from_[e]; }
  int edge_to(int32_t e) const { return edge_to_[e]; }
  Capacity edge_capacity(int32_t e) const { return edge_cap_[e]; }

  /// Sum of all finite staged capacities (the basis of the effective
  /// infinity; must stay below kInfiniteCapacity / 4).
  Capacity TotalFiniteCapacity() const { return total_finite_; }

  /// Builds the CSR residual arcs (counting sort), runs Dinic, and
  /// extracts the minimum cut. Destructive on staged capacities — may be
  /// called at most once per Reset(). Infinite capacities are handled
  /// exactly: a cut is reported infinite iff its value must exceed the
  /// total finite capacity. When `trace` is non-null, the CSR build,
  /// Dinic, and cut extraction are bracketed as flow_build / dinic /
  /// cut_extract spans (allocation-free — see obs/trace.h).
  const MinCutView& Solve(obs::TraceContext* trace = nullptr);

  /// Total bytes currently reserved across every internal buffer. Stable
  /// across solves of same-shaped inputs once warm — the scratch-reuse
  /// tests assert steady-state zero allocation through this.
  size_t total_capacity_bytes() const;

 private:
  void BuildCsr();
  bool Bfs();
  bool BlockingFlow();

  int num_vertices_ = 0;
  int source_ = -1;
  int target_ = -1;
  bool solved_ = false;
  Capacity total_finite_ = 0;
  Capacity effective_infinity_ = 0;
  Capacity flow_ = 0;

  // Staged edges, AddEdge order (struct-of-arrays for the counting sort).
  std::vector<int32_t> edge_from_;
  std::vector<int32_t> edge_to_;
  std::vector<Capacity> edge_cap_;

  // CSR residual arcs: vertex v owns arcs [arc_offset_[v], arc_offset_[v+1]).
  std::vector<int32_t> arc_offset_;  // size num_vertices_ + 1
  std::vector<int32_t> arc_to_;
  std::vector<int32_t> arc_pair_;  // reverse-arc index
  std::vector<Capacity> arc_cap_;
  std::vector<int32_t> cursor_;  // counting-sort placement cursor

  // Search state.
  std::vector<int32_t> level_;
  std::vector<int32_t> iter_;
  std::vector<int32_t> queue_;
  std::vector<int32_t> path_;  // DFS stack of arc indices
  std::vector<uint8_t> side_;
  std::vector<int32_t> cut_edges_;
  MinCutView view_;
};

}  // namespace rpqres

#endif  // RPQRES_FLOW_RESIDUAL_GRAPH_H_
