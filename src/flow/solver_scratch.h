// rpqres — flow/solver_scratch: reusable per-thread solver workspace.
//
// Every flow-backed resilience solve needs the same transient state: the
// residual graph, the fact↔edge mapping, flat per-letter transition
// tables, ε-adjacency over automaton states, and (for the Thm 3.13
// product) reachability marks plus dense vertex ids over (node, state)
// pairs. A SolverScratch owns all of it in grow-only buffers, so a warm
// scratch makes steady-state serving allocation-free per solve.
//
// Ownership model: the engine's worker pool holds one scratch per thread
// (SolverScratch::ThreadLocal()); solver entry points accept an optional
// SolverScratch* and fall back to the thread-local instance, so direct
// solver calls reuse buffers too. A scratch is single-threaded state —
// never share one instance across concurrent solves.

#ifndef RPQRES_FLOW_SOLVER_SCRATCH_H_
#define RPQRES_FLOW_SOLVER_SCRATCH_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "flow/residual_graph.h"

namespace rpqres {

namespace obs {
class TraceContext;
}  // namespace obs

/// A dense int64-keyed set with O(1) amortized clear, used for product
/// vertex marks over the (node, state) space: clearing bumps an epoch
/// instead of touching the (possibly large, mostly dead) key range.
class StampedSet {
 public:
  /// Prepares the set for keys in [0, size); O(1) except when growing or
  /// on epoch wrap-around (every 2^32 resets).
  void Reset(int64_t size) {
    if (static_cast<int64_t>(stamp_.size()) < size) stamp_.resize(size, 0);
    if (++epoch_ == 0) {  // wrapped: all stale stamps become "current"
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
  }
  bool Contains(int64_t key) const { return stamp_[key] == epoch_; }
  /// Inserts `key`; false iff it was already present.
  bool TryInsert(int64_t key) {
    if (stamp_[key] == epoch_) return false;
    stamp_[key] = epoch_;
    return true;
  }
  size_t capacity_bytes() const {
    return stamp_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
};

/// A dense int64-keyed int32 map with the same O(1) amortized clear.
/// Stamp and value share one 8-byte slot, so a probe touches one cache
/// line.
class StampedIdMap {
 public:
  void Reset(int64_t size) {
    if (static_cast<int64_t>(slots_.size()) < size) {
      slots_.resize(size, Slot{0, 0});
    }
    if (++epoch_ == 0) {
      std::fill(slots_.begin(), slots_.end(), Slot{0, 0});
      epoch_ = 1;
    }
  }
  bool Contains(int64_t key) const { return slots_[key].stamp == epoch_; }
  /// The mapped value, or -1 when absent.
  int32_t Get(int64_t key) const {
    const Slot& slot = slots_[key];
    return slot.stamp == epoch_ ? slot.value : -1;
  }
  void Set(int64_t key, int32_t value) {
    slots_[key] = Slot{epoch_, value};
  }
  size_t capacity_bytes() const { return slots_.capacity() * sizeof(Slot); }

 private:
  struct Slot {
    uint32_t stamp;
    int32_t value;
  };
  std::vector<Slot> slots_;
  uint32_t epoch_ = 0;
};

/// The arena. Members are deliberately public: this is internal plumbing
/// shared by the solvers in src/resilience/, not an abstraction boundary.
/// All buffers are grow-only; total_capacity_bytes() is the telemetry the
/// scratch-reuse tests pin down.
class SolverScratch {
 public:
  SolverScratch() = default;
  SolverScratch(const SolverScratch&) = delete;
  SolverScratch& operator=(const SolverScratch&) = delete;

  /// The calling thread's scratch (engine workers reuse it across
  /// requests; direct solver calls share it per thread).
  static SolverScratch& ThreadLocal();

  /// Bytes reserved across every buffer (including the residual graph).
  size_t total_capacity_bytes() const;

  // --- flow core -----------------------------------------------------------
  ResidualGraph graph;
  /// Edge id (AddEdge order) -> fact id, for cut -> contingency mapping.
  /// Fact edges are always staged first, so edge id == index.
  std::vector<int32_t> fact_of_edge;

  // --- product pruning state (Thm 3.13) ------------------------------------
  /// Reachable / co-reachable marks over dense (node, state) keys.
  StampedSet reach_fwd, reach_bwd;
  /// Dense (node, state) key -> network vertex id for live vertices.
  StampedIdMap product_id;
  /// Forward BFS queue of packed (node << 32 | state) codes; after the
  /// sweep, the list of all reached pairs.
  std::vector<int64_t> fwd_visited;
  /// Backward BFS queue (same packing).
  std::vector<int64_t> bwd_queue;
  /// Live (forward- and co-reachable) pairs, network-id order.
  std::vector<int64_t> live_list;
  /// Facts discovered by the forward sweep whose edge may be staged (the
  /// tail vertex is reachable); each relevant fact appears at most once.
  std::vector<int32_t> candidate_facts;

  // --- BCL solver state (Prp 7.6) ------------------------------------------
  /// Fact id -> start/end network vertex, -1 for irrelevant facts.
  std::vector<int32_t> start_of, end_of;
  /// Relevant facts bucketed by label (counting sort: offsets + ids).
  std::vector<int32_t> label_bucket_offset;  // size 257
  std::vector<int32_t> label_bucket;
  /// One label's facts bucketed by source node (counting sort), for the
  /// output-linear word-pair join when no LabelIndex is available.
  std::vector<int32_t> node_bucket_offset;  // size num_nodes + 1
  std::vector<int32_t> node_bucket;
  std::vector<int32_t> node_bucket_cursor;  // counting-sort fill cursors

  /// Test-only knob: emit the full (unpruned) product network. The pruned
  /// and unpruned constructions must produce identical cut values — the
  /// parity suite flips this to prove it.
  bool disable_product_pruning = false;

  // --- observability -------------------------------------------------------
  /// Per-request trace recorder, set by the engine for the duration of
  /// one solve (null when tracing is off or the solver is called
  /// directly). Solvers bracket their phases with obs::ScopedSpan, which
  /// tolerates null, so instrumentation costs nothing when disabled. The
  /// context is stack-allocated fixed-size storage — recording spans
  /// never allocates, preserving this scratch's zero-allocation
  /// guarantee.
  obs::TraceContext* trace = nullptr;
};

}  // namespace rpqres

#endif  // RPQRES_FLOW_SOLVER_SCRATCH_H_
