#include "flow/flow_network.h"

#include "util/check.h"

namespace rpqres {

int FlowNetwork::AddVertex() { return num_vertices_++; }

int FlowNetwork::AddVertices(int count) {
  RPQRES_DCHECK(count >= 0);
  int first = num_vertices_;
  num_vertices_ += count;
  return first;
}

int FlowNetwork::AddEdge(int from, int to, Capacity capacity) {
  RPQRES_DCHECK(from >= 0 && from < num_vertices_);
  RPQRES_DCHECK(to >= 0 && to < num_vertices_);
  RPQRES_CHECK_MSG(capacity >= 0, "negative edge capacity");
  edges_.push_back(Edge{from, to, capacity});
  return static_cast<int>(edges_.size()) - 1;
}

void FlowNetwork::SetSource(int vertex) {
  RPQRES_DCHECK(vertex >= 0 && vertex < num_vertices_);
  source_ = vertex;
}

void FlowNetwork::SetTarget(int vertex) {
  RPQRES_DCHECK(vertex >= 0 && vertex < num_vertices_);
  target_ = vertex;
}

Capacity FlowNetwork::TotalFiniteCapacity() const {
  Capacity total = 0;
  for (const Edge& e : edges_) {
    if (e.capacity == kInfiniteCapacity) continue;
    RPQRES_CHECK_MSG(total <= std::numeric_limits<Capacity>::max() -
                                  e.capacity,
                     "finite capacities overflow int64");
    total += e.capacity;
  }
  return total;
}

}  // namespace rpqres
