// rpqres — flow/capacity: the capacity domain shared by the flow core and
// the graph database (Section 2, "Networks and cuts").
//
// Capacities are int64 with a dedicated +∞ sentinel; edges with infinite
// capacity can never belong to a (finite) minimum cut, which is how the
// resilience reductions mark non-fact edges and exogenous facts.

#ifndef RPQRES_FLOW_CAPACITY_H_
#define RPQRES_FLOW_CAPACITY_H_

#include <cstdint>
#include <limits>

namespace rpqres {

using Capacity = int64_t;

/// Sentinel for infinite capacity.
inline constexpr Capacity kInfiniteCapacity =
    std::numeric_limits<Capacity>::max();

}  // namespace rpqres

#endif  // RPQRES_FLOW_CAPACITY_H_
