// rpqres — automata/dfa: deterministic finite automata with a dense
// transition table over an explicit alphabet.
//
// A Dfa may be partial (missing transitions encoded as kNoState). Most
// algebraic operations in ops.h require or produce *complete* DFAs.

#ifndef RPQRES_AUTOMATA_DFA_H_
#define RPQRES_AUTOMATA_DFA_H_

#include <string>
#include <vector>

namespace rpqres {

/// Marker for a missing transition in a partial DFA.
inline constexpr int kNoState = -1;

/// A DFA with dense transition table next[state][symbol_index].
class Dfa {
 public:
  Dfa() = default;
  /// Creates a DFA with the given sorted, deduplicated alphabet and
  /// `num_states` states, all transitions missing, no finals, initial 0.
  Dfa(std::vector<char> alphabet, int num_states);

  const std::vector<char>& alphabet() const { return alphabet_; }
  int num_states() const { return num_states_; }
  int initial() const { return initial_; }
  void set_initial(int state);

  bool IsFinal(int state) const { return final_[state]; }
  void SetFinal(int state, bool value = true);
  /// Number of final states.
  int NumFinal() const;

  /// Index of `symbol` in the alphabet, or -1 if absent.
  int SymbolIndex(char symbol) const;

  /// Sets δ(from, symbol) = to. The symbol must be in the alphabet.
  void SetTransition(int from, char symbol, int to);
  /// δ(from, symbol), or kNoState if missing / symbol not in alphabet.
  int Next(int from, char symbol) const;
  /// δ(from, symbol_index), or kNoState.
  int NextByIndex(int from, int symbol_index) const {
    return next_[from][symbol_index];
  }

  /// Runs the DFA on `word` from the initial state; kNoState if it dies.
  int Run(const std::string& word) const;
  /// Runs the DFA on `word` starting at `state`; kNoState if it dies.
  int RunFrom(int state, const std::string& word) const;
  /// Membership test.
  bool Accepts(const std::string& word) const;

  /// True iff every state has a transition for every alphabet symbol.
  bool IsComplete() const;

  /// Graphviz rendering.
  std::string ToDot(const std::string& name) const;

 private:
  std::vector<char> alphabet_;
  int num_states_ = 0;
  int initial_ = 0;
  std::vector<bool> final_;
  std::vector<std::vector<int>> next_;
};

}  // namespace rpqres

#endif  // RPQRES_AUTOMATA_DFA_H_
