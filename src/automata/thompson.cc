#include "automata/thompson.h"

#include "util/check.h"

namespace rpqres {
namespace {

struct Fragment {
  int start;
  int end;
};

Fragment Build(const Regex& r, Enfa* a) {
  switch (r.kind) {
    case RegexKind::kEmptySet: {
      Fragment f{a->AddState(), a->AddState()};
      return f;  // no transition: nothing accepted
    }
    case RegexKind::kEpsilon: {
      Fragment f{a->AddState(), a->AddState()};
      a->AddTransition(f.start, kEpsilonSymbol, f.end);
      return f;
    }
    case RegexKind::kLiteral: {
      Fragment f{a->AddState(), a->AddState()};
      a->AddTransition(f.start, r.literal, f.end);
      return f;
    }
    case RegexKind::kConcat: {
      RPQRES_DCHECK(!r.children.empty());
      Fragment first = Build(r.children[0], a);
      int current_end = first.end;
      for (size_t i = 1; i < r.children.size(); ++i) {
        Fragment next = Build(r.children[i], a);
        a->AddTransition(current_end, kEpsilonSymbol, next.start);
        current_end = next.end;
      }
      return Fragment{first.start, current_end};
    }
    case RegexKind::kUnion: {
      RPQRES_DCHECK(!r.children.empty());
      Fragment f{a->AddState(), a->AddState()};
      for (const Regex& child : r.children) {
        Fragment sub = Build(child, a);
        a->AddTransition(f.start, kEpsilonSymbol, sub.start);
        a->AddTransition(sub.end, kEpsilonSymbol, f.end);
      }
      return f;
    }
    case RegexKind::kStar: {
      Fragment sub = Build(r.children[0], a);
      Fragment f{a->AddState(), a->AddState()};
      a->AddTransition(f.start, kEpsilonSymbol, sub.start);
      a->AddTransition(f.start, kEpsilonSymbol, f.end);
      a->AddTransition(sub.end, kEpsilonSymbol, sub.start);
      a->AddTransition(sub.end, kEpsilonSymbol, f.end);
      return f;
    }
    case RegexKind::kPlus: {
      Fragment sub = Build(r.children[0], a);
      Fragment f{a->AddState(), a->AddState()};
      a->AddTransition(f.start, kEpsilonSymbol, sub.start);
      a->AddTransition(sub.end, kEpsilonSymbol, sub.start);
      a->AddTransition(sub.end, kEpsilonSymbol, f.end);
      return f;
    }
    case RegexKind::kOptional: {
      Fragment sub = Build(r.children[0], a);
      Fragment f{a->AddState(), a->AddState()};
      a->AddTransition(f.start, kEpsilonSymbol, sub.start);
      a->AddTransition(f.start, kEpsilonSymbol, f.end);
      a->AddTransition(sub.end, kEpsilonSymbol, f.end);
      return f;
    }
  }
  RPQRES_CHECK_MSG(false, "unreachable regex kind");
  return Fragment{0, 0};
}

}  // namespace

Enfa ThompsonEnfa(const Regex& regex) {
  Enfa a;
  Fragment f = Build(regex, &a);
  a.AddInitial(f.start);
  a.AddFinal(f.end);
  return a;
}

}  // namespace rpqres
