#include "automata/enfa.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "util/check.h"

namespace rpqres {

int Enfa::AddState() { return num_states_++; }

int Enfa::AddStates(int count) {
  RPQRES_DCHECK(count >= 0);
  int first = num_states_;
  num_states_ += count;
  return first;
}

void Enfa::AddTransition(int from, char symbol, int to) {
  RPQRES_DCHECK(from >= 0 && from < num_states_);
  RPQRES_DCHECK(to >= 0 && to < num_states_);
  transitions_.push_back(EnfaTransition{from, symbol, to});
}

namespace {
void InsertSorted(std::vector<int>* vec, int value) {
  auto it = std::lower_bound(vec->begin(), vec->end(), value);
  if (it == vec->end() || *it != value) vec->insert(it, value);
}
}  // namespace

void Enfa::AddInitial(int state) {
  RPQRES_DCHECK(state >= 0 && state < num_states_);
  InsertSorted(&initial_states_, state);
}

void Enfa::AddFinal(int state) {
  RPQRES_DCHECK(state >= 0 && state < num_states_);
  InsertSorted(&final_states_, state);
}

bool Enfa::IsInitial(int state) const {
  return std::binary_search(initial_states_.begin(), initial_states_.end(),
                            state);
}

bool Enfa::IsFinal(int state) const {
  return std::binary_search(final_states_.begin(), final_states_.end(),
                            state);
}

bool Enfa::IsEpsilonFree() const {
  for (const EnfaTransition& t : transitions_) {
    if (t.symbol == kEpsilonSymbol) return false;
  }
  return true;
}

std::vector<char> Enfa::Alphabet() const {
  std::vector<char> letters;
  for (const EnfaTransition& t : transitions_) {
    if (t.symbol != kEpsilonSymbol) letters.push_back(t.symbol);
  }
  std::sort(letters.begin(), letters.end());
  letters.erase(std::unique(letters.begin(), letters.end()), letters.end());
  return letters;
}

std::vector<int> Enfa::EpsilonClosure(const std::vector<int>& states) const {
  std::vector<std::vector<int>> eps_out(num_states_);
  for (const EnfaTransition& t : transitions_) {
    if (t.symbol == kEpsilonSymbol) eps_out[t.from].push_back(t.to);
  }
  std::vector<bool> seen(num_states_, false);
  std::queue<int> queue;
  for (int s : states) {
    if (!seen[s]) {
      seen[s] = true;
      queue.push(s);
    }
  }
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop();
    for (int to : eps_out[s]) {
      if (!seen[to]) {
        seen[to] = true;
        queue.push(to);
      }
    }
  }
  std::vector<int> closure;
  for (int s = 0; s < num_states_; ++s) {
    if (seen[s]) closure.push_back(s);
  }
  return closure;
}

bool Enfa::Accepts(const std::string& word) const {
  std::vector<int> current = EpsilonClosure(initial_states_);
  for (char c : word) {
    std::vector<int> next;
    for (const EnfaTransition& t : transitions_) {
      if (t.symbol == c &&
          std::binary_search(current.begin(), current.end(), t.from)) {
        next.push_back(t.to);
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    current = EpsilonClosure(next);
    if (current.empty()) return false;
  }
  for (int s : current) {
    if (IsFinal(s)) return true;
  }
  return false;
}

std::string Enfa::ToDot(const std::string& name) const {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  os << "  rankdir=LR;\n";
  os << "  node [shape=circle];\n";
  for (int s : final_states_) {
    os << "  q" << s << " [shape=doublecircle];\n";
  }
  for (int s : initial_states_) {
    os << "  start" << s << " [shape=point];\n";
    os << "  start" << s << " -> q" << s << ";\n";
  }
  for (const EnfaTransition& t : transitions_) {
    os << "  q" << t.from << " -> q" << t.to << " [label=\""
       << (t.symbol == kEpsilonSymbol ? std::string("ε")
                                      : std::string(1, t.symbol))
       << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace rpqres
