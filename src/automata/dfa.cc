#include "automata/dfa.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace rpqres {

Dfa::Dfa(std::vector<char> alphabet, int num_states)
    : alphabet_(std::move(alphabet)),
      num_states_(num_states),
      final_(num_states, false),
      next_(num_states, std::vector<int>(alphabet_.size(), kNoState)) {
  RPQRES_DCHECK(std::is_sorted(alphabet_.begin(), alphabet_.end()));
  RPQRES_DCHECK(std::adjacent_find(alphabet_.begin(), alphabet_.end()) ==
                alphabet_.end());
}

void Dfa::set_initial(int state) {
  RPQRES_DCHECK(state >= 0 && state < num_states_);
  initial_ = state;
}

void Dfa::SetFinal(int state, bool value) {
  RPQRES_DCHECK(state >= 0 && state < num_states_);
  final_[state] = value;
}

int Dfa::NumFinal() const {
  return static_cast<int>(std::count(final_.begin(), final_.end(), true));
}

int Dfa::SymbolIndex(char symbol) const {
  auto it = std::lower_bound(alphabet_.begin(), alphabet_.end(), symbol);
  if (it == alphabet_.end() || *it != symbol) return -1;
  return static_cast<int>(it - alphabet_.begin());
}

void Dfa::SetTransition(int from, char symbol, int to) {
  int idx = SymbolIndex(symbol);
  RPQRES_CHECK_MSG(idx >= 0, "symbol not in DFA alphabet");
  RPQRES_DCHECK(from >= 0 && from < num_states_);
  RPQRES_DCHECK(to >= 0 && to < num_states_);
  next_[from][idx] = to;
}

int Dfa::Next(int from, char symbol) const {
  int idx = SymbolIndex(symbol);
  if (idx < 0) return kNoState;
  return next_[from][idx];
}

int Dfa::Run(const std::string& word) const { return RunFrom(initial_, word); }

int Dfa::RunFrom(int state, const std::string& word) const {
  int current = state;
  for (char c : word) {
    if (current == kNoState) return kNoState;
    current = Next(current, c);
  }
  return current;
}

bool Dfa::Accepts(const std::string& word) const {
  int state = Run(word);
  return state != kNoState && final_[state];
}

bool Dfa::IsComplete() const {
  for (int s = 0; s < num_states_; ++s) {
    for (size_t a = 0; a < alphabet_.size(); ++a) {
      if (next_[s][a] == kNoState) return false;
    }
  }
  return true;
}

std::string Dfa::ToDot(const std::string& name) const {
  std::ostringstream os;
  os << "digraph " << name << " {\n";
  os << "  rankdir=LR;\n";
  os << "  node [shape=circle];\n";
  for (int s = 0; s < num_states_; ++s) {
    if (final_[s]) os << "  q" << s << " [shape=doublecircle];\n";
  }
  os << "  start [shape=point];\n";
  os << "  start -> q" << initial_ << ";\n";
  for (int s = 0; s < num_states_; ++s) {
    for (size_t a = 0; a < alphabet_.size(); ++a) {
      if (next_[s][a] != kNoState) {
        os << "  q" << s << " -> q" << next_[s][a] << " [label=\""
           << alphabet_[a] << "\"];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace rpqres
