#include "automata/ops.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>

#include "util/check.h"

namespace rpqres {

std::vector<char> MergeAlphabets(const std::vector<char>& a,
                                 const std::vector<char>& b) {
  std::vector<char> merged;
  merged.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(merged));
  return merged;
}

// --- εNFA constructions ----------------------------------------------------

Enfa EnfaFromWord(const std::string& word) {
  Enfa a;
  int first = a.AddStates(static_cast<int>(word.size()) + 1);
  a.AddInitial(first);
  a.AddFinal(first + static_cast<int>(word.size()));
  for (size_t i = 0; i < word.size(); ++i) {
    a.AddTransition(first + static_cast<int>(i), word[i],
                    first + static_cast<int>(i) + 1);
  }
  return a;
}

Enfa EnfaFromWords(const std::vector<std::string>& words) {
  Enfa a;
  if (words.empty()) {
    a.AddState();  // single useless state: empty language
    return a;
  }
  int start = a.AddState();
  a.AddInitial(start);
  for (const std::string& word : words) {
    int prev = start;
    for (char c : word) {
      int next = a.AddState();
      a.AddTransition(prev, c, next);
      prev = next;
    }
    a.AddFinal(prev);
  }
  return a;
}

Enfa EnfaSigmaStar(const std::vector<char>& alphabet) {
  Enfa a;
  int s = a.AddState();
  a.AddInitial(s);
  a.AddFinal(s);
  for (char c : alphabet) a.AddTransition(s, c, s);
  return a;
}

Enfa EnfaSigmaPlus(const std::vector<char>& alphabet) {
  Enfa a;
  int s0 = a.AddState();
  int s1 = a.AddState();
  a.AddInitial(s0);
  a.AddFinal(s1);
  for (char c : alphabet) {
    a.AddTransition(s0, c, s1);
    a.AddTransition(s1, c, s1);
  }
  return a;
}

namespace {

// Copies `src` into `dst` with all state ids shifted by `offset`; does not
// copy initial/final markings.
void AppendStatesAndTransitions(const Enfa& src, Enfa* dst, int offset) {
  for (const EnfaTransition& t : src.transitions()) {
    dst->AddTransition(t.from + offset, t.symbol, t.to + offset);
  }
}

}  // namespace

Enfa EnfaUnion(const Enfa& a, const Enfa& b) {
  Enfa out;
  out.AddStates(a.num_states() + b.num_states());
  AppendStatesAndTransitions(a, &out, 0);
  AppendStatesAndTransitions(b, &out, a.num_states());
  for (int s : a.initial_states()) out.AddInitial(s);
  for (int s : a.final_states()) out.AddFinal(s);
  for (int s : b.initial_states()) out.AddInitial(s + a.num_states());
  for (int s : b.final_states()) out.AddFinal(s + a.num_states());
  return out;
}

Enfa EnfaConcat(const Enfa& a, const Enfa& b) {
  Enfa out;
  out.AddStates(a.num_states() + b.num_states());
  AppendStatesAndTransitions(a, &out, 0);
  AppendStatesAndTransitions(b, &out, a.num_states());
  for (int s : a.initial_states()) out.AddInitial(s);
  for (int s : b.final_states()) out.AddFinal(s + a.num_states());
  for (int f : a.final_states()) {
    for (int i : b.initial_states()) {
      out.AddTransition(f, kEpsilonSymbol, i + a.num_states());
    }
  }
  return out;
}

Enfa EnfaStar(const Enfa& a) {
  Enfa out;
  out.AddStates(a.num_states());
  AppendStatesAndTransitions(a, &out, 0);
  int hub = out.AddState();
  out.AddInitial(hub);
  out.AddFinal(hub);
  for (int i : a.initial_states()) out.AddTransition(hub, kEpsilonSymbol, i);
  for (int f : a.final_states()) out.AddTransition(f, kEpsilonSymbol, hub);
  return out;
}

Enfa EnfaMirror(const Enfa& a) {
  Enfa out;
  out.AddStates(a.num_states());
  for (const EnfaTransition& t : a.transitions()) {
    out.AddTransition(t.to, t.symbol, t.from);
  }
  for (int s : a.final_states()) out.AddInitial(s);
  for (int s : a.initial_states()) out.AddFinal(s);
  return out;
}

Enfa EnfaTrim(const Enfa& a) {
  int n = a.num_states();
  std::vector<std::vector<int>> out_edges(n), in_edges(n);
  for (const EnfaTransition& t : a.transitions()) {
    out_edges[t.from].push_back(t.to);
    in_edges[t.to].push_back(t.from);
  }
  auto bfs = [n](const std::vector<int>& sources,
                 const std::vector<std::vector<int>>& edges) {
    std::vector<bool> seen(n, false);
    std::queue<int> queue;
    for (int s : sources) {
      if (!seen[s]) {
        seen[s] = true;
        queue.push(s);
      }
    }
    while (!queue.empty()) {
      int s = queue.front();
      queue.pop();
      for (int to : edges[s]) {
        if (!seen[to]) {
          seen[to] = true;
          queue.push(to);
        }
      }
    }
    return seen;
  };
  std::vector<bool> accessible = bfs(a.initial_states(), out_edges);
  std::vector<bool> coaccessible = bfs(a.final_states(), in_edges);

  std::vector<int> remap(n, -1);
  Enfa out;
  for (int s = 0; s < n; ++s) {
    if (accessible[s] && coaccessible[s]) remap[s] = out.AddState();
  }
  for (const EnfaTransition& t : a.transitions()) {
    if (remap[t.from] >= 0 && remap[t.to] >= 0) {
      out.AddTransition(remap[t.from], t.symbol, remap[t.to]);
    }
  }
  for (int s : a.initial_states()) {
    if (remap[s] >= 0) out.AddInitial(remap[s]);
  }
  for (int s : a.final_states()) {
    if (remap[s] >= 0) out.AddFinal(remap[s]);
  }
  return out;
}

Enfa DfaToEnfa(const Dfa& a) {
  Enfa out;
  out.AddStates(a.num_states());
  for (int s = 0; s < a.num_states(); ++s) {
    for (size_t i = 0; i < a.alphabet().size(); ++i) {
      int to = a.NextByIndex(s, static_cast<int>(i));
      if (to != kNoState) out.AddTransition(s, a.alphabet()[i], to);
    }
    if (a.IsFinal(s)) out.AddFinal(s);
  }
  if (a.num_states() == 0) {
    out.AddState();
    return out;
  }
  out.AddInitial(a.initial());
  return out;
}

// --- Determinization and minimization --------------------------------------

Dfa Determinize(const Enfa& a, const std::vector<char>& extra_alphabet) {
  std::vector<char> alphabet = MergeAlphabets(a.Alphabet(), extra_alphabet);

  // Per-symbol adjacency for fast subset moves.
  std::vector<std::vector<std::pair<int, int>>> by_symbol(alphabet.size());
  for (const EnfaTransition& t : a.transitions()) {
    if (t.symbol == kEpsilonSymbol) continue;
    auto it = std::lower_bound(alphabet.begin(), alphabet.end(), t.symbol);
    by_symbol[it - alphabet.begin()].push_back({t.from, t.to});
  }

  std::map<std::vector<int>, int> subset_ids;
  std::vector<std::vector<int>> subsets;
  auto intern = [&](std::vector<int> subset) {
    auto [it, inserted] =
        subset_ids.insert({subset, static_cast<int>(subsets.size())});
    if (inserted) subsets.push_back(std::move(subset));
    return it->second;
  };

  int start = intern(a.EpsilonClosure(a.initial_states()));
  std::vector<std::vector<int>> table;  // [subset_id][symbol] -> subset_id
  for (size_t id = 0; id < subsets.size(); ++id) {
    table.emplace_back(alphabet.size(), kNoState);
    for (size_t sym = 0; sym < alphabet.size(); ++sym) {
      const std::vector<int>& current = subsets[id];
      std::vector<int> moved;
      for (const auto& [from, to] : by_symbol[sym]) {
        if (std::binary_search(current.begin(), current.end(), from)) {
          moved.push_back(to);
        }
      }
      std::sort(moved.begin(), moved.end());
      moved.erase(std::unique(moved.begin(), moved.end()), moved.end());
      table[id][sym] = intern(a.EpsilonClosure(moved));
    }
  }

  Dfa dfa(alphabet, static_cast<int>(subsets.size()));
  dfa.set_initial(start);
  for (size_t id = 0; id < subsets.size(); ++id) {
    for (size_t sym = 0; sym < alphabet.size(); ++sym) {
      dfa.SetTransition(static_cast<int>(id), alphabet[sym], table[id][sym]);
    }
    for (int s : subsets[id]) {
      if (a.IsFinal(s)) {
        dfa.SetFinal(static_cast<int>(id));
        break;
      }
    }
  }
  RPQRES_DCHECK(dfa.IsComplete());
  return dfa;
}

Dfa CompleteDfa(const Dfa& a, const std::vector<char>& alphabet) {
  std::vector<char> merged = MergeAlphabets(a.alphabet(), alphabet);
  bool needs_sink = false;
  if (merged.size() != a.alphabet().size()) {
    needs_sink = a.num_states() > 0;
  }
  if (a.num_states() == 0) {
    // Degenerate empty automaton: one non-final sink.
    Dfa out(merged, 1);
    out.set_initial(0);
    for (char c : merged) out.SetTransition(0, c, 0);
    return out;
  }
  for (int s = 0; s < a.num_states() && !needs_sink; ++s) {
    for (char c : a.alphabet()) {
      if (a.Next(s, c) == kNoState) {
        needs_sink = true;
        break;
      }
    }
  }
  int n = a.num_states() + (needs_sink ? 1 : 0);
  Dfa out(merged, n);
  out.set_initial(a.initial());
  int sink = a.num_states();
  for (int s = 0; s < a.num_states(); ++s) {
    if (a.IsFinal(s)) out.SetFinal(s);
    for (char c : merged) {
      int to = a.Next(s, c);
      out.SetTransition(s, c, to == kNoState ? sink : to);
    }
  }
  if (needs_sink) {
    for (char c : merged) out.SetTransition(sink, c, sink);
  }
  RPQRES_DCHECK(out.IsComplete());
  return out;
}

namespace {

// Removes states unreachable from the initial state of a complete DFA.
Dfa DropUnreachable(const Dfa& a) {
  std::vector<int> remap(a.num_states(), -1);
  std::vector<int> order;
  std::queue<int> queue;
  remap[a.initial()] = 0;
  order.push_back(a.initial());
  queue.push(a.initial());
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop();
    for (size_t i = 0; i < a.alphabet().size(); ++i) {
      int to = a.NextByIndex(s, static_cast<int>(i));
      if (to != kNoState && remap[to] < 0) {
        remap[to] = static_cast<int>(order.size());
        order.push_back(to);
        queue.push(to);
      }
    }
  }
  Dfa out(a.alphabet(), static_cast<int>(order.size()));
  out.set_initial(0);
  for (size_t idx = 0; idx < order.size(); ++idx) {
    int s = order[idx];
    if (a.IsFinal(s)) out.SetFinal(static_cast<int>(idx));
    for (size_t i = 0; i < a.alphabet().size(); ++i) {
      int to = a.NextByIndex(s, static_cast<int>(i));
      if (to != kNoState) {
        out.SetTransition(static_cast<int>(idx), a.alphabet()[i], remap[to]);
      }
    }
  }
  return out;
}

}  // namespace

Dfa Minimize(const Dfa& input) {
  Dfa a = DropUnreachable(CompleteDfa(input));
  int n = a.num_states();
  size_t sigma = a.alphabet().size();

  // Moore partition refinement.
  std::vector<int> cls(n);
  for (int s = 0; s < n; ++s) cls[s] = a.IsFinal(s) ? 1 : 0;
  int num_classes = 2;
  // If all states agree on finality there is a single class.
  {
    bool any_final = false, any_nonfinal = false;
    for (int s = 0; s < n; ++s) {
      (a.IsFinal(s) ? any_final : any_nonfinal) = true;
    }
    if (!any_final || !any_nonfinal) {
      for (int s = 0; s < n; ++s) cls[s] = 0;
      num_classes = 1;
    }
  }

  for (;;) {
    // Signature of a state: (class, class of successor per symbol).
    std::map<std::vector<int>, int> signature_ids;
    std::vector<int> new_cls(n);
    for (int s = 0; s < n; ++s) {
      std::vector<int> sig;
      sig.reserve(sigma + 1);
      sig.push_back(cls[s]);
      for (size_t i = 0; i < sigma; ++i) {
        sig.push_back(cls[a.NextByIndex(s, static_cast<int>(i))]);
      }
      auto [it, inserted] =
          signature_ids.insert({sig, static_cast<int>(signature_ids.size())});
      (void)inserted;
      new_cls[s] = it->second;
    }
    int new_num_classes = static_cast<int>(signature_ids.size());
    cls = std::move(new_cls);
    if (new_num_classes == num_classes) break;
    num_classes = new_num_classes;
  }

  // Build the quotient, then renumber canonically in BFS order.
  Dfa quotient(a.alphabet(), num_classes);
  quotient.set_initial(cls[a.initial()]);
  for (int s = 0; s < n; ++s) {
    if (a.IsFinal(s)) quotient.SetFinal(cls[s]);
    for (size_t i = 0; i < sigma; ++i) {
      quotient.SetTransition(cls[s], a.alphabet()[i],
                             cls[a.NextByIndex(s, static_cast<int>(i))]);
    }
  }
  return DropUnreachable(quotient);
}

Dfa MinimalDfa(const Enfa& a, const std::vector<char>& extra_alphabet) {
  return Minimize(Determinize(a, extra_alphabet));
}

// --- Boolean algebra --------------------------------------------------------

Dfa ProductDfa(const Dfa& a_in, const Dfa& b_in, BoolOp op) {
  std::vector<char> alphabet =
      MergeAlphabets(a_in.alphabet(), b_in.alphabet());
  Dfa a = CompleteDfa(a_in, alphabet);
  Dfa b = CompleteDfa(b_in, alphabet);

  auto combine = [op](bool x, bool y) {
    switch (op) {
      case BoolOp::kAnd:
        return x && y;
      case BoolOp::kOr:
        return x || y;
      case BoolOp::kDiff:
        return x && !y;
    }
    return false;
  };

  std::map<std::pair<int, int>, int> ids;
  std::vector<std::pair<int, int>> pairs;
  auto intern = [&](std::pair<int, int> p) {
    auto [it, inserted] = ids.insert({p, static_cast<int>(pairs.size())});
    if (inserted) pairs.push_back(p);
    return it->second;
  };

  intern({a.initial(), b.initial()});
  std::vector<std::vector<int>> table;
  for (size_t id = 0; id < pairs.size(); ++id) {
    table.emplace_back(alphabet.size(), kNoState);
    for (size_t i = 0; i < alphabet.size(); ++i) {
      auto [sa, sb] = pairs[id];
      table[id][i] = intern({a.NextByIndex(sa, static_cast<int>(i)),
                             b.NextByIndex(sb, static_cast<int>(i))});
    }
  }

  Dfa out(alphabet, static_cast<int>(pairs.size()));
  out.set_initial(0);
  for (size_t id = 0; id < pairs.size(); ++id) {
    auto [sa, sb] = pairs[id];
    if (combine(a.IsFinal(sa), b.IsFinal(sb))) {
      out.SetFinal(static_cast<int>(id));
    }
    for (size_t i = 0; i < alphabet.size(); ++i) {
      out.SetTransition(static_cast<int>(id), alphabet[i], table[id][i]);
    }
  }
  return out;
}

Dfa IntersectDfa(const Dfa& a, const Dfa& b) {
  return ProductDfa(a, b, BoolOp::kAnd);
}
Dfa UnionDfa(const Dfa& a, const Dfa& b) {
  return ProductDfa(a, b, BoolOp::kOr);
}
Dfa DifferenceDfa(const Dfa& a, const Dfa& b) {
  return ProductDfa(a, b, BoolOp::kDiff);
}

Dfa ComplementDfa(const Dfa& a, const std::vector<char>& alphabet) {
  Dfa complete = CompleteDfa(a, alphabet);
  Dfa out = complete;
  for (int s = 0; s < out.num_states(); ++s) {
    out.SetFinal(s, !complete.IsFinal(s));
  }
  return out;
}

// --- Decision procedures ----------------------------------------------------

bool DfaIsEmptyLanguage(const Dfa& a) {
  if (a.num_states() == 0) return true;
  std::vector<bool> seen(a.num_states(), false);
  std::queue<int> queue;
  seen[a.initial()] = true;
  queue.push(a.initial());
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop();
    if (a.IsFinal(s)) return false;
    for (size_t i = 0; i < a.alphabet().size(); ++i) {
      int to = a.NextByIndex(s, static_cast<int>(i));
      if (to != kNoState && !seen[to]) {
        seen[to] = true;
        queue.push(to);
      }
    }
  }
  return true;
}

bool EnfaIsEmptyLanguage(const Enfa& a) {
  Enfa trimmed = EnfaTrim(a);
  return trimmed.final_states().empty();
}

bool IsSubsetOf(const Dfa& a, const Dfa& b) {
  return DfaIsEmptyLanguage(DifferenceDfa(a, b));
}

bool AreEquivalent(const Dfa& a, const Dfa& b) {
  return IsSubsetOf(a, b) && IsSubsetOf(b, a);
}

namespace {

// States of `a` that are both reachable from the initial state and
// co-reachable to some final state.
std::vector<bool> UsefulStates(const Dfa& a) {
  int n = a.num_states();
  std::vector<bool> reach(n, false), coreach(n, false);
  if (n == 0) return reach;
  std::queue<int> queue;
  reach[a.initial()] = true;
  queue.push(a.initial());
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop();
    for (size_t i = 0; i < a.alphabet().size(); ++i) {
      int to = a.NextByIndex(s, static_cast<int>(i));
      if (to != kNoState && !reach[to]) {
        reach[to] = true;
        queue.push(to);
      }
    }
  }
  std::vector<std::vector<int>> rev(n);
  for (int s = 0; s < n; ++s) {
    for (size_t i = 0; i < a.alphabet().size(); ++i) {
      int to = a.NextByIndex(s, static_cast<int>(i));
      if (to != kNoState) rev[to].push_back(s);
    }
  }
  for (int s = 0; s < n; ++s) {
    if (a.IsFinal(s) && !coreach[s]) {
      coreach[s] = true;
      queue.push(s);
    }
  }
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop();
    for (int from : rev[s]) {
      if (!coreach[from]) {
        coreach[from] = true;
        queue.push(from);
      }
    }
  }
  std::vector<bool> useful(n, false);
  for (int s = 0; s < n; ++s) useful[s] = reach[s] && coreach[s];
  return useful;
}

}  // namespace

bool DfaIsFinite(const Dfa& a) {
  // Finite iff the useful part is acyclic.
  std::vector<bool> useful = UsefulStates(a);
  int n = a.num_states();
  std::vector<int> color(n, 0);  // 0 white, 1 gray, 2 black
  // Iterative DFS cycle detection restricted to useful states.
  for (int root = 0; root < n; ++root) {
    if (!useful[root] || color[root] != 0) continue;
    std::vector<std::pair<int, size_t>> stack{{root, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [s, i] = stack.back();
      if (i >= a.alphabet().size()) {
        color[s] = 2;
        stack.pop_back();
        continue;
      }
      int to = a.NextByIndex(s, static_cast<int>(i));
      ++i;
      if (to == kNoState || !useful[to]) continue;
      if (color[to] == 1) return false;  // back edge: cycle
      if (color[to] == 0) {
        color[to] = 1;
        stack.push_back({to, 0});
      }
    }
  }
  return true;
}

std::optional<std::string> ShortestWord(const Dfa& a) {
  if (a.num_states() == 0) return std::nullopt;
  // BFS exploring symbols in sorted order gives length-then-lex minimality.
  std::vector<bool> seen(a.num_states(), false);
  std::queue<std::pair<int, std::string>> queue;
  seen[a.initial()] = true;
  queue.push({a.initial(), ""});
  while (!queue.empty()) {
    auto [s, word] = queue.front();
    queue.pop();
    if (a.IsFinal(s)) return word;
    for (size_t i = 0; i < a.alphabet().size(); ++i) {
      int to = a.NextByIndex(s, static_cast<int>(i));
      if (to != kNoState && !seen[to]) {
        seen[to] = true;
        queue.push({to, word + a.alphabet()[i]});
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> ShortestWordEnfa(const Enfa& a) {
  return ShortestWord(Determinize(a));
}

Result<std::vector<std::string>> EnumerateFiniteLanguage(const Dfa& a,
                                                         size_t max_words) {
  if (!DfaIsFinite(a)) {
    return Status::FailedPrecondition(
        "EnumerateFiniteLanguage: language is infinite");
  }
  // The longest word of a finite language visits each useful state at most
  // once, so num_states is a safe length bound.
  return WordsUpToLength(a, a.num_states(), max_words);
}

Result<std::vector<std::string>> WordsUpToLength(const Dfa& a, int max_length,
                                                 size_t max_words) {
  std::vector<std::string> words;
  if (a.num_states() == 0) return words;
  std::vector<bool> useful = UsefulStates(a);
  if (!useful[a.initial()]) return words;

  // DFS over (state, depth); the DFA is deterministic so each word is
  // produced at most once. Exploring symbols in sorted order plus a final
  // stable sort by length gives (length, lex) order.
  std::string current;
  struct Frame {
    int state;
    size_t symbol = 0;
  };
  std::vector<Frame> stack{{a.initial()}};
  if (a.IsFinal(a.initial())) words.push_back("");
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.symbol >= a.alphabet().size() ||
        static_cast<int>(stack.size()) - 1 >= max_length) {
      stack.pop_back();
      if (!current.empty()) current.pop_back();
      continue;
    }
    size_t i = frame.symbol++;
    int to = a.NextByIndex(frame.state, static_cast<int>(i));
    if (to == kNoState || !useful[to]) continue;
    current.push_back(a.alphabet()[i]);
    if (a.IsFinal(to)) {
      if (words.size() >= max_words) {
        return Status::OutOfRange("WordsUpToLength: more than " +
                                  std::to_string(max_words) + " words");
      }
      words.push_back(current);
    }
    stack.push_back(Frame{to});
  }
  std::stable_sort(words.begin(), words.end(),
                   [](const std::string& x, const std::string& y) {
                     if (x.size() != y.size()) return x.size() < y.size();
                     return x < y;
                   });
  return words;
}

std::vector<uint64_t> CountWordsByLength(const Dfa& a, int max_length) {
  std::vector<uint64_t> counts(max_length + 1, 0);
  if (a.num_states() == 0) return counts;
  // Dynamic programming over path counts (capped to avoid overflow).
  constexpr uint64_t kCap = ~0ULL / 2;
  std::vector<uint64_t> at(a.num_states(), 0);
  at[a.initial()] = 1;
  for (int len = 0; len <= max_length; ++len) {
    for (int s = 0; s < a.num_states(); ++s) {
      if (at[s] > 0 && a.IsFinal(s)) {
        counts[len] = std::min(kCap, counts[len] + at[s]);
      }
    }
    if (len == max_length) break;
    std::vector<uint64_t> next(a.num_states(), 0);
    for (int s = 0; s < a.num_states(); ++s) {
      if (at[s] == 0) continue;
      for (size_t i = 0; i < a.alphabet().size(); ++i) {
        int to = a.NextByIndex(s, static_cast<int>(i));
        if (to != kNoState) next[to] = std::min(kCap, next[to] + at[s]);
      }
    }
    at = std::move(next);
  }
  return counts;
}

}  // namespace rpqres
