// rpqres — automata/thompson: Thompson construction regex -> εNFA.

#ifndef RPQRES_AUTOMATA_THOMPSON_H_
#define RPQRES_AUTOMATA_THOMPSON_H_

#include "automata/enfa.h"
#include "regex/ast.h"

namespace rpqres {

/// Builds an εNFA recognizing L(regex) by the Thompson construction.
/// The result has exactly one initial and one final state, O(|regex|) size.
Enfa ThompsonEnfa(const Regex& regex);

}  // namespace rpqres

#endif  // RPQRES_AUTOMATA_THOMPSON_H_
