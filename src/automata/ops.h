// rpqres — automata/ops: the automata toolbox used by all language-level
// analyses: determinization, minimization, boolean algebra, rational
// operations, decision procedures, and word enumeration.
//
// Conventions:
//  * Determinize/Minimize/boolean ops work with *complete* DFAs: every
//    state has a transition for every symbol of the DFA's alphabet (a sink
//    state is materialized when needed).
//  * Operations that combine two automata first extend both to the union of
//    their alphabets.

#ifndef RPQRES_AUTOMATA_OPS_H_
#define RPQRES_AUTOMATA_OPS_H_

#include <optional>
#include <string>
#include <vector>

#include "automata/dfa.h"
#include "automata/enfa.h"
#include "util/status.h"

namespace rpqres {

/// Union of two sorted, deduplicated alphabets.
std::vector<char> MergeAlphabets(const std::vector<char>& a,
                                 const std::vector<char>& b);

// --- εNFA constructions ----------------------------------------------------

/// εNFA accepting exactly {word}.
Enfa EnfaFromWord(const std::string& word);
/// εNFA accepting exactly the given set of words.
Enfa EnfaFromWords(const std::vector<std::string>& words);
/// εNFA for Σ* over the given alphabet.
Enfa EnfaSigmaStar(const std::vector<char>& alphabet);
/// εNFA for Σ+ over the given alphabet.
Enfa EnfaSigmaPlus(const std::vector<char>& alphabet);
/// Union of two εNFAs (disjoint juxtaposition).
Enfa EnfaUnion(const Enfa& a, const Enfa& b);
/// Concatenation L(a)·L(b).
Enfa EnfaConcat(const Enfa& a, const Enfa& b);
/// Kleene star L(a)*.
Enfa EnfaStar(const Enfa& a);
/// Mirror language L(a)^R (reverse all transitions, swap initial/final) —
/// the reduction of Prp 6.3.
Enfa EnfaMirror(const Enfa& a);
/// Restriction of an εNFA to useful states (accessible + co-accessible),
/// Definition C.3. States are renumbered.
Enfa EnfaTrim(const Enfa& a);
/// Embeds a DFA as an εNFA (missing transitions simply absent).
Enfa DfaToEnfa(const Dfa& a);

// --- Determinization and minimization --------------------------------------

/// Subset construction. The result is a *complete* DFA over
/// MergeAlphabets(a.Alphabet(), extra_alphabet).
Dfa Determinize(const Enfa& a, const std::vector<char>& extra_alphabet = {});

/// Extends `a` to a complete DFA over MergeAlphabets(a.alphabet(), alphabet)
/// by adding a sink state if necessary.
Dfa CompleteDfa(const Dfa& a, const std::vector<char>& alphabet = {});

/// Minimal complete DFA for L(a) (Moore partition refinement). The result's
/// states are numbered in BFS order from the initial state, making equal
/// languages over equal alphabets yield structurally identical DFAs.
Dfa Minimize(const Dfa& a);

/// Convenience: parse-free pipeline εNFA -> minimal complete DFA.
Dfa MinimalDfa(const Enfa& a, const std::vector<char>& extra_alphabet = {});

// --- Boolean algebra on complete DFAs --------------------------------------

enum class BoolOp { kAnd, kOr, kDiff };

/// Product automaton computing L(a) op L(b); inputs are completed over the
/// merged alphabet first.
Dfa ProductDfa(const Dfa& a, const Dfa& b, BoolOp op);
Dfa IntersectDfa(const Dfa& a, const Dfa& b);
Dfa UnionDfa(const Dfa& a, const Dfa& b);
Dfa DifferenceDfa(const Dfa& a, const Dfa& b);
/// Complement w.r.t. MergeAlphabets(a.alphabet(), alphabet)*.
Dfa ComplementDfa(const Dfa& a, const std::vector<char>& alphabet = {});

// --- Decision procedures ----------------------------------------------------

/// True iff L(a) = ∅.
bool DfaIsEmptyLanguage(const Dfa& a);
/// True iff L(a) = ∅.
bool EnfaIsEmptyLanguage(const Enfa& a);
/// True iff L(a) ⊆ L(b).
bool IsSubsetOf(const Dfa& a, const Dfa& b);
/// True iff L(a) = L(b).
bool AreEquivalent(const Dfa& a, const Dfa& b);
/// True iff L(a) is finite.
bool DfaIsFinite(const Dfa& a);

/// Shortest accepted word (by length, ties broken lexicographically), or
/// nullopt if the language is empty.
std::optional<std::string> ShortestWord(const Dfa& a);
std::optional<std::string> ShortestWordEnfa(const Enfa& a);

// --- Enumeration ------------------------------------------------------------

/// All words of a finite language, sorted by (length, lexicographic).
/// Fails with FailedPrecondition if L(a) is infinite, or OutOfRange if the
/// language has more than `max_words` words.
Result<std::vector<std::string>> EnumerateFiniteLanguage(
    const Dfa& a, size_t max_words = 1 << 20);

/// All accepted words of length <= max_length, sorted by (length, lex).
/// Fails with OutOfRange if more than `max_words` would be returned.
Result<std::vector<std::string>> WordsUpToLength(const Dfa& a, int max_length,
                                                 size_t max_words = 1 << 20);

/// Number of accepted words of each length 0..max_length (for tests).
std::vector<uint64_t> CountWordsByLength(const Dfa& a, int max_length);

}  // namespace rpqres

#endif  // RPQRES_AUTOMATA_OPS_H_
