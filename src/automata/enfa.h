// rpqres — automata/enfa: nondeterministic finite automata with
// ε-transitions (εNFA, Section 2 of the paper).
//
// States are dense integers 0..num_states-1. A transition labeled
// kEpsilonSymbol is an ε-transition. An NFA is an εNFA without
// ε-transitions; a DFA has its own dense representation in dfa.h.

#ifndef RPQRES_AUTOMATA_ENFA_H_
#define RPQRES_AUTOMATA_ENFA_H_

#include <string>
#include <vector>

namespace rpqres {

/// Sentinel label marking an ε-transition.
inline constexpr char kEpsilonSymbol = '\0';

/// A single transition (from, symbol, to); symbol may be kEpsilonSymbol.
struct EnfaTransition {
  int from = 0;
  char symbol = kEpsilonSymbol;
  int to = 0;

  bool operator==(const EnfaTransition& other) const = default;
};

/// An εNFA A = (S, I, F, Δ). |A| = |S| + |Δ| (paper, Section 2).
class Enfa {
 public:
  Enfa() = default;

  /// Adds a fresh state and returns its id.
  int AddState();
  /// Adds `count` fresh states; returns the id of the first.
  int AddStates(int count);
  /// Adds a transition; symbol == kEpsilonSymbol makes it an ε-transition.
  void AddTransition(int from, char symbol, int to);
  /// Marks a state as initial (idempotent).
  void AddInitial(int state);
  /// Marks a state as final (idempotent).
  void AddFinal(int state);

  int num_states() const { return num_states_; }
  const std::vector<int>& initial_states() const { return initial_states_; }
  const std::vector<int>& final_states() const { return final_states_; }
  const std::vector<EnfaTransition>& transitions() const {
    return transitions_;
  }

  /// |S| + |Δ|, the paper's size measure.
  int Size() const {
    return num_states_ + static_cast<int>(transitions_.size());
  }

  bool IsInitial(int state) const;
  bool IsFinal(int state) const;

  /// True iff the automaton has no ε-transition (i.e. it is an NFA).
  bool IsEpsilonFree() const;

  /// Letters (excluding ε) appearing on transitions, sorted, deduplicated.
  std::vector<char> Alphabet() const;

  /// Membership test by subset simulation with ε-closures. O(|word|·|A|).
  bool Accepts(const std::string& word) const;

  /// ε-closure of a set of states (sorted state list in, sorted out).
  std::vector<int> EpsilonClosure(const std::vector<int>& states) const;

  /// Graphviz rendering (used to regenerate Figure 2).
  std::string ToDot(const std::string& name) const;

 private:
  int num_states_ = 0;
  std::vector<int> initial_states_;  // sorted, unique
  std::vector<int> final_states_;    // sorted, unique
  std::vector<EnfaTransition> transitions_;
};

}  // namespace rpqres

#endif  // RPQRES_AUTOMATA_ENFA_H_
