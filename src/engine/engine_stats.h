// rpqres — engine/engine_stats: per-instance and aggregate engine metrics.
//
// Every engine run records what happened (classification outcome, solver,
// wall time, flow-network size) so benchmark harnesses and operators can
// see where time goes without instrumenting solvers themselves.

#ifndef RPQRES_ENGINE_ENGINE_STATS_H_
#define RPQRES_ENGINE_ENGINE_STATS_H_

#include <cstdint>
#include <map>
#include <string>

namespace rpqres {

/// What happened to one (query, database) instance.
struct InstanceStats {
  /// Classification column for IF(L) ("PTIME", "NP-hard", ...).
  std::string complexity;
  /// The paper result that justified the classification.
  std::string rule;
  /// Solver that produced the answer (ResilienceResult::algorithm).
  std::string algorithm;
  /// False iff this instance paid a fresh compilation; true for plan-cache
  /// hits and for requests that carry a caller-managed precompiled query
  /// (ResilienceRequest::query), which bypass the cache.
  bool cache_hit = false;
  /// True iff the answer came from the version-keyed ResultCache (no
  /// solver ran; `algorithm` etc. describe the run that populated the
  /// entry).
  bool result_cache_hit = false;
  /// Compile wall time attributed to this instance (0 on a cache hit).
  double compile_micros = 0;
  /// Solve wall time (plan execution only).
  double solve_micros = 0;
  /// Flow-network size, when a flow solver ran.
  int64_t network_vertices = 0;
  int64_t network_edges = 0;
  /// Product pruning (local flow): dead (node, state) vertices and edges
  /// skipped relative to the full |V|·|S| Thm 3.13 construction.
  int64_t product_vertices_pruned = 0;
  int64_t product_edges_pruned = 0;
  /// Branch-and-bound nodes, when the exact solver ran.
  uint64_t search_nodes = 0;
};

/// Aggregate counters for one engine, cumulative since construction (or
/// the last ResetStats).
struct EngineStats {
  int64_t instances_run = 0;
  int64_t batches_run = 0;
  /// Full compilations performed (== plan-cache misses routed through
  /// the engine).
  int64_t compilations = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  /// Instances that ended in a non-OK status. NOTE: this is a roll-up —
  /// `deadline_exceeded` and `cancelled` below are counted here too
  /// (kept for compatibility). The metrics exporter reports the four
  /// DISJOINT statuses instead (ok / error / deadline_exceeded /
  /// cancelled, summing to instances_run), so shed-rate math needs no
  /// double-count correction; generic errors alone are
  /// `errors - deadline_exceeded - cancelled`.
  int64_t errors = 0;
  /// Requests accepted through the async Submit/SubmitBatch surface.
  int64_t submits = 0;
  /// Instances that stopped at their wall-clock deadline (counted in
  /// `errors` too; the status was DeadlineExceeded).
  int64_t deadline_exceeded = 0;
  /// Instances stopped by cooperative cancellation (counted in `errors`
  /// too; the status was Cancelled).
  int64_t cancelled = 0;
  /// EvaluateDifferential pairs judged, and how many disagreed (either
  /// value divergence or an invalid witness on either side).
  int64_t differentials_run = 0;
  int64_t differential_mismatches = 0;
  /// Version-keyed ResultCache counters (0 when the cache is disabled).
  int64_t result_cache_hits = 0;
  int64_t result_cache_misses = 0;
  int64_t result_cache_evictions = 0;
  int64_t result_cache_invalidations = 0;
  /// Aggregate product-pruning effect across flow solves (see
  /// InstanceStats::product_vertices_pruned).
  int64_t flow_vertices_pruned = 0;
  int64_t flow_edges_pruned = 0;
  double total_compile_micros = 0;
  double total_solve_micros = 0;
  /// Instance counts by solver algorithm string.
  std::map<std::string, int64_t> instances_by_algorithm;
};

/// Accumulates `in` into `out`, field-wise. Every counter sums, so
/// merging N engines' stats yields the view one engine would have
/// produced had it run all the traffic — the serve Router relies on this
/// to present a fleet-wide EngineStats.
inline void MergeEngineStats(const EngineStats& in, EngineStats* out) {
  out->instances_run += in.instances_run;
  out->batches_run += in.batches_run;
  out->compilations += in.compilations;
  out->cache_hits += in.cache_hits;
  out->cache_misses += in.cache_misses;
  out->cache_evictions += in.cache_evictions;
  out->errors += in.errors;
  out->submits += in.submits;
  out->deadline_exceeded += in.deadline_exceeded;
  out->cancelled += in.cancelled;
  out->differentials_run += in.differentials_run;
  out->differential_mismatches += in.differential_mismatches;
  out->result_cache_hits += in.result_cache_hits;
  out->result_cache_misses += in.result_cache_misses;
  out->result_cache_evictions += in.result_cache_evictions;
  out->result_cache_invalidations += in.result_cache_invalidations;
  out->flow_vertices_pruned += in.flow_vertices_pruned;
  out->flow_edges_pruned += in.flow_edges_pruned;
  out->total_compile_micros += in.total_compile_micros;
  out->total_solve_micros += in.total_solve_micros;
  for (const auto& [algorithm, count] : in.instances_by_algorithm) {
    out->instances_by_algorithm[algorithm] += count;
  }
}

}  // namespace rpqres

#endif  // RPQRES_ENGINE_ENGINE_STATS_H_
