#include "engine/compiled_query.h"

#include <chrono>
#include <utility>

#include "lang/infix_free.h"
#include "lang/ro_enfa.h"

namespace rpqres {

Result<std::shared_ptr<const CompiledQuery>> CompileQuery(
    const std::string& regex, Semantics semantics,
    const CompileOptions& options) {
  auto start = std::chrono::steady_clock::now();

  RPQRES_ASSIGN_OR_RETURN(Language language,
                          Language::FromRegexString(regex));
  Language ifl = InfixFreeSublanguage(language);
  RPQRES_ASSIGN_OR_RETURN(
      Classification classification,
      ClassifyResilienceWithIF(language, ifl, options.max_word_length));
  ResilienceOptions plan_options;
  plan_options.allow_exponential = options.allow_exponential;
  RPQRES_ASSIGN_OR_RETURN(ResiliencePlan plan,
                          PlanResilienceWithIF(std::move(ifl), plan_options));

  auto compiled = std::make_shared<CompiledQuery>(CompiledQuery{
      regex, semantics, std::move(language), std::move(classification),
      std::move(plan), /*ro_tables_exact=*/std::nullopt,
      /*compile_micros=*/0});
  // Fixed-endpoint support: tables for L's own RO-εNFA, when L is local
  // (no IF fallback — the rewrite is unsound with fixed endpoints).
  if (Result<Enfa> exact_ro = BuildRoEnfa(compiled->language);
      exact_ro.ok()) {
    if (Result<RoProductTables> tables = BuildRoProductTables(*exact_ro);
        tables.ok()) {
      compiled->ro_tables_exact = *std::move(tables);
    }
  }
  compiled->compile_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  return std::shared_ptr<const CompiledQuery>(std::move(compiled));
}

}  // namespace rpqres
