#include "engine/compiled_query.h"

#include <chrono>
#include <utility>

#include "lang/infix_free.h"

namespace rpqres {

Result<std::shared_ptr<const CompiledQuery>> CompileQuery(
    const std::string& regex, Semantics semantics,
    const CompileOptions& options) {
  auto start = std::chrono::steady_clock::now();

  RPQRES_ASSIGN_OR_RETURN(Language language,
                          Language::FromRegexString(regex));
  Language ifl = InfixFreeSublanguage(language);
  RPQRES_ASSIGN_OR_RETURN(
      Classification classification,
      ClassifyResilienceWithIF(language, ifl, options.max_word_length));
  ResilienceOptions plan_options;
  plan_options.allow_exponential = options.allow_exponential;
  RPQRES_ASSIGN_OR_RETURN(ResiliencePlan plan,
                          PlanResilienceWithIF(std::move(ifl), plan_options));

  auto compiled = std::make_shared<CompiledQuery>(CompiledQuery{
      regex, semantics, std::move(language), std::move(classification),
      std::move(plan), /*compile_micros=*/0});
  compiled->compile_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  return std::shared_ptr<const CompiledQuery>(std::move(compiled));
}

}  // namespace rpqres
