// rpqres — engine/result_cache: version-keyed resilience answer cache.
//
// The VCSP view of resilience (Bodirsky–Lutz–Semanišinová) treats
// RES(Q, db) as a pure function of the instance — which is exactly what
// makes answer caching sound once the database side has an immutable
// identity. DbRegistry v3 provides it: a (lineage, version) pair never
// changes meaning, so a resilience answer keyed by
//
//   (query fingerprint, lineage, version, semantics, endpoints)
//
// stays valid forever. The cache is a bounded, thread-safe LRU; entries
// for superseded versions age out under capacity pressure (they are never
// *wrong*, just cold), and EraseLineage offers explicit invalidation when
// a lineage is dropped. Requests that force a specific solver bypass the
// cache — a forced method is a routing experiment, not a lookup.

#ifndef RPQRES_ENGINE_RESULT_CACHE_H_
#define RPQRES_ENGINE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "engine/engine_stats.h"
#include "graphdb/graph_db.h"
#include "resilience/result.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace rpqres {

/// The immutable identity of one cacheable instance. `source`/`target`
/// are -1 for Boolean (endpoint-free) requests.
struct ResultCacheKey {
  std::string regex;
  Semantics semantics = Semantics::kSet;
  uint64_t lineage = 0;
  uint32_t version = 0;
  NodeId source = -1;
  NodeId target = -1;

  auto operator<=>(const ResultCacheKey&) const = default;
};

/// A cached answer: the result plus the solve-side stats of the run that
/// produced it (algorithm, network sizes) so cache hits still report what
/// computed the answer.
struct CachedResult {
  ResilienceResult result;
  InstanceStats stats;
};

/// Thread-safe LRU (key → answer). Capacity 0 disables the cache (every
/// Lookup misses without counting, Insert is a no-op). Bounded two ways:
/// by entry count (`capacity`) and — when `max_bytes` > 0 — by the
/// accounted byte footprint of the retained answers (witness sets
/// dominate: a contingency set can hold thousands of fact ids while
/// another entry holds two). Either bound evicts LRU-first; a single
/// over-budget entry is still admitted (the cache never thrashes down to
/// zero).
class ResultCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
    /// Entries dropped by EraseLineage/EraseVersion.
    int64_t invalidations = 0;
  };

  explicit ResultCache(size_t capacity, size_t max_bytes = 0)
      : capacity_(capacity), max_bytes_(max_bytes) {}

  bool enabled() const { return capacity_ > 0; }
  size_t capacity() const { return capacity_; }
  size_t max_bytes() const { return max_bytes_; }

  /// Approximate heap footprint of one entry: the LRU node, the two key
  /// copies (list + index), the witness contingency set, and the owned
  /// strings. The basis of the byte budget and the cache-bytes gauge.
  static size_t EntryFootprintBytes(const ResultCacheKey& key,
                                    const CachedResult& value);

  /// The cached answer, marked most-recently-used; nullopt on miss.
  std::optional<CachedResult> Lookup(const ResultCacheKey& key)
      RPQRES_EXCLUDES(mu_);

  /// Inserts (or refreshes) the answer, evicting LRU entries while over
  /// the entry or byte budget. Returns how many entries were evicted.
  size_t Insert(ResultCacheKey key, CachedResult value) RPQRES_EXCLUDES(mu_);

  /// Drops every entry of `lineage` (all versions); returns the count.
  int64_t EraseLineage(uint64_t lineage) RPQRES_EXCLUDES(mu_);
  /// Drops every entry of one (lineage, version); returns the count.
  int64_t EraseVersion(uint64_t lineage, uint32_t version)
      RPQRES_EXCLUDES(mu_);

  size_t size() const RPQRES_EXCLUDES(mu_);
  /// Accounted bytes across all retained entries (the cache-bytes gauge).
  size_t size_bytes() const RPQRES_EXCLUDES(mu_);
  Stats stats() const RPQRES_EXCLUDES(mu_);
  void ResetStats() RPQRES_EXCLUDES(mu_);
  void Clear() RPQRES_EXCLUDES(mu_);

 private:
  struct Entry {
    ResultCacheKey key;
    CachedResult value;
    size_t bytes = 0;  ///< EntryFootprintBytes at insertion time
  };

  int64_t EraseMatching(uint64_t lineage, std::optional<uint32_t> version)
      RPQRES_REQUIRES(mu_);
  void PopLru() RPQRES_REQUIRES(mu_);

  mutable Mutex mu_;
  const size_t capacity_;   // immutable after construction
  const size_t max_bytes_;  // immutable after construction
  size_t bytes_ RPQRES_GUARDED_BY(mu_) = 0;
  std::list<Entry> lru_ RPQRES_GUARDED_BY(mu_);  // front = most recently used
  std::map<ResultCacheKey, std::list<Entry>::iterator> index_
      RPQRES_GUARDED_BY(mu_);
  Stats stats_ RPQRES_GUARDED_BY(mu_);
};

}  // namespace rpqres

#endif  // RPQRES_ENGINE_RESULT_CACHE_H_
