#include "engine/plan_cache.h"

#include <algorithm>

namespace rpqres {

PlanCache::PlanCache(size_t capacity) : capacity_(std::max<size_t>(capacity, 1)) {}

std::shared_ptr<const CompiledQuery> PlanCache::Lookup(
    const std::string& regex, Semantics semantics) {
  MutexLock lock(mu_);
  auto it = index_.find(Key{regex, semantics});
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return it->second->second;
}

size_t PlanCache::Insert(std::shared_ptr<const CompiledQuery> query) {
  Key key{query->regex, query->semantics};
  MutexLock lock(mu_);
  ++stats_.insertions;
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(query);
    lru_.splice(lru_.begin(), lru_, it->second);
    return 0;
  }
  lru_.emplace_front(key, std::move(query));
  index_[key] = lru_.begin();
  size_t evicted = 0;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    ++evicted;
  }
  return evicted;
}

size_t PlanCache::size() const {
  MutexLock lock(mu_);
  return lru_.size();
}

PlanCache::Stats PlanCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void PlanCache::ResetStats() {
  MutexLock lock(mu_);
  stats_ = Stats{};
}

void PlanCache::Clear() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace rpqres
