// rpqres — engine/db_registry: named, versioned database lineages.
//
// Registry v2 knew whole immutable snapshots: any single-fact change
// forced a full GraphDb copy plus a from-scratch LabelIndex rebuild, and
// gave the engine no version key to cache answers against. v3 keeps the
// snapshot model — every version is immutable, refcounted, and survives
// deregistration while handles exist — but organizes snapshots into
// *lineages* with delta commits:
//
//   DbRegistry registry;
//   DbHandle v1 = registry.Register(std::move(graph), "orders");
//   DeltaBatch delta = registry.BeginDelta(v1);
//   delta.AddFact(u, 'a', v);
//   delta.RemoveFact(w, 'b', u);
//   DbHandle v2 = *delta.Commit();        // version 2, shares v1's facts
//   registry.Resolve("orders@latest");    // == v2
//   registry.Resolve("orders@1");         // == v1
//
// A commit produces a copy-on-write snapshot (GraphDb::MakeOverlay):
// facts live in the lineage's immutable flat base plus per-version
// add/tombstone overlays, and the LabelIndex is patched incrementally —
// only the labels the delta touched are rebuilt — so commit cost scales
// with the delta (plus the touched labels' facts), not the database.
// When the accumulated overlay crosses the compaction threshold the
// commit folds everything back into a fresh flat base.
//
// Lineage histories are linear: committing a delta whose parent is no
// longer the lineage's latest version fails with Aborted (optimistic
// concurrency — re-begin from the new latest and retry). The
// (lineage, version) pair on every handle is the immutable identity the
// engine's ResultCache keys resilience answers by.

#ifndef RPQRES_ENGINE_DB_REGISTRY_H_
#define RPQRES_ENGINE_DB_REGISTRY_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fault/failpoints.h"
#include "graphdb/graph_db.h"
#include "graphdb/label_index.h"
#include "storage/journal.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace rpqres {

class RegistryStorage;  // engine/db_registry.cc; owns the on-disk state

/// Storage health of a persistent registry. Healthy registries serve and
/// persist; a degraded registry is read-only (commits fail with
/// kUnavailable, reads keep serving from memory); a failed registry saw
/// storage corruption (kDataLoss) and should be drained. Non-persistent
/// registries are always healthy. Transitions are one-way:
/// healthy -> degraded -> failed.
enum class HealthState {
  kHealthy = 0,
  kDegraded = 1,
  kFailed = 2,
};

/// "healthy" / "degraded" / "failed".
const char* HealthStateName(HealthState state);

/// One immutable registered database version: the owned GraphDb (flat for
/// version 1 and compacted versions, a copy-on-write overlay otherwise)
/// plus everything precomputed for it. Shared (shared_ptr-to-const)
/// between the registry and any number of outstanding handles / in-flight
/// requests.
struct DbSnapshot {
  /// Registry-unique snapshot id.
  uint64_t id = 0;
  /// Lineage this version belongs to (== the id of version 1).
  uint64_t lineage = 0;
  /// 1-based position in the lineage's linear history.
  uint32_t version = 1;
  /// Optional display name given at Register time (shared by the whole
  /// lineage; Resolve/Find look it up).
  std::string name;
  /// The database, owned.
  GraphDb db;
  /// Per-label fact adjacency — full-built at Register, incrementally
  /// patched by delta commits.
  LabelIndex label_index;
  /// True when the commit that produced this version folded the
  /// accumulated overlay into a fresh flat base.
  bool compacted = false;
};

/// A value-type reference to a registered database version. Default
/// constructed handles are invalid; every accessor below is safe on an
/// invalid handle except db(), and requests carrying an invalid handle
/// fail with InvalidArgument instead of crashing.
class DbHandle {
 public:
  DbHandle() = default;

  /// True iff the handle points at a snapshot.
  bool valid() const { return snapshot_ != nullptr; }
  /// The database. Must not be called on an invalid handle.
  const GraphDb& db() const { return snapshot_->db; }
  /// The precomputed per-label index, or nullptr for an invalid handle.
  const LabelIndex* label_index() const {
    return snapshot_ != nullptr ? &snapshot_->label_index : nullptr;
  }
  /// Snapshot id; 0 for an invalid handle (registry ids start at 1).
  uint64_t id() const { return snapshot_ != nullptr ? snapshot_->id : 0; }
  /// Lineage id; 0 for an invalid handle.
  uint64_t lineage() const {
    return snapshot_ != nullptr ? snapshot_->lineage : 0;
  }
  /// 1-based version within the lineage; 0 for an invalid handle.
  uint32_t version() const {
    return snapshot_ != nullptr ? snapshot_->version : 0;
  }
  /// Lineage name; the empty string for an invalid (or unnamed) handle.
  const std::string& name() const;

 private:
  friend class DbRegistry;
  friend class DeltaBatch;
  explicit DbHandle(std::shared_ptr<const DbSnapshot> snapshot)
      : snapshot_(std::move(snapshot)) {}

  std::shared_ptr<const DbSnapshot> snapshot_;
};

class DbRegistry;

/// A mutation batch against one parent version. Obtained from
/// DbRegistry::BeginDelta, filled with AddNode/AddFact/RemoveFact, and
/// turned into the next version by Commit (one-shot). A batch applies its
/// operations eagerly to a private copy-on-write overlay, so AddFact
/// returns real fact ids and RemoveFact validates immediately; nothing is
/// visible to readers until Commit succeeds. Not thread-safe (one writer
/// per batch); distinct batches are independent.
class DeltaBatch {
 public:
  DeltaBatch() = default;
  /// Moves invalidate the source: a moved-from batch reports
  /// valid() == false and refuses mutations and Commit.
  DeltaBatch(DeltaBatch&& other) noexcept { *this = std::move(other); }
  DeltaBatch& operator=(DeltaBatch&& other) noexcept {
    registry_ = std::exchange(other.registry_, nullptr);
    parent_ = std::move(other.parent_);
    work_ = std::move(other.work_);
    touched_labels_ = std::move(other.touched_labels_);
    touched_ = other.touched_;
    ops_ = other.ops_;
    committed_ = other.committed_;
    record_ops_ = other.record_ops_;
    oplog_ = std::move(other.oplog_);
    return *this;
  }

  /// False for default-constructed, BeginDelta-on-invalid-handle, or
  /// already-committed batches. Mutations on an invalid batch fail.
  bool valid() const { return registry_ != nullptr && !committed_; }

  /// Appends a node; ids continue the parent's node space.
  NodeId AddNode(std::string name = "");
  /// Adds (or multiplicity-bumps) a fact between existing nodes (parent
  /// or batch-added). InvalidArgument on out-of-range node ids.
  Result<FactId> AddFact(NodeId source, char label, NodeId target,
                         Capacity multiplicity = 1);
  /// Tombstones a live fact; NotFound when no such fact exists.
  Status RemoveFact(NodeId source, char label, NodeId target);

  /// Operations recorded so far (adds + removes + nodes).
  int64_t num_ops() const { return ops_; }

  /// Publishes the batch as the parent lineage's next version and
  /// returns its handle. Fails with Aborted when another commit advanced
  /// the lineage first (re-begin and retry), NotFound when the lineage
  /// was unregistered, FailedPrecondition on an invalid/consumed batch.
  Result<DbHandle> Commit();

 private:
  friend class DbRegistry;
  DeltaBatch(DbRegistry* registry, std::shared_ptr<const DbSnapshot> parent);

  void TouchLabel(char label);

  DbRegistry* registry_ = nullptr;
  std::shared_ptr<const DbSnapshot> parent_;
  GraphDb work_;
  /// Labels whose fact set the batch changed, deduplicated — the
  /// incremental LabelIndex rebuilds exactly these.
  std::vector<char> touched_labels_;
  std::array<bool, 256> touched_{};
  int64_t ops_ = 0;
  bool committed_ = false;
  /// True when the registry is persistent and this batch's operations
  /// must be journaled at Commit (false during journal replay).
  bool record_ops_ = false;
  std::vector<storage::JournalOp> oplog_;
};

/// Thread-safe registry of versioned database lineages. Unregistering (or
/// destroying the registry) drops only the registry's references —
/// outstanding DbHandles keep their snapshots alive, so in-flight
/// requests never race a deregistration.
class DbRegistry {
 public:
  struct Options {
    /// A commit compacts (folds overlays into a fresh flat base) once the
    /// accumulated overlay exceeds
    /// max(compaction_min_overlay, compaction_fraction * live facts).
    int64_t compaction_min_overlay = 256;
    double compaction_fraction = 0.25;
    /// When non-empty, the registry is *persistent*: Register writes
    /// each lineage's flat base as an mmap-able segment under this
    /// directory, every delta commit appends to the lineage's journal
    /// before publishing, and a compacting commit folds the journal into
    /// a fresh segment. Reopen with DbRegistry::OpenStorage(dir), which
    /// restores every lineage to its exact pre-restart (lineage,
    /// version) state — the durable history window is [version of the
    /// last written segment, latest]; versions older than the last
    /// compaction are only reachable while the process lives.
    /// Storage write failures never fail *reads*: after a failed write
    /// the registry degrades to read-only (health() != kHealthy) and
    /// every subsequent commit fails with kUnavailable carrying the
    /// latched cause — a commit is only ever acknowledged durable.
    std::string storage_dir;
    /// Transient storage errors (kUnavailable: EIO/ENOSPC-class, where a
    /// retry rewrites its whole payload) are retried up to this many
    /// times before the registry degrades. 0 disables retry.
    int storage_retry_attempts = 3;
    /// Backoff before the first retry, doubling per attempt.
    int64_t storage_retry_backoff_micros = 1000;
  };

  struct Stats {
    int64_t registered = 0;    ///< Register calls since construction
    int64_t unregistered = 0;  ///< snapshots dropped (incl. lineage drops)
    int64_t commits = 0;       ///< successful delta commits
    int64_t commit_conflicts = 0;  ///< commits refused with Aborted
    int64_t compactions = 0;   ///< commits that folded their overlay
    int64_t storage_faults = 0;    ///< failed storage write attempts
    int64_t storage_retries = 0;   ///< transient faults that were retried
    int64_t commits_unavailable = 0;  ///< commits shed/rolled back kUnavailable
  };

  /// Instantaneous shape of the registry — the read-amplification signal
  /// the metrics exporter publishes (and a future background compactor
  /// would watch). Latest-version figures sum over each lineage's current
  /// latest snapshot only; retained older versions contribute to
  /// `snapshots` and `max_version_depth`.
  struct Gauges {
    int64_t lineages = 0;
    int64_t snapshots = 0;          ///< registered snapshots, all versions
    int64_t max_version_depth = 0;  ///< most resident versions in a lineage
    int64_t nodes = 0;              ///< nodes across latest versions
    int64_t live_facts = 0;         ///< live facts across latest versions
    int64_t dead_facts = 0;         ///< tombstoned ids across latest versions
    int64_t overlay_facts = 0;      ///< overlay adds+tombstones across latest

    // Storage gauges — all zero for a non-persistent registry.
    int64_t storage_persistent = 0;      ///< 1 when storage_dir is set
    int64_t storage_segment_bytes = 0;   ///< on-disk bytes across segments
    int64_t storage_journal_records = 0; ///< records across live journals
    int64_t storage_journal_bytes = 0;   ///< on-disk bytes across journals
    int64_t storage_replay_micros = 0;   ///< time the last Restore spent
    int64_t storage_health = 0;          ///< HealthState as an integer
    int64_t storage_swept_tmp_files = 0; ///< *.tmp files swept at Restore
  };

  DbRegistry();
  explicit DbRegistry(Options options);
  ~DbRegistry();

  /// Moves `db` into a fresh immutable snapshot — version 1 of a new
  /// lineage — builds its label index, and returns a handle. Ids are
  /// unique per registry, starting at 1. Names need not be unique;
  /// Find/Resolve see the most recently registered lineage per name.
  DbHandle Register(GraphDb db, std::string name = "") RPQRES_EXCLUDES(mu_);

  /// Starts a delta against `parent`'s version. An invalid parent yields
  /// an invalid batch (whose Commit fails with FailedPrecondition).
  DeltaBatch BeginDelta(const DbHandle& parent) RPQRES_EXCLUDES(mu_);

  /// Drops the registry's reference to snapshot `id`; returns false when
  /// absent. Handles already handed out stay valid. Dropping a lineage's
  /// latest version makes the highest remaining version latest; dropping
  /// the last version removes the lineage.
  bool Unregister(uint64_t id) RPQRES_EXCLUDES(mu_);

  /// Drops every version of `lineage`; returns how many were dropped.
  int UnregisterLineage(uint64_t lineage) RPQRES_EXCLUDES(mu_);

  /// The handle for snapshot `id`, or an invalid handle when absent.
  DbHandle Find(uint64_t id) const RPQRES_EXCLUDES(mu_);

  /// The latest version of the most recently registered lineage named
  /// `name`, or an invalid handle. (Prefer Resolve for @version access.)
  DbHandle Find(std::string_view name) const RPQRES_EXCLUDES(mu_);

  /// Resolves "name", "name@latest", or "name@<version>" to a handle.
  /// NotFound for unknown names/versions, InvalidArgument for malformed
  /// references.
  Result<DbHandle> Resolve(std::string_view reference) const
      RPQRES_EXCLUDES(mu_);

  /// The latest version of `lineage`, or an invalid handle.
  DbHandle Latest(uint64_t lineage) const RPQRES_EXCLUDES(mu_);

  /// Currently registered snapshot count across all lineages (not
  /// counting unregistered snapshots kept alive by outstanding handles).
  size_t size() const RPQRES_EXCLUDES(mu_);

  Stats stats() const RPQRES_EXCLUDES(mu_);
  Gauges gauges() const RPQRES_EXCLUDES(mu_);

  const Options& options() const { return options_; }

  /// Snapshot ids currently registered, ascending (introspection).
  std::vector<uint64_t> ids() const RPQRES_EXCLUDES(mu_);

  // --- persistence ----------------------------------------------------------

  /// True when this registry writes segments + journals (storage_dir set).
  bool persistent() const { return storage_ != nullptr; }

  /// First storage write error since construction (OK when none, or for a
  /// non-persistent registry). Once latched the registry is degraded:
  /// reads keep serving from memory, but every subsequent commit fails
  /// with kUnavailable carrying this status — commits never silently
  /// lose durability.
  Status storage_status() const RPQRES_EXCLUDES(mu_);

  /// Storage health: kHealthy until the first permanent (post-retry)
  /// write failure, then kDegraded (read-only); kFailed on storage
  /// corruption (kDataLoss). Always kHealthy for non-persistent
  /// registries.
  HealthState health() const RPQRES_EXCLUDES(mu_);

  /// Failed storage write attempts by operation ("segment_write",
  /// "journal_append", ...), for the rpqres_storage_faults_total counter
  /// family. Empty for a healthy history.
  std::vector<std::pair<std::string, int64_t>> storage_fault_counts() const
      RPQRES_EXCLUDES(mu_);

  /// Names of leftover *.tmp files the last Restore swept (an interrupted
  /// segment write whose rename never happened). Surfaced instead of
  /// deleting silently.
  std::vector<std::string> swept_tmp_files() const RPQRES_EXCLUDES(mu_);

  /// Forces the health machine down as if `cause` came back from a
  /// storage write (kDataLoss -> kFailed, else -> kDegraded). Lets tests
  /// and drills exercise failed-shard routing without real corruption;
  /// no-op for non-persistent registries or an OK status.
  void DegradeStorageForTesting(const Status& cause) RPQRES_EXCLUDES(mu_);

  /// Restores this (empty, persistent) registry from its storage_dir:
  /// maps every lineage's base segment, replays its journal — cutting a
  /// torn tail at the last fully committed version — and reapplies
  /// version drops. Not thread-safe; call before serving. Unreadable or
  /// corrupt segments, and journals that do not match their segment,
  /// fail with kDataLoss.
  Status Restore() RPQRES_EXCLUDES(mu_);

  /// Constructs a persistent registry rooted at `dir` and Restore()s it.
  static Result<std::unique_ptr<DbRegistry>> OpenStorage(std::string dir);
  static Result<std::unique_ptr<DbRegistry>> OpenStorage(std::string dir,
                                                         Options options);

 private:
  friend class DeltaBatch;

  struct Lineage {
    std::string name;
    /// version -> snapshot; the latest is versions.rbegin().
    std::map<uint32_t, std::shared_ptr<const DbSnapshot>> versions;
    /// Next version number to assign; never decreases, even when the
    /// latest version is unregistered — a (lineage, version) pair must
    /// never be recycled, or ResultCache entries keyed by it would serve
    /// the old version's answers for the new one.
    uint32_t next_version = 2;
  };

  /// Publishes a finished batch (called by DeltaBatch::Commit).
  Result<DbHandle> CommitDelta(DeltaBatch* batch) RPQRES_EXCLUDES(mu_);
  /// Publishes a replayed journal group as (version, snapshot_id) —
  /// never compacts, never journals (Restore only).
  Result<DbHandle> CommitReplayed(DeltaBatch* batch, uint32_t version,
                                  uint64_t snapshot_id) RPQRES_EXCLUDES(mu_);
  /// Storage side of Register / a compacting commit / Unregister; all
  /// called with mu_ held. Transient failures are retried with backoff;
  /// a permanent failure latches the error, degrades health, and is
  /// returned so CommitDelta can roll the commit back.
  Status PersistNewSegmentLocked(const DbSnapshot& snapshot,
                                 bool reset_journal) RPQRES_REQUIRES(mu_);
  Status PersistCommitLocked(uint32_t parent_version,
                             const DbSnapshot& snapshot,
                             const std::vector<storage::JournalOp>& oplog)
      RPQRES_REQUIRES(mu_);
  void PersistDropLocked(uint64_t lineage, uint32_t version,
                         bool lineage_gone) RPQRES_REQUIRES(mu_);
  /// Runs `attempt`, retrying transient (kUnavailable) failures up to
  /// options_.storage_retry_attempts times with doubling backoff. Counts
  /// every failed attempt under `op`; degrades health on final failure.
  template <typename Fn>
  Status RetryStorageLocked(const char* op, Fn&& attempt) RPQRES_REQUIRES(mu_);

  /// Lock order: mu_ is held across the Persist*Locked storage syscalls,
  /// whose failpoint checks take the global FailpointRegistry mutex — so
  /// mu_ always comes first and nothing that holds the failpoint mutex may
  /// call back into the registry.
  mutable Mutex mu_
      RPQRES_ACQUIRED_BEFORE(fault::FailpointRegistry::Instance().AnnotationMu());
  uint64_t next_id_ RPQRES_GUARDED_BY(mu_) = 1;
  std::map<uint64_t, std::shared_ptr<const DbSnapshot>> snapshots_
      RPQRES_GUARDED_BY(mu_);
  std::map<uint64_t, Lineage> lineages_ RPQRES_GUARDED_BY(mu_);
  /// name -> lineage id of the most recent registration with that name.
  std::map<std::string, uint64_t, std::less<>> lineage_by_name_
      RPQRES_GUARDED_BY(mu_);
  Options options_;
  Stats stats_ RPQRES_GUARDED_BY(mu_);
  /// Non-null iff options_.storage_dir is set. The pointer itself is set
  /// once in the constructor and stable; the pointee's mutable state is
  /// guarded by mu_.
  std::unique_ptr<RegistryStorage> storage_ RPQRES_PT_GUARDED_BY(mu_);
  /// True while Restore() replays the journal (suppresses re-journaling).
  bool restoring_ RPQRES_GUARDED_BY(mu_) = false;
};

}  // namespace rpqres

#endif  // RPQRES_ENGINE_DB_REGISTRY_H_
