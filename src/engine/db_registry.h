// rpqres — engine/db_registry: owned, immutable database snapshots.
//
// Serving API v1 borrowed raw `const GraphDb*` pointers per request, which
// pushed a lifetime contract onto every caller ("db must outlive the
// call") and left nowhere to hang per-database precomputation. The
// registry inverts that: Register(GraphDb) moves the database into an
// immutable, refcounted DbSnapshot — together with a per-label adjacency
// index built exactly once — and hands back a DbHandle. Handles are cheap
// value types (one shared_ptr); every query against the same handle
// shares the snapshot and its index, and a handle stays valid even after
// the registry entry is unregistered or the registry itself is destroyed.
//
//   DbRegistry registry;
//   DbHandle db = registry.Register(std::move(graph), "orders-2026-07");
//   engine.Evaluate({.regex = "ax*b", .db = db});
//
// Every snapshot owns its database and label index — the v1 borrowed-
// pointer escape hatch (DbHandle::Borrow) was removed with the rest of
// the v1 surface.

#ifndef RPQRES_ENGINE_DB_REGISTRY_H_
#define RPQRES_ENGINE_DB_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "graphdb/graph_db.h"
#include "graphdb/label_index.h"

namespace rpqres {

/// One immutable registered database: the owned GraphDb plus everything
/// precomputed for it. Shared (shared_ptr-to-const) between the registry
/// and any number of outstanding handles / in-flight requests.
struct DbSnapshot {
  /// Registry-unique id.
  uint64_t id = 0;
  /// Optional display name given at Register time.
  std::string name;
  /// The database, owned.
  GraphDb db;
  /// Per-label fact adjacency, built once at Register time.
  LabelIndex label_index;
};

/// A value-type reference to a registered database. Default constructed
/// handles are invalid; requests carrying one fail with InvalidArgument
/// instead of crashing.
class DbHandle {
 public:
  DbHandle() = default;

  /// True iff the handle points at a snapshot.
  bool valid() const { return snapshot_ != nullptr; }
  /// The database. Must not be called on an invalid handle.
  const GraphDb& db() const { return snapshot_->db; }
  /// The precomputed per-label index, or nullptr for an invalid handle.
  const LabelIndex* label_index() const {
    return snapshot_ != nullptr ? &snapshot_->label_index : nullptr;
  }
  uint64_t id() const { return snapshot_ != nullptr ? snapshot_->id : 0; }
  const std::string& name() const;

 private:
  friend class DbRegistry;
  explicit DbHandle(std::shared_ptr<const DbSnapshot> snapshot)
      : snapshot_(std::move(snapshot)) {}

  std::shared_ptr<const DbSnapshot> snapshot_;
};

/// Thread-safe id → snapshot map. Unregistering (or destroying the
/// registry) drops only the registry's reference — outstanding DbHandles
/// keep their snapshot alive, so in-flight requests never race a
/// deregistration.
class DbRegistry {
 public:
  struct Stats {
    int64_t registered = 0;    ///< Register calls since construction
    int64_t unregistered = 0;  ///< successful Unregister calls
  };

  DbRegistry() = default;

  /// Moves `db` into a fresh immutable snapshot, builds its label index,
  /// and returns a handle. Ids are unique per registry, starting at 1.
  DbHandle Register(GraphDb db, std::string name = "");

  /// Drops the registry's reference to `id`; returns false when absent.
  /// Handles already handed out stay valid.
  bool Unregister(uint64_t id);

  /// The handle for `id`, or an invalid handle when absent.
  DbHandle Find(uint64_t id) const;

  /// Currently registered snapshot count (not counting unregistered
  /// snapshots kept alive by outstanding handles).
  size_t size() const;

  Stats stats() const;

  /// Ids currently registered, ascending (introspection / tooling).
  std::vector<uint64_t> ids() const;

 private:
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, std::shared_ptr<const DbSnapshot>> snapshots_;
  Stats stats_;
};

}  // namespace rpqres

#endif  // RPQRES_ENGINE_DB_REGISTRY_H_
