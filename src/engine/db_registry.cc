#include "engine/db_registry.h"

#include <algorithm>
#include <charconv>

namespace rpqres {

const std::string& DbHandle::name() const {
  static const std::string kEmpty;
  return snapshot_ != nullptr ? snapshot_->name : kEmpty;
}

// ---------------------------------------------------------------------------
// DeltaBatch
// ---------------------------------------------------------------------------

DeltaBatch::DeltaBatch(DbRegistry* registry,
                       std::shared_ptr<const DbSnapshot> parent)
    : registry_(registry), parent_(std::move(parent)) {
  // Aliasing pointer: the overlay's base reference keeps the whole parent
  // snapshot (db + label index) alive.
  work_ = GraphDb::MakeOverlay(
      std::shared_ptr<const GraphDb>(parent_, &parent_->db));
}

void DeltaBatch::TouchLabel(char label) {
  unsigned char l = static_cast<unsigned char>(label);
  if (touched_[l]) return;
  touched_[l] = true;
  touched_labels_.push_back(label);
}

NodeId DeltaBatch::AddNode(std::string name) {
  if (!valid()) return -1;
  ++ops_;
  return name.empty() ? work_.AddNode() : work_.AddNode(name);
}

Result<FactId> DeltaBatch::AddFact(NodeId source, char label, NodeId target,
                                   Capacity multiplicity) {
  if (!valid()) {
    return Status::FailedPrecondition("AddFact on an invalid DeltaBatch");
  }
  if (source < 0 || source >= work_.num_nodes() || target < 0 ||
      target >= work_.num_nodes()) {
    return Status::InvalidArgument(
        "AddFact: node ids must reference existing nodes");
  }
  if (multiplicity < 1) {
    return Status::InvalidArgument("AddFact: multiplicity must be >= 1");
  }
  ++ops_;
  int before = work_.num_facts();
  FactId id = work_.AddFact(source, label, target, multiplicity);
  // A multiplicity bump leaves the fact set — and hence the label index —
  // unchanged; only genuinely new facts touch their label.
  if (work_.num_facts() != before) TouchLabel(label);
  return id;
}

Status DeltaBatch::RemoveFact(NodeId source, char label, NodeId target) {
  if (!valid()) {
    return Status::FailedPrecondition("RemoveFact on an invalid DeltaBatch");
  }
  RPQRES_RETURN_IF_ERROR(work_.RemoveFact(source, label, target));
  ++ops_;
  TouchLabel(label);
  return Status::OK();
}

Result<DbHandle> DeltaBatch::Commit() {
  if (!valid()) {
    return Status::FailedPrecondition(
        "Commit on an invalid or already-committed DeltaBatch");
  }
  return registry_->CommitDelta(this);
}

// ---------------------------------------------------------------------------
// DbRegistry
// ---------------------------------------------------------------------------

DbHandle DbRegistry::Register(GraphDb db, std::string name) {
  auto snapshot = std::make_shared<DbSnapshot>();
  snapshot->name = std::move(name);
  snapshot->db = std::move(db);
  snapshot->label_index = LabelIndex(snapshot->db);
  snapshot->version = 1;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot->id = next_id_++;
  snapshot->lineage = snapshot->id;
  snapshots_.emplace(snapshot->id, snapshot);
  Lineage& lineage = lineages_[snapshot->lineage];
  lineage.name = snapshot->name;
  lineage.versions.emplace(snapshot->version, snapshot);
  if (!snapshot->name.empty()) {
    lineage_by_name_[snapshot->name] = snapshot->lineage;
  }
  ++stats_.registered;
  return DbHandle(std::move(snapshot));
}

DeltaBatch DbRegistry::BeginDelta(const DbHandle& parent) {
  if (!parent.valid()) return DeltaBatch();
  return DeltaBatch(this, parent.snapshot_);
}

Result<DbHandle> DbRegistry::CommitDelta(DeltaBatch* batch) {
  batch->committed_ = true;  // one-shot, even on failure
  const DbSnapshot& parent = *batch->parent_;

  auto snapshot = std::make_shared<DbSnapshot>();
  snapshot->lineage = parent.lineage;
  snapshot->name = parent.name;
  // snapshot->version is assigned under the lock below, from the
  // lineage's never-decreasing counter.
  // Compaction: once the accumulated overlay is a sizeable fraction of
  // the database, fold it into a fresh flat base (one O(|db|) rebuild
  // amortized over the commits that grew the overlay).
  const int64_t threshold = std::max<int64_t>(
      options_.compaction_min_overlay,
      static_cast<int64_t>(options_.compaction_fraction *
                           static_cast<double>(batch->work_.num_live_facts())));
  if (batch->work_.overlay_size() > threshold) {
    snapshot->db = batch->work_.Compact();
    snapshot->label_index = LabelIndex(snapshot->db);
    snapshot->compacted = true;
  } else {
    const FactId first_new_fact = parent.db.num_facts();
    snapshot->db = std::move(batch->work_);
    snapshot->label_index = LabelIndex(snapshot->db, parent.label_index,
                                       batch->touched_labels_, first_new_fact);
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto lineage_it = lineages_.find(snapshot->lineage);
  if (lineage_it == lineages_.end()) {
    return Status::NotFound("Commit: lineage " +
                            std::to_string(snapshot->lineage) +
                            " was unregistered");
  }
  auto& versions = lineage_it->second.versions;
  if (versions.empty() || versions.rbegin()->first != parent.version) {
    ++stats_.commit_conflicts;
    return Status::Aborted(
        "Commit: lineage " + std::to_string(snapshot->lineage) +
        " advanced past version " + std::to_string(parent.version) +
        " (re-begin the delta from the latest version)");
  }
  snapshot->id = next_id_++;
  // Versions are never recycled: after Unregister of the latest version
  // the next commit still gets a fresh number, so version-keyed
  // ResultCache entries can never alias a different database.
  snapshot->version = lineage_it->second.next_version++;
  snapshots_.emplace(snapshot->id, snapshot);
  versions.emplace(snapshot->version, snapshot);
  ++stats_.commits;
  if (snapshot->compacted) ++stats_.compactions;
  return DbHandle(std::move(snapshot));
}

bool DbRegistry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = snapshots_.find(id);
  if (it == snapshots_.end()) return false;
  const uint64_t lineage_id = it->second->lineage;
  const uint32_t version = it->second->version;
  snapshots_.erase(it);
  auto lineage_it = lineages_.find(lineage_id);
  if (lineage_it != lineages_.end()) {
    lineage_it->second.versions.erase(version);
    if (lineage_it->second.versions.empty()) {
      auto name_it = lineage_by_name_.find(lineage_it->second.name);
      if (name_it != lineage_by_name_.end() &&
          name_it->second == lineage_id) {
        lineage_by_name_.erase(name_it);
      }
      lineages_.erase(lineage_it);
    }
  }
  ++stats_.unregistered;
  return true;
}

int DbRegistry::UnregisterLineage(uint64_t lineage) {
  std::lock_guard<std::mutex> lock(mu_);
  auto lineage_it = lineages_.find(lineage);
  if (lineage_it == lineages_.end()) return 0;
  int dropped = 0;
  for (const auto& [version, snapshot] : lineage_it->second.versions) {
    snapshots_.erase(snapshot->id);
    ++dropped;
  }
  stats_.unregistered += dropped;
  auto name_it = lineage_by_name_.find(lineage_it->second.name);
  if (name_it != lineage_by_name_.end() && name_it->second == lineage) {
    lineage_by_name_.erase(name_it);
  }
  lineages_.erase(lineage_it);
  return dropped;
}

DbHandle DbRegistry::Find(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = snapshots_.find(id);
  return it != snapshots_.end() ? DbHandle(it->second) : DbHandle();
}

DbHandle DbRegistry::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto name_it = lineage_by_name_.find(name);
  if (name_it == lineage_by_name_.end()) return DbHandle();
  auto lineage_it = lineages_.find(name_it->second);
  if (lineage_it == lineages_.end() || lineage_it->second.versions.empty()) {
    return DbHandle();
  }
  return DbHandle(lineage_it->second.versions.rbegin()->second);
}

DbHandle DbRegistry::Latest(uint64_t lineage) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto lineage_it = lineages_.find(lineage);
  if (lineage_it == lineages_.end() || lineage_it->second.versions.empty()) {
    return DbHandle();
  }
  return DbHandle(lineage_it->second.versions.rbegin()->second);
}

Result<DbHandle> DbRegistry::Resolve(std::string_view reference) const {
  std::string_view name = reference;
  std::string_view version_part;
  size_t at = reference.rfind('@');
  if (at != std::string_view::npos) {
    name = reference.substr(0, at);
    version_part = reference.substr(at + 1);
  }
  if (name.empty()) {
    return Status::InvalidArgument("Resolve: empty lineage name in '" +
                                   std::string(reference) + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto name_it = lineage_by_name_.find(name);
  if (name_it == lineage_by_name_.end()) {
    return Status::NotFound("Resolve: no lineage named '" +
                            std::string(name) + "'");
  }
  auto lineage_it = lineages_.find(name_it->second);
  if (lineage_it == lineages_.end() || lineage_it->second.versions.empty()) {
    return Status::NotFound("Resolve: no lineage named '" +
                            std::string(name) + "'");
  }
  const Lineage& lineage = lineage_it->second;
  if (at == std::string_view::npos || version_part == "latest") {
    return DbHandle(lineage.versions.rbegin()->second);
  }
  uint32_t version = 0;
  auto [end, ec] = std::from_chars(
      version_part.data(), version_part.data() + version_part.size(),
      version);
  if (ec != std::errc() || end != version_part.data() + version_part.size() ||
      version == 0) {
    return Status::InvalidArgument(
        "Resolve: bad version '" + std::string(version_part) +
        "' (want a positive integer or 'latest')");
  }
  auto version_it = lineage.versions.find(version);
  if (version_it == lineage.versions.end()) {
    return Status::NotFound("Resolve: lineage '" + std::string(name) +
                            "' has no version " + std::to_string(version));
  }
  return DbHandle(version_it->second);
}

size_t DbRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_.size();
}

DbRegistry::Stats DbRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

DbRegistry::Gauges DbRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  Gauges gauges;
  gauges.lineages = static_cast<int64_t>(lineages_.size());
  gauges.snapshots = static_cast<int64_t>(snapshots_.size());
  for (const auto& [lineage_id, lineage] : lineages_) {
    gauges.max_version_depth =
        std::max(gauges.max_version_depth,
                 static_cast<int64_t>(lineage.versions.size()));
    if (lineage.versions.empty()) continue;
    const DbSnapshot& latest = *lineage.versions.rbegin()->second;
    gauges.nodes += latest.db.num_nodes();
    gauges.live_facts += latest.db.num_live_facts();
    gauges.dead_facts += latest.db.num_facts() - latest.db.num_live_facts();
    gauges.overlay_facts += latest.db.overlay_size();
  }
  return gauges;
}

std::vector<uint64_t> DbRegistry::ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> out;
  out.reserve(snapshots_.size());
  for (const auto& [id, snapshot] : snapshots_) out.push_back(id);
  return out;
}

}  // namespace rpqres
