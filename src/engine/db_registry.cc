#include "engine/db_registry.h"

namespace rpqres {

const std::string& DbHandle::name() const {
  static const std::string kEmpty;
  return snapshot_ != nullptr ? snapshot_->name : kEmpty;
}

DbHandle DbRegistry::Register(GraphDb db, std::string name) {
  auto snapshot = std::make_shared<DbSnapshot>();
  snapshot->name = std::move(name);
  snapshot->db = std::move(db);
  snapshot->label_index = LabelIndex(snapshot->db);
  std::lock_guard<std::mutex> lock(mu_);
  snapshot->id = next_id_++;
  snapshots_.emplace(snapshot->id, snapshot);
  ++stats_.registered;
  return DbHandle(std::move(snapshot));
}

bool DbRegistry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (snapshots_.erase(id) == 0) return false;
  ++stats_.unregistered;
  return true;
}

DbHandle DbRegistry::Find(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = snapshots_.find(id);
  return it != snapshots_.end() ? DbHandle(it->second) : DbHandle();
}

size_t DbRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_.size();
}

DbRegistry::Stats DbRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<uint64_t> DbRegistry::ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> out;
  out.reserve(snapshots_.size());
  for (const auto& [id, snapshot] : snapshots_) out.push_back(id);
  return out;
}

}  // namespace rpqres
