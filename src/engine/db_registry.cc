#include "engine/db_registry.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

#include "storage/segment.h"

namespace rpqres {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kFailed:
      return "failed";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// RegistryStorage — the on-disk side of a persistent registry. All fields
// are guarded by the registry's mu_, except during Restore (which runs
// single-threaded before serving starts).
// ---------------------------------------------------------------------------

class RegistryStorage {
 public:
  explicit RegistryStorage(std::string dir) : dir_(std::move(dir)) {}

  std::string SegmentPath(uint64_t lineage) const {
    return dir_ + "/lineage_" + std::to_string(lineage) + ".seg";
  }
  std::string JournalPath(uint64_t lineage) const {
    return dir_ + "/lineage_" + std::to_string(lineage) + ".journal";
  }
  void LatchError(const Status& status) {
    if (first_error_.ok() && !status.ok()) first_error_ = status;
  }

  /// Latches the error and moves health down the one-way machine:
  /// corruption (kDataLoss) fails the registry, everything else degrades
  /// it to read-only.
  void Degrade(const Status& status) {
    if (status.ok()) return;
    LatchError(status);
    if (status.code() == StatusCode::kDataLoss) {
      health_ = HealthState::kFailed;
    } else if (health_ == HealthState::kHealthy) {
      health_ = HealthState::kDegraded;
    }
  }

  void CountFault(const char* op) { ++fault_counts_[op]; }

  std::string dir_;
  /// First write error; commits after it fail with kUnavailable.
  Status first_error_;
  HealthState health_ = HealthState::kHealthy;
  /// Failed write attempts by operation, for rpqres_storage_faults_total.
  std::map<std::string, int64_t> fault_counts_;
  /// Leftover *.tmp files the last Restore swept.
  std::vector<std::string> swept_tmp_files_;
  /// Per-lineage open journal writers.
  std::map<uint64_t, storage::JournalWriter> writers_;
  /// Per-lineage on-disk segment sizes (for the gauges).
  std::map<uint64_t, int64_t> segment_bytes_;
  int64_t replay_micros_ = 0;
};

const std::string& DbHandle::name() const {
  static const std::string kEmpty;
  return snapshot_ != nullptr ? snapshot_->name : kEmpty;
}

// ---------------------------------------------------------------------------
// DeltaBatch
// ---------------------------------------------------------------------------

DeltaBatch::DeltaBatch(DbRegistry* registry,
                       std::shared_ptr<const DbSnapshot> parent)
    : registry_(registry), parent_(std::move(parent)) {
  // Aliasing pointer: the overlay's base reference keeps the whole parent
  // snapshot (db + label index) alive.
  work_ = GraphDb::MakeOverlay(
      std::shared_ptr<const GraphDb>(parent_, &parent_->db));
  MutexLock lock(registry_->mu_);
  record_ops_ = registry_->storage_ != nullptr && !registry_->restoring_;
}

void DeltaBatch::TouchLabel(char label) {
  unsigned char l = static_cast<unsigned char>(label);
  if (touched_[l]) return;
  touched_[l] = true;
  touched_labels_.push_back(label);
}

NodeId DeltaBatch::AddNode(std::string name) {
  if (!valid()) return -1;
  ++ops_;
  NodeId id = name.empty() ? work_.AddNode() : work_.AddNode(name);
  if (record_ops_) {
    storage::JournalOp op;
    op.type = storage::JournalOp::Type::kAddNode;
    // Journal the *resolved* name: anonymous nodes get a generated one,
    // and replay must reproduce it byte for byte.
    op.name = work_.node_name(id);
    oplog_.push_back(std::move(op));
  }
  return id;
}

Result<FactId> DeltaBatch::AddFact(NodeId source, char label, NodeId target,
                                   Capacity multiplicity) {
  if (!valid()) {
    return Status::FailedPrecondition("AddFact on an invalid DeltaBatch");
  }
  if (source < 0 || source >= work_.num_nodes() || target < 0 ||
      target >= work_.num_nodes()) {
    return Status::InvalidArgument(
        "AddFact: node ids must reference existing nodes");
  }
  if (multiplicity < 1) {
    return Status::InvalidArgument("AddFact: multiplicity must be >= 1");
  }
  ++ops_;
  int before = work_.num_facts();
  FactId id = work_.AddFact(source, label, target, multiplicity);
  // A multiplicity bump leaves the fact set — and hence the label index —
  // unchanged; only genuinely new facts touch their label.
  if (work_.num_facts() != before) TouchLabel(label);
  if (record_ops_) {
    storage::JournalOp op;
    op.type = storage::JournalOp::Type::kAddFact;
    op.source = source;
    op.target = target;
    op.label = label;
    op.multiplicity = multiplicity;
    oplog_.push_back(std::move(op));
  }
  return id;
}

Status DeltaBatch::RemoveFact(NodeId source, char label, NodeId target) {
  if (!valid()) {
    return Status::FailedPrecondition("RemoveFact on an invalid DeltaBatch");
  }
  RPQRES_RETURN_IF_ERROR(work_.RemoveFact(source, label, target));
  ++ops_;
  TouchLabel(label);
  if (record_ops_) {
    storage::JournalOp op;
    op.type = storage::JournalOp::Type::kRemoveFact;
    op.source = source;
    op.target = target;
    op.label = label;
    oplog_.push_back(std::move(op));
  }
  return Status::OK();
}

Result<DbHandle> DeltaBatch::Commit() {
  if (!valid()) {
    return Status::FailedPrecondition(
        "Commit on an invalid or already-committed DeltaBatch");
  }
  return registry_->CommitDelta(this);
}

// ---------------------------------------------------------------------------
// DbRegistry
// ---------------------------------------------------------------------------

DbRegistry::DbRegistry() = default;

DbRegistry::DbRegistry(Options options) : options_(std::move(options)) {
  if (!options_.storage_dir.empty()) {
    storage_ = std::make_unique<RegistryStorage>(options_.storage_dir);
    std::error_code ec;
    std::filesystem::create_directories(options_.storage_dir, ec);
    if (ec) {
      storage_->LatchError(Status::Internal(
          "storage: cannot create directory '" + options_.storage_dir +
          "': " + ec.message()));
    }
  }
}

DbRegistry::~DbRegistry() = default;

DbHandle DbRegistry::Register(GraphDb db, std::string name) {
  auto snapshot = std::make_shared<DbSnapshot>();
  snapshot->name = std::move(name);
  snapshot->db = std::move(db);
  snapshot->label_index = LabelIndex(snapshot->db);
  snapshot->version = 1;
  MutexLock lock(mu_);
  snapshot->id = next_id_++;
  snapshot->lineage = snapshot->id;
  snapshots_.emplace(snapshot->id, snapshot);
  Lineage& lineage = lineages_[snapshot->lineage];
  lineage.name = snapshot->name;
  lineage.versions.emplace(snapshot->version, snapshot);
  if (!snapshot->name.empty()) {
    lineage_by_name_[snapshot->name] = snapshot->lineage;
  }
  ++stats_.registered;
  // A degraded registry is read-only on disk: new lineages serve from
  // memory only (no status channel on Register; health() says why).
  if (storage_ != nullptr && !restoring_ &&
      storage_->health_ == HealthState::kHealthy) {
    // Best-effort: Register has no status channel. A failed write has
    // already latched the error and degraded health (health() says why);
    // the lineage still serves from memory.
    (void)PersistNewSegmentLocked(*snapshot, /*reset_journal=*/false);
  }
  return DbHandle(std::move(snapshot));
}

DeltaBatch DbRegistry::BeginDelta(const DbHandle& parent) {
  if (!parent.valid()) return DeltaBatch();
  return DeltaBatch(this, parent.snapshot_);
}

Result<DbHandle> DbRegistry::CommitDelta(DeltaBatch* batch) {
  batch->committed_ = true;  // one-shot, even on failure
  const DbSnapshot& parent = *batch->parent_;

  auto snapshot = std::make_shared<DbSnapshot>();
  snapshot->lineage = parent.lineage;
  snapshot->name = parent.name;
  // snapshot->version is assigned under the lock below, from the
  // lineage's never-decreasing counter.
  // Compaction: once the accumulated overlay is a sizeable fraction of
  // the database, fold it into a fresh flat base (one O(|db|) rebuild
  // amortized over the commits that grew the overlay).
  const int64_t threshold = std::max<int64_t>(
      options_.compaction_min_overlay,
      static_cast<int64_t>(options_.compaction_fraction *
                           static_cast<double>(batch->work_.num_live_facts())));
  if (batch->work_.overlay_size() > threshold) {
    snapshot->db = batch->work_.Compact();
    snapshot->label_index = LabelIndex(snapshot->db);
    snapshot->compacted = true;
  } else {
    const FactId first_new_fact = parent.db.num_facts();
    snapshot->db = std::move(batch->work_);
    snapshot->label_index = LabelIndex(snapshot->db, parent.label_index,
                                       batch->touched_labels_, first_new_fact);
  }

  MutexLock lock(mu_);
  // Degraded-mode shed: once a storage write has failed, later commits
  // must not silently succeed without durability — fail them with the
  // latched cause until the operator replaces the registry.
  if (storage_ != nullptr && batch->record_ops_ &&
      storage_->health_ != HealthState::kHealthy) {
    ++stats_.commits_unavailable;
    return Status::Unavailable(
        "Commit: registry storage is " +
        std::string(HealthStateName(storage_->health_)) +
        " (first error: " + storage_->first_error_.ToString() + ")");
  }
  auto lineage_it = lineages_.find(snapshot->lineage);
  if (lineage_it == lineages_.end()) {
    return Status::NotFound("Commit: lineage " +
                            std::to_string(snapshot->lineage) +
                            " was unregistered");
  }
  auto& versions = lineage_it->second.versions;
  if (versions.empty() || versions.rbegin()->first != parent.version) {
    ++stats_.commit_conflicts;
    return Status::Aborted(
        "Commit: lineage " + std::to_string(snapshot->lineage) +
        " advanced past version " + std::to_string(parent.version) +
        " (re-begin the delta from the latest version)");
  }
  snapshot->id = next_id_++;
  // Versions are never recycled: after Unregister of the latest version
  // the next commit still gets a fresh number, so version-keyed
  // ResultCache entries can never alias a different database.
  snapshot->version = lineage_it->second.next_version++;
  snapshots_.emplace(snapshot->id, snapshot);
  versions.emplace(snapshot->version, snapshot);
  ++stats_.commits;
  if (snapshot->compacted) ++stats_.compactions;
  if (storage_ != nullptr && batch->record_ops_) {
    Status persisted;
    if (snapshot->compacted) {
      // The fresh flat base subsumes the journal: write the new segment
      // first (atomic rename), then reset the journal. A crash between
      // the two leaves stale journal groups whose commit versions are at
      // or below the segment's — Restore skips those.
      persisted = PersistNewSegmentLocked(*snapshot, /*reset_journal=*/true);
    } else {
      persisted = PersistCommitLocked(parent.version, *snapshot,
                                      batch->oplog_);
    }
    if (!persisted.ok()) {
      // The durability write failed after retries: roll the publication
      // back so the commit is never acknowledged. The version number is
      // burned, not recycled (ResultCache keys must never alias).
      snapshots_.erase(snapshot->id);
      versions.erase(snapshot->version);
      --stats_.commits;
      if (snapshot->compacted) --stats_.compactions;
      ++stats_.commits_unavailable;
      return Status::Unavailable("Commit: rolled back, not durable: " +
                                 persisted.ToString());
    }
  }
  return DbHandle(std::move(snapshot));
}

Result<DbHandle> DbRegistry::CommitReplayed(DeltaBatch* batch,
                                            uint32_t version,
                                            uint64_t snapshot_id) {
  batch->committed_ = true;
  const DbSnapshot& parent = *batch->parent_;
  auto snapshot = std::make_shared<DbSnapshot>();
  snapshot->lineage = parent.lineage;
  snapshot->name = parent.name;
  // Replayed commits never compact: the journal's groups were produced
  // by non-compacting commits, and replaying them as plain overlays
  // reproduces the exact pre-restart fact-id space.
  const FactId first_new_fact = parent.db.num_facts();
  snapshot->db = std::move(batch->work_);
  snapshot->label_index = LabelIndex(snapshot->db, parent.label_index,
                                     batch->touched_labels_, first_new_fact);
  MutexLock lock(mu_);
  auto lineage_it = lineages_.find(snapshot->lineage);
  if (lineage_it == lineages_.end()) {
    return Status::DataLoss("Restore: lineage " +
                            std::to_string(snapshot->lineage) +
                            " vanished during replay");
  }
  auto& versions = lineage_it->second.versions;
  if (versions.empty() || versions.rbegin()->second->version != parent.version) {
    return Status::DataLoss(
        "Restore: journal group for version " + std::to_string(version) +
        " does not extend the latest restored version of lineage " +
        std::to_string(snapshot->lineage));
  }
  snapshot->id = snapshot_id;
  snapshot->version = version;
  next_id_ = std::max(next_id_, snapshot_id + 1);
  lineage_it->second.next_version =
      std::max(lineage_it->second.next_version, version + 1);
  snapshots_.emplace(snapshot->id, snapshot);
  versions.emplace(snapshot->version, snapshot);
  return DbHandle(std::move(snapshot));
}

template <typename Fn>
Status DbRegistry::RetryStorageLocked(const char* op, Fn&& attempt) {
  Status status = attempt();
  int64_t backoff = options_.storage_retry_backoff_micros;
  for (int retry = 0; retry < options_.storage_retry_attempts; ++retry) {
    if (status.ok() || status.code() != StatusCode::kUnavailable) break;
    // Transient (kUnavailable) by contract means a retry rewrites its
    // whole payload, so a later clean attempt is fully durable.
    storage_->CountFault(op);
    ++stats_.storage_faults;
    ++stats_.storage_retries;
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      backoff *= 2;
    }
    status = attempt();
  }
  if (!status.ok()) {
    storage_->CountFault(op);
    ++stats_.storage_faults;
    storage_->Degrade(status);
  }
  return status;
}

Status DbRegistry::PersistNewSegmentLocked(const DbSnapshot& snapshot,
                                           bool reset_journal) {
  storage::SegmentMeta meta;
  meta.lineage = snapshot.lineage;
  meta.version = snapshot.version;
  meta.snapshot_id = snapshot.id;
  meta.name = snapshot.name;
  int64_t bytes = 0;
  const std::string segment_path = storage_->SegmentPath(snapshot.lineage);
  // Register normally receives flat databases; an overlay handed to it
  // is persisted as its compacted live view (same serialization, fresh
  // fact-id space after a restart).
  Status written = RetryStorageLocked("segment_write", [&] {
    return snapshot.db.is_versioned()
               ? storage::WriteSegment(segment_path, snapshot.db.Compact(),
                                       meta, &bytes)
               : storage::WriteSegment(segment_path, snapshot.db, meta,
                                       &bytes);
  });
  if (!written.ok()) return written;
  storage_->segment_bytes_[snapshot.lineage] = bytes;
  if (reset_journal) {
    auto it = storage_->writers_.find(snapshot.lineage);
    if (it != storage_->writers_.end() && it->second.open()) {
      // A failed reset cannot un-commit: the fresh segment is already
      // renamed into place, and Restore's skip rule ignores the stale
      // groups the reset would have chopped. Degrade (no further commits)
      // but report the commit durable.
      (void)RetryStorageLocked("journal_reset",
                               [&] { return it->second.Reset(); });
    }
    return Status::OK();
  }
  const std::string journal_path = storage_->JournalPath(snapshot.lineage);
  storage::JournalWriter journal_writer;
  Status opened = RetryStorageLocked("journal_open", [&] {
    Result<storage::JournalWriter> writer =
        storage::JournalWriter::Open(journal_path, snapshot.lineage);
    if (!writer.ok()) return writer.status();
    journal_writer = std::move(*writer);
    return Status::OK();
  });
  if (journal_writer.open()) {
    storage_->writers_.insert_or_assign(snapshot.lineage,
                                        std::move(journal_writer));
  }
  // The base segment is durable either way; a missing journal writer only
  // blocks future commits, which the health check already sheds.
  (void)opened;
  return Status::OK();
}

Status DbRegistry::PersistCommitLocked(
    uint32_t parent_version, const DbSnapshot& snapshot,
    const std::vector<storage::JournalOp>& oplog) {
  auto it = storage_->writers_.find(snapshot.lineage);
  if (it == storage_->writers_.end() || !it->second.open()) {
    Status missing = Status::Internal(
        "storage: no journal writer for lineage " +
        std::to_string(snapshot.lineage));
    storage_->CountFault("journal_append");
    ++stats_.storage_faults;
    storage_->Degrade(missing);
    return missing;
  }
  std::vector<storage::JournalOp> group;
  group.reserve(oplog.size() + 2);
  storage::JournalOp begin;
  begin.type = storage::JournalOp::Type::kBegin;
  begin.version = parent_version;
  group.push_back(std::move(begin));
  group.insert(group.end(), oplog.begin(), oplog.end());
  storage::JournalOp commit;
  commit.type = storage::JournalOp::Type::kCommit;
  commit.version = snapshot.version;
  commit.snapshot_id = snapshot.id;
  group.push_back(std::move(commit));
  return RetryStorageLocked("journal_append",
                            [&] { return it->second.Append(group); });
}

void DbRegistry::PersistDropLocked(uint64_t lineage, uint32_t version,
                                   bool lineage_gone) {
  if (lineage_gone) {
    storage_->writers_.erase(lineage);
    storage_->segment_bytes_.erase(lineage);
    std::error_code ec;
    std::filesystem::remove(storage_->SegmentPath(lineage), ec);
    std::filesystem::remove(storage_->JournalPath(lineage), ec);
    return;
  }
  // Already degraded: the drop serves from memory only, like commits.
  if (storage_->health_ != HealthState::kHealthy) return;
  auto it = storage_->writers_.find(lineage);
  if (it == storage_->writers_.end() || !it->second.open()) {
    Status missing = Status::Internal(
        "storage: no journal writer for lineage " + std::to_string(lineage));
    storage_->CountFault("drop_append");
    ++stats_.storage_faults;
    storage_->Degrade(missing);
    return;
  }
  storage::JournalOp drop;
  drop.type = storage::JournalOp::Type::kDropVersion;
  drop.version = version;
  // The in-memory drop already happened; losing the drop record means
  // the version resurfaces after a restart, which degraded health makes
  // an operator-visible event rather than a silent divergence.
  (void)RetryStorageLocked("drop_append",
                           [&] { return it->second.Append({drop}); });
}

bool DbRegistry::Unregister(uint64_t id) {
  MutexLock lock(mu_);
  auto it = snapshots_.find(id);
  if (it == snapshots_.end()) return false;
  const uint64_t lineage_id = it->second->lineage;
  const uint32_t version = it->second->version;
  snapshots_.erase(it);
  bool lineage_gone = false;
  auto lineage_it = lineages_.find(lineage_id);
  if (lineage_it != lineages_.end()) {
    lineage_it->second.versions.erase(version);
    if (lineage_it->second.versions.empty()) {
      auto name_it = lineage_by_name_.find(lineage_it->second.name);
      if (name_it != lineage_by_name_.end() &&
          name_it->second == lineage_id) {
        lineage_by_name_.erase(name_it);
      }
      lineages_.erase(lineage_it);
      lineage_gone = true;
    }
  }
  ++stats_.unregistered;
  if (storage_ != nullptr && !restoring_) {
    PersistDropLocked(lineage_id, version, lineage_gone);
  }
  return true;
}

int DbRegistry::UnregisterLineage(uint64_t lineage) {
  MutexLock lock(mu_);
  auto lineage_it = lineages_.find(lineage);
  if (lineage_it == lineages_.end()) return 0;
  int dropped = 0;
  for (const auto& [version, snapshot] : lineage_it->second.versions) {
    snapshots_.erase(snapshot->id);
    ++dropped;
  }
  stats_.unregistered += dropped;
  auto name_it = lineage_by_name_.find(lineage_it->second.name);
  if (name_it != lineage_by_name_.end() && name_it->second == lineage) {
    lineage_by_name_.erase(name_it);
  }
  lineages_.erase(lineage_it);
  if (storage_ != nullptr && !restoring_) {
    PersistDropLocked(lineage, /*version=*/0, /*lineage_gone=*/true);
  }
  return dropped;
}

DbHandle DbRegistry::Find(uint64_t id) const {
  MutexLock lock(mu_);
  auto it = snapshots_.find(id);
  return it != snapshots_.end() ? DbHandle(it->second) : DbHandle();
}

DbHandle DbRegistry::Find(std::string_view name) const {
  MutexLock lock(mu_);
  auto name_it = lineage_by_name_.find(name);
  if (name_it == lineage_by_name_.end()) return DbHandle();
  auto lineage_it = lineages_.find(name_it->second);
  if (lineage_it == lineages_.end() || lineage_it->second.versions.empty()) {
    return DbHandle();
  }
  return DbHandle(lineage_it->second.versions.rbegin()->second);
}

DbHandle DbRegistry::Latest(uint64_t lineage) const {
  MutexLock lock(mu_);
  auto lineage_it = lineages_.find(lineage);
  if (lineage_it == lineages_.end() || lineage_it->second.versions.empty()) {
    return DbHandle();
  }
  return DbHandle(lineage_it->second.versions.rbegin()->second);
}

namespace {

// "1, 2, 5" from a versions map — for actionable Resolve errors.
std::string JoinVersions(
    const std::map<uint32_t, std::shared_ptr<const DbSnapshot>>& versions) {
  std::string out;
  for (const auto& [version, snapshot] : versions) {
    if (!out.empty()) out += ", ";
    out += std::to_string(version);
  }
  return out.empty() ? "none" : out;
}

std::string JoinNames(
    const std::map<std::string, uint64_t, std::less<>>& by_name) {
  std::string out;
  for (const auto& [name, lineage] : by_name) {
    if (!out.empty()) out += ", ";
    out += "'" + name + "'";
  }
  return out.empty() ? "none" : out;
}

}  // namespace

Result<DbHandle> DbRegistry::Resolve(std::string_view reference) const {
  std::string_view name = reference;
  std::string_view version_part;
  size_t at = reference.rfind('@');
  if (at != std::string_view::npos) {
    name = reference.substr(0, at);
    version_part = reference.substr(at + 1);
  }
  if (name.empty()) {
    return Status::InvalidArgument("Resolve: empty lineage name in '" +
                                   std::string(reference) + "'");
  }
  MutexLock lock(mu_);
  auto name_it = lineage_by_name_.find(name);
  if (name_it == lineage_by_name_.end()) {
    return Status::NotFound("Resolve: no lineage named '" +
                            std::string(name) + "' (registered: " +
                            JoinNames(lineage_by_name_) + ")");
  }
  auto lineage_it = lineages_.find(name_it->second);
  if (lineage_it == lineages_.end() || lineage_it->second.versions.empty()) {
    return Status::NotFound("Resolve: no lineage named '" +
                            std::string(name) + "' (registered: " +
                            JoinNames(lineage_by_name_) + ")");
  }
  const Lineage& lineage = lineage_it->second;
  if (at == std::string_view::npos || version_part == "latest") {
    return DbHandle(lineage.versions.rbegin()->second);
  }
  uint32_t version = 0;
  auto [end, ec] = std::from_chars(
      version_part.data(), version_part.data() + version_part.size(),
      version);
  if (ec != std::errc() || end != version_part.data() + version_part.size() ||
      version == 0) {
    return Status::InvalidArgument(
        "Resolve: bad version '" + std::string(version_part) +
        "' (want a positive integer or 'latest')");
  }
  auto version_it = lineage.versions.find(version);
  if (version_it == lineage.versions.end()) {
    return Status::NotFound("Resolve: lineage '" + std::string(name) +
                            "' has no version " + std::to_string(version) +
                            " (available: " + JoinVersions(lineage.versions) +
                            ")");
  }
  return DbHandle(version_it->second);
}

size_t DbRegistry::size() const {
  MutexLock lock(mu_);
  return snapshots_.size();
}

DbRegistry::Stats DbRegistry::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

DbRegistry::Gauges DbRegistry::gauges() const {
  MutexLock lock(mu_);
  Gauges gauges;
  gauges.lineages = static_cast<int64_t>(lineages_.size());
  gauges.snapshots = static_cast<int64_t>(snapshots_.size());
  for (const auto& [lineage_id, lineage] : lineages_) {
    gauges.max_version_depth =
        std::max(gauges.max_version_depth,
                 static_cast<int64_t>(lineage.versions.size()));
    if (lineage.versions.empty()) continue;
    const DbSnapshot& latest = *lineage.versions.rbegin()->second;
    gauges.nodes += latest.db.num_nodes();
    gauges.live_facts += latest.db.num_live_facts();
    gauges.dead_facts += latest.db.num_facts() - latest.db.num_live_facts();
    gauges.overlay_facts += latest.db.overlay_size();
  }
  if (storage_ != nullptr) {
    gauges.storage_persistent = 1;
    for (const auto& [lineage, bytes] : storage_->segment_bytes_) {
      gauges.storage_segment_bytes += bytes;
    }
    for (const auto& [lineage, writer] : storage_->writers_) {
      gauges.storage_journal_records += writer.records();
      gauges.storage_journal_bytes += writer.bytes();
    }
    gauges.storage_replay_micros = storage_->replay_micros_;
    gauges.storage_health = static_cast<int64_t>(storage_->health_);
    gauges.storage_swept_tmp_files =
        static_cast<int64_t>(storage_->swept_tmp_files_.size());
  }
  return gauges;
}

Status DbRegistry::storage_status() const {
  MutexLock lock(mu_);
  return storage_ != nullptr ? storage_->first_error_ : Status::OK();
}

HealthState DbRegistry::health() const {
  MutexLock lock(mu_);
  return storage_ != nullptr ? storage_->health_ : HealthState::kHealthy;
}

std::vector<std::pair<std::string, int64_t>> DbRegistry::storage_fault_counts()
    const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  if (storage_ != nullptr) {
    out.assign(storage_->fault_counts_.begin(), storage_->fault_counts_.end());
  }
  return out;
}

std::vector<std::string> DbRegistry::swept_tmp_files() const {
  MutexLock lock(mu_);
  return storage_ != nullptr ? storage_->swept_tmp_files_
                             : std::vector<std::string>();
}

void DbRegistry::DegradeStorageForTesting(const Status& cause) {
  MutexLock lock(mu_);
  if (storage_ != nullptr) storage_->Degrade(cause);
}

Status DbRegistry::Restore() {
  if (storage_ == nullptr) {
    return Status::FailedPrecondition(
        "Restore: registry has no storage_dir configured");
  }
  {
    MutexLock lock(mu_);
    if (!snapshots_.empty()) {
      return Status::FailedPrecondition(
          "Restore: registry is not empty (restore before serving)");
    }
    RPQRES_RETURN_IF_ERROR(storage_->first_error_);
  }
  struct RestoringGuard {
    explicit RestoringGuard(DbRegistry* registry) : registry_(registry) {
      MutexLock lock(registry_->mu_);
      registry_->restoring_ = true;
    }
    ~RestoringGuard() {
      MutexLock lock(registry_->mu_);
      registry_->restoring_ = false;
    }
    DbRegistry* registry_;
  } guard(this);
  const auto start = std::chrono::steady_clock::now();

  // Scan the directory: leftover temp files from an interrupted segment
  // write are garbage (the rename never happened), segments and journals
  // are collected per lineage.
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::map<uint64_t, std::string> journals;
  std::string dir;
  {
    MutexLock lock(mu_);
    dir = storage_->dir_;
  }
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir, ec)) {
    const std::string filename = entry.path().filename().string();
    if (filename.ends_with(".tmp")) {
      // An interrupted segment write whose rename never happened. Swept,
      // but on the record: swept_tmp_files() and the
      // storage_swept_tmp_files gauge report every name.
      std::error_code remove_ec;
      std::filesystem::remove(entry.path(), remove_ec);
      MutexLock lock(mu_);
      storage_->swept_tmp_files_.push_back(filename);
      continue;
    }
    uint64_t lineage = 0;
    std::string_view stem = filename;
    bool is_segment = false;
    if (stem.starts_with("lineage_") && stem.ends_with(".seg")) {
      stem.remove_prefix(8);
      stem.remove_suffix(4);
      is_segment = true;
    } else if (stem.starts_with("lineage_") && stem.ends_with(".journal")) {
      stem.remove_prefix(8);
      stem.remove_suffix(8);
    } else {
      continue;
    }
    auto [end, parse_ec] =
        std::from_chars(stem.data(), stem.data() + stem.size(), lineage);
    if (parse_ec != std::errc() || end != stem.data() + stem.size()) continue;
    if (is_segment) {
      segments.emplace_back(lineage, entry.path().string());
    } else {
      journals.emplace(lineage, entry.path().string());
    }
  }
  if (ec) {
    return Status::Internal("Restore: cannot scan '" + dir +
                            "': " + ec.message());
  }
  // Lineage ids are assigned in registration order, so ascending-id
  // restore reproduces lineage_by_name_'s most-recent-wins semantics.
  std::sort(segments.begin(), segments.end());
  for (const auto& [journal_lineage, path] : journals) {
    const bool matched = std::any_of(
        segments.begin(), segments.end(),
        [journal_lineage](const auto& s) { return s.first == journal_lineage; });
    if (!matched) {
      return Status::DataLoss("Restore: journal '" + path +
                              "' has no matching segment");
    }
  }

  for (const auto& [lineage, segment_path] : segments) {
    RPQRES_ASSIGN_OR_RETURN(storage::LoadedSegment loaded,
                            storage::ReadSegment(segment_path));
    if (loaded.meta.lineage != lineage) {
      return Status::DataLoss(
          "Restore: segment '" + segment_path + "' claims lineage " +
          std::to_string(loaded.meta.lineage) + ", filename says " +
          std::to_string(lineage));
    }
    const uint32_t segment_version = loaded.meta.version;
    auto snapshot = std::make_shared<DbSnapshot>();
    snapshot->id = loaded.meta.snapshot_id;
    snapshot->lineage = lineage;
    snapshot->version = segment_version;
    snapshot->name = loaded.meta.name;
    snapshot->db = std::move(loaded.db);
    snapshot->label_index = std::move(loaded.label_index);
    snapshot->compacted = segment_version > 1;
    {
      MutexLock lock(mu_);
      snapshots_.emplace(snapshot->id, snapshot);
      Lineage& entry = lineages_[lineage];
      entry.name = snapshot->name;
      entry.versions.emplace(snapshot->version, snapshot);
      entry.next_version = segment_version + 1;
      next_id_ = std::max(next_id_, snapshot->id + 1);
      if (!snapshot->name.empty()) {
        lineage_by_name_[snapshot->name] = lineage;
      }
      storage_->segment_bytes_[lineage] = loaded.file_bytes;
    }

    auto journal_it = journals.find(lineage);
    int64_t journal_valid_bytes = -1;
    int64_t journal_records = 0;
    if (journal_it != journals.end()) {
      RPQRES_ASSIGN_OR_RETURN(storage::JournalContents contents,
                              storage::ReadJournal(journal_it->second,
                                                   lineage));
      journal_valid_bytes = contents.valid_bytes;
      journal_records = contents.records;
      for (const storage::JournalGroup& group : contents.groups) {
        if (group.is_drop) {
          uint64_t drop_id = 0;
          {
            MutexLock lock(mu_);
            auto lineage_it = lineages_.find(lineage);
            if (lineage_it != lineages_.end()) {
              auto version_it =
                  lineage_it->second.versions.find(group.drop_version);
              if (version_it != lineage_it->second.versions.end()) {
                drop_id = version_it->second->id;
              }
            }
          }
          // A drop of a version already folded away by a later
          // compaction (or already dropped) is a no-op.
          if (drop_id != 0) Unregister(drop_id);
          continue;
        }
        // Compaction crash window: the new segment renamed into place but
        // the journal reset did not land before the crash. Groups at or
        // below the segment's version are already folded into the base.
        if (group.commit_version <= segment_version) continue;
        DbHandle parent = Latest(lineage);
        if (!parent.valid() || parent.version() != group.parent_version) {
          return Status::DataLoss(
              "Restore: journal group committing version " +
              std::to_string(group.commit_version) + " of lineage " +
              std::to_string(lineage) + " expects parent version " +
              std::to_string(group.parent_version) + ", have " +
              (parent.valid() ? std::to_string(parent.version()) : "none"));
        }
        DeltaBatch batch = BeginDelta(parent);
        for (const storage::JournalOp& op : group.ops) {
          switch (op.type) {
            case storage::JournalOp::Type::kAddNode:
              batch.AddNode(op.name);
              break;
            case storage::JournalOp::Type::kAddFact: {
              Result<FactId> added =
                  batch.AddFact(op.source, op.label, op.target,
                                op.multiplicity);
              if (!added.ok()) {
                return Status::DataLoss(
                    "Restore: replaying AddFact for version " +
                    std::to_string(group.commit_version) + " of lineage " +
                    std::to_string(lineage) + " failed: " +
                    added.status().message());
              }
              break;
            }
            case storage::JournalOp::Type::kRemoveFact: {
              Status removed = batch.RemoveFact(op.source, op.label,
                                                op.target);
              if (!removed.ok()) {
                return Status::DataLoss(
                    "Restore: replaying RemoveFact for version " +
                    std::to_string(group.commit_version) + " of lineage " +
                    std::to_string(lineage) + " failed: " +
                    removed.message());
              }
              break;
            }
            default:
              return Status::DataLoss(
                  "Restore: unexpected op type inside a journal group");
          }
        }
        RPQRES_RETURN_IF_ERROR(
            CommitReplayed(&batch, group.commit_version, group.snapshot_id)
                .status());
      }
    }
    // Reopen the journal for appending, chopping any torn tail; a lineage
    // without a journal file gets a fresh one.
    std::string journal_path;
    {
      MutexLock lock(mu_);
      journal_path = storage_->JournalPath(lineage);
    }
    RPQRES_ASSIGN_OR_RETURN(
        storage::JournalWriter writer,
        storage::JournalWriter::Open(journal_path, lineage,
                                     journal_valid_bytes, journal_records));
    MutexLock lock(mu_);
    storage_->writers_.insert_or_assign(lineage, std::move(writer));
  }

  const auto elapsed = std::chrono::steady_clock::now() - start;
  MutexLock lock(mu_);
  storage_->replay_micros_ =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  return Status::OK();
}

Result<std::unique_ptr<DbRegistry>> DbRegistry::OpenStorage(std::string dir) {
  return OpenStorage(std::move(dir), Options());
}

Result<std::unique_ptr<DbRegistry>> DbRegistry::OpenStorage(std::string dir,
                                                            Options options) {
  options.storage_dir = std::move(dir);
  auto registry = std::make_unique<DbRegistry>(std::move(options));
  RPQRES_RETURN_IF_ERROR(registry->storage_status());
  RPQRES_RETURN_IF_ERROR(registry->Restore());
  return registry;
}

std::vector<uint64_t> DbRegistry::ids() const {
  MutexLock lock(mu_);
  std::vector<uint64_t> out;
  out.reserve(snapshots_.size());
  for (const auto& [id, snapshot] : snapshots_) out.push_back(id);
  return out;
}

}  // namespace rpqres
