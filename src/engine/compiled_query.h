// rpqres — engine/compiled_query: a query compiled once, executed often.
//
// Real RPQ resilience workloads are few-queries-many-databases: the same
// regex is asked against many graphs (or many versions of one graph).
// CompileQuery front-loads every per-query cost — parse, ε-NFA,
// determinization + minimization, IF(L), the Figure 1 classification, the
// solver choice, and (for local languages) the RO-εNFA — into an immutable
// CompiledQuery that ComputeResilienceWithPlan executes per database.

#ifndef RPQRES_ENGINE_COMPILED_QUERY_H_
#define RPQRES_ENGINE_COMPILED_QUERY_H_

#include <memory>
#include <optional>
#include <string>

#include "classify/classifier.h"
#include "graphdb/graph_db.h"
#include "lang/language.h"
#include "resilience/resilience.h"
#include "resilience/ro_tables.h"
#include "util/status.h"

namespace rpqres {

/// Knobs for query compilation.
struct CompileOptions {
  /// Whether the plan may fall back to the exponential exact solver when
  /// no polynomial algorithm applies (Unimplemented otherwise).
  bool allow_exponential = true;
  /// Bound on the four-legged witness search during classification
  /// (ClassifyResilience's max_word_length).
  int max_word_length = 12;
};

/// The immutable compilation artifact. Shared (via shared_ptr-to-const)
/// between the plan cache and any number of concurrently running
/// instances; all members are read-only after construction.
struct CompiledQuery {
  /// The regex text as given (plan-cache key component).
  std::string regex;
  /// Semantics this plan was compiled under (plan-cache key component).
  Semantics semantics = Semantics::kSet;
  /// Parsed language: ε-NFA plus minimal DFA.
  Language language;
  /// The Figure 1 complexity verdict for IF(L), with its justifying rule.
  Classification classification;
  /// The executable dispatch plan: IF(L), chosen solver, RO-εNFA tables.
  ResiliencePlan plan;
  /// Solver tables for the RO-εNFA of the *original* language L (not
  /// IF(L) — the IF rewrite is unsound with fixed endpoints), present iff
  /// L itself is local. Powers fixed-endpoint requests
  /// (ResilienceRequest::source/target).
  std::optional<RoProductTables> ro_tables_exact;
  /// Wall time CompileQuery spent producing this artifact, microseconds.
  double compile_micros = 0;
};

/// Compiles `regex` under `semantics`. This is the uncached single-query
/// path; ResilienceEngine::Compile adds the LRU plan cache on top.
Result<std::shared_ptr<const CompiledQuery>> CompileQuery(
    const std::string& regex, Semantics semantics,
    const CompileOptions& options = {});

}  // namespace rpqres

#endif  // RPQRES_ENGINE_COMPILED_QUERY_H_
