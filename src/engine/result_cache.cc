#include "engine/result_cache.h"

namespace rpqres {

std::optional<CachedResult> ResultCache::Lookup(const ResultCacheKey& key) {
  if (!enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void ResultCache::Insert(ResultCacheKey key, CachedResult value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(std::move(key), std::move(value));
  index_.emplace(lru_.front().first, lru_.begin());
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

int64_t ResultCache::EraseMatching(uint64_t lineage,
                                   std::optional<uint32_t> version) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.lineage == lineage &&
        (!version.has_value() || it->first.version == *version)) {
      index_.erase(it->first);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidations += dropped;
  return dropped;
}

int64_t ResultCache::EraseLineage(uint64_t lineage) {
  return EraseMatching(lineage, std::nullopt);
}

int64_t ResultCache::EraseVersion(uint64_t lineage, uint32_t version) {
  return EraseMatching(lineage, version);
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ResultCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace rpqres
