#include "engine/result_cache.h"

namespace rpqres {

namespace {

size_t StringBytes(const std::string& s) {
  // Short strings live inline; only spilled buffers cost heap.
  return s.capacity() > sizeof(std::string) ? s.capacity() + 1 : 0;
}

}  // namespace

size_t ResultCache::EntryFootprintBytes(const ResultCacheKey& key,
                                        const CachedResult& value) {
  // The list node plus the index node (which re-copies the key). Node
  // headers are approximated as three pointers each.
  size_t bytes = sizeof(Entry) + 3 * sizeof(void*);  // list node
  // Index node: rb-tree header (3 pointers + color) + key copy + iterator.
  bytes += sizeof(ResultCacheKey) + 4 * sizeof(void*) +
           sizeof(std::list<Entry>::iterator);
  bytes += 2 * StringBytes(key.regex);  // both key copies
  // The witness set is the dominant variable-size component.
  bytes += value.result.contingency.capacity() * sizeof(FactId);
  bytes += StringBytes(value.result.algorithm);
  bytes += StringBytes(value.stats.complexity);
  bytes += StringBytes(value.stats.rule);
  bytes += StringBytes(value.stats.algorithm);
  return bytes;
}

std::optional<CachedResult> ResultCache::Lookup(const ResultCacheKey& key) {
  if (!enabled()) return std::nullopt;
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void ResultCache::PopLru() {
  bytes_ -= lru_.back().bytes;
  index_.erase(lru_.back().key);
  lru_.pop_back();
  ++stats_.evictions;
}

size_t ResultCache::Insert(ResultCacheKey key, CachedResult value) {
  if (!enabled()) return 0;
  const size_t footprint = EntryFootprintBytes(key, value);
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ += footprint - it->second->bytes;
    it->second->value = std::move(value);
    it->second->bytes = footprint;
    lru_.splice(lru_.begin(), lru_, it->second);
    return 0;
  }
  lru_.push_front(Entry{std::move(key), std::move(value), footprint});
  index_.emplace(lru_.front().key, lru_.begin());
  bytes_ += footprint;
  ++stats_.insertions;
  size_t evicted = 0;
  while (lru_.size() > capacity_) {
    PopLru();
    ++evicted;
  }
  // Byte budget: keep evicting LRU-first, but always retain at least the
  // entry just inserted (a single oversized answer is admitted rather
  // than bouncing forever).
  while (max_bytes_ > 0 && bytes_ > max_bytes_ && lru_.size() > 1) {
    PopLru();
    ++evicted;
  }
  return evicted;
}

int64_t ResultCache::EraseMatching(uint64_t lineage,
                                   std::optional<uint32_t> version) {
  MutexLock lock(mu_);
  int64_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.lineage == lineage &&
        (!version.has_value() || it->key.version == *version)) {
      bytes_ -= it->bytes;
      index_.erase(it->key);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidations += dropped;
  return dropped;
}

int64_t ResultCache::EraseLineage(uint64_t lineage) {
  return EraseMatching(lineage, std::nullopt);
}

int64_t ResultCache::EraseVersion(uint64_t lineage, uint32_t version) {
  return EraseMatching(lineage, version);
}

size_t ResultCache::size() const {
  MutexLock lock(mu_);
  return lru_.size();
}

size_t ResultCache::size_bytes() const {
  MutexLock lock(mu_);
  return bytes_;
}

ResultCache::Stats ResultCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void ResultCache::ResetStats() {
  MutexLock lock(mu_);
  stats_ = Stats{};
}

void ResultCache::Clear() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

}  // namespace rpqres
