// rpqres — engine/plan_cache: LRU cache of compiled query plans.
//
// Keyed by (regex text, semantics). The cache stores
// shared_ptr<const CompiledQuery>, so an evicted plan stays alive for any
// instance still executing it; eviction only drops the cache's reference.

#ifndef RPQRES_ENGINE_PLAN_CACHE_H_
#define RPQRES_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "engine/compiled_query.h"
#include "graphdb/graph_db.h"

namespace rpqres {

/// Thread-safe LRU map (regex, semantics) → CompiledQuery.
class PlanCache {
 public:
  /// Counters since construction (or the last ResetStats).
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
  };

  /// `capacity` = max resident plans; values < 1 are clamped to 1.
  explicit PlanCache(size_t capacity);

  /// Returns the cached plan and marks it most-recently-used, or nullptr
  /// (counted as hit/miss respectively).
  std::shared_ptr<const CompiledQuery> Lookup(const std::string& regex,
                                              Semantics semantics);

  /// Inserts (or replaces) the plan for its own (regex, semantics) key,
  /// evicting the least-recently-used entry when over capacity. Returns
  /// how many entries were evicted, so the engine can fold evictions into
  /// its own consistent stats snapshot.
  size_t Insert(std::shared_ptr<const CompiledQuery> query);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  Stats stats() const;
  void ResetStats();
  /// Drops all entries (stats are kept).
  void Clear();

 private:
  using Key = std::pair<std::string, Semantics>;
  using Entry = std::pair<Key, std::shared_ptr<const CompiledQuery>>;

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<Key, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace rpqres

#endif  // RPQRES_ENGINE_PLAN_CACHE_H_
