// rpqres — engine/plan_cache: LRU cache of compiled query plans.
//
// Keyed by (regex text, semantics). The cache stores
// shared_ptr<const CompiledQuery>, so an evicted plan stays alive for any
// instance still executing it; eviction only drops the cache's reference.

#ifndef RPQRES_ENGINE_PLAN_CACHE_H_
#define RPQRES_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "engine/compiled_query.h"
#include "graphdb/graph_db.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace rpqres {

/// Thread-safe LRU map (regex, semantics) → CompiledQuery.
class PlanCache {
 public:
  /// Counters since construction (or the last ResetStats).
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
  };

  /// `capacity` = max resident plans; values < 1 are clamped to 1.
  explicit PlanCache(size_t capacity);

  /// Returns the cached plan and marks it most-recently-used, or nullptr
  /// (counted as hit/miss respectively).
  std::shared_ptr<const CompiledQuery> Lookup(const std::string& regex,
                                              Semantics semantics)
      RPQRES_EXCLUDES(mu_);

  /// Inserts (or replaces) the plan for its own (regex, semantics) key,
  /// evicting the least-recently-used entry when over capacity. Returns
  /// how many entries were evicted, so the engine can fold evictions into
  /// its own consistent stats snapshot.
  size_t Insert(std::shared_ptr<const CompiledQuery> query)
      RPQRES_EXCLUDES(mu_);

  size_t size() const RPQRES_EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }
  Stats stats() const RPQRES_EXCLUDES(mu_);
  void ResetStats() RPQRES_EXCLUDES(mu_);
  /// Drops all entries (stats are kept).
  void Clear() RPQRES_EXCLUDES(mu_);

 private:
  using Key = std::pair<std::string, Semantics>;
  using Entry = std::pair<Key, std::shared_ptr<const CompiledQuery>>;

  mutable Mutex mu_;
  const size_t capacity_;  // immutable after construction
  std::list<Entry> lru_ RPQRES_GUARDED_BY(mu_);  // front = most recently used
  std::map<Key, std::list<Entry>::iterator> index_ RPQRES_GUARDED_BY(mu_);
  Stats stats_ RPQRES_GUARDED_BY(mu_);
};

}  // namespace rpqres

#endif  // RPQRES_ENGINE_PLAN_CACHE_H_
