#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <utility>

#include "flow/solver_scratch.h"
#include "resilience/local_resilience.h"

namespace rpqres {

namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// The effective cancellation chain for a request: the caller-held token
/// (if any), wrapped in a deadline token (if any). The wrapper, when
/// needed, is materialized into *storage, which must outlive the solve.
const CancelToken* EffectiveCancel(const RequestOptions& options,
                                   std::optional<CancelToken>* storage) {
  const CancelToken* cancel = options.cancel.get();
  if (options.deadline.has_value()) {
    storage->emplace(*options.deadline, cancel);
    cancel = &**storage;
  }
  return cancel;
}

/// No refutable answer: budget exhaustion, deadline, or cancellation.
bool IsInconclusiveCode(StatusCode code) {
  return code == StatusCode::kOutOfRange ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled;
}

}  // namespace

ResilienceEngine::ResilienceEngine(EngineOptions options)
    : options_(options),
      cache_(options.plan_cache_capacity),
      result_cache_(options.result_cache_capacity),
      pool_(options.num_threads > 0 ? options.num_threads
                                    : ThreadPool::DefaultNumThreads()) {}

Result<std::shared_ptr<const CompiledQuery>> ResilienceEngine::Compile(
    const std::string& regex, Semantics semantics) {
  return CompileInternal(regex, semantics, nullptr);
}

Result<std::shared_ptr<const CompiledQuery>> ResilienceEngine::CompileInternal(
    const std::string& regex, Semantics semantics, bool* was_cache_hit) {
  if (std::shared_ptr<const CompiledQuery> cached =
          cache_.Lookup(regex, semantics)) {
    if (was_cache_hit) *was_cache_hit = true;
    return cached;
  }
  if (was_cache_hit) *was_cache_hit = false;
  CompileOptions compile_options;
  compile_options.allow_exponential = options_.allow_exponential;
  compile_options.max_word_length = options_.max_word_length;
  RPQRES_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledQuery> compiled,
                          CompileQuery(regex, semantics, compile_options));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.compilations;
    stats_.total_compile_micros += compiled->compile_micros;
  }
  cache_.Insert(compiled);
  return compiled;
}

// ---------------------------------------------------------------------------
// v2 entry points
// ---------------------------------------------------------------------------

ResilienceResponse ResilienceEngine::Evaluate(
    const ResilienceRequest& request) {
  if (request.query != nullptr) {
    // Caller-managed plan: no cache interaction, no compile attribution.
    return Execute(*request.query, request, /*cache_hit=*/true,
                   /*compile_micros=*/0);
  }
  bool was_resident = false;
  Result<std::shared_ptr<const CompiledQuery>> compiled =
      CompileInternal(request.regex, request.semantics, &was_resident);
  if (!compiled.ok()) {
    ResilienceResponse response;
    response.status = compiled.status();
    RecordInstance(response);
    return response;
  }
  return Execute(**compiled, request, was_resident,
                 was_resident ? 0 : (*compiled)->compile_micros);
}

std::map<std::pair<std::string, Semantics>, ResilienceEngine::PlanSlot>
ResilienceEngine::CompileDistinct(std::span<const ResilienceRequest> requests,
                                  std::vector<bool>* first_compile) {
  std::map<std::pair<std::string, Semantics>, PlanSlot> plans;
  first_compile->assign(requests.size(), false);
  for (size_t i = 0; i < requests.size(); ++i) {
    const ResilienceRequest& request = requests[i];
    if (request.query != nullptr) continue;  // caller-managed plan
    auto key = std::make_pair(request.regex, request.semantics);
    if (plans.contains(key)) continue;
    PlanSlot slot;
    slot.compiled = CompileInternal(request.regex, request.semantics,
                                    &slot.was_resident);
    (*first_compile)[i] = !slot.was_resident;
    plans.emplace(std::move(key), std::move(slot));
  }
  return plans;
}

std::vector<ResilienceResponse> ResilienceEngine::EvaluateBatch(
    std::span<const ResilienceRequest> requests) {
  // Phase 1 (serial): compile each distinct (regex, semantics) once.
  std::vector<bool> first_compile;
  std::map<std::pair<std::string, Semantics>, PlanSlot> plans =
      CompileDistinct(requests, &first_compile);

  // Phase 2 (parallel): every request already has a plan; solve.
  std::vector<ResilienceResponse> responses(requests.size());
  pool_.ParallelFor(
      static_cast<int64_t>(requests.size()), [&](int64_t i) {
        const ResilienceRequest& request = requests[i];
        const CompiledQuery* query = request.query.get();
        if (query == nullptr) {
          const PlanSlot& slot =
              plans.at({request.regex, request.semantics});
          if (!slot.compiled.ok()) {
            responses[i].status = slot.compiled.status();
            RecordInstance(responses[i]);
            return;
          }
          query = slot.compiled->get();
        }
        responses[i] =
            Execute(*query, request, /*cache_hit=*/!first_compile[i],
                    first_compile[i] ? query->compile_micros : 0);
      });

  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.batches_run;
  return responses;
}

namespace {

/// Shared verdict logic; source/target < 0 judges the Boolean query.
void JudgeDifferentialImpl(const Language& lang, const GraphDb& db,
                           NodeId source, NodeId target, Semantics semantics,
                           ResilienceResponse* response) {
  auto verify = [&](const ResilienceResult& result) {
    return source < 0
               ? VerifyResilienceResult(lang, db, semantics, result)
               : VerifyResilienceResultBetween(lang, db, source, target,
                                               semantics, result);
  };
  if (!response->differential.has_value()) response->differential.emplace();
  ResilienceResponse::Differential& d = *response->differential;
  d.agree = false;
  d.inconclusive = false;
  d.mismatch.clear();
  const Status& ps = response->status;
  const Status& rs = d.reference_status;
  // Budget/deadline exhaustion on either side means no answer to compare.
  if (IsInconclusiveCode(ps.code()) || IsInconclusiveCode(rs.code())) {
    d.inconclusive = true;
    return;
  }
  if (!ps.ok() && !rs.ok()) {
    // Both paths refused (e.g. exponential fallback disabled): agreement,
    // unless they refused for different reasons.
    if (ps.code() == rs.code()) {
      d.agree = true;
    } else {
      d.mismatch = "error divergence: primary " + ps.ToString() +
                   " vs reference " + rs.ToString();
    }
    return;
  }
  if (!ps.ok() || !rs.ok()) {
    d.mismatch = "status divergence: primary " + ps.ToString() +
                 " vs reference " + rs.ToString();
    return;
  }
  const ResilienceResult& p = response->result;
  const ResilienceResult& r = d.reference_result;
  if (p.infinite != r.infinite) {
    d.mismatch =
        "infinite divergence: primary=" + std::to_string(p.infinite) + " (" +
        p.algorithm + ") vs reference=" + std::to_string(r.infinite) + " (" +
        r.algorithm + ")";
    return;
  }
  if (!p.infinite && p.value != r.value) {
    d.mismatch = "value divergence: primary=" + std::to_string(p.value) +
                 " (" + p.algorithm +
                 ") vs reference=" + std::to_string(r.value) + " (" +
                 r.algorithm + ")";
    return;
  }
  Status primary_witness = verify(p);
  if (!primary_witness.ok()) {
    d.mismatch = "primary witness invalid (" + p.algorithm + "): " +
                 primary_witness.message();
    return;
  }
  Status reference_witness = verify(r);
  if (!reference_witness.ok()) {
    d.mismatch = "reference witness invalid (" + r.algorithm + "): " +
                 reference_witness.message();
    return;
  }
  d.agree = true;
}

}  // namespace

void JudgeDifferential(const Language& lang, const GraphDb& db,
                       Semantics semantics, ResilienceResponse* response) {
  JudgeDifferentialImpl(lang, db, /*source=*/-1, /*target=*/-1, semantics,
                        response);
}

void JudgeDifferentialBetween(const Language& lang, const GraphDb& db,
                              NodeId source, NodeId target,
                              Semantics semantics,
                              ResilienceResponse* response) {
  JudgeDifferentialImpl(lang, db, source, target, semantics, response);
}

void ResilienceEngine::RunReference(const CompiledQuery& query,
                                    const ResilienceRequest& request,
                                    ResilienceResponse* response) {
  response->differential.emplace();
  ResilienceResponse::Differential& d = *response->differential;
  if (request.source.has_value() || request.target.has_value()) {
    // Fixed endpoints: the walk-based exact reference answers the Boolean
    // query only, so the second opinion is the endpoint-pinned all-subsets
    // brute force — real on small databases, inconclusive beyond the
    // budget (2^facts subsets).
    if (!request.db.valid() || !request.source.has_value() ||
        !request.target.has_value()) {
      // Argument errors agree by construction: the reference would refuse
      // these requests identically.
      d.reference_status = response->status;
      d.agree = !response->status.ok();
      d.inconclusive = response->status.ok();
      return;
    }
    if (!response->status.ok()) {
      // No primary answer to compare — deadline/budget exhaustion, or a
      // capability refusal (e.g. non-local language) the brute force does
      // not share. Neither agreement nor mismatch.
      d.reference_status = response->status;
      d.inconclusive = true;
      return;
    }
    const GraphDb& db = request.db.db();
    const int max_facts =
        std::min(options_.fixed_endpoint_reference_max_facts, 22);
    auto start = std::chrono::steady_clock::now();
    Result<ResilienceResult> reference = SolveBruteForceResilienceBetween(
        query.language, db, *request.source, *request.target, query.semantics,
        max_facts);
    d.reference_stats.solve_micros = MicrosSince(start);
    if (!reference.ok()) {
      d.reference_status = reference.status();
      // OutOfRange == database too large for the subset enumeration: no
      // refutable answer, not a divergence.
      d.inconclusive = true;
      return;
    }
    d.reference_result = *std::move(reference);
    d.reference_stats.algorithm = d.reference_result.algorithm;
    d.reference_stats.search_nodes = d.reference_result.search_nodes;
    JudgeDifferentialBetween(query.language, db, *request.source,
                             *request.target, query.semantics, response);
    return;
  }
  if (!request.db.valid()) {
    // No database to solve or judge against: both sides refused with the
    // same InvalidArgument, which per the JudgeDifferential contract is
    // agreement (a caller-side argument error, not a solver divergence).
    d.reference_status = response->status;
    d.agree = true;
    return;
  }
  const GraphDb& db = request.db.db();

  // Reference: the exponential exact solver on the original language,
  // bypassing plan dispatch entirely, under the same per-request budget
  // and deadline as the primary side.
  ExactOptions reference_options;
  reference_options.max_search_nodes =
      request.options.max_exact_search_nodes.value_or(
          options_.max_exact_search_nodes);
  std::optional<CancelToken> deadline_token;
  reference_options.cancel = EffectiveCancel(request.options, &deadline_token);

  auto start = std::chrono::steady_clock::now();
  Result<ResilienceResult> reference =
      reference_options.cancel != nullptr &&
              reference_options.cancel->ShouldStop()
          ? Result<ResilienceResult>(reference_options.cancel->ToStatus())
          : SolveExactResilience(query.language, db, query.semantics,
                                 reference_options);
  d.reference_stats.solve_micros = MicrosSince(start);
  if (!reference.ok()) {
    d.reference_status = reference.status();
  } else {
    d.reference_result = *std::move(reference);
    d.reference_stats.algorithm = d.reference_result.algorithm;
    d.reference_stats.search_nodes = d.reference_result.search_nodes;
  }
  JudgeDifferential(query.language, db, query.semantics, response);
}

std::vector<ResilienceResponse> ResilienceEngine::EvaluateDifferential(
    std::span<const ResilienceRequest> requests) {
  std::vector<bool> first_compile;
  std::map<std::pair<std::string, Semantics>, PlanSlot> plans =
      CompileDistinct(requests, &first_compile);

  std::vector<ResilienceResponse> responses(requests.size());
  pool_.ParallelFor(
      static_cast<int64_t>(requests.size()), [&](int64_t i) {
        // Pin name-based databases once so primary and reference judge the
        // SAME snapshot — "@latest" advancing mid-differential must not
        // read as a solver divergence.
        ResilienceRequest request = requests[i];
        if (!request.db.valid() && !request.db_ref.empty() &&
            request.registry != nullptr) {
          Result<DbHandle> resolved = request.registry->Resolve(request.db_ref);
          if (resolved.ok()) request.db = *std::move(resolved);
          // Resolution errors fall through: Execute re-resolves and
          // surfaces the same status.
        }
        ResilienceResponse& response = responses[i];
        const CompiledQuery* query = request.query.get();
        if (query == nullptr) {
          const PlanSlot& slot =
              plans.at({request.regex, request.semantics});
          if (!slot.compiled.ok()) {
            response.status = slot.compiled.status();
            response.differential.emplace();
            response.differential->reference_status = slot.compiled.status();
            response.differential->mismatch =
                "compile failed: " + slot.compiled.status().ToString();
            RecordInstance(response);
            return;
          }
          query = slot.compiled->get();
        }
        response = Execute(*query, request, /*cache_hit=*/!first_compile[i],
                           first_compile[i] ? query->compile_micros : 0);
        RunReference(*query, request, &response);
      });

  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.batches_run;
  for (const ResilienceResponse& response : responses) {
    ++stats_.differentials_run;
    if (response.differential.has_value() && !response.differential->agree &&
        !response.differential->inconclusive) {
      ++stats_.differential_mismatches;
    }
  }
  return responses;
}

std::future<ResilienceResponse> ResilienceEngine::Submit(
    ResilienceRequest request) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submits;
  }
  auto promise = std::make_shared<std::promise<ResilienceResponse>>();
  std::future<ResilienceResponse> future = promise->get_future();
  pool_.Submit([this, request = std::move(request), promise]() {
    promise->set_value(Evaluate(request));
  });
  return future;
}

std::vector<std::future<ResilienceResponse>> ResilienceEngine::SubmitBatch(
    std::vector<ResilienceRequest> requests) {
  std::vector<std::future<ResilienceResponse>> futures;
  futures.reserve(requests.size());
  for (ResilienceRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  return futures;
}

// ---------------------------------------------------------------------------
// Execution core
// ---------------------------------------------------------------------------

ResilienceResponse ResilienceEngine::Execute(const CompiledQuery& query,
                                             const ResilienceRequest& request,
                                             bool cache_hit,
                                             double compile_micros) {
  const RequestOptions& request_options = request.options;
  ResilienceResponse response;
  response.stats.complexity =
      ComplexityClassName(query.classification.complexity);
  response.stats.rule = query.classification.rule;
  response.stats.cache_hit = cache_hit;
  response.stats.compile_micros = compile_micros;

  // Name-based resolution happens at execution time, so a queued request
  // against "lineage@latest" sees the version that is latest *now*.
  DbHandle db = request.db;
  if (!db.valid() && !request.db_ref.empty() && request.registry != nullptr) {
    Result<DbHandle> resolved = request.registry->Resolve(request.db_ref);
    if (!resolved.ok()) {
      response.status = resolved.status();
      RecordInstance(response);
      return response;
    }
    db = *std::move(resolved);
  }
  if (!db.valid()) {
    response.status = Status::InvalidArgument(
        "request carries no database (default DbHandle)");
    RecordInstance(response);
    return response;
  }

  // Fixed-endpoint validation (the solve itself branches below).
  const bool fixed_endpoints =
      request.source.has_value() || request.target.has_value();
  if (fixed_endpoints) {
    if (!request.source.has_value() || !request.target.has_value()) {
      response.status = Status::InvalidArgument(
          "fixed-endpoint requests must set source and target together");
      RecordInstance(response);
      return response;
    }
    if (*request.source < 0 || *request.source >= db.db().num_nodes() ||
        *request.target < 0 || *request.target >= db.db().num_nodes()) {
      response.status = Status::InvalidArgument(
          "fixed endpoints must be nodes of the database");
      RecordInstance(response);
      return response;
    }
    if (request_options.method.has_value() &&
        *request_options.method != ResilienceMethod::kAuto) {
      response.status = Status::InvalidArgument(
          "fixed endpoints cannot be combined with a forced solver");
      RecordInstance(response);
      return response;
    }
  }

  // Per-request deadline / cancellation scope; lives through the solve.
  std::optional<CancelToken> deadline_token;
  const CancelToken* cancel = EffectiveCancel(request_options, &deadline_token);
  if (cancel != nullptr && cancel->ShouldStop()) {
    response.status = cancel->ToStatus();
    RecordInstance(response);
    return response;
  }

  // Version-keyed answer cache: sound because a (lineage, version) pair
  // is immutable. Forced-method requests bypass it (they are routing
  // experiments), as do databases registered outside a lineage (lineage 0
  // never occurs — registry ids start at 1 — so validity == lineage != 0).
  const bool cacheable =
      result_cache_.enabled() && db.lineage() != 0 &&
      (!request_options.method.has_value() ||
       *request_options.method == ResilienceMethod::kAuto);
  ResultCacheKey cache_key;
  if (cacheable) {
    cache_key = ResultCacheKey{query.regex,
                               query.semantics,
                               db.lineage(),
                               db.version(),
                               request.source.value_or(-1),
                               request.target.value_or(-1)};
    auto lookup_start = std::chrono::steady_clock::now();
    if (std::optional<CachedResult> hit = result_cache_.Lookup(cache_key)) {
      response.result = hit->result;
      // Report what computed the cached answer, stamped as a cache hit.
      response.stats.algorithm = hit->stats.algorithm;
      response.stats.network_vertices = hit->stats.network_vertices;
      response.stats.network_edges = hit->stats.network_edges;
      response.stats.product_vertices_pruned =
          hit->stats.product_vertices_pruned;
      response.stats.product_edges_pruned = hit->stats.product_edges_pruned;
      response.stats.search_nodes = hit->stats.search_nodes;
      response.stats.result_cache_hit = true;
      response.stats.solve_micros = MicrosSince(lookup_start);
      RecordInstance(response);
      return response;
    }
  }

  ExactOptions exact_options;
  exact_options.max_search_nodes =
      request_options.max_exact_search_nodes.value_or(
          options_.max_exact_search_nodes);
  exact_options.cancel = cancel;
  const bool allow_exponential =
      request_options.allow_exponential.value_or(options_.allow_exponential);

  // The calling worker's reusable flow arena: in steady state the whole
  // flow path (product sweep, CSR build, Dinic) allocates nothing.
  SolverScratch& scratch = SolverScratch::ThreadLocal();

  auto start = std::chrono::steady_clock::now();
  Result<ResilienceResult> result = [&]() -> Result<ResilienceResult> {
    if (fixed_endpoints) {
      // Thm 3.13 ext: needs tables for L's own RO-εNFA (IF-rewriting is
      // unsound with fixed endpoints, so IF(L)-locality is not enough).
      if (!query.ro_tables_exact.has_value()) {
        return Status::FailedPrecondition(
            "fixed-endpoint resilience requires the query language itself "
            "to be local: " +
            query.language.description() +
            " has no read-once automaton (IF-rewriting is unsound with "
            "fixed endpoints)");
      }
      return SolveLocalResilienceFixedEndpointsWithTables(
          *query.ro_tables_exact, db.db(), *request.source, *request.target,
          query.semantics, db.label_index(), &scratch);
    }
    if (request_options.method.has_value() &&
        *request_options.method != ResilienceMethod::kAuto) {
      // Forced solver: bypass the compiled plan (the VCSP-style routing
      // override); classification stats still describe the kAuto verdict.
      ResilienceOptions forced;
      forced.method = *request_options.method;
      forced.allow_exponential = allow_exponential;
      forced.exact = exact_options;
      return ComputeResilience(query.language, db.db(), query.semantics,
                               forced);
    }
    if (!allow_exponential &&
        query.plan.method == ResilienceMethod::kExact &&
        !query.plan.trivial_infinite && !query.plan.trivial_empty) {
      // The plan was compiled under the engine-wide allow_exponential;
      // this request opted out, so refuse exactly like compilation would.
      return Status::Unimplemented(
          "no polynomial-time algorithm known for " +
          query.plan.if_language.description() +
          " and exponential fallback disabled for this request");
    }
    return ComputeResilienceWithPlan(query.plan, db.db(), query.semantics,
                                     exact_options, db.label_index(),
                                     &scratch);
  }();
  response.stats.solve_micros = MicrosSince(start);
  if (!result.ok()) {
    response.status = result.status();
  } else {
    response.result = *std::move(result);
    response.stats.algorithm = response.result.algorithm;
    response.stats.network_vertices = response.result.network_vertices;
    response.stats.network_edges = response.result.network_edges;
    response.stats.product_vertices_pruned =
        response.result.product_vertices_pruned;
    response.stats.product_edges_pruned = response.result.product_edges_pruned;
    response.stats.search_nodes = response.result.search_nodes;
    if (cacheable) {
      result_cache_.Insert(std::move(cache_key),
                           CachedResult{response.result, response.stats});
    }
  }
  RecordInstance(response);
  return response;
}

void ResilienceEngine::RecordInstance(const ResilienceResponse& response) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.instances_run;
  if (!response.status.ok()) ++stats_.errors;
  if (response.status.code() == StatusCode::kDeadlineExceeded) {
    ++stats_.deadline_exceeded;
  }
  if (response.status.code() == StatusCode::kCancelled) ++stats_.cancelled;
  stats_.total_solve_micros += response.stats.solve_micros;
  stats_.flow_vertices_pruned += response.stats.product_vertices_pruned;
  stats_.flow_edges_pruned += response.stats.product_edges_pruned;
  if (!response.stats.algorithm.empty()) {
    ++stats_.instances_by_algorithm[response.stats.algorithm];
  }
}

EngineStats ResilienceEngine::stats() const {
  PlanCache::Stats cache_stats = cache_.stats();
  ResultCache::Stats result_stats = result_cache_.stats();
  std::lock_guard<std::mutex> lock(stats_mu_);
  EngineStats snapshot = stats_;
  snapshot.cache_hits = cache_stats.hits;
  snapshot.cache_misses = cache_stats.misses;
  snapshot.cache_evictions = cache_stats.evictions;
  snapshot.result_cache_hits = result_stats.hits;
  snapshot.result_cache_misses = result_stats.misses;
  snapshot.result_cache_evictions = result_stats.evictions;
  snapshot.result_cache_invalidations = result_stats.invalidations;
  return snapshot;
}

void ResilienceEngine::ResetStats() {
  cache_.ResetStats();
  result_cache_.ResetStats();
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_ = EngineStats{};
}

PlanCacheView ResilienceEngine::plan_cache_view() const {
  return PlanCacheView{cache_.size(), cache_.capacity(), cache_.stats()};
}

ResultCacheView ResilienceEngine::result_cache_view() const {
  return ResultCacheView{result_cache_.size(), result_cache_.capacity(),
                         result_cache_.stats()};
}

int64_t ResilienceEngine::InvalidateResults(uint64_t lineage,
                                            std::optional<uint32_t> version) {
  return version.has_value() ? result_cache_.EraseVersion(lineage, *version)
                             : result_cache_.EraseLineage(lineage);
}

}  // namespace rpqres
