#include "engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <optional>
#include <string_view>
#include <utility>

#include "flow/solver_scratch.h"
#include "obs/export.h"
#include "resilience/local_resilience.h"

namespace rpqres {

namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// The effective cancellation chain for a request: the caller-held token
/// (if any), wrapped in a deadline token (if any). The wrapper, when
/// needed, is materialized into *storage, which must outlive the solve.
const CancelToken* EffectiveCancel(const RequestOptions& options,
                                   std::optional<CancelToken>* storage) {
  const CancelToken* cancel = options.cancel.get();
  if (options.deadline.has_value()) {
    storage->emplace(*options.deadline, cancel);
    cancel = &**storage;
  }
  return cancel;
}

/// No refutable answer: budget exhaustion, deadline, or cancellation.
bool IsInconclusiveCode(StatusCode code) {
  return code == StatusCode::kOutOfRange ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled;
}

/// The DISJOINT status label the exporter reports (unlike
/// EngineStats::errors, which rolls deadline/cancel in).
std::string_view StatusLabel(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    default:
      return "error";
  }
}

}  // namespace

ResilienceEngine::ResilienceEngine(EngineOptions options)
    : options_(options),
      cache_(options.plan_cache_capacity),
      result_cache_(options.result_cache_capacity,
                    options.result_cache_max_bytes),
      requests_total_(metrics_.Counter(
          "rpqres_requests_total",
          "Requests by disjoint final status; the four labels sum to "
          "instances_run.",
          "status")),
      requests_by_algorithm_(metrics_.Counter(
          "rpqres_requests_by_algorithm_total",
          "Answered requests by the solver algorithm that produced the "
          "answer.",
          "algorithm")),
      request_latency_(metrics_.Histogram(
          "rpqres_request_latency_micros",
          "End-to-end request wall time in microseconds, by disjoint final "
          "status.",
          "status")),
      solve_latency_(metrics_.Histogram(
          "rpqres_solve_latency_micros",
          "Solver wall time in microseconds, by algorithm (answered "
          "requests only).",
          "algorithm")),
      phase_micros_(metrics_.Histogram(
          "rpqres_phase_micros",
          "Per-phase wall time in microseconds, from request trace spans.",
          "phase")),
      slow_log_(options.slow_query_log_capacity),
      pool_(options.num_threads > 0 ? options.num_threads
                                    : ThreadPool::DefaultNumThreads()) {}

Result<std::shared_ptr<const CompiledQuery>> ResilienceEngine::Compile(
    const std::string& regex, Semantics semantics) {
  return CompileInternal(regex, semantics, nullptr);
}

Result<std::shared_ptr<const CompiledQuery>> ResilienceEngine::CompileInternal(
    const std::string& regex, Semantics semantics, bool* was_cache_hit) {
  if (std::shared_ptr<const CompiledQuery> cached =
          cache_.Lookup(regex, semantics)) {
    if (was_cache_hit) *was_cache_hit = true;
    MutexLock lock(stats_mu_);
    ++stats_.cache_hits;
    return cached;
  }
  if (was_cache_hit) *was_cache_hit = false;
  {
    // Counted at the probe (before the compile can fail), matching the
    // plan cache's own hit/miss semantics.
    MutexLock lock(stats_mu_);
    ++stats_.cache_misses;
  }
  CompileOptions compile_options;
  compile_options.allow_exponential = options_.allow_exponential;
  compile_options.max_word_length = options_.max_word_length;
  RPQRES_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledQuery> compiled,
                          CompileQuery(regex, semantics, compile_options));
  const size_t evicted = cache_.Insert(compiled);
  {
    MutexLock lock(stats_mu_);
    ++stats_.compilations;
    stats_.total_compile_micros += compiled->compile_micros;
    stats_.cache_evictions += static_cast<int64_t>(evicted);
  }
  return compiled;
}

// ---------------------------------------------------------------------------
// v2 entry points
// ---------------------------------------------------------------------------

ResilienceResponse ResilienceEngine::Evaluate(
    const ResilienceRequest& request) {
  if (request.query != nullptr) {
    // Caller-managed plan: no cache interaction, no compile attribution.
    return Execute(*request.query, request, /*cache_hit=*/true,
                   /*compile_micros=*/0);
  }
  bool was_resident = false;
  auto lookup_start = std::chrono::steady_clock::now();
  Result<std::shared_ptr<const CompiledQuery>> compiled =
      CompileInternal(request.regex, request.semantics, &was_resident);
  const double lookup_micros = MicrosSince(lookup_start);
  if (!compiled.ok()) {
    ResilienceResponse response;
    response.status = compiled.status();
    RecordContext context;
    context.request = &request;
    context.total_micros = lookup_micros;
    RecordInstance(response, context);
    return response;
  }
  // On a residency hit the measured time is the pure cache probe; on a
  // miss it is dominated by the compile, which Execute records from the
  // plan's own compile_micros instead.
  return Execute(**compiled, request, was_resident,
                 was_resident ? 0 : (*compiled)->compile_micros,
                 was_resident ? lookup_micros : 0);
}

std::map<std::pair<std::string, Semantics>, ResilienceEngine::PlanSlot>
ResilienceEngine::CompileDistinct(std::span<const ResilienceRequest> requests,
                                  std::vector<bool>* first_compile) {
  std::map<std::pair<std::string, Semantics>, PlanSlot> plans;
  first_compile->assign(requests.size(), false);
  for (size_t i = 0; i < requests.size(); ++i) {
    const ResilienceRequest& request = requests[i];
    if (request.query != nullptr) continue;  // caller-managed plan
    auto key = std::make_pair(request.regex, request.semantics);
    if (plans.contains(key)) continue;
    PlanSlot slot;
    slot.compiled = CompileInternal(request.regex, request.semantics,
                                    &slot.was_resident);
    (*first_compile)[i] = !slot.was_resident;
    plans.emplace(std::move(key), std::move(slot));
  }
  return plans;
}

std::vector<ResilienceResponse> ResilienceEngine::EvaluateBatch(
    std::span<const ResilienceRequest> requests) {
  // Phase 1 (serial): compile each distinct (regex, semantics) once.
  std::vector<bool> first_compile;
  std::map<std::pair<std::string, Semantics>, PlanSlot> plans =
      CompileDistinct(requests, &first_compile);

  // Phase 2 (parallel): every request already has a plan; solve.
  std::vector<ResilienceResponse> responses(requests.size());
  pool_.ParallelFor(
      static_cast<int64_t>(requests.size()), [&](int64_t i) {
        const ResilienceRequest& request = requests[i];
        const CompiledQuery* query = request.query.get();
        if (query == nullptr) {
          const PlanSlot& slot =
              plans.at({request.regex, request.semantics});
          if (!slot.compiled.ok()) {
            responses[i].status = slot.compiled.status();
            RecordContext context;
            context.request = &request;
            RecordInstance(responses[i], context);
            return;
          }
          query = slot.compiled->get();
        }
        responses[i] =
            Execute(*query, request, /*cache_hit=*/!first_compile[i],
                    first_compile[i] ? query->compile_micros : 0);
      });

  MutexLock lock(stats_mu_);
  ++stats_.batches_run;
  return responses;
}

namespace {

/// Shared verdict logic; source/target < 0 judges the Boolean query.
void JudgeDifferentialImpl(const Language& lang, const GraphDb& db,
                           NodeId source, NodeId target, Semantics semantics,
                           ResilienceResponse* response) {
  auto verify = [&](const ResilienceResult& result) {
    return source < 0
               ? VerifyResilienceResult(lang, db, semantics, result)
               : VerifyResilienceResultBetween(lang, db, source, target,
                                               semantics, result);
  };
  if (!response->differential.has_value()) response->differential.emplace();
  ResilienceResponse::Differential& d = *response->differential;
  d.agree = false;
  d.inconclusive = false;
  d.mismatch.clear();
  const Status& ps = response->status;
  const Status& rs = d.reference_status;
  // Budget/deadline exhaustion on either side means no answer to compare.
  if (IsInconclusiveCode(ps.code()) || IsInconclusiveCode(rs.code())) {
    d.inconclusive = true;
    return;
  }
  if (!ps.ok() && !rs.ok()) {
    // Both paths refused (e.g. exponential fallback disabled): agreement,
    // unless they refused for different reasons.
    if (ps.code() == rs.code()) {
      d.agree = true;
    } else {
      d.mismatch = "error divergence: primary " + ps.ToString() +
                   " vs reference " + rs.ToString();
    }
    return;
  }
  if (!ps.ok() || !rs.ok()) {
    d.mismatch = "status divergence: primary " + ps.ToString() +
                 " vs reference " + rs.ToString();
    return;
  }
  const ResilienceResult& p = response->result;
  const ResilienceResult& r = d.reference_result;
  if (p.infinite != r.infinite) {
    d.mismatch =
        "infinite divergence: primary=" + std::to_string(p.infinite) + " (" +
        p.algorithm + ") vs reference=" + std::to_string(r.infinite) + " (" +
        r.algorithm + ")";
    return;
  }
  if (!p.infinite && p.value != r.value) {
    d.mismatch = "value divergence: primary=" + std::to_string(p.value) +
                 " (" + p.algorithm +
                 ") vs reference=" + std::to_string(r.value) + " (" +
                 r.algorithm + ")";
    return;
  }
  Status primary_witness = verify(p);
  if (!primary_witness.ok()) {
    d.mismatch = "primary witness invalid (" + p.algorithm + "): " +
                 primary_witness.message();
    return;
  }
  Status reference_witness = verify(r);
  if (!reference_witness.ok()) {
    d.mismatch = "reference witness invalid (" + r.algorithm + "): " +
                 reference_witness.message();
    return;
  }
  d.agree = true;
}

}  // namespace

void JudgeDifferential(const Language& lang, const GraphDb& db,
                       Semantics semantics, ResilienceResponse* response) {
  JudgeDifferentialImpl(lang, db, /*source=*/-1, /*target=*/-1, semantics,
                        response);
}

void JudgeDifferentialBetween(const Language& lang, const GraphDb& db,
                              NodeId source, NodeId target,
                              Semantics semantics,
                              ResilienceResponse* response) {
  JudgeDifferentialImpl(lang, db, source, target, semantics, response);
}

void ResilienceEngine::RunReference(const CompiledQuery& query,
                                    const ResilienceRequest& request,
                                    ResilienceResponse* response) {
  response->differential.emplace();
  ResilienceResponse::Differential& d = *response->differential;
  const std::string_view reference_phase =
      obs::SpanKindName(obs::SpanKind::kReferenceSolve);
  const std::string_view judge_phase =
      obs::SpanKindName(obs::SpanKind::kDifferentialJudge);
  if (request.source.has_value() || request.target.has_value()) {
    // Fixed endpoints: the walk-based exact reference answers the Boolean
    // query only, so the second opinion is the endpoint-pinned all-subsets
    // brute force — real on small databases, inconclusive beyond the
    // budget (2^facts subsets).
    if (!request.db.valid() || !request.source.has_value() ||
        !request.target.has_value()) {
      // Argument errors agree by construction: the reference would refuse
      // these requests identically.
      d.reference_status = response->status;
      d.agree = !response->status.ok();
      d.inconclusive = response->status.ok();
      return;
    }
    if (!response->status.ok()) {
      // No primary answer to compare — deadline/budget exhaustion, or a
      // capability refusal (e.g. non-local language) the brute force does
      // not share. Neither agreement nor mismatch.
      d.reference_status = response->status;
      d.inconclusive = true;
      return;
    }
    const GraphDb& db = request.db.db();
    const int max_facts =
        std::min(options_.fixed_endpoint_reference_max_facts, 22);
    auto start = std::chrono::steady_clock::now();
    Result<ResilienceResult> reference = SolveBruteForceResilienceBetween(
        query.language, db, *request.source, *request.target, query.semantics,
        max_facts);
    d.reference_stats.solve_micros = MicrosSince(start);
    phase_micros_->WithLabel(reference_phase)
        .Record(d.reference_stats.solve_micros);
    if (!reference.ok()) {
      d.reference_status = reference.status();
      // OutOfRange == database too large for the subset enumeration: no
      // refutable answer, not a divergence.
      d.inconclusive = true;
      return;
    }
    d.reference_result = *std::move(reference);
    d.reference_stats.algorithm = d.reference_result.algorithm;
    d.reference_stats.search_nodes = d.reference_result.search_nodes;
    auto judge_start = std::chrono::steady_clock::now();
    JudgeDifferentialBetween(query.language, db, *request.source,
                             *request.target, query.semantics, response);
    phase_micros_->WithLabel(judge_phase).Record(MicrosSince(judge_start));
    return;
  }
  if (!request.db.valid()) {
    // No database to solve or judge against: both sides refused with the
    // same InvalidArgument, which per the JudgeDifferential contract is
    // agreement (a caller-side argument error, not a solver divergence).
    d.reference_status = response->status;
    d.agree = true;
    return;
  }
  const GraphDb& db = request.db.db();

  // Reference: the exponential exact solver on the original language,
  // bypassing plan dispatch entirely, under the same per-request budget
  // and deadline as the primary side.
  ExactOptions reference_options;
  reference_options.max_search_nodes =
      request.options.max_exact_search_nodes.value_or(
          options_.max_exact_search_nodes);
  std::optional<CancelToken> deadline_token;
  reference_options.cancel = EffectiveCancel(request.options, &deadline_token);

  auto start = std::chrono::steady_clock::now();
  Result<ResilienceResult> reference =
      reference_options.cancel != nullptr &&
              reference_options.cancel->ShouldStop()
          ? Result<ResilienceResult>(reference_options.cancel->ToStatus())
          : SolveExactResilience(query.language, db, query.semantics,
                                 reference_options);
  d.reference_stats.solve_micros = MicrosSince(start);
  phase_micros_->WithLabel(reference_phase)
      .Record(d.reference_stats.solve_micros);
  if (!reference.ok()) {
    d.reference_status = reference.status();
  } else {
    d.reference_result = *std::move(reference);
    d.reference_stats.algorithm = d.reference_result.algorithm;
    d.reference_stats.search_nodes = d.reference_result.search_nodes;
  }
  auto judge_start = std::chrono::steady_clock::now();
  JudgeDifferential(query.language, db, query.semantics, response);
  phase_micros_->WithLabel(judge_phase).Record(MicrosSince(judge_start));
}

std::vector<ResilienceResponse> ResilienceEngine::EvaluateDifferential(
    std::span<const ResilienceRequest> requests) {
  std::vector<bool> first_compile;
  std::map<std::pair<std::string, Semantics>, PlanSlot> plans =
      CompileDistinct(requests, &first_compile);

  std::vector<ResilienceResponse> responses(requests.size());
  pool_.ParallelFor(
      static_cast<int64_t>(requests.size()), [&](int64_t i) {
        // Pin name-based databases once so primary and reference judge the
        // SAME snapshot — "@latest" advancing mid-differential must not
        // read as a solver divergence.
        ResilienceRequest request = requests[i];
        if (!request.db.valid() && !request.db_ref.empty() &&
            request.registry != nullptr) {
          Result<DbHandle> resolved = request.registry->Resolve(request.db_ref);
          if (resolved.ok()) request.db = *std::move(resolved);
          // Resolution errors fall through: Execute re-resolves and
          // surfaces the same status.
        }
        ResilienceResponse& response = responses[i];
        const CompiledQuery* query = request.query.get();
        if (query == nullptr) {
          const PlanSlot& slot =
              plans.at({request.regex, request.semantics});
          if (!slot.compiled.ok()) {
            response.status = slot.compiled.status();
            response.differential.emplace();
            response.differential->reference_status = slot.compiled.status();
            response.differential->mismatch =
                "compile failed: " + slot.compiled.status().ToString();
            RecordContext context;
            context.request = &request;
            RecordInstance(response, context);
            return;
          }
          query = slot.compiled->get();
        }
        response = Execute(*query, request, /*cache_hit=*/!first_compile[i],
                           first_compile[i] ? query->compile_micros : 0);
        RunReference(*query, request, &response);
      });

  MutexLock lock(stats_mu_);
  ++stats_.batches_run;
  for (const ResilienceResponse& response : responses) {
    ++stats_.differentials_run;
    if (response.differential.has_value() && !response.differential->agree &&
        !response.differential->inconclusive) {
      ++stats_.differential_mismatches;
    }
  }
  return responses;
}

std::future<ResilienceResponse> ResilienceEngine::Submit(
    ResilienceRequest request) {
  return Submit(std::move(request), ResponseCallback());
}

std::future<ResilienceResponse> ResilienceEngine::Submit(
    ResilienceRequest request, ResponseCallback on_complete) {
  {
    MutexLock lock(stats_mu_);
    ++stats_.submits;
  }
  auto promise = std::make_shared<std::promise<ResilienceResponse>>();
  std::future<ResilienceResponse> future = promise->get_future();
  pool_.Submit([this, request = std::move(request), promise,
                on_complete = std::move(on_complete)]() {
    ResilienceResponse response = Evaluate(request);
    // Hook first, then resolve: a waiter unblocked by the future must
    // observe the callback's side effects (admission slot released).
    if (on_complete) on_complete(response);
    promise->set_value(std::move(response));
  });
  return future;
}

std::vector<std::future<ResilienceResponse>> ResilienceEngine::SubmitBatch(
    std::vector<ResilienceRequest> requests) {
  std::vector<std::future<ResilienceResponse>> futures;
  futures.reserve(requests.size());
  for (ResilienceRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  return futures;
}

// ---------------------------------------------------------------------------
// Execution core
// ---------------------------------------------------------------------------

ResilienceResponse ResilienceEngine::Execute(const CompiledQuery& query,
                                             const ResilienceRequest& request,
                                             bool cache_hit,
                                             double compile_micros,
                                             double plan_lookup_micros) {
  auto start = std::chrono::steady_clock::now();
  // The span sink: the caller's context when provided, a stack-local one
  // when engine-wide tracing is on, nullptr otherwise. Stack allocation
  // keeps the hot path heap-free (see obs/trace.h).
  obs::TraceContext local_trace;
  obs::TraceContext* trace =
      request.options.trace != nullptr
          ? request.options.trace
          : (options_.enable_tracing ? &local_trace : nullptr);
  const int root = trace != nullptr ? trace->Begin(obs::SpanKind::kRequest)
                                    : -1;
  if (trace != nullptr) {
    // Plan acquisition happened before this context existed; backfill it
    // as completed spans so the tree accounts for the whole request.
    if (plan_lookup_micros > 0) {
      trace->AddComplete(obs::SpanKind::kPlanCacheLookup,
                         static_cast<int64_t>(plan_lookup_micros));
    }
    if (compile_micros > 0) {
      trace->AddComplete(obs::SpanKind::kCompile,
                         static_cast<int64_t>(compile_micros));
    }
  }

  RequestTelemetry telemetry;
  ResilienceResponse response =
      ExecuteTraced(query, request, trace, &telemetry);
  response.stats.cache_hit = cache_hit;
  response.stats.compile_micros = compile_micros;

  if (trace != nullptr) trace->End(root);
  RecordContext context;
  context.request = &request;
  context.trace = trace;
  context.telemetry = &telemetry;
  context.total_micros = MicrosSince(start);
  RecordInstance(response, context);
  return response;
}

ResilienceResponse ResilienceEngine::ExecuteTraced(
    const CompiledQuery& query, const ResilienceRequest& request,
    obs::TraceContext* trace, RequestTelemetry* telemetry) {
  const RequestOptions& request_options = request.options;
  ResilienceResponse response;
  response.stats.complexity =
      ComplexityClassName(query.classification.complexity);
  response.stats.rule = query.classification.rule;

  // Name-based resolution happens at execution time, so a queued request
  // against "lineage@latest" sees the version that is latest *now*.
  DbHandle db = request.db;
  if (!db.valid() && !request.db_ref.empty() && request.registry != nullptr) {
    obs::ScopedSpan resolve_span(trace, obs::SpanKind::kResolve);
    Result<DbHandle> resolved = request.registry->Resolve(request.db_ref);
    if (!resolved.ok()) {
      response.status = resolved.status();
      return response;
    }
    db = *std::move(resolved);
  }
  if (!db.valid()) {
    response.status = Status::InvalidArgument(
        "request carries no database (default DbHandle)");
    return response;
  }
  telemetry->lineage = db.lineage();
  telemetry->version = db.version();

  // Fixed-endpoint validation (the solve itself branches below).
  const bool fixed_endpoints =
      request.source.has_value() || request.target.has_value();
  if (fixed_endpoints) {
    if (!request.source.has_value() || !request.target.has_value()) {
      response.status = Status::InvalidArgument(
          "fixed-endpoint requests must set source and target together");
      return response;
    }
    if (*request.source < 0 || *request.source >= db.db().num_nodes() ||
        *request.target < 0 || *request.target >= db.db().num_nodes()) {
      response.status = Status::InvalidArgument(
          "fixed endpoints must be nodes of the database");
      return response;
    }
    if (request_options.method.has_value() &&
        *request_options.method != ResilienceMethod::kAuto) {
      response.status = Status::InvalidArgument(
          "fixed endpoints cannot be combined with a forced solver");
      return response;
    }
  }

  // Per-request deadline / cancellation scope; lives through the solve.
  std::optional<CancelToken> deadline_token;
  const CancelToken* cancel = EffectiveCancel(request_options, &deadline_token);
  if (cancel != nullptr && cancel->ShouldStop()) {
    response.status = cancel->ToStatus();
    return response;
  }

  // Version-keyed answer cache: sound because a (lineage, version) pair
  // is immutable. Forced-method requests bypass it (they are routing
  // experiments), as do databases registered outside a lineage (lineage 0
  // never occurs — registry ids start at 1 — so validity == lineage != 0).
  const bool cacheable =
      result_cache_.enabled() && db.lineage() != 0 &&
      (!request_options.method.has_value() ||
       *request_options.method == ResilienceMethod::kAuto);
  telemetry->result_cache_checked = cacheable;
  ResultCacheKey cache_key;
  if (cacheable) {
    cache_key = ResultCacheKey{query.regex,
                               query.semantics,
                               db.lineage(),
                               db.version(),
                               request.source.value_or(-1),
                               request.target.value_or(-1)};
    auto lookup_start = std::chrono::steady_clock::now();
    obs::ScopedSpan lookup_span(trace, obs::SpanKind::kResultCacheLookup);
    if (std::optional<CachedResult> hit = result_cache_.Lookup(cache_key)) {
      response.result = hit->result;
      // Report what computed the cached answer, stamped as a cache hit.
      response.stats.algorithm = hit->stats.algorithm;
      response.stats.network_vertices = hit->stats.network_vertices;
      response.stats.network_edges = hit->stats.network_edges;
      response.stats.product_vertices_pruned =
          hit->stats.product_vertices_pruned;
      response.stats.product_edges_pruned = hit->stats.product_edges_pruned;
      response.stats.search_nodes = hit->stats.search_nodes;
      response.stats.result_cache_hit = true;
      response.stats.solve_micros = MicrosSince(lookup_start);
      return response;
    }
  }

  // Method dispatch: resolve the per-request overrides against the
  // compiled plan (cheap — the real classification happened at compile).
  obs::ScopedSpan classify_span(trace, obs::SpanKind::kClassify);
  ExactOptions exact_options;
  exact_options.max_search_nodes =
      request_options.max_exact_search_nodes.value_or(
          options_.max_exact_search_nodes);
  exact_options.cancel = cancel;
  const bool allow_exponential =
      request_options.allow_exponential.value_or(options_.allow_exponential);

  // The calling worker's reusable flow arena: in steady state the whole
  // flow path (product sweep, CSR build, Dinic) allocates nothing.
  SolverScratch& scratch = SolverScratch::ThreadLocal();
  classify_span.End();

  // Hand the span sink to the solvers for the duration of this solve.
  // The scratch arena is thread_local and outlives the request, so the
  // pointer MUST be cleared before returning — a later request with
  // tracing off would otherwise write into a dead stack frame.
  scratch.trace = trace;
  auto start = std::chrono::steady_clock::now();
  const int solve_span =
      trace != nullptr ? trace->Begin(obs::SpanKind::kSolve) : -1;
  Result<ResilienceResult> result = [&]() -> Result<ResilienceResult> {
    if (fixed_endpoints) {
      // Thm 3.13 ext: needs tables for L's own RO-εNFA (IF-rewriting is
      // unsound with fixed endpoints, so IF(L)-locality is not enough).
      if (!query.ro_tables_exact.has_value()) {
        return Status::FailedPrecondition(
            "fixed-endpoint resilience requires the query language itself "
            "to be local: " +
            query.language.description() +
            " has no read-once automaton (IF-rewriting is unsound with "
            "fixed endpoints)");
      }
      return SolveLocalResilienceFixedEndpointsWithTables(
          *query.ro_tables_exact, db.db(), *request.source, *request.target,
          query.semantics, db.label_index(), &scratch);
    }
    if (request_options.method.has_value() &&
        *request_options.method != ResilienceMethod::kAuto) {
      // Forced solver: bypass the compiled plan (the VCSP-style routing
      // override); classification stats still describe the kAuto verdict.
      ResilienceOptions forced;
      forced.method = *request_options.method;
      forced.allow_exponential = allow_exponential;
      forced.exact = exact_options;
      return ComputeResilience(query.language, db.db(), query.semantics,
                               forced);
    }
    if (!allow_exponential &&
        query.plan.method == ResilienceMethod::kExact &&
        !query.plan.trivial_infinite && !query.plan.trivial_empty) {
      // The plan was compiled under the engine-wide allow_exponential;
      // this request opted out, so refuse exactly like compilation would.
      return Status::Unimplemented(
          "no polynomial-time algorithm known for " +
          query.plan.if_language.description() +
          " and exponential fallback disabled for this request");
    }
    return ComputeResilienceWithPlan(query.plan, db.db(), query.semantics,
                                     exact_options, db.label_index(),
                                     &scratch);
  }();
  if (trace != nullptr) trace->End(solve_span);
  scratch.trace = nullptr;
  response.stats.solve_micros = MicrosSince(start);
  if (!result.ok()) {
    response.status = result.status();
  } else {
    response.result = *std::move(result);
    response.stats.algorithm = response.result.algorithm;
    response.stats.network_vertices = response.result.network_vertices;
    response.stats.network_edges = response.result.network_edges;
    response.stats.product_vertices_pruned =
        response.result.product_vertices_pruned;
    response.stats.product_edges_pruned = response.result.product_edges_pruned;
    response.stats.search_nodes = response.result.search_nodes;
    if (cacheable) {
      telemetry->result_cache_evictions = static_cast<int64_t>(
          result_cache_.Insert(std::move(cache_key),
                               CachedResult{response.result, response.stats}));
    }
  }
  return response;
}

void ResilienceEngine::RecordInstance(const ResilienceResponse& response,
                                      const RecordContext& context) {
  const StatusCode code = response.status.code();
  {
    MutexLock lock(stats_mu_);
    ++stats_.instances_run;
    if (!response.status.ok()) ++stats_.errors;
    if (code == StatusCode::kDeadlineExceeded) ++stats_.deadline_exceeded;
    if (code == StatusCode::kCancelled) ++stats_.cancelled;
    stats_.total_solve_micros += response.stats.solve_micros;
    stats_.flow_vertices_pruned += response.stats.product_vertices_pruned;
    stats_.flow_edges_pruned += response.stats.product_edges_pruned;
    if (!response.stats.algorithm.empty()) {
      ++stats_.instances_by_algorithm[response.stats.algorithm];
    }
    if (context.telemetry != nullptr &&
        context.telemetry->result_cache_checked) {
      if (response.stats.result_cache_hit) {
        ++stats_.result_cache_hits;
      } else {
        ++stats_.result_cache_misses;
      }
      stats_.result_cache_evictions += context.telemetry->result_cache_evictions;
    }
  }

  // Metric families are internally synchronized; no stats_mu_ needed.
  const std::string_view status = StatusLabel(response.status);
  const double total_micros = context.total_micros > 0
                                  ? context.total_micros
                                  : response.stats.solve_micros;
  requests_total_->WithLabel(status).Increment();
  request_latency_->WithLabel(status).Record(total_micros);
  if (!response.stats.algorithm.empty()) {
    requests_by_algorithm_->WithLabel(response.stats.algorithm).Increment();
    solve_latency_->WithLabel(response.stats.algorithm)
        .Record(response.stats.solve_micros);
  }
  if (context.trace != nullptr) {
    const obs::TraceSpan* spans = context.trace->spans();
    for (int i = 0; i < context.trace->size(); ++i) {
      const obs::TraceSpan& span = spans[i];
      if (span.kind == obs::SpanKind::kRequest || span.duration_ns < 0) {
        continue;
      }
      phase_micros_->WithLabel(obs::SpanKindName(span.kind))
          .Record(static_cast<double>(span.duration_ns) / 1000.0);
    }
  }

  // Slow path only: requests past the threshold, or shed by deadline /
  // cancellation (those are exactly the ones worth a span tree even when
  // they died fast).
  const bool shed = code == StatusCode::kDeadlineExceeded ||
                    code == StatusCode::kCancelled;
  if (slow_log_.capacity() > 0 &&
      (shed || total_micros >=
                   static_cast<double>(options_.slow_query_threshold_micros))) {
    obs::SlowQueryRecord record;
    if (context.request != nullptr) {
      const ResilienceRequest& request = *context.request;
      if (request.query != nullptr) {
        record.regex = request.query->regex;
        record.semantics =
            request.query->semantics == Semantics::kBag ? "bag" : "set";
      } else {
        record.regex = request.regex;
        record.semantics = request.semantics == Semantics::kBag ? "bag" : "set";
      }
    }
    record.status = std::string(status);
    record.algorithm = response.stats.algorithm;
    if (context.telemetry != nullptr) {
      record.lineage = context.telemetry->lineage;
      record.version = context.telemetry->version;
    }
    record.compile_micros =
        static_cast<int64_t>(response.stats.compile_micros);
    record.solve_micros = static_cast<int64_t>(response.stats.solve_micros);
    record.total_micros = static_cast<int64_t>(total_micros);
    record.network_vertices = response.stats.network_vertices;
    record.network_edges = response.stats.network_edges;
    record.search_nodes = response.stats.search_nodes;
    if (context.trace != nullptr) {
      record.spans_dropped = context.trace->dropped();
      record.spans.assign(context.trace->spans(),
                          context.trace->spans() + context.trace->size());
    }
    slow_log_.Push(std::move(record));
  }
}

EngineStats ResilienceEngine::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

void ResilienceEngine::ResetStats() {
  cache_.ResetStats();
  result_cache_.ResetStats();
  metrics_.Reset();
  MutexLock lock(stats_mu_);
  stats_ = EngineStats{};
}

std::string ResilienceEngine::ExportMetrics(MetricsFormat format,
                                            const DbRegistry* registry) const {
  obs::MetricsSnapshot snapshot = TakeMetricsSnapshot(registry);
  return format == MetricsFormat::kPrometheus ? obs::ToPrometheusText(snapshot)
                                              : obs::ToJson(snapshot);
}

obs::MetricsSnapshot ResilienceEngine::TakeMetricsSnapshot(
    const DbRegistry* registry) const {
  obs::MetricsSnapshot snapshot = metrics_.TakeSnapshot();
  const EngineStats s = stats();

  // EngineStats counters exported as families (samples sorted by label,
  // matching CounterFamily snapshots).
  auto add_counter = [&snapshot](
                         std::string_view name, std::string_view help,
                         std::vector<obs::CounterFamily::Sample> samples) {
    obs::CounterFamily::Snapshot family;
    family.name = std::string(name);
    family.help = std::string(help);
    family.label_key = "event";
    family.samples = std::move(samples);
    snapshot.counters.push_back(std::move(family));
  };
  add_counter("rpqres_plan_cache_events_total",
              "Plan-cache probes and evictions.",
              {{"eviction", s.cache_evictions},
               {"hit", s.cache_hits},
               {"miss", s.cache_misses}});
  add_counter("rpqres_result_cache_events_total",
              "Version-keyed result-cache probes, evictions, and explicit "
              "invalidations.",
              {{"eviction", s.result_cache_evictions},
               {"hit", s.result_cache_hits},
               {"invalidation", s.result_cache_invalidations},
               {"miss", s.result_cache_misses}});
  add_counter("rpqres_engine_events_total",
              "Engine lifecycle events (compiles, batches, async submits, "
              "differential runs).",
              {{"batch", s.batches_run},
               {"compilation", s.compilations},
               {"differential", s.differentials_run},
               {"differential_mismatch", s.differential_mismatches},
               {"submit", s.submits}});

  auto add_gauge = [&snapshot](std::string_view name, std::string_view help,
                               double value) {
    snapshot.gauges.push_back(
        obs::GaugeSample{std::string(name), std::string(help), value});
  };
  add_gauge("rpqres_plan_cache_entries", "Compiled plans resident in the LRU.",
            static_cast<double>(cache_.size()));
  add_gauge("rpqres_result_cache_entries",
            "Cached resilience answers resident.",
            static_cast<double>(result_cache_.size()));
  add_gauge("rpqres_result_cache_bytes",
            "Accounted byte footprint of cached answers.",
            static_cast<double>(result_cache_.size_bytes()));
  add_gauge("rpqres_slow_query_log_entries",
            "Slow-query records currently retained.",
            static_cast<double>(slow_log_.size()));
  if (registry != nullptr) {
    const DbRegistry::Gauges g = registry->gauges();
    add_gauge("rpqres_db_lineages", "Registered database lineages.",
              static_cast<double>(g.lineages));
    add_gauge("rpqres_db_snapshots",
              "Registered snapshots across all versions.",
              static_cast<double>(g.snapshots));
    add_gauge("rpqres_db_max_version_depth",
              "Most resident versions in any one lineage.",
              static_cast<double>(g.max_version_depth));
    add_gauge("rpqres_db_nodes", "Nodes across latest versions.",
              static_cast<double>(g.nodes));
    add_gauge("rpqres_db_live_facts", "Live facts across latest versions.",
              static_cast<double>(g.live_facts));
    add_gauge("rpqres_db_dead_facts",
              "Tombstoned fact ids across latest versions.",
              static_cast<double>(g.dead_facts));
    add_gauge("rpqres_db_overlay_facts",
              "Copy-on-write overlay adds+tombstones across latest versions.",
              static_cast<double>(g.overlay_facts));
    if (g.storage_persistent != 0) {
      // Exported only for persistent registries, so a non-persistent
      // deployment's exposition is byte-identical to earlier releases.
      add_gauge("rpqres_db_storage_segment_bytes",
                "On-disk bytes across lineage base segments.",
                static_cast<double>(g.storage_segment_bytes));
      add_gauge("rpqres_db_storage_journal_records",
                "Records across live delta journals.",
                static_cast<double>(g.storage_journal_records));
      add_gauge("rpqres_db_storage_journal_bytes",
                "On-disk bytes across live delta journals.",
                static_cast<double>(g.storage_journal_bytes));
      add_gauge("rpqres_db_storage_replay_micros",
                "Microseconds the last journal replay (Restore) took.",
                static_cast<double>(g.storage_replay_micros));
      add_gauge("rpqres_db_storage_health",
                "Storage health (0 healthy, 1 degraded read-only, 2 failed).",
                static_cast<double>(g.storage_health));
      add_gauge("rpqres_db_storage_swept_tmp_files",
                "Leftover *.tmp files swept by the last Restore.",
                static_cast<double>(g.storage_swept_tmp_files));
      // Emitted only once a write attempt has failed, so a fault-free
      // deployment's exposition is unchanged.
      const auto faults = registry->storage_fault_counts();
      if (!faults.empty()) {
        obs::CounterFamily::Snapshot family;
        family.name = "rpqres_storage_faults_total";
        family.help = "Failed storage write attempts by operation.";
        family.label_key = "op";
        for (const auto& [op, count] : faults) {
          family.samples.push_back({op, count});
        }
        snapshot.counters.push_back(std::move(family));
      }
    }
  }
  return snapshot;
}

std::vector<obs::SlowQueryRecord> ResilienceEngine::slow_queries() const {
  return slow_log_.Dump();
}

PlanCacheView ResilienceEngine::plan_cache_view() const {
  return PlanCacheView{cache_.size(), cache_.capacity(), cache_.stats()};
}

ResultCacheView ResilienceEngine::result_cache_view() const {
  return ResultCacheView{result_cache_.size(), result_cache_.capacity(),
                         result_cache_.size_bytes(), result_cache_.max_bytes(),
                         result_cache_.stats()};
}

int64_t ResilienceEngine::InvalidateResults(uint64_t lineage,
                                            std::optional<uint32_t> version) {
  const int64_t dropped = version.has_value()
                              ? result_cache_.EraseVersion(lineage, *version)
                              : result_cache_.EraseLineage(lineage);
  MutexLock lock(stats_mu_);
  stats_.result_cache_invalidations += dropped;
  return dropped;
}

}  // namespace rpqres
