#include "engine/engine.h"

#include <chrono>
#include <map>
#include <utility>

namespace rpqres {

namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ResilienceEngine::ResilienceEngine(EngineOptions options)
    : options_(options),
      cache_(options.plan_cache_capacity),
      pool_(options.num_threads > 0 ? options.num_threads
                                    : ThreadPool::DefaultNumThreads()) {}

Result<std::shared_ptr<const CompiledQuery>> ResilienceEngine::Compile(
    const std::string& regex, Semantics semantics) {
  return CompileInternal(regex, semantics, nullptr);
}

Result<std::shared_ptr<const CompiledQuery>> ResilienceEngine::CompileInternal(
    const std::string& regex, Semantics semantics, bool* was_cache_hit) {
  if (std::shared_ptr<const CompiledQuery> cached =
          cache_.Lookup(regex, semantics)) {
    if (was_cache_hit) *was_cache_hit = true;
    return cached;
  }
  if (was_cache_hit) *was_cache_hit = false;
  CompileOptions compile_options;
  compile_options.allow_exponential = options_.allow_exponential;
  compile_options.max_word_length = options_.max_word_length;
  RPQRES_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledQuery> compiled,
                          CompileQuery(regex, semantics, compile_options));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.compilations;
    stats_.total_compile_micros += compiled->compile_micros;
  }
  cache_.Insert(compiled);
  return compiled;
}

InstanceOutcome ResilienceEngine::Run(const QueryInstance& instance) {
  bool was_resident = false;
  Result<std::shared_ptr<const CompiledQuery>> compiled =
      CompileInternal(instance.regex, instance.semantics, &was_resident);
  if (!compiled.ok()) {
    InstanceOutcome outcome;
    outcome.status = compiled.status();
    RecordInstance(outcome);
    return outcome;
  }
  return Execute(**compiled, *instance.db, was_resident,
                 was_resident ? 0 : (*compiled)->compile_micros);
}

InstanceOutcome ResilienceEngine::Run(const CompiledQuery& query,
                                      const GraphDb& db) {
  return Execute(query, db, /*cache_hit=*/true, /*compile_micros=*/0);
}

std::map<std::pair<std::string, Semantics>, ResilienceEngine::PlanSlot>
ResilienceEngine::CompileDistinct(std::span<const QueryInstance> instances,
                                  std::vector<bool>* first_compile) {
  std::map<std::pair<std::string, Semantics>, PlanSlot> plans;
  first_compile->assign(instances.size(), false);
  for (size_t i = 0; i < instances.size(); ++i) {
    const QueryInstance& instance = instances[i];
    auto key = std::make_pair(instance.regex, instance.semantics);
    if (plans.contains(key)) continue;
    PlanSlot slot;
    slot.compiled = CompileInternal(instance.regex, instance.semantics,
                                    &slot.was_resident);
    (*first_compile)[i] = !slot.was_resident;
    plans.emplace(std::move(key), std::move(slot));
  }
  return plans;
}

std::vector<InstanceOutcome> ResilienceEngine::RunBatch(
    std::span<const QueryInstance> instances) {
  // Phase 1 (serial): compile each distinct (regex, semantics) once.
  std::vector<bool> first_compile;
  std::map<std::pair<std::string, Semantics>, PlanSlot> plans =
      CompileDistinct(instances, &first_compile);

  // Phase 2 (parallel): every instance already has a plan; solve.
  std::vector<InstanceOutcome> outcomes(instances.size());
  pool_.ParallelFor(
      static_cast<int64_t>(instances.size()), [&](int64_t i) {
        const QueryInstance& instance = instances[i];
        const PlanSlot& slot =
            plans.at({instance.regex, instance.semantics});
        if (!slot.compiled.ok()) {
          outcomes[i].status = slot.compiled.status();
          RecordInstance(outcomes[i]);
          return;
        }
        const CompiledQuery& query = **slot.compiled;
        outcomes[i] =
            Execute(query, *instance.db,
                    /*cache_hit=*/!first_compile[i],
                    first_compile[i] ? query.compile_micros : 0);
      });

  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.batches_run;
  return outcomes;
}

void JudgeDifferential(const Language& lang, const GraphDb& db,
                       Semantics semantics, DifferentialOutcome* outcome) {
  outcome->agree = false;
  outcome->inconclusive = false;
  outcome->mismatch.clear();
  const Status& ps = outcome->primary.status;
  const Status& rs = outcome->reference.status;
  // Budget exhaustion on either side means no answer to compare.
  if (ps.code() == StatusCode::kOutOfRange ||
      rs.code() == StatusCode::kOutOfRange) {
    outcome->inconclusive = true;
    return;
  }
  if (!ps.ok() && !rs.ok()) {
    // Both paths refused (e.g. exponential fallback disabled): agreement,
    // unless they refused for different reasons.
    if (ps.code() == rs.code()) {
      outcome->agree = true;
    } else {
      outcome->mismatch = "error divergence: primary " + ps.ToString() +
                          " vs reference " + rs.ToString();
    }
    return;
  }
  if (!ps.ok() || !rs.ok()) {
    outcome->mismatch = "status divergence: primary " + ps.ToString() +
                        " vs reference " + rs.ToString();
    return;
  }
  const ResilienceResult& p = outcome->primary.result;
  const ResilienceResult& r = outcome->reference.result;
  if (p.infinite != r.infinite) {
    outcome->mismatch =
        "infinite divergence: primary=" + std::to_string(p.infinite) + " (" +
        p.algorithm + ") vs reference=" + std::to_string(r.infinite) + " (" +
        r.algorithm + ")";
    return;
  }
  if (!p.infinite && p.value != r.value) {
    outcome->mismatch = "value divergence: primary=" + std::to_string(p.value) +
                        " (" + p.algorithm +
                        ") vs reference=" + std::to_string(r.value) + " (" +
                        r.algorithm + ")";
    return;
  }
  Status primary_witness = VerifyResilienceResult(lang, db, semantics, p);
  if (!primary_witness.ok()) {
    outcome->mismatch =
        "primary witness invalid (" + p.algorithm + "): " +
        primary_witness.message();
    return;
  }
  Status reference_witness = VerifyResilienceResult(lang, db, semantics, r);
  if (!reference_witness.ok()) {
    outcome->mismatch =
        "reference witness invalid (" + r.algorithm + "): " +
        reference_witness.message();
    return;
  }
  outcome->agree = true;
}

std::vector<DifferentialOutcome> ResilienceEngine::RunDifferential(
    std::span<const QueryInstance> instances) {
  std::vector<bool> first_compile;
  std::map<std::pair<std::string, Semantics>, PlanSlot> plans =
      CompileDistinct(instances, &first_compile);

  std::vector<DifferentialOutcome> outcomes(instances.size());
  pool_.ParallelFor(
      static_cast<int64_t>(instances.size()), [&](int64_t i) {
        const QueryInstance& instance = instances[i];
        DifferentialOutcome& outcome = outcomes[i];
        const PlanSlot& slot = plans.at({instance.regex, instance.semantics});
        if (!slot.compiled.ok()) {
          outcome.primary.status = slot.compiled.status();
          outcome.reference.status = slot.compiled.status();
          outcome.mismatch =
              "compile failed: " + slot.compiled.status().ToString();
          RecordInstance(outcome.primary);
          return;
        }
        const CompiledQuery& query = **slot.compiled;
        outcome.primary =
            Execute(query, *instance.db,
                    /*cache_hit=*/!first_compile[i],
                    first_compile[i] ? query.compile_micros : 0);

        // Reference: the exponential exact solver on the original
        // language, bypassing plan dispatch entirely.
        ExactOptions reference_options;
        reference_options.max_search_nodes = options_.max_exact_search_nodes;
        auto start = std::chrono::steady_clock::now();
        Result<ResilienceResult> reference = SolveExactResilience(
            query.language, *instance.db, query.semantics, reference_options);
        outcome.reference.stats.solve_micros = MicrosSince(start);
        if (!reference.ok()) {
          outcome.reference.status = reference.status();
        } else {
          outcome.reference.result = *std::move(reference);
          outcome.reference.stats.algorithm =
              outcome.reference.result.algorithm;
          outcome.reference.stats.search_nodes =
              outcome.reference.result.search_nodes;
        }
        JudgeDifferential(query.language, *instance.db, query.semantics,
                          &outcome);
      });

  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.batches_run;
  for (const DifferentialOutcome& outcome : outcomes) {
    ++stats_.differentials_run;
    if (!outcome.agree && !outcome.inconclusive) {
      ++stats_.differential_mismatches;
    }
  }
  return outcomes;
}

InstanceOutcome ResilienceEngine::Execute(const CompiledQuery& query,
                                          const GraphDb& db, bool cache_hit,
                                          double compile_micros) {
  InstanceOutcome outcome;
  outcome.stats.complexity =
      ComplexityClassName(query.classification.complexity);
  outcome.stats.rule = query.classification.rule;
  outcome.stats.cache_hit = cache_hit;
  outcome.stats.compile_micros = compile_micros;

  ExactOptions exact_options;
  exact_options.max_search_nodes = options_.max_exact_search_nodes;
  auto start = std::chrono::steady_clock::now();
  Result<ResilienceResult> result =
      ComputeResilienceWithPlan(query.plan, db, query.semantics, exact_options);
  outcome.stats.solve_micros = MicrosSince(start);
  if (!result.ok()) {
    outcome.status = result.status();
  } else {
    outcome.result = *std::move(result);
    outcome.stats.algorithm = outcome.result.algorithm;
    outcome.stats.network_vertices = outcome.result.network_vertices;
    outcome.stats.network_edges = outcome.result.network_edges;
    outcome.stats.search_nodes = outcome.result.search_nodes;
  }
  RecordInstance(outcome);
  return outcome;
}

void ResilienceEngine::RecordInstance(const InstanceOutcome& outcome) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.instances_run;
  if (!outcome.status.ok()) ++stats_.errors;
  stats_.total_solve_micros += outcome.stats.solve_micros;
  if (!outcome.stats.algorithm.empty()) {
    ++stats_.instances_by_algorithm[outcome.stats.algorithm];
  }
}

EngineStats ResilienceEngine::stats() const {
  PlanCache::Stats cache_stats = cache_.stats();
  std::lock_guard<std::mutex> lock(stats_mu_);
  EngineStats snapshot = stats_;
  snapshot.cache_hits = cache_stats.hits;
  snapshot.cache_misses = cache_stats.misses;
  snapshot.cache_evictions = cache_stats.evictions;
  return snapshot;
}

void ResilienceEngine::ResetStats() {
  cache_.ResetStats();
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_ = EngineStats{};
}

}  // namespace rpqres
