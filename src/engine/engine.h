// rpqres — engine/engine: the compiled-query resilience engine.
//
// ResilienceEngine is the serving-path entry point of the library. The
// surface is request/response:
//
//   DbRegistry registry;
//   DbHandle db = registry.Register(std::move(graph));
//   ResilienceEngine engine;
//   ResilienceResponse r = engine.Evaluate(
//       {.regex = "ax*b", .db = db, .semantics = Semantics::kBag});
//   std::future<ResilienceResponse> f = engine.Submit(
//       {.regex = "ax*b", .db = db,
//        .options = {.deadline = std::chrono::steady_clock::now() + 50ms}});
//
// It compiles each (regex, semantics) pair once — parse, minimal DFA,
// Figure 1 classification, solver selection, RO-εNFA product tables —
// behind an LRU plan cache, evaluates batches of independent requests
// across a fixed thread pool (synchronously via EvaluateBatch,
// asynchronously via Submit/SubmitBatch futures), honours per-request
// solver/budget/deadline overrides and fixed endpoints, and records
// per-instance and aggregate statistics. Each worker thread owns a
// SolverScratch arena (flow/solver_scratch.h), so steady-state flow
// solves allocate nothing. Layering:
//
//   engine        (this file: cache + batch + async + stats)
//     ├── request / db_registry  (request types, owned db snapshots)
//     └── compiled_query  (one-shot compilation artifact)
//           └── resilience (ResiliencePlan dispatch), classify (Fig 1)
//                 └── lang / automata / flow / graphdb
//
// The v1 entry points (QueryInstance / Run / RunBatch / RunDifferential
// and DbHandle::Borrow) were deleted after their one-release deprecation
// window; see README "Migrating from v1".

#ifndef RPQRES_ENGINE_ENGINE_H_
#define RPQRES_ENGINE_ENGINE_H_

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "engine/compiled_query.h"
#include "engine/db_registry.h"
#include "engine/engine_stats.h"
#include "engine/plan_cache.h"
#include "engine/request.h"
#include "engine/result_cache.h"
#include "graphdb/graph_db.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "resilience/resilience.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace rpqres {

/// Engine-wide defaults. Everything a RequestOptions can override falls
/// back to the value here.
struct EngineOptions {
  /// Max compiled plans kept resident (LRU beyond that).
  size_t plan_cache_capacity = 256;
  /// Worker threads for batch/async execution; 0 = DefaultNumThreads().
  int num_threads = 0;
  /// Forwarded to CompileQuery / plan selection.
  bool allow_exponential = true;
  int max_word_length = 12;
  /// Branch-and-bound node budget when an instance routes to the exact
  /// solver (both the plan side and the differential reference side).
  /// Exceeding it yields OutOfRange — differential runs report such pairs
  /// as inconclusive, not as mismatches.
  uint64_t max_exact_search_nodes = 50'000'000;
  /// Max entries in the version-keyed ResultCache (answers keyed by
  /// (query, lineage, version, semantics, endpoints) — sound because
  /// registry versions are immutable). 0 disables the cache, the
  /// default: benchmarks and differential harnesses measure solvers, not
  /// memoization; serving deployments opt in.
  size_t result_cache_capacity = 0;
  /// Fixed-endpoint differential reference: requests whose database has
  /// at most this many live facts get an endpoint-pinned brute-force
  /// second opinion (2^facts subsets); larger instances judge
  /// inconclusive. Clamped to 22.
  int fixed_endpoint_reference_max_facts = 16;

  // --- observability (src/obs/) --------------------------------------------
  /// Record per-request trace spans (resolve, result-cache lookup, solve,
  /// product prune, flow build, Dinic, cut extraction, exact search) into
  /// a stack-allocated per-request context, feeding the per-phase latency
  /// histograms and the slow-query log. The context is fixed-size and the
  /// span clock is two steady_clock reads per phase, so the zero-
  /// allocation hot path is preserved; measured overhead is a few percent
  /// of p50 on the deep-product flow benchmark (see README
  /// "Observability"). Per-request RequestOptions::trace overrides this.
  bool enable_tracing = true;
  /// Requests slower than this land in the slow-query log with their full
  /// span tree (DeadlineExceeded/Cancelled requests land there regardless
  /// of duration).
  int64_t slow_query_threshold_micros = 10'000;
  /// Slow-query ring-buffer capacity; 0 disables the log.
  size_t slow_query_log_capacity = 64;
  /// Byte budget for the version-keyed ResultCache (witness sets
  /// accounted per entry); 0 = bound by entry count only. Ignored while
  /// result_cache_capacity is 0.
  size_t result_cache_max_bytes = 0;
};

/// Output formats of ResilienceEngine::ExportMetrics.
enum class MetricsFormat {
  kJson,        ///< one JSON object (counters/histograms+quantiles/gauges)
  kPrometheus,  ///< Prometheus text exposition 0.0.4
};

/// Read-only plan-cache introspection snapshot (size, capacity, hit/miss
/// counters) — the engine owns the cache; callers observe, never mutate.
struct PlanCacheView {
  size_t size = 0;
  size_t capacity = 0;
  PlanCache::Stats stats;
};

/// Read-only ResultCache introspection snapshot.
struct ResultCacheView {
  size_t size = 0;
  size_t capacity = 0;
  /// Accounted entry footprint and its budget (0 = unbounded by bytes).
  size_t bytes = 0;
  size_t max_bytes = 0;
  ResultCache::Stats stats;
};

/// The engine. Thread-safe: Compile/Evaluate/EvaluateBatch/Submit may be
/// called concurrently from multiple threads; a batch call additionally
/// parallelizes internally over the engine's thread pool.
class ResilienceEngine {
 public:
  explicit ResilienceEngine(EngineOptions options = {});

  /// Returns the compiled plan for (regex, semantics), from the plan
  /// cache when resident, compiling (and caching) otherwise. The returned
  /// handle can be placed in ResilienceRequest::query to skip cache
  /// interaction on the hot path.
  Result<std::shared_ptr<const CompiledQuery>> Compile(
      const std::string& regex, Semantics semantics);

  /// Evaluates one request end-to-end (compile-or-cache + solve),
  /// honouring its per-request overrides, deadline, and fixed endpoints.
  ResilienceResponse Evaluate(const ResilienceRequest& request);

  /// Evaluates many requests: compiles the distinct queries once
  /// (serially, so cache accounting is deterministic), then solves all
  /// requests across the thread pool. responses[i] corresponds to
  /// requests[i]; values are independent of thread interleaving because
  /// requests never share mutable state.
  std::vector<ResilienceResponse> EvaluateBatch(
      std::span<const ResilienceRequest> requests);

  /// Differential batch mode: every request is solved twice — once
  /// through the compiled plan (sharing the plan cache with Evaluate)
  /// and once through the exact reference solver — and the two answers
  /// are judged (JudgeDifferential) into response.differential.
  /// Reference solves are NOT recorded in per-instance aggregate stats;
  /// the differentials_run / differential_mismatches counters track them.
  std::vector<ResilienceResponse> EvaluateDifferential(
      std::span<const ResilienceRequest> requests);

  /// Asynchronous submission: enqueues the request on the engine's thread
  /// pool and returns immediately. The future resolves to exactly what
  /// Evaluate(request) would return (deadlines keep counting while the
  /// request waits in the queue — a deadline is wall-clock, not
  /// time-on-CPU). Never throws through the future.
  std::future<ResilienceResponse> Submit(ResilienceRequest request);

  /// Completion hook for a submitted request, invoked on the worker
  /// thread that evaluated it, BEFORE the future resolves — so by the
  /// time future.get() returns, the callback's effects are visible. The
  /// serve Router uses this to release admission slots and record
  /// end-to-end latency at the exact completion instant.
  using ResponseCallback = std::function<void(const ResilienceResponse&)>;

  /// Submit with a completion hook; `on_complete` may be empty. The
  /// callback must not call back into the engine's async surface
  /// (Submit from inside it would deadlock a single-thread pool at
  /// shutdown) and must outlive the request.
  std::future<ResilienceResponse> Submit(ResilienceRequest request,
                                         ResponseCallback on_complete);

  /// Submits every request; futures[i] corresponds to requests[i].
  /// Unlike EvaluateBatch, distinct queries are deduplicated only through
  /// the plan cache (two in-flight tasks may both compile a cold regex).
  std::vector<std::future<ResilienceResponse>> SubmitBatch(
      std::vector<ResilienceRequest> requests);

  // --- Introspection ------------------------------------------------------

  /// Aggregate counters snapshot (cache_* reflect the plan cache). The
  /// snapshot is CONSISTENT under concurrent Submit/Evaluate traffic:
  /// every field is maintained under one mutex at its counting point, so
  /// cross-field invariants (deadline_exceeded + cancelled <= errors <=
  /// instances_run, sum of instances_by_algorithm <= instances_run, ...)
  /// hold in every snapshot, never just at quiescence.
  EngineStats stats() const RPQRES_EXCLUDES(stats_mu_);
  /// Clears the EngineStats snapshot, the underlying cache counters, and
  /// every metric family (latency histograms included) atomically per
  /// component. The slow-query log is NOT cleared (it is a log, not a
  /// counter); use slow_queries() before resetting if needed.
  void ResetStats() RPQRES_EXCLUDES(stats_mu_);

  /// Renders every engine metric — request/solve/phase latency histograms
  /// (p50/p95/p99 in the JSON form), disjoint-status request counters,
  /// cache event counters, and instantaneous gauges (cache entries and
  /// bytes, slow-log depth, plus DbRegistry lineage/version/fact gauges
  /// when `registry` is non-null) — in the requested format.
  std::string ExportMetrics(MetricsFormat format,
                            const DbRegistry* registry = nullptr) const;

  /// The structured form of ExportMetrics (exporter-independent).
  obs::MetricsSnapshot TakeMetricsSnapshot(
      const DbRegistry* registry = nullptr) const;

  /// The retained slow-query records, oldest first (see
  /// EngineOptions::slow_query_threshold_micros).
  std::vector<obs::SlowQueryRecord> slow_queries() const;

  const EngineOptions& options() const { return options_; }

  /// Read-only plan-cache snapshot.
  PlanCacheView plan_cache_view() const;

  /// Read-only ResultCache snapshot.
  ResultCacheView result_cache_view() const;

  /// Drops cached answers for `lineage` (every version, or just
  /// `version`). Version-keyed entries are never stale, so this is
  /// capacity hygiene for dropped lineages, not a correctness hook; the
  /// dropped count lands in result_cache_invalidations.
  int64_t InvalidateResults(uint64_t lineage,
                            std::optional<uint32_t> version = std::nullopt);

 private:
  /// Compile-or-cache; sets *was_cache_hit (if non-null) to whether the
  /// plan was already resident.
  Result<std::shared_ptr<const CompiledQuery>> CompileInternal(
      const std::string& regex, Semantics semantics, bool* was_cache_hit);

  /// Serial phase 1 shared by EvaluateBatch/EvaluateDifferential:
  /// compiles each distinct (regex, semantics) once, skipping requests
  /// that carry a precompiled query. first_compile[i] marks the request
  /// that pays the compile, so per-instance attribution matches what
  /// sequential Evaluate calls would report.
  struct PlanSlot {
    Result<std::shared_ptr<const CompiledQuery>> compiled{nullptr};
    bool was_resident = false;
  };
  std::map<std::pair<std::string, Semantics>, PlanSlot> CompileDistinct(
      std::span<const ResilienceRequest> requests,
      std::vector<bool>* first_compile);

  /// Side facts Execute gathers for RecordInstance that don't belong in
  /// the response itself (cache interaction, resolved db identity).
  struct RequestTelemetry {
    uint64_t lineage = 0;
    uint32_t version = 0;
    bool result_cache_checked = false;
    int64_t result_cache_evictions = 0;
  };

  /// Context handed to RecordInstance alongside the response; everything
  /// optional so bare RecordInstance(response) keeps working for callers
  /// with no trace/telemetry (the differential reference path).
  struct RecordContext {
    const ResilienceRequest* request = nullptr;
    const obs::TraceContext* trace = nullptr;
    const RequestTelemetry* telemetry = nullptr;
    double total_micros = 0;
  };

  /// Solve step shared by all entry points; applies per-request
  /// overrides, deadline, cancellation, and fixed endpoints; solves with
  /// the calling thread's SolverScratch; records into stats_ and the
  /// metric families. Opens a kRequest span on the effective trace
  /// context (request.options.trace, else a stack-local one when
  /// options_.enable_tracing), then delegates to ExecuteTraced.
  /// `plan_lookup_micros` is the already-paid plan-cache/compile lookup
  /// time the caller measured, recorded as a completed span.
  ResilienceResponse Execute(const CompiledQuery& query,
                             const ResilienceRequest& request, bool cache_hit,
                             double compile_micros,
                             double plan_lookup_micros = 0);

  /// The body of Execute: db resolution, result-cache lookup, solver
  /// dispatch. Records spans into `trace` (nullable) and side facts into
  /// `telemetry`; does NOT touch stats_ — Execute records once on the
  /// way out.
  ResilienceResponse ExecuteTraced(const CompiledQuery& query,
                                   const ResilienceRequest& request,
                                   obs::TraceContext* trace,
                                   RequestTelemetry* telemetry);

  /// The exact reference solve + judging for one differential request;
  /// fills response->differential.
  void RunReference(const CompiledQuery& query,
                    const ResilienceRequest& request,
                    ResilienceResponse* response);

  /// Single sink for per-instance accounting: EngineStats fields under
  /// stats_mu_, then (outside the mutex) metric families and, when the
  /// request qualifies, the slow-query log. A default-constructed context
  /// is valid (no trace, no telemetry).
  void RecordInstance(const ResilienceResponse& response,
                      const RecordContext& context)
      RPQRES_EXCLUDES(stats_mu_);

  EngineOptions options_;
  PlanCache cache_;
  ResultCache result_cache_;
  mutable Mutex stats_mu_;
  EngineStats stats_ RPQRES_GUARDED_BY(stats_mu_);
  /// Metric families live in metrics_; the pointers below are stable
  /// (MetricsRegistry owns them) and set once in the constructor.
  obs::MetricsRegistry metrics_;
  obs::CounterFamily* requests_total_ = nullptr;        // {status}
  obs::CounterFamily* requests_by_algorithm_ = nullptr; // {algorithm}
  obs::HistogramFamily* request_latency_ = nullptr;     // {status}, micros
  obs::HistogramFamily* solve_latency_ = nullptr;       // {algorithm}, micros
  obs::HistogramFamily* phase_micros_ = nullptr;        // {phase}, micros
  obs::SlowQueryLog slow_log_;
  /// Declared last on purpose: ~ThreadPool drains still-queued Submit
  /// tasks, which touch cache_/stats_mu_/stats_/metrics_ — everything
  /// they use must be destroyed after the pool.
  ThreadPool pool_;
};

}  // namespace rpqres

#endif  // RPQRES_ENGINE_ENGINE_H_
