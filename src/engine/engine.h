// rpqres — engine/engine: the compiled-query resilience engine.
//
// ResilienceEngine is the serving-path entry point of the library:
//
//   ResilienceEngine engine;
//   auto outcome = engine.Run({.regex = "ax*b", .db = &db,
//                              .semantics = Semantics::kBag});
//
// It compiles each (regex, semantics) pair once — parse, minimal DFA,
// Figure 1 classification, solver selection, RO-εNFA — behind an LRU plan
// cache, evaluates batches of independent (query, database) instances
// across a fixed thread pool, and records per-instance and aggregate
// statistics. Layering:
//
//   engine        (this file: cache + batch + stats)
//     └── compiled_query  (one-shot compilation artifact)
//           └── resilience (ResiliencePlan dispatch), classify (Fig 1)
//                 └── lang / automata / flow / graphdb

#ifndef RPQRES_ENGINE_ENGINE_H_
#define RPQRES_ENGINE_ENGINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "engine/compiled_query.h"
#include "engine/engine_stats.h"
#include "engine/plan_cache.h"
#include "graphdb/graph_db.h"
#include "resilience/resilience.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rpqres {

struct EngineOptions {
  /// Max compiled plans kept resident (LRU beyond that).
  size_t plan_cache_capacity = 256;
  /// Worker threads for RunBatch; 0 = ThreadPool::DefaultNumThreads().
  int num_threads = 0;
  /// Forwarded to CompileQuery / plan selection.
  bool allow_exponential = true;
  int max_word_length = 12;
  /// Branch-and-bound node budget when an instance routes to the exact
  /// solver (both the plan side and RunDifferential's reference side).
  /// Exceeding it yields OutOfRange — RunDifferential reports such pairs
  /// as inconclusive, not as mismatches.
  uint64_t max_exact_search_nodes = 50'000'000;
};

/// One unit of batch work: evaluate RES(Q_regex, *db) under `semantics`.
/// `db` is borrowed and must outlive the RunBatch/Run call.
struct QueryInstance {
  std::string regex;
  const GraphDb* db = nullptr;
  Semantics semantics = Semantics::kSet;
};

/// Result of one instance. `result` is meaningful iff `status.ok()`;
/// `stats` is always filled as far as execution got.
struct InstanceOutcome {
  Status status;
  ResilienceResult result;
  InstanceStats stats;
};

/// One instance run both ways: the compiled kAuto plan (primary) against
/// the independent exponential exact solver (reference), with the
/// comparison verdict. `agree` requires matching values/infiniteness AND
/// both witness contingency sets verifying against the database (their
/// removal really falsifies the query); `mismatch` is a one-line
/// explanation, empty iff `agree`.
struct DifferentialOutcome {
  InstanceOutcome primary;
  InstanceOutcome reference;
  bool agree = false;
  /// True when a side exhausted its exact-solver budget (OutOfRange):
  /// nobody produced a refutable answer, so the pair is neither agreement
  /// nor mismatch. `agree` is false and `mismatch` empty in that case.
  bool inconclusive = false;
  std::string mismatch;
};

/// Fills `outcome->agree` / `outcome->mismatch` from the two results plus
/// witness verification against (lang, db, semantics). Both-errored pairs
/// agree iff the status codes match. Exposed so the workload oracle's
/// counterexample minimizer can re-judge shrunken databases outside the
/// engine.
void JudgeDifferential(const Language& lang, const GraphDb& db,
                       Semantics semantics, DifferentialOutcome* outcome);

/// The engine. Thread-safe: Compile/Run/RunBatch may be called
/// concurrently from multiple threads; a RunBatch call additionally
/// parallelizes internally over its own thread pool.
class ResilienceEngine {
 public:
  explicit ResilienceEngine(EngineOptions options = {});

  /// Returns the compiled plan for (regex, semantics), from the plan
  /// cache when resident, compiling (and caching) otherwise.
  Result<std::shared_ptr<const CompiledQuery>> Compile(
      const std::string& regex, Semantics semantics);

  /// Evaluates one instance end-to-end (compile-or-cache + solve).
  InstanceOutcome Run(const QueryInstance& instance);

  /// Executes an already-compiled plan against a database. No cache
  /// interaction; useful when the caller manages CompiledQuery lifetimes.
  InstanceOutcome Run(const CompiledQuery& query, const GraphDb& db);

  /// Evaluates many instances: compiles the distinct queries once
  /// (serially, so cache accounting is deterministic), then solves all
  /// instances across the thread pool. outcomes[i] corresponds to
  /// instances[i]; values are independent of thread interleaving because
  /// instances never share mutable state.
  std::vector<InstanceOutcome> RunBatch(
      std::span<const QueryInstance> instances);

  /// Differential batch mode: every instance is solved twice — once
  /// through the compiled plan (sharing the plan cache with Run/RunBatch)
  /// and once through the exact reference solver — across the thread
  /// pool, and the two answers are judged (JudgeDifferential). Reference
  /// solves are NOT recorded in per-instance aggregate stats; the
  /// differentials_run / differential_mismatches counters track them.
  std::vector<DifferentialOutcome> RunDifferential(
      std::span<const QueryInstance> instances);

  /// Aggregate counters snapshot (cache_* reflect the plan cache).
  EngineStats stats() const;
  void ResetStats();

  const EngineOptions& options() const { return options_; }
  PlanCache& plan_cache() { return cache_; }

 private:
  /// Compile-or-cache; sets *was_cache_hit (if non-null) to whether the
  /// plan was already resident.
  Result<std::shared_ptr<const CompiledQuery>> CompileInternal(
      const std::string& regex, Semantics semantics, bool* was_cache_hit);

  /// Serial phase 1 shared by RunBatch/RunDifferential: compiles each
  /// distinct (regex, semantics) once. first_compile[i] marks the
  /// instance that pays the compile, so per-instance attribution matches
  /// what sequential Run calls would report.
  struct PlanSlot {
    Result<std::shared_ptr<const CompiledQuery>> compiled{nullptr};
    bool was_resident = false;
  };
  std::map<std::pair<std::string, Semantics>, PlanSlot> CompileDistinct(
      std::span<const QueryInstance> instances,
      std::vector<bool>* first_compile);

  /// Solve step shared by all entry points; records into stats_.
  InstanceOutcome Execute(const CompiledQuery& query, const GraphDb& db,
                          bool cache_hit, double compile_micros);
  void RecordInstance(const InstanceOutcome& outcome);

  EngineOptions options_;
  PlanCache cache_;
  ThreadPool pool_;
  mutable std::mutex stats_mu_;
  EngineStats stats_;
};

}  // namespace rpqres

#endif  // RPQRES_ENGINE_ENGINE_H_
