// rpqres — engine/engine: the compiled-query resilience engine.
//
// ResilienceEngine is the serving-path entry point of the library. The
// surface is request/response:
//
//   DbRegistry registry;
//   DbHandle db = registry.Register(std::move(graph));
//   ResilienceEngine engine;
//   ResilienceResponse r = engine.Evaluate(
//       {.regex = "ax*b", .db = db, .semantics = Semantics::kBag});
//   std::future<ResilienceResponse> f = engine.Submit(
//       {.regex = "ax*b", .db = db,
//        .options = {.deadline = std::chrono::steady_clock::now() + 50ms}});
//
// It compiles each (regex, semantics) pair once — parse, minimal DFA,
// Figure 1 classification, solver selection, RO-εNFA product tables —
// behind an LRU plan cache, evaluates batches of independent requests
// across a fixed thread pool (synchronously via EvaluateBatch,
// asynchronously via Submit/SubmitBatch futures), honours per-request
// solver/budget/deadline overrides and fixed endpoints, and records
// per-instance and aggregate statistics. Each worker thread owns a
// SolverScratch arena (flow/solver_scratch.h), so steady-state flow
// solves allocate nothing. Layering:
//
//   engine        (this file: cache + batch + async + stats)
//     ├── request / db_registry  (request types, owned db snapshots)
//     └── compiled_query  (one-shot compilation artifact)
//           └── resilience (ResiliencePlan dispatch), classify (Fig 1)
//                 └── lang / automata / flow / graphdb
//
// The v1 entry points (QueryInstance / Run / RunBatch / RunDifferential
// and DbHandle::Borrow) were deleted after their one-release deprecation
// window; see README "Migrating from v1".

#ifndef RPQRES_ENGINE_ENGINE_H_
#define RPQRES_ENGINE_ENGINE_H_

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "engine/compiled_query.h"
#include "engine/db_registry.h"
#include "engine/engine_stats.h"
#include "engine/plan_cache.h"
#include "engine/request.h"
#include "engine/result_cache.h"
#include "graphdb/graph_db.h"
#include "resilience/resilience.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rpqres {

/// Engine-wide defaults. Everything a RequestOptions can override falls
/// back to the value here.
struct EngineOptions {
  /// Max compiled plans kept resident (LRU beyond that).
  size_t plan_cache_capacity = 256;
  /// Worker threads for batch/async execution; 0 = DefaultNumThreads().
  int num_threads = 0;
  /// Forwarded to CompileQuery / plan selection.
  bool allow_exponential = true;
  int max_word_length = 12;
  /// Branch-and-bound node budget when an instance routes to the exact
  /// solver (both the plan side and the differential reference side).
  /// Exceeding it yields OutOfRange — differential runs report such pairs
  /// as inconclusive, not as mismatches.
  uint64_t max_exact_search_nodes = 50'000'000;
  /// Max entries in the version-keyed ResultCache (answers keyed by
  /// (query, lineage, version, semantics, endpoints) — sound because
  /// registry versions are immutable). 0 disables the cache, the
  /// default: benchmarks and differential harnesses measure solvers, not
  /// memoization; serving deployments opt in.
  size_t result_cache_capacity = 0;
  /// Fixed-endpoint differential reference: requests whose database has
  /// at most this many live facts get an endpoint-pinned brute-force
  /// second opinion (2^facts subsets); larger instances judge
  /// inconclusive. Clamped to 22.
  int fixed_endpoint_reference_max_facts = 16;
};

/// Read-only plan-cache introspection snapshot (size, capacity, hit/miss
/// counters) — the engine owns the cache; callers observe, never mutate.
struct PlanCacheView {
  size_t size = 0;
  size_t capacity = 0;
  PlanCache::Stats stats;
};

/// Read-only ResultCache introspection snapshot.
struct ResultCacheView {
  size_t size = 0;
  size_t capacity = 0;
  ResultCache::Stats stats;
};

/// The engine. Thread-safe: Compile/Evaluate/EvaluateBatch/Submit may be
/// called concurrently from multiple threads; a batch call additionally
/// parallelizes internally over the engine's thread pool.
class ResilienceEngine {
 public:
  explicit ResilienceEngine(EngineOptions options = {});

  /// Returns the compiled plan for (regex, semantics), from the plan
  /// cache when resident, compiling (and caching) otherwise. The returned
  /// handle can be placed in ResilienceRequest::query to skip cache
  /// interaction on the hot path.
  Result<std::shared_ptr<const CompiledQuery>> Compile(
      const std::string& regex, Semantics semantics);

  /// Evaluates one request end-to-end (compile-or-cache + solve),
  /// honouring its per-request overrides, deadline, and fixed endpoints.
  ResilienceResponse Evaluate(const ResilienceRequest& request);

  /// Evaluates many requests: compiles the distinct queries once
  /// (serially, so cache accounting is deterministic), then solves all
  /// requests across the thread pool. responses[i] corresponds to
  /// requests[i]; values are independent of thread interleaving because
  /// requests never share mutable state.
  std::vector<ResilienceResponse> EvaluateBatch(
      std::span<const ResilienceRequest> requests);

  /// Differential batch mode: every request is solved twice — once
  /// through the compiled plan (sharing the plan cache with Evaluate)
  /// and once through the exact reference solver — and the two answers
  /// are judged (JudgeDifferential) into response.differential.
  /// Reference solves are NOT recorded in per-instance aggregate stats;
  /// the differentials_run / differential_mismatches counters track them.
  std::vector<ResilienceResponse> EvaluateDifferential(
      std::span<const ResilienceRequest> requests);

  /// Asynchronous submission: enqueues the request on the engine's thread
  /// pool and returns immediately. The future resolves to exactly what
  /// Evaluate(request) would return (deadlines keep counting while the
  /// request waits in the queue — a deadline is wall-clock, not
  /// time-on-CPU). Never throws through the future.
  std::future<ResilienceResponse> Submit(ResilienceRequest request);

  /// Submits every request; futures[i] corresponds to requests[i].
  /// Unlike EvaluateBatch, distinct queries are deduplicated only through
  /// the plan cache (two in-flight tasks may both compile a cold regex).
  std::vector<std::future<ResilienceResponse>> SubmitBatch(
      std::vector<ResilienceRequest> requests);

  // --- Introspection ------------------------------------------------------

  /// Aggregate counters snapshot (cache_* reflect the plan cache).
  EngineStats stats() const;
  void ResetStats();

  const EngineOptions& options() const { return options_; }

  /// Read-only plan-cache snapshot.
  PlanCacheView plan_cache_view() const;

  /// Read-only ResultCache snapshot.
  ResultCacheView result_cache_view() const;

  /// Drops cached answers for `lineage` (every version, or just
  /// `version`). Version-keyed entries are never stale, so this is
  /// capacity hygiene for dropped lineages, not a correctness hook; the
  /// dropped count lands in result_cache_invalidations.
  int64_t InvalidateResults(uint64_t lineage,
                            std::optional<uint32_t> version = std::nullopt);

 private:
  /// Compile-or-cache; sets *was_cache_hit (if non-null) to whether the
  /// plan was already resident.
  Result<std::shared_ptr<const CompiledQuery>> CompileInternal(
      const std::string& regex, Semantics semantics, bool* was_cache_hit);

  /// Serial phase 1 shared by EvaluateBatch/EvaluateDifferential:
  /// compiles each distinct (regex, semantics) once, skipping requests
  /// that carry a precompiled query. first_compile[i] marks the request
  /// that pays the compile, so per-instance attribution matches what
  /// sequential Evaluate calls would report.
  struct PlanSlot {
    Result<std::shared_ptr<const CompiledQuery>> compiled{nullptr};
    bool was_resident = false;
  };
  std::map<std::pair<std::string, Semantics>, PlanSlot> CompileDistinct(
      std::span<const ResilienceRequest> requests,
      std::vector<bool>* first_compile);

  /// Solve step shared by all entry points; applies per-request
  /// overrides, deadline, cancellation, and fixed endpoints; solves with
  /// the calling thread's SolverScratch; records into stats_.
  ResilienceResponse Execute(const CompiledQuery& query,
                             const ResilienceRequest& request, bool cache_hit,
                             double compile_micros);

  /// The exact reference solve + judging for one differential request;
  /// fills response->differential.
  void RunReference(const CompiledQuery& query,
                    const ResilienceRequest& request,
                    ResilienceResponse* response);

  void RecordInstance(const ResilienceResponse& response);

  EngineOptions options_;
  PlanCache cache_;
  ResultCache result_cache_;
  mutable std::mutex stats_mu_;
  EngineStats stats_;
  /// Declared last on purpose: ~ThreadPool drains still-queued Submit
  /// tasks, which touch cache_/stats_mu_/stats_ — everything they use
  /// must be destroyed after the pool.
  ThreadPool pool_;
};

}  // namespace rpqres

#endif  // RPQRES_ENGINE_ENGINE_H_
