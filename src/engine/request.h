// rpqres — engine/request: the serving API v2 request/response surface.
//
// The paper's headline tractability results hold *per database*: a query
// compiled once (parse → minimal DFA → Figure 1 classification → solver
// plan) is polynomial-time executable against any number of databases.
// The v2 API is shaped around exactly that: a ResilienceRequest names a
// query (by regex text, resolved through the engine's plan cache, or by a
// precompiled CompiledQuery handle) and a database (a DbHandle from the
// DbRegistry — owned immutable snapshot plus per-label index, replacing
// v1's borrowed raw pointer), plus per-request overrides:
//
//   * method            — force one solver (the VCSP view: the same
//                         instance can route to algorithms of wildly
//                         different complexity; callers may pin one)
//   * allow_exponential — refuse the exact fallback for this request
//   * max_exact_search_nodes — per-request branch & bound budget
//   * deadline / cancel — wall-clock deadline and cooperative
//                         cancellation, polled inside the exact solver
//
// One ResilienceResponse type covers every entry point: plain runs fill
// status/result/stats, differential runs additionally fill the
// `differential` section.

#ifndef RPQRES_ENGINE_REQUEST_H_
#define RPQRES_ENGINE_REQUEST_H_

#include <chrono>
#include <memory>
#include <optional>
#include <string>

#include "engine/compiled_query.h"
#include "engine/db_registry.h"
#include "engine/engine_stats.h"
#include "graphdb/graph_db.h"
#include "obs/trace.h"
#include "resilience/resilience.h"
#include "resilience/result.h"
#include "util/cancel.h"
#include "util/status.h"

namespace rpqres {

/// Per-request overrides. Every unset optional falls back to the engine's
/// EngineOptions default, so a default-constructed RequestOptions is
/// exactly the v1 behavior.
struct RequestOptions {
  /// Force a specific solver instead of the compiled kAuto plan.
  /// kAuto (or unset) = execute the plan. Forcing a polynomial method on
  /// a language outside its class fails with FailedPrecondition, same as
  /// the direct solver entry points.
  std::optional<ResilienceMethod> method;
  /// Whether this request may fall back to the exponential exact solver.
  std::optional<bool> allow_exponential;
  /// Branch & bound node budget when the exact solver runs (OutOfRange
  /// when exhausted).
  std::optional<uint64_t> max_exact_search_nodes;
  /// Wall-clock deadline. Checked before solving and polled periodically
  /// inside the exact branch & bound; a request past its deadline fails
  /// with DeadlineExceeded.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Optional caller-held cancellation token (shared with the caller,
  /// who may RequestCancel() at any time → the request fails with
  /// Cancelled). Composes with `deadline`.
  std::shared_ptr<CancelToken> cancel;
  /// Caller-owned span sink. When set, the engine records this request's
  /// trace spans (request, resolve, result-cache lookup, solve, product
  /// prune, flow build, Dinic, cut extraction, exact search, ...) into it
  /// instead of an internal per-request context, so the caller can
  /// inspect the span tree after the response returns. Must outlive the
  /// request (beware Submit: the solve is asynchronous). Overrides
  /// EngineOptions::enable_tracing for this request.
  obs::TraceContext* trace = nullptr;
};

/// One unit of serving work: evaluate RES(Q, db) under `semantics`.
struct ResilienceRequest {
  /// The query as regex text, compiled through (or fetched from) the
  /// engine's plan cache. Ignored when `query` is set.
  std::string regex;
  /// Precompiled query handle (from ResilienceEngine::Compile or
  /// CompileQuery); takes precedence over `regex`, and its compiled-in
  /// semantics takes precedence over `semantics` below.
  std::shared_ptr<const CompiledQuery> query;
  /// The database, as a DbRegistry handle. Invalid handles fail with
  /// InvalidArgument (unless `db_ref` resolves one below).
  DbHandle db;
  /// Name-based database resolution (registry v3): when `db` is invalid
  /// and both fields here are set, the engine resolves
  /// "lineage", "lineage@latest", or "lineage@<version>" against
  /// `registry` at execution time — so a queued request against
  /// "orders@latest" sees whatever version is latest when it actually
  /// runs. Resolution failures surface as the response status.
  std::string db_ref;
  const DbRegistry* registry = nullptr;
  Semantics semantics = Semantics::kSet;
  /// Fixed-endpoint resilience (non-Boolean extension, Thm 3.13 ext):
  /// when set, RES is the minimum cost to remove every L-walk from
  /// `source` to `target` (node ids of `db`) instead of every L-walk
  /// anywhere. Both must be set together (InvalidArgument otherwise).
  /// Requires the query language *itself* to be local — IF-rewriting is
  /// unsound with fixed endpoints, so non-local languages fail with
  /// FailedPrecondition. Differential runs use the endpoint-pinned
  /// brute force as the reference on databases up to
  /// EngineOptions::fixed_endpoint_reference_max_facts facts, and judge
  /// larger instances inconclusive.
  std::optional<NodeId> source;
  std::optional<NodeId> target;
  RequestOptions options;
};

/// The unified response: every entry point fills status/result/stats; the
/// differential entry points additionally fill `differential`.
struct ResilienceResponse {
  /// OK iff `result` holds an answer. Notable codes: InvalidArgument
  /// (no database / bad regex), DeadlineExceeded, Cancelled, OutOfRange
  /// (exact budget exhausted), Unimplemented (exponential fallback
  /// disallowed).
  Status status;
  ResilienceResult result;
  /// Always filled as far as execution got (classification, timings...).
  InstanceStats stats;

  /// Second opinion + verdict, present iff the request ran differentially
  /// (EvaluateDifferential).
  struct Differential {
    /// The independent exact reference solve.
    Status reference_status;
    ResilienceResult reference_result;
    InstanceStats reference_stats;
    /// Matching values/infiniteness AND both witnesses verified.
    bool agree = false;
    /// A side ran out of budget/deadline: no refutable answer, neither
    /// agreement nor mismatch (`agree` false, `mismatch` empty).
    bool inconclusive = false;
    /// One-line divergence description, empty iff agree or inconclusive.
    std::string mismatch;
  };
  std::optional<Differential> differential;
};

/// Fills `response->differential` (creating it if absent) from the
/// primary and reference results plus witness verification against
/// (lang, db, semantics). Both-errored pairs agree iff the status codes
/// match; budget/deadline exhaustion on either side is inconclusive.
/// Exposed so the workload oracle's counterexample minimizer can re-judge
/// shrunken databases outside the engine.
void JudgeDifferential(const Language& lang, const GraphDb& db,
                       Semantics semantics, ResilienceResponse* response);

/// Endpoint-pinned judging for fixed-endpoint requests: identical
/// verdict logic, but witnesses are verified against the (source, target)
/// query (VerifyResilienceResultBetween).
void JudgeDifferentialBetween(const Language& lang, const GraphDb& db,
                              NodeId source, NodeId target,
                              Semantics semantics,
                              ResilienceResponse* response);

}  // namespace rpqres

#endif  // RPQRES_ENGINE_REQUEST_H_
