// rpqres — storage/journal: the per-lineage delta journal.
//
// Delta commits are tiny next to their base snapshot, so persisting each
// one as a full segment would turn an O(|delta|) commit into an O(|db|)
// write. Instead every lineage pairs its base segment with an
// append-only journal of the commits applied on top of it:
//
//   file   := header record*                 (all integers little-endian)
//   header := magic "RPQJRN01", u64 lineage id
//   record := u32 payload_len, u64 XXH64(payload), payload
//
// A committed delta is one contiguous *group* of records —
// Begin(parent_version), the AddNode/AddFact/RemoveFact operations in
// order, Commit(version, snapshot_id) — appended with a single write()
// and fsync'ed before the commit publishes. Version drops append a
// standalone DropVersion record. Replaying the journal over the base
// segment reproduces every surviving version bit for bit.
//
// Torn-tail rule (crash recovery): a reader scans records until the
// first truncated or checksum-failing record and ignores everything
// from there on; a trailing group whose Commit record did not survive is
// rolled back to its Begin offset. Recovery therefore always lands on
// the last fully committed version, never a torn one. The writer
// physically truncates the tail before appending again.

#ifndef RPQRES_STORAGE_JOURNAL_H_
#define RPQRES_STORAGE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graphdb/graph_db.h"
#include "util/status.h"

namespace rpqres {
namespace storage {

/// One journaled operation. Which fields are meaningful depends on type.
struct JournalOp {
  enum class Type : uint8_t {
    kBegin = 1,        // parent_version
    kAddNode = 2,      // name (the resolved display name)
    kAddFact = 3,      // source, label, target, multiplicity
    kRemoveFact = 4,   // source, label, target
    kCommit = 5,       // version, snapshot_id
    kDropVersion = 6,  // version
  };

  Type type = Type::kBegin;
  uint32_t version = 0;      // kBegin: parent; kCommit/kDropVersion: subject
  uint64_t snapshot_id = 0;  // kCommit
  NodeId source = 0;         // kAddFact / kRemoveFact
  NodeId target = 0;
  char label = '\0';
  Capacity multiplicity = 1;  // kAddFact
  std::string name;           // kAddNode
};

/// One fully committed journal group (or a standalone version drop),
/// decoded by ReadJournal.
struct JournalGroup {
  bool is_drop = false;
  uint32_t drop_version = 0;    // when is_drop
  uint32_t parent_version = 0;  // otherwise
  uint32_t commit_version = 0;
  uint64_t snapshot_id = 0;
  std::vector<JournalOp> ops;  // kAddNode / kAddFact / kRemoveFact only
};

/// Everything ReadJournal recovered from one journal file.
struct JournalContents {
  uint64_t lineage = 0;
  std::vector<JournalGroup> groups;  // commits and drops, in append order
  /// File offset where the valid prefix ends — the torn tail (if any)
  /// starts here. A writer reopening the journal truncates to this.
  int64_t valid_bytes = 0;
  int64_t records = 0;  ///< records in the valid prefix
};

/// Append-only journal writer for one lineage. Not thread-safe; the
/// registry serializes appends under its own lock.
class JournalWriter {
 public:
  JournalWriter() = default;
  JournalWriter(JournalWriter&& other) noexcept { *this = std::move(other); }
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens (creating if absent) the journal at `path`, positioned at
  /// `append_at` — pass the recovered valid_bytes to chop a torn tail,
  /// or -1 to append at the current end (fresh files get just the
  /// header). An existing file's header must match `lineage`.
  /// `initial_records` seeds records() (pass JournalContents::records
  /// when reopening after recovery).
  static Result<JournalWriter> Open(const std::string& path, uint64_t lineage,
                                    int64_t append_at = -1,
                                    int64_t initial_records = 0);

  /// Appends `ops` as one contiguous group in a single write, then
  /// fsyncs. The caller supplies the full Begin..Commit framing (or a
  /// single DropVersion).
  Status Append(const std::vector<JournalOp>& ops);

  /// Truncates the journal back to just its header (after a compaction
  /// folded the journal into a fresh base segment) and fsyncs.
  Status Reset();

  bool open() const { return fd_ >= 0; }
  int64_t bytes() const { return bytes_; }
  int64_t records() const { return records_; }

 private:
  int fd_ = -1;
  std::string path_;
  int64_t bytes_ = 0;
  int64_t records_ = 0;
};

/// Reads and validates the journal at `path`, applying the torn-tail
/// rule. `expected_lineage` guards against a journal paired with the
/// wrong segment; corruption of the header is kDataLoss, while a torn or
/// corrupt *tail* is not an error (that is the crash-recovery contract —
/// the tail is simply cut).
Result<JournalContents> ReadJournal(const std::string& path,
                                    uint64_t expected_lineage);

}  // namespace storage
}  // namespace rpqres

#endif  // RPQRES_STORAGE_JOURNAL_H_
