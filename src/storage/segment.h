// rpqres — storage/segment: the on-disk snapshot segment format.
//
// One segment file holds one *flat* database snapshot — the node table,
// name dictionary, dense fact arrays, and the per-(label, node) CSR
// spans of its LabelIndex — in exactly the little-endian layouts the
// in-memory flat structures use, in the spirit of RDF-3X's paged fact /
// dictionary segments. Because the byte layout matches the memory
// layout, SegmentReader can mmap the file and hand the arrays to
// GraphDb::FromMappedFlat / LabelIndex::FromMapped with zero parse and
// no copy of the fact arrays; only the node-name dictionary is
// materialized.
//
// File layout (all integers little-endian):
//
//   [0,  64)  header: magic "RPQSEG01", format version, section count,
//             lineage / version / snapshot id, node and fact counts,
//             XXH64 of the section table, XXH64 of the header itself.
//   [64, ..)  section table: one 32-byte entry per section
//             {kind, offset, size, XXH64 checksum}.
//   ...       sections, each 64-byte aligned, zero-padded between.
//
// Torn or corrupt files are detected by the checksums and reported as
// kDataLoss; a segment is only ever published via temp file + fsync +
// atomic rename, so a crash mid-write leaves the previous segment (or
// nothing) in place, never a half-written one.

#ifndef RPQRES_STORAGE_SEGMENT_H_
#define RPQRES_STORAGE_SEGMENT_H_

#include <cstdint>
#include <string>

#include "graphdb/graph_db.h"
#include "graphdb/label_index.h"
#include "util/status.h"

namespace rpqres {
namespace storage {

/// Registry identity of the snapshot a segment stores.
struct SegmentMeta {
  uint64_t lineage = 0;
  uint32_t version = 1;
  uint64_t snapshot_id = 0;
  std::string name;  ///< lineage display name ("" when unnamed)
};

/// A segment opened by ReadSegment: a mapped GraphDb + LabelIndex view
/// over the file's arrays (both keep the mapping alive), plus the
/// snapshot identity and the mapped size.
struct LoadedSegment {
  GraphDb db;
  LabelIndex label_index;
  SegmentMeta meta;
  int64_t file_bytes = 0;
};

/// Serializes the flat, all-live database `db` (and the per-label CSR
/// arrays equivalent to its LabelIndex) to `path` via temp file + fsync +
/// atomic rename. `db` must not be versioned or mapped-overlay state —
/// compact first. On success `*bytes_written` (optional) receives the
/// final file size.
Status WriteSegment(const std::string& path, const GraphDb& db,
                    const SegmentMeta& meta, int64_t* bytes_written = nullptr);

/// Maps the segment at `path` and returns a zero-copy view of it.
/// Validates magic, format version, section table, and every section
/// checksum; corruption or truncation yields kDataLoss.
Result<LoadedSegment> ReadSegment(const std::string& path);

}  // namespace storage
}  // namespace rpqres

#endif  // RPQRES_STORAGE_SEGMENT_H_
