// rpqres — storage/xxhash64: XXH64 checksum for segment and journal
// integrity.
//
// A faithful, dependency-free implementation of the XXH64 algorithm
// (Yann Collet's xxHash, BSD-licensed reference at
// github.com/Cyan4973/xxHash). Segments checksum every section and the
// journal checksums every record with it; the implementation must stay
// bit-identical to the spec so files survive toolchain changes.

#ifndef RPQRES_STORAGE_XXHASH64_H_
#define RPQRES_STORAGE_XXHASH64_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace rpqres {
namespace storage {

namespace xxhash_internal {

inline constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;
inline constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline uint64_t RotL(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline uint64_t Read64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian hosts only (segment format is LE)
}

inline uint32_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = RotL(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  acc ^= Round(0, val);
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

}  // namespace xxhash_internal

/// XXH64 of `len` bytes at `data` with the given seed.
inline uint64_t XxHash64(const void* data, size_t len, uint64_t seed = 0) {
  using namespace xxhash_internal;  // NOLINT(build/namespaces)
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* const end = p + len;
  uint64_t h;

  if (len >= 32) {
    const uint8_t* const limit = end - 32;
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed + 0;
    uint64_t v4 = seed - kPrime1;
    do {
      v1 = Round(v1, Read64(p)), p += 8;
      v2 = Round(v2, Read64(p)), p += 8;
      v3 = Round(v3, Read64(p)), p += 8;
      v4 = Round(v4, Read64(p)), p += 8;
    } while (p <= limit);
    h = RotL(v1, 1) + RotL(v2, 7) + RotL(v3, 12) + RotL(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(len);

  while (p + 8 <= end) {
    h ^= Round(0, Read64(p));
    h = RotL(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Read32(p)) * kPrime1;
    h = RotL(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= (*p) * kPrime5;
    h = RotL(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace storage
}  // namespace rpqres

#endif  // RPQRES_STORAGE_XXHASH64_H_
