#include "storage/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <cstddef>
#include <cstring>
#include <memory>
#include <numeric>
#include <tuple>
#include <utility>
#include <vector>

#include "fault/failpoints.h"
#include "storage/xxhash64.h"
#include "util/check.h"

namespace rpqres {
namespace storage {
namespace {

// The segment format *is* the in-memory layout, little-endian. Refuse to
// compile anywhere that would silently break it.
static_assert(std::endian::native == std::endian::little,
              "segment format requires a little-endian host");
static_assert(sizeof(Fact) == 12, "Fact must be 12 bytes on disk");
static_assert(offsetof(Fact, source) == 0);
static_assert(offsetof(Fact, label) == 4);
static_assert(offsetof(Fact, target) == 8);
static_assert(sizeof(Capacity) == 8);
static_assert(sizeof(FactId) == 4);

constexpr char kMagic[8] = {'R', 'P', 'Q', 'S', 'E', 'G', '0', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderBytes = 64;
constexpr size_t kTableEntryBytes = 32;
constexpr size_t kSectionAlign = 64;

enum SectionKind : uint32_t {
  kMeta = 1,             // u32 name_len + name bytes
  kNodeNameOffsets = 2,  // (num_nodes + 1) * u32 into the name heap
  kNodeNameHeap = 3,     // concatenated name bytes
  kFacts = 4,            // num_facts * 12-byte Fact records
  kMultiplicities = 5,   // num_facts * i64
  kExogenous = 6,        // num_facts * u8 (0/1)
  kOutOffset = 7,        // (num_nodes + 1) * i32 CSR offsets
  kOutAdj = 8,           // num_facts * i32
  kInOffset = 9,         // (num_nodes + 1) * i32
  kInAdj = 10,           // num_facts * i32
  kSortedByKey = 11,     // num_facts * i32, sorted by (source, label, target)
  kLabelDir = 12,        // per label: u32 label byte, u32 fact count
  kLabelFacts = 13,      // concatenated per-label fact lists, i32
  kLabelBySource = 14,   // concatenated per-label source-CSR adjacency, i32
  kLabelSourceOffset = 15,  // per label: (num_nodes + 1) * i32
  kLabelByTarget = 16,   // concatenated per-label target-CSR adjacency, i32
  kLabelTargetOffset = 17,  // per label: (num_nodes + 1) * i32
};
constexpr uint32_t kSectionCount = 17;

size_t AlignUp(size_t n) {
  return (n + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

void PutU32(std::vector<uint8_t>* buf, uint32_t v) {
  const size_t at = buf->size();
  buf->resize(at + sizeof(v));
  std::memcpy(buf->data() + at, &v, sizeof(v));
}

void PutI32(std::vector<uint8_t>* buf, int32_t v) {
  PutU32(buf, static_cast<uint32_t>(v));
}

void PutI64(std::vector<uint8_t>* buf, int64_t v) {
  const size_t at = buf->size();
  buf->resize(at + sizeof(v));
  std::memcpy(buf->data() + at, &v, sizeof(v));
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  const int err = errno;
  std::string msg = what + " '" + path + "': " + std::strerror(err);
  // Media-full / I/O-class errors are transient from the registry's point
  // of view: WriteSegment rewrites the whole temp file on every attempt,
  // so a later clean pass is fully durable and retry-with-backoff is
  // sound. Anything else is an environment or programming error.
  if (err == EIO || err == ENOSPC || err == EDQUOT || err == EAGAIN ||
      err == ENOMEM) {
    return Status::Unavailable(std::move(msg));
  }
  return Status::Internal(std::move(msg));
}

/// An open mmap'ed file; the shared_ptr deleter unmaps it.
struct Mapping {
  const uint8_t* data = nullptr;
  size_t size = 0;

  ~Mapping() {
    if (data != nullptr) {
      ::munmap(const_cast<uint8_t*>(data), size);
    }
  }
};

}  // namespace

Status WriteSegment(const std::string& path, const GraphDb& db,
                    const SegmentMeta& meta, int64_t* bytes_written) {
  if (db.is_versioned()) {
    return Status::InvalidArgument(
        "WriteSegment: database must be flat (Compact() an overlay first)");
  }
  if (db.num_live_facts() != db.num_facts()) {
    return Status::InvalidArgument(
        "WriteSegment: database must be all-live");
  }
  const int num_nodes = db.num_nodes();
  const int num_facts = db.num_facts();

  // --- build every section payload in memory ------------------------------
  std::array<std::vector<uint8_t>, kSectionCount> sections;
  auto section = [&sections](SectionKind kind) -> std::vector<uint8_t>* {
    return &sections[kind - 1];
  };

  {
    std::vector<uint8_t>* s = section(kMeta);
    PutU32(s, static_cast<uint32_t>(meta.name.size()));
    s->insert(s->end(), meta.name.begin(), meta.name.end());
  }
  {
    std::vector<uint8_t>* offs = section(kNodeNameOffsets);
    std::vector<uint8_t>* heap = section(kNodeNameHeap);
    uint32_t at = 0;
    PutU32(offs, 0);
    for (NodeId v = 0; v < num_nodes; ++v) {
      const std::string& name = db.node_name(v);
      heap->insert(heap->end(), name.begin(), name.end());
      at += static_cast<uint32_t>(name.size());
      PutU32(offs, at);
    }
  }
  {
    // Facts are written field by field into zeroed records so the three
    // padding bytes are deterministic (they feed the section checksum).
    std::vector<uint8_t>* s = section(kFacts);
    s->assign(static_cast<size_t>(num_facts) * sizeof(Fact), 0);
    for (FactId f = 0; f < num_facts; ++f) {
      uint8_t* rec = s->data() + static_cast<size_t>(f) * sizeof(Fact);
      const Fact& fact = db.fact(f);
      std::memcpy(rec + offsetof(Fact, source), &fact.source,
                  sizeof(fact.source));
      rec[offsetof(Fact, label)] = static_cast<uint8_t>(fact.label);
      std::memcpy(rec + offsetof(Fact, target), &fact.target,
                  sizeof(fact.target));
    }
  }
  {
    std::vector<uint8_t>* mult = section(kMultiplicities);
    std::vector<uint8_t>* exo = section(kExogenous);
    for (FactId f = 0; f < num_facts; ++f) {
      PutI64(mult, db.multiplicity(f));
      exo->push_back(db.IsExogenous(f) ? 1 : 0);
    }
  }
  {
    std::vector<uint8_t>* out_off = section(kOutOffset);
    std::vector<uint8_t>* out_adj = section(kOutAdj);
    std::vector<uint8_t>* in_off = section(kInOffset);
    std::vector<uint8_t>* in_adj = section(kInAdj);
    int32_t out_at = 0, in_at = 0;
    PutI32(out_off, 0);
    PutI32(in_off, 0);
    for (NodeId v = 0; v < num_nodes; ++v) {
      for (FactId f : db.OutFacts(v)) PutI32(out_adj, f);
      out_at += static_cast<int32_t>(db.OutFacts(v).size());
      PutI32(out_off, out_at);
      for (FactId f : db.InFacts(v)) PutI32(in_adj, f);
      in_at += static_cast<int32_t>(db.InFacts(v).size());
      PutI32(in_off, in_at);
    }
  }
  {
    // FindFact on a mapped database binary-searches this permutation.
    std::vector<FactId> perm(num_facts);
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(), [&db](FactId a, FactId b) {
      const Fact& fa = db.fact(a);
      const Fact& fb = db.fact(b);
      return std::make_tuple(fa.source, fa.label, fa.target) <
             std::make_tuple(fb.source, fb.label, fb.target);
    });
    std::vector<uint8_t>* s = section(kSortedByKey);
    for (FactId f : perm) PutI32(s, f);
  }
  {
    // Per-label CSR arrays, built with the same counting sort as
    // LabelIndex::BuildEntry so a reopened index answers identically to
    // the one built in memory at Register time.
    std::array<std::vector<FactId>, 256> facts_by_label;
    for (FactId f = 0; f < num_facts; ++f) {
      facts_by_label[static_cast<unsigned char>(db.fact(f).label)]
          .push_back(f);
    }
    std::vector<uint8_t>* dir = section(kLabelDir);
    std::vector<uint8_t>* lfacts = section(kLabelFacts);
    std::vector<uint8_t>* by_src = section(kLabelBySource);
    std::vector<uint8_t>* src_off = section(kLabelSourceOffset);
    std::vector<uint8_t>* by_tgt = section(kLabelByTarget);
    std::vector<uint8_t>* tgt_off = section(kLabelTargetOffset);
    for (int l = 0; l < 256; ++l) {
      const std::vector<FactId>& facts = facts_by_label[l];
      if (facts.empty()) continue;
      PutU32(dir, static_cast<uint32_t>(l));
      PutU32(dir, static_cast<uint32_t>(facts.size()));
      for (FactId f : facts) PutI32(lfacts, f);
      std::vector<int32_t> soff(num_nodes + 1, 0), toff(num_nodes + 1, 0);
      for (FactId f : facts) {
        ++soff[db.fact(f).source + 1];
        ++toff[db.fact(f).target + 1];
      }
      for (int v = 0; v < num_nodes; ++v) {
        soff[v + 1] += soff[v];
        toff[v + 1] += toff[v];
      }
      std::vector<FactId> bs(facts.size()), bt(facts.size());
      std::vector<int32_t> sc(soff.begin(), soff.end() - 1);
      std::vector<int32_t> tc(toff.begin(), toff.end() - 1);
      for (FactId f : facts) {
        bs[sc[db.fact(f).source]++] = f;
        bt[tc[db.fact(f).target]++] = f;
      }
      for (FactId f : bs) PutI32(by_src, f);
      for (int32_t v : soff) PutI32(src_off, v);
      for (FactId f : bt) PutI32(by_tgt, f);
      for (int32_t v : toff) PutI32(tgt_off, v);
    }
  }

  // --- assemble the file ---------------------------------------------------
  const size_t table_at = kHeaderBytes;
  size_t payload_at = AlignUp(table_at + kSectionCount * kTableEntryBytes);
  std::vector<uint8_t> table;
  table.reserve(kSectionCount * kTableEntryBytes);
  std::vector<size_t> offsets(kSectionCount);
  for (uint32_t k = 0; k < kSectionCount; ++k) {
    const std::vector<uint8_t>& body = sections[k];
    offsets[k] = payload_at;
    PutU32(&table, k + 1);  // kind
    PutU32(&table, 0);      // reserved
    PutI64(&table, static_cast<int64_t>(payload_at));
    PutI64(&table, static_cast<int64_t>(body.size()));
    PutI64(&table,
           static_cast<int64_t>(XxHash64(body.data(), body.size())));
    payload_at = AlignUp(payload_at + body.size());
  }

  std::vector<uint8_t> file(payload_at, 0);
  std::memcpy(file.data(), kMagic, sizeof(kMagic));
  auto put_at = [&file](size_t at, const void* src, size_t n) {
    std::memcpy(file.data() + at, src, n);
  };
  const uint32_t format_version = kFormatVersion;
  const uint32_t section_count = kSectionCount;
  const uint32_t version = meta.version;
  const uint32_t num_nodes_u = static_cast<uint32_t>(num_nodes);
  const uint32_t num_facts_u = static_cast<uint32_t>(num_facts);
  const uint32_t reserved = 0;
  put_at(8, &format_version, 4);
  put_at(12, &section_count, 4);
  put_at(16, &meta.lineage, 8);
  put_at(24, &version, 4);
  put_at(28, &num_nodes_u, 4);
  put_at(32, &num_facts_u, 4);
  put_at(36, &reserved, 4);
  put_at(40, &meta.snapshot_id, 8);
  const uint64_t table_checksum = XxHash64(table.data(), table.size());
  put_at(48, &table_checksum, 8);
  const uint64_t header_checksum = XxHash64(file.data(), 56);
  put_at(56, &header_checksum, 8);
  put_at(table_at, table.data(), table.size());
  for (uint32_t k = 0; k < kSectionCount; ++k) {
    put_at(offsets[k], sections[k].data(), sections[k].size());
  }

  // --- temp file + fsync + atomic rename ----------------------------------
  const std::string tmp_path = path + ".tmp";
  int fd = fault::Open(fault::sites::kSegmentOpen, tmp_path.c_str(),
                       O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("WriteSegment: cannot create", tmp_path);
  size_t written = 0;
  while (written < file.size()) {
    ssize_t n = fault::Write(fault::sites::kSegmentWrite,
                             fd, file.data() + written,
                             file.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);  // invariant-ok: error-path cleanup, write already failed
      ::unlink(tmp_path.c_str());
      return ErrnoStatus("WriteSegment: write failed for", tmp_path);
    }
    written += static_cast<size_t>(n);
  }
  if (fault::Fsync(fault::sites::kSegmentFsync, fd) != 0) {
    ::close(fd);  // invariant-ok: error-path cleanup, fsync already failed
    ::unlink(tmp_path.c_str());
    return ErrnoStatus("WriteSegment: fsync failed for", tmp_path);
  }
  // close() can surface deferred write-back errors; a segment that failed
  // to close is not known durable.
  if (fault::Close(fault::sites::kSegmentClose, fd) != 0) {
    ::unlink(tmp_path.c_str());
    return ErrnoStatus("WriteSegment: close failed for", tmp_path);
  }
  if (fault::Rename(fault::sites::kSegmentRename, tmp_path.c_str(),
                    path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return ErrnoStatus("WriteSegment: rename failed for", path);
  }
  // fsync the directory so the rename itself is durable. Opening the
  // directory stays best-effort (exotic filesystems), but once open, a
  // failed fsync means the rename's durability is unknown — surface it;
  // a retry reruns the whole (idempotent) temp-write + rename.
  const size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  // invariant-ok(storage-raw-syscall): best-effort directory open — some
  // filesystems refuse O_DIRECTORY opens; the injectable durability step
  // is the fsync below, which does go through its failpoint site.
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    if (fault::Fsync(fault::sites::kSegmentDirFsync, dfd) != 0) {
      ::close(dfd);  // invariant-ok: error-path cleanup, fsync already failed
      return ErrnoStatus("WriteSegment: directory fsync failed for", dir);
    }
    ::close(dfd);  // invariant-ok: read-only directory fd
  }
  if (bytes_written != nullptr) {
    *bytes_written = static_cast<int64_t>(file.size());
  }
  return Status::OK();
}

Result<LoadedSegment> ReadSegment(const std::string& path) {
  // invariant-ok(storage-raw-syscall): read path — the injectable read
  // failure mode is the mmap below, which goes through its site.
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("ReadSegment: cannot open '" + path + "': " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);  // invariant-ok: read-path cleanup
    return ErrnoStatus("ReadSegment: fstat failed for", path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);  // invariant-ok: read-path cleanup
    return Status::DataLoss("ReadSegment: '" + path + "' is truncated (" +
                            std::to_string(size) + " bytes)");
  }
  void* addr = fault::Mmap(fault::sites::kSegmentMmap, nullptr, size,
                           PROT_READ, MAP_PRIVATE, fd, 0);
  // invariant-ok(storage-raw-syscall): the mapping keeps the file
  // referenced; closing a read-only fd has no durability consequence.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return ErrnoStatus("ReadSegment: mmap failed for", path);
  }
  auto mapping = std::make_shared<Mapping>();
  mapping->data = static_cast<const uint8_t*>(addr);
  mapping->size = size;
  // Fault the pages in up front: segments are read hot immediately after
  // open (restore then serve), and eager read-ahead keeps page-fault
  // timing out of query latencies — and out of sanitizer/CI runs, where
  // lazy major faults would make mmap-backed tests nondeterministic.
  ::madvise(addr, size, MADV_WILLNEED);

  const uint8_t* base = mapping->data;
  auto data_loss = [&path](const std::string& why) {
    return Status::DataLoss("ReadSegment: '" + path + "': " + why);
  };
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    return data_loss("bad magic (not a segment file)");
  }
  auto read_u32 = [base](size_t at) {
    uint32_t v;
    std::memcpy(&v, base + at, 4);
    return v;
  };
  auto read_u64 = [base](size_t at) {
    uint64_t v;
    std::memcpy(&v, base + at, 8);
    return v;
  };
  if (read_u32(8) != kFormatVersion) {
    return data_loss("unsupported format version " +
                     std::to_string(read_u32(8)));
  }
  if (read_u64(56) != XxHash64(base, 56)) {
    return data_loss("header checksum mismatch");
  }
  const uint32_t section_count = read_u32(12);
  if (section_count != kSectionCount) {
    return data_loss("unexpected section count " +
                     std::to_string(section_count));
  }
  const size_t table_bytes = section_count * kTableEntryBytes;
  if (kHeaderBytes + table_bytes > size) {
    return data_loss("section table past end of file");
  }
  if (read_u64(48) != XxHash64(base + kHeaderBytes, table_bytes)) {
    return data_loss("section table checksum mismatch");
  }

  SegmentMeta meta;
  meta.lineage = read_u64(16);
  meta.version = read_u32(24);
  meta.snapshot_id = read_u64(40);
  const uint32_t num_nodes = read_u32(28);
  const uint32_t num_facts = read_u32(32);

  struct Section {
    size_t offset = 0;
    size_t size = 0;
  };
  std::array<Section, kSectionCount> secs;
  for (uint32_t i = 0; i < section_count; ++i) {
    const size_t at = kHeaderBytes + i * kTableEntryBytes;
    const uint32_t kind = read_u32(at);
    if (kind < 1 || kind > kSectionCount) {
      return data_loss("unknown section kind " + std::to_string(kind));
    }
    Section& s = secs[kind - 1];
    s.offset = static_cast<size_t>(read_u64(at + 8));
    s.size = static_cast<size_t>(read_u64(at + 16));
    if (s.offset > size || s.size > size - s.offset) {
      return data_loss("section " + std::to_string(kind) +
                       " past end of file");
    }
    if (read_u64(at + 24) != XxHash64(base + s.offset, s.size)) {
      return data_loss("section " + std::to_string(kind) +
                       " checksum mismatch");
    }
  }
  // The checksums cover header, table, and every section; the only bytes
  // left are alignment padding, which WriteSegment zeroes. Verifying they
  // are still zero makes corruption detection total — any flipped byte in
  // the file is caught.
  {
    std::vector<std::pair<size_t, size_t>> covered;
    covered.reserve(kSectionCount + 1);
    covered.emplace_back(0, kHeaderBytes + table_bytes);
    for (const Section& s : secs) covered.emplace_back(s.offset, s.size);
    std::sort(covered.begin(), covered.end());
    size_t at = 0;
    for (const auto& [offset, length] : covered) {
      for (size_t pad = at; pad < offset; ++pad) {
        if (base[pad] != 0) {
          return data_loss("nonzero padding byte at offset " +
                           std::to_string(pad));
        }
      }
      at = std::max(at, offset + length);
    }
    for (size_t pad = at; pad < size; ++pad) {
      if (base[pad] != 0) {
        return data_loss("nonzero padding byte at offset " +
                         std::to_string(pad));
      }
    }
  }
  auto sec = [&secs](SectionKind kind) -> const Section& {
    return secs[kind - 1];
  };
  auto expect_size = [&](SectionKind kind, size_t want) -> Status {
    if (sec(kind).size != want) {
      return data_loss("section " + std::to_string(kind) + " has " +
                       std::to_string(sec(kind).size) + " bytes, want " +
                       std::to_string(want));
    }
    return Status::OK();
  };
  RPQRES_RETURN_IF_ERROR(
      expect_size(kNodeNameOffsets, (num_nodes + 1) * 4ul));
  RPQRES_RETURN_IF_ERROR(expect_size(kFacts, num_facts * sizeof(Fact)));
  RPQRES_RETURN_IF_ERROR(expect_size(kMultiplicities, num_facts * 8ul));
  RPQRES_RETURN_IF_ERROR(expect_size(kExogenous, num_facts * 1ul));
  RPQRES_RETURN_IF_ERROR(expect_size(kOutOffset, (num_nodes + 1) * 4ul));
  RPQRES_RETURN_IF_ERROR(expect_size(kOutAdj, num_facts * 4ul));
  RPQRES_RETURN_IF_ERROR(expect_size(kInOffset, (num_nodes + 1) * 4ul));
  RPQRES_RETURN_IF_ERROR(expect_size(kInAdj, num_facts * 4ul));
  RPQRES_RETURN_IF_ERROR(expect_size(kSortedByKey, num_facts * 4ul));

  {
    const Section& m = sec(kMeta);
    if (m.size < 4) return data_loss("meta section too small");
    uint32_t name_len;
    std::memcpy(&name_len, base + m.offset, 4);
    if (name_len > m.size - 4) return data_loss("meta name overflows section");
    meta.name.assign(reinterpret_cast<const char*>(base + m.offset + 4),
                     name_len);
  }

  // Node names are the one materialized piece of state.
  std::vector<std::string> node_names;
  node_names.reserve(num_nodes);
  {
    const uint32_t* offs =
        reinterpret_cast<const uint32_t*>(base + sec(kNodeNameOffsets).offset);
    const char* heap =
        reinterpret_cast<const char*>(base + sec(kNodeNameHeap).offset);
    const size_t heap_size = sec(kNodeNameHeap).size;
    if (offs[0] != 0 || offs[num_nodes] != heap_size) {
      return data_loss("node name offsets do not cover the heap");
    }
    for (uint32_t v = 0; v < num_nodes; ++v) {
      if (offs[v + 1] < offs[v] || offs[v + 1] > heap_size) {
        return data_loss("node name offsets not monotonic");
      }
      node_names.emplace_back(heap + offs[v], offs[v + 1] - offs[v]);
    }
  }

  auto storage = std::make_shared<MappedFlatStorage>();
  storage->facts = reinterpret_cast<const Fact*>(base + sec(kFacts).offset);
  storage->multiplicities = reinterpret_cast<const Capacity*>(
      base + sec(kMultiplicities).offset);
  storage->exogenous = base + sec(kExogenous).offset;
  storage->out_offset =
      reinterpret_cast<const int32_t*>(base + sec(kOutOffset).offset);
  storage->out_adj =
      reinterpret_cast<const FactId*>(base + sec(kOutAdj).offset);
  storage->in_offset =
      reinterpret_cast<const int32_t*>(base + sec(kInOffset).offset);
  storage->in_adj = reinterpret_cast<const FactId*>(base + sec(kInAdj).offset);
  storage->sorted_by_key =
      reinterpret_cast<const FactId*>(base + sec(kSortedByKey).offset);
  storage->num_facts = static_cast<int32_t>(num_facts);
  storage->mapping = mapping;

  // Per-label CSR views straight into the mapped sections.
  std::vector<LabelIndex::MappedLabelEntry> entries;
  {
    const Section& dir = sec(kLabelDir);
    if (dir.size % 8 != 0) return data_loss("label directory size not 8k");
    const size_t num_labels = dir.size / 8;
    const uint32_t* d = reinterpret_cast<const uint32_t*>(base + dir.offset);
    const FactId* lfacts =
        reinterpret_cast<const FactId*>(base + sec(kLabelFacts).offset);
    const FactId* by_src =
        reinterpret_cast<const FactId*>(base + sec(kLabelBySource).offset);
    const int32_t* src_off = reinterpret_cast<const int32_t*>(
        base + sec(kLabelSourceOffset).offset);
    const FactId* by_tgt =
        reinterpret_cast<const FactId*>(base + sec(kLabelByTarget).offset);
    const int32_t* tgt_off = reinterpret_cast<const int32_t*>(
        base + sec(kLabelTargetOffset).offset);
    size_t facts_at = 0;
    uint64_t total = 0;
    const size_t off_stride = num_nodes + 1;
    RPQRES_RETURN_IF_ERROR(
        expect_size(kLabelSourceOffset, num_labels * off_stride * 4));
    RPQRES_RETURN_IF_ERROR(
        expect_size(kLabelTargetOffset, num_labels * off_stride * 4));
    for (size_t i = 0; i < num_labels; ++i) {
      const uint32_t label = d[2 * i];
      const uint32_t count = d[2 * i + 1];
      if (label > 255) return data_loss("label directory byte out of range");
      total += count;
      if (total > num_facts) {
        return data_loss("label directory fact counts exceed num_facts");
      }
      LabelIndex::MappedLabelEntry e;
      e.label = static_cast<char>(label);
      e.facts = {lfacts + facts_at, count};
      e.by_source = {by_src + facts_at, count};
      e.source_offset = {src_off + i * off_stride, off_stride};
      e.by_target = {by_tgt + facts_at, count};
      e.target_offset = {tgt_off + i * off_stride, off_stride};
      entries.push_back(e);
      facts_at += count;
    }
    RPQRES_RETURN_IF_ERROR(expect_size(kLabelFacts, facts_at * 4));
    RPQRES_RETURN_IF_ERROR(expect_size(kLabelBySource, facts_at * 4));
    RPQRES_RETURN_IF_ERROR(expect_size(kLabelByTarget, facts_at * 4));
    if (total != num_facts) {
      return data_loss("label directory covers " + std::to_string(total) +
                       " facts, want " + std::to_string(num_facts));
    }
  }

  LoadedSegment out;
  out.db = GraphDb::FromMappedFlat(std::move(node_names), storage);
  out.label_index = LabelIndex::FromMapped(entries, mapping);
  out.meta = std::move(meta);
  out.file_bytes = static_cast<int64_t>(size);
  return out;
}

}  // namespace storage
}  // namespace rpqres
