#include "storage/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "fault/failpoints.h"
#include "storage/xxhash64.h"

namespace rpqres {
namespace storage {
namespace {

constexpr char kMagic[8] = {'R', 'P', 'Q', 'J', 'R', 'N', '0', '1'};
constexpr size_t kFileHeaderBytes = 16;  // magic + u64 lineage
constexpr size_t kRecordHeaderBytes = 12;  // u32 len + u64 checksum
// Sanity cap on a single record's payload; anything larger is treated as
// a torn/corrupt length field. A record holds one op (name <= 64 KiB).
constexpr uint32_t kMaxPayload = 1 << 20;

Status ErrnoStatus(const std::string& what, const std::string& path) {
  const int err = errno;
  std::string msg = what + " '" + path + "': " + std::strerror(err);
  // Media-full / I/O-class errors are transient: Append chops any torn
  // bytes back to the last good group boundary before it returns, so a
  // retried append rewrites its whole group and a later clean pass is
  // durable. Anything else is an environment or programming error.
  if (err == EIO || err == ENOSPC || err == EDQUOT || err == EAGAIN ||
      err == ENOMEM) {
    return Status::Unavailable(std::move(msg));
  }
  return Status::Internal(std::move(msg));
}

void PutBytes(std::vector<uint8_t>* buf, const void* src, size_t n) {
  const size_t at = buf->size();
  buf->resize(at + n);
  std::memcpy(buf->data() + at, src, n);
}

template <typename T>
void Put(std::vector<uint8_t>* buf, T v) {
  PutBytes(buf, &v, sizeof(v));
}

/// Serializes one op into payload bytes (without record framing).
std::vector<uint8_t> EncodeOp(const JournalOp& op) {
  std::vector<uint8_t> p;
  Put<uint8_t>(&p, static_cast<uint8_t>(op.type));
  switch (op.type) {
    case JournalOp::Type::kBegin:
    case JournalOp::Type::kDropVersion:
      Put<uint32_t>(&p, op.version);
      break;
    case JournalOp::Type::kAddNode:
      Put<uint32_t>(&p, static_cast<uint32_t>(op.name.size()));
      PutBytes(&p, op.name.data(), op.name.size());
      break;
    case JournalOp::Type::kAddFact:
      Put<int32_t>(&p, op.source);
      Put<int32_t>(&p, op.target);
      Put<uint8_t>(&p, static_cast<uint8_t>(op.label));
      Put<int64_t>(&p, op.multiplicity);
      break;
    case JournalOp::Type::kRemoveFact:
      Put<int32_t>(&p, op.source);
      Put<int32_t>(&p, op.target);
      Put<uint8_t>(&p, static_cast<uint8_t>(op.label));
      break;
    case JournalOp::Type::kCommit:
      Put<uint32_t>(&p, op.version);
      Put<uint64_t>(&p, op.snapshot_id);
      break;
  }
  return p;
}

/// Decodes one payload back into an op; false on malformed payloads
/// (which the torn-tail rule treats as end of the valid prefix).
bool DecodeOp(const uint8_t* p, size_t len, JournalOp* op) {
  if (len < 1) return false;
  size_t at = 1;
  auto take = [&](void* dst, size_t n) {
    if (at + n > len) return false;
    std::memcpy(dst, p + at, n);
    at += n;
    return true;
  };
  op->type = static_cast<JournalOp::Type>(p[0]);
  switch (op->type) {
    case JournalOp::Type::kBegin:
    case JournalOp::Type::kDropVersion:
      return take(&op->version, 4) && at == len;
    case JournalOp::Type::kAddNode: {
      uint32_t name_len = 0;
      if (!take(&name_len, 4) || at + name_len != len) return false;
      op->name.assign(reinterpret_cast<const char*>(p + at), name_len);
      return true;
    }
    case JournalOp::Type::kAddFact: {
      uint8_t label = 0;
      if (!(take(&op->source, 4) && take(&op->target, 4) &&
            take(&label, 1) && take(&op->multiplicity, 8) && at == len)) {
        return false;
      }
      op->label = static_cast<char>(label);
      return true;
    }
    case JournalOp::Type::kRemoveFact: {
      uint8_t label = 0;
      if (!(take(&op->source, 4) && take(&op->target, 4) &&
            take(&label, 1) && at == len)) {
        return false;
      }
      op->label = static_cast<char>(label);
      return true;
    }
    case JournalOp::Type::kCommit:
      return take(&op->version, 4) && take(&op->snapshot_id, 8) && at == len;
  }
  return false;
}

Status WriteAll(int fd, const uint8_t* data, size_t n,
                const std::string& path) {
  size_t written = 0;
  while (written < n) {
    ssize_t w = fault::Write(fault::sites::kJournalWrite, fd, data + written,
                             n - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("journal: write failed for", path);
    }
    written += static_cast<size_t>(w);
  }
  return Status::OK();
}

/// True iff the first `got` bytes of a journal file are consistent with a
/// header that was torn mid-write (a prefix of the magic; the lineage
/// bytes cannot be validated partially). Such files are recovered as
/// empty journals rather than rejected as corrupt.
bool IsTornHeaderPrefix(const uint8_t* data, size_t got) {
  return std::memcmp(data, kMagic, std::min(got, sizeof(kMagic))) == 0;
}

}  // namespace

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  // invariant-ok(storage-raw-syscall): best-effort close of the writer
  // being replaced; its durability state is already decided.
  if (fd_ >= 0) ::close(fd_);
  fd_ = std::exchange(other.fd_, -1);
  path_ = std::move(other.path_);
  bytes_ = other.bytes_;
  records_ = other.records_;
  return *this;
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) fault::Close(fault::sites::kJournalClose, fd_);
}

Result<JournalWriter> JournalWriter::Open(const std::string& path,
                                          uint64_t lineage, int64_t append_at,
                                          int64_t initial_records) {
  int fd = fault::Open(fault::sites::kJournalOpen, path.c_str(),
                       O_RDWR | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("journal: cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);  // invariant-ok: error-path cleanup, open already failed
    return ErrnoStatus("journal: fstat failed for", path);
  }
  JournalWriter out;
  out.fd_ = fd;
  out.path_ = path;
  if (st.st_size < static_cast<int64_t>(kFileHeaderBytes)) {
    // Empty file, or a header torn by a crash mid-creation: recover it as
    // a fresh journal (header only). Anything that is not a prefix of the
    // expected header is some other file and stays an error.
    if (st.st_size > 0) {
      uint8_t prefix[kFileHeaderBytes];
      const ssize_t got = ::pread(fd, prefix, sizeof(prefix), 0);
      if (got < 0) return ErrnoStatus("journal: cannot read header of", path);
      if (!IsTornHeaderPrefix(prefix, static_cast<size_t>(got))) {
        return Status::DataLoss("journal: '" + path +
                                "' shorter than its header");
      }
      // invariant-ok(storage-raw-syscall): recovery of a torn header is
      // not a crash-swept site — adding one would shift the deterministic
      // evaluation indices of kJournalTruncate triggers in replayed runs.
      if (::ftruncate(fd, 0) != 0) {
        return ErrnoStatus("journal: ftruncate failed for", path);
      }
      if (::lseek(fd, 0, SEEK_SET) < 0) {
        return ErrnoStatus("journal: lseek failed for", path);
      }
    }
    std::vector<uint8_t> header;
    PutBytes(&header, kMagic, sizeof(kMagic));
    Put<uint64_t>(&header, lineage);
    Status s = WriteAll(fd, header.data(), header.size(), path);
    if (!s.ok()) return s;
    if (fault::Fsync(fault::sites::kJournalFsync, fd) != 0) {
      return ErrnoStatus("journal: fsync failed for", path);
    }
    out.bytes_ = static_cast<int64_t>(header.size());
    return out;
  }
  uint8_t header[kFileHeaderBytes];
  if (::pread(fd, header, sizeof(header), 0) !=
      static_cast<ssize_t>(sizeof(header))) {
    return ErrnoStatus("journal: cannot read header of", path);
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("journal: '" + path + "' has a bad magic");
  }
  uint64_t file_lineage;
  std::memcpy(&file_lineage, header + 8, 8);
  if (file_lineage != lineage) {
    return Status::DataLoss("journal: '" + path + "' belongs to lineage " +
                            std::to_string(file_lineage) + ", want " +
                            std::to_string(lineage));
  }
  int64_t end = append_at >= 0 ? append_at : st.st_size;
  if (end < static_cast<int64_t>(kFileHeaderBytes) || end > st.st_size) {
    return Status::InvalidArgument("journal: append offset " +
                                   std::to_string(append_at) +
                                   " out of range for '" + path + "'");
  }
  if (end != st.st_size) {
    // Chop a recovered torn tail before the first new append.
    if (fault::Ftruncate(fault::sites::kJournalTruncate, fd, end) != 0) {
      return ErrnoStatus("journal: ftruncate failed for", path);
    }
    if (fault::Fsync(fault::sites::kJournalFsync, fd) != 0) {
      return ErrnoStatus("journal: fsync failed for", path);
    }
  }
  if (::lseek(fd, end, SEEK_SET) < 0) {
    return ErrnoStatus("journal: lseek failed for", path);
  }
  out.bytes_ = end;
  out.records_ = initial_records;
  return out;
}

Status JournalWriter::Append(const std::vector<JournalOp>& ops) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("journal: Append on a closed writer");
  }
  // The whole group becomes one write: either the kernel sees all of it
  // or (on a crash before the write reaches the file) a prefix, which
  // the torn-tail rule rolls back to the group boundary.
  std::vector<uint8_t> buf;
  for (const JournalOp& op : ops) {
    const std::vector<uint8_t> payload = EncodeOp(op);
    Put<uint32_t>(&buf, static_cast<uint32_t>(payload.size()));
    Put<uint64_t>(&buf, XxHash64(payload.data(), payload.size()));
    PutBytes(&buf, payload.data(), payload.size());
  }
  Status status = WriteAll(fd_, buf.data(), buf.size(), path_);
  if (status.ok() &&
      fault::Fsync(fault::sites::kJournalFsync, fd_) != 0) {
    status = ErrnoStatus("journal: fsync failed for", path_);
  }
  if (!status.ok()) {
    // The failed group may have left torn bytes past the last good
    // boundary. Chop the file back so a retried Append lands on clean
    // framing; if the repair itself fails the writer is unusable and a
    // retry could corrupt the journal mid-file, so close it.
    // invariant-ok(storage-raw-syscall): post-failure repair — the
    // injected fault already won; sabotaging the chop-back too would
    // only test the error message, not a new crash state.
    if (::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(bytes_), SEEK_SET) < 0) {
      const Status repair =
          ErrnoStatus("journal: append repair failed for", path_);
      ::close(fd_);  // invariant-ok: writer is unusable either way
      fd_ = -1;
      return Status::Internal(repair.message() + " (after " +
                              status.ToString() + ")");
    }
    return status;
  }
  bytes_ += static_cast<int64_t>(buf.size());
  records_ += static_cast<int64_t>(ops.size());
  return Status::OK();
}

Status JournalWriter::Reset() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("journal: Reset on a closed writer");
  }
  if (fault::Ftruncate(fault::sites::kJournalTruncate, fd_,
                       static_cast<off_t>(kFileHeaderBytes)) != 0) {
    return ErrnoStatus("journal: ftruncate failed for", path_);
  }
  if (fault::Fsync(fault::sites::kJournalFsync, fd_) != 0) {
    return ErrnoStatus("journal: fsync failed for", path_);
  }
  if (::lseek(fd_, static_cast<off_t>(kFileHeaderBytes), SEEK_SET) < 0) {
    return ErrnoStatus("journal: lseek failed for", path_);
  }
  bytes_ = static_cast<int64_t>(kFileHeaderBytes);
  records_ = 0;
  return Status::OK();
}

Result<JournalContents> ReadJournal(const std::string& path,
                                    uint64_t expected_lineage) {
  // invariant-ok(storage-raw-syscall): read-only replay path — faults
  // here model nothing the crash sweep cares about, and a site would
  // shift kJournalOpen trigger indices for the write path.
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("journal: cannot open '" + path + "': " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);  // invariant-ok: read-path cleanup
    return ErrnoStatus("journal: fstat failed for", path);
  }
  std::vector<uint8_t> file(static_cast<size_t>(st.st_size));
  size_t got = 0;
  while (got < file.size()) {
    ssize_t n = ::pread(fd, file.data() + got, file.size() - got,
                        static_cast<off_t>(got));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);  // invariant-ok: read-path cleanup
      return ErrnoStatus("journal: read failed for", path);
    }
    if (n == 0) break;
    got += static_cast<size_t>(n);
  }
  ::close(fd);  // invariant-ok: read-only fd, nothing to make durable
  if (got < kFileHeaderBytes) {
    // A header torn by a crash mid-creation reads back as an empty
    // journal; JournalWriter::Open rewrites it. Anything else is corrupt.
    if (!IsTornHeaderPrefix(file.data(), got)) {
      return Status::DataLoss("journal: '" + path +
                              "' shorter than its header");
    }
    JournalContents empty;
    empty.lineage = expected_lineage;
    empty.valid_bytes = static_cast<int64_t>(kFileHeaderBytes);
    return empty;
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("journal: '" + path + "' has a bad magic");
  }
  JournalContents out;
  std::memcpy(&out.lineage, file.data() + 8, 8);
  if (out.lineage != expected_lineage) {
    return Status::DataLoss("journal: '" + path + "' belongs to lineage " +
                            std::to_string(out.lineage) + ", want " +
                            std::to_string(expected_lineage));
  }

  // Scan records until the first torn or corrupt one. valid_bytes only
  // advances at group boundaries (Commit / DropVersion), which is
  // exactly the torn-tail rule: a trailing group whose Commit record did
  // not survive is rolled back wholesale to its Begin offset.
  size_t at = kFileHeaderBytes;
  bool in_group = false;
  bool stop = false;
  int64_t group_records = 0;
  JournalGroup group;
  out.valid_bytes = static_cast<int64_t>(at);
  while (!stop) {
    if (at + kRecordHeaderBytes > got) break;  // torn record header
    uint32_t len;
    uint64_t checksum;
    std::memcpy(&len, file.data() + at, 4);
    std::memcpy(&checksum, file.data() + at + 4, 8);
    if (len > kMaxPayload || at + kRecordHeaderBytes + len > got) break;
    const uint8_t* payload = file.data() + at + kRecordHeaderBytes;
    if (XxHash64(payload, len) != checksum) break;
    JournalOp op;
    if (!DecodeOp(payload, len, &op)) break;
    const size_t next = at + kRecordHeaderBytes + len;
    switch (op.type) {
      case JournalOp::Type::kBegin:
        if (in_group) {
          // A Begin inside an open group: the previous group never
          // committed, so everything from its Begin on is dropped.
          stop = true;
          break;
        }
        in_group = true;
        group_records = 0;
        group = JournalGroup{};
        group.parent_version = op.version;
        break;
      case JournalOp::Type::kCommit:
        if (!in_group) {
          stop = true;  // framing corrupt; cut at the last good boundary
          break;
        }
        group.commit_version = op.version;
        group.snapshot_id = op.snapshot_id;
        out.groups.push_back(std::move(group));
        out.records += group_records + 2;  // ops + Begin + Commit
        in_group = false;
        out.valid_bytes = static_cast<int64_t>(next);
        break;
      case JournalOp::Type::kDropVersion:
        if (in_group) {
          stop = true;
          break;
        }
        {
          JournalGroup drop;
          drop.is_drop = true;
          drop.drop_version = op.version;
          out.groups.push_back(std::move(drop));
        }
        ++out.records;
        out.valid_bytes = static_cast<int64_t>(next);
        break;
      case JournalOp::Type::kAddNode:
      case JournalOp::Type::kAddFact:
      case JournalOp::Type::kRemoveFact:
        if (!in_group) {
          stop = true;
          break;
        }
        group.ops.push_back(std::move(op));
        ++group_records;
        break;
    }
    if (!stop) at = next;
  }
  return out;
}

}  // namespace storage
}  // namespace rpqres
