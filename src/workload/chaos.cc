#include "workload/chaos.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <span>
#include <utility>

#include "fault/failpoints.h"
#include "graphdb/label_index.h"
#include "graphdb/serialization.h"
#include "lang/language.h"
#include "util/rng.h"

namespace rpqres {
namespace workload {
namespace {

bool IsInconclusive(StatusCode code) {
  return code == StatusCode::kOutOfRange ||
         code == StatusCode::kDeadlineExceeded;
}

/// One pre-planned mutation. The plan is derived once from the seed and
/// applied identically by the crashing child and the parent's twin, so
/// the two sides never need to agree on anything but the seed.
struct ChaosOp {
  enum class Kind : uint8_t { kAddFact, kRemoveFact, kAddNode };
  Kind kind = Kind::kAddFact;
  NodeId source = 0;
  NodeId target = 0;
  char label = 'a';
  Capacity multiplicity = 1;
  std::string node_name;
};

struct ChaosPlan {
  bool generation_failed = false;
  GraphDb base;
  std::string regex;
  Semantics semantics = Semantics::kSet;
  std::vector<std::vector<ChaosOp>> commits;  ///< commits[i] -> version i+2
};

/// FNV-1a, so the per-site crash index is stable across processes and
/// binaries (std::hash makes no such promise).
uint64_t HashSite(std::string_view site) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : site) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

ChaosPlan MakeChaosPlan(uint64_t seed, const ChaosOptions& options) {
  ChaosPlan plan;
  Result<WorkloadInstance> instance = MakeWorkloadInstance(seed,
                                                           options.workload);
  if (!instance.ok()) {
    plan.generation_failed = true;
    return plan;
  }
  plan.base = instance->db;
  plan.regex = instance->query.regex;
  plan.semantics = instance->semantics;
  Language lang = Language::MustFromRegexString(plan.regex);

  // Simulate on a scratch copy so removals always name a live fact at
  // apply time (the apply order is identical on both sides).
  GraphDb reference = instance->db;
  std::vector<char> labels = reference.Labels();
  for (char c : lang.used_letters()) labels.push_back(c);
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  if (labels.empty()) labels.push_back('a');

  // Distinct stream constant from churn: the same seed must not replay
  // the same op sequence across harnesses.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 2);
  int node_seq = 0;
  plan.commits.resize(options.num_commits);
  for (std::vector<ChaosOp>& commit : plan.commits) {
    const int ops = 1 + static_cast<int>(rng.NextBelow(
                            static_cast<uint64_t>(options.max_ops_per_commit)));
    for (int op = 0; op < ops; ++op) {
      const int roll = static_cast<int>(rng.NextBelow(100));
      ChaosOp planned;
      if (roll < options.remove_percent && reference.num_facts() > 0) {
        FactId victim = static_cast<FactId>(
            rng.NextBelow(static_cast<uint64_t>(reference.num_facts())));
        const Fact fact = reference.fact(victim);
        planned.kind = ChaosOp::Kind::kRemoveFact;
        planned.source = fact.source;
        planned.label = fact.label;
        planned.target = fact.target;
        reference = reference.RemoveFacts({victim});
      } else if (roll < options.remove_percent + options.add_node_percent) {
        planned.kind = ChaosOp::Kind::kAddNode;
        planned.node_name = "chaos" + std::to_string(node_seq++);
        reference.AddNode(planned.node_name);
      } else if (reference.num_nodes() > 0) {
        planned.kind = ChaosOp::Kind::kAddFact;
        planned.source = static_cast<NodeId>(
            rng.NextBelow(static_cast<uint64_t>(reference.num_nodes())));
        planned.target = static_cast<NodeId>(
            rng.NextBelow(static_cast<uint64_t>(reference.num_nodes())));
        planned.label = labels[rng.NextBelow(labels.size())];
        planned.multiplicity = 1 + static_cast<Capacity>(rng.NextBelow(3));
        reference.AddFact(planned.source, planned.label, planned.target,
                          planned.multiplicity);
      } else {
        continue;  // empty degenerate instance: nothing removable/addable
      }
      commit.push_back(std::move(planned));
    }
  }
  return plan;
}

Status ApplyCommit(DbRegistry* registry, DbHandle* latest,
                   const std::vector<ChaosOp>& ops) {
  DeltaBatch batch = registry->BeginDelta(*latest);
  for (const ChaosOp& op : ops) {
    switch (op.kind) {
      case ChaosOp::Kind::kAddFact: {
        Result<FactId> added =
            batch.AddFact(op.source, op.label, op.target, op.multiplicity);
        if (!added.ok()) return added.status();
        break;
      }
      case ChaosOp::Kind::kRemoveFact: {
        Status removed = batch.RemoveFact(op.source, op.label, op.target);
        if (!removed.ok()) return removed;
        break;
      }
      case ChaosOp::Kind::kAddNode:
        batch.AddNode(op.node_name);
        break;
    }
  }
  Result<DbHandle> committed = batch.Commit();
  if (!committed.ok()) return committed.status();
  *latest = *std::move(committed);
  return Status::OK();
}

std::string AckPath(const std::string& dir) { return dir + "/chaos.ack"; }

/// Records the latest acknowledged-durable version. Only written between
/// failpoint-guarded operations, so a crash never tears it — plain
/// truncate-and-rewrite is enough for a process-crash model (the page
/// cache survives _exit).
void WriteAck(const std::string& dir, uint32_t version) {
  const std::string text = std::to_string(version) + "\n";
  int fd = ::open(AckPath(dir).c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return;
  ssize_t written = ::write(fd, text.data(), text.size());
  (void)written;
  ::close(fd);
}

uint32_t ReadAck(const std::string& dir) {
  std::FILE* f = std::fopen(AckPath(dir).c_str(), "r");
  if (f == nullptr) return 0;
  unsigned long version = 0;  // NOLINT(runtime/int) — fscanf format
  const int got = std::fscanf(f, "%lu", &version);
  std::fclose(f);
  return got == 1 ? static_cast<uint32_t>(version) : 0;
}

/// The forked child's whole life: arm one site, run the storm, reopen,
/// ack as it goes. Returns the child's exit code; never throws (the
/// child _exits without unwinding).
int RunChaosChild(const ChaosPlan& plan, const std::string& dir,
                  std::string_view site, uint64_t seed,
                  const ChaosOptions& options) {
  fault::FailpointRegistry& failpoints = fault::FailpointRegistry::Instance();
  failpoints.ResetAll();
  Rng nth_rng(seed ^ HashSite(site));
  const uint64_t nth = 1 + nth_rng.NextBelow(options.max_crash_nth);
  failpoints.Arm(site, fault::FaultSpec::OnNth(fault::FaultKind::kCrash, nth));

  DbRegistry::Options registry_options = options.registry;
  registry_options.storage_dir = dir;
  {
    DbRegistry registry(registry_options);
    DbHandle latest = registry.Register(plan.base, "chaos");
    if (!registry.storage_status().ok()) return 3;
    WriteAck(dir, latest.version());
    for (const std::vector<ChaosOp>& commit : plan.commits) {
      Status applied = ApplyCommit(&registry, &latest, commit);
      // With only kCrash armed a commit either crashes or lands; any
      // status here is a logic error worth failing the sweep over.
      if (!applied.ok()) return 4;
      WriteAck(dir, latest.version());
    }
  }  // destructor closes journal writers → journal.close crashes here

  // Reopen inside the child so the restore-only sites (segment.mmap,
  // journal.open on an existing file, journal.truncate on a torn tail)
  // are crash-tested too. Reads must not change durable state.
  Result<std::unique_ptr<DbRegistry>> reopened = DbRegistry::OpenStorage(dir);
  if (!reopened.ok()) return 5;
  return 0;
}

std::string SpanToString(std::span<const FactId> facts) {
  std::string out = "[";
  for (size_t i = 0; i < facts.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(facts[i]);
  }
  return out + "]";
}

/// Exact span equality between the restored index and the twin's —
/// restore replays the same deltas, so even fact ids must agree.
std::string CompareIndexes(const GraphDb& restored_db,
                           const LabelIndex& restored,
                           const LabelIndex& twin) {
  if (restored.labels() != twin.labels()) return "label set divergence";
  for (char label : restored.labels()) {
    for (NodeId v = 0; v < restored_db.num_nodes(); ++v) {
      std::span<const FactId> from = restored.FactsFrom(label, v);
      std::span<const FactId> twin_from = twin.FactsFrom(label, v);
      if (!std::equal(from.begin(), from.end(), twin_from.begin(),
                      twin_from.end())) {
        return std::string("FactsFrom('") + label + "', " + std::to_string(v) +
               ") divergence: " + SpanToString(from) + " vs " +
               SpanToString(twin_from);
      }
      std::span<const FactId> into = restored.FactsInto(label, v);
      std::span<const FactId> twin_into = twin.FactsInto(label, v);
      if (!std::equal(into.begin(), into.end(), twin_into.begin(),
                      twin_into.end())) {
        return std::string("FactsInto('") + label + "', " + std::to_string(v) +
               ") divergence";
      }
    }
  }
  return "";
}

}  // namespace

ChaosHarness::ChaosHarness(ChaosOptions options)
    : options_([&options] {
        options.engine.max_exact_search_nodes = options.max_exact_search_nodes;
        options.engine.max_word_length =
            options.workload.classify_max_word_length;
        return std::move(options);
      }()),
      engine_(options_.engine) {}

ChaosReport ChaosHarness::Run(std::string_view site, uint64_t seed) {
  ChaosReport report;
  report.seed = seed;
  report.site = std::string(site);
  auto fail = [&](const std::string& what) {
    report.mismatches.push_back("site " + report.site + " seed " +
                                std::to_string(seed) + ": " + what);
  };

  ChaosPlan plan = MakeChaosPlan(seed, options_);
  if (plan.generation_failed) {
    report.generation_failed = true;
    return report;
  }

  std::string site_slug = report.site;
  std::replace(site_slug.begin(), site_slug.end(), '/', '_');
  std::replace(site_slug.begin(), site_slug.end(), '.', '_');
  const std::filesystem::path root =
      options_.storage_root.empty()
          ? std::filesystem::temp_directory_path()
          : std::filesystem::path(options_.storage_root);
  const std::string dir =
      (root / ("rpqres_chaos_" + site_slug + "_" + std::to_string(seed) + "_" +
               std::to_string(::getpid())))
          .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    fail("create_directories: " + ec.message());
    return report;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    fail("fork failed");
    return report;
  }
  if (pid == 0) {
    // _exit: no destructors, no atexit — the child must not flush the
    // parent's duplicated stdio buffers or join inherited thread state.
    ::_exit(RunChaosChild(plan, dir, site, seed, options_));
  }

  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  if (WIFEXITED(wstatus)) {
    report.exit_status = WEXITSTATUS(wstatus);
    report.crashed = report.exit_status == fault::kCrashExitStatus;
    if (report.exit_status != 0 && !report.crashed) {
      fail("child exited " + std::to_string(report.exit_status) +
           " (want 0 or " + std::to_string(fault::kCrashExitStatus) + ")");
    }
  } else if (WIFSIGNALED(wstatus)) {
    fail("child killed by signal " + std::to_string(WTERMSIG(wstatus)));
  } else {
    fail("child ended in unknown state");
  }
  report.acked_version = ReadAck(dir);

  // Whatever the child left behind, reopen must succeed: every torn /
  // partial artifact is either repaired or skipped by the recovery rules.
  Result<std::unique_ptr<DbRegistry>> reopened = DbRegistry::OpenStorage(dir);
  if (!reopened.ok()) {
    fail("OpenStorage after crash: " + reopened.status().ToString());
    std::filesystem::remove_all(dir, ec);
    return report;
  }
  DbRegistry& restored_registry = **reopened;
  Result<DbHandle> restored = restored_registry.Resolve("chaos");
  if (!restored.ok()) {
    // Nothing durable: only valid if nothing was ever acknowledged.
    if (report.acked_version > 0) {
      fail("acked version " + std::to_string(report.acked_version) +
           " lost entirely: " + restored.status().ToString());
    }
    std::filesystem::remove_all(dir, ec);
    return report;
  }
  report.restored_version = restored->version();

  if (report.restored_version < report.acked_version) {
    fail("durability violation: restored version " +
         std::to_string(report.restored_version) + " < acked version " +
         std::to_string(report.acked_version));
  }
  const uint32_t max_version =
      1 + static_cast<uint32_t>(plan.commits.size());
  if (report.restored_version > max_version) {
    fail("restored version " + std::to_string(report.restored_version) +
         " beyond the storm's final version " + std::to_string(max_version));
    std::filesystem::remove_all(dir, ec);
    return report;
  }

  // Twin replay: same plan, same registry tuning, no storage. Restore
  // promises the exact in-memory state that was durable at version V.
  DbRegistry twin_registry(options_.registry);
  DbHandle twin = twin_registry.Register(plan.base, "chaos");
  for (uint32_t v = 2; v <= report.restored_version; ++v) {
    Status applied = ApplyCommit(&twin_registry, &twin, plan.commits[v - 2]);
    if (!applied.ok()) {
      fail("twin replay commit to version " + std::to_string(v) + ": " +
           applied.ToString());
      std::filesystem::remove_all(dir, ec);
      return report;
    }
  }

  if (SerializeGraphDb(restored->db()) != SerializeGraphDb(twin.db())) {
    fail("serialization divergence at restored version " +
         std::to_string(report.restored_version));
  }
  std::string index_diff = CompareIndexes(
      restored->db(), *restored->label_index(), *twin.label_index());
  if (!index_diff.empty()) {
    fail("index divergence at restored version " +
         std::to_string(report.restored_version) + ": " + index_diff);
  }

  if (report.ok()) {
    // Answer equality on the restored bytes. A scratch lineage forces a
    // fresh solve over the mmap-backed facts instead of a cache hit.
    DbRegistry scratch;
    ResilienceRequest request;
    request.regex = plan.regex;
    request.semantics = plan.semantics;
    request.db = scratch.Register(restored->db());
    ResilienceResponse restored_response = engine_.Evaluate(request);
    request.db = twin;
    ResilienceResponse twin_response = engine_.Evaluate(request);
    if (IsInconclusive(restored_response.status.code()) ||
        IsInconclusive(twin_response.status.code())) {
      ++report.inconclusive;
    } else if (restored_response.status.code() !=
               twin_response.status.code()) {
      fail("answer status divergence: restored " +
           restored_response.status.ToString() + " vs twin " +
           twin_response.status.ToString());
    } else if (twin_response.status.ok() &&
               (restored_response.result.infinite !=
                    twin_response.result.infinite ||
                (!twin_response.result.infinite &&
                 restored_response.result.value !=
                     twin_response.result.value))) {
      fail("answer value divergence at restored version " +
           std::to_string(report.restored_version));
    }
  }

  std::filesystem::remove_all(dir, ec);
  return report;
}

std::vector<ChaosReport> ChaosHarness::RunAllSites(uint64_t seed) {
  std::vector<ChaosReport> reports;
  const std::vector<std::string_view>& sites = fault::KnownSites();
  reports.reserve(sites.size());
  for (std::string_view site : sites) {
    reports.push_back(Run(site, seed));
  }
  return reports;
}

}  // namespace workload
}  // namespace rpqres
