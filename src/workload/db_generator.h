// rpqres — workload/db_generator: seeded random database drawing.
//
// One entry point over the whole graphdb/generators family: a DbShape is
// drawn (or fixed), sized for the differential oracle (small enough that
// the exponential exact reference stays fast), and labeled with the
// query's own alphabet plus a distractor letter — databases over the
// wrong alphabet would make every instance trivially false.

#ifndef RPQRES_WORKLOAD_DB_GENERATOR_H_
#define RPQRES_WORKLOAD_DB_GENERATOR_H_

#include <array>
#include <string>
#include <vector>

#include "graphdb/graph_db.h"
#include "util/rng.h"

namespace rpqres {
namespace workload {

/// The database families the workload draws from (all backed by
/// graphdb/generators).
enum class DbShape {
  kRandom,         ///< uniform random facts
  kChain,          ///< one random-labeled path
  kCycle,          ///< one random-labeled directed cycle
  kGrid,           ///< right/down grid
  kDagLayers,      ///< layered DAG
  kScaleFree,      ///< preferential attachment
  kKronecker,      ///< R-MAT quadrant descent
  kWordSoup,       ///< query words laid out as paths + random cross links
  kLayeredFlow,    ///< a/x/b source-sink network (ax*b ≡ MinCut family)
  kDanglingPairs,  ///< base part + x/y dangling pairs (Prp 7.9 family)
};

inline constexpr std::array<DbShape, 10> kAllDbShapes = {
    DbShape::kRandom,       DbShape::kChain,     DbShape::kCycle,
    DbShape::kGrid,         DbShape::kDagLayers, DbShape::kScaleFree,
    DbShape::kKronecker,    DbShape::kWordSoup,  DbShape::kLayeredFlow,
    DbShape::kDanglingPairs};

/// Stable lowercase name for reports and JSON ("random", "chain", ...).
const char* DbShapeName(DbShape shape);

struct DbGenOptions {
  /// 0 = oracle-sized (≲ 20 facts, brute-force often applicable),
  /// 1 = small (≲ 60 facts), 2 = medium (hundreds of facts; for benches
  /// and stress tests, not for the brute-force cross-check).
  int size_class = 0;
  /// Multiplicities drawn uniformly in [1, max_multiplicity].
  Capacity max_multiplicity = 3;
};

/// Draws a database of the given shape. `labels` must be non-empty (use
/// the query's used_letters plus a distractor); `words` seeds kWordSoup
/// paths and may be empty (falls back to kRandom's shape then).
GraphDb GenerateDb(Rng* rng, DbShape shape, const std::vector<char>& labels,
                   const std::vector<std::string>& words,
                   const DbGenOptions& options = {});

}  // namespace workload
}  // namespace rpqres

#endif  // RPQRES_WORKLOAD_DB_GENERATOR_H_
