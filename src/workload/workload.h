// rpqres — workload/workload: deterministic seed → instance derivation.
//
// A workload instance — query class, regex, database shape, database,
// semantics — is a pure function of one uint64 seed. That single number
// is therefore a complete, replayable bug report: the differential oracle
// prints it on every mismatch and `bench_workload --replay <seed>`
// rebuilds the exact instance anywhere.
//
// The query class is carried in the seed itself (seed mod #classes), so a
// stratified sweep just picks seeds in the right residue classes and a
// bare seed still replays without side information.

#ifndef RPQRES_WORKLOAD_WORKLOAD_H_
#define RPQRES_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graphdb/graph_db.h"
#include "util/status.h"
#include "workload/db_generator.h"
#include "workload/query_generator.h"

namespace rpqres {
namespace workload {

struct WorkloadOptions {
  /// Forwarded to GenerateDb.
  DbGenOptions db;
  /// Candidate budget for GenerateQuery.
  int max_query_attempts = 64;
  /// Classifier four-legged witness-search bound during generation (see
  /// GenerateQuery; the oracle also compiles queries with this bound).
  int classify_max_word_length = 8;
};

/// One fully derived instance.
struct WorkloadInstance {
  uint64_t seed = 0;
  QueryClass query_class = QueryClass::kLocal;
  GeneratedQuery query;
  DbShape shape = DbShape::kRandom;
  GraphDb db;
  Semantics semantics = Semantics::kSet;
};

/// The query class a seed encodes (seed mod kAllQueryClasses.size()).
QueryClass QueryClassForSeed(uint64_t seed);

/// The i-th seed of `query_class` at or after `base_seed` — the seed
/// enumeration the oracle uses for stratified budgets.
uint64_t SeedFor(uint64_t base_seed, QueryClass query_class, int index);

/// Derives the instance for `seed`. Deterministic: equal seeds and
/// options give byte-identical instances (regex, database, semantics).
/// Errors only if no query candidate hits the seed's class within the
/// attempt budget.
Result<WorkloadInstance> MakeWorkloadInstance(
    uint64_t seed, const WorkloadOptions& options = {});

/// One-line human description: seed, class, regex, shape, db size,
/// semantics.
std::string DescribeInstance(const WorkloadInstance& instance);

}  // namespace workload
}  // namespace rpqres

#endif  // RPQRES_WORKLOAD_WORKLOAD_H_
