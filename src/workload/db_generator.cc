#include "workload/db_generator.h"

#include "graphdb/generators.h"
#include "util/check.h"

namespace rpqres {
namespace workload {
namespace {

/// Per-size-class scale factor applied to the base (size_class 0) shape
/// dimensions below.
int Scale(const DbGenOptions& options) {
  switch (options.size_class) {
    case 0:
      return 1;
    case 1:
      return 3;
    default:
      return 8;
  }
}

int Jitter(Rng* rng, int base, int spread) {
  return base + static_cast<int>(rng->NextBelow(spread + 1));
}

}  // namespace

const char* DbShapeName(DbShape shape) {
  switch (shape) {
    case DbShape::kRandom:
      return "random";
    case DbShape::kChain:
      return "chain";
    case DbShape::kCycle:
      return "cycle";
    case DbShape::kGrid:
      return "grid";
    case DbShape::kDagLayers:
      return "dag-layers";
    case DbShape::kScaleFree:
      return "scale-free";
    case DbShape::kKronecker:
      return "kronecker";
    case DbShape::kWordSoup:
      return "word-soup";
    case DbShape::kLayeredFlow:
      return "layered-flow";
    case DbShape::kDanglingPairs:
      return "dangling-pairs";
  }
  return "?";
}

GraphDb GenerateDb(Rng* rng, DbShape shape, const std::vector<char>& labels,
                   const std::vector<std::string>& words,
                   const DbGenOptions& options) {
  RPQRES_CHECK(!labels.empty());
  const int s = Scale(options);
  const Capacity m = options.max_multiplicity;
  switch (shape) {
    case DbShape::kChain:
      return RandomChainDb(rng, Jitter(rng, 6 * s, 4 * s), labels, m);
    case DbShape::kCycle:
      return CycleDb(rng, Jitter(rng, 5 * s, 4 * s), labels, m);
    case DbShape::kGrid:
      return GridDb(rng, Jitter(rng, 2, s), Jitter(rng, 2, 2 * s), labels, m);
    case DbShape::kDagLayers:
      return DagLayersDb(rng, Jitter(rng, 3, s), Jitter(rng, 2, s),
                         0.25 + rng->NextDouble() * 0.35, labels, m);
    case DbShape::kScaleFree:
      return ScaleFreeDb(rng, Jitter(rng, 6 * s, 4 * s),
                         1 + static_cast<int>(rng->NextBelow(2)), labels, m);
    case DbShape::kKronecker:
      return KroneckerDb(rng, /*iterations=*/s == 1 ? 3 : 5,
                         Jitter(rng, 10 * s, 8 * s), labels, m);
    case DbShape::kWordSoup:
      if (!words.empty()) {
        return WordSoupDb(rng, words, Jitter(rng, 2, s), labels,
                          Jitter(rng, 3 * s, 3 * s), m);
      }
      [[fallthrough]];
    case DbShape::kRandom: {
      int nodes = Jitter(rng, 4 * s, 3 * s);
      return RandomGraphDb(rng, nodes, Jitter(rng, 10 * s, 8 * s), labels, m);
    }
    case DbShape::kLayeredFlow:
      return LayeredFlowDb(rng, Jitter(rng, 2, s), Jitter(rng, 2, s),
                           Jitter(rng, 2, s), Jitter(rng, 2, s),
                           0.3 + rng->NextDouble() * 0.4, m);
    case DbShape::kDanglingPairs:
      return DanglingPairsDb(rng, Jitter(rng, 4 * s, 2 * s),
                             Jitter(rng, 5 * s, 4 * s), labels,
                             labels[rng->NextBelow(labels.size())],
                             labels[rng->NextBelow(labels.size())],
                             Jitter(rng, 2 * s, 2 * s), m);
  }
  RPQRES_CHECK(false);
  return GraphDb();
}

}  // namespace workload
}  // namespace rpqres
