// rpqres — workload/traffic: seeded multi-tenant serving traffic.
//
// The serve-layer counterpart of workload.h: where MakeWorkloadInstance
// derives ONE (query, database) instance from a seed, a TrafficTrace
// derives a whole serving workload — a fleet of named lineages with
// their databases, and an endless stream of tenant-attributed read and
// commit operations — all as a pure function of one uint64 seed. One
// number replays an entire stress run: the same trace drives the
// router tests, the serve stress test, and `bench_engine --serve`
// identically at any shard count.
//
// Answer stability across versions is designed in: commit operations
// mutate ONLY facts labeled kNoiseLabels ('m'/'n'), which no query in
// the read pool mentions. RES(Q) over the query alphabet is therefore
// identical at every version of every lineage, so a run's resilience
// checksum is invariant under shard count, commit interleaving, and
// cache hits — that invariance is what lets the bench compare 1/4/16
// shard configurations and the tests compare router answers against a
// single-engine replay.

#ifndef RPQRES_WORKLOAD_TRAFFIC_H_
#define RPQRES_WORKLOAD_TRAFFIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/db_registry.h"
#include "graphdb/graph_db.h"
#include "util/rng.h"
#include "util/status.h"

namespace rpqres {
namespace workload {

struct TrafficOptions {
  int num_tenants = 4;
  /// Named lineages in the fleet; lineage i is named "lin<i>". The first
  /// `hot_lineages` of them also receive commit traffic.
  int num_lineages = 12;
  int hot_lineages = 1;
  /// Distinct queries per lineage, drawn from the fixed read pool. The
  /// trace's distinct read keys — num_lineages * queries_per_lineage —
  /// bound the result-cache working set.
  int queries_per_lineage = 4;
  /// Per-mille of operations that target a hot lineage.
  int hot_per_mille = 150;
  /// Per-mille of HOT-lineage operations that are commits (cold
  /// lineages never commit).
  int commit_per_mille = 200;
  /// Database size per lineage (RandomGraphDb over the query alphabet).
  int db_num_nodes = 48;
  int db_num_facts = 160;
  int db_max_multiplicity = 2;
};

/// One operation of the stream.
struct TrafficOp {
  enum class Kind { kRead, kCommit };
  Kind kind = Kind::kRead;
  int tenant = 0;
  int lineage = 0;
  std::string db_ref;  ///< "lin<i>@latest"
  /// Read fields (empty/default for commits).
  std::string regex;
  Semantics semantics = Semantics::kSet;
  /// Seeds the commit's mutation (0 for reads).
  uint64_t op_seed = 0;
};

/// Labels commit mutations are confined to; disjoint from every read
/// query's alphabet by construction.
inline constexpr char kNoiseLabels[2] = {'m', 'n'};

/// The fixed tractable read pool (all PTIME under Figure 1); lineage i's
/// j-th query is ReadPool()[(i * queries_per_lineage + j) % size].
const std::vector<std::string>& TrafficReadPool();

class TrafficTrace {
 public:
  explicit TrafficTrace(uint64_t seed, TrafficOptions options = {});

  uint64_t seed() const { return seed_; }
  const TrafficOptions& options() const { return options_; }

  int num_lineages() const { return options_.num_lineages; }
  const std::string& lineage_name(int lineage) const {
    return names_[lineage];
  }
  bool is_hot(int lineage) const { return lineage < options_.hot_lineages; }
  /// Distinct (lineage, query) read keys the stream draws from.
  int distinct_read_keys() const {
    return options_.num_lineages * options_.queries_per_lineage;
  }

  /// Version-1 database of lineage `lineage`; pure function of
  /// (seed, lineage) — calling it twice gives byte-identical databases,
  /// so a single-engine replay can rebuild the router's fleet.
  GraphDb MakeDb(int lineage) const;

  /// The next `count` operations. Advances the trace's stream state:
  /// consecutive calls continue the stream, a fresh TrafficTrace with
  /// the same seed replays it from the start.
  std::vector<TrafficOp> NextOps(int count);

  /// Applies a commit op against `registry` (which must hold the op's
  /// lineage): resolves "lin<i>@latest", adds a fresh node plus 1–3
  /// noise-labeled facts, occasionally tombstones one earlier noise
  /// fact, and commits. Returns the commit's status (kAborted surfaces
  /// to the caller — single-committer flows never see it, concurrent
  /// committers retry).
  static Status ApplyCommit(const TrafficOp& op, DbRegistry* registry);

 private:
  uint64_t seed_;
  TrafficOptions options_;
  Rng rng_;  ///< stream state (ops only; databases use derived rngs)
  std::vector<std::string> names_;
};

}  // namespace workload
}  // namespace rpqres

#endif  // RPQRES_WORKLOAD_TRAFFIC_H_
