#include "workload/query_generator.h"

#include <utility>
#include <vector>

#include "lang/language.h"
#include "regex/parser.h"
#include "util/check.h"

namespace rpqres {
namespace workload {
namespace {

/// `count` distinct letters, a uniformly random subset of a..f in random
/// order (partial Fisher–Yates).
std::vector<char> PickDistinctLetters(Rng* rng, int count) {
  std::vector<char> pool = {'a', 'b', 'c', 'd', 'e', 'f'};
  RPQRES_CHECK(count >= 1 && count <= static_cast<int>(pool.size()));
  for (int i = 0; i < count; ++i) {
    size_t j = i + rng->NextBelow(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

std::string JoinWords(const std::vector<std::string>& words) {
  std::string out;
  for (const std::string& w : words) {
    if (!out.empty()) out += '|';
    out += w;
  }
  return out;
}

/// Templates around the a x* b shape of Thm 3.13: starred or plussed
/// middles between distinct endpoint letters, plus the degenerate local
/// shapes (letter unions, a single two-letter word).
std::string LocalCandidate(Rng* rng) {
  switch (rng->NextBelow(5)) {
    case 0: {  // p m* s
      std::vector<char> l = PickDistinctLetters(rng, 3);
      return std::string{l[0]} + l[1] + "*" + l[2];
    }
    case 1: {  // p (m1|m2)* s
      std::vector<char> l = PickDistinctLetters(rng, 4);
      return std::string{l[0]} + "(" + l[1] + "|" + l[2] + ")*" + l[3];
    }
    case 2: {  // union of 1..3 single letters
      std::vector<char> l =
          PickDistinctLetters(rng, 1 + static_cast<int>(rng->NextBelow(3)));
      std::vector<std::string> words;
      for (char c : l) words.emplace_back(1, c);
      return JoinWords(words);
    }
    case 3: {  // p m+ s
      std::vector<char> l = PickDistinctLetters(rng, 3);
      return std::string{l[0]} + l[1] + "+" + l[2];
    }
    default: {  // p m* s | q m* t (shared middle)
      std::vector<char> l = PickDistinctLetters(rng, 5);
      return std::string{l[0]} + l[1] + "*" + l[2] + "|" + l[3] + l[1] + "*" +
             l[4];
    }
  }
}

/// Unions of consecutive two-letter links over a random chain of distinct
/// letters, the Prp 7.6 shape (ab|bc, ab|bc|cd, ...).
std::string BclCandidate(Rng* rng) {
  int chain = 3 + static_cast<int>(rng->NextBelow(3));  // 3..5 letters
  std::vector<char> l = PickDistinctLetters(rng, chain);
  std::vector<std::string> words;
  for (int i = 0; i + 1 < chain; ++i) {
    words.push_back(std::string{l[i]} + l[i + 1]);
  }
  // Optionally drop one link of a long chain (still a chain family).
  if (words.size() > 2 && rng->NextChance(1, 3)) {
    words.erase(words.begin() + rng->NextBelow(words.size()));
  }
  return JoinWords(words);
}

/// A base word plus one word dangling off an interior letter (abc|be, the
/// Prp 7.9 shape), sometimes mirrored (Prp 6.3 closes the class under
/// mirroring).
std::string OneDanglingCandidate(Rng* rng) {
  int base_len = 3 + static_cast<int>(rng->NextBelow(2));  // 3..4 letters
  std::vector<char> l = PickDistinctLetters(rng, base_len + 1);
  std::string base(l.begin(), l.begin() + base_len);
  char fresh = l[base_len];
  // Dangle off an interior letter of the base word.
  size_t at = 1 + rng->NextBelow(base_len - 2 > 0 ? base_len - 2 : 1);
  std::string dangling = std::string{base[at]} + fresh;
  std::string regex = base + "|" + dangling;
  if (rng->NextChance(1, 2)) {
    std::string mirrored(regex.rbegin(), regex.rend());  // reverses words too
    return mirrored;
  }
  return regex;
}

/// Known-hard shapes: repeated-letter finite words (Thm 6.1), the renamed
/// triangle ab|bc|ca (Prp 7.4), the renamed abcd|be|ef (Prp 7.11), and
/// non-star-free even-counting middles (Lem 5.6).
std::string HardCandidate(Rng* rng) {
  switch (rng->NextBelow(4)) {
    case 0: {  // word with a forced repeated letter
      int len = 2 + static_cast<int>(rng->NextBelow(3));  // 2..4
      std::vector<char> l = PickDistinctLetters(rng, len - 1 > 0 ? len - 1 : 1);
      std::string word;
      size_t repeat_src = rng->NextBelow(l.size());
      for (int i = 0; i + 1 < len; ++i) word += l[i];
      // Insert a second copy of one letter at a random position.
      word.insert(word.begin() + rng->NextBelow(word.size() + 1),
                  l[repeat_src]);
      return word;
    }
    case 1: {  // triangle ab|bc|ca, renamed
      std::vector<char> l = PickDistinctLetters(rng, 3);
      return std::string{l[0]} + l[1] + "|" + l[1] + l[2] + "|" + l[2] + l[0];
    }
    case 2: {  // abcd|be|ef, renamed
      std::vector<char> l = PickDistinctLetters(rng, 6);
      return std::string{l[0]} + l[1] + l[2] + l[3] + "|" + l[1] + l[4] + "|" +
             l[4] + l[5];
    }
    default: {  // p (mm)* s — even counting, non-star-free
      std::vector<char> l = PickDistinctLetters(rng, 3);
      return std::string{l[0]} + "(" + l[1] + l[1] + ")*" + l[2];
    }
  }
}

/// One random letter-level edit that keeps the regex syntactically valid:
/// substitute, duplicate, delete a letter, or union in a fresh short word.
std::string MutateRegex(Rng* rng, const std::string& regex) {
  std::vector<size_t> letter_positions;
  for (size_t i = 0; i < regex.size(); ++i) {
    if (std::isalnum(static_cast<unsigned char>(regex[i]))) {
      letter_positions.push_back(i);
    }
  }
  std::string mutated = regex;
  switch (rng->NextBelow(4)) {
    case 0: {  // substitute one letter
      size_t at = letter_positions[rng->NextBelow(letter_positions.size())];
      mutated[at] = PickDistinctLetters(rng, 1)[0];
      return mutated;
    }
    case 1: {  // duplicate one letter in place
      size_t at = letter_positions[rng->NextBelow(letter_positions.size())];
      mutated.insert(mutated.begin() + at, mutated[at]);
      return mutated;
    }
    case 2: {  // delete one letter, unless a postfix operator follows it
      size_t at = letter_positions[rng->NextBelow(letter_positions.size())];
      bool starred = at + 1 < mutated.size() &&
                     (mutated[at + 1] == '*' || mutated[at + 1] == '+' ||
                      mutated[at + 1] == '?');
      if (letter_positions.size() > 1 && !starred) {
        mutated.erase(mutated.begin() + at);
        return mutated;
      }
      [[fallthrough]];
    }
    default: {  // union in a fresh word of length 1..2
      std::vector<char> l = PickDistinctLetters(rng, 2);
      std::string word(1, l[0]);
      if (rng->NextChance(1, 2)) word += l[1];
      return mutated + "|" + word;
    }
  }
}

std::string CandidateFor(Rng* rng, QueryClass target) {
  switch (target) {
    case QueryClass::kLocal:
      return LocalCandidate(rng);
    case QueryClass::kBcl:
      return BclCandidate(rng);
    case QueryClass::kOneDangling:
      return OneDanglingCandidate(rng);
    case QueryClass::kHard:
      return HardCandidate(rng);
    case QueryClass::kBoundary: {
      // Mutate a draw from a random concrete class by one edit; the
      // result lands wherever it lands (often right across a boundary).
      QueryClass base = kAllQueryClasses[rng->NextBelow(4)];
      return MutateRegex(rng, CandidateFor(rng, base));
    }
  }
  RPQRES_CHECK(false);
  return "";
}

}  // namespace

const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kLocal:
      return "local";
    case QueryClass::kBcl:
      return "bcl";
    case QueryClass::kOneDangling:
      return "one-dangling";
    case QueryClass::kHard:
      return "hard";
    case QueryClass::kBoundary:
      return "boundary";
  }
  return "?";
}

bool MatchesQueryClass(QueryClass target,
                       const Classification& classification) {
  switch (target) {
    case QueryClass::kLocal:
      return classification.complexity == ComplexityClass::kPtime &&
             classification.rule.find("local") != std::string::npos;
    case QueryClass::kBcl:
      return classification.complexity == ComplexityClass::kPtime &&
             classification.rule.find("bipartite chain") != std::string::npos;
    case QueryClass::kOneDangling:
      return classification.complexity == ComplexityClass::kPtime &&
             classification.rule.find("one-dangling") != std::string::npos;
    case QueryClass::kHard:
      return classification.complexity == ComplexityClass::kNpHard;
    case QueryClass::kBoundary:
      return true;
  }
  return false;
}

Result<GeneratedQuery> GenerateQuery(Rng* rng, QueryClass target,
                                     int max_attempts, int max_word_length) {
  std::string last_rejected;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    std::string candidate = CandidateFor(rng, target);
    Result<Language> lang = Language::FromRegexString(candidate);
    if (!lang.ok()) continue;  // a mutation produced invalid syntax
    Result<Classification> classification =
        ClassifyResilience(*lang, max_word_length);
    if (!classification.ok()) continue;
    if (MatchesQueryClass(target, *classification)) {
      GeneratedQuery out;
      out.regex = std::move(candidate);
      out.target = target;
      out.classification = *std::move(classification);
      out.attempts = attempt;
      return out;
    }
    last_rejected = std::move(candidate);
  }
  return Status::Internal(
      std::string("no candidate hit query class ") + QueryClassName(target) +
      " after " + std::to_string(max_attempts) +
      " attempts (last rejected: " + last_rejected + ")");
}

}  // namespace workload
}  // namespace rpqres
