#include "workload/churn.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graphdb/label_index.h"
#include "graphdb/serialization.h"
#include "lang/language.h"
#include "resilience/resilience.h"
#include "util/rng.h"

namespace rpqres {
namespace workload {
namespace {

/// True when an answer-side status means "no refutable answer".
bool IsInconclusive(StatusCode code) {
  return code == StatusCode::kOutOfRange ||
         code == StatusCode::kDeadlineExceeded;
}

std::string SpanToString(std::span<const FactId> facts) {
  std::string out = "[";
  for (size_t i = 0; i < facts.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(facts[i]);
  }
  return out + "]";
}

/// Compares the versioned snapshot's index against a reference index,
/// translating versioned fact ids through `old_to_ref` (identity when
/// null). Returns a divergence line or empty.
std::string CompareIndexes(const GraphDb& versioned_db,
                           const LabelIndex& versioned,
                           const GraphDb& ref_db, const LabelIndex& reference,
                           const std::vector<FactId>* old_to_ref) {
  if (versioned.labels() != reference.labels()) {
    return "label set divergence";
  }
  auto translate = [&](std::span<const FactId> facts) {
    std::vector<FactId> out(facts.begin(), facts.end());
    if (old_to_ref != nullptr) {
      for (FactId& f : out) f = (*old_to_ref)[f];
    }
    return out;
  };
  for (char label : versioned.labels()) {
    for (NodeId v = 0; v < versioned_db.num_nodes(); ++v) {
      std::vector<FactId> from = translate(versioned.FactsFrom(label, v));
      std::span<const FactId> ref_from = reference.FactsFrom(label, v);
      if (!std::equal(from.begin(), from.end(), ref_from.begin(),
                      ref_from.end())) {
        return std::string("FactsFrom('") + label + "', " +
               std::to_string(v) + ") divergence: " + SpanToString(from) +
               " vs " + SpanToString(ref_from);
      }
      std::vector<FactId> into = translate(versioned.FactsInto(label, v));
      std::span<const FactId> ref_into = reference.FactsInto(label, v);
      if (!std::equal(into.begin(), into.end(), ref_into.begin(),
                      ref_into.end())) {
        return std::string("FactsInto('") + label + "', " +
               std::to_string(v) + ") divergence";
      }
    }
  }
  (void)ref_db;
  return "";
}

}  // namespace

ChurnHarness::ChurnHarness(ChurnOptions options)
    : options_([&options] {
        options.engine.max_exact_search_nodes = options.max_exact_search_nodes;
        // Match generation-side classification cost control (see the
        // differential oracle).
        options.engine.max_word_length =
            options.workload.classify_max_word_length;
        return std::move(options);
      }()),
      engine_(options_.engine) {}

ChurnReport ChurnHarness::Run(uint64_t seed) {
  ChurnReport report;
  report.seed = seed;
  auto fail = [&](int commit, const std::string& what) {
    report.mismatches.push_back("seed " + std::to_string(seed) + " commit " +
                                std::to_string(commit) + ": " + what);
  };

  Result<WorkloadInstance> instance =
      MakeWorkloadInstance(seed, options_.workload);
  if (!instance.ok()) {
    report.generation_failed = true;
    return report;
  }
  report.regex = instance->query.regex;
  report.semantics = instance->semantics;
  Language lang = Language::MustFromRegexString(instance->query.regex);

  // The delta-built lineage and its independently maintained flat twin.
  DbRegistry::Options registry_options = options_.registry;
  std::string storage_dir;
  if (options_.persist) {
    const std::filesystem::path root =
        options_.storage_root.empty()
            ? std::filesystem::temp_directory_path()
            : std::filesystem::path(options_.storage_root);
    storage_dir = (root / ("rpqres_churn_" + std::to_string(seed) + "_" +
                           std::to_string(::getpid())))
                      .string();
    std::error_code ec;
    std::filesystem::remove_all(storage_dir, ec);
    registry_options.storage_dir = storage_dir;
  }
  auto registry = std::make_unique<DbRegistry>(registry_options);
  GraphDb reference = instance->db;
  DbHandle latest = registry->Register(instance->db, "churn");
  // Persist mode keeps every version's handle so the reopened registry
  // can be compared snapshot-by-snapshot; the durable window starts at
  // the version of the most recently written segment.
  std::vector<DbHandle> history;
  uint32_t last_segment_version = 1;
  if (options_.persist) history.push_back(latest);
  // Scratch registry for the per-commit from-scratch rebuilds.
  DbRegistry rebuilt_registry;

  // Label pool: the instance's labels plus the query's letters, so churn
  // both perturbs existing matches and creates fresh ones.
  std::vector<char> labels = reference.Labels();
  for (char c : lang.used_letters()) labels.push_back(c);
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  if (labels.empty()) labels.push_back('a');  // degenerate ε-only queries

  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  int node_seq = 0;

  for (int commit = 1; commit <= options_.num_commits; ++commit) {
    DeltaBatch batch = registry->BeginDelta(latest);
    const int ops = 1 + static_cast<int>(rng.NextBelow(
                            static_cast<uint64_t>(options_.max_ops_per_commit)));
    for (int op = 0; op < ops; ++op) {
      ++report.ops;
      const int roll = static_cast<int>(rng.NextBelow(100));
      if (roll < options_.remove_percent && reference.num_facts() > 0) {
        FactId victim = static_cast<FactId>(
            rng.NextBelow(static_cast<uint64_t>(reference.num_facts())));
        const Fact fact = reference.fact(victim);
        Status removed =
            batch.RemoveFact(fact.source, fact.label, fact.target);
        if (!removed.ok()) {
          fail(commit, "RemoveFact refused: " + removed.ToString());
          return report;
        }
        reference = reference.RemoveFacts({victim});
      } else if (roll < options_.remove_percent + options_.add_node_percent) {
        std::string name = "churn" + std::to_string(node_seq++);
        NodeId batch_node = batch.AddNode(name);
        NodeId ref_node = reference.AddNode(name);
        if (batch_node != ref_node) {
          fail(commit, "AddNode id divergence");
          return report;
        }
      } else if (reference.num_nodes() > 0) {
        NodeId source = static_cast<NodeId>(
            rng.NextBelow(static_cast<uint64_t>(reference.num_nodes())));
        NodeId target = static_cast<NodeId>(
            rng.NextBelow(static_cast<uint64_t>(reference.num_nodes())));
        char label = labels[rng.NextBelow(labels.size())];
        Capacity multiplicity = 1 + static_cast<Capacity>(rng.NextBelow(3));
        Result<FactId> added =
            batch.AddFact(source, label, target, multiplicity);
        if (!added.ok()) {
          fail(commit, "AddFact refused: " + added.status().ToString());
          return report;
        }
        reference.AddFact(source, label, target, multiplicity);
      }
    }

    Result<DbHandle> committed = batch.Commit();
    if (!committed.ok()) {
      fail(commit, "Commit failed: " + committed.status().ToString());
      return report;
    }
    latest = *std::move(committed);
    ++report.commits;
    const GraphDb& versioned = latest.db();
    if (versioned.is_versioned() == false && latest.version() > 1) {
      ++report.compactions;
      // A compacting commit wrote a fresh base segment and reset the
      // journal: versions below this one are no longer durable.
      last_segment_version = latest.version();
    }
    if (options_.persist) history.push_back(latest);

    // 1. Serialization byte-equality with the flat twin.
    std::string versioned_text = SerializeGraphDb(versioned);
    std::string reference_text = SerializeGraphDb(reference);
    if (versioned_text != reference_text) {
      fail(commit, "serialization divergence:\n--- delta-built ---\n" +
                       versioned_text + "--- from scratch ---\n" +
                       reference_text);
      return report;
    }

    // 2a. Incremental index == full rebuild over the same overlay
    //     (identical id space: exact span equality).
    LabelIndex full_rebuild(versioned);
    std::string index_diff = CompareIndexes(
        versioned, *latest.label_index(), versioned, full_rebuild,
        /*old_to_ref=*/nullptr);
    if (!index_diff.empty()) {
      fail(commit, "incremental vs full index: " + index_diff);
      return report;
    }
    // 2b. ... and == the from-scratch index, through the live renumbering.
    std::vector<FactId> old_to_ref(versioned.num_facts(), -1);
    FactId rank = 0;
    for (FactId f = 0; f < versioned.num_facts(); ++f) {
      if (versioned.IsLive(f)) old_to_ref[f] = rank++;
    }
    LabelIndex reference_index(reference);
    index_diff = CompareIndexes(versioned, *latest.label_index(), reference,
                                reference_index, &old_to_ref);
    if (!index_diff.empty()) {
      fail(commit, "incremental vs from-scratch index: " + index_diff);
      return report;
    }

    // 3. Resilience answers: delta-built snapshot vs a from-scratch
    //    registration of the flat twin.
    ResilienceRequest versioned_request;
    versioned_request.regex = instance->query.regex;
    versioned_request.db = latest;
    versioned_request.semantics = instance->semantics;
    ResilienceRequest rebuilt_request = versioned_request;
    rebuilt_request.db = rebuilt_registry.Register(reference);
    ResilienceResponse versioned_response = engine_.Evaluate(versioned_request);
    ResilienceResponse rebuilt_response = engine_.Evaluate(rebuilt_request);
    rebuilt_registry.Unregister(rebuilt_request.db.id());
    if (IsInconclusive(versioned_response.status.code()) ||
        IsInconclusive(rebuilt_response.status.code())) {
      ++report.inconclusive;
      continue;
    }
    if (versioned_response.status.code() != rebuilt_response.status.code()) {
      fail(commit, "status divergence: versioned " +
                       versioned_response.status.ToString() + " vs rebuilt " +
                       rebuilt_response.status.ToString());
      return report;
    }
    if (!versioned_response.status.ok()) continue;
    const ResilienceResult& versioned_result = versioned_response.result;
    const ResilienceResult& rebuilt_result = rebuilt_response.result;
    if (versioned_result.infinite != rebuilt_result.infinite ||
        (!versioned_result.infinite &&
         versioned_result.value != rebuilt_result.value)) {
      fail(commit,
           "value divergence: versioned=" +
               (versioned_result.infinite
                    ? std::string("inf")
                    : std::to_string(versioned_result.value)) +
               " (" + versioned_result.algorithm + ") vs rebuilt=" +
               (rebuilt_result.infinite
                    ? std::string("inf")
                    : std::to_string(rebuilt_result.value)) +
               " (" + rebuilt_result.algorithm + ")");
      return report;
    }
    Status witness = VerifyResilienceResult(lang, versioned,
                                            instance->semantics,
                                            versioned_result);
    if (!witness.ok()) {
      fail(commit, "versioned witness invalid: " + witness.message());
      return report;
    }
  }

  // Persistence round trip: close the registry, reopen from disk, and
  // require every durable version back bit for bit.
  if (options_.persist) {
    auto persist_fail = [&](const std::string& what) {
      report.mismatches.push_back("seed " + std::to_string(seed) +
                                  " persistence: " + what);
    };
    Status storage = registry->storage_status();
    if (!storage.ok()) {
      persist_fail("storage_status: " + storage.ToString());
    } else {
      registry.reset();  // closes journal writers; handles stay alive
      Result<std::unique_ptr<DbRegistry>> reopened =
          DbRegistry::OpenStorage(storage_dir);
      if (!reopened.ok()) {
        persist_fail("OpenStorage: " + reopened.status().ToString());
      } else {
        DbRegistry& restored_registry = **reopened;
        for (const DbHandle& expected : history) {
          // Versions below the last written segment were folded away by
          // a compaction; only the durable window must come back.
          if (expected.version() < last_segment_version) continue;
          Result<DbHandle> restored = restored_registry.Resolve(
              "churn@" + std::to_string(expected.version()));
          const std::string at =
              " at version " + std::to_string(expected.version());
          if (!restored.ok()) {
            persist_fail("Resolve" + at + ": " +
                         restored.status().ToString());
            break;
          }
          if (restored->id() != expected.id() ||
              restored->lineage() != expected.lineage()) {
            persist_fail("snapshot identity divergence" + at);
            break;
          }
          if (SerializeGraphDb(restored->db()) !=
              SerializeGraphDb(expected.db())) {
            persist_fail("serialization divergence" + at);
            break;
          }
          std::string index_diff = CompareIndexes(
              restored->db(), *restored->label_index(), expected.db(),
              *expected.label_index(), /*old_to_ref=*/nullptr);
          if (!index_diff.empty()) {
            persist_fail("index divergence" + at + ": " + index_diff);
            break;
          }
          ++report.persisted_versions;
        }
        Result<DbHandle> restored_latest = restored_registry.Resolve("churn");
        if (!restored_latest.ok() ||
            restored_latest->version() != latest.version()) {
          persist_fail("latest is version " +
                       (restored_latest.ok()
                            ? std::to_string(restored_latest->version())
                            : restored_latest.status().ToString()) +
                       ", want " + std::to_string(latest.version()));
        } else if (report.ok()) {
          // Engine answer on the restored data. Registering a copy under
          // a scratch lineage forces a fresh solve (new ResultCache key)
          // over the mmap-backed facts instead of a cache hit on the
          // original (lineage, version).
          DbRegistry scratch;
          ResilienceRequest request;
          request.regex = instance->query.regex;
          request.semantics = instance->semantics;
          request.db = scratch.Register(restored_latest->db());
          ResilienceResponse restored_response = engine_.Evaluate(request);
          request.db = latest;
          ResilienceResponse memory_response = engine_.Evaluate(request);
          if (IsInconclusive(restored_response.status.code()) ||
              IsInconclusive(memory_response.status.code())) {
            ++report.inconclusive;
          } else if (restored_response.status.code() !=
                     memory_response.status.code()) {
            persist_fail("answer status divergence: restored " +
                         restored_response.status.ToString() +
                         " vs in-memory " +
                         memory_response.status.ToString());
          } else if (memory_response.status.ok() &&
                     (restored_response.result.infinite !=
                          memory_response.result.infinite ||
                      (!memory_response.result.infinite &&
                       restored_response.result.value !=
                           memory_response.result.value))) {
            persist_fail("answer value divergence on restored latest");
          }
        }
      }
    }
    std::error_code ec;
    std::filesystem::remove_all(storage_dir, ec);
  }
  return report;
}

}  // namespace workload
}  // namespace rpqres
