// rpqres — workload/query_generator: class-stratified random regex
// generation.
//
// Each Figure 1 cell the solvers specialize on (local / bipartite chain /
// one-dangling / NP-hard) gets its own template family; candidates are
// drawn from the family, then verified *post hoc* through the real
// classifier, so a generated query is guaranteed to actually land in its
// target cell — the generator can be wrong, the classifier cannot. The
// extra kBoundary class mutates a query from a random cell by one edit,
// producing adversarial near-boundary languages whose cell is whatever
// the classifier says it is.

#ifndef RPQRES_WORKLOAD_QUERY_GENERATOR_H_
#define RPQRES_WORKLOAD_QUERY_GENERATOR_H_

#include <array>
#include <string>

#include "classify/classifier.h"
#include "util/rng.h"
#include "util/status.h"

namespace rpqres {
namespace workload {

/// The stratification target of a generated query: the three solver-backed
/// PTIME cells of Figure 1, the hard column, and near-boundary mutants.
enum class QueryClass {
  kLocal,        ///< IF(L) local (Thm 3.13 applies)
  kBcl,          ///< IF(L) a bipartite chain language (Prp 7.6)
  kOneDangling,  ///< IF(L) one-dangling or mirrored (Prp 7.9)
  kHard,         ///< classified NP-hard (exact solver territory)
  kBoundary,     ///< one-edit mutant of another class; any cell accepted
};

inline constexpr std::array<QueryClass, 5> kAllQueryClasses = {
    QueryClass::kLocal, QueryClass::kBcl, QueryClass::kOneDangling,
    QueryClass::kHard, QueryClass::kBoundary};

/// Stable lowercase name ("local", "bcl", "one-dangling", "hard",
/// "boundary") for reports and JSON.
const char* QueryClassName(QueryClass c);

/// A generated query with its post-hoc classifier verdict.
struct GeneratedQuery {
  std::string regex;
  QueryClass target = QueryClass::kLocal;
  Classification classification;
  /// Candidates drawn (including the accepted one) before one passed
  /// verification.
  int attempts = 0;
};

/// Draws a random query targeted at `target`, retrying up to
/// `max_attempts` candidates until the classifier confirms the cell
/// (ResourceExhausted-style Internal error if none passes — with the
/// shipped templates this is not expected for any seed).
/// `max_word_length` bounds the classifier's four-legged witness search;
/// the workload default of 8 (vs the library's 12) keeps adversarial
/// UNCLASSIFIED star languages from costing tens of seconds each — it
/// can only flip NP-hard labels to UNCLASSIFIED, both of which route to
/// the exact solver anyway.
Result<GeneratedQuery> GenerateQuery(Rng* rng, QueryClass target,
                                     int max_attempts = 64,
                                     int max_word_length = 8);

/// True iff `classification` lands in `target`'s cell (kBoundary accepts
/// every non-error verdict). Exposed for tests and the oracle report.
bool MatchesQueryClass(QueryClass target,
                       const Classification& classification);

}  // namespace workload
}  // namespace rpqres

#endif  // RPQRES_WORKLOAD_QUERY_GENERATOR_H_
