// rpqres — workload/chaos: fork-based crash-chaos sweep over failpoint
// sites.
//
// The durability statement the storage stack makes is narrow and testable:
// a commit acknowledged OK survives a process crash at ANY later point,
// and whatever version a crashed process left behind restores to a state
// byte-identical to the in-memory state that produced it. The chaos
// harness turns that into an executable check per (site, seed):
//
//   1. fork() a child. The child arms exactly one failpoint site with a
//      deterministic crash trigger (kCrash, fire-on-Nth with N derived
//      from the seed), then runs a seeded commit storm against a fresh
//      persistent DbRegistry — registry only, no engine threads — acking
//      each durable version to a side file, and finally reopens its own
//      storage (so read-path sites like segment.mmap crash too).
//   2. the parent waits: exit 0 (site never reached its Nth evaluation)
//      and exit kCrashExitStatus (crashed as injected) are both valid;
//      anything else — another status, a signal, ASan abort — fails.
//   3. the parent reopens the directory with DbRegistry::OpenStorage and
//      checks, against an in-memory twin replaying the same seeded op
//      stream to the restored version V:
//        durability   V >= the last version the child acked;
//        bytes        serialization of restored@V == twin@V;
//        spans        the restored label index == twin's, span for span;
//        answers      the engine's resilience answer on restored@V equals
//                     the answer on twin@V.
//
// One uint64 seed fully determines the instance, the op stream, and the
// crash point — a failing (site, seed) pair replays exactly.

#ifndef RPQRES_WORKLOAD_CHAOS_H_
#define RPQRES_WORKLOAD_CHAOS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "engine/engine.h"
#include "workload/workload.h"

namespace rpqres {
namespace workload {

/// Registry tuning for chaos storms: compact every few commits so the
/// compaction crash window (segment rewritten, journal not yet reset) is
/// part of every sweep, and skip retry backoff (crash faults never
/// retry, but a zero backoff keeps accidental transient paths fast).
inline DbRegistry::Options DefaultChaosRegistryOptions() {
  DbRegistry::Options options;
  options.compaction_min_overlay = 8;
  options.compaction_fraction = 0.0;
  options.storage_retry_backoff_micros = 0;
  return options;
}

struct ChaosOptions {
  /// Delta commits per child storm.
  int num_commits = 8;
  /// Ops per commit are drawn uniformly from [1, max_ops_per_commit].
  int max_ops_per_commit = 8;
  /// Op mix, in percent (the remainder are fact adds / bumps).
  int remove_percent = 35;
  int add_node_percent = 10;
  /// The crash fires on the Nth evaluation of the armed site, with N
  /// drawn from [1, max_crash_nth] per (site, seed). Larger values spread
  /// crashes deeper into the storm; evaluations past the storm's actual
  /// site-hit count simply never fire (the child exits 0). Rarely-hit
  /// sites (segment.* fire once per register/compaction) crash on roughly
  /// a third of seeds at the default.
  uint64_t max_crash_nth = 6;
  /// Seed → base instance derivation (same as churn / the oracle).
  WorkloadOptions workload;
  /// Engine configuration for the parent-side answer checks.
  EngineOptions engine;
  /// Exact-solver budget per answer check; exhausted pairs count
  /// inconclusive, not as mismatches.
  uint64_t max_exact_search_nodes = 200'000;
  /// Registry options for both the child's persistent registry and the
  /// parent's in-memory twin (identical compaction decisions matter).
  DbRegistry::Options registry = DefaultChaosRegistryOptions();
  /// Root for per-run storage directories; empty = the system temp dir.
  std::string storage_root;
};

/// Outcome of one (site, seed) chaos run.
struct ChaosReport {
  uint64_t seed = 0;
  std::string site;
  /// True when the seed failed workload generation (nothing was run).
  bool generation_failed = false;
  /// True when the child crashed at the armed site (exit status 42).
  bool crashed = false;
  int exit_status = 0;
  /// Last version the child acknowledged durable before exiting.
  uint32_t restored_version = 0;  ///< latest version after reopen (0 = none)
  uint32_t acked_version = 0;
  /// Answer checks skipped for exact-budget exhaustion.
  int inconclusive = 0;
  /// Seed-stamped divergence descriptions; empty == pass.
  std::vector<std::string> mismatches;

  bool ok() const { return mismatches.empty(); }
};

/// Reusable chaos runner (one parent-side engine across runs).
class ChaosHarness {
 public:
  explicit ChaosHarness(ChaosOptions options = {});

  /// Forks, crashes, reopens, and verifies one (site, seed) pair.
  ChaosReport Run(std::string_view site, uint64_t seed);

  /// Runs `seed` against every registered failpoint site
  /// (fault::KnownSites()); one report per site.
  std::vector<ChaosReport> RunAllSites(uint64_t seed);

  const ChaosOptions& options() const { return options_; }
  ResilienceEngine& engine() { return engine_; }

 private:
  ChaosOptions options_;
  ResilienceEngine engine_;
};

}  // namespace workload
}  // namespace rpqres

#endif  // RPQRES_WORKLOAD_CHAOS_H_
