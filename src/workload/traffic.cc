#include "workload/traffic.h"

#include <utility>

#include "graphdb/generators.h"
#include "graphdb/label_index.h"

namespace rpqres {
namespace workload {

namespace {

// SplitMix64 finalizer — derives independent sub-seeds so the op stream
// and every database draw from disjoint randomness.
uint64_t MixSeed(uint64_t seed, uint64_t salt) {
  uint64_t z = seed + salt * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

const std::vector<std::string>& TrafficReadPool() {
  // All PTIME under the Figure-1 classification: local languages and one
  // bounded-character-length alternation. Alphabet {a, b, c, x, y} —
  // disjoint from kNoiseLabels by construction.
  static const std::vector<std::string> pool = {
      "ax*b",
      "a(x|y)*b",
      "ab",
      "ab|bc",
      "cx*a",
      "b(x|y)*c",
  };
  return pool;
}

TrafficTrace::TrafficTrace(uint64_t seed, TrafficOptions options)
    : seed_(seed), options_(options), rng_(MixSeed(seed, 0xa11ce)) {
  if (options_.num_lineages < 1) options_.num_lineages = 1;
  if (options_.hot_lineages > options_.num_lineages) {
    options_.hot_lineages = options_.num_lineages;
  }
  if (options_.num_tenants < 1) options_.num_tenants = 1;
  if (options_.queries_per_lineage < 1) options_.queries_per_lineage = 1;
  names_.reserve(options_.num_lineages);
  for (int i = 0; i < options_.num_lineages; ++i) {
    names_.push_back("lin" + std::to_string(i));
  }
}

GraphDb TrafficTrace::MakeDb(int lineage) const {
  Rng rng(MixSeed(seed_, 0xdb0000 + static_cast<uint64_t>(lineage)));
  return RandomGraphDb(&rng, options_.db_num_nodes, options_.db_num_facts,
                       {'a', 'b', 'c', 'x', 'y'},
                       options_.db_max_multiplicity);
}

std::vector<TrafficOp> TrafficTrace::NextOps(int count) {
  const std::vector<std::string>& pool = TrafficReadPool();
  std::vector<TrafficOp> ops;
  ops.reserve(count);
  for (int i = 0; i < count; ++i) {
    TrafficOp op;
    op.tenant = static_cast<int>(rng_.NextBelow(options_.num_tenants));
    const int cold_lineages = options_.num_lineages - options_.hot_lineages;
    const bool hot = options_.hot_lineages > 0 &&
                     (cold_lineages == 0 ||
                      rng_.NextChance(options_.hot_per_mille, 1000));
    op.lineage =
        hot ? static_cast<int>(rng_.NextBelow(options_.hot_lineages))
            : options_.hot_lineages +
                  static_cast<int>(rng_.NextBelow(cold_lineages));
    op.db_ref = names_[op.lineage] + "@latest";
    if (hot && rng_.NextChance(options_.commit_per_mille, 1000)) {
      op.kind = TrafficOp::Kind::kCommit;
      op.op_seed = rng_.Next();
    } else {
      op.kind = TrafficOp::Kind::kRead;
      const int query = static_cast<int>(
          rng_.NextBelow(options_.queries_per_lineage));
      op.regex = pool[(static_cast<size_t>(op.lineage) *
                           options_.queries_per_lineage +
                       query) %
                      pool.size()];
      op.semantics = rng_.NextChance(1, 2) ? Semantics::kBag : Semantics::kSet;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

Status TrafficTrace::ApplyCommit(const TrafficOp& op, DbRegistry* registry) {
  Result<DbHandle> latest = registry->Resolve(op.db_ref);
  if (!latest.ok()) return latest.status();
  DeltaBatch delta = registry->BeginDelta(*latest);
  Rng rng(op.op_seed);

  // Add a fresh node and 1–3 noise facts into it from existing nodes —
  // labels outside every read query's alphabet, so answers don't move.
  const NodeId fresh = delta.AddNode();
  const int additions = 1 + static_cast<int>(rng.NextBelow(3));
  const int num_nodes = latest->db().num_nodes();
  for (int i = 0; i < additions; ++i) {
    const NodeId source =
        static_cast<NodeId>(rng.NextBelow(static_cast<uint64_t>(num_nodes)));
    const char label = kNoiseLabels[rng.NextBelow(2)];
    Result<FactId> added = delta.AddFact(source, label, fresh);
    if (!added.ok()) return added.status();
  }

  // Occasionally tombstone one earlier noise fact so sustained traffic
  // also exercises overlay removals and eventual compaction.
  if (rng.NextChance(3, 10)) {
    for (char label : kNoiseLabels) {
      const std::span<const FactId> facts = latest->label_index()->Facts(label);
      if (facts.empty()) continue;
      const Fact& victim =
          latest->db().fact(facts[rng.NextBelow(facts.size())]);
      RPQRES_RETURN_IF_ERROR(
          delta.RemoveFact(victim.source, victim.label, victim.target));
      break;
    }
  }

  Result<DbHandle> committed = delta.Commit();
  return committed.ok() ? Status::OK() : committed.status();
}

}  // namespace workload
}  // namespace rpqres
