#include "workload/differential_oracle.h"

#include <chrono>
#include <utility>

#include "graphdb/serialization.h"
#include "lang/language.h"
#include "resilience/exact.h"
#include "resilience/resilience.h"

namespace rpqres {
namespace workload {
namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Re-judges one candidate database outside the engine — the minimizer's
/// inner loop. Runs the full oracle predicate (plan vs exact, witness
/// checks, brute-force third opinion on small instances) so every kind of
/// detected mismatch keeps reproducing while the database shrinks. The
/// plan depends only on the language and is derived once by the caller.
/// Returns the mismatch line, empty on agreement or budget exhaustion.
std::string JudgeOnce(const Language& lang, const ResiliencePlan& plan,
                      const GraphDb& db, Semantics semantics,
                      const ExactOptions& exact_options,
                      int brute_force_max_facts) {
  ResilienceResponse response;
  response.differential.emplace();
  Result<ResilienceResult> primary =
      ComputeResilienceWithPlan(plan, db, semantics, exact_options);
  if (primary.ok()) {
    response.result = *std::move(primary);
  } else {
    response.status = primary.status();
  }
  Result<ResilienceResult> reference =
      SolveExactResilience(lang, db, semantics, exact_options);
  if (reference.ok()) {
    response.differential->reference_result = *std::move(reference);
  } else {
    response.differential->reference_status = reference.status();
  }
  JudgeDifferential(lang, db, semantics, &response);
  if (!response.differential->mismatch.empty() ||
      response.differential->inconclusive) {
    return response.differential->mismatch;
  }
  if (response.status.ok() && db.num_facts() <= brute_force_max_facts) {
    Result<ResilienceResult> brute =
        SolveBruteForceResilience(lang, db, semantics, brute_force_max_facts);
    if (brute.ok() && (brute->infinite != response.result.infinite ||
                       (!brute->infinite &&
                        brute->value != response.result.value))) {
      return "brute-force divergence";
    }
  }
  return "";
}

}  // namespace

DifferentialOracle::DifferentialOracle(OracleOptions options)
    : options_([&options] {
        options.engine.max_exact_search_nodes = options.max_exact_search_nodes;
        // Compile-side classification must match generation-side cost
        // control (adversarial star languages make the length-12 witness
        // search explode).
        options.engine.max_word_length =
            options.workload.classify_max_word_length;
        return std::move(options);
      }()),
      engine_(options_.engine) {}

Result<WorkloadInstance> DifferentialOracle::BuildInstance(
    uint64_t seed) const {
  return MakeWorkloadInstance(seed, options_.workload);
}

std::string DifferentialOracle::BruteForceCheck(
    const WorkloadInstance& instance, const ResilienceResponse& response,
    OracleClassReport* per_class) {
  if (!response.status.ok()) return "";
  if (instance.db.num_facts() > options_.brute_force_max_facts) return "";
  Language lang = Language::MustFromRegexString(instance.query.regex);
  Result<ResilienceResult> brute = SolveBruteForceResilience(
      lang, instance.db, instance.semantics, options_.brute_force_max_facts);
  if (!brute.ok()) return "";  // out of range etc. — no third opinion
  ++per_class->brute_force_checked;
  if (brute->infinite != response.result.infinite) {
    return "brute-force infinite divergence: primary=" +
           std::to_string(response.result.infinite) + " (" +
           response.result.algorithm +
           ") vs brute=" + std::to_string(brute->infinite);
  }
  if (!brute->infinite && brute->value != response.result.value) {
    return "brute-force value divergence: primary=" +
           std::to_string(response.result.value) + " (" +
           response.result.algorithm +
           ") vs brute=" + std::to_string(brute->value);
  }
  return "";
}

OracleMismatch DifferentialOracle::BuildMismatch(
    const WorkloadInstance& instance, std::string detail) {
  OracleMismatch mismatch;
  mismatch.seed = instance.seed;
  mismatch.query_class = instance.query_class;
  mismatch.regex = instance.query.regex;
  mismatch.semantics = instance.semantics;
  mismatch.detail = std::move(detail);
  mismatch.replay = options_.replay_binary + " --replay " +
                    std::to_string(instance.seed);

  GraphDb minimized = instance.db;
  Language lang = Language::MustFromRegexString(instance.query.regex);
  Result<ResiliencePlan> plan = PlanResilience(lang);
  if (options_.minimize_counterexamples && plan.ok()) {
    ExactOptions exact_options;
    exact_options.max_search_nodes = options_.max_exact_search_nodes;
    int budget = options_.minimize_solve_budget;
    bool progress = true;
    while (progress && budget > 0) {
      progress = false;
      for (FactId f = minimized.num_facts() - 1; f >= 0 && budget > 0; --f) {
        GraphDb smaller = minimized.RemoveFacts({f});
        --budget;
        if (!JudgeOnce(lang, *plan, smaller, instance.semantics,
                       exact_options, options_.brute_force_max_facts)
                 .empty()) {
          minimized = std::move(smaller);
          progress = true;
          break;  // fact ids shifted; rescan from the new tail
        }
      }
    }
  }
  mismatch.minimized_db = SerializeGraphDb(minimized);
  mismatch.minimized_facts = minimized.num_facts();
  return mismatch;
}

void DifferentialOracle::CheckBatch(
    const std::vector<WorkloadInstance>& instances,
    OracleClassReport* per_class, OracleReport* report) {
  // Register every batch database: requests then share immutable
  // snapshots (with per-label indexes) instead of borrowing raw
  // pointers. The per-instance copy + index build is deliberate, not an
  // oversight: the oracle is the correctness harness, and going through
  // Register means the production hot path (indexed flow construction)
  // is what gets differentially validated on every random instance; the
  // copies are noise next to the exact reference solves.
  std::vector<ResilienceRequest> requests;
  requests.reserve(instances.size());
  for (const WorkloadInstance& instance : instances) {
    ResilienceRequest request;
    request.regex = instance.query.regex;
    request.db = registry_.Register(instance.db,
                                    "seed:" + std::to_string(instance.seed));
    request.semantics = instance.semantics;
    requests.push_back(std::move(request));
  }
  std::vector<ResilienceResponse> responses =
      engine_.EvaluateDifferential(requests);
  for (size_t i = 0; i < instances.size(); ++i) {
    const WorkloadInstance& instance = instances[i];
    ResilienceResponse& response = responses[i];
    ++per_class->instances;
    ++report->instances;
    if (!response.stats.algorithm.empty()) {
      ++per_class->by_algorithm[response.stats.algorithm];
    }
    bool inconclusive = response.differential.has_value() &&
                        response.differential->inconclusive;
    if (inconclusive) {
      ++per_class->inconclusive;
      ++report->inconclusive;
    }
    std::string detail = response.differential.has_value()
                             ? response.differential->mismatch
                             : std::string();
    if (detail.empty()) {
      detail = BruteForceCheck(instance, response, per_class);
    }
    if (!detail.empty()) {
      ++per_class->mismatches;
      report->mismatches.push_back(
          BuildMismatch(instance, std::move(detail)));
    }
    registry_.Unregister(requests[i].db.id());
  }
}

OracleReport DifferentialOracle::RunAll() {
  OracleReport report;
  auto run_start = std::chrono::steady_clock::now();
  for (QueryClass query_class : kAllQueryClasses) {
    OracleClassReport per_class;
    per_class.query_class = query_class;
    auto class_start = std::chrono::steady_clock::now();

    std::vector<WorkloadInstance> instances;
    instances.reserve(options_.instances_per_class);
    for (int i = 0; i < options_.instances_per_class; ++i) {
      uint64_t seed = SeedFor(options_.base_seed, query_class, i);
      Result<WorkloadInstance> instance = BuildInstance(seed);
      if (!instance.ok()) {
        ++per_class.generation_failures;
        ++report.generation_failures;
        continue;
      }
      instances.push_back(*std::move(instance));
    }
    CheckBatch(instances, &per_class, &report);

    per_class.wall_micros = MicrosSince(class_start);
    report.per_class.push_back(std::move(per_class));
  }
  report.wall_micros = MicrosSince(run_start);
  return report;
}

OracleReport DifferentialOracle::RunSeeds(const std::vector<uint64_t>& seeds) {
  OracleReport report;
  auto run_start = std::chrono::steady_clock::now();
  // Group by the class each seed encodes, preserving order within a class.
  for (QueryClass query_class : kAllQueryClasses) {
    std::vector<WorkloadInstance> instances;
    OracleClassReport per_class;
    per_class.query_class = query_class;
    auto class_start = std::chrono::steady_clock::now();
    for (uint64_t seed : seeds) {
      if (QueryClassForSeed(seed) != query_class) continue;
      Result<WorkloadInstance> instance = BuildInstance(seed);
      if (!instance.ok()) {
        ++per_class.generation_failures;
        ++report.generation_failures;
        continue;
      }
      instances.push_back(*std::move(instance));
    }
    if (instances.empty() && per_class.generation_failures == 0) continue;
    CheckBatch(instances, &per_class, &report);
    per_class.wall_micros = MicrosSince(class_start);
    report.per_class.push_back(std::move(per_class));
  }
  report.wall_micros = MicrosSince(run_start);
  return report;
}

}  // namespace workload
}  // namespace rpqres
