// rpqres — workload/differential_oracle: the standing correctness harness.
//
// The paper's dichotomy only holds if the polynomial solvers (Thm 3.13,
// Prp 7.6, Prp 7.9) agree with the exponential exact solver on every
// language in their class. The oracle makes that an executable statement:
// it derives seeded workload instances stratified by Figure 1 cell, runs
// each through the engine's differential batch mode (compiled kAuto plan
// vs exact reference), cross-checks tiny instances against the all-subsets
// brute force, verifies every witness contingency set actually falsifies
// the query, and — on any disagreement — greedily deletes facts until the
// counterexample is minimal, then reports it as a one-line replayable
// seed (`bench_workload --replay <seed>`).

#ifndef RPQRES_WORKLOAD_DIFFERENTIAL_ORACLE_H_
#define RPQRES_WORKLOAD_DIFFERENTIAL_ORACLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/db_registry.h"
#include "engine/engine.h"
#include "engine/request.h"
#include "util/status.h"
#include "workload/workload.h"

namespace rpqres {
namespace workload {

struct OracleOptions {
  /// Seeds are drawn class-stratified starting here (SeedFor).
  uint64_t base_seed = 20250729;
  /// Instances derived per query class.
  int instances_per_class = 200;
  /// Forwarded to MakeWorkloadInstance.
  WorkloadOptions workload;
  /// Engine configuration (thread pool, plan cache) for the batch runs.
  EngineOptions engine;
  /// Instances with at most this many facts additionally get the
  /// all-subsets brute-force third opinion.
  int brute_force_max_facts = 12;
  /// Exact-solver node budget per solve (overrides engine.max_exact_
  /// search_nodes). Adversarial star languages over cyclic databases can
  /// make the branch & bound explode; pairs that exhaust the budget are
  /// counted inconclusive, not as mismatches. 200k nodes keeps the worst
  /// oracle-sized instance under ~1 s while leaving >99% of instances
  /// fully decided.
  uint64_t max_exact_search_nodes = 200'000;
  /// Greedily shrink mismatching databases (delete facts while the
  /// mismatch persists), paying at most this many extra differential
  /// solves per counterexample.
  bool minimize_counterexamples = true;
  int minimize_solve_budget = 400;
  /// Binary name used in the printed replay command.
  std::string replay_binary = "bench_workload";
};

/// One confirmed disagreement, minimized and replayable.
struct OracleMismatch {
  uint64_t seed = 0;
  QueryClass query_class = QueryClass::kLocal;
  std::string regex;
  Semantics semantics = Semantics::kSet;
  /// One-line description of the divergence (from JudgeDifferential or
  /// the brute-force cross-check).
  std::string detail;
  /// "<replay_binary> --replay <seed>" — paste-ready.
  std::string replay;
  /// The shrunken counterexample database (graphdb/serialization format)
  /// and its size; equals the original instance when minimization is off
  /// or nothing could be deleted.
  std::string minimized_db;
  int minimized_facts = 0;
};

/// Aggregates for one query class.
struct OracleClassReport {
  QueryClass query_class = QueryClass::kLocal;
  int instances = 0;
  int mismatches = 0;
  /// Instances whose seed failed query generation (classifier never
  /// confirmed the target cell within the attempt budget).
  int generation_failures = 0;
  /// Primary-side solver observed, by ResilienceResult::algorithm.
  std::map<std::string, int64_t> by_algorithm;
  /// Instances that additionally passed the brute-force cross-check.
  int brute_force_checked = 0;
  /// Pairs that exhausted the exact-solver budget (no verdict).
  int inconclusive = 0;
  double wall_micros = 0;
};

/// The full oracle run.
struct OracleReport {
  std::vector<OracleClassReport> per_class;
  std::vector<OracleMismatch> mismatches;
  int64_t instances = 0;
  int64_t generation_failures = 0;
  int64_t inconclusive = 0;
  double wall_micros = 0;

  bool clean() const { return mismatches.empty(); }
};

class DifferentialOracle {
 public:
  explicit DifferentialOracle(OracleOptions options = {});

  /// Runs instances_per_class seeded instances for every query class.
  OracleReport RunAll();

  /// Runs exactly the given seeds (replay / targeted re-check). Seeds
  /// carry their own class (QueryClassForSeed).
  OracleReport RunSeeds(const std::vector<uint64_t>& seeds);

  /// Derives the instance a seed denotes, without running any solver.
  Result<WorkloadInstance> BuildInstance(uint64_t seed) const;

  ResilienceEngine& engine() { return engine_; }
  const OracleOptions& options() const { return options_; }

 private:
  /// Runs one class-homogeneous batch through the engine differential
  /// plus the extra oracle checks, folding results into the reports.
  /// Instances are registered into the oracle's DbRegistry for the
  /// duration of the batch (handles carry the per-label index).
  void CheckBatch(const std::vector<WorkloadInstance>& instances,
                  OracleClassReport* per_class, OracleReport* report);

  /// Brute-force third opinion; returns a mismatch line or empty.
  std::string BruteForceCheck(const WorkloadInstance& instance,
                              const ResilienceResponse& response,
                              OracleClassReport* per_class);

  /// Builds the mismatch record, minimizing the database if configured.
  OracleMismatch BuildMismatch(const WorkloadInstance& instance,
                               std::string detail);

  OracleOptions options_;
  ResilienceEngine engine_;
  /// Scratch registry for batch databases; entries are unregistered after
  /// each batch (in-flight handles keep their snapshots alive).
  DbRegistry registry_;
};

}  // namespace workload
}  // namespace rpqres

#endif  // RPQRES_WORKLOAD_DIFFERENTIAL_ORACLE_H_
