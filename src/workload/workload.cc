#include "workload/workload.h"

#include <algorithm>
#include <utility>

#include "lang/language.h"

namespace rpqres {
namespace workload {
namespace {

size_t IndexOfClass(QueryClass query_class) {
  for (size_t i = 0; i < kAllQueryClasses.size(); ++i) {
    if (kAllQueryClasses[i] == query_class) return i;
  }
  return 0;
}

}  // namespace

QueryClass QueryClassForSeed(uint64_t seed) {
  return kAllQueryClasses[seed % kAllQueryClasses.size()];
}

uint64_t SeedFor(uint64_t base_seed, QueryClass query_class, int index) {
  const uint64_t n = kAllQueryClasses.size();
  return (base_seed - base_seed % n) + static_cast<uint64_t>(index) * n +
         IndexOfClass(query_class);
}

Result<WorkloadInstance> MakeWorkloadInstance(uint64_t seed,
                                              const WorkloadOptions& options) {
  WorkloadInstance instance;
  instance.seed = seed;
  instance.query_class = QueryClassForSeed(seed);
  Rng rng(seed);
  RPQRES_ASSIGN_OR_RETURN(
      instance.query,
      GenerateQuery(&rng, instance.query_class, options.max_query_attempts,
                    options.classify_max_word_length));

  Language lang = Language::MustFromRegexString(instance.query.regex);

  // Database alphabet: the query's own letters, plus (usually) one
  // distractor letter the query never matches — purely-matching
  // alphabets miss deletion-irrelevant facts.
  std::vector<char> labels = lang.used_letters();
  if (labels.empty()) labels.push_back('a');
  if (rng.NextChance(2, 3)) {
    for (char candidate = 'a'; candidate <= 'g'; ++candidate) {
      if (!std::binary_search(labels.begin(), labels.end(), candidate)) {
        labels.push_back(candidate);
        break;
      }
    }
  }

  // Word-soup seeding: short words of L laid out as ready-made matches.
  std::vector<std::string> words;
  Result<std::vector<std::string>> short_words = lang.WordsUpTo(5, 16);
  if (short_words.ok() && !short_words->empty()) {
    words = *std::move(short_words);
  }

  instance.shape = kAllDbShapes[rng.NextBelow(kAllDbShapes.size())];
  instance.db = GenerateDb(&rng, instance.shape, labels, words, options.db);
  instance.semantics = rng.NextChance(1, 2) ? Semantics::kSet : Semantics::kBag;
  return instance;
}

std::string DescribeInstance(const WorkloadInstance& instance) {
  std::string out = "seed=" + std::to_string(instance.seed);
  out += " class=";
  out += QueryClassName(instance.query_class);
  out += " regex=" + instance.query.regex;
  out += " cell=";
  out += ComplexityClassName(instance.query.classification.complexity);
  out += " shape=";
  out += DbShapeName(instance.shape);
  out += " nodes=" + std::to_string(instance.db.num_nodes());
  out += " facts=" + std::to_string(instance.db.num_facts());
  out += instance.semantics == Semantics::kSet ? " semantics=set"
                                               : " semantics=bag";
  return out;
}

}  // namespace workload
}  // namespace rpqres
