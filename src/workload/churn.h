// rpqres — workload/churn: seeded delta-commit churn sequences.
//
// The versioned-registry invariant worth an executable statement: any
// sequence of delta commits must be indistinguishable from registering
// the final database from scratch. A churn sequence derives a workload
// instance from one uint64 seed (same derivation as the oracle), then
// interleaves randomized delta batches (fact adds, multiplicity bumps,
// removals, node adds) with queries; after every commit it checks, against
// an independently maintained flat twin:
//
//   1. serialization — byte-identical output,
//   2. the incremental LabelIndex — span-identical to a full rebuild over
//      the same overlay, and (through the live-fact renumbering) to the
//      index of the from-scratch database,
//   3. resilience — the engine's answer on the delta-built snapshot
//      equals the answer on a freshly registered rebuild, with the
//      versioned witness verified.
//
// One seed fully determines the instance, the op stream, and every check
// — a failing seed is a complete bug report.

#ifndef RPQRES_WORKLOAD_CHURN_H_
#define RPQRES_WORKLOAD_CHURN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "workload/workload.h"

namespace rpqres {
namespace workload {

struct ChurnOptions {
  /// Delta commits per sequence.
  int num_commits = 6;
  /// Ops per commit are drawn uniformly from [1, max_ops_per_commit].
  int max_ops_per_commit = 8;
  /// Op mix, in percent (the remainder are fact adds / bumps).
  int remove_percent = 35;
  int add_node_percent = 10;
  /// Seed → base instance derivation (same as the oracle's).
  WorkloadOptions workload;
  /// Engine configuration for the answer checks.
  EngineOptions engine;
  /// Exact-solver budget per answer check; exhausted pairs count
  /// inconclusive, not as mismatches.
  uint64_t max_exact_search_nodes = 200'000;
  /// Registry compaction tuning for the sequence's lineage.
  DbRegistry::Options registry;
  /// When true, the sequence's registry persists to a fresh per-seed
  /// directory under `storage_root`; after the final commit the registry
  /// is destroyed and reopened with DbRegistry::OpenStorage, and every
  /// version in the durable window (last written segment → latest) is
  /// checked against its in-memory snapshot: identical (lineage,
  /// version, snapshot id), byte-identical serialization, span-identical
  /// label index, and equal engine answers on the latest version. The
  /// directory is removed afterwards.
  bool persist = false;
  /// Root for per-seed storage directories; empty = the system temp dir.
  std::string storage_root;
};

/// Outcome of one churn sequence.
struct ChurnReport {
  uint64_t seed = 0;
  std::string regex;
  Semantics semantics = Semantics::kSet;
  int commits = 0;
  int64_t ops = 0;
  /// Commits whose overlay was folded into a fresh flat base.
  int compactions = 0;
  /// Answer checks skipped for exact-budget exhaustion.
  int inconclusive = 0;
  /// Versions round-tripped through storage (persist mode only).
  int persisted_versions = 0;
  /// True when the seed failed workload generation (nothing was checked).
  bool generation_failed = false;
  /// Human-readable, seed-stamped divergence descriptions; empty == pass.
  std::vector<std::string> mismatches;

  bool ok() const { return mismatches.empty(); }
};

/// Reusable churn runner (one engine across sequences, so sweeping many
/// seeds does not re-spin thread pools).
class ChurnHarness {
 public:
  explicit ChurnHarness(ChurnOptions options = {});

  /// Runs the churn sequence `seed` denotes end-to-end.
  ChurnReport Run(uint64_t seed);

  const ChurnOptions& options() const { return options_; }
  ResilienceEngine& engine() { return engine_; }

 private:
  ChurnOptions options_;
  ResilienceEngine engine_;
};

}  // namespace workload
}  // namespace rpqres

#endif  // RPQRES_WORKLOAD_CHURN_H_
