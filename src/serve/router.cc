#include "serve/router.h"

#include <iterator>
#include <utility>

#include "obs/export.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace rpqres::serve {

namespace {

std::string_view ShedStatusLabel(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kUnavailable:
      return "unavailable";
    default:
      return "error";
  }
}

int ThreadsPerShard(const ShardedRegistry& shards) {
  const int configured = shards.engine(0).options().num_threads;
  return configured > 0 ? configured : ThreadPool::DefaultNumThreads();
}

}  // namespace

Router::Router(ShardedRegistry* shards, RouterOptions options)
    : shards_(shards),
      options_(options),
      admission_(shards->num_shards(), ThreadsPerShard(*shards),
                 options.admission),
      admission_total_(metrics_.Counter(
          "rpqres_router_admission_total",
          "Admission decisions by outcome (admitted / shed_*)", "decision")),
      tenant_requests_(metrics_.Counter("rpqres_router_tenant_requests_total",
                                        "Requests submitted per tenant",
                                        "tenant")),
      tenant_sheds_(metrics_.Counter("rpqres_router_tenant_sheds_total",
                                     "Requests shed at admission per tenant",
                                     "tenant")),
      tenant_latency_(metrics_.Histogram(
          "rpqres_router_tenant_latency_micros",
          "End-to-end latency of completed requests per tenant", "tenant")),
      shed_log_(options.shed_log_capacity) {}

Router::~Router() { Drain(); }

int Router::RouteShard(const ResilienceRequest& request) const {
  if (!request.db_ref.empty()) return shards_->ShardForRef(request.db_ref);
  if (request.db.valid()) return shards_->ShardForHandle(request.db);
  // No database at all: let shard 0's engine produce the error.
  return 0;
}

std::future<ResilienceResponse> Router::Submit(ServeRequest serve) {
  ResilienceRequest& request = serve.request;
  const int shard = RouteShard(request);
  if (!request.db_ref.empty()) {
    // Name resolution must happen against the home shard's registry;
    // whatever registry the caller set cannot know the placement.
    request.registry = &shards_->registry(shard);
  }
  {
    MutexLock lock(stats_mu_);
    ++stats_.submitted;
  }
  tenant_requests_->WithLabel(serve.tenant).Increment();

  obs::TraceContext trace;
  const int span = trace.Begin(obs::SpanKind::kAdmission);
  AdmissionController::Ticket ticket;
  AdmissionDecision decision;
  if (shards_->registry(shard).health() == HealthState::kFailed) {
    // A failed shard cannot answer anything trustworthy; a degraded one
    // still serves reads from memory, so only kFailed sheds here.
    decision = AdmissionDecision::kShedShardUnavailable;
  } else {
    decision = admission_.TryAdmit(shard, serve.tenant,
                                   request.options.deadline, &ticket);
  }
  trace.End(span);
  admission_total_->WithLabel(AdmissionDecisionName(decision)).Increment();

  if (decision != AdmissionDecision::kAdmitted) {
    const Status status = AdmissionStatus(decision, shard);
    {
      MutexLock lock(stats_mu_);
      switch (decision) {
        case AdmissionDecision::kShedDeadlineExpired:
          ++stats_.shed_deadline_expired;
          break;
        case AdmissionDecision::kShedDeadlineUnmeetable:
          ++stats_.shed_deadline_unmeetable;
          break;
        case AdmissionDecision::kShedShardSaturated:
          ++stats_.shed_shard_saturated;
          break;
        case AdmissionDecision::kShedTenantCap:
          ++stats_.shed_tenant_cap;
          break;
        case AdmissionDecision::kShedShardUnavailable:
          ++stats_.shed_shard_unavailable;
          break;
        case AdmissionDecision::kAdmitted:
          break;
      }
    }
    tenant_sheds_->WithLabel(serve.tenant).Increment();
    const int64_t admission_micros =
        trace.size() > 0 ? trace.spans()[0].duration_ns / 1000 : 0;
    RecordShed(decision, serve, status, admission_micros, trace);

    ResilienceResponse response;
    response.status = status;
    std::promise<ResilienceResponse> promise;
    promise.set_value(std::move(response));
    return promise.get_future();
  }

  {
    MutexLock lock(stats_mu_);
    ++stats_.admitted;
  }
  inflight_.fetch_add(1);
  const auto start = std::chrono::steady_clock::now();
  return shards_->engine(shard).Submit(
      std::move(request),
      [this, ticket, start, tenant = std::move(serve.tenant)](
          const ResilienceResponse& response) {
        (void)response;
        const double micros =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count();
        admission_.Complete(ticket, micros);
        tenant_latency_->WithLabel(tenant).Record(micros);
        {
          MutexLock lock(stats_mu_);
          ++stats_.completed;
        }
        inflight_.fetch_sub(1);
        {
          // Empty critical section: pairs the decrement with Drain's
          // locked re-check so the notify can't be missed.
          MutexLock lock(drain_mu_);
        }
        drain_cv_.NotifyAll();
      });
}

std::vector<std::future<ResilienceResponse>> Router::SubmitBatch(
    std::vector<ServeRequest> requests) {
  std::vector<std::future<ResilienceResponse>> futures;
  futures.reserve(requests.size());
  for (ServeRequest& request : requests) {
    futures.push_back(Submit(std::move(request)));
  }
  return futures;
}

ResilienceResponse Router::Evaluate(ServeRequest request) {
  return Submit(std::move(request)).get();
}

Result<DbHandle> Router::Commit(
    std::string_view tenant, std::string_view db_ref,
    const std::function<Status(DeltaBatch*)>& mutate) {
  const int shard = shards_->ShardForRef(db_ref);
  tenant_requests_->WithLabel(tenant).Increment();
  {
    MutexLock lock(stats_mu_);
    ++stats_.commits_submitted;
  }

  const HealthState health = shards_->registry(shard).health();
  if (health != HealthState::kHealthy) {
    const Status status = Status::Unavailable(
        "Commit shed: shard " + std::to_string(shard) + " storage is " +
        std::string(HealthStateName(health)));
    admission_total_
        ->WithLabel(
            AdmissionDecisionName(AdmissionDecision::kShedShardUnavailable))
        .Increment();
    tenant_sheds_->WithLabel(tenant).Increment();
    {
      MutexLock lock(stats_mu_);
      ++stats_.shed_shard_unavailable;
    }
    // Synthetic shed record: no query ran, surface the write target and
    // the health reason where the regex/algorithm would be.
    obs::SlowQueryRecord record;
    record.regex = "commit:" + std::string(db_ref);
    record.semantics = "write";
    record.status = std::string(ShedStatusLabel(status));
    record.algorithm = std::string(
        AdmissionDecisionName(AdmissionDecision::kShedShardUnavailable));
    shed_log_.Push(std::move(record));
    return status;
  }

  DbRegistry& registry = shards_->registry(shard);
  Result<DbHandle> latest = registry.Resolve(db_ref);
  if (!latest.ok()) return latest.status();
  DeltaBatch batch = registry.BeginDelta(*latest);
  const Status mutated = mutate(&batch);
  if (!mutated.ok()) return mutated;
  Result<DbHandle> committed = batch.Commit();
  {
    MutexLock lock(stats_mu_);
    if (committed.ok()) {
      ++stats_.commits_applied;
    } else if (committed.status().code() == StatusCode::kUnavailable) {
      ++stats_.commits_unavailable;
    }
  }
  return committed;
}

void Router::Drain() {
  MutexLock lock(drain_mu_);
  while (inflight_.load() != 0) drain_cv_.Wait(drain_mu_);
}

void Router::RecordShed(AdmissionDecision decision, const ServeRequest& serve,
                        const Status& status, int64_t admission_micros,
                        const obs::TraceContext& trace) {
  obs::SlowQueryRecord record;
  record.regex = serve.request.query != nullptr ? serve.request.query->regex
                                                : serve.request.regex;
  record.semantics =
      (serve.request.query != nullptr
           ? serve.request.query->semantics
           : serve.request.semantics) == Semantics::kBag
          ? "bag"
          : "set";
  record.status = std::string(ShedStatusLabel(status));
  // No solver ran; surface the shed reason where the algorithm would be.
  record.algorithm = std::string(AdmissionDecisionName(decision));
  record.total_micros = admission_micros;
  record.spans_dropped = trace.dropped();
  record.spans.assign(trace.spans(), trace.spans() + trace.size());
  shed_log_.Push(std::move(record));
}

EngineStats Router::engine_stats() const {
  EngineStats merged;
  for (int i = 0; i < shards_->num_shards(); ++i) {
    MergeEngineStats(shards_->engine(i).stats(), &merged);
  }
  return merged;
}

RouterStats Router::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

obs::MetricsSnapshot Router::TakeMetricsSnapshot() const {
  std::vector<obs::MetricsSnapshot> per_shard;
  per_shard.reserve(shards_->num_shards());
  for (int i = 0; i < shards_->num_shards(); ++i) {
    per_shard.push_back(
        shards_->engine(i).TakeMetricsSnapshot(&shards_->registry(i)));
  }
  obs::MetricsSnapshot merged = obs::MergeShardSnapshots(std::move(per_shard));

  obs::MetricsSnapshot own = metrics_.TakeSnapshot();
  for (auto& family : own.counters) {
    merged.counters.push_back(std::move(family));
  }
  for (auto& family : own.histograms) {
    merged.histograms.push_back(std::move(family));
  }
  for (int i = 0; i < shards_->num_shards(); ++i) {
    merged.gauges.push_back(
        {"rpqres_router_shard_inflight",
         "Admitted requests currently in flight on the shard",
         static_cast<double>(admission_.shard_inflight(i)),
         std::to_string(i)});
    merged.gauges.push_back(
        {"rpqres_shard_health",
         "Shard storage health (0 healthy, 1 degraded read-only, 2 failed)",
         static_cast<double>(static_cast<int>(shards_->registry(i).health())),
         std::to_string(i)});
  }
  merged.gauges.push_back({"rpqres_router_shed_log_entries",
                           "Shed records currently retained by the router",
                           static_cast<double>(shed_log_.size())});
  return merged;
}

std::string Router::ExportMetrics(MetricsFormat format) const {
  const obs::MetricsSnapshot snapshot = TakeMetricsSnapshot();
  return format == MetricsFormat::kPrometheus ? obs::ToPrometheusText(snapshot)
                                              : obs::ToJson(snapshot);
}

std::vector<obs::SlowQueryRecord> Router::shed_queries() const {
  return shed_log_.Dump();
}

std::vector<obs::SlowQueryRecord> Router::slow_queries() const {
  std::vector<obs::SlowQueryRecord> all;
  for (int i = 0; i < shards_->num_shards(); ++i) {
    std::vector<obs::SlowQueryRecord> shard = shards_->engine(i).slow_queries();
    all.insert(all.end(), std::make_move_iterator(shard.begin()),
               std::make_move_iterator(shard.end()));
  }
  std::vector<obs::SlowQueryRecord> sheds = shed_log_.Dump();
  all.insert(all.end(), std::make_move_iterator(sheds.begin()),
             std::make_move_iterator(sheds.end()));
  return all;
}

}  // namespace rpqres::serve
