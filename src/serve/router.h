// rpqres — serve/router: multi-tenant front door over a ShardedRegistry.
//
// The Router is what callers talk to in a sharded deployment:
//
//   serve::ShardedRegistry shards(4);
//   serve::Router router(&shards);
//   auto f = router.Submit({.tenant = "acme", .request = {...}});
//
// Per request it (1) resolves the target lineage to its home shard —
// by db_ref name, or by the pre-resolved handle's name — (2) runs the
// AdmissionController (bounded shard queue, per-tenant cap, deadline
// shedding), and (3) on admit hands the request to that shard's engine,
// releasing the admission slots from the engine worker the instant the
// request completes. A shed request never touches an engine: its future
// resolves immediately with kDeadlineExceeded / kResourceExhausted, the
// shed lands in the router's slow-query log with an admission-only span
// tree, and the decision is counted in router metrics.
//
// The Router also merges the fleet into one view:
//   * engine_stats()      — field-wise sum of every shard's EngineStats;
//   * TakeMetricsSnapshot — every shard's series tagged shard="i" plus
//     shard="all" roll-ups (obs::MergeShardSnapshots), with the
//     router's own admission/tenant families appended;
//   * slow_queries()      — shard logs plus the router's shed log.
//
// Lifetime: the Router must outlive its in-flight requests (completion
// callbacks run on engine workers); the destructor Drain()s, so normal
// destruction order — router before shards — is safe.

#ifndef RPQRES_SERVE_ROUTER_H_
#define RPQRES_SERVE_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "serve/admission.h"
#include "serve/sharded_registry.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace rpqres::serve {

/// One tenant-attributed unit of serving work.
struct ServeRequest {
  std::string tenant;
  ResilienceRequest request;
};

struct RouterOptions {
  AdmissionOptions admission;
  /// Capacity of the router's shed log (every shed is recorded; the ring
  /// keeps the most recent ones).
  size_t shed_log_capacity = 256;
};

/// Router-level counters; one mutex guards them all, so any snapshot is
/// internally consistent (submitted == admitted + sheds in every
/// snapshot, mirroring the engine's stats discipline).
struct RouterStats {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t completed = 0;  ///< admitted requests whose engine run finished
  int64_t shed_deadline_expired = 0;
  int64_t shed_deadline_unmeetable = 0;
  int64_t shed_shard_saturated = 0;
  int64_t shed_tenant_cap = 0;
  /// Reads refused because the home shard's storage failed outright, plus
  /// commits refused because it is degraded or failed. Degraded shards
  /// still serve reads — only writes shed here.
  int64_t shed_shard_unavailable = 0;

  int64_t commits_submitted = 0;
  int64_t commits_applied = 0;
  /// Commits that reached a healthy-looking shard but came back
  /// kUnavailable (storage faulted mid-commit; the registry rolled the
  /// version back and degraded itself).
  int64_t commits_unavailable = 0;

  int64_t sheds() const {
    return shed_deadline_expired + shed_deadline_unmeetable +
           shed_shard_saturated + shed_tenant_cap + shed_shard_unavailable;
  }
};

class Router {
 public:
  explicit Router(ShardedRegistry* shards, RouterOptions options = {});
  /// Waits for all admitted requests to complete (Drain).
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Routes, admits, and (if admitted) submits to the home shard's
  /// engine. The future resolves to the engine's response, or — on a
  /// shed — immediately to a response whose status is the admission
  /// status; a shed response carries no result.
  std::future<ResilienceResponse> Submit(ServeRequest request);

  /// Fans the batch out per shard; futures[i] corresponds to
  /// requests[i]. Requests route independently — one batch may span
  /// every shard.
  std::vector<std::future<ResilienceResponse>> SubmitBatch(
      std::vector<ServeRequest> requests);

  /// Submit + wait, for synchronous callers.
  ResilienceResponse Evaluate(ServeRequest request);

  /// Routes a write to `db_ref`'s home shard and applies `mutate` to a
  /// fresh DeltaBatch on the lineage's latest version, committing the
  /// result. Health-gated: a degraded or failed shard sheds the commit
  /// with kUnavailable before any batch is built (reads keep flowing to
  /// degraded shards via Submit). A commit that faults mid-flight comes
  /// back kUnavailable too — the registry rolled it back and degraded.
  Result<DbHandle> Commit(std::string_view tenant, std::string_view db_ref,
                          const std::function<Status(DeltaBatch*)>& mutate);

  /// Blocks until no admitted request is in flight.
  void Drain() RPQRES_EXCLUDES(drain_mu_);

  /// Field-wise sum of every shard engine's EngineStats.
  EngineStats engine_stats() const;
  RouterStats stats() const RPQRES_EXCLUDES(stats_mu_);

  /// Fleet metrics: per-shard engine series tagged shard="i", shard="all"
  /// roll-ups, per-shard registry gauges, and router-level admission and
  /// tenant families.
  obs::MetricsSnapshot TakeMetricsSnapshot() const;
  std::string ExportMetrics(MetricsFormat format) const;

  /// Sheds recorded by the router (admission-only span trees).
  std::vector<obs::SlowQueryRecord> shed_queries() const;
  /// Every retained slow/shed record: each shard's engine log followed
  /// by the router's shed log.
  std::vector<obs::SlowQueryRecord> slow_queries() const;

  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }
  ShardedRegistry& shards() { return *shards_; }
  const RouterOptions& options() const { return options_; }

 private:
  /// Home shard for a request: db_ref name if present, else the
  /// handle's lineage name.
  int RouteShard(const ResilienceRequest& request) const;
  void RecordShed(AdmissionDecision decision, const ServeRequest& request,
                  const Status& status, int64_t admission_micros,
                  const obs::TraceContext& trace);

  ShardedRegistry* const shards_;
  const RouterOptions options_;
  AdmissionController admission_;

  obs::MetricsRegistry metrics_;
  obs::CounterFamily* const admission_total_;
  obs::CounterFamily* const tenant_requests_;
  obs::CounterFamily* const tenant_sheds_;
  obs::HistogramFamily* const tenant_latency_;

  obs::SlowQueryLog shed_log_;

  mutable rpqres::Mutex stats_mu_;
  RouterStats stats_ RPQRES_GUARDED_BY(stats_mu_);

  /// Admitted-but-not-completed count. Atomic (not guarded): completion
  /// callbacks decrement it on engine workers; Drain reads it under
  /// drain_mu_ only to pair with the condvar, the counter itself needs no
  /// lock.
  std::atomic<int64_t> inflight_{0};
  rpqres::Mutex drain_mu_;
  rpqres::CondVar drain_cv_;
};

}  // namespace rpqres::serve

#endif  // RPQRES_SERVE_ROUTER_H_
