// rpqres — serve/sharded_registry: N independent engine+registry shards.
//
// Scale-out unit of the serving front end. A ShardedRegistry owns N
// shards, each a fully independent (DbRegistry, ResilienceEngine) pair:
// its own thread pool, plan cache, version-keyed ResultCache, metrics
// registry, and slow-query log. Nothing is shared between shards — no
// lock, no cache line — so adding shards adds capacity without adding
// contention, and a stuck shard cannot wedge the others.
//
// Placement is by LINEAGE: a named versioned database (DbRegistry v3
// lineage) lives wholly on one shard, chosen by hashing its name
// (FNV-1a 64). Every version of a lineage, its label indexes, and its
// cached results therefore stay shard-local; commits against
// "name@latest" and reads of any version of that lineage route to the
// same shard. The hash is a pure function of the name — routing is
// deterministic across processes and restarts (no rebalance state), and
// serve_router_test pins that.
//
// The Router (serve/router.h) sits on top: it routes requests here,
// applies admission control, and merges the shards' stats and metrics
// into one fleet view.

#ifndef RPQRES_SERVE_SHARDED_REGISTRY_H_
#define RPQRES_SERVE_SHARDED_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/db_registry.h"
#include "engine/engine.h"
#include "graphdb/graph_db.h"
#include "util/status.h"

namespace rpqres::serve {

class ShardedRegistry {
 public:
  /// Builds `num_shards` independent shards (clamped to >= 1), each
  /// engine constructed from a copy of `engine_options` and each
  /// registry from `registry_options`. Per-shard resources (pool
  /// threads, cache capacities) are what the options say — scaling the
  /// shard count scales the fleet's aggregate capacity.
  /// When registry_options.storage_dir is set, shard i persists under
  /// `<storage_dir>/shard<i>` — lineage placement is a pure function of
  /// (name, num_shards), so reopening with the same shard count finds
  /// every lineage on the shard that wrote it.
  explicit ShardedRegistry(int num_shards, EngineOptions engine_options = {},
                           DbRegistry::Options registry_options = {});

  /// Builds a persistent fleet rooted at registry_options.storage_dir
  /// and Restore()s every shard. The shard count must match the one the
  /// directory was written with (placement would silently miss lineages
  /// otherwise — detecting a mismatch is the caller's job for now).
  static Result<std::unique_ptr<ShardedRegistry>> OpenStorage(
      int num_shards, EngineOptions engine_options,
      DbRegistry::Options registry_options);

  ShardedRegistry(const ShardedRegistry&) = delete;
  ShardedRegistry& operator=(const ShardedRegistry&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// FNV-1a 64 of `name`; exposed so tests can pin the placement
  /// function itself.
  static uint64_t HashName(std::string_view name);

  /// Shard owning lineage `name`. Pure function of (name, num_shards).
  int ShardForName(std::string_view name) const;

  /// Shard for a "name[@version|@latest]" reference: the version suffix
  /// is ignored (all versions of a lineage are co-located).
  int ShardForRef(std::string_view db_ref) const;

  /// Shard for an already-resolved handle, by its lineage name. Handles
  /// from anonymous registration (empty name) hash their lineage id so
  /// they still route deterministically.
  int ShardForHandle(const DbHandle& handle) const;

  /// Registers `db` as a new lineage on its home shard.
  DbHandle Register(GraphDb db, std::string name);

  /// Resolves "name[@version|@latest]" against the owning shard.
  Result<DbHandle> Resolve(std::string_view reference) const;

  DbRegistry& registry(int shard) { return shards_[shard]->registry; }
  const DbRegistry& registry(int shard) const {
    return shards_[shard]->registry;
  }
  ResilienceEngine& engine(int shard) { return shards_[shard]->engine; }
  const ResilienceEngine& engine(int shard) const {
    return shards_[shard]->engine;
  }

 private:
  // Concurrency contract: shards_ is built in the constructor and never
  // resized, so the vector itself needs no capability — all mutable state
  // lives inside each shard's DbRegistry/ResilienceEngine, which carry
  // their own annotated mutexes.
  struct Shard {
    // Registry first: engine destruction drains in-flight requests that
    // may still hold handles into the registry, so the registry must
    // outlive the engine (members destroy in reverse order).
    DbRegistry registry;
    ResilienceEngine engine;

    Shard(const EngineOptions& engine_options,
          const DbRegistry::Options& registry_options)
        : registry(registry_options), engine(engine_options) {}
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rpqres::serve

#endif  // RPQRES_SERVE_SHARDED_REGISTRY_H_
