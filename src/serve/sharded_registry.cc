#include "serve/sharded_registry.h"

#include <utility>

namespace rpqres::serve {

ShardedRegistry::ShardedRegistry(int num_shards, EngineOptions engine_options,
                                 DbRegistry::Options registry_options) {
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    DbRegistry::Options shard_options = registry_options;
    if (!shard_options.storage_dir.empty()) {
      shard_options.storage_dir += "/shard" + std::to_string(i);
    }
    shards_.push_back(std::make_unique<Shard>(engine_options, shard_options));
  }
}

Result<std::unique_ptr<ShardedRegistry>> ShardedRegistry::OpenStorage(
    int num_shards, EngineOptions engine_options,
    DbRegistry::Options registry_options) {
  if (registry_options.storage_dir.empty()) {
    return Status::FailedPrecondition(
        "ShardedRegistry::OpenStorage: storage_dir must be set");
  }
  auto sharded = std::make_unique<ShardedRegistry>(
      num_shards, std::move(engine_options), std::move(registry_options));
  for (int i = 0; i < sharded->num_shards(); ++i) {
    RPQRES_RETURN_IF_ERROR(sharded->registry(i).storage_status());
    RPQRES_RETURN_IF_ERROR(sharded->registry(i).Restore());
  }
  return sharded;
}

uint64_t ShardedRegistry::HashName(std::string_view name) {
  // FNV-1a 64: stable across platforms, good avalanche for short names.
  uint64_t hash = 1469598103934665603ULL;
  for (char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

int ShardedRegistry::ShardForName(std::string_view name) const {
  return static_cast<int>(HashName(name) %
                          static_cast<uint64_t>(shards_.size()));
}

int ShardedRegistry::ShardForRef(std::string_view db_ref) const {
  const size_t at = db_ref.rfind('@');
  return ShardForName(at == std::string_view::npos ? db_ref
                                                   : db_ref.substr(0, at));
}

int ShardedRegistry::ShardForHandle(const DbHandle& handle) const {
  if (!handle.name().empty()) return ShardForName(handle.name());
  // Anonymous lineage: mix the id through the same hash via its bytes.
  const uint64_t lineage = handle.lineage();
  return ShardForName(std::string_view(
      reinterpret_cast<const char*>(&lineage), sizeof(lineage)));
}

DbHandle ShardedRegistry::Register(GraphDb db, std::string name) {
  const int shard = ShardForName(name);
  return shards_[shard]->registry.Register(std::move(db), std::move(name));
}

Result<DbHandle> ShardedRegistry::Resolve(std::string_view reference) const {
  return shards_[ShardForRef(reference)]->registry.Resolve(reference);
}

}  // namespace rpqres::serve
