// rpqres — serve/admission: per-shard and per-tenant admission control.
//
// The front end must refuse work it cannot finish in time INSTEAD of
// queueing it to die inside a solver. The AdmissionController decides,
// at submit time and in O(1), whether a request may enter a shard:
//
//  * bounded per-shard in-flight queue — once a shard holds
//    max_inflight_per_shard requests, further arrivals shed with
//    kResourceExhausted instead of growing the pool's unbounded queue;
//  * per-tenant in-flight cap — one tenant flooding the fleet exhausts
//    its own allowance (kResourceExhausted) while other tenants' slots
//    stay untouched; serve_admission_test pins the isolation property;
//  * deadline-aware shedding — a request whose deadline is already past,
//    or whose deadline cannot be met given the shard's OBSERVED latency
//    distribution (p95 service estimate plus a p50-per-queued-request
//    drain estimate), sheds immediately with kDeadlineExceeded. This
//    extends the engine's CancelToken deadline plumbing upstream: the
//    engine stops work at the deadline, the controller refuses work that
//    would only burn cycles before that stop.
//
// A shed request never reaches an engine: no solver runs, no engine
// counter moves; the Router records the shed in its own log/metrics.
// Admission state is a pair of atomics per shard/tenant plus a
// wait-free latency histogram — the controller adds nanoseconds, not
// milliseconds, to the submit path.

#ifndef RPQRES_SERVE_ADMISSION_H_
#define RPQRES_SERVE_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_annotations.h"

namespace rpqres::serve {

struct AdmissionOptions {
  /// In-flight requests a shard holds before shedding (admitted but not
  /// yet completed, whether queued or executing).
  int64_t max_inflight_per_shard = 1024;
  /// In-flight requests one tenant may hold across the fleet.
  int64_t max_inflight_per_tenant = 256;
  /// Master switch for deadline-based shedding (expired + predicted).
  bool deadline_shedding = true;
  /// Completed-request samples a shard's histogram needs before the
  /// predictive check activates; below this only already-expired
  /// deadlines shed (cold shards must not guess).
  int64_t min_predict_samples = 32;
};

/// Outcome of one admission decision, most specific reason wins.
enum class AdmissionDecision {
  kAdmitted = 0,
  kShedDeadlineExpired,     ///< deadline already past at submit
  kShedDeadlineUnmeetable,  ///< predicted completion misses the deadline
  kShedShardSaturated,      ///< per-shard in-flight bound hit
  kShedTenantCap,           ///< per-tenant in-flight cap hit
  kShedShardUnavailable,    ///< shard storage degraded/failed (router health
                            ///< check, not the controller: commits shed on
                            ///< degraded shards, everything on failed ones)
};

/// Stable lowercase name ("admitted", "shed_tenant_cap", ...) for the
/// router's decision-labelled counter.
std::string_view AdmissionDecisionName(AdmissionDecision decision);

/// The Status a shed decision turns into (OK for kAdmitted): deadline
/// sheds map to kDeadlineExceeded, capacity sheds to kResourceExhausted.
Status AdmissionStatus(AdmissionDecision decision, int shard);

class AdmissionController {
 public:
  /// `threads_per_shard` is each shard's engine pool width — the service
  /// rate denominator of the queue-drain estimate.
  AdmissionController(int num_shards, int threads_per_shard,
                      AdmissionOptions options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// An admitted request's slot; must be returned via Complete exactly
  /// once. Default-constructed tickets are invalid (sheds carry none).
  struct Ticket {
    int shard = -1;
    void* tenant = nullptr;  ///< opaque TenantState*
    bool valid() const { return shard >= 0; }
  };

  /// Decides admission of one request for `shard`. On kAdmitted the
  /// shard/tenant slots are held and `*ticket` is filled; on any shed
  /// nothing is held. Never blocks.
  AdmissionDecision TryAdmit(
      int shard, std::string_view tenant,
      const std::optional<std::chrono::steady_clock::time_point>& deadline,
      Ticket* ticket);

  /// Releases an admitted request's slots and feeds its end-to-end
  /// latency into the shard's observed distribution.
  void Complete(const Ticket& ticket, double total_micros);

  int64_t shard_inflight(int shard) const;
  int64_t tenant_inflight(std::string_view tenant) const
      RPQRES_EXCLUDES(tenants_mu_);
  /// Observed end-to-end latency of completed requests on `shard`.
  obs::LatencyHistogram::Snapshot ShardLatency(int shard) const;
  /// Tenants seen so far, sorted.
  std::vector<std::string> tenants() const RPQRES_EXCLUDES(tenants_mu_);

  const AdmissionOptions& options() const { return options_; }
  int threads_per_shard() const { return threads_per_shard_; }

 private:
  struct ShardState {
    std::atomic<int64_t> inflight{0};
    obs::LatencyHistogram latency;
  };
  struct TenantState {
    std::atomic<int64_t> inflight{0};
  };

  TenantState& Tenant(std::string_view tenant) RPQRES_EXCLUDES(tenants_mu_);

  const AdmissionOptions options_;
  const int threads_per_shard_;
  /// Set in the constructor, never resized; the cells are atomics plus a
  /// wait-free histogram, so slot traffic never takes a lock.
  std::vector<std::unique_ptr<ShardState>> shards_;
  /// Guards the tenant map shape, not the cells (map nodes are stable and
  /// each TenantState is one atomic).
  mutable rpqres::SharedMutex tenants_mu_;
  std::map<std::string, TenantState, std::less<>> tenants_
      RPQRES_GUARDED_BY(tenants_mu_);
};

}  // namespace rpqres::serve

#endif  // RPQRES_SERVE_ADMISSION_H_
