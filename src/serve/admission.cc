#include "serve/admission.h"

#include <string>

namespace rpqres::serve {

std::string_view AdmissionDecisionName(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmitted:
      return "admitted";
    case AdmissionDecision::kShedDeadlineExpired:
      return "shed_deadline_expired";
    case AdmissionDecision::kShedDeadlineUnmeetable:
      return "shed_deadline_unmeetable";
    case AdmissionDecision::kShedShardSaturated:
      return "shed_shard_saturated";
    case AdmissionDecision::kShedTenantCap:
      return "shed_tenant_cap";
    case AdmissionDecision::kShedShardUnavailable:
      return "shed_shard_unavailable";
  }
  return "unknown";
}

Status AdmissionStatus(AdmissionDecision decision, int shard) {
  const std::string where = "shard " + std::to_string(shard);
  switch (decision) {
    case AdmissionDecision::kAdmitted:
      return Status::OK();
    case AdmissionDecision::kShedDeadlineExpired:
      return Status::DeadlineExceeded("shed at admission (" + where +
                                      "): deadline already expired");
    case AdmissionDecision::kShedDeadlineUnmeetable:
      return Status::DeadlineExceeded(
          "shed at admission (" + where +
          "): deadline unmeetable at observed latencies");
    case AdmissionDecision::kShedShardSaturated:
      return Status::ResourceExhausted("shed at admission (" + where +
                                       "): shard in-flight bound reached");
    case AdmissionDecision::kShedTenantCap:
      return Status::ResourceExhausted("shed at admission (" + where +
                                       "): tenant in-flight cap reached");
    case AdmissionDecision::kShedShardUnavailable:
      return Status::Unavailable("shed at admission (" + where +
                                 "): shard storage unavailable");
  }
  return Status::Internal("unknown admission decision");
}

AdmissionController::AdmissionController(int num_shards, int threads_per_shard,
                                         AdmissionOptions options)
    : options_(options),
      threads_per_shard_(threads_per_shard < 1 ? 1 : threads_per_shard) {
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<ShardState>());
  }
}

AdmissionController::TenantState& AdmissionController::Tenant(
    std::string_view tenant) {
  {
    SharedReaderLock lock(tenants_mu_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end()) return it->second;
  }
  SharedMutexLock lock(tenants_mu_);
  return tenants_.try_emplace(std::string(tenant)).first->second;
}

AdmissionDecision AdmissionController::TryAdmit(
    int shard, std::string_view tenant,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    Ticket* ticket) {
  ShardState& shard_state = *shards_[shard];

  const auto now = std::chrono::steady_clock::now();
  if (options_.deadline_shedding && deadline.has_value() && *deadline <= now) {
    return AdmissionDecision::kShedDeadlineExpired;
  }

  // Optimistically take the shard slot, undo on any later refusal — two
  // concurrent admits never both squeeze past the bound this way.
  const int64_t shard_held = shard_state.inflight.fetch_add(1) + 1;
  if (shard_held > options_.max_inflight_per_shard) {
    shard_state.inflight.fetch_sub(1);
    return AdmissionDecision::kShedShardSaturated;
  }

  TenantState& tenant_state = Tenant(tenant);
  const int64_t tenant_held = tenant_state.inflight.fetch_add(1) + 1;
  if (tenant_held > options_.max_inflight_per_tenant) {
    tenant_state.inflight.fetch_sub(1);
    shard_state.inflight.fetch_sub(1);
    return AdmissionDecision::kShedTenantCap;
  }

  if (options_.deadline_shedding && deadline.has_value()) {
    const obs::LatencyHistogram::Snapshot observed =
        shard_state.latency.TakeSnapshot();
    if (observed.total_count >=
        static_cast<uint64_t>(options_.min_predict_samples)) {
      // Service estimate: p95 of completed requests. Queue estimate: the
      // requests already in flight ahead of us drain at roughly p50 per
      // pool thread. Both are lower bounds from a live histogram, so the
      // check only sheds requests that would very likely die anyway.
      const double queued_ahead = static_cast<double>(shard_held - 1);
      const double predicted_micros =
          observed.Quantile(0.95) +
          observed.Quantile(0.50) * (queued_ahead /
                                     static_cast<double>(threads_per_shard_));
      const auto predicted_done =
          now + std::chrono::microseconds(
                    static_cast<int64_t>(predicted_micros));
      if (predicted_done > *deadline) {
        tenant_state.inflight.fetch_sub(1);
        shard_state.inflight.fetch_sub(1);
        return AdmissionDecision::kShedDeadlineUnmeetable;
      }
    }
  }

  ticket->shard = shard;
  ticket->tenant = &tenant_state;
  return AdmissionDecision::kAdmitted;
}

void AdmissionController::Complete(const Ticket& ticket, double total_micros) {
  if (!ticket.valid()) return;
  ShardState& shard_state = *shards_[ticket.shard];
  shard_state.latency.Record(total_micros);
  shard_state.inflight.fetch_sub(1);
  static_cast<TenantState*>(ticket.tenant)->inflight.fetch_sub(1);
}

int64_t AdmissionController::shard_inflight(int shard) const {
  return shards_[shard]->inflight.load();
}

int64_t AdmissionController::tenant_inflight(std::string_view tenant) const {
  SharedReaderLock lock(tenants_mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.inflight.load();
}

obs::LatencyHistogram::Snapshot AdmissionController::ShardLatency(
    int shard) const {
  return shards_[shard]->latency.TakeSnapshot();
}

std::vector<std::string> AdmissionController::tenants() const {
  SharedReaderLock lock(tenants_mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) names.push_back(name);
  return names;
}

}  // namespace rpqres::serve
