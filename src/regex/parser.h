// rpqres — regex/parser: recursive-descent parser for the paper's regular
// expression syntax.
//
// Grammar:
//   union   := concat ('|' concat)*
//   concat  := postfix+
//   postfix := atom ('*' | '+' | '?')*
//   atom    := LETTER | '(' union ')'
// LETTER is any alphanumeric character. Whitespace is ignored.

#ifndef RPQRES_REGEX_PARSER_H_
#define RPQRES_REGEX_PARSER_H_

#include <string>

#include "regex/ast.h"
#include "util/status.h"

namespace rpqres {

/// Parses a regular expression in the paper's syntax (e.g. "ax*b|cxd").
/// Returns InvalidArgument with a position-annotated message on bad input.
Result<Regex> ParseRegex(const std::string& input);

/// Parses a regex that is known to be valid (for literals in tests, benches
/// and examples); aborts on parse failure.
Regex MustParseRegex(const std::string& input);

}  // namespace rpqres

#endif  // RPQRES_REGEX_PARSER_H_
