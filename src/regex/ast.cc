#include "regex/ast.h"

#include <algorithm>

#include "util/check.h"

namespace rpqres {

Regex Regex::EmptySet() {
  Regex r;
  r.kind = RegexKind::kEmptySet;
  return r;
}

Regex Regex::Epsilon() {
  Regex r;
  r.kind = RegexKind::kEpsilon;
  return r;
}

Regex Regex::Literal(char letter) {
  Regex r;
  r.kind = RegexKind::kLiteral;
  r.literal = letter;
  return r;
}

Regex Regex::Concat(std::vector<Regex> parts) {
  std::vector<Regex> flat;
  for (Regex& part : parts) {
    if (part.kind == RegexKind::kEpsilon) continue;
    if (part.kind == RegexKind::kEmptySet) return EmptySet();
    if (part.kind == RegexKind::kConcat) {
      for (Regex& child : part.children) flat.push_back(std::move(child));
    } else {
      flat.push_back(std::move(part));
    }
  }
  if (flat.empty()) return Epsilon();
  if (flat.size() == 1) return std::move(flat[0]);
  Regex r;
  r.kind = RegexKind::kConcat;
  r.children = std::move(flat);
  return r;
}

Regex Regex::Union(std::vector<Regex> parts) {
  std::vector<Regex> flat;
  for (Regex& part : parts) {
    if (part.kind == RegexKind::kEmptySet) continue;
    if (part.kind == RegexKind::kUnion) {
      for (Regex& child : part.children) flat.push_back(std::move(child));
    } else {
      flat.push_back(std::move(part));
    }
  }
  if (flat.empty()) return EmptySet();
  if (flat.size() == 1) return std::move(flat[0]);
  Regex r;
  r.kind = RegexKind::kUnion;
  r.children = std::move(flat);
  return r;
}

Regex Regex::Star(Regex inner) {
  if (inner.kind == RegexKind::kEpsilon || inner.kind == RegexKind::kEmptySet)
    return Epsilon();
  Regex r;
  r.kind = RegexKind::kStar;
  r.children.push_back(std::move(inner));
  return r;
}

Regex Regex::Plus(Regex inner) {
  if (inner.kind == RegexKind::kEpsilon) return Epsilon();
  if (inner.kind == RegexKind::kEmptySet) return EmptySet();
  Regex r;
  r.kind = RegexKind::kPlus;
  r.children.push_back(std::move(inner));
  return r;
}

Regex Regex::Optional(Regex inner) {
  if (inner.kind == RegexKind::kEpsilon) return Epsilon();
  if (inner.kind == RegexKind::kEmptySet) return Epsilon();
  Regex r;
  r.kind = RegexKind::kOptional;
  r.children.push_back(std::move(inner));
  return r;
}

Regex Regex::FromWord(const std::string& word) {
  std::vector<Regex> letters;
  letters.reserve(word.size());
  for (char c : word) letters.push_back(Literal(c));
  return Concat(std::move(letters));
}

Regex Regex::FromWords(const std::vector<std::string>& words) {
  std::vector<Regex> parts;
  parts.reserve(words.size());
  for (const std::string& w : words) parts.push_back(FromWord(w));
  return Union(std::move(parts));
}

namespace {

// Precedence levels for printing: union < concat < postfix.
int Precedence(RegexKind kind) {
  switch (kind) {
    case RegexKind::kUnion:
      return 0;
    case RegexKind::kConcat:
      return 1;
    default:
      return 2;
  }
}

void Render(const Regex& r, int parent_precedence, std::string* out) {
  int prec = Precedence(r.kind);
  bool parens = prec < parent_precedence;
  if (parens) out->push_back('(');
  switch (r.kind) {
    case RegexKind::kEmptySet:
      *out += "∅";
      break;
    case RegexKind::kEpsilon:
      *out += "ε";
      break;
    case RegexKind::kLiteral:
      out->push_back(r.literal);
      break;
    case RegexKind::kConcat:
      for (const Regex& child : r.children) Render(child, 2, out);
      break;
    case RegexKind::kUnion:
      for (size_t i = 0; i < r.children.size(); ++i) {
        if (i > 0) out->push_back('|');
        Render(r.children[i], 1, out);
      }
      break;
    case RegexKind::kStar:
      Render(r.children[0], 2, out);
      out->push_back('*');
      break;
    case RegexKind::kPlus:
      Render(r.children[0], 2, out);
      out->push_back('+');
      break;
    case RegexKind::kOptional:
      Render(r.children[0], 2, out);
      out->push_back('?');
      break;
  }
  if (parens) out->push_back(')');
}

void CollectLetters(const Regex& r, std::vector<char>* out) {
  if (r.kind == RegexKind::kLiteral) out->push_back(r.literal);
  for (const Regex& child : r.children) CollectLetters(child, out);
}

}  // namespace

std::string Regex::ToString() const {
  std::string out;
  Render(*this, 0, &out);
  return out;
}

std::vector<char> Regex::Alphabet() const {
  std::vector<char> letters;
  CollectLetters(*this, &letters);
  std::sort(letters.begin(), letters.end());
  letters.erase(std::unique(letters.begin(), letters.end()), letters.end());
  return letters;
}

bool Regex::operator==(const Regex& other) const {
  return kind == other.kind && literal == other.literal &&
         children == other.children;
}

}  // namespace rpqres
