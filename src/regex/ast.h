// rpqres — regex/ast: regular-expression abstract syntax tree.
//
// Alphabet letters are single printable characters, exactly as in the paper
// ("ab|ad|cd", "ax*b", "b(aa)*d"). The AST is a plain value type; nodes own
// their children by value.

#ifndef RPQRES_REGEX_AST_H_
#define RPQRES_REGEX_AST_H_

#include <string>
#include <vector>

namespace rpqres {

/// Node kinds of the regex AST.
enum class RegexKind {
  kEmptySet,  ///< ∅ — matches nothing
  kEpsilon,   ///< ε — matches the empty word
  kLiteral,   ///< a single letter
  kConcat,    ///< children in sequence
  kUnion,     ///< any child (the paper's `|`)
  kStar,      ///< zero or more repetitions of the single child
  kPlus,      ///< one or more repetitions of the single child
  kOptional,  ///< zero or one occurrence of the single child
};

/// A regular expression over single-character letters.
struct Regex {
  RegexKind kind = RegexKind::kEmptySet;
  char literal = '\0';           ///< set iff kind == kLiteral
  std::vector<Regex> children;   ///< concat/union: >= 1; star/plus/opt: == 1

  // -- Factory helpers ------------------------------------------------------
  static Regex EmptySet();
  static Regex Epsilon();
  static Regex Literal(char letter);
  /// Concatenation; flattens nested concats and simplifies trivial cases.
  static Regex Concat(std::vector<Regex> parts);
  /// Union; flattens nested unions.
  static Regex Union(std::vector<Regex> parts);
  static Regex Star(Regex inner);
  static Regex Plus(Regex inner);
  static Regex Optional(Regex inner);
  /// Builds the concatenation of the letters of `word` (ε for empty word).
  static Regex FromWord(const std::string& word);
  /// Builds the union of the given words (∅ for an empty list).
  static Regex FromWords(const std::vector<std::string>& words);

  /// Renders the regex using the paper's syntax (`|`, `*`, parentheses).
  std::string ToString() const;

  /// All letters occurring in the expression, sorted and deduplicated.
  std::vector<char> Alphabet() const;

  bool operator==(const Regex& other) const;
};

}  // namespace rpqres

#endif  // RPQRES_REGEX_AST_H_
